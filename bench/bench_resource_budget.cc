// Reproduces §5.2's resource-limit analysis: starting from a 200 mm^2 chip
// (the smallest in Gibb et al.) and the atom circuit areas, derive the
// number of stateless/stateful atoms per stage and the total chip-area
// overhead — the paper's "~12%, under the 15% headline" argument.
#include <cstdio>

#include "atoms/circuit.h"
#include "atoms/targets.h"
#include "bench_util.h"

int main() {
  using namespace atoms;
  bench_util::header(
      "Section 5.2 — resource budget (atoms per stage, area overhead)");

  const std::vector<int> widths = {12, 14, 16, 14, 14, 12};
  bench_util::print_rule(widths);
  bench_util::print_row(widths,
                        {"Atom", "atom um^2", "stateless/stage",
                         "stateful %", "crossbar %", "total %"});
  bench_util::print_rule(widths);

  for (const auto& t : stateful_hierarchy()) {
    const ResourceBudget rb = compute_resource_budget(t.kind);
    bench_util::print_row(
        widths,
        {t.name, bench_util::fmt(stateful_circuit(t.kind).area_um2(), 0),
         std::to_string(rb.stateless_per_stage),
         bench_util::fmt(100 * rb.stateful_overhead_frac, 2),
         bench_util::fmt(100 * rb.crossbar_overhead_frac, 2),
         bench_util::fmt(100 * rb.total_overhead_frac, 2)});
  }
  bench_util::print_rule(widths);

  const ResourceBudget pairs = compute_resource_budget(StatefulKind::kPairs);
  std::printf(
      "\nPaper targets: 32 stages, ~%zu stateless atoms/stage (paper: ~300),\n"
      "10 stateful atoms/stage (memory-bank limited), total overhead %.1f%%\n"
      "(paper: ~12%%, under the 15%% headline bound): %s\n",
      pairs.stateless_per_stage, 100 * pairs.total_overhead_frac,
      pairs.total_overhead_frac < 0.15 ? "HOLDS" : "VIOLATED");
  return pairs.total_overhead_frac < 0.15 ? 0 : 1;
}
