// Throughput of the sharded batch-execution engine on the paper's worked
// example (flowlet switching, Figure 3a): aggregate packets/sec vs shard
// count, against the per-packet sequential engine and the cycle-accurate
// PipelineSim as baselines.
//
//   $ ./build/bench/bench_fleet_throughput [num_packets]
//
// The acceptance bar: >= 2x aggregate packets/sec at 4 shards vs 1 shard
// (worker threads draining independent replicas; on a single hardware thread
// the batching gain itself carries the comparison against the baselines).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/fleet.h"
#include "banzai/sim.h"
#include "bench_util.h"
#include "core/compiler.h"
#include "sim/tracegen.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<banzai::Packet> flowlet_packets(
    const banzai::Machine& machine,
    const std::vector<netsim::TracePacket>& trace) {
  const auto& ft = machine.fields();
  const auto f_sport = ft.id_of("sport");
  const auto f_dport = ft.id_of("dport");
  const auto f_arrival = ft.id_of("arrival");
  std::vector<banzai::Packet> pkts;
  pkts.reserve(trace.size());
  for (const auto& tp : trace) {
    banzai::Packet p(ft.size());
    p.set(f_sport, 1000 + tp.flow_id);
    p.set(f_dport, 80);
    p.set(f_arrival, static_cast<banzai::Value>(tp.arrival));
    pkts.push_back(std::move(p));
  }
  return pkts;
}

}  // namespace

int main(int argc, char** argv) {
  long requested = 400000;
  if (argc > 1) {
    requested = std::atol(argv[1]);
    if (requested <= 0) {
      std::fprintf(stderr, "usage: %s [num_packets > 0]\n", argv[0]);
      return 2;
    }
  }
  const std::size_t num_packets = static_cast<std::size_t>(requested);

  const auto& alg = algorithms::algorithm("flowlets");
  auto target = *atoms::find_target("banzai-praw");
  // Request all three engines; machines fall back to closure/kernel rows
  // when the host has no toolchain for the native path.
  domino::CompileOptions copts;
  copts.engine = banzai::ExecEngine::kNative;
  domino::CompileResult compiled = domino::compile(alg.source, target, copts);
  const bool have_native = compiled.machine().native() != nullptr;
  if (!have_native)
    std::fprintf(stderr, "note: native engine unavailable (%s); skipping "
                         "native rows\n",
                 compiled.machine().native_fallback_reason().c_str());

  netsim::FlowTraceConfig cfg;
  cfg.num_packets = num_packets;
  cfg.num_flows = 1000;
  cfg.zipf_skew = 1.1;
  cfg.seed = 42;
  const auto trace =
      flowlet_packets(compiled.machine(), netsim::generate_flow_trace(cfg));

  bench_util::header(
      "Fleet throughput — flowlet switching, " +
      std::to_string(trace.size()) + " packets, Zipf(1.1) over " +
      std::to_string(cfg.num_flows) + " flows (" +
      std::to_string(std::thread::hardware_concurrency()) + " hw threads)");

  const std::vector<int> widths = {28, 12, 14, 10};
  bench_util::print_rule(widths);
  bench_util::print_row(widths,
                        {"engine", "shards", "pkts/sec", "speedup"});
  bench_util::print_rule(widths);

  // Baseline 1: sequential per-packet engine — closure path (the reference
  // semantics), the fused micro-op kernel, and the AOT native function on
  // the same machine.
  double seq_pps = 0, kernel_seq_pps = 0, native_seq_pps = 0;
  {
    banzai::Machine m = compiled.machine().clone();
    m.set_engine(banzai::ExecEngine::kClosure);
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& p : trace) m.process(p);
    seq_pps = static_cast<double>(trace.size()) / seconds_since(t0);
    bench_util::print_row(widths, {"Machine::process [closure]", "-",
                                   bench_util::fmt(seq_pps, 0), "1.00"});
  }
  {
    banzai::Machine m = compiled.machine().clone();
    m.set_engine(banzai::ExecEngine::kKernel);
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& p : trace) m.process(p);
    kernel_seq_pps = static_cast<double>(trace.size()) / seconds_since(t0);
    bench_util::print_row(widths, {"Machine::process [kernel]", "-",
                                   bench_util::fmt(kernel_seq_pps, 0),
                                   bench_util::fmt(kernel_seq_pps / seq_pps, 2)});
  }
  if (have_native) {
    banzai::Machine m = compiled.machine().clone();
    m.set_engine(banzai::ExecEngine::kNative);
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& p : trace) m.process(p);
    native_seq_pps = static_cast<double>(trace.size()) / seconds_since(t0);
    bench_util::print_row(widths, {"Machine::process [native]", "-",
                                   bench_util::fmt(native_seq_pps, 0),
                                   bench_util::fmt(native_seq_pps / seq_pps, 2)});
  }

  // Baseline 2: cycle-accurate pipeline simulation.
  {
    banzai::Machine m = compiled.machine().clone();
    banzai::PipelineSim sim(m);
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& p : trace) sim.enqueue(p);
    sim.drain();
    const double pps = static_cast<double>(trace.size()) / seconds_since(t0);
    bench_util::print_row(widths,
                          {"PipelineSim (cycle-acc)", "-",
                           bench_util::fmt(pps, 0),
                           bench_util::fmt(pps / seq_pps, 2)});
  }

  // The engine under test: batched shards on worker threads — closure,
  // fused kernel and AOT native on identical fleets.
  double one_shard_pps = 0, four_shard_pps = 0;
  struct EngineCase {
    const char* label;
    banzai::ExecEngine engine;
  };
  std::vector<EngineCase> engines = {
      {"Fleet [closure]", banzai::ExecEngine::kClosure},
      {"Fleet [kernel]", banzai::ExecEngine::kKernel},
  };
  if (have_native)
    engines.push_back({"Fleet [native]", banzai::ExecEngine::kNative});
  for (const EngineCase& ec : engines) {
    banzai::Machine proto = compiled.machine().clone();
    proto.set_engine(ec.engine);
    for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                               std::size_t{8}}) {
      banzai::FleetConfig fleet_cfg;
      fleet_cfg.num_shards = shards;
      fleet_cfg.batch_size = 256;
      fleet_cfg.parallel = true;
      fleet_cfg.flow_key = {proto.fields().id_of("sport"),
                            proto.fields().id_of("dport")};
      banzai::Fleet fleet(proto, fleet_cfg);
      auto t0 = std::chrono::steady_clock::now();
      banzai::FleetResult result = fleet.run(trace);
      const double pps =
          static_cast<double>(result.packets) / seconds_since(t0);
      if (ec.engine == banzai::ExecEngine::kKernel) {
        if (shards == 1) one_shard_pps = pps;
        if (shards == 4) four_shard_pps = pps;
      }
      bench_util::print_row(widths,
                            {ec.label, std::to_string(shards),
                             bench_util::fmt(pps, 0),
                             bench_util::fmt(pps / seq_pps, 2)});
    }
  }
  bench_util::print_rule(widths);

  std::printf("\nkernel vs closure, sequential per-packet: %.2fx\n",
              kernel_seq_pps / seq_pps);
  if (have_native)
    std::printf("native vs kernel, sequential per-packet: %.2fx\n",
                native_seq_pps / kernel_seq_pps);
  std::printf("4-shard vs 1-shard aggregate (kernel): %.2fx\n",
              four_shard_pps / one_shard_pps);
  // Engine-matched ratio: kernel fleet over kernel sequential, so this
  // isolates the batching/partitioning effect from the engine speedup.
  std::printf("1-shard batched vs sequential per-packet (both kernel): %.2fx\n",
              one_shard_pps / kernel_seq_pps);
  return 0;
}
