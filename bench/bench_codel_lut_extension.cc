// Reproduces §5.3's CoDel discussion and implements the paper's proposed
// future work: "One possibility is a look-up table abstraction that allows
// us to approximate such mathematical functions."
//
//   1. CoDel is rejected by every paper target (it needs INTERVAL/sqrt).
//   2. On the LUT-extended target (Pairs + a ROM in the update path), CoDel
//      compiles; the synthesized atom uses the lut(...) arm.
//   3. Behavioural check: the compiled pipeline reproduces CoDel's control
//      law on a queue trace — marks accelerate under standing queues.
#include <cstdio>
#include <random>

#include "algorithms/corpus.h"
#include "banzai/sim.h"
#include "bench_util.h"
#include "core/compiler.h"
#include "sim/queue.h"
#include "sim/tracegen.h"

int main() {
  const auto& codel = algorithms::algorithm("codel");

  bench_util::header("Section 5.3 — CoDel vs the seven paper targets");
  for (const auto& t : atoms::paper_targets()) {
    try {
      domino::compile(codel.source, t);
      std::printf("  %-18s ACCEPTED (unexpected!)\n", t.name.c_str());
      return 1;
    } catch (const domino::CompileError& e) {
      std::printf("  %-18s rejected: %.90s...\n", t.name.c_str(), e.what());
    }
  }

  bench_util::header("LUT extension target (banzai-pairs-lut)");
  auto lut = atoms::lut_extended_target();
  domino::CompileResult r = domino::compile(codel.source, lut);
  std::printf("compiled: %zu stages, %zu atoms\n", r.num_stages(),
              r.machine().num_atoms());
  for (const auto& rep : r.codegen.reports)
    if (rep.stateful)
      std::printf("  stateful atom config: %s\n", rep.config.c_str());

  bench_util::header("Behaviour: CoDel marking on simulated queue traces");
  // CoDel's published shape: no marks while the sojourn time stays under
  // target; under a standing queue, marking starts after INTERVAL and then
  // *accelerates* (inter-mark gaps shrink as INTERVAL/sqrt(count)).
  const std::vector<int> widths = {12, 12, 12, 16, 16};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"load", "packets", "marks",
                                 "first gap (ticks)", "last gap (ticks)"});
  bench_util::print_rule(widths);
  bool underload_clean = false, overload_marks = false,
       gaps_shrink = false;
  for (double load : {0.3, 1.5, 3.0}) {
    netsim::ArrivalTraceConfig tc;
    tc.num_packets = 20000;
    tc.load = load;
    netsim::QueueConfig qc;
    qc.bytes_per_tick = 900;
    auto samples = netsim::simulate_queue(netsim::generate_arrival_trace(tc), qc);

    auto machine_result = domino::compile(codel.source, lut);
    auto& m = machine_result.machine();
    banzai::PipelineSim sim(m);
    for (const auto& s : samples) {
      banzai::Packet p(m.fields().size());
      p.set(m.fields().id_of("now"), s.arrival);
      p.set(m.fields().id_of("qdelay"), s.sojourn);
      sim.enqueue(p);
    }
    sim.drain();
    const auto mark_id =
        m.fields().id_of(machine_result.output_map().at("mark"));
    std::vector<int> mark_times;
    for (std::size_t i = 0; i < sim.egress().size(); ++i)
      if (sim.egress()[i].get(mark_id) != 0)
        mark_times.push_back(samples[i].arrival);
    const long marks = static_cast<long>(mark_times.size());
    int first_gap = 0, last_gap = 0;
    if (marks >= 3) {
      first_gap = mark_times[1] - mark_times[0];
      last_gap = mark_times.back() - mark_times[mark_times.size() - 2];
    }
    bench_util::print_row(
        widths, {bench_util::fmt(load, 1), std::to_string(samples.size()),
                 std::to_string(marks),
                 marks >= 3 ? std::to_string(first_gap) : "-",
                 marks >= 3 ? std::to_string(last_gap) : "-"});
    if (load < 1.0 && marks == 0) underload_clean = true;
    if (load >= 2.9) {
      overload_marks = marks > 3;
      gaps_shrink = marks >= 3 && last_gap < first_gap;
    }
  }
  bench_util::print_rule(widths);
  std::printf(
      "\nShape: no marks under light load: %s; marks under standing queue:\n"
      "%s; inter-mark gap shrinks (INTERVAL/sqrt(count) control law): %s\n",
      underload_clean ? "yes" : "NO", overload_marks ? "yes" : "NO",
      gaps_shrink ? "yes" : "NO");
  return (underload_clean && overload_marks && gaps_shrink) ? 0 : 1;
}
