// Reproduces §5.3 "Compilation time": compilation is dominated by the
// synthesis search; the worst case is a *rejection* (CoDel on the Pairs
// target), because the search must rule out every configuration.  Also
// reproduces the constant-bit-width sensitivity: the paper limits SKETCH to
// 5-bit constants; widening the enumerated constant range grows search time.
#include <chrono>
#include <cstdio>

#include "algorithms/corpus.h"
#include "bench_util.h"
#include "core/compiler.h"

namespace {

double time_compile(const std::string& source,
                    const atoms::BanzaiTarget& target,
                    const domino::CompileOptions& opts, bool* accepted) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    domino::compile(source, target, opts);
    *accepted = true;
  } catch (const domino::CompileError&) {
    *accepted = false;
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench_util::header(
      "Section 5.3 — compilation time (per algorithm, per target)");

  const std::vector<int> widths = {16, 12, 12, 12, 12};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"Algorithm", "least tgt s", "pairs tgt s",
                                 "accepted?", "synth cands"});
  bench_util::print_rule(widths);

  double worst = 0;
  std::string worst_case;
  for (const auto& alg : algorithms::corpus()) {
    domino::CompileOptions opts;
    bool ok_least = false, ok_pairs = false;
    double least_s = 0;
    for (const auto& t : atoms::paper_targets()) {
      least_s = time_compile(alg.source, t, opts, &ok_least);
      if (ok_least) break;
    }
    const auto pairs = *atoms::find_target("banzai-pairs");
    const double pairs_s = time_compile(alg.source, pairs, opts, &ok_pairs);

    std::size_t cands = 0;
    if (ok_pairs) {
      auto r = domino::compile(alg.source, pairs, opts);
      for (const auto& rep : r.codegen.reports)
        cands += rep.synth_stats.candidates_tried;
    }
    if (pairs_s > worst) {
      worst = pairs_s;
      worst_case = alg.name + " on banzai-pairs";
    }
    bench_util::print_row(
        widths, {alg.name, bench_util::fmt(least_s, 4),
                 bench_util::fmt(pairs_s, 4), ok_pairs ? "yes" : "REJECTED",
                 std::to_string(cands)});
  }
  bench_util::print_rule(widths);
  std::printf(
      "\nWorst case: %s at %.3f s (paper: 10 s worst case, also a rejection\n"
      "— CoDel failing to map; rejections cost the full search space).\n",
      worst_case.c_str(), worst);

  bench_util::header(
      "Constant bit-width sweep (the paper's 5-bit SKETCH restriction)");
  const std::vector<int> w2 = {10, 16, 16, 12};
  bench_util::print_rule(w2);
  bench_util::print_row(w2, {"bits", "compile s", "candidates", "accepted"});
  bench_util::print_rule(w2);
  const auto& netflow = algorithms::algorithm("sampled_netflow");
  const auto target = *atoms::find_target("banzai-ifelseraw");
  for (int bits : {2, 3, 4, 5, 6, 7, 8}) {
    domino::CompileOptions opts;
    opts.synth.seed_constants = false;  // enumerate the full 2^bits range
    opts.synth.const_bits = bits;
    bool ok = false;
    const double s = time_compile(netflow.source, target, opts, &ok);
    std::size_t cands = 0;
    if (ok) {
      auto r = domino::compile(netflow.source, target, opts);
      for (const auto& rep : r.codegen.reports)
        cands += rep.synth_stats.candidates_tried;
    }
    bench_util::print_row(w2, {std::to_string(bits), bench_util::fmt(s, 4),
                               std::to_string(cands), ok ? "yes" : "no"});
  }
  bench_util::print_rule(w2);
  std::printf(
      "\nSearch cost grows with constant width, as §5.3 predicts ('this time\n"
      "will increase if we increase the bit width of constants').\n");
  return 0;
}
