// Reproduces Table 4: every data-plane algorithm, the least expressive atom
// that can run it at line rate, the pipeline shape the compiler produced,
// and the Domino vs (generated) P4 lines-of-code comparison of §5.1.
//
// "We say an algorithm can run at line rate on a Banzai machine if every
//  codelet within the data-plane algorithm can be mapped to either the
//  stateful or stateless atom provided by the Banzai machine."
#include <cstdio>
#include <optional>

#include "algorithms/corpus.h"
#include "bench_util.h"
#include "core/compiler.h"
#include "core/normalize.h"
#include "core/pipeline.h"
#include "p4/p4gen.h"

int main() {
  bench_util::header(
      "Table 4 — Data-plane algorithms: least expressive atom, pipeline "
      "shape, LOC (measured vs paper)");

  const std::vector<int> widths = {16, 14, 14, 10, 10, 8, 13, 11, 10};
  bench_util::print_rule(widths);
  bench_util::print_row(widths,
                        {"Algorithm", "Least atom", "(paper)", "stages",
                         "(paper)", "atoms/st", "(paper)", "Domino LOC",
                         "P4 LOC"});
  bench_util::print_rule(widths);

  int least_atom_matches = 0;
  for (const auto& alg : algorithms::corpus()) {
    std::string least = "Doesn't map";
    std::optional<domino::CompileResult> compiled;
    for (const auto& target : atoms::paper_targets()) {
      try {
        compiled = domino::compile(alg.source, target);
        least = atoms::stateful_kind_name(target.stateful_atom);
        break;
      } catch (const domino::CompileError&) {
      }
    }
    if (least == alg.paper_least_atom) ++least_atom_matches;

    std::string stages = "-", atoms_per = "-", p4loc = "-";
    if (compiled.has_value()) {
      stages = std::to_string(compiled->num_stages());
      atoms_per = std::to_string(compiled->max_atoms_per_stage());
      const std::string p4 =
          p4gen::emit_p4(compiled->program, compiled->codegen.fitted);
      p4loc = std::to_string(p4gen::p4_loc(p4));
    } else {
      // CoDel: still show the PVSM shape (the pipeline exists; no codelet
      // mapping does).
      domino::Program p = domino::parse_and_check(alg.source);
      auto pipe = domino::pipeline_schedule(domino::normalize(p).tac);
      stages = std::to_string(pipe.num_stages());
      atoms_per = std::to_string(pipe.max_codelets_per_stage());
      p4loc = std::to_string(
          p4gen::p4_loc(p4gen::emit_p4(p, pipe)));
    }

    bench_util::print_row(
        widths,
        {alg.name, least, alg.paper_least_atom, stages,
         std::to_string(alg.paper_stages), atoms_per,
         std::to_string(alg.paper_max_atoms_per_stage) + " (paper)",
         std::to_string(domino::count_loc(alg.source)) + "/" +
             std::to_string(alg.paper_domino_loc),
         p4loc + "/" + std::to_string(alg.paper_p4_loc)});
  }
  bench_util::print_rule(widths);

  std::printf(
      "\nLeast-expressive-atom column: %d/%zu rows match the paper exactly.\n",
      least_atom_matches, algorithms::corpus().size());
  std::printf(
      "LOC cells are measured/paper.  Stage and atom counts depend on the\n"
      "exact program formulation (the paper's sources are unpublished); see\n"
      "EXPERIMENTS.md for the row-by-row discussion.\n");
  std::printf(
      "\nExpressiveness comparison of Section 5.1: flowlet switching is %zu\n"
      "lines of Domino; the hand-written P4 implementation cited by the\n"
      "paper is 231 lines, and our auto-generated P4 is %zu lines.\n",
      domino::count_loc(algorithms::algorithm("flowlets").source),
      [] {
        auto r = domino::compile(algorithms::algorithm("flowlets").source,
                                 *atoms::find_target("banzai-praw"));
        return p4gen::p4_loc(p4gen::emit_p4(r.program, r.codegen.fitted));
      }());
  return least_atom_matches == 11 ? 0 : 1;
}
