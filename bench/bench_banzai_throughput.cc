// Simulator throughput microbenchmarks (google-benchmark).
//
// These numbers characterize the Banzai *simulation substrate* on the host
// CPU, not switch hardware: the paper's line-rate claim is architectural
// (one packet per clock at 1 GHz, by construction of the machine model);
// what we measure here is how fast the differential tests and example
// applications can drive compiled pipelines.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "atoms/targets.h"
#include "banzai/batch.h"
#include "banzai/sim.h"
#include "core/compiler.h"
#include "core/interp.h"

namespace {

domino::CompileResult compile_alg(const std::string& name,
                                  const std::string& target) {
  // Request the native engine so the machine carries all three paths; the
  // set_engine call in each benchmark picks the one under test.  Falls back
  // (closure/kernel only) when the host has no toolchain.
  domino::CompileOptions opts;
  opts.engine = banzai::ExecEngine::kNative;
  return domino::compile(algorithms::algorithm(name).source,
                         *atoms::find_target(target), opts);
}

std::vector<banzai::Packet> make_workload(
    const algorithms::AlgorithmInfo& alg, const banzai::FieldTable& fields,
    int n) {
  std::mt19937 rng(99);
  std::vector<banzai::Packet> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::map<std::string, banzai::Value> f;
    alg.workload(rng, i, f);
    banzai::Packet p(fields.size());
    for (const auto& [k, v] : f)
      if (fields.try_id_of(k).has_value()) p.set(fields.id_of(k), v);
    out.push_back(std::move(p));
  }
  return out;
}

void BM_PipelineSim(benchmark::State& state, const std::string& name,
                    const std::string& target) {
  auto compiled = compile_alg(name, target);
  auto& machine = compiled.machine();
  auto workload = make_workload(algorithms::algorithm(name),
                                machine.fields(), 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    banzai::PipelineSim sim(machine);
    sim.enqueue(workload[i % workload.size()]);
    sim.tick();
    benchmark::DoNotOptimize(machine.state());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MachineProcess(benchmark::State& state, const std::string& name,
                       const std::string& target, banzai::ExecEngine engine) {
  auto compiled = compile_alg(name, target);
  auto& machine = compiled.machine();
  machine.set_engine(engine);
  auto workload = make_workload(algorithms::algorithm(name),
                                machine.fields(), 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.process(workload[i % workload.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BatchSim(benchmark::State& state, const std::string& name,
                 const std::string& target, banzai::ExecEngine engine,
                 banzai::BatchDispatch dispatch) {
  auto compiled = compile_alg(name, target);
  auto& machine = compiled.machine();
  machine.set_engine(engine);
  auto workload = make_workload(algorithms::algorithm(name),
                                machine.fields(), 4096);
  banzai::BatchSim sim(machine, 256, dispatch);
  for (auto _ : state) {
    // The workload deep-copy and egress teardown are identical for every
    // engine and dispatch shape; keep them out of the timed region so the
    // reported ratio measures only the engines themselves.  The columnar
    // rows DO time the gather/scatter transpose — it is part of the shape's
    // cost, and the acceptance bar (columnar >= rows on the compiled
    // engines) has to clear it.
    state.PauseTiming();
    sim.enqueue(workload);
    sim.take_egress();
    state.ResumeTiming();
    sim.run();
    benchmark::DoNotOptimize(sim.egress());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(workload.size()));
}

// Batched execution with each shape fed its native currency: the row shape
// gets the row-major packet slice it runs in place, the columnar shape gets
// a pre-staged ColumnBatch.  No transpose and no copies inside the timed
// region — this is the Machine::run_batch cost of each batch shape, i.e. the
// number that says which currency a batch should LIVE in.  BM_BatchSim above
// answers the other question: what the columnar shape costs end to end when
// every batch arrives and leaves as row-major Packets (its rows time the
// gather/scatter).  Registered across the whole mapping corpus on the native
// engine; EXPERIMENTS.md records both tables.
void BM_RunBatch(benchmark::State& state, const std::string& name,
                 const std::string& target, bool columnar) {
  auto compiled = compile_alg(name, target);
  auto& machine = compiled.machine();
  machine.set_engine(banzai::ExecEngine::kNative);
  auto workload =
      make_workload(algorithms::algorithm(name), machine.fields(), 256);
  if (columnar) {
    banzai::ColumnBatch cols;
    cols.gather(workload.data(), workload.size(), machine.fields().size());
    for (auto _ : state) {
      machine.run_batch(banzai::BatchView::columns(cols));
      benchmark::DoNotOptimize(machine.state());
    }
  } else {
    for (auto _ : state) {
      machine.run_batch(
          banzai::BatchView::rows(workload.data(), workload.size()));
      benchmark::DoNotOptimize(machine.state());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(workload.size()));
}

// The least expressive paper target that accepts `source`, if any — the same
// ladder the corpus tests climb (tests/test_util.h).
std::optional<atoms::BanzaiTarget> least_target(const std::string& source) {
  for (const auto& t : atoms::paper_targets()) {
    try {
      domino::compile(source, t);
      return t;
    } catch (...) {
    }
  }
  return std::nullopt;
}

void BM_Interpreter(benchmark::State& state, const std::string& name) {
  const auto& alg = algorithms::algorithm(name);
  domino::Program prog = domino::parse_and_check(alg.source);
  domino::Interpreter interp(prog);
  auto workload = make_workload(alg, interp.fields(), 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    banzai::Packet p = workload[i % workload.size()];
    interp.run(p);
    benchmark::DoNotOptimize(p);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Compile(benchmark::State& state, const std::string& name,
                const std::string& target) {
  const auto& alg = algorithms::algorithm(name);
  const auto t = *atoms::find_target(target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(domino::compile(alg.source, t));
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Engine triples on the same compiled machines: the closure path
  // (reference semantics), the fused micro-op kernel VM (banzai/kernel.h),
  // and the AOT-compiled native function (banzai/native.h).  Acceptance
  // bars: kernel >= 2x closure, native >= kernel, median packets/sec —
  // measured numbers are recorded in EXPERIMENTS.md.
  struct EngineCase {
    const char* label;
    banzai::ExecEngine engine;
  };
  std::vector<EngineCase> engines = {
      {"closure", banzai::ExecEngine::kClosure},
      {"kernel", banzai::ExecEngine::kKernel},
  };
  bool have_native = false;
  {
    // Native rows only when the host toolchain can build the pipelines —
    // otherwise a kNative machine silently degrades to the kernel VM and
    // the row would mislabel kernel numbers.
    auto probe = compile_alg("flowlets", "banzai-praw");
    have_native = probe.machine().native() != nullptr;
    if (have_native)
      engines.push_back({"native", banzai::ExecEngine::kNative});
    else
      std::fprintf(stderr, "note: native engine unavailable (%s); skipping "
                           "native rows\n",
                   probe.machine().native_fallback_reason().c_str());
  }
  // Native-currency batched execution, corpus-wide: one rows/cols pair per
  // mapping algorithm on its least paper target.
  if (have_native) {
    for (const auto& alg : algorithms::corpus()) {
      const auto least = least_target(alg.source);
      if (!least.has_value()) continue;  // CoDel doesn't map
      const std::string lname = alg.name;
      const std::string ltarget = least->name;
      for (const bool columnar : {false, true})
        benchmark::RegisterBenchmark(
            ("BM_RunBatch/" + lname + (columnar ? "/cols" : "/rows")).c_str(),
            [lname, ltarget, columnar](benchmark::State& s) {
              BM_RunBatch(s, lname, ltarget, columnar);
            });
    }
  }
  for (const char* name : {"flowlets", "heavy_hitters", "conga", "stfq"}) {
    const std::string target =
        std::string(name) == "conga" ? "banzai-pairs" : "banzai-nested";
    for (const EngineCase& ec : engines) {
      benchmark::RegisterBenchmark(
          (std::string("BM_MachineProcess/") + name + "/" + ec.label).c_str(),
          [name, target, ec](benchmark::State& s) {
            BM_MachineProcess(s, name, target, ec.engine);
          });
      // One BatchSim row per batch shape: rows (in-place, row-major — what
      // kAuto dispatches) and — on the compiled engines, where the column
      // loops exist — columnar (SoA transpose through banzai/column.h).
      // The closure engine would pay the transpose twice for identical
      // execution, so it keeps only the rows shape.
      benchmark::RegisterBenchmark(
          (std::string("BM_BatchSim/") + name + "/" + ec.label + "/rows")
              .c_str(),
          [name, target, ec](benchmark::State& s) {
            BM_BatchSim(s, name, target, ec.engine,
                        banzai::BatchDispatch::kRows);
          });
      if (ec.engine != banzai::ExecEngine::kClosure)
        benchmark::RegisterBenchmark(
            (std::string("BM_BatchSim/") + name + "/" + ec.label + "/cols")
                .c_str(),
            [name, target, ec](benchmark::State& s) {
              BM_BatchSim(s, name, target, ec.engine,
                          banzai::BatchDispatch::kColumnar);
            });
    }
    benchmark::RegisterBenchmark(
        (std::string("BM_Interpreter/") + name).c_str(),
        [name](benchmark::State& s) { BM_Interpreter(s, name); });
  }
  benchmark::RegisterBenchmark(
      "BM_PipelineSim/flowlets",
      [](benchmark::State& s) { BM_PipelineSim(s, "flowlets", "banzai-praw"); });
  benchmark::RegisterBenchmark("BM_Compile/flowlets",
                               [](benchmark::State& s) {
                                 BM_Compile(s, "flowlets", "banzai-praw");
                               });
  benchmark::RegisterBenchmark("BM_Compile/conga",
                               [](benchmark::State& s) {
                                 BM_Compile(s, "conga", "banzai-pairs");
                               });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
