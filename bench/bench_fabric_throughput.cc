// Event throughput of the NetFabric discrete-event simulator vs topology
// size, with and without in-switch programs.
//
//   $ ./build/bench/bench_fabric_throughput [num_packets]
//
// Each row runs `num_packets` of a Zipf flow trace through a leaf-spine
// fabric: "ecmp" forwards with flow-hash placement only (the event engine's
// floor), "conga" additionally runs the compiled CONGA transaction on every
// leaf with full feedback traffic.  The metric is discrete events per second:
// one packet costs 4+ events on a multi-hop path (inject, spine, egress,
// deliver, feedback), so events/sec is the engine's honest unit of work.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algorithms/corpus.h"
#include "bench_util.h"
#include "core/compiler.h"
#include "sim/netfabric.h"
#include "sim/tracegen.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::int64_t events = 0;
  std::int64_t delivered = 0;
  std::int64_t dropped = 0;
  double secs = 0;
};

Row run(int leaves, int spines, bool with_conga,
        const std::vector<netsim::TracePacket>& trace) {
  netsim::NetFabricConfig fc;
  fc.num_leaves = leaves;
  fc.num_spines = spines;
  fc.seed = 42;
  fc.port.bytes_per_tick = 600;
  fc.port.capacity_bytes = 60000;
  fc.port.ecn_threshold_bytes = 45000;
  netsim::NetFabric fabric(fc);
  if (with_conga) {
    auto compiled = domino::compile(algorithms::algorithm("conga").source,
                                    *atoms::find_target("banzai-pairs"));
    const auto binding = netsim::FieldBinding::resolve(
        compiled.machine().fields(), compiled.output_map());
    for (int l = 0; l < leaves; ++l)
      fabric.host_ingress(l, compiled.machine().clone(), binding);
  }
  for (const auto& tp : trace) {
    const auto [src, dst] = netsim::flow_endpoints(tp.flow_id, leaves, 0xfab);
    fabric.inject(tp, src, dst);
  }
  const auto t0 = std::chrono::steady_clock::now();
  fabric.run();
  Row r;
  r.secs = seconds_since(t0);
  r.events = fabric.stats().events;
  r.delivered = fabric.stats().delivered;
  r.dropped = fabric.stats().dropped;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  long requested = 200000;
  if (argc > 1) {
    requested = std::atol(argv[1]);
    if (requested <= 0) {
      std::fprintf(stderr, "usage: %s [num_packets > 0]\n", argv[0]);
      return 2;
    }
  }
  const auto num_packets = static_cast<std::size_t>(requested);

  netsim::FlowTraceConfig cfg;
  cfg.num_packets = num_packets;
  cfg.num_flows = 256;
  cfg.zipf_skew = 1.1;
  cfg.seed = 7;
  auto trace = netsim::generate_flow_trace(cfg);
  netsim::sort_by_arrival(trace);

  bench_util::header("NetFabric event throughput vs topology size");
  std::printf("\n%zu packets, Zipf(1.1) over %zu flows\n", trace.size(),
              cfg.num_flows);
  const std::vector<int> widths = {10, 8, 12, 12, 12, 10, 10};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"topology", "switch", "events", "events/s",
                                 "pkts/s", "delivered", "dropped"});
  bench_util::print_rule(widths);

  bool sane = true;
  for (const auto& [leaves, spines] : std::vector<std::pair<int, int>>{
           {2, 2}, {4, 4}, {8, 8}, {16, 8}}) {
    for (bool conga : {false, true}) {
      const Row r = run(leaves, spines, conga, trace);
      bench_util::print_row(
          widths,
          {std::to_string(leaves) + "x" + std::to_string(spines),
           conga ? "conga" : "ecmp",
           std::to_string(r.events),
           bench_util::fmt(static_cast<double>(r.events) / r.secs, 0),
           bench_util::fmt(static_cast<double>(r.delivered + r.dropped) /
                               r.secs, 0),
           std::to_string(r.delivered), std::to_string(r.dropped)});
      sane = sane && r.delivered + r.dropped ==
                         static_cast<std::int64_t>(trace.size());
    }
  }
  bench_util::print_rule(widths);
  std::printf("\nconservation held on every row: %s\n", sane ? "yes" : "NO");
  return sane ? 0 : 1;
}
