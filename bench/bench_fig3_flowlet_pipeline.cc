// Reproduces the paper's worked example end to end:
//   Figure 3a  — the flowlet switching source,
//   Figures 5-8 — every normalization artifact,
//   Figure 9   — dependency graph and condensed DAG (graphviz),
//   Figure 3b  — the 6-stage Banzai pipeline with stateful atoms marked,
// plus the synthesized atom configurations on the PRAW target.
#include <cstdio>

#include "algorithms/corpus.h"
#include "bench_util.h"
#include "core/compiler.h"
#include "core/pipeline.h"

int main() {
  const auto& alg = algorithms::algorithm("flowlets");

  bench_util::header("Figure 3a — flowlet switching in Domino");
  std::printf("%s\n", alg.source.c_str());

  auto target = *atoms::find_target("banzai-praw");
  domino::CompileResult r = domino::compile(alg.source, target);

  bench_util::header("Figure 5-7 — normalization artifacts");
  std::printf("--- after branch removal ---\n%s\n",
              r.normalized.branch_removed.str().c_str());
  std::printf("--- after state read/write flanks ---\n%s\n",
              r.normalized.flanked.str().c_str());
  std::printf("--- after SSA ---\n%s\n", r.normalized.ssa.str().c_str());

  bench_util::header("Figure 8 — three-address code");
  std::printf("%s\n", r.normalized.tac.str().c_str());

  bench_util::header("Figure 9a — dependency graph (graphviz)");
  std::printf("%s\n", domino::dep_graph_dot(r.normalized.tac).c_str());
  bench_util::header("Figure 9b — condensed DAG (graphviz)");
  std::printf("%s\n", domino::condensed_dag_dot(r.normalized.tac).c_str());

  bench_util::header("Figure 3b — Banzai pipeline (stateful atoms in [])");
  std::printf("%s\n", r.codegen.fitted.str().c_str());

  bench_util::header("Synthesized atom configurations (PRAW target)");
  for (const auto& rep : r.codegen.reports) {
    if (rep.stateful)
      std::printf("stage %d: %s\n         config: %s\n", rep.stage,
                  rep.description.c_str(), rep.config.c_str());
  }

  const bool shape_ok = r.num_stages() == 6 && r.max_atoms_per_stage() == 2;
  std::printf(
      "\nPaper comparison: 6 stages (got %zu), max 2 atoms/stage (got %zu), "
      "least atom PRAW: %s\n",
      r.num_stages(), r.max_atoms_per_stage(), shape_ok ? "MATCH" : "DIVERGE");
  return shape_ok ? 0 : 1;
}
