// Ablation: synthesis search strategy (DESIGN.md substitution #1).
//
// Compares (a) constant-hole seeding from codelet constants (our default,
// mirroring how SKETCH is "helped" by the paper's 5-bit restriction) against
// full-range enumeration, and (b) the candidate-count growth across the atom
// hierarchy — the price of the richer templates.
#include <cstdio>

#include "algorithms/corpus.h"
#include "bench_util.h"
#include "core/compiler.h"

int main() {
  bench_util::header(
      "Ablation — synthesis: seeded vs enumerated constant holes");

  const std::vector<int> widths = {16, 14, 14, 14, 14};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"Algorithm", "seeded cands", "seeded s",
                                 "enum cands", "enum s"});
  bench_util::print_rule(widths);

  const auto pairs = *atoms::find_target("banzai-pairs");
  double seeded_total = 0, enumerated_total = 0;
  for (const auto& alg : algorithms::corpus()) {
    if (alg.paper_least_atom == "Doesn't map") continue;

    domino::CompileOptions seeded;
    domino::CompileOptions enumerated;
    enumerated.synth.seed_constants = false;
    enumerated.synth.const_bits = 5;

    auto run = [&](const domino::CompileOptions& o, std::size_t* cands) {
      auto r = domino::compile(alg.source, pairs, o);
      *cands = 0;
      for (const auto& rep : r.codegen.reports)
        *cands += rep.synth_stats.candidates_tried;
      return r.codegen.synth_seconds;
    };
    std::size_t c1 = 0, c2 = 0;
    const double s1 = run(seeded, &c1);
    const double s2 = run(enumerated, &c2);
    seeded_total += s1;
    enumerated_total += s2;
    bench_util::print_row(widths, {alg.name, std::to_string(c1),
                                   bench_util::fmt(s1, 4),
                                   std::to_string(c2),
                                   bench_util::fmt(s2, 4)});
  }
  bench_util::print_rule(widths);
  std::printf("\nTotal synthesis time: seeded %.3f s, enumerated %.3f s\n",
              seeded_total, enumerated_total);

  bench_util::header(
      "Candidate growth across the hierarchy (flowlets' saved_hop codelet)");
  const std::vector<int> w2 = {12, 16, 12, 12};
  bench_util::print_rule(w2);
  bench_util::print_row(w2, {"Atom", "candidates", "preds", "accepted"});
  bench_util::print_rule(w2);
  const auto& flowlets = algorithms::algorithm("flowlets");
  for (const auto& t : atoms::paper_targets()) {
    std::size_t cands = 0, preds = 0;
    bool ok = true;
    try {
      auto r = domino::compile(flowlets.source, t);
      for (const auto& rep : r.codegen.reports) {
        cands += rep.synth_stats.candidates_tried;
        preds += rep.synth_stats.unique_predicates;
      }
    } catch (const domino::CompileError&) {
      ok = false;
    }
    bench_util::print_row(
        w2, {atoms::stateful_kind_name(t.stateful_atom),
             ok ? std::to_string(cands) : "-",
             ok ? std::to_string(preds) : "-", ok ? "yes" : "no"});
  }
  bench_util::print_rule(w2);
  return 0;
}
