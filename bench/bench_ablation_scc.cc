// Ablation: why pipelining must condense strongly connected components
// (§4.2, design choice called out in DESIGN.md).
//
// If the compiler ignored the state pair edges and scheduled a state read
// and its write into different stages, packets in flight between those
// stages would read stale state — lost updates, broken transactional
// semantics.  We demonstrate this quantitatively with a hand-built "split
// counter" machine, then show how many corpus algorithms would be
// mis-scheduled by a pair-edge-free dependency graph.
#include <cstdio>
#include <map>
#include <set>

#include "algorithms/corpus.h"
#include "banzai/sim.h"
#include "bench_util.h"
#include "core/normalize.h"
#include "core/parser.h"
#include "core/pipeline.h"
#include "core/sema.h"

namespace {

// The dependency graph WITHOUT the state pair edges: read-after-write only.
domino::DepGraph graph_without_pair_edges(const domino::TacProgram& tac) {
  domino::DepGraph g;
  g.edges.assign(tac.stmts.size(), {});
  std::map<std::string, int> def_of;
  for (std::size_t i = 0; i < tac.stmts.size(); ++i)
    if (auto w = tac.stmts[i].field_written())
      def_of[*w] = static_cast<int>(i);
  for (std::size_t i = 0; i < tac.stmts.size(); ++i)
    for (const auto& f : tac.stmts[i].fields_read())
      if (auto it = def_of.find(f); it != def_of.end())
        g.edges[static_cast<std::size_t>(it->second)].push_back(
            static_cast<int>(i));
  return g;
}

}  // namespace

int main() {
  bench_util::header(
      "Ablation — SCC condensation (state pair edges) vs naive scheduling");

  // 1. Quantitative demonstration: counter split across stages 1 and 3.
  {
    banzai::FieldTable ft;
    const auto f_old = ft.intern("old");
    banzai::Machine m(banzai::MachineSpec{"split", "none", 3, 300, 10},
                      banzai::FieldTable{});
    m.state().declare("c", 1, true, 0);
    m.stages().resize(3);
    banzai::ConfiguredAtom reader;
    reader.kind = banzai::AtomKind::kStateful;
    reader.exec = [f_old](const banzai::Packet&, banzai::Packet& out,
                          banzai::StateStore& st) {
      out.set(f_old, st.var("c").load_scalar());
    };
    banzai::ConfiguredAtom writer;
    writer.kind = banzai::AtomKind::kStateful;
    writer.exec = [f_old](const banzai::Packet& in, banzai::Packet&,
                          banzai::StateStore& st) {
      st.var("c").store_scalar(in.get(f_old) + 1);
    };
    m.stages()[0].atoms.push_back(reader);
    m.stages()[2].atoms.push_back(writer);
    m.fields() = std::move(ft);

    const int n = 10000;
    banzai::PipelineSim sim(m);
    for (int i = 0; i < n; ++i) sim.enqueue(banzai::Packet(m.fields().size()));
    sim.drain();
    const auto final_count = m.state().var("c").load_scalar();
    std::printf(
        "split counter (read in stage 1, increment written in stage 3):\n"
        "  %d packets -> counter = %d (sequential semantics require %d)\n"
        "  lost updates: %d (%.1f%%) — exactly the §2.3 atomicity violation\n\n",
        n, final_count, n, n - final_count,
        100.0 * (n - final_count) / n);
    if (final_count == n) {
      std::printf("UNEXPECTED: no updates lost\n");
      return 1;
    }
  }

  // 2. How much of the corpus a pair-edge-free schedule would mis-compile.
  const std::vector<int> widths = {16, 16, 16, 20};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"Algorithm", "SCCs (with)", "SCCs (without)",
                                 "state split stages?"});
  bench_util::print_rule(widths);
  int broken = 0, stateful_algs = 0;
  for (const auto& alg : algorithms::corpus()) {
    domino::Program p = domino::parse(alg.source);
    domino::analyze(p);
    auto tac = domino::normalize(p).tac;

    auto with = domino::strongly_connected_components(
        domino::build_dep_graph(tac));
    auto without = domino::strongly_connected_components(
        graph_without_pair_edges(tac));

    // Does any state variable's read and write end up in different SCCs
    // without pair edges?
    bool split = false;
    std::map<std::string, std::set<std::size_t>> comp_of_var;
    for (std::size_t k = 0; k < without.size(); ++k)
      for (int v : without[k]) {
        const auto& s = tac.stmts[static_cast<std::size_t>(v)];
        if (s.touches_state()) comp_of_var[s.state_var].insert(k);
      }
    for (const auto& [var, comps] : comp_of_var)
      if (comps.size() > 1) split = true;
    if (!comp_of_var.empty()) ++stateful_algs;
    if (split) ++broken;

    bench_util::print_row(widths, {alg.name, std::to_string(with.size()),
                                   std::to_string(without.size()),
                                   split ? "YES (broken)" : "no"});
  }
  bench_util::print_rule(widths);
  std::printf(
      "\n%d of %d stateful algorithms would have state split across stages\n"
      "without pair edges; SCC condensation is what keeps every state\n"
      "variable inside a single atom.\n",
      broken, stateful_algs);
  return broken > 0 ? 0 : 1;
}
