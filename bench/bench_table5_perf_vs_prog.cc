// Reproduces Table 5: "Programmability increases with more complex atoms,
// but performance decreases."
//
// For each stateful atom: minimum circuit delay (from the calibrated cost
// model), programmability (how many of the Table 4 algorithms the compiler
// maps onto a target with that atom — measured by actually compiling all of
// them), and performance (maximum line rate in billion packets/s = inverse
// delay).
#include <cstdio>

#include "algorithms/corpus.h"
#include "atoms/circuit.h"
#include "bench_util.h"
#include "core/compiler.h"

int main() {
  bench_util::header(
      "Table 5 — Performance vs programmability (measured vs paper)");

  // Paper's programmability and delay columns for comparison.
  struct PaperRow {
    const char* name;
    double delay_ps;
    int algorithms;
    double rate_gpps;
  };
  const PaperRow paper[] = {
      {"Write", 176, 1, 5.68},   {"RAW", 316, 2, 3.16},
      {"PRAW", 393, 4, 2.54},    {"IfElseRAW", 392, 5, 2.55},
      {"Sub", 409, 6, 2.44},     {"Nested", 580, 9, 1.72},
      {"Pairs", 609, 10, 1.64},
  };

  const std::vector<int> widths = {12, 12, 12, 14, 14, 12, 12};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"Atom", "delay ps", "(paper)", "# algs",
                                 "(paper)", "Gpkts/s", "(paper)"});
  bench_util::print_rule(widths);

  bool monotone_prog = true, monotone_rate = true;
  int prev_prog = -1;
  double prev_rate = 1e9;
  for (const auto& target : atoms::paper_targets()) {
    int mapped = 0;
    for (const auto& alg : algorithms::corpus()) {
      try {
        domino::compile(alg.source, target);
        ++mapped;
      } catch (const domino::CompileError&) {
      }
    }
    const atoms::Circuit c = atoms::stateful_circuit(target.stateful_atom);
    const char* name = atoms::stateful_kind_name(target.stateful_atom);
    const PaperRow* prow = nullptr;
    for (const auto& r : paper)
      if (std::string(r.name) == name) prow = &r;

    bench_util::print_row(
        widths,
        {name, bench_util::fmt(c.min_delay_ps(), 0),
         prow ? bench_util::fmt(prow->delay_ps, 0) : "-",
         std::to_string(mapped),
         prow ? std::to_string(prow->algorithms) : "-",
         bench_util::fmt(c.max_line_rate_gpps(), 2),
         prow ? bench_util::fmt(prow->rate_gpps, 2) : "-"});

    if (mapped < prev_prog) monotone_prog = false;
    // Allow the paper's own PRAW/IfElseRAW non-monotonicity margin (1 ps).
    if (c.max_line_rate_gpps() > prev_rate + 0.02) monotone_rate = false;
    prev_prog = mapped;
    prev_rate = c.max_line_rate_gpps();
  }
  bench_util::print_rule(widths);

  std::printf(
      "\nShape check: programmability non-decreasing along the hierarchy: "
      "%s;\nmax line rate non-increasing: %s.\n",
      monotone_prog ? "yes" : "NO", monotone_rate ? "yes" : "NO");
  std::printf(
      "(The paper's own Table 5 notes a 1 ps PRAW/IfElseRAW inversion from\n"
      "synthesis heuristics — footnote 9; our model makes them equal.)\n");
  return (monotone_prog && monotone_rate) ? 0 : 1;
}
