// Throughput of the streaming FleetService on the paper's worked example
// (flowlet switching): an ingest-rate sweep × shard count × backpressure
// policy.  For each cell the ingest thread offers the trace at the target
// rate (or as fast as it can for the unlimited row), workers drain their
// rings continuously, and the row reports achieved ingest rate, delivered
// packets/sec, drop rate, and mean enqueue-to-egress latency in ingest ticks.
//
//   $ ./build/bench/bench_service_throughput [num_packets]
//
// The acceptance bar: on the unlimited-rate Block rows, aggregate delivered
// packets/sec scales >= 2x from 1 to 4 shards on a steady multi-flow trace
// (given >= 4 hardware threads), and the DropTail rows report the drop rate
// the bounded rings impose under overload.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "algorithms/corpus.h"
#include "banzai/service.h"
#include "bench_util.h"
#include "core/compiler.h"
#include "sim/tracegen.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<banzai::Packet> flowlet_packets(
    const banzai::Machine& machine,
    const std::vector<netsim::TracePacket>& trace) {
  const auto& ft = machine.fields();
  const auto f_sport = ft.id_of("sport");
  const auto f_dport = ft.id_of("dport");
  const auto f_arrival = ft.id_of("arrival");
  std::vector<banzai::Packet> pkts;
  pkts.reserve(trace.size());
  for (const auto& tp : trace) {
    banzai::Packet p(ft.size());
    p.set(f_sport, 1000 + tp.flow_id);
    p.set(f_dport, 80);
    p.set(f_arrival, static_cast<banzai::Value>(tp.arrival));
    pkts.push_back(std::move(p));
  }
  return pkts;
}

struct RowResult {
  double ingest_pps = 0;
  double delivered_pps = 0;
  double drop_pct = 0;
  double latency_ticks = 0;
};

// Offers the trace at `target_pps` (0 = unlimited), flushes, and reports.
RowResult run_cell(const banzai::Machine& prototype,
                   const std::vector<banzai::Packet>& trace,
                   std::size_t shards, banzai::Backpressure policy,
                   double target_pps) {
  banzai::ServiceConfig cfg;
  cfg.num_shards = shards;
  cfg.num_slots = 64;
  cfg.batch_size = 256;
  cfg.ring_capacity = 1024;
  cfg.backpressure = policy;
  cfg.flow_key = {prototype.fields().id_of("sport"),
                  prototype.fields().id_of("dport")};
  banzai::FleetService svc(prototype, cfg);
  svc.start();

  const auto t0 = Clock::now();
  if (target_pps <= 0) {
    for (const banzai::Packet& p : trace) svc.ingest(p);
  } else {
    const double ns_per_pkt = 1e9 / target_pps;
    std::uint64_t sent = 0;
    for (const banzai::Packet& p : trace) {
      const auto due =
          t0 + std::chrono::nanoseconds(
                   static_cast<std::uint64_t>(ns_per_pkt * sent));
      while (Clock::now() < due) {
        // busy-wait: pacing granularity beats sleep granularity here
      }
      svc.ingest(p);
      ++sent;
    }
  }
  const double ingest_secs = seconds_since(t0);
  svc.flush();
  const double total_secs = seconds_since(t0);
  const auto st = svc.stats();
  svc.stop();

  RowResult row;
  row.ingest_pps = static_cast<double>(st.ingested) / ingest_secs;
  row.delivered_pps = static_cast<double>(st.delivered) / total_secs;
  row.drop_pct = st.ingested > 0 ? 100.0 * static_cast<double>(st.dropped) /
                                       static_cast<double>(st.ingested)
                                 : 0;
  row.latency_ticks = st.avg_latency_ticks;
  return row;
}

const char* policy_name(banzai::Backpressure p) {
  return p == banzai::Backpressure::kBlock ? "Block" : "DropTail";
}

}  // namespace

int main(int argc, char** argv) {
  long requested = 300000;
  if (argc > 1) {
    requested = std::atol(argv[1]);
    if (requested <= 0) {
      std::fprintf(stderr, "usage: %s [num_packets > 0]\n", argv[0]);
      return 2;
    }
  }
  const std::size_t num_packets = static_cast<std::size_t>(requested);

  const auto& alg = algorithms::algorithm("flowlets");
  auto target = *atoms::find_target("banzai-praw");
  domino::CompileResult compiled = domino::compile(alg.source, target);

  netsim::FlowTraceConfig cfg;
  cfg.num_packets = num_packets;
  cfg.num_flows = 1000;
  cfg.zipf_skew = 1.1;
  cfg.seed = 42;
  const auto trace =
      flowlet_packets(compiled.machine(), netsim::generate_flow_trace(cfg));

  bench_util::header(
      "FleetService streaming throughput — flowlet switching, " +
      std::to_string(trace.size()) + " packets, Zipf(1.1) over " +
      std::to_string(cfg.num_flows) + " flows (" +
      std::to_string(std::thread::hardware_concurrency()) + " hw threads)");

  const std::vector<int> widths = {10, 8, 12, 13, 14, 8, 12};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"policy", "shards", "offered", "ingest pps",
                                 "delivered pps", "drop%", "latency(tk)"});
  bench_util::print_rule(widths);

  struct Rate {
    double pps;
    const char* label;
  };
  const Rate rates[] = {{500000, "500k/s"}, {0, "unlimited"}};

  double one_shard_pps = 0, four_shard_pps = 0;
  double droptail_worst_drop = 0;
  for (banzai::Backpressure policy :
       {banzai::Backpressure::kBlock, banzai::Backpressure::kDropTail}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                               std::size_t{8}}) {
      for (const Rate& rate : rates) {
        const RowResult row =
            run_cell(compiled.machine(), trace, shards, policy, rate.pps);
        bench_util::print_row(
            widths,
            {policy_name(policy), std::to_string(shards), rate.label,
             bench_util::fmt(row.ingest_pps, 0),
             bench_util::fmt(row.delivered_pps, 0),
             bench_util::fmt(row.drop_pct, 1),
             bench_util::fmt(row.latency_ticks, 1)});
        if (policy == banzai::Backpressure::kBlock && rate.pps <= 0) {
          if (shards == 1) one_shard_pps = row.delivered_pps;
          if (shards == 4) four_shard_pps = row.delivered_pps;
        }
        if (policy == banzai::Backpressure::kDropTail &&
            row.drop_pct > droptail_worst_drop)
          droptail_worst_drop = row.drop_pct;
      }
    }
    bench_util::print_rule(widths);
  }

  std::printf("\n4-shard vs 1-shard delivered (Block, unlimited): %.2fx\n",
              one_shard_pps > 0 ? four_shard_pps / one_shard_pps : 0.0);
  std::printf("worst DropTail drop rate under overload: %.1f%%\n",
              droptail_worst_drop);
  return 0;
}
