// Wire-path throughput: what the byte-stream front end costs on top of the
// field-vector engine.  For each algorithm the harness pre-renders the
// seeded workload as packed network frames (the algorithm's wire spec from
// the corpus), then times three single-thread loops over the same trace:
//
//   fields      process() on pre-built field vectors — the engine alone
//   parse+run   parse each frame, process it — ingress codec added
//   full wire   parse, process, deparse back into a frame buffer — the
//               complete byte->byte middlebox path
//
// Each wire row reports packets/sec AND bytes/sec (header bytes moved per
// direction), the number EXPERIMENTS.md records; the fields row keeps
// pkts/sec only since no bytes cross it.
//
//   $ ./build/bench/bench_wire_throughput [num_packets]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/machine.h"
#include "bench_util.h"
#include "core/compiler.h"
#include "wire/codec.h"

namespace {

using Clock = std::chrono::steady_clock;

const char* kAlgorithms[] = {"flowlets", "heavy_hitters", "rcp",
                             "sampled_netflow"};

struct WirePrep {
  domino::CompileResult compiled;
  wire::WireCodec rx;
  wire::WireCodec tx;
  std::vector<banzai::Packet> inputs;        // pre-built field vectors
  std::vector<std::uint8_t> frames;          // packed, back to back
  std::size_t frame_bytes = 0;
};

// The least expressive paper target that accepts the program, as the Table 4
// harness does — not every algorithm maps to PRAW.
atoms::BanzaiTarget least_target(const std::string& source) {
  for (const auto& t : atoms::paper_targets()) {
    try {
      domino::compile(source, t);
      return t;
    } catch (const domino::CompileError&) {
    }
  }
  throw std::runtime_error("no paper target accepts this program");
}

WirePrep prepare(const algorithms::AlgorithmInfo& alg,
                 std::size_t num_packets) {
  domino::CompileResult compiled =
      domino::compile(alg.source, least_target(alg.source));
  const auto& ft = compiled.machine().fields();
  const wire::WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
  wire::WireCodec rx(spec, ft);
  wire::WireCodec tx(spec, ft, compiled.output_map());

  std::vector<banzai::Packet> inputs;
  inputs.reserve(num_packets);
  std::mt19937 rng(7);
  for (std::size_t i = 0; i < num_packets; ++i) {
    std::map<std::string, banzai::Value> f;
    alg.workload(rng, static_cast<int>(i), f);
    banzai::Packet p(ft.size());
    for (const auto& [k, v] : f)
      if (ft.try_id_of(k).has_value()) p.set(ft.id_of(k), v);
    inputs.push_back(std::move(p));
  }

  const std::size_t hb = rx.header_bytes();
  std::vector<std::uint8_t> frames(num_packets * hb);
  for (std::size_t i = 0; i < num_packets; ++i)
    rx.deparse_into(inputs[i], frames.data() + i * hb);

  return WirePrep{std::move(compiled), std::move(rx), std::move(tx),
                  std::move(inputs), std::move(frames), hb};
}

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string mb_per_sec(double bytes_per_sec) {
  return bench_util::fmt(bytes_per_sec / 1e6, 1);
}

}  // namespace

int main(int argc, char** argv) {
  long requested = 2000000;
  if (argc > 1) {
    requested = std::atol(argv[1]);
    if (requested <= 0) {
      std::fprintf(stderr, "usage: %s [num_packets > 0]\n", argv[0]);
      return 2;
    }
  }
  const std::size_t n = static_cast<std::size_t>(requested);

  bench_util::header("Wire-path throughput — parse/deparse cost on " +
                     std::to_string(n) + " packets per algorithm");
  const std::vector<int> widths = {16, 10, 6, 12, 10, 10};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"algorithm", "path", "hdr B", "pkts/sec",
                                 "MB/s in", "MB/s out"});
  bench_util::print_rule(widths);

  for (const char* name : kAlgorithms) {
    const auto& alg = algorithms::algorithm(name);
    WirePrep prep = prepare(alg, n);
    const std::size_t hb = prep.frame_bytes;
    banzai::Value sink = 0;

    // fields: the engine alone, on pre-built field vectors.
    {
      banzai::Machine m = prep.compiled.machine().clone();
      const auto t0 = Clock::now();
      for (const banzai::Packet& p : prep.inputs) sink ^= m.process(p)[0];
      const double dt = secs_since(t0);
      bench_util::print_row(
          widths, {name, "fields", std::to_string(hb),
                   bench_util::fmt(static_cast<double>(n) / dt, 0), "-", "-"});
    }

    // parse+run: ingress bytes in, field vectors out.
    {
      banzai::Machine m = prep.compiled.machine().clone();
      banzai::Packet pkt(prep.rx.num_table_fields());
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < n; ++i) {
        const auto r = prep.rx.parse(prep.frames.data() + i * hb, hb, pkt);
        if (!r.ok()) return 1;
        sink ^= m.process(pkt)[0];
      }
      const double dt = secs_since(t0);
      const double bps = static_cast<double>(n * hb) / dt;
      bench_util::print_row(
          widths, {name, "parse+run", std::to_string(hb),
                   bench_util::fmt(static_cast<double>(n) / dt, 0),
                   mb_per_sec(bps), "-"});
    }

    // full wire: bytes in, bytes out.
    {
      banzai::Machine m = prep.compiled.machine().clone();
      banzai::Packet pkt(prep.rx.num_table_fields());
      std::vector<std::uint8_t> out(hb);
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < n; ++i) {
        const auto r = prep.rx.parse(prep.frames.data() + i * hb, hb, pkt);
        if (!r.ok()) return 1;
        prep.tx.deparse_into(m.process(pkt), out.data());
        sink ^= out[0];
      }
      const double dt = secs_since(t0);
      const double bps = static_cast<double>(n * hb) / dt;
      bench_util::print_row(
          widths, {name, "full wire", std::to_string(hb),
                   bench_util::fmt(static_cast<double>(n) / dt, 0),
                   mb_per_sec(bps), mb_per_sec(bps)});
    }
    bench_util::print_rule(widths);
    if (sink == 0x7fffffff) std::printf("(sink)\n");  // defeat dead-code elim
  }
  return 0;
}
