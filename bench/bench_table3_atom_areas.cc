// Reproduces Table 3: "Atom areas in a 32 nm standard-cell library.  All
// atoms meet timing at 1 GHz."
//
// The paper's numbers come from Synopsys Design Compiler; ours come from the
// calibrated gate-level cost model (src/atoms/circuit.*, substitution #2 in
// DESIGN.md).  The bench prints model vs paper side by side plus the
// per-template primitive inventory.
#include <cstdio>

#include "atoms/circuit.h"
#include "bench_util.h"

int main() {
  using namespace atoms;
  bench_util::header(
      "Table 3 — Atom areas (um^2, 32 nm), model vs paper");

  const std::vector<int> widths = {12, 56, 12, 12, 8};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"Atom", "Description (paper)", "Model um^2",
                                 "Paper um^2", "err %"});
  bench_util::print_rule(widths);

  const std::vector<std::pair<std::string, std::string>> desc = {
      {"Stateless", "arith/logic/relational/conditional on packet fields"},
      {"Write", "read/write packet field/constant into state"},
      {"RAW", "add to state OR write state"},
      {"PRAW", "RAW predicated on a condition, else unchanged"},
      {"IfElseRAW", "two RAWs: one each for predicate true/false"},
      {"Sub", "IfElseRAW plus subtraction in the update"},
      {"Nested", "Sub plus a second predication level (4-way)"},
      {"Pairs", "Nested over a pair of state variables"},
  };

  for (const auto& row : paper_atom_table()) {
    Circuit c = row.name == "Stateless"
                    ? stateless_circuit()
                    : [&] {
                        for (const auto& t : stateful_hierarchy())
                          if (t.name == row.name)
                            return stateful_circuit(t.kind);
                        return stateless_circuit();
                      }();
    std::string d;
    for (const auto& [n, text] : desc)
      if (n == row.name) d = text;
    const double err =
        100.0 * (c.area_um2() - row.area_um2) / row.area_um2;
    bench_util::print_row(
        widths, {row.name, d, bench_util::fmt(c.area_um2(), 0),
                 bench_util::fmt(row.area_um2, 0), bench_util::fmt(err, 1)});
  }
  bench_util::print_rule(widths);

  std::printf("\nPer-template primitive inventories (model internals):\n");
  for (const auto& t : stateful_hierarchy()) {
    Circuit c = stateful_circuit(t.kind);
    std::printf("  %-10s:", t.name.c_str());
    for (const auto& [p, n] : c.inventory)
      std::printf(" %dx%s", n, primitive_name(p));
    std::printf("\n");
  }

  std::printf("\nAll atoms meet timing at 1 GHz: ");
  bool ok = stateless_circuit().min_delay_ps() < 1000.0;
  for (const auto& t : stateful_hierarchy())
    ok = ok && stateful_circuit(t.kind).min_delay_ps() < 1000.0;
  std::printf("%s\n", ok ? "yes" : "NO (model violates the paper's claim!)");
  return ok ? 0 : 1;
}
