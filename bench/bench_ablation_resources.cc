// Ablation: sensitivity of the corpus to the target's resource limits
// (§2.4/§5.2 design choice: 32 stages, ~10 stateful atoms per stage).
// Sweeps pipeline depth and stateful width on the Pairs target and counts
// how many Table 4 algorithms still compile — the all-or-nothing boundary.
#include <cstdio>

#include "algorithms/corpus.h"
#include "bench_util.h"
#include "core/compiler.h"

namespace {

int algorithms_fitting(const atoms::BanzaiTarget& target) {
  int fit = 0;
  for (const auto& alg : algorithms::corpus()) {
    try {
      domino::compile(alg.source, target);
      ++fit;
    } catch (const domino::CompileError&) {
    }
  }
  return fit;
}

}  // namespace

int main() {
  bench_util::header(
      "Ablation — resource limits: algorithms fitting vs pipeline depth");
  const std::vector<int> widths = {14, 18};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"depth", "algorithms fit"});
  bench_util::print_rule(widths);
  int prev = -1;
  bool monotone = true;
  for (std::size_t depth : {1u, 2u, 3u, 4u, 6u, 8u, 16u, 32u}) {
    atoms::BanzaiTarget t = *atoms::find_target("banzai-pairs");
    t.pipeline_depth = depth;
    const int fit = algorithms_fitting(t);
    bench_util::print_row(widths, {std::to_string(depth),
                                   std::to_string(fit) + " / 11"});
    if (fit < prev) monotone = false;
    prev = fit;
  }
  bench_util::print_rule(widths);

  bench_util::header(
      "Ablation — resource limits: stateful atoms per stage");
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"stateful/stage", "algorithms fit"});
  bench_util::print_rule(widths);
  for (std::size_t width : {1u, 2u, 3u, 10u}) {
    atoms::BanzaiTarget t = *atoms::find_target("banzai-pairs");
    t.stateful_per_stage = width;
    const int fit = algorithms_fitting(t);
    bench_util::print_row(widths, {std::to_string(width),
                                   std::to_string(fit) + " / 11"});
  }
  bench_util::print_rule(widths);
  std::printf(
      "\nWith width fitting, narrower stages cost depth rather than\n"
      "programs; depth is the binding constraint (monotone: %s).\n",
      monotone ? "yes" : "NO");
  return monotone ? 0 : 1;
}
