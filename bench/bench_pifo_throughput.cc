// Queue-discipline throughput: drop-tail FIFO vs PIFO (explicit ranks, STFQ
// ranks, two-level hierarchical ranks), plus the per-engine cost of the rank
// computation itself.
//
//   $ ./build/bench/bench_pifo_throughput [num_packets]
//
// Part 1 pushes the same Zipf-skewed overload trace through one bottleneck
// port under each discipline and reports packets/sec of simulate_queue.  The
// FIFO row is the queue layer's floor (O(1) admits); "pifo-rank-field" adds
// the ordered buffer (O(log n) insert + eviction scan); "pifo-stfq" and
// "pifo-hsched" additionally run the compiled rank transaction on every
// arrival, so the deltas separate data-structure cost from machine cost.
//
// Part 2 isolates the rank machines: ranks/sec of each rank_corpus() program
// on each execution engine (closure walk, kernel VM, native AOT when the
// host toolchain allows — otherwise the native row reports the kernel
// fallback, which is what a PifoQueue on that host would actually run).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/machine.h"
#include "bench_util.h"
#include "sim/queue.h"
#include "sim/rng.h"
#include "sim/sched.h"
#include "sim/tracegen.h"
#include "sim/zipf.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

netsim::QueueConfig bottleneck_config() {
  netsim::QueueConfig cfg;
  cfg.bytes_per_tick = 500;     // ~6x overloaded by the trace below
  cfg.capacity_bytes = 20000;
  return cfg;
}

// Zipf-skewed constant-rate overload: 3 full-size packets per tick against
// the 500 B/tick bottleneck, the fairness scenario's traffic shape.
std::vector<netsim::TracePacket> make_trace(long packets) {
  netsim::Zipf zipf(64, 1.0);
  netsim::Xoshiro256 rng(42);
  std::vector<netsim::TracePacket> trace;
  trace.reserve(static_cast<std::size_t>(packets));
  for (long i = 0; i < packets; ++i) {
    netsim::TracePacket p;
    p.arrival = i / 3;
    p.flow_id = static_cast<std::int32_t>(zipf.sample(rng));
    p.size_bytes = 1000;
    trace.push_back(p);
  }
  return trace;
}

struct Row {
  std::string name;
  long packets = 0;
  std::int64_t dropped = 0;
  double secs = 0;
};

Row run_discipline(const std::string& name, netsim::QueueDiscipline& q,
                   const std::vector<netsim::TracePacket>& trace) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto samples = netsim::simulate_queue(trace, q);
  Row r;
  r.name = name;
  r.secs = seconds_since(t0);
  r.packets = static_cast<long>(samples.size());
  for (const auto& s : samples) r.dropped += s.dropped ? 1 : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  long requested = 200000;
  if (argc > 1) {
    requested = std::atol(argv[1]);
    if (requested <= 0) {
      std::fprintf(stderr, "usage: %s [num_packets > 0]\n", argv[0]);
      return 2;
    }
  }
  const std::vector<netsim::TracePacket> trace = make_trace(requested);

  bench_util::header("Discipline throughput, one bottleneck port (" +
                     std::to_string(requested) + " pkts)");
  const std::vector<int> w = {16, 10, 10, 12};
  bench_util::print_rule(w);
  bench_util::print_row(w, {"discipline", "pkts", "dropped", "pkts/sec"});
  bench_util::print_rule(w);

  std::vector<Row> rows;
  {
    netsim::ByteQueue q(bottleneck_config());
    rows.push_back(run_discipline("fifo", q, trace));
  }
  {
    // Rank taken verbatim from QueueItem::rank (simulate_queue passes 0, so
    // this measures the ordered buffer alone).
    netsim::PifoQueue q(bottleneck_config());
    rows.push_back(run_discipline("pifo-rank-field", q, trace));
  }
  {
    netsim::PifoQueue q(bottleneck_config(),
                        netsim::compile_rank_machine("stfq"));
    rows.push_back(run_discipline("pifo-stfq", q, trace));
  }
  {
    netsim::PifoQueue q(bottleneck_config(),
                        netsim::compile_rank_machine("hsched"));
    rows.push_back(run_discipline("pifo-hsched", q, trace));
  }
  for (const auto& r : rows) {
    bench_util::print_row(
        w, {r.name, std::to_string(r.packets), std::to_string(r.dropped),
            bench_util::fmt(r.packets / r.secs, 0)});
  }
  bench_util::print_rule(w);

  bench_util::header("Rank-machine overhead per engine (ranks/sec)");
  const std::vector<int> w2 = {14, 14, 14, 14};
  bench_util::print_rule(w2);
  bench_util::print_row(w2, {"program", "closure", "kernel", "native"});
  bench_util::print_rule(w2);
  const long rank_calls = std::max(10000L, requested);
  for (const auto& alg : algorithms::rank_corpus()) {
    std::vector<std::string> cells = {alg.name};
    for (const auto engine :
         {banzai::ExecEngine::kClosure, banzai::ExecEngine::kKernel,
          banzai::ExecEngine::kNative}) {
      netsim::RankMachine rm = netsim::compile_rank_machine(alg.name, engine);
      const auto t0 = std::chrono::steady_clock::now();
      banzai::Value sink = 0;
      for (long i = 0; i < rank_calls; ++i) {
        netsim::QueueItem item;
        item.flow_id = static_cast<std::int32_t>(i % 64);
        item.tenant_id = static_cast<std::int32_t>(i % 8);
        item.size_bytes = 1000;
        netsim::RankFeedback fb;
        fb.vt = (i / 3) * 333;
        sink ^= rm.rank(i, fb, item);
      }
      const double secs = seconds_since(t0);
      if (sink == 0x5eed) std::printf(" ");  // defeat dead-code elimination
      cells.push_back(bench_util::fmt(rank_calls / secs, 0));
    }
    bench_util::print_row(w2, cells);
  }
  bench_util::print_rule(w2);
  return 0;
}
