// Shared table-printing helpers for the benchmark/reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace bench_util {

inline void print_rule(const std::vector<int>& widths) {
  std::printf("+");
  for (int w : widths) {
    for (int i = 0; i < w + 2; ++i) std::printf("-");
    std::printf("+");
  }
  std::printf("\n");
}

inline void print_row(const std::vector<int>& widths,
                      const std::vector<std::string>& cells) {
  std::printf("|");
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const std::string& c = i < cells.size() ? cells[i] : "";
    std::printf(" %-*s |", widths[i], c.c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench_util
