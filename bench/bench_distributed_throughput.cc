// Throughput of the distributed fleet (src/dist/): aggregate frames/sec
// through the front tier at 1 vs 2 vs 4 in-process workers, with the
// single-process FleetService byte path as the no-RPC baseline.
//
//   $ ./build/bench/bench_distributed_throughput [num_frames]
//
// Workers here are in-process WorkerServer instances behind real loopback
// TCP, so the numbers measure the protocol cost (framing, batching, one
// outstanding request per worker) and the scale-out win, not fork/exec
// overhead.  Every run cross-checks the egress count so a fast-but-wrong
// configuration cannot post a number.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/service.h"
#include "bench_util.h"
#include "core/compiler.h"
#include "dist/front.h"
#include "dist/worker.h"
#include "wire/codec.h"

namespace {

constexpr std::size_t kSlots = 16;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  long requested = 200000;
  if (argc > 1) {
    requested = std::atol(argv[1]);
    if (requested <= 0) {
      std::fprintf(stderr, "usage: %s [num_frames > 0]\n", argv[0]);
      return 2;
    }
  }
  const std::size_t num_frames = static_cast<std::size_t>(requested);

  const auto& alg = algorithms::algorithm("flowlets");
  const auto compiled =
      domino::compile(alg.source, *atoms::find_target("banzai-praw"));
  const auto& ft = compiled.machine().fields();
  const wire::WireSpec spec = wire::parse_wire_spec(alg.wire_spec);
  auto rx = std::make_shared<const wire::WireCodec>(spec, ft);
  auto tx = std::make_shared<const wire::WireCodec>(spec, ft,
                                                    compiled.output_map());

  std::mt19937 rng(42);
  std::vector<std::vector<std::uint8_t>> frames;
  frames.reserve(num_frames);
  for (std::size_t i = 0; i < num_frames; ++i) {
    std::map<std::string, banzai::Value> f;
    alg.workload(rng, static_cast<int>(i), f);
    banzai::Packet p(ft.size());
    for (const auto& [k, v] : f)
      if (ft.try_id_of(k).has_value()) p.set(ft.id_of(k), v);
    frames.push_back(rx->deparse(p));
  }

  std::printf("distributed fleet throughput: %zu frames, %zu slots, "
              "algorithm=flowlets\n\n",
              num_frames, kSlots);
  std::printf("%-28s %12s %14s\n", "configuration", "seconds", "frames/sec");

  // Baseline: one FleetService in-process, no RPC tier.
  {
    banzai::ServiceConfig cfg;
    cfg.num_shards = 2;
    cfg.num_slots = kSlots;
    cfg.batch_size = 64;
    cfg.ring_capacity = 1024;
    cfg.flow_key = {ft.id_of("sport"), ft.id_of("dport")};
    banzai::FleetService svc(compiled.machine(), cfg);
    svc.set_wire(rx, tx);
    svc.start();
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& f : frames) svc.ingest_frame(f.data(), f.size());
    svc.flush();
    const std::size_t egress = svc.drain_egress_frames().size();
    const double dt = seconds_since(t0);
    svc.stop();
    if (egress != num_frames) {
      std::fprintf(stderr, "baseline egress mismatch: %zu != %zu\n", egress,
                   num_frames);
      return 1;
    }
    std::printf("%-28s %12.3f %14.0f\n", "in-process (no RPC)", dt,
                static_cast<double>(num_frames) / dt);
  }

  for (const std::size_t n_workers : {1u, 2u, 4u}) {
    std::vector<std::unique_ptr<dist::WorkerServer>> workers;
    for (std::size_t w = 0; w < n_workers; ++w) {
      dist::WorkerConfig wc;
      wc.algorithm = "flowlets";
      wc.num_slots = kSlots;
      wc.num_shards = 2;
      wc.batch_size = 64;
      wc.ring_capacity = 1024;
      wc.flow_key = {"sport", "dport"};
      workers.push_back(std::make_unique<dist::WorkerServer>(
          compiled.machine(), rx, tx, wc));
      workers.back()->start();
    }
    dist::FrontConfig fc;
    fc.algorithm = "flowlets";
    fc.num_slots = kSlots;
    fc.flow_key = {ft.id_of("sport"), ft.id_of("dport")};
    fc.max_batch = 128;
    dist::FrontTier front(rx, fc);
    for (auto& w : workers) front.add_worker(w->port());
    front.connect();

    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& f : frames) front.offer(f);
    front.flush();
    const std::size_t egress = front.drain_egress().size();
    const double dt = seconds_since(t0);
    for (auto& w : workers) w->stop();
    if (egress != num_frames) {
      std::fprintf(stderr, "%zu-worker egress mismatch: %zu != %zu\n",
                   n_workers, egress, num_frames);
      return 1;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "%zu worker%s over TCP", n_workers,
                  n_workers == 1 ? "" : "s");
    std::printf("%-28s %12.3f %14.0f\n", label, dt,
                static_cast<double>(num_frames) / dt);
  }
  return 0;
}
