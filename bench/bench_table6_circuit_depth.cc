// Reproduces Table 6: "Minimum delay of an atom increases with circuit
// depth" — the Write / RAW / PRAW circuits and their critical paths.
#include <cstdio>

#include "atoms/circuit.h"
#include "bench_util.h"

int main() {
  using namespace atoms;
  bench_util::header("Table 6 — Circuit depth vs minimum delay");

  const StatefulKind rows[] = {StatefulKind::kWrite, StatefulKind::kRAW,
                               StatefulKind::kPRAW};
  const double paper_delay[] = {176, 316, 393};

  const std::vector<int> widths = {10, 64, 7, 12, 12};
  bench_util::print_rule(widths);
  bench_util::print_row(widths, {"Atom", "Critical path (model)", "depth",
                                 "delay ps", "paper ps"});
  bench_util::print_rule(widths);

  int prev_depth = 0;
  double prev_delay = 0;
  bool monotone = true;
  for (int i = 0; i < 3; ++i) {
    Circuit c = stateful_circuit(rows[i]);
    std::string path;
    for (std::size_t k = 0; k < c.critical_path.size(); ++k) {
      if (k) path += " -> ";
      path += primitive_name(c.critical_path[k]);
    }
    bench_util::print_row(widths, {c.name, path, std::to_string(c.depth()),
                                   bench_util::fmt(c.min_delay_ps(), 0),
                                   bench_util::fmt(paper_delay[i], 0)});
    if (c.depth() < prev_depth || c.min_delay_ps() < prev_delay)
      monotone = false;
    prev_depth = c.depth();
    prev_delay = c.min_delay_ps();
  }
  bench_util::print_rule(widths);
  std::printf("\nDelay grows with circuit depth: %s\n",
              monotone ? "yes" : "NO");
  return monotone ? 0 : 1;
}
