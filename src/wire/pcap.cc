#include "wire/pcap.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace wire {

namespace {

constexpr std::uint32_t kMagicUsec = 0xa1b2c3d4u;
constexpr std::uint32_t kMagicNsec = 0xa1b23c4du;
constexpr std::uint32_t kMagicUsecSwapped = 0xd4c3b2a1u;
constexpr std::uint32_t kMagicNsecSwapped = 0x4d3cb2a1u;
constexpr std::size_t kGlobalHeaderBytes = 24;
constexpr std::size_t kRecordHeaderBytes = 16;

std::uint32_t bswap32(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0x0000ff00u) | ((v << 8) & 0x00ff0000u) |
         (v << 24);
}

std::uint32_t load_u32(const std::uint8_t* p, bool swapped) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return swapped ? bswap32(v) : v;
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t b[4];
  std::memcpy(b, &v, 4);
  out.insert(out.end(), b, b + 4);
}

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  std::uint8_t b[2];
  std::memcpy(b, &v, 2);
  out.insert(out.end(), b, b + 2);
}

}  // namespace

PcapReadResult read_pcap(const std::uint8_t* data, std::size_t len) {
  PcapReadResult r;
  if (len < kGlobalHeaderBytes) {
    r.error = "truncated pcap: " + std::to_string(len) +
              " bytes, global header needs 24";
    return r;
  }
  std::uint32_t magic;
  std::memcpy(&magic, data, 4);
  bool swapped = false;
  switch (magic) {
    case kMagicUsec: break;
    case kMagicNsec: r.file.nanosecond = true; break;
    case kMagicUsecSwapped: swapped = true; break;
    case kMagicNsecSwapped:
      swapped = true;
      r.file.nanosecond = true;
      break;
    default: {
      std::ostringstream os;
      os << "not a classic pcap: magic 0x" << std::hex << magic;
      r.error = os.str();
      return r;
    }
  }
  r.file.linktype = load_u32(data + 20, swapped);
  std::size_t off = kGlobalHeaderBytes;

  while (off < len) {
    if (len - off < kRecordHeaderBytes) {
      r.error = "truncated pcap: record header at offset " +
                std::to_string(off) + " needs 16 bytes, " +
                std::to_string(len - off) + " remain";
      r.bytes_consumed = off;
      return r;
    }
    PcapPacket pkt;
    pkt.ts_sec = load_u32(data + off, swapped);
    pkt.ts_frac = load_u32(data + off + 4, swapped);
    const std::uint32_t incl_len = load_u32(data + off + 8, swapped);
    pkt.orig_len = load_u32(data + off + 12, swapped);
    if (incl_len > kPcapMaxSnaplen) {
      r.error = "corrupt pcap: record at offset " + std::to_string(off) +
                " claims " + std::to_string(incl_len) +
                " captured bytes (snaplen cap " +
                std::to_string(kPcapMaxSnaplen) + ")";
      r.bytes_consumed = off;
      return r;
    }
    if (len - off - kRecordHeaderBytes < incl_len) {
      r.error = "truncated pcap: record at offset " + std::to_string(off) +
                " claims " + std::to_string(incl_len) + " bytes, " +
                std::to_string(len - off - kRecordHeaderBytes) + " remain";
      r.bytes_consumed = off;
      return r;
    }
    const std::uint8_t* body = data + off + kRecordHeaderBytes;
    pkt.bytes.assign(body, body + incl_len);
    r.file.packets.push_back(std::move(pkt));
    off += kRecordHeaderBytes + incl_len;
  }
  r.bytes_consumed = off;
  return r;
}

PcapReadResult read_pcap_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    PcapReadResult r;
    r.error = "cannot open pcap file: " + path;
    return r;
  }
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) {
    PcapReadResult r;
    r.error = "I/O error reading pcap file: " + path;
    return r;
  }
  const std::string buf = os.str();
  return read_pcap(reinterpret_cast<const std::uint8_t*>(buf.data()),
                   buf.size());
}

std::vector<std::uint8_t> write_pcap(const PcapFile& file) {
  std::vector<std::uint8_t> out;
  std::size_t total = kGlobalHeaderBytes;
  for (const PcapPacket& p : file.packets)
    total += kRecordHeaderBytes + p.bytes.size();
  out.reserve(total);

  append_u32(out, file.nanosecond ? kMagicNsec : kMagicUsec);
  append_u16(out, 2);  // version major
  append_u16(out, 4);  // version minor
  append_u32(out, 0);  // thiszone
  append_u32(out, 0);  // sigfigs
  append_u32(out, kPcapMaxSnaplen);
  append_u32(out, file.linktype);

  for (const PcapPacket& p : file.packets) {
    append_u32(out, p.ts_sec);
    append_u32(out, p.ts_frac);
    append_u32(out, static_cast<std::uint32_t>(p.bytes.size()));
    append_u32(out, p.orig_len ? p.orig_len
                               : static_cast<std::uint32_t>(p.bytes.size()));
    out.insert(out.end(), p.bytes.begin(), p.bytes.end());
  }
  return out;
}

bool write_pcap_file(const std::string& path, const PcapFile& file) {
  const std::vector<std::uint8_t> buf = write_pcap(file);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  return static_cast<bool>(out.flush());
}

}  // namespace wire
