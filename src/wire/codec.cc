#include "wire/codec.h"

#include <cstring>

namespace wire {

namespace {

using banzai::Value;

// Shift-assembled byte-order conversion: defined behaviour on every host,
// bit-identical to ntoh/hton on the widths they cover.
std::uint32_t load_raw(const std::uint8_t* p, std::size_t width,
                       Endian endian) {
  std::uint32_t v = 0;
  if (endian == Endian::kBig) {
    for (std::size_t i = 0; i < width; ++i) v = (v << 8) | p[i];
  } else {
    for (std::size_t i = width; i > 0; --i) v = (v << 8) | p[i - 1];
  }
  return v;
}

void store_raw(std::uint8_t* p, std::size_t width, Endian endian,
               std::uint32_t v) {
  if (endian == Endian::kBig) {
    for (std::size_t i = width; i > 0; --i) {
      p[i - 1] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  } else {
    for (std::size_t i = 0; i < width; ++i) {
      p[i] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
}

// Raw wire bits -> 32-bit machine Value: zero-extend u-types, sign-extend
// i-types (i32 and u32 are the same bit-identity cast).
Value to_value(std::uint32_t raw, std::size_t width, Sign sign) {
  if (sign == Sign::kSigned && width < 4) {
    const std::uint32_t sign_bit = 1u << (8 * width - 1);
    if (raw & sign_bit) raw |= ~((sign_bit << 1) - 1);
  }
  return static_cast<Value>(raw);
}

std::uint32_t mask_of(std::size_t width) {
  return width >= 4 ? 0xffffffffu : ((1u << (8 * width)) - 1u);
}

}  // namespace

const char* to_string(ParseStatus status) {
  switch (status) {
    case ParseStatus::kOk: return "ok";
    case ParseStatus::kTruncated: return "truncated";
    case ParseStatus::kOversized: return "oversized";
    case ParseStatus::kBadValue: return "bad-value";
  }
  return "unknown";
}

WireCodec::WireCodec(WireSpec spec, const banzai::FieldTable& fields,
                     const std::map<std::string, std::string>& rename,
                     std::size_t max_frame_bytes)
    : spec_(std::move(spec)),
      max_frame_bytes_(max_frame_bytes),
      num_table_fields_(fields.size()) {
  if (max_frame_bytes_ < spec_.header_bytes)
    throw WireBindError("wire codec '" + spec_.name +
                        "': max frame smaller than the header (" +
                        std::to_string(max_frame_bytes_) + " < " +
                        std::to_string(spec_.header_bytes) + ")");
  bound_.reserve(spec_.fields.size());
  for (const WireField& f : spec_.fields) {
    const auto it = rename.find(f.name);
    const std::string& table_name = it != rename.end() ? it->second : f.name;
    const auto id = fields.try_id_of(table_name);
    if (!id.has_value()) {
      if (!f.has_expect)
        throw WireBindError("wire codec '" + spec_.name + "': field '" +
                            f.name + "' (table name '" + table_name +
                            "') is not a machine packet field and carries no "
                            "constant to check against");
      bound_.push_back({&f, kCheckOnly});
    } else {
      bound_.push_back({&f, *id});
    }
  }
}

void WireCodec::require_capacity(const banzai::Packet& pkt) const {
  if (pkt.num_fields() < num_table_fields_)
    throw std::logic_error(
        "wire codec '" + spec_.name + "': packet has " +
        std::to_string(pkt.num_fields()) + " fields, codec was bound against " +
        std::to_string(num_table_fields_));
}

ParseResult WireCodec::parse(const std::uint8_t* data, std::size_t len,
                             banzai::Packet& pkt) const {
  require_capacity(pkt);
  ParseResult r;
  r.header_bytes = spec_.header_bytes;
  if (len < spec_.header_bytes) {
    r.status = ParseStatus::kTruncated;
    return r;
  }
  if (len > max_frame_bytes_) {
    r.status = ParseStatus::kOversized;
    return r;
  }
  // All validation precedes the first packet store: a rejected frame leaves
  // `pkt` untouched.
  for (const Bound& b : bound_) {
    const WireField& f = *b.field;
    if (!f.has_expect) continue;
    if (load_raw(data + f.offset, f.width, f.endian) != f.expect) {
      r.status = ParseStatus::kBadValue;
      r.field = f.name;
      return r;
    }
  }
  for (const Bound& b : bound_) {
    if (b.id == kCheckOnly) continue;
    const WireField& f = *b.field;
    pkt[b.id] = to_value(load_raw(data + f.offset, f.width, f.endian),
                         f.width, f.sign);
  }
  return r;
}

ParseResult WireCodec::parse_exact(const std::uint8_t* data, std::size_t len,
                                   banzai::Packet& pkt) const {
  if (len > spec_.header_bytes) {
    require_capacity(pkt);
    ParseResult r;
    r.header_bytes = spec_.header_bytes;
    r.status = ParseStatus::kOversized;
    return r;
  }
  return parse(data, len, pkt);
}

void WireCodec::deparse_into(const banzai::Packet& pkt,
                             std::uint8_t* out) const {
  require_capacity(pkt);
  std::memset(out, 0, spec_.header_bytes);
  for (const Bound& b : bound_) {
    const WireField& f = *b.field;
    const std::uint32_t raw =
        b.id == kCheckOnly
            ? f.expect
            : static_cast<std::uint32_t>(pkt[b.id]) & mask_of(f.width);
    store_raw(out + f.offset, f.width, f.endian, raw);
  }
}

std::vector<std::uint8_t> WireCodec::deparse(const banzai::Packet& pkt) const {
  std::vector<std::uint8_t> out(spec_.header_bytes);
  deparse_into(pkt, out.data());
  return out;
}

}  // namespace wire
