// The header-spec DSL: a wire format declared next to the Domino program.
//
// The paper's switches process bytes on a wire, not pre-materialized field
// vectors; P4's protocol-independent parser abstraction (PAPERS.md) models
// the front end as a declarative header spec compiled into a parse graph.
// This is the software reproduction of that shape at its smallest useful
// size: one fixed-layout header per program, each field giving its machine
// packet-field name, width, byte offset and endianness, e.g.
//
//   # flowlet switching, wire format v1
//   wire flowlets_v1 {
//     magic    : u16 be @0 = 0xD003;   # const-checked, not a machine field
//     sport    : u16 be @2;
//     dport    : u16 be @4;
//     arrival  : u32 be @6;
//     next_hop : u8  be @10;           # written back by the pipeline
//   }
//
// Grammar (one header per spec; `#` starts a comment):
//
//   spec   := "wire" name "{" field* "}"
//   field  := name ":" type [endian] "@" offset ["=" const] ";"
//   type   := "u8" | "u16" | "u32" | "i8" | "i16" | "i32"
//   endian := "be" | "le"            (default: be, network order)
//   offset := decimal or 0x-hex byte offset from the frame start
//   const  := decimal or 0x-hex expected value ("magic"): parse rejects
//             frames whose bytes differ; deparse re-emits the constant.
//
// Validation is strict — overlapping byte ranges, duplicate names, unknown
// types and missing offsets are WireSpecError at parse-spec time, so a
// malformed spec can never produce a codec with undefined behaviour.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace wire {

enum class Endian : std::uint8_t { kBig, kLittle };
enum class Sign : std::uint8_t { kUnsigned, kSigned };

struct WireField {
  std::string name;
  std::size_t offset = 0;  // byte offset from the frame start
  std::size_t width = 4;   // bytes on the wire: 1, 2 or 4
  Endian endian = Endian::kBig;
  Sign sign = Sign::kUnsigned;  // i-types sign-extend into the 32-bit Value
  bool has_expect = false;      // const-checked on parse ("magic")
  std::uint32_t expect = 0;     // masked to `width` bytes
};

// A parsed, validated header spec.  Immutable after parse_wire_spec.
struct WireSpec {
  std::string name;
  std::vector<WireField> fields;
  std::size_t header_bytes = 0;  // max(offset + width) over all fields

  const WireField* find(std::string_view field_name) const {
    for (const WireField& f : fields)
      if (f.name == field_name) return &f;
    return nullptr;
  }
};

// Raised on any grammar or validation error, with a 1-based line number.
class WireSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Parses and validates one header spec.  Throws WireSpecError on malformed
// input; never returns a spec a WireCodec could misbehave on.
WireSpec parse_wire_spec(std::string_view text);

}  // namespace wire
