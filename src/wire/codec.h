// WireCodec: a header spec compiled against one machine's FieldTable into a
// parser/deparser pair — the repo's parse → pipeline → deparse front end.
//
// Binding happens once (FieldId resolution by name, with an optional rename
// map so an egress codec can follow the compiler's output_map to the field
// holding each user field's final value); parse and deparse then touch no
// strings and do no lookups.  Byte order is handled with explicit
// shift-assembled loads/stores — the endian-independent equivalent of the
// packed-struct + ntoh/hton edge the p4db switch.cpp exemplars use
// (SNIPPETS.md); examples/wire_middlebox.cpp demonstrates bit-exact interop
// with exactly such a packed struct.
//
// Hardening contract (the reason this layer exists as a differential axis):
//   * parse never reads past `len` — the header-bytes bound is checked
//     before any field load;
//   * a rejected frame NEVER partially writes the packet: all checks
//     (truncation, oversize, const mismatches) complete before the first
//     field store, so `pkt` is bit-identical to its pre-call state on any
//     non-kOk result;
//   * every frame is either parsed or rejected with a typed ParseStatus —
//     there is no third outcome, which is what makes exact accounting
//     (offered == parsed + rejected) testable under fuzz.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "banzai/packet.h"
#include "wire/spec.h"

namespace wire {

enum class ParseStatus : std::uint8_t {
  kOk,         // header parsed, fields written
  kTruncated,  // frame shorter than the spec's header
  kOversized,  // frame longer than allowed (parse_exact: any trailing bytes)
  kBadValue,   // a const-checked field ("magic") mismatched
};

const char* to_string(ParseStatus status);

struct ParseResult {
  ParseStatus status = ParseStatus::kOk;
  std::size_t header_bytes = 0;  // bytes consumed on kOk (the header size)
  // For kBadValue: the offending field's name, viewing into the codec's
  // spec (valid for the codec's lifetime).
  std::string_view field;

  bool ok() const { return status == ParseStatus::kOk; }
};

// Raised when a spec names a machine field the FieldTable does not have.
class WireBindError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class WireCodec {
 public:
  // Largest frame parse() tolerates (trailing payload beyond the header is
  // legal up to this); parse_exact() instead demands len == header_bytes.
  static constexpr std::size_t kDefaultMaxFrameBytes = 9216;  // jumbo MTU

  // Resolves every spec field against `fields` once.  A field carrying an
  // expected constant need not exist in the table (check-only, e.g. magic
  // or version bytes); any other unresolvable field throws WireBindError.
  // `rename` redirects wire names to table names — pass the compiler's
  // output_map() to build the egress codec that deparses final values.
  WireCodec(WireSpec spec, const banzai::FieldTable& fields,
            const std::map<std::string, std::string>& rename = {},
            std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  // Parses one frame into `pkt` (which must span the bound FieldTable).
  // Trailing payload after the header is accepted up to max_frame_bytes;
  // result.header_bytes tells the caller where it starts.
  ParseResult parse(const std::uint8_t* data, std::size_t len,
                    banzai::Packet& pkt) const;

  // Strict framing: the frame must be exactly the header, trailing bytes are
  // kOversized.  The FleetService byte path uses this — its egress frames
  // are headers, so payload-bearing input would silently lose bytes.
  ParseResult parse_exact(const std::uint8_t* data, std::size_t len,
                          banzai::Packet& pkt) const;

  // Writes the header image of `pkt` into out[0..header_bytes): bound fields
  // from the packet (low `width` bytes, as the p4db exemplars' hton edge
  // would), check-only fields from their constants, uncovered gaps as zero.
  void deparse_into(const banzai::Packet& pkt, std::uint8_t* out) const;

  std::vector<std::uint8_t> deparse(const banzai::Packet& pkt) const;

  const WireSpec& spec() const { return spec_; }
  std::size_t header_bytes() const { return spec_.header_bytes; }
  std::size_t max_frame_bytes() const { return max_frame_bytes_; }
  // Size of the FieldTable this codec was bound against; packets handed to
  // parse()/deparse() must have at least this many fields.
  std::size_t num_table_fields() const { return num_table_fields_; }

 private:
  struct Bound {
    const WireField* field;  // into spec_.fields (stable: spec_ owned)
    banzai::FieldId id;      // kCheckOnly when the field is const-only
  };
  static constexpr banzai::FieldId kCheckOnly =
      static_cast<banzai::FieldId>(-1);

  void require_capacity(const banzai::Packet& pkt) const;

  WireSpec spec_;
  std::vector<Bound> bound_;
  std::size_t max_frame_bytes_;
  std::size_t num_table_fields_ = 0;
};

}  // namespace wire
