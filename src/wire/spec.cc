#include "wire/spec.h"

#include <algorithm>
#include <cctype>

namespace wire {

namespace {

// One token with the line it started on, for error messages.
struct Token {
  std::string text;
  int line = 1;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Splits the spec into identifiers, numbers and single-char punctuation,
// dropping `#` comments.  Offsets/consts stay textual; parsing them happens
// where the grammar expects a number, so "@" and "=" errors point at the
// right token.
std::vector<Token> tokenize(std::string_view text) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (is_ident_char(c)) {
      std::size_t j = i;
      while (j < text.size() && is_ident_char(text[j])) ++j;
      out.push_back({std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    out.push_back({std::string(1, c), line});
    ++i;
  }
  return out;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw WireSpecError("wire spec, line " + std::to_string(line) + ": " + what);
}

// Decimal or 0x-hex unsigned integer; rejects anything else.
std::uint64_t parse_number(const Token& tok, const char* what) {
  const std::string& s = tok.text;
  std::uint64_t v = 0;
  bool hex = s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X');
  const std::size_t start = hex ? 2 : 0;
  if (s.size() == start) fail(tok.line, std::string("expected ") + what);
  for (std::size_t i = start; i < s.size(); ++i) {
    const char c = s[i];
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (hex && c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else if (hex && c >= 'A' && c <= 'F')
      digit = c - 'A' + 10;
    else
      fail(tok.line, std::string("expected ") + what + ", got '" + s + "'");
    v = v * (hex ? 16 : 10) + static_cast<std::uint64_t>(digit);
    if (v > 0xffffffffull)
      fail(tok.line, std::string(what) + " '" + s + "' exceeds 32 bits");
  }
  return v;
}

struct TypeInfo {
  std::size_t width;
  Sign sign;
};

bool lookup_type(const std::string& name, TypeInfo& out) {
  if (name == "u8") out = {1, Sign::kUnsigned};
  else if (name == "u16") out = {2, Sign::kUnsigned};
  else if (name == "u32") out = {4, Sign::kUnsigned};
  else if (name == "i8") out = {1, Sign::kSigned};
  else if (name == "i16") out = {2, Sign::kSigned};
  else if (name == "i32") out = {4, Sign::kSigned};
  else return false;
  return true;
}

std::uint32_t width_mask(std::size_t width) {
  return width >= 4 ? 0xffffffffu : ((1u << (8 * width)) - 1u);
}

}  // namespace

WireSpec parse_wire_spec(std::string_view text) {
  const std::vector<Token> toks = tokenize(text);
  std::size_t p = 0;
  auto peek = [&]() -> const Token& {
    static const Token eof{"<end of spec>", 0};
    return p < toks.size() ? toks[p] : eof;
  };
  auto next = [&](const char* what) -> const Token& {
    if (p >= toks.size())
      fail(toks.empty() ? 1 : toks.back().line,
           std::string("unexpected end of spec, expected ") + what);
    return toks[p++];
  };
  auto expect = [&](const char* text_lit) {
    const Token& t = next(text_lit);
    if (t.text != text_lit)
      fail(t.line, std::string("expected '") + text_lit + "', got '" + t.text +
                       "'");
  };

  expect("wire");
  WireSpec spec;
  {
    const Token& name = next("header name");
    if (!is_ident_char(name.text[0]) ||
        std::isdigit(static_cast<unsigned char>(name.text[0])))
      fail(name.line, "invalid header name '" + name.text + "'");
    spec.name = name.text;
  }
  expect("{");

  while (peek().text != "}") {
    WireField f;
    const Token& name = next("field name or '}'");
    if (!is_ident_char(name.text[0]) ||
        std::isdigit(static_cast<unsigned char>(name.text[0])))
      fail(name.line, "invalid field name '" + name.text + "'");
    f.name = name.text;
    expect(":");
    {
      const Token& type = next("field type (u8/u16/u32/i8/i16/i32)");
      TypeInfo info;
      if (!lookup_type(type.text, info))
        fail(type.line, "unknown field type '" + type.text +
                            "' (expected u8/u16/u32/i8/i16/i32)");
      f.width = info.width;
      f.sign = info.sign;
    }
    if (peek().text == "be" || peek().text == "le") {
      f.endian = next("endianness").text == "le" ? Endian::kLittle
                                                 : Endian::kBig;
    }
    expect("@");
    {
      const Token& off = next("byte offset");
      const std::uint64_t v = parse_number(off, "byte offset");
      if (v + f.width > 65536)
        fail(off.line, "field '" + f.name + "' ends beyond 64 KiB");
      f.offset = static_cast<std::size_t>(v);
    }
    if (peek().text == "=") {
      ++p;
      const Token& cv = next("expected constant");
      const std::uint32_t raw =
          static_cast<std::uint32_t>(parse_number(cv, "expected constant"));
      if ((raw & ~width_mask(f.width)) != 0)
        fail(cv.line, "constant for '" + f.name + "' does not fit in " +
                          std::to_string(f.width) + " byte(s)");
      f.has_expect = true;
      f.expect = raw;
    }
    {
      const Token& semi = next("';'");
      if (semi.text != ";")
        fail(semi.line,
             "expected ';' after field '" + f.name + "', got '" + semi.text +
                 "'");
    }
    spec.fields.push_back(std::move(f));
  }
  expect("}");
  if (p != toks.size())
    fail(toks[p].line, "trailing tokens after '}': '" + toks[p].text + "'");

  if (spec.fields.empty())
    throw WireSpecError("wire spec '" + spec.name + "' declares no fields");

  // Duplicate names and overlapping byte ranges are layout bugs, not data.
  for (std::size_t i = 0; i < spec.fields.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.fields.size(); ++j) {
      const WireField& a = spec.fields[i];
      const WireField& b = spec.fields[j];
      if (a.name == b.name)
        throw WireSpecError("wire spec '" + spec.name +
                            "': duplicate field '" + a.name + "'");
      if (a.offset < b.offset + b.width && b.offset < a.offset + a.width)
        throw WireSpecError("wire spec '" + spec.name + "': fields '" +
                            a.name + "' and '" + b.name +
                            "' overlap on the wire");
    }
    spec.header_bytes = std::max(spec.header_bytes,
                                 spec.fields[i].offset + spec.fields[i].width);
  }
  return spec;
}

}  // namespace wire
