// Minimal classic-pcap (libpcap savefile) reader/writer, dependency-free.
//
// The replay front end: turn a capture into frames for the wire codec and
// the FleetService byte path, and write synthetic corpus traffic back out as
// a capture other tools can open.  Only the classic format is implemented —
// 24-byte global header (usec magic 0xa1b2c3d4 or nsec 0xa1b23c4d, either
// byte order) followed by 16-byte per-record headers — which is all replay
// needs.
//
// Hardening: reading is fully bounds-checked and total.  A truncated global
// header, a record header past EOF, a record body longer than the remaining
// bytes or an absurd incl_len all stop the read with a typed error message
// while KEEPING every record parsed before the damage, so accounting stays
// exact (offered == parsed + the one rejected tail).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wire {

struct PcapPacket {
  std::uint32_t ts_sec = 0;
  std::uint32_t ts_frac = 0;  // micro- or nanoseconds, per PcapFile::nanosecond
  std::uint32_t orig_len = 0; // original length on the wire (>= bytes.size())
  std::vector<std::uint8_t> bytes;
};

struct PcapFile {
  bool nanosecond = false;
  std::uint32_t linktype = 147;  // DLT_USER0: private frames, not Ethernet
  std::vector<PcapPacket> packets;
};

struct PcapReadResult {
  PcapFile file;
  // Empty on a clean EOF.  On damage: why reading stopped; file.packets
  // still holds everything parsed before the damaged record.
  std::string error;
  std::size_t bytes_consumed = 0;

  bool ok() const { return error.empty(); }
};

// Largest per-record capture length accepted (libpcap's MAXIMUM_SNAPLEN is
// 256 KiB; anything above is corruption, not a jumbo frame).
inline constexpr std::uint32_t kPcapMaxSnaplen = 262144;

PcapReadResult read_pcap(const std::uint8_t* data, std::size_t len);
PcapReadResult read_pcap_file(const std::string& path);

// Serializes in host-native byte order with the usec/nsec magic from `file`.
std::vector<std::uint8_t> write_pcap(const PcapFile& file);
// Returns false (and writes nothing durable) on I/O failure.
bool write_pcap_file(const std::string& path, const PcapFile& file);

}  // namespace wire
