// Minimal std::span substitute so the tree builds as C++17 (std::span is
// C++20).  Only the operations the atom-configuration and synthesis code
// actually use: construction from contiguous containers, indexing, size.
#pragma once

#include <array>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace util {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, std::size_t size) : data_(data), size_(size) {}

  // Containers of mutable elements convert to Span<T> and Span<const T>.
  template <typename U, typename = std::enable_if_t<
                            std::is_same_v<std::remove_const_t<T>, U>>>
  Span(std::vector<U>& v) : data_(v.data()), size_(v.size()) {}
  template <typename U, std::size_t N,
            typename = std::enable_if_t<
                std::is_same_v<std::remove_const_t<T>, U>>>
  Span(std::array<U, N>& a) : data_(a.data()), size_(N) {}

  // C arrays, mirroring std::span's array constructors.
  template <std::size_t N>
  Span(T (&a)[N]) : data_(a), size_(N) {}
  template <std::size_t N, typename U = T,
            typename = std::enable_if_t<std::is_const_v<U>>>
  Span(std::remove_const_t<T> (&a)[N]) : data_(a), size_(N) {}

  // Const containers convert only to Span<const T>.
  template <typename U = T, typename = std::enable_if_t<std::is_const_v<U>>>
  Span(const std::vector<std::remove_const_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}
  template <std::size_t N, typename U = T,
            typename = std::enable_if_t<std::is_const_v<U>>>
  Span(const std::array<std::remove_const_t<T>, N>& a)
      : data_(a.data()), size_(N) {}

  constexpr T& operator[](std::size_t i) const { return data_[i]; }
  constexpr T* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace util
