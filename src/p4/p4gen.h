// P4 back end (§5.1): generates the equivalent P4 program from a compiled
// codelet pipeline, demonstrating that the manual table/action decomposition
// a P4 programmer performs by hand can be automated — and providing the
// lines-of-code comparison of Table 4.
//
// Emits P4-16 against the v1model architecture: one action per codelet, one
// single-action table per action (the shape hand-written data-plane P4 takes,
// and what the paper's LOC numbers count), registers for state variables and
// a metadata struct holding every packet field including compiler
// temporaries.
#pragma once

#include <string>

#include "ir/ast.h"
#include "ir/pvsm.h"

namespace p4gen {

struct P4Options {
  // Emit a match-action table per codelet (paper-style); if false, actions
  // are invoked directly from apply{}, which is shorter.
  bool table_per_action = true;
};

std::string emit_p4(const domino::Program& prog,
                    const domino::CodeletPipeline& pipeline,
                    const P4Options& options = {});

// Non-empty, non-comment lines — the Table 4 LOC metric.
std::size_t p4_loc(const std::string& p4_source);

}  // namespace p4gen
