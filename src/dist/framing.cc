#include "dist/framing.h"

#include <algorithm>

namespace dist {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello_ack";
    case MsgType::kIngestBatch: return "ingest_batch";
    case MsgType::kIngestAck: return "ingest_ack";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kHeartbeatAck: return "heartbeat_ack";
    case MsgType::kSnapshotReq: return "snapshot_req";
    case MsgType::kSnapshotResp: return "snapshot_resp";
    case MsgType::kRestoreReq: return "restore_req";
    case MsgType::kRestoreAck: return "restore_ack";
    case MsgType::kSwapEngine: return "swap_engine";
    case MsgType::kSwapAck: return "swap_ack";
    case MsgType::kFlushReq: return "flush_req";
    case MsgType::kFlushAck: return "flush_ack";
    case MsgType::kStop: return "stop";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

void Writer::str(const std::string& s) {
  if (s.size() > 0xFFFF) throw FramingError("string exceeds u16 length");
  u16(static_cast<std::uint16_t>(s.size()));
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void Writer::blob(const std::vector<std::uint8_t>& b) {
  if (b.size() > kMaxMessageBytes) throw FramingError("blob exceeds bound");
  u32(static_cast<std::uint32_t>(b.size()));
  bytes(b.data(), b.size());
}

void Reader::need(std::size_t n) const {
  if (static_cast<std::size_t>(end_ - p_) < n)
    throw FramingError("truncated payload");
}

std::uint8_t Reader::u8() {
  need(1);
  return *p_++;
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(p_[0]) |
                    static_cast<std::uint16_t>(p_[1]) << 8;
  p_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p_[i]) << (8 * i);
  p_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
  p_ += 8;
  return v;
}

std::string Reader::str() {
  const std::size_t n = u16();
  need(n);
  std::string s(reinterpret_cast<const char*>(p_), n);
  p_ += n;
  return s;
}

std::vector<std::uint8_t> Reader::blob() {
  const std::size_t n = u32();
  if (n > kMaxMessageBytes) throw FramingError("blob length exceeds bound");
  need(n);
  std::vector<std::uint8_t> b(p_, p_ + n);
  p_ += n;
  return b;
}

void Reader::expect_end() const {
  if (p_ != end_) throw FramingError("trailing bytes after payload");
}

namespace {

void write_egress(Writer& w, const std::vector<EgressRecord>& egress) {
  w.u32(static_cast<std::uint32_t>(egress.size()));
  for (const EgressRecord& e : egress) {
    w.u64(e.seq);
    w.blob(e.bytes);
  }
}

std::vector<EgressRecord> read_egress(Reader& r) {
  const std::uint32_t n = r.u32();
  if (n > kMaxMessageBytes / 8) throw FramingError("egress count exceeds bound");
  std::vector<EgressRecord> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    EgressRecord e;
    e.seq = r.u64();
    e.bytes = r.blob();
    out.push_back(std::move(e));
  }
  return out;
}

void write_slot_states(Writer& w, const std::vector<SlotState>& slots) {
  w.u32(static_cast<std::uint32_t>(slots.size()));
  for (const SlotState& s : slots) {
    w.u32(s.slot);
    w.u64(s.applied_seq);
    w.blob(s.state);
  }
}

std::vector<SlotState> read_slot_states(Reader& r) {
  const std::uint32_t n = r.u32();
  if (n > kMaxMessageBytes / 8) throw FramingError("slot count exceeds bound");
  std::vector<SlotState> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    SlotState s;
    s.slot = r.u32();
    s.applied_seq = r.u64();
    s.state = r.blob();
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const Hello& m) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u32(m.version);
  w.str(m.algorithm);
  w.u32(m.num_slots);
  w.u32(m.header_bytes);
  return out;
}

Hello decode_hello(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  Hello m;
  m.version = r.u32();
  m.algorithm = r.str();
  m.num_slots = r.u32();
  m.header_bytes = r.u32();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_hello_ack(const HelloAck& m) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u32(m.num_slots);
  w.u8(m.engine);
  return out;
}

HelloAck decode_hello_ack(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  HelloAck m;
  m.num_slots = r.u32();
  m.engine = r.u8();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_ingest_batch(const IngestBatch& m) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u32(static_cast<std::uint32_t>(m.frames.size()));
  for (const FrameRecord& f : m.frames) {
    w.u64(f.seq);
    w.u32(f.slot);
    w.blob(f.bytes);
  }
  return out;
}

IngestBatch decode_ingest_batch(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  IngestBatch m;
  const std::uint32_t count = r.u32();
  if (count > kMaxMessageBytes / 8)
    throw FramingError("frame count exceeds bound");
  m.frames.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    FrameRecord f;
    f.seq = r.u64();
    f.slot = r.u32();
    f.bytes = r.blob();
    m.frames.push_back(std::move(f));
  }
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_ingest_ack(const IngestAck& m) {
  if (m.seqs.size() != m.statuses.size())
    throw FramingError("ingest ack: seqs/statuses size mismatch");
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u32(static_cast<std::uint32_t>(m.seqs.size()));
  for (std::size_t i = 0; i < m.seqs.size(); ++i) {
    w.u64(m.seqs[i]);
    w.u8(static_cast<std::uint8_t>(m.statuses[i]));
  }
  write_egress(w, m.egress);
  return out;
}

IngestAck decode_ingest_ack(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  IngestAck m;
  const std::uint32_t count = r.u32();
  if (count > kMaxMessageBytes / 8)
    throw FramingError("ack count exceeds bound");
  m.seqs.reserve(count);
  m.statuses.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    m.seqs.push_back(r.u64());
    const std::uint8_t s = r.u8();
    if (s > static_cast<std::uint8_t>(FrameStatus::kRejectBadValue))
      throw FramingError("unknown frame status");
    m.statuses.push_back(static_cast<FrameStatus>(s));
  }
  m.egress = read_egress(r);
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_heartbeat(const Heartbeat& m) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u64(m.nonce);
  return out;
}

Heartbeat decode_heartbeat(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  Heartbeat m;
  m.nonce = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_heartbeat_ack(const HeartbeatAck& m) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u64(m.nonce);
  w.u64(m.delivered);
  write_egress(w, m.egress);
  return out;
}

HeartbeatAck decode_heartbeat_ack(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  HeartbeatAck m;
  m.nonce = r.u64();
  m.delivered = r.u64();
  m.egress = read_egress(r);
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_snapshot_req(const SnapshotReq& m) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u32(static_cast<std::uint32_t>(m.slots.size()));
  for (std::uint32_t s : m.slots) w.u32(s);
  return out;
}

SnapshotReq decode_snapshot_req(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  SnapshotReq m;
  const std::uint32_t count = r.u32();
  if (count > kMaxMessageBytes / 4)
    throw FramingError("slot list exceeds bound");
  m.slots.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m.slots.push_back(r.u32());
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_snapshot_resp(const SnapshotResp& m) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  write_slot_states(w, m.slots);
  write_egress(w, m.egress);
  return out;
}

SnapshotResp decode_snapshot_resp(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  SnapshotResp m;
  m.slots = read_slot_states(r);
  m.egress = read_egress(r);
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_restore_req(const RestoreReq& m) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  write_slot_states(w, m.slots);
  return out;
}

RestoreReq decode_restore_req(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  RestoreReq m;
  m.slots = read_slot_states(r);
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_swap_engine(const SwapEngine& m) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u8(m.engine);
  return out;
}

SwapEngine decode_swap_engine(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  SwapEngine m;
  m.engine = r.u8();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_swap_ack(const SwapAck& m) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u8(m.active_engine);
  return out;
}

SwapAck decode_swap_ack(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  SwapAck m;
  m.active_engine = r.u8();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_flush_ack(const FlushAck& m) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  write_egress(w, m.egress);
  return out;
}

FlushAck decode_flush_ack(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  FlushAck m;
  m.egress = read_egress(r);
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_error(const ErrorMsg& m) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.str(m.message);
  return out;
}

ErrorMsg decode_error(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  ErrorMsg m;
  m.message = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> serialize_state_store(const banzai::StateStore& s) {
  std::vector<std::pair<std::string, const banzai::StateVar*>> vars;
  vars.reserve(s.vars().size());
  for (const auto& [name, var] : s.vars()) vars.emplace_back(name, &var);
  std::sort(vars.begin(), vars.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u32(static_cast<std::uint32_t>(vars.size()));
  for (const auto& [name, var] : vars) {
    w.str(name);
    w.u8(var->is_scalar() ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(var->size()));
    for (banzai::Value v : var->cells())
      w.u32(static_cast<std::uint32_t>(v));
  }
  return out;
}

banzai::StateStore deserialize_state_store(const std::uint8_t* p,
                                           std::size_t n) {
  Reader r(p, n);
  banzai::StateStore store;
  const std::uint32_t nvars = r.u32();
  if (nvars > kMaxMessageBytes / 8)
    throw FramingError("state var count exceeds bound");
  for (std::uint32_t i = 0; i < nvars; ++i) {
    const std::string name = r.str();
    if (name.empty()) throw FramingError("state var with empty name");
    const bool scalar = r.u8() != 0;
    const std::uint32_t ncells = r.u32();
    if (ncells == 0 || ncells > kMaxMessageBytes / 4)
      throw FramingError("state var cell count out of range");
    if (scalar && ncells != 1)
      throw FramingError("scalar state var with more than one cell");
    if (store.contains(name)) throw FramingError("duplicate state var name");
    store.declare(name, ncells, scalar);
    banzai::StateVar& var = store.var(name);
    for (std::uint32_t c = 0; c < ncells; ++c)
      var.store(static_cast<banzai::Value>(c),
                static_cast<banzai::Value>(r.u32()));
  }
  r.expect_end();
  return store;
}

}  // namespace dist
