// Per-worker health state machine for the distributed fleet front tier.
//
//   healthy ──failure──► suspect ──(dead_after consecutive failures)──► dead
//      ▲                    │ success                                    │
//      └────────────────────┘                              reconnect ok  ▼
//      ▲                                                            recovering
//      └──────────────────────── success ────────────────────────────────┘
//
// The detector is count-driven (consecutive RPC failures — timeouts and hard
// errors both count) rather than wall-clock-driven, so chaos tests replay
// deterministically; the timestamps are carried along for observability
// only.  Transitions are recorded in counters that feed the /metrics page:
// timeouts, errors, times each state was entered.
//
// The caller's contract:
//   * on_success(now)  — a request completed (any RPC, including heartbeats)
//   * on_timeout(now)  — a request ran past its deadline
//   * on_error(now)    — the connection broke (reset, EOF, refused)
//   * on_reconnect(now)— a fresh connection + HELLO handshake succeeded
//                        after the worker was dead (state -> recovering;
//                        the next on_success completes recovery -> healthy)
//   * mark_dead(now)   — force the dead state (e.g. the front tier decided
//                        to migrate without waiting out the failure budget)
#pragma once

#include <chrono>
#include <cstdint>

namespace dist {

enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kDead = 2,
  kRecovering = 3,
};

const char* to_string(HealthState s);

struct HealthConfig {
  // Consecutive failed RPCs (timeout or error) before a worker is declared
  // dead and its slots migrate.  The first failure already makes it suspect.
  std::uint32_t dead_after = 3;
};

class FailureDetector {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit FailureDetector(HealthConfig cfg = {}) : cfg_(cfg) {
    if (cfg_.dead_after == 0) cfg_.dead_after = 1;
  }

  void on_success(TimePoint now);
  void on_timeout(TimePoint now);
  void on_error(TimePoint now);
  void on_reconnect(TimePoint now);
  void mark_dead(TimePoint now);

  HealthState state() const { return state_; }
  bool alive() const { return state_ != HealthState::kDead; }
  std::uint32_t consecutive_failures() const { return consecutive_failures_; }

  // Observability counters (cumulative).
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t errors() const { return errors_; }
  std::uint64_t deaths() const { return deaths_; }
  std::uint64_t recoveries() const { return recoveries_; }
  TimePoint last_change() const { return last_change_; }

 private:
  void fail(TimePoint now);
  void transition(HealthState next, TimePoint now);

  HealthConfig cfg_;
  HealthState state_ = HealthState::kHealthy;
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t deaths_ = 0;
  std::uint64_t recoveries_ = 0;
  TimePoint last_change_{};
};

}  // namespace dist
