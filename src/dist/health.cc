#include "dist/health.h"

namespace dist {

const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kSuspect: return "suspect";
    case HealthState::kDead: return "dead";
    case HealthState::kRecovering: return "recovering";
  }
  return "unknown";
}

void FailureDetector::transition(HealthState next, TimePoint now) {
  if (state_ == next) return;
  // A recovery is specifically the full death -> reconnect -> caught-up arc,
  // not a suspect worker answering again.
  if (state_ == HealthState::kRecovering && next == HealthState::kHealthy)
    ++recoveries_;
  state_ = next;
  last_change_ = now;
  if (next == HealthState::kDead) ++deaths_;
}

void FailureDetector::on_success(TimePoint now) {
  consecutive_failures_ = 0;
  // Dead workers do not come back via a lucky response — only an explicit
  // reconnect handshake re-admits them, so a late in-flight reply from a
  // worker already replaced cannot flap the state.
  if (state_ == HealthState::kSuspect || state_ == HealthState::kRecovering)
    transition(HealthState::kHealthy, now);
}

void FailureDetector::fail(TimePoint now) {
  if (state_ == HealthState::kDead) return;
  ++consecutive_failures_;
  if (consecutive_failures_ >= cfg_.dead_after)
    transition(HealthState::kDead, now);
  else
    transition(HealthState::kSuspect, now);
}

void FailureDetector::on_timeout(TimePoint now) {
  ++timeouts_;
  fail(now);
}

void FailureDetector::on_error(TimePoint now) {
  ++errors_;
  fail(now);
}

void FailureDetector::on_reconnect(TimePoint now) {
  consecutive_failures_ = 0;
  transition(HealthState::kRecovering, now);
}

void FailureDetector::mark_dead(TimePoint now) {
  transition(HealthState::kDead, now);
}

}  // namespace dist
