#include "dist/metrics.h"

namespace dist {

namespace {

void help_line(std::ostream& os, const char* name, const char* type,
               const char* help) {
  os << "# HELP " << name << ' ' << help << '\n'
     << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

void render_dist_metrics(std::ostream& os, const FrontStats& stats,
                         const std::vector<WorkerView>& workers) {
  help_line(os, "domino_dist_worker_health", "gauge",
            "Worker health state: 0=healthy 1=suspect 2=dead 3=recovering");
  for (std::size_t w = 0; w < workers.size(); ++w)
    os << "domino_dist_worker_health{worker=\"" << w << "\"} "
       << static_cast<int>(workers[w].health) << '\n';
  help_line(os, "domino_dist_worker_timeouts_total", "counter",
            "RPCs that ran past their deadline, per worker");
  for (std::size_t w = 0; w < workers.size(); ++w)
    os << "domino_dist_worker_timeouts_total{worker=\"" << w << "\"} "
       << workers[w].timeouts << '\n';
  help_line(os, "domino_dist_worker_errors_total", "counter",
            "Connection-level RPC failures, per worker");
  for (std::size_t w = 0; w < workers.size(); ++w)
    os << "domino_dist_worker_errors_total{worker=\"" << w << "\"} "
       << workers[w].errors << '\n';
  help_line(os, "domino_dist_worker_deaths_total", "counter",
            "Times the failure detector declared the worker dead");
  for (std::size_t w = 0; w < workers.size(); ++w)
    os << "domino_dist_worker_deaths_total{worker=\"" << w << "\"} "
       << workers[w].deaths << '\n';
  help_line(os, "domino_dist_worker_recoveries_total", "counter",
            "Completed dead -> recovering -> healthy arcs");
  for (std::size_t w = 0; w < workers.size(); ++w)
    os << "domino_dist_worker_recoveries_total{worker=\"" << w << "\"} "
       << workers[w].recoveries << '\n';
  help_line(os, "domino_dist_worker_slots", "gauge",
            "Slots currently owned by the worker");
  for (std::size_t w = 0; w < workers.size(); ++w)
    os << "domino_dist_worker_slots{worker=\"" << w << "\"} "
       << workers[w].slots_owned << '\n';

  help_line(os, "domino_dist_frames_offered_total", "counter",
            "Frames offered to the front tier");
  os << "domino_dist_frames_offered_total " << stats.frames_offered << '\n';
  help_line(os, "domino_dist_frames_sent_total", "counter",
            "Frames sent to workers, including retries and replays");
  os << "domino_dist_frames_sent_total " << stats.frames_sent << '\n';
  help_line(os, "domino_dist_frames_acked_total", "counter",
            "Frames acknowledged as freshly applied");
  os << "domino_dist_frames_acked_total " << stats.frames_acked << '\n';
  help_line(os, "domino_dist_dup_acks_total", "counter",
            "Frames the worker-side sequence dedup suppressed");
  os << "domino_dist_dup_acks_total " << stats.dup_acks << '\n';
  help_line(os, "domino_dist_rejects_total", "counter",
            "Frames rejected by wire parsing (tombstoned seqs)");
  os << "domino_dist_rejects_total " << stats.rejects << '\n';
  help_line(os, "domino_dist_retries_total", "counter",
            "Ingest RPCs re-issued after a timeout or connection error");
  os << "domino_dist_retries_total " << stats.retries << '\n';
  help_line(os, "domino_dist_reconnects_total", "counter",
            "Successful connect + HELLO handshakes");
  os << "domino_dist_reconnects_total " << stats.reconnects << '\n';
  help_line(os, "domino_dist_migrations_total", "counter",
            "Dead-worker slot migrations");
  os << "domino_dist_migrations_total " << stats.migrations << '\n';
  help_line(os, "domino_dist_slot_moves_total", "counter",
            "Slots moved between workers (migration + rebalance)");
  os << "domino_dist_slot_moves_total " << stats.slot_moves << '\n';
  help_line(os, "domino_dist_checkpoints_total", "counter",
            "Checkpoint barriers completed");
  os << "domino_dist_checkpoints_total " << stats.checkpoints << '\n';
  help_line(os, "domino_dist_replays_total", "counter",
            "Frames replayed from resend buffers after a slot move");
  os << "domino_dist_replays_total " << stats.replays << '\n';
  help_line(os, "domino_dist_egress_frames_total", "counter",
            "Settled egress frames drained in global order");
  os << "domino_dist_egress_frames_total " << stats.egress_frames << '\n';
  help_line(os, "domino_dist_egress_duplicates_total", "counter",
            "Egress records suppressed by the exactly-once window");
  os << "domino_dist_egress_duplicates_total " << stats.egress_duplicates
     << '\n';
  help_line(os, "domino_dist_egress_corrupt_total", "counter",
            "Reply seqs outside the issued range, dropped before the window");
  os << "domino_dist_egress_corrupt_total " << stats.egress_corrupt << '\n';
  help_line(os, "domino_dist_heartbeats_total", "counter",
            "Heartbeat probes answered");
  os << "domino_dist_heartbeats_total " << stats.heartbeats << '\n';
}

void render_dist_metrics(std::ostream& os, const FrontTier& front) {
  std::vector<WorkerView> workers;
  for (std::size_t w = 0; w < front.num_workers(); ++w)
    workers.push_back(front.worker_view(w));
  render_dist_metrics(os, front.stats(), workers);
}

}  // namespace dist
