// Prometheus rendering for the distributed fleet front tier: per-worker
// health (the state machine as an enum gauge) and the fault-tolerance
// counters — retries, timeouts, reconnects, migrations, checkpoints,
// duplicate suppression, replays.  Same exposition conventions as
// banzai/metrics.h; register via MetricsEndpoint::add_source:
//
//   endpoint.add_source([&](std::ostream& os) {
//     dist::render_dist_metrics(os, front);
//   });
#pragma once

#include <ostream>
#include <vector>

#include "dist/front.h"

namespace dist {

// Renders from plain snapshots (caller picks the moment; FrontTier's
// accessors are as thread-safe as the front's single-pump contract allows).
void render_dist_metrics(std::ostream& os, const FrontStats& stats,
                         const std::vector<WorkerView>& workers);

// Convenience overload: snapshots `front` and renders.
void render_dist_metrics(std::ostream& os, const FrontTier& front);

}  // namespace dist
