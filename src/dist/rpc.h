// Socket plumbing for the distributed fleet: deadline-bounded message I/O
// over TCP, a listener, and the reconnect backoff policy.
//
// Everything here is defensive by construction:
//   * every send/recv runs a poll()-guarded loop with an absolute deadline —
//     a stalled or dead peer costs at most the deadline, never a hang;
//   * EINTR and partial reads/writes are retried inside the loop (the same
//     write-loop discipline the MetricsEndpoint hardening applies);
//   * message length prefixes are bounded by framing.h's kMaxMessageBytes
//     before any allocation;
//   * all failures surface as RpcError with errno text, and timeouts as the
//     distinct RpcTimeout so callers can treat "slow" differently from
//     "broken" (the health state machine does: timeout -> suspect,
//     hard error -> the same path, but the counters differ).
//
// Backoff: bounded exponential with deterministic jitter.  The jitter source
// is a seeded SplitMix64 walk, so a reconnect storm in a chaos test replays
// identically for one seed while still decorrelating real fleets.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/framing.h"

namespace dist {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Millis = std::chrono::milliseconds;

class RpcError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// A deadline expired before the operation completed.  The connection is left
// in an undefined mid-message position, so callers must reconnect (or, in
// the front tier, re-send the whole request after backoff — the worker-side
// seq dedup makes that safe).
class RpcTimeout : public RpcError {
 public:
  using RpcError::RpcError;
};

struct Message {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

// One connected TCP stream carrying length-prefixed messages.  Owns the fd.
// Not thread-safe: one side of the conversation drives it at a time (the
// front tier's pump loop, or a worker's serve loop).
class Conn {
 public:
  Conn() = default;
  explicit Conn(int fd) : fd_(fd) {}
  ~Conn() { close(); }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;
  Conn(Conn&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Conn& operator=(Conn&& o) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  // Writes the (u32 length, u8 type, payload) envelope, looping over partial
  // writes and EINTR until done or `deadline` passes (throws RpcTimeout).
  void send_msg(MsgType type, const std::vector<std::uint8_t>& payload,
                TimePoint deadline);

  // Reads exactly one message.  Throws RpcTimeout on deadline, RpcError on
  // EOF / reset / an over-long length prefix.
  Message recv_msg(TimePoint deadline);

  // True when at least one byte is readable without blocking (poll with zero
  // timeout): the front tier uses this to harvest responses opportunistically.
  bool readable() const;

 private:
  void send_all(const std::uint8_t* data, std::size_t len, TimePoint deadline);
  void recv_all(std::uint8_t* data, std::size_t len, TimePoint deadline);

  int fd_ = -1;
};

// Connects to 127.0.0.1:port with a connect deadline.  Throws RpcTimeout /
// RpcError.  The resulting socket has TCP_NODELAY set: the RPC tier's
// request/response pattern dies by Nagle otherwise.
Conn connect_local(std::uint16_t port, Millis timeout);

// A listening socket on 127.0.0.1 (SO_REUSEADDR, so a restarted worker can
// re-bind its port immediately).  port == 0 picks an ephemeral port.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  void listen(std::uint16_t port);
  void close();

  // Blocks until a peer connects or `deadline` passes (RpcTimeout) or the
  // listener is shut down from another thread (RpcError).  EINTR retried.
  Conn accept(TimePoint deadline);

  // Unblocks a concurrent accept() from another thread.
  void shutdown();

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// Bounded exponential backoff with deterministic jitter: delay(attempt) is
// min(base * 2^attempt, max), jittered to [delay/2, delay) by a seeded hash
// of (seed, attempt) — full determinism per seed, decorrelation across seeds.
class Backoff {
 public:
  Backoff(Millis base, Millis max, std::uint64_t seed)
      : base_(base), max_(max), seed_(seed) {}

  Millis delay(std::uint32_t attempt) const;

  Millis base() const { return base_; }
  Millis max() const { return max_; }

 private:
  Millis base_;
  Millis max_;
  std::uint64_t seed_;
};

}  // namespace dist
