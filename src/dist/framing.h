// Inter-process frame format for the distributed fleet (src/dist/).
//
// Every message on a front-tier <-> worker connection is length-prefixed:
//
//   u32 payload_len (LE) | u8 type | payload bytes ...
//
// and every payload is built from the same little-endian primitives, so the
// format is identical across hosts (the PR 7 wire codecs already made packet
// *contents* a validated byte format; this layer does the same for the RPC
// envelope around them).  Decoding is as paranoid as wire::WireCodec::parse:
// every read is bounds-checked, a malformed payload raises FramingError
// before any state is touched, and messages above kMaxMessageBytes are
// rejected outright so a corrupt length prefix can never drive a
// multi-gigabyte allocation.
//
// StateStore serialization (the live-migration payload) is canonical:
// variables are emitted sorted by name, so two snapshots of equal stores are
// byte-identical and the digests in tests can compare blobs directly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "banzai/state.h"

namespace dist {

// Protocol version, checked in the HELLO exchange; bump on any change to the
// message encodings below or their semantics (v2: an empty RestoreReq state
// blob means "reset the slot to pristine initial state").
constexpr std::uint32_t kProtocolVersion = 2;

// Upper bound on one message's payload: a full-fleet snapshot of corpus-sized
// state is well under a megabyte, so 64 MiB is generous headroom while still
// rejecting garbage length prefixes immediately.
constexpr std::size_t kMaxMessageBytes = 64u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,         // front -> worker: version, algorithm, slot count
  kHelloAck = 2,      // worker -> front: accepted, echoes its configuration
  kIngestBatch = 3,   // front -> worker: (seq, slot, frame bytes) records
  kIngestAck = 4,     // worker -> front: per-frame status + egress piggyback
  kHeartbeat = 5,     // front -> worker: liveness probe (nonce)
  kHeartbeatAck = 6,  // worker -> front: nonce echo + egress piggyback
  kSnapshotReq = 7,   // front -> worker: checkpoint barrier (flush + state)
  kSnapshotResp = 8,  // worker -> front: per-slot blobs + settled egress
  kRestoreReq = 9,    // front -> worker: install slot state (migration)
  kRestoreAck = 10,   // worker -> front: accepted
  kSwapEngine = 11,   // front -> worker: drain + rebuild on another engine
  kSwapAck = 12,      // worker -> front: accepted, reports active engine
  kFlushReq = 13,     // front -> worker: settle everything accepted so far
  kFlushAck = 14,     // worker -> front: done + egress piggyback
  kStop = 15,         // front -> worker: exit the serve loop (graceful)
  kError = 16,        // worker -> front: typed failure, state untouched
};

const char* to_string(MsgType t);

// Raised on any malformed payload (truncated read, trailing bytes, length
// bound exceeded).  The decoder throws before mutating anything.
class FramingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// ---- little-endian primitives ----------------------------------------------

// Append-only writer over a byte vector.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void bytes(const std::uint8_t* p, std::size_t n) {
    out_.insert(out_.end(), p, p + n);
  }
  void str(const std::string& s);    // u16 length + bytes
  void blob(const std::vector<std::uint8_t>& b);  // u32 length + bytes

 private:
  std::vector<std::uint8_t>& out_;
};

// Bounds-checked reader; every accessor throws FramingError on underrun.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : p_(data), end_(data + len) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string str();
  std::vector<std::uint8_t> blob();

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  // Decoders call this last: trailing bytes mean a version mismatch or
  // corruption, both of which must be loud.
  void expect_end() const;

 private:
  void need(std::size_t n) const;
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// ---- message payload structs -----------------------------------------------

struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::string algorithm;     // corpus algorithm name; must match the worker
  std::uint32_t num_slots = 0;
  std::uint32_t header_bytes = 0;  // wire codec header size, cross-checked
};

struct HelloAck {
  std::uint32_t num_slots = 0;
  std::uint8_t engine = 0;  // banzai::ExecEngine the worker runs on
};

struct FrameRecord {
  std::uint64_t seq = 0;   // front-tier global sequence number
  std::uint32_t slot = 0;  // flow-hash slot (the migration unit)
  std::vector<std::uint8_t> bytes;
};

struct IngestBatch {
  std::vector<FrameRecord> frames;
};

// Per-frame verdict in an IngestAck.  kDuplicate is the at-least-once path
// working as designed: a replayed or duplicated frame whose seq the worker
// already applied for that slot.
enum class FrameStatus : std::uint8_t {
  kAccepted = 0,
  kDuplicate = 1,
  kRejectTruncated = 2,
  kRejectOversized = 3,
  kRejectBadValue = 4,
};

struct EgressRecord {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> bytes;
};

struct IngestAck {
  std::vector<std::uint64_t> seqs;        // parallel to statuses
  std::vector<FrameStatus> statuses;
  std::vector<EgressRecord> egress;       // settled egress, seq-tagged
};

struct Heartbeat {
  std::uint64_t nonce = 0;
};

struct HeartbeatAck {
  std::uint64_t nonce = 0;
  std::uint64_t delivered = 0;            // worker-side delivered counter
  std::vector<EgressRecord> egress;
};

struct SnapshotReq {
  std::vector<std::uint32_t> slots;  // empty = all slots
};

struct SlotState {
  std::uint32_t slot = 0;
  std::uint64_t applied_seq = 0;     // highest global seq applied to the slot
  std::vector<std::uint8_t> state;   // serialize_state_store blob
};

struct SnapshotResp {
  std::vector<SlotState> slots;
  std::vector<EgressRecord> egress;  // settled by the snapshot barrier
};

struct RestoreReq {
  std::vector<SlotState> slots;
};

struct SwapEngine {
  std::uint8_t engine = 0;  // banzai::ExecEngine
};

struct SwapAck {
  std::uint8_t active_engine = 0;
};

struct FlushAck {
  std::vector<EgressRecord> egress;
};

struct ErrorMsg {
  std::string message;
};

// ---- encoders / decoders ---------------------------------------------------
//
// encode_* produce the payload only; the (length, type) envelope is written
// by rpc::Conn::send_msg.  decode_* consume the payload and throw
// FramingError on any malformation.

std::vector<std::uint8_t> encode_hello(const Hello& m);
Hello decode_hello(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> encode_hello_ack(const HelloAck& m);
HelloAck decode_hello_ack(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> encode_ingest_batch(const IngestBatch& m);
IngestBatch decode_ingest_batch(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> encode_ingest_ack(const IngestAck& m);
IngestAck decode_ingest_ack(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> encode_heartbeat(const Heartbeat& m);
Heartbeat decode_heartbeat(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> encode_heartbeat_ack(const HeartbeatAck& m);
HeartbeatAck decode_heartbeat_ack(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> encode_snapshot_req(const SnapshotReq& m);
SnapshotReq decode_snapshot_req(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> encode_snapshot_resp(const SnapshotResp& m);
SnapshotResp decode_snapshot_resp(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> encode_restore_req(const RestoreReq& m);
RestoreReq decode_restore_req(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> encode_swap_engine(const SwapEngine& m);
SwapEngine decode_swap_engine(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> encode_swap_ack(const SwapAck& m);
SwapAck decode_swap_ack(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> encode_flush_ack(const FlushAck& m);
FlushAck decode_flush_ack(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> encode_error(const ErrorMsg& m);
ErrorMsg decode_error(const std::uint8_t* p, std::size_t n);

// ---- StateStore <-> bytes (the migration payload) --------------------------
//
// Canonical encoding: u32 var count, then per variable (sorted by name)
// u16 name length + name, u8 scalar flag, u32 cell count, cells as u32 LE.
// deserialize_state_store validates the whole blob (throws FramingError)
// before returning, so a caller that then shape-checks against its live
// store (StateStore::same_shape / restore) can guarantee the corrupt-payload
// contract: reject cleanly, store untouched.
std::vector<std::uint8_t> serialize_state_store(const banzai::StateStore& s);
banzai::StateStore deserialize_state_store(const std::uint8_t* p,
                                           std::size_t n);

}  // namespace dist
