#include "dist/front.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "sim/partition.h"

namespace dist {

// ---- EgressWindow ----------------------------------------------------------

bool EgressWindow::put(std::uint64_t seq, Cell::State state,
                       std::vector<std::uint8_t>&& bytes) {
  if (seq < next_) {
    ++duplicates_;
    return false;
  }
  const std::size_t idx = static_cast<std::size_t>(seq - next_);
  if (idx >= window_.size()) window_.resize(idx + 1);
  if (window_[idx].state != Cell::kPending) {
    ++duplicates_;
    return false;
  }
  window_[idx].state = state;
  window_[idx].bytes = std::move(bytes);
  advance();
  return true;
}

void EgressWindow::advance() {
  while (!window_.empty() && window_.front().state != Cell::kPending) {
    if (window_.front().state == Cell::kFilled)
      ready_.push_back(std::move(window_.front().bytes));
    window_.pop_front();
    ++next_;
  }
}

bool EgressWindow::deliver(std::uint64_t seq, std::vector<std::uint8_t> bytes) {
  return put(seq, Cell::kFilled, std::move(bytes));
}

bool EgressWindow::tombstone(std::uint64_t seq) {
  std::vector<std::uint8_t> none;
  return put(seq, Cell::kTombstone, std::move(none));
}

std::vector<std::vector<std::uint8_t>> EgressWindow::drain() {
  std::vector<std::vector<std::uint8_t>> out = std::move(ready_);
  ready_.clear();
  return out;
}

// ---- FrontTier -------------------------------------------------------------

FrontTier::FrontTier(std::shared_ptr<const wire::WireCodec> rx,
                     FrontConfig cfg)
    : rx_(std::move(rx)),
      cfg_(std::move(cfg)),
      backoff_(cfg_.backoff_base, cfg_.backoff_max, cfg_.seed),
      scratch_(rx_->num_table_fields()) {
  if (cfg_.num_slots == 0) cfg_.num_slots = 1;
  resend_.resize(cfg_.num_slots);
}

std::size_t FrontTier::add_worker(std::uint16_t port) {
  WorkerLink w;
  w.port = port;
  w.detector = FailureDetector(HealthConfig{cfg_.dead_after});
  workers_.push_back(std::move(w));
  return workers_.size() - 1;
}

void FrontTier::connect() {
  if (workers_.empty()) throw RpcError("connect: no workers registered");
  owner_.resize(cfg_.num_slots);
  for (std::size_t s = 0; s < cfg_.num_slots; ++s)
    owner_[s] = s % workers_.size();
  for (auto& w : workers_) {
    if (!ensure_connected(w))
      throw RpcError("connect: worker on port " + std::to_string(w.port) +
                     " unreachable");
  }
}

std::size_t FrontTier::slot_of_frame(const std::uint8_t* data,
                                     std::size_t len) {
  // Malformed frames hash to slot 0: any worker will reject them with a
  // typed status, which tombstones their seq — they just need *a* route.
  const wire::ParseResult res = rx_->parse_exact(data, len, scratch_);
  if (!res.ok() || cfg_.num_slots <= 1) return 0;
  std::uint64_t h = 0;
  for (banzai::FieldId f : cfg_.flow_key)
    h = netsim::mix64(h ^ static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(scratch_.get(f))));
  return static_cast<std::size_t>(h % cfg_.num_slots);
}

void FrontTier::route(FrameRecord rec) {
  workers_[owner_[rec.slot]].outbox.push_back(std::move(rec));
}

void FrontTier::offer(const std::uint8_t* data, std::size_t len) {
  FrameRecord rec;
  rec.seq = next_seq_++;
  rec.slot = static_cast<std::uint32_t>(slot_of_frame(data, len));
  rec.bytes.assign(data, data + len);
  ++stats_.frames_offered;
  resend_[rec.slot].push_back(rec);
  ++resend_total_;
  const std::size_t wi = owner_[rec.slot];
  route(std::move(rec));
  if (resend_total_ >= cfg_.resend_limit) checkpoint();
  if (workers_[wi].outbox.size() >= cfg_.max_batch) flush_worker(wi);
}

bool FrontTier::ensure_connected(WorkerLink& w) {
  if (w.conn.valid()) return true;
  if (w.attempt > 0)
    std::this_thread::sleep_for(backoff_.delay(w.attempt - 1));
  try {
    w.conn = connect_local(w.port, cfg_.connect_timeout);
    hello(w);
  } catch (const RpcTimeout&) {
    w.conn.close();
    ++w.attempt;
    w.detector.on_timeout(Clock::now());
    return false;
  } catch (const RpcError&) {
    w.conn.close();
    ++w.attempt;
    w.detector.on_error(Clock::now());
    return false;
  }
  w.attempt = 0;
  // A dead worker only re-enters the fleet through this handshake: the
  // detector moves to recovering, and the first successful RPC completes the
  // arc to healthy.
  if (w.detector.state() == HealthState::kDead)
    w.detector.on_reconnect(Clock::now());
  ++stats_.reconnects;
  return true;
}

void FrontTier::hello(WorkerLink& w) {
  Hello h;
  h.version = kProtocolVersion;
  h.algorithm = cfg_.algorithm;
  h.num_slots = static_cast<std::uint32_t>(cfg_.num_slots);
  h.header_bytes = static_cast<std::uint32_t>(rx_->header_bytes());
  const Message resp = call(w, MsgType::kHello, encode_hello(h));
  if (resp.type != MsgType::kHelloAck)
    throw RpcError("hello: worker refused the handshake");
  const HelloAck ack =
      decode_hello_ack(resp.payload.data(), resp.payload.size());
  if (ack.num_slots != cfg_.num_slots)
    throw RpcError("hello: slot count mismatch");
}

Message FrontTier::call(WorkerLink& w, MsgType type,
                        const std::vector<std::uint8_t>& payload) {
  const TimePoint deadline = Clock::now() + cfg_.rpc_timeout;
  w.conn.send_msg(type, payload, deadline);
  return w.conn.recv_msg(deadline);
}

void FrontTier::on_rpc_failure(WorkerLink& w, bool timeout) {
  // The stream may be mid-message: only a fresh connection is safe.
  w.conn.close();
  if (timeout)
    w.detector.on_timeout(Clock::now());
  else
    w.detector.on_error(Clock::now());
}

bool FrontTier::valid_egress_seq(std::uint64_t seq) {
  // The front assigned every real seq from [1, next_seq_): anything else in
  // a decoded reply is corruption that framing alone can't catch, and
  // feeding it to the window would drive a resize of (seq - watermark)
  // cells — a ~2^63 seq means a multi-exabyte allocation.
  if (seq != 0 && seq < next_seq_) return true;
  ++stats_.egress_corrupt;
  return false;
}

void FrontTier::deliver_tombstone(std::uint64_t seq) {
  if (!valid_egress_seq(seq)) return;
  if (window_.tombstone(seq)) ++stats_.rejects;
}

void FrontTier::process_ack_frames(const std::vector<std::uint64_t>& seqs,
                                   const std::vector<FrameStatus>& statuses) {
  const std::size_t n = std::min(seqs.size(), statuses.size());
  for (std::size_t i = 0; i < n; ++i) {
    switch (statuses[i]) {
      case FrameStatus::kAccepted:
        ++stats_.frames_acked;
        break;
      case FrameStatus::kDuplicate:
        ++stats_.dup_acks;
        break;
      default:
        // A typed parse reject: the frame produced no output and never
        // will, so its seq becomes a tombstone and the window moves on.
        deliver_tombstone(seqs[i]);
        break;
    }
  }
}

void FrontTier::process_egress(const std::vector<EgressRecord>& egress) {
  for (const EgressRecord& rec : egress) {
    if (!valid_egress_seq(rec.seq)) continue;
    window_.deliver(rec.seq, rec.bytes);
  }
}

bool FrontTier::flush_worker(std::size_t wi) {
  WorkerLink& w = workers_[wi];
  std::uint32_t attempts = 0;
  while (!w.outbox.empty()) {
    if (!w.detector.alive()) {
      migrate(wi);
      return false;
    }
    if (attempts++ >= cfg_.max_attempts) {
      w.detector.mark_dead(Clock::now());
      migrate(wi);
      return false;
    }
    if (!ensure_connected(w)) continue;
    IngestBatch batch;
    const std::size_t n = std::min(cfg_.max_batch, w.outbox.size());
    for (std::size_t i = 0; i < n; ++i) batch.frames.push_back(w.outbox[i]);
    const std::vector<std::uint8_t> wire_batch = encode_ingest_batch(batch);
    Message resp;
    try {
      resp = call(w, MsgType::kIngestBatch, wire_batch);
    } catch (const RpcTimeout&) {
      ++stats_.retries;
      on_rpc_failure(w, true);
      continue;
    } catch (const RpcError&) {
      ++stats_.retries;
      on_rpc_failure(w, false);
      continue;
    }
    IngestAck ack;
    try {
      if (resp.type != MsgType::kIngestAck)
        throw FramingError("unexpected reply to ingest");
      ack = decode_ingest_ack(resp.payload.data(), resp.payload.size());
    } catch (const FramingError&) {
      ++stats_.retries;
      on_rpc_failure(w, false);
      continue;
    }
    w.detector.on_success(Clock::now());
    stats_.frames_sent += n;
    process_ack_frames(ack.seqs, ack.statuses);
    process_egress(ack.egress);
    for (std::size_t i = 0; i < n; ++i) w.outbox.pop_front();
    attempts = 0;
    ++batches_sent_;
    if (cfg_.dup_every != 0 && batches_sent_ % cfg_.dup_every == 0) {
      // Chaos knob: replay the batch we just had acknowledged.  The worker's
      // seq dedup must answer kDuplicate for every frame, and the egress
      // window must not emit anything twice.
      try {
        const Message r2 = call(w, MsgType::kIngestBatch, wire_batch);
        if (r2.type == MsgType::kIngestAck) {
          const IngestAck a2 =
              decode_ingest_ack(r2.payload.data(), r2.payload.size());
          stats_.frames_sent += n;
          process_ack_frames(a2.seqs, a2.statuses);
          process_egress(a2.egress);
          w.detector.on_success(Clock::now());
        }
      } catch (const RpcTimeout&) {
        on_rpc_failure(w, true);
      } catch (const RpcError&) {
        on_rpc_failure(w, false);
      }
    }
  }
  return true;
}

void FrontTier::flush_all_outboxes() {
  for (std::uint32_t guard = 0;; ++guard) {
    if (guard > 10000)
      throw RpcError("flush: outboxes did not converge");
    bool any = false;
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      if (workers_[wi].outbox.empty()) continue;
      any = true;
      flush_worker(wi);  // false = migrated; frames moved to other outboxes
    }
    if (!any) return;
  }
}

void FrontTier::flush() {
  flush_all_outboxes();
  for (std::uint32_t rounds = 0; !settled(); ++rounds) {
    if (rounds > 1000) throw RpcError("flush: egress did not settle");
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      WorkerLink& w = workers_[wi];
      if (!w.detector.alive()) continue;
      if (!owned_slots(wi).empty() || w.conn.valid()) {
        if (!ensure_connected(w)) continue;
        try {
          const Message resp = call(w, MsgType::kFlushReq, {});
          if (resp.type != MsgType::kFlushAck)
            throw FramingError("unexpected reply to flush");
          const FlushAck ack =
              decode_flush_ack(resp.payload.data(), resp.payload.size());
          w.detector.on_success(Clock::now());
          process_egress(ack.egress);
        } catch (const RpcTimeout&) {
          on_rpc_failure(w, true);
        } catch (const RpcError&) {
          on_rpc_failure(w, false);
        } catch (const FramingError&) {
          on_rpc_failure(w, false);
        }
      }
    }
    // A worker that ran out of failure budget during the flush round gets
    // its slots migrated here; the replayed frames then drain below.
    for (std::size_t wi = 0; wi < workers_.size(); ++wi)
      if (!workers_[wi].detector.alive() && !owned_slots(wi).empty())
        migrate(wi);
    flush_all_outboxes();
  }
}

void FrontTier::checkpoint() {
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    WorkerLink& w = workers_[wi];
    if (!w.detector.alive()) continue;
    const std::vector<std::size_t> slots = owned_slots(wi);
    if (slots.empty()) continue;
    SnapshotReq sreq;
    for (std::size_t s : slots)
      sreq.slots.push_back(static_cast<std::uint32_t>(s));
    if (!ensure_connected(w)) continue;
    try {
      const Message resp =
          call(w, MsgType::kSnapshotReq, encode_snapshot_req(sreq));
      if (resp.type != MsgType::kSnapshotResp)
        throw FramingError("unexpected reply to snapshot");
      SnapshotResp sr =
          decode_snapshot_resp(resp.payload.data(), resp.payload.size());
      w.detector.on_success(Clock::now());
      process_egress(sr.egress);
      for (SlotState& ss : sr.slots) {
        if (ss.slot >= resend_.size()) continue;
        // Everything up to applied_seq is baked into the blob: the resend
        // buffer only needs the unapplied tail from here on.
        auto& buf = resend_[ss.slot];
        while (!buf.empty() && buf.front().seq <= ss.applied_seq) {
          buf.pop_front();
          --resend_total_;
        }
        checkpoint_[ss.slot] = std::move(ss);
      }
    } catch (const RpcTimeout&) {
      on_rpc_failure(w, true);
    } catch (const RpcError&) {
      on_rpc_failure(w, false);
    } catch (const FramingError&) {
      on_rpc_failure(w, false);
    }
  }
  ++stats_.checkpoints;
}

void FrontTier::heartbeat() {
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    WorkerLink& w = workers_[wi];
    if (!w.detector.alive()) continue;
    if (!ensure_connected(w)) continue;
    Heartbeat hb;
    hb.nonce = ++w.hb_nonce;
    try {
      const Message resp =
          call(w, MsgType::kHeartbeat, encode_heartbeat(hb));
      if (resp.type != MsgType::kHeartbeatAck)
        throw FramingError("unexpected reply to heartbeat");
      const HeartbeatAck ack =
          decode_heartbeat_ack(resp.payload.data(), resp.payload.size());
      if (ack.nonce != hb.nonce) throw FramingError("heartbeat nonce mismatch");
      w.detector.on_success(Clock::now());
      process_egress(ack.egress);
      ++stats_.heartbeats;
    } catch (const RpcTimeout&) {
      on_rpc_failure(w, true);
    } catch (const RpcError&) {
      on_rpc_failure(w, false);
    } catch (const FramingError&) {
      on_rpc_failure(w, false);
    }
  }
}

std::vector<std::size_t> FrontTier::owned_slots(std::size_t wi) const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < owner_.size(); ++s)
    if (owner_[s] == wi) out.push_back(s);
  return out;
}

std::size_t FrontTier::pick_survivor(std::size_t excluding,
                                     std::size_t salt) const {
  std::vector<std::size_t> alive;
  for (std::size_t wi = 0; wi < workers_.size(); ++wi)
    if (wi != excluding && workers_[wi].detector.alive()) alive.push_back(wi);
  if (alive.empty()) throw RpcError("migration: no surviving workers");
  return alive[salt % alive.size()];
}

void FrontTier::replay_slot(std::size_t slot) {
  for (const FrameRecord& rec : resend_[slot]) {
    route(rec);
    ++stats_.replays;
  }
}

void FrontTier::migrate(std::size_t dead) {
  WorkerLink& w = workers_[dead];
  w.conn.close();
  if (w.detector.alive()) w.detector.mark_dead(Clock::now());
  std::deque<std::size_t> pending;
  for (std::size_t s : owned_slots(dead)) pending.push_back(s);
  // Unsent frames in the dead worker's outbox are all in the resend buffers
  // (offer() stores before routing), so the replay below re-creates them.
  w.outbox.clear();
  if (pending.empty()) return;
  ++stats_.migrations;
  std::size_t salt = 0;
  std::uint32_t guard = 0;
  while (!pending.empty()) {
    if (++guard > 10000) throw RpcError("migration did not converge");
    const std::size_t slot = pending.front();
    pending.pop_front();
    const std::size_t target = pick_survivor(dead, salt++);
    // ALWAYS restore — the last checkpoint, or the explicit reset-to-initial
    // order when there is none.  Skipping the restore would trust the
    // target's own copy of the slot, which can be stale (a worker the
    // detector declared dead over a partition keeps its memory).
    if (!restore_to(target, restore_payload(slot))) {
      pending.push_back(slot);  // target just died; pick another survivor
      continue;
    }
    owner_[slot] = target;
    ++stats_.slot_moves;
    replay_slot(slot);
  }
}

RestoreReq FrontTier::restore_payload(std::size_t slot) const {
  RestoreReq req;
  const auto it = checkpoint_.find(slot);
  if (it != checkpoint_.end()) {
    req.slots.push_back(it->second);
  } else {
    // No checkpoint means nothing was ever applied durably; replay rebuilds
    // everything from seq 1 — but only on top of PRISTINE state, so order an
    // explicit reset (empty blob, applied_seq 0) instead of assuming it.
    SlotState reset;
    reset.slot = static_cast<std::uint32_t>(slot);
    req.slots.push_back(std::move(reset));
  }
  return req;
}

bool FrontTier::restore_to(std::size_t target, const RestoreReq& req) {
  WorkerLink& w = workers_[target];
  for (std::uint32_t attempts = 0; attempts < cfg_.max_attempts; ++attempts) {
    if (!w.detector.alive()) return false;
    if (!ensure_connected(w)) continue;
    try {
      const Message resp =
          call(w, MsgType::kRestoreReq, encode_restore_req(req));
      if (resp.type == MsgType::kError) {
        // A protocol-level refusal (corrupt blob, shape mismatch) is not a
        // connection problem and will not improve with retries.
        const ErrorMsg err =
            decode_error(resp.payload.data(), resp.payload.size());
        throw RestoreRejected("restore rejected: " + err.message);
      }
      if (resp.type != MsgType::kRestoreAck)
        throw FramingError("unexpected reply to restore");
      w.detector.on_success(Clock::now());
      return true;
    } catch (const RpcTimeout&) {
      on_rpc_failure(w, true);
    } catch (const RestoreRejected&) {
      throw;  // deliberate refusal, not a transport failure
    } catch (const FramingError&) {
      on_rpc_failure(w, false);
    } catch (const RpcError&) {
      // Connection-level failure (reset, peer closed mid-restore): same
      // remedy as a timeout — reconnect and retry against the detector's
      // failure budget, or report false so the caller picks another
      // survivor.  Must NOT escape: migrate()/move_slot() rely on the
      // false return to re-route, per the "later failures are handled,
      // not thrown" contract.
      on_rpc_failure(w, false);
    }
  }
  w.detector.mark_dead(Clock::now());
  return false;
}

void FrontTier::move_slot(std::size_t slot, std::size_t to_worker) {
  if (slot >= owner_.size() || to_worker >= workers_.size())
    throw RpcError("move_slot: index out of range");
  std::size_t from = owner_[slot];
  if (from == to_worker) return;
  // Drain in-flight frames for the slot first; this may itself migrate the
  // owner if it turns out to be dead.
  flush_worker(from);
  from = owner_[slot];
  if (from == to_worker) return;
  WorkerLink& src = workers_[from];
  if (src.detector.alive()) {
    // Live rebalance: barrier-snapshot just this slot so the restore point
    // is current and the replay tail is empty (or nearly so).  The barrier
    // is retried through transport failures; if the source stays alive but
    // will not snapshot, the move is ABORTED — shipping a stale checkpoint
    // while the source keeps newer applied state would leave two versions
    // of the slot in the fleet.  If the source dies during the barrier, fall
    // through: the move degrades to the migration path (last checkpoint, or
    // an explicit reset, plus replay of the whole resend tail).
    bool barrier_ok = false;
    for (std::uint32_t attempts = 0;
         attempts < cfg_.max_attempts && !barrier_ok && src.detector.alive();
         ++attempts) {
      if (!ensure_connected(src)) continue;
      SnapshotReq sreq;
      sreq.slots.push_back(static_cast<std::uint32_t>(slot));
      try {
        const Message resp =
            call(src, MsgType::kSnapshotReq, encode_snapshot_req(sreq));
        if (resp.type != MsgType::kSnapshotResp)
          throw FramingError("unexpected reply to snapshot");
        SnapshotResp sr =
            decode_snapshot_resp(resp.payload.data(), resp.payload.size());
        src.detector.on_success(Clock::now());
        process_egress(sr.egress);
        for (SlotState& ss : sr.slots) {
          if (ss.slot != slot) continue;
          auto& buf = resend_[slot];
          while (!buf.empty() && buf.front().seq <= ss.applied_seq) {
            buf.pop_front();
            --resend_total_;
          }
          checkpoint_[slot] = std::move(ss);
          barrier_ok = true;
        }
      } catch (const RpcTimeout&) {
        on_rpc_failure(src, true);
      } catch (const RpcError&) {
        on_rpc_failure(src, false);
      } catch (const FramingError&) {
        on_rpc_failure(src, false);
      }
    }
    if (!barrier_ok && src.detector.alive())
      throw RpcError("move_slot: barrier snapshot failed on the source");
  }
  if (!restore_to(to_worker, restore_payload(slot)))
    throw RpcError("move_slot: target would not accept the slot");
  owner_[slot] = to_worker;
  ++stats_.slot_moves;
  replay_slot(slot);
  flush_worker(to_worker);
}

void FrontTier::swap_engine(std::uint8_t engine) {
  flush_all_outboxes();
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    WorkerLink& w = workers_[wi];
    if (!w.detector.alive()) continue;
    SwapEngine msg;
    msg.engine = engine;
    for (std::uint32_t attempts = 0; attempts < cfg_.max_attempts;
         ++attempts) {
      if (!ensure_connected(w)) continue;
      try {
        const Message resp =
            call(w, MsgType::kSwapEngine, encode_swap_engine(msg));
        if (resp.type != MsgType::kSwapAck)
          throw FramingError("unexpected reply to engine swap");
        w.detector.on_success(Clock::now());
        break;
      } catch (const RpcTimeout&) {
        on_rpc_failure(w, true);
      } catch (const RpcError&) {
        on_rpc_failure(w, false);
      } catch (const FramingError&) {
        on_rpc_failure(w, false);
      }
    }
  }
}

void FrontTier::evict(std::size_t worker) {
  if (worker >= workers_.size()) return;
  workers_[worker].detector.mark_dead(Clock::now());
  migrate(worker);
  flush_all_outboxes();
}

bool FrontTier::readmit(std::size_t worker) {
  if (worker >= workers_.size()) return false;
  WorkerLink& w = workers_[worker];
  w.attempt = 0;
  return ensure_connected(w);
}

std::vector<std::vector<std::uint8_t>> FrontTier::drain_egress() {
  auto out = window_.drain();
  stats_.egress_frames += out.size();
  return out;
}

FrontStats FrontTier::stats() const {
  FrontStats s = stats_;
  s.egress_duplicates = window_.duplicates();
  return s;
}

WorkerView FrontTier::worker_view(std::size_t w) const {
  WorkerView v;
  if (w >= workers_.size()) return v;
  const WorkerLink& link = workers_[w];
  v.port = link.port;
  v.health = link.detector.state();
  v.timeouts = link.detector.timeouts();
  v.errors = link.detector.errors();
  v.deaths = link.detector.deaths();
  v.recoveries = link.detector.recoveries();
  v.slots_owned = owned_slots(w).size();
  v.connected = link.conn.valid();
  return v;
}

}  // namespace dist
