#include "dist/rpc.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "sim/partition.h"

namespace dist {

namespace {

// Remaining milliseconds until `deadline`, clamped to [0, INT_MAX] for
// poll().  Zero means "already expired".
int millis_left(TimePoint deadline) {
  const auto left =
      std::chrono::duration_cast<Millis>(deadline - Clock::now()).count();
  if (left <= 0) return 0;
  if (left > 0x7FFFFFFF) return 0x7FFFFFFF;
  return static_cast<int>(left);
}

[[noreturn]] void throw_errno(const char* what) {
  throw RpcError(std::string(what) + ": " + std::strerror(errno));
}

// Waits until `fd` is ready for `events` or the deadline passes.  Returns
// normally on readiness; throws RpcTimeout when time runs out.  EINTR loops.
void wait_ready(int fd, short events, TimePoint deadline, const char* what) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int left = millis_left(deadline);
    if (left == 0) throw RpcTimeout(std::string(what) + ": deadline exceeded");
    const int rc = ::poll(&pfd, 1, left);
    if (rc > 0) {
      // POLLERR/POLLHUP readiness falls through to the actual syscall, which
      // reports the precise error (or EOF) — one error path, not two.
      return;
    }
    if (rc == 0) throw RpcTimeout(std::string(what) + ": deadline exceeded");
    if (errno == EINTR) continue;
    throw_errno(what);
  }
}

// TCP_NODELAY (the request/response pattern dies by Nagle otherwise) and
// O_NONBLOCK: with a blocking socket a full peer buffer would let send()
// stall past any deadline; nonblocking + poll keeps every wait bounded.
void setup_stream(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Conn& Conn::operator=(Conn&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Conn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Conn::send_all(const std::uint8_t* data, std::size_t len,
                    TimePoint deadline) {
  std::size_t off = 0;
  while (off < len) {
#ifdef MSG_NOSIGNAL
    const int flags = MSG_NOSIGNAL;
#else
    const int flags = 0;
#endif
    const ssize_t n = ::send(fd_, data + off, len - off, flags);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(fd_, POLLOUT, deadline, "send");
      continue;
    }
    throw_errno("send");
  }
}

void Conn::recv_all(std::uint8_t* data, std::size_t len, TimePoint deadline) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd_, data + off, len - off, MSG_DONTWAIT);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) throw RpcError("recv: connection closed by peer");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_ready(fd_, POLLIN, deadline, "recv");
      continue;
    }
    throw_errno("recv");
  }
}

void Conn::send_msg(MsgType type, const std::vector<std::uint8_t>& payload,
                    TimePoint deadline) {
  if (!valid()) throw RpcError("send_msg: connection is closed");
  if (payload.size() > kMaxMessageBytes)
    throw RpcError("send_msg: payload exceeds kMaxMessageBytes");
  std::vector<std::uint8_t> msg;
  msg.reserve(5 + payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    msg.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  msg.push_back(static_cast<std::uint8_t>(type));
  msg.insert(msg.end(), payload.begin(), payload.end());
  send_all(msg.data(), msg.size(), deadline);
}

Message Conn::recv_msg(TimePoint deadline) {
  if (!valid()) throw RpcError("recv_msg: connection is closed");
  std::uint8_t hdr[5];
  recv_all(hdr, sizeof(hdr), deadline);
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
  if (len > kMaxMessageBytes)
    throw RpcError("recv_msg: length prefix exceeds kMaxMessageBytes");
  Message m;
  m.type = static_cast<MsgType>(hdr[4]);
  m.payload.resize(len);
  if (len > 0) recv_all(m.payload.data(), len, deadline);
  return m;
}

bool Conn::readable() const {
  if (!valid()) return false;
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, 0);
    if (rc >= 0) return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR));
    if (errno == EINTR) continue;
    return false;
  }
}

Conn connect_local(std::uint16_t port, Millis timeout) {
  const TimePoint deadline = Clock::now() + timeout;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Conn conn(fd);  // owns the fd from here: every throw below closes it
  setup_stream(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      break;
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS || errno == EALREADY || errno == EAGAIN) {
      wait_ready(fd, POLLOUT, deadline, "connect");
      continue;
    }
    if (errno == EISCONN) break;
    throw_errno("connect");
  }
  return conn;
}

void Listener::listen(std::uint16_t port) {
  close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw RpcError(std::string("bind: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  if (::listen(fd, 8) < 0) {
    const int err = errno;
    ::close(fd);
    throw RpcError(std::string("listen: ") + std::strerror(err));
  }
  fd_ = fd;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

Conn Listener::accept(TimePoint deadline) {
  if (!valid()) throw RpcError("accept: listener is closed");
  for (;;) {
    wait_ready(fd_, POLLIN, deadline, "accept");
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      setup_stream(conn);
      return Conn(conn);
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED)
      continue;
    throw_errno("accept");
  }
}

void Listener::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Millis Backoff::delay(std::uint32_t attempt) const {
  // Saturate the exponent well before 2^attempt overflows.
  std::uint64_t mult = attempt >= 20 ? (1u << 20) : (1u << attempt);
  std::uint64_t ms = static_cast<std::uint64_t>(base_.count()) * mult;
  const std::uint64_t cap = static_cast<std::uint64_t>(max_.count());
  if (ms > cap) ms = cap;
  if (ms == 0) return Millis(0);
  // Deterministic jitter in [ms/2, ms): hash (seed, attempt).
  const std::uint64_t h = netsim::mix64(seed_ ^ (0x9E3779B97F4A7C15ULL *
                                                 (attempt + 1)));
  const std::uint64_t half = ms / 2;
  const std::uint64_t jittered = half + (half > 0 ? h % half : 0);
  return Millis(static_cast<long long>(jittered > 0 ? jittered : ms));
}

}  // namespace dist
