#include "dist/worker.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "wire/codec.h"

namespace dist {

namespace {

FrameStatus reject_status(wire::ParseStatus s) {
  switch (s) {
    case wire::ParseStatus::kTruncated: return FrameStatus::kRejectTruncated;
    case wire::ParseStatus::kOversized: return FrameStatus::kRejectOversized;
    default: return FrameStatus::kRejectBadValue;
  }
}

}  // namespace

WorkerServer::WorkerServer(const banzai::Machine& prototype,
                           std::shared_ptr<const wire::WireCodec> rx,
                           std::shared_ptr<const wire::WireCodec> tx,
                           WorkerConfig cfg)
    : proto_(prototype.clone()),
      rx_(std::move(rx)),
      tx_(std::move(tx)),
      cfg_(std::move(cfg)),
      initial_state_(proto_.snapshot_state()),
      scratch_(rx_->num_table_fields()) {
  svc_cfg_.num_shards = cfg_.num_shards;
  svc_cfg_.num_slots = cfg_.num_slots;
  svc_cfg_.batch_size = cfg_.batch_size;
  svc_cfg_.ring_capacity = cfg_.ring_capacity;
  // Lossless ingest: the replay protocol relies on "accepted implies
  // applied", so the worker never sheds — backpressure propagates to the
  // front tier through RPC latency instead.
  svc_cfg_.backpressure = banzai::Backpressure::kBlock;
  for (const auto& name : cfg_.flow_key)
    svc_cfg_.flow_key.push_back(proto_.fields().id_of(name));
  rebuild_service();
}

WorkerServer::~WorkerServer() { stop(); }

void WorkerServer::rebuild_service() {
  svc_ = std::make_unique<banzai::FleetService>(proto_, svc_cfg_);
  svc_->set_wire(rx_, tx_);
  applied_seq_.assign(svc_cfg_.num_slots, 0);
  pending_seq_.clear();
  out_egress_.clear();
  unconfirmed_.clear();
}

void WorkerServer::start() {
  if (running()) return;
  listener_.listen(port_ != 0 ? port_ : cfg_.port);
  port_ = listener_.port();
  {
    std::lock_guard<std::mutex> lock(mu_);
    svc_->start();
  }
  stopping_.store(false, std::memory_order_release);
  killed_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  server_ = std::thread([this] { serve_loop(); });
}

void WorkerServer::stop() {
  stopping_.store(true, std::memory_order_release);
  listener_.shutdown();
  if (server_.joinable()) server_.join();
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (svc_) svc_->stop();
  }
  running_.store(false, std::memory_order_release);
}

void WorkerServer::kill() {
  stopping_.store(true, std::memory_order_release);
  listener_.shutdown();
  if (server_.joinable()) server_.join();
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    svc_->stop();
    // A killed process loses its memory: fresh slots, zeroed dedup table,
    // no buffered egress.  Whatever it had applied since the last checkpoint
    // exists nowhere but in the front tier's resend buffer.
    rebuild_service();
  }
  killed_.store(true, std::memory_order_release);
  running_.store(false, std::memory_order_release);
}

void WorkerServer::restart() {
  if (running()) return;
  start();
}

void WorkerServer::serve_forever() {
  if (!listener_.valid()) {
    listener_.listen(port_ != 0 ? port_ : cfg_.port);
    port_ = listener_.port();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!svc_->running()) svc_->start();
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  serve_loop();
  running_.store(false, std::memory_order_release);
}

WorkerStats WorkerServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WorkerServer::serve_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Conn conn;
    try {
      conn = listener_.accept(Clock::now() + Millis(200));
    } catch (const RpcTimeout&) {
      continue;  // periodic stopping_ check
    } catch (const RpcError&) {
      break;  // listener shut down
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++conns_seen_;
      if (conns_seen_ > 1) ++stats_.reconnects;
    }
    serve_connection(conn);
  }
}

void WorkerServer::serve_connection(Conn& conn) {
  {
    // A fresh connection means the previous one died, and its last reply may
    // have died with it: re-queue that reply's egress so the next ack
    // redelivers it (the front tier dedups if it did arrive).
    std::lock_guard<std::mutex> lock(mu_);
    while (!unconfirmed_.empty()) {
      out_egress_.push_front(std::move(unconfirmed_.back()));
      unconfirmed_.pop_back();
    }
  }
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!conn.readable()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    Message req;
    try {
      req = conn.recv_msg(Clock::now() + cfg_.io_timeout);
    } catch (const RpcError&) {
      // Disconnect (or a mid-message stall, which leaves the stream in an
      // undefined position — same remedy): drop the connection and go back
      // to accept().  The front tier reconnects and re-sends; seq dedup
      // absorbs anything we already applied.
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.requests;
      // Lockstep: a new request on this connection proves the previous
      // reply was received — its egress is now safely the front's problem.
      unconfirmed_.clear();
    }
    try {
      if (!handle(conn, req)) return;
    } catch (const FramingError& e) {
      reply_error(conn, std::string("bad payload: ") + e.what());
    } catch (const RpcError&) {
      return;  // reply failed: connection is gone
    }
  }
}

bool WorkerServer::handle(Conn& conn, const Message& req) {
  switch (req.type) {
    case MsgType::kHello:
      handle_hello(conn, req);
      return true;
    case MsgType::kIngestBatch:
      handle_ingest(conn, req);
      return true;
    case MsgType::kHeartbeat:
      handle_heartbeat(conn, req);
      return true;
    case MsgType::kSnapshotReq:
      handle_snapshot(conn, req);
      return true;
    case MsgType::kRestoreReq:
      handle_restore(conn, req);
      return true;
    case MsgType::kSwapEngine:
      handle_swap(conn, req);
      return true;
    case MsgType::kFlushReq:
      handle_flush(conn);
      return true;
    case MsgType::kStop:
      stopping_.store(true, std::memory_order_release);
      return false;
    default:
      reply_error(conn, std::string("unexpected message type: ") +
                            to_string(req.type));
      return true;
  }
}

void WorkerServer::reply(Conn& conn, MsgType type,
                         const std::vector<std::uint8_t>& payload) {
  conn.send_msg(type, payload, Clock::now() + cfg_.io_timeout);
}

void WorkerServer::reply_error(Conn& conn, const std::string& what) {
  try {
    reply(conn, MsgType::kError, encode_error(ErrorMsg{what}));
  } catch (const RpcError&) {
    // Connection already gone; the serve loop notices on the next read.
  }
}

void WorkerServer::harvest_egress() {
  auto frames = svc_->drain_egress_frames();
  for (auto& f : frames) {
    // The service settles egress strictly in ingest order and the worker is
    // lossless (kBlock, no DropTail), so settled frames pair 1:1 FIFO with
    // the global seqs of accepted ingest.
    if (pending_seq_.empty())
      throw std::logic_error("egress without a pending sequence number");
    EgressRecord rec;
    rec.seq = pending_seq_.front();
    pending_seq_.pop_front();
    rec.bytes = std::move(f);
    out_egress_.push_back(std::move(rec));
  }
}

std::vector<EgressRecord> WorkerServer::take_egress(std::size_t limit) {
  std::vector<EgressRecord> out;
  while (!out_egress_.empty() && out.size() < limit) {
    unconfirmed_.push_back(out_egress_.front());  // until the next request
    out.push_back(std::move(out_egress_.front()));
    out_egress_.pop_front();
  }
  stats_.egress_returned += out.size();
  return out;
}

void WorkerServer::handle_hello(Conn& conn, const Message& req) {
  const Hello hello = decode_hello(req.payload.data(), req.payload.size());
  std::lock_guard<std::mutex> lock(mu_);
  if (hello.version != kProtocolVersion) {
    reply_error(conn, "protocol version mismatch");
    return;
  }
  if (!cfg_.algorithm.empty() && hello.algorithm != cfg_.algorithm) {
    reply_error(conn, "algorithm mismatch: worker runs " + cfg_.algorithm);
    return;
  }
  if (hello.num_slots != cfg_.num_slots) {
    reply_error(conn, "slot count mismatch");
    return;
  }
  if (hello.header_bytes != rx_->header_bytes()) {
    reply_error(conn, "wire header size mismatch");
    return;
  }
  HelloAck ack;
  ack.num_slots = static_cast<std::uint32_t>(cfg_.num_slots);
  ack.engine = static_cast<std::uint8_t>(proto_.active_engine());
  reply(conn, MsgType::kHelloAck, encode_hello_ack(ack));
}

void WorkerServer::handle_ingest(Conn& conn, const Message& req) {
  const IngestBatch batch =
      decode_ingest_batch(req.payload.data(), req.payload.size());
  IngestAck ack;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const FrameRecord& f : batch.frames) {
      ack.seqs.push_back(f.seq);
      if (f.slot >= applied_seq_.size()) {
        ack.statuses.push_back(FrameStatus::kRejectBadValue);
        ++stats_.frames_rejected;
        continue;
      }
      if (f.seq <= applied_seq_[f.slot]) {
        // A retry or a network duplicate: the at-least-once channel meeting
        // the exactly-once state machine.  An APPLIED frame dedups to
        // kDuplicate — but a REJECTED frame never advanced applied_seq_,
        // and once a later frame in the slot did, a retried reject (after a
        // lost ack) lands here too.  Answering it kDuplicate would be fatal:
        // the front only tombstones reject statuses, so the seq would never
        // settle and the egress watermark would stall forever.  Parsing is
        // deterministic and stateless on identical bytes, so re-parsing
        // reconstructs the original verdict exactly.
        const wire::ParseResult pr =
            rx_->parse_exact(f.bytes.data(), f.bytes.size(), scratch_);
        if (!pr.ok()) {
          ack.statuses.push_back(reject_status(pr.status));
          ++stats_.frames_rejected;
        } else {
          ack.statuses.push_back(FrameStatus::kDuplicate);
          ++stats_.frames_duplicate;
        }
        continue;
      }
      const auto res = svc_->ingest_frame(f.bytes.data(), f.bytes.size());
      if (res.accepted) {
        applied_seq_[f.slot] = f.seq;
        pending_seq_.push_back(f.seq);
        ack.statuses.push_back(FrameStatus::kAccepted);
        ++stats_.frames_accepted;
      } else {
        ack.statuses.push_back(reject_status(res.parse.status));
        ++stats_.frames_rejected;
      }
    }
    harvest_egress();
    ack.egress = take_egress(out_egress_.size());
    ++ingest_count_;
  }
  if (cfg_.stall_every != 0 && ingest_count_ % cfg_.stall_every == 0) {
    // Chaos knob: the frames above are APPLIED but the ack is late — the
    // front tier times out, retries, and must see kDuplicate. Sleeping
    // outside mu_ keeps kill()/stats() responsive.
    std::this_thread::sleep_for(cfg_.stall_for);
  }
  reply(conn, MsgType::kIngestAck, encode_ingest_ack(ack));
}

void WorkerServer::handle_heartbeat(Conn& conn, const Message& req) {
  const Heartbeat hb = decode_heartbeat(req.payload.data(), req.payload.size());
  HeartbeatAck ack;
  ack.nonce = hb.nonce;
  std::lock_guard<std::mutex> lock(mu_);
  harvest_egress();
  ack.delivered = svc_->stats().delivered;
  ack.egress = take_egress(out_egress_.size());
  reply(conn, MsgType::kHeartbeatAck, encode_heartbeat_ack(ack));
}

void WorkerServer::handle_flush(Conn& conn) {
  FlushAck ack;
  std::lock_guard<std::mutex> lock(mu_);
  svc_->flush();
  harvest_egress();
  ack.egress = take_egress(out_egress_.size());
  reply(conn, MsgType::kFlushAck, encode_flush_ack(ack));
}

void WorkerServer::handle_snapshot(Conn& conn, const Message& req) {
  const SnapshotReq snap_req =
      decode_snapshot_req(req.payload.data(), req.payload.size());
  SnapshotResp resp;
  std::lock_guard<std::mutex> lock(mu_);
  // Checkpoint barrier: settle everything accepted so far, so the snapshot
  // plus the returned egress together account for every applied frame —
  // applied_seq_[slot] is exact for the state in the blob.
  svc_->flush();
  harvest_egress();
  svc_->stop();
  const banzai::ServiceSnapshot snap = svc_->snapshot();
  svc_->start();
  std::vector<std::uint32_t> slots = snap_req.slots;
  if (slots.empty())
    for (std::uint32_t s = 0; s < snap.num_slots; ++s) slots.push_back(s);
  for (std::uint32_t s : slots) {
    if (s >= snap.num_slots) {
      reply_error(conn, "snapshot: slot out of range");
      return;
    }
    SlotState st;
    st.slot = s;
    st.applied_seq = applied_seq_[s];
    st.state = serialize_state_store(snap.slot_state[s]);
    resp.slots.push_back(std::move(st));
  }
  resp.egress = take_egress(out_egress_.size());
  reply(conn, MsgType::kSnapshotResp, encode_snapshot_resp(resp));
}

void WorkerServer::handle_restore(Conn& conn, const Message& req) {
  const RestoreReq restore =
      decode_restore_req(req.payload.data(), req.payload.size());
  std::lock_guard<std::mutex> lock(mu_);
  svc_->flush();
  svc_->stop();
  // Validate the WHOLE payload before touching ANY slot: decode every blob
  // and shape-check it against the live store.  A corrupt migration payload
  // must reject cleanly with the worker's state untouched — this is the
  // guard tests/dist_test.cc pins.
  std::vector<banzai::StateStore> stores;
  stores.reserve(restore.slots.size());
  for (const SlotState& s : restore.slots) {
    if (s.slot >= svc_cfg_.num_slots) {
      svc_->start();
      ++stats_.restore_rejects;
      reply_error(conn, "restore: slot out of range");
      return;
    }
    banzai::StateStore store;
    if (s.state.empty()) {
      // The explicit "start from scratch" restore: the front has no
      // checkpoint for the slot and orders a reset to the prototype's
      // initial state, so the target starts from a known point even if it
      // silently kept stale state for the slot (it trivially matches the
      // live shape — it IS the live shape).
      store = initial_state_;
    } else {
      try {
        store = deserialize_state_store(s.state.data(), s.state.size());
      } catch (const FramingError& e) {
        svc_->start();
        ++stats_.restore_rejects;
        reply_error(conn, std::string("restore: corrupt state blob: ") +
                              e.what());
        return;
      }
      if (!store.same_shape(svc_->slot_machine(s.slot).snapshot_state())) {
        svc_->start();
        ++stats_.restore_rejects;
        reply_error(conn, "restore: state shape mismatch");
        return;
      }
    }
    stores.push_back(std::move(store));
  }
  for (std::size_t i = 0; i < restore.slots.size(); ++i) {
    const SlotState& s = restore.slots[i];
    svc_->slot_machine(s.slot).restore_state(stores[i]);
    applied_seq_[s.slot] = s.applied_seq;
    ++stats_.restores;
  }
  svc_->start();
  reply(conn, MsgType::kRestoreAck, {});
}

void WorkerServer::handle_swap(Conn& conn, const Message& req) {
  const SwapEngine swap =
      decode_swap_engine(req.payload.data(), req.payload.size());
  if (swap.engine > static_cast<std::uint8_t>(banzai::ExecEngine::kNative)) {
    reply_error(conn, "swap: unknown engine");
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Drain-and-cutover: settle all in-flight packets, checkpoint, rebuild the
  // whole service on the new engine, restore the checkpoint, resume.  The
  // same barrier a recompiled pipeline would use to hot-swap mid-stream.
  svc_->flush();
  harvest_egress();
  svc_->stop();
  const banzai::ServiceSnapshot snap = svc_->snapshot();
  proto_.set_engine(static_cast<banzai::ExecEngine>(swap.engine));
  auto next = std::make_unique<banzai::FleetService>(proto_, svc_cfg_);
  next->set_wire(rx_, tx_);
  next->restore(snap);
  next->start();
  svc_ = std::move(next);
  ++stats_.engine_swaps;
  SwapAck ack;
  ack.active_engine = static_cast<std::uint8_t>(proto_.active_engine());
  reply(conn, MsgType::kSwapAck, encode_swap_ack(ack));
}

}  // namespace dist
