// FrontTier: the client half of the distributed fleet.  It hashes every
// ingress frame to a slot (the same chained-SplitMix64 flow hash the workers
// use internally), routes the slot to its owning worker over the dist RPC
// protocol, and reassembles a single, globally ordered, exactly-once egress
// stream out of whatever the workers return — through retries, duplicated
// frames, worker deaths and live slot migrations.
//
// The machinery, end to end:
//
//   offer(bytes) ──hash──► slot ──owner table──► per-worker outbox
//        │                                             │ (batched RPC)
//        └── per-slot resend buffer (at-least-once) ───┤
//                                                      ▼
//   EgressWindow ◄── seq-tagged egress piggybacked on every ack
//   (dedup + global order + tombstones for rejects)
//
// Fault model and the invariant it preserves: any RPC may time out or the
// connection may die at any point.  The front then retries the same frames
// after bounded-exponential backoff (the worker's per-slot seq dedup makes
// the resend idempotent), and the per-worker FailureDetector escalates
// healthy -> suspect -> dead.  On death, the dead worker's slots are
// restored onto survivors from the last checkpoint (RestoreReq carrying the
// snapshot blobs + applied seqs) and every buffered frame newer than the
// checkpoint is replayed in per-slot seq order.  Because the engines are
// deterministic and the EgressWindow dedups by global seq, the drained
// egress is bit-exact against one sequential Machine::process reference —
// including across a mid-burst kill.  tests/dist_chaos_test.cc pins exactly
// that.
//
// Threading contract: the front tier is caller-driven (one thread pumps
// offer/flush/checkpoint/heartbeat).  That keeps every chaos schedule
// deterministic: no internal threads, no clocks in the control flow.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "banzai/packet.h"
#include "dist/framing.h"
#include "dist/health.h"
#include "dist/rpc.h"
#include "wire/codec.h"

namespace dist {

// A worker refused a RestoreReq at the protocol level (corrupt blob, shape
// mismatch, bad slot).  Retrying cannot help, so restore_to() lets this
// escape instead of treating it as a transport failure — distinct from the
// RpcError/RpcTimeout a dying connection throws, which restore_to absorbs
// and retries.  Still an RpcError subtype so callers that only distinguish
// "the RPC tier gave up" keep working.
class RestoreRejected : public RpcError {
 public:
  using RpcError::RpcError;
};

struct FrontConfig {
  std::string algorithm;          // sent in HELLO; workers cross-check
  std::size_t num_slots = 16;     // must match every worker
  std::vector<banzai::FieldId> flow_key;  // resolved against the codec table
  Millis rpc_timeout{1000};
  Millis connect_timeout{1000};
  Millis backoff_base{5};
  Millis backoff_max{200};
  std::uint64_t seed = 1;         // backoff jitter + chaos schedules
  std::uint32_t dead_after = 3;   // consecutive failures before migration
  std::size_t max_batch = 64;     // frames per IngestBatch RPC
  // Resend-buffer bound: when this many frames are buffered fleet-wide, the
  // front forces a checkpoint (which trims every buffer to the unapplied
  // tail).  At-least-once replay needs the buffer; the bound keeps it from
  // growing without limit on a checkpoint-shy caller.
  std::size_t resend_limit = 8192;
  // Chaos knob: re-send every Nth ingest batch verbatim after its ack — the
  // workers must answer all-kDuplicate and the egress stream must not care.
  std::uint32_t dup_every = 0;
  // Max reconnect attempts per flush_worker pass before the detector's
  // verdict is accepted (prevents an unbounded retry loop when dead_after
  // is large and the worker is truly gone).
  std::uint32_t max_attempts = 10;
};

struct FrontStats {
  std::uint64_t frames_offered = 0;
  std::uint64_t frames_sent = 0;      // including retries and replays
  std::uint64_t frames_acked = 0;     // kAccepted acks
  std::uint64_t dup_acks = 0;         // kDuplicate acks (dedup at the worker)
  std::uint64_t rejects = 0;          // typed parse rejects -> tombstones
  std::uint64_t retries = 0;          // RPCs re-issued after timeout/error
  std::uint64_t reconnects = 0;       // successful reconnect handshakes
  std::uint64_t migrations = 0;       // dead-worker slot migrations
  std::uint64_t slot_moves = 0;       // slots moved (migration + rebalance)
  std::uint64_t checkpoints = 0;
  std::uint64_t replays = 0;          // frames replayed from resend buffers
  std::uint64_t egress_frames = 0;    // settled egress drained so far
  std::uint64_t egress_duplicates = 0;  // dropped by the window dedup
  // Ack/egress seqs outside the issued range [1, next_seq): a corrupted (but
  // well-framed) worker reply; dropped before they can touch the window.
  std::uint64_t egress_corrupt = 0;
  std::uint64_t heartbeats = 0;
};

struct WorkerView {
  std::uint16_t port = 0;
  HealthState health = HealthState::kHealthy;
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;
  std::uint64_t deaths = 0;
  std::uint64_t recoveries = 0;
  std::size_t slots_owned = 0;
  bool connected = false;
};

// Reorders worker egress into one global exactly-once stream.  Frames arrive
// tagged with the front tier's sequence numbers (possibly duplicated after a
// retry or replay); rejected seqs become tombstones so the watermark never
// stalls on a frame that produced no output.
class EgressWindow {
 public:
  // True when the record was fresh, false when deduped.
  bool deliver(std::uint64_t seq, std::vector<std::uint8_t> bytes);
  bool tombstone(std::uint64_t seq);

  std::vector<std::vector<std::uint8_t>> drain();

  // First seq not yet settled; when it reaches the offer counter + 1 every
  // offered frame is accounted for.
  std::uint64_t watermark() const { return next_; }
  std::uint64_t duplicates() const { return duplicates_; }

 private:
  struct Cell {
    enum State : std::uint8_t { kPending, kFilled, kTombstone };
    State state = kPending;
    std::vector<std::uint8_t> bytes;
  };
  bool put(std::uint64_t seq, Cell::State state,
           std::vector<std::uint8_t>&& bytes);
  void advance();

  std::deque<Cell> window_;  // window_[i] holds seq next_ + i
  std::vector<std::vector<std::uint8_t>> ready_;
  std::uint64_t next_ = 1;  // seqs start at 1 (0 = "nothing applied")
  std::uint64_t duplicates_ = 0;
};

class FrontTier {
 public:
  // `rx` parses frames only to compute the flow hash; the original bytes are
  // what travels to the workers.  It must be the same spec the workers parse
  // with, bound against the same field layout.
  FrontTier(std::shared_ptr<const wire::WireCodec> rx, FrontConfig cfg);

  // Registers a worker (must all be added before connect()).  Returns its
  // index.  Initial slot ownership is round-robin: slot s -> worker s % N.
  std::size_t add_worker(std::uint16_t port);

  // Connects + HELLO-handshakes every worker.  Throws RpcError if any worker
  // is unreachable at startup (later failures are handled, not thrown).
  void connect();

  // Offers one ingress frame: assigns the next global seq, buffers it for
  // resend, routes it to its slot's owner, and flushes any outbox that
  // reached max_batch.  Malformed frames still get a seq (the worker rejects
  // them with a typed status and the window tombstones the seq).
  void offer(const std::uint8_t* data, std::size_t len);
  void offer(const std::vector<std::uint8_t>& frame) {
    offer(frame.data(), frame.size());
  }

  // Sends every buffered frame and runs FlushReq rounds until every offered
  // seq is settled (delivered or tombstoned).  Survives worker deaths
  // mid-flush: migration + replay happen inline.
  void flush();

  // Checkpoint barrier: snapshots every owned slot on every alive worker,
  // stores the blobs as the migration fallback, trims resend buffers.
  void checkpoint();

  // Probes every alive worker (egress piggybacks on the acks); drives the
  // failure detectors for idle periods.
  void heartbeat();

  // Moves one slot to another worker under load: checkpoint the slot on its
  // current owner (drain barrier), restore on the target, replay the
  // unapplied tail.  Works whether the current owner is alive (live
  // rebalance) or dead (the migration path with the *last* checkpoint).  If
  // the owner is alive but the barrier snapshot keeps failing, the move is
  // ABORTED (throws RpcError, ownership unchanged) rather than shipping a
  // stale restore point while the owner holds newer state; if the owner
  // dies during the barrier, the move degrades to the migration path.
  void move_slot(std::size_t slot, std::size_t to_worker);

  // Hot-swaps every worker onto another execution engine mid-stream.
  void swap_engine(std::uint8_t engine);

  // Marks a worker dead immediately and migrates its slots (the caller knows
  // something the detector doesn't, e.g. the chaos harness just killed it).
  void evict(std::size_t worker);

  // Re-admits a worker that was dead (e.g. a restarted process): reconnect +
  // HELLO; the worker starts owning nothing until move_slot hands it work.
  bool readmit(std::size_t worker);

  // Settled egress in global offer order, exactly once.
  std::vector<std::vector<std::uint8_t>> drain_egress();

  bool settled() const { return window_.watermark() == next_seq_; }
  std::size_t num_workers() const { return workers_.size(); }
  std::size_t owner_of(std::size_t slot) const { return owner_.at(slot); }
  FrontStats stats() const;
  WorkerView worker_view(std::size_t w) const;

 private:
  struct WorkerLink {
    std::uint16_t port = 0;
    Conn conn;
    FailureDetector detector;
    std::uint32_t attempt = 0;           // reconnect backoff exponent
    std::deque<FrameRecord> outbox;
    std::uint64_t hb_nonce = 0;
  };

  std::size_t slot_of_frame(const std::uint8_t* data, std::size_t len);
  void route(FrameRecord rec);  // outbox only, no resend append
  bool ensure_connected(WorkerLink& w);
  void hello(WorkerLink& w);
  // One request/response exchange; throws RpcTimeout/RpcError, translates a
  // kError reply into RpcError.
  Message call(WorkerLink& w, MsgType type,
               const std::vector<std::uint8_t>& payload);
  void on_rpc_failure(WorkerLink& w, bool timeout);
  void process_ack_frames(const std::vector<std::uint64_t>& seqs,
                          const std::vector<FrameStatus>& statuses);
  void process_egress(const std::vector<EgressRecord>& egress);
  // Drains one worker's outbox (batched, with retry/backoff); migrates and
  // re-routes if the worker dies.  Returns false if the worker died.
  bool flush_worker(std::size_t wi);
  void flush_all_outboxes();
  void migrate(std::size_t dead);
  // Installs slot blobs on `target`, retrying through connection failures
  // (RpcTimeout / RpcError / FramingError all burn an attempt).  Returns
  // false when the target itself ran out of failure budget; throws
  // RestoreRejected when the worker refuses the payload (corrupt blob —
  // retrying cannot help).
  bool restore_to(std::size_t target, const RestoreReq& req);
  void replay_slot(std::size_t slot);
  std::vector<std::size_t> owned_slots(std::size_t wi) const;
  std::size_t pick_survivor(std::size_t excluding, std::size_t salt) const;
  void deliver_tombstone(std::uint64_t seq);
  // True when a worker-reported seq is one the front actually issued;
  // otherwise counts it corrupt.  Gates every seq decoded from a reply
  // before it can reach the window (a huge seq would drive an unbounded
  // window resize).
  bool valid_egress_seq(std::uint64_t seq);
  // The restore payload for handing `slot` to a new owner: the last
  // checkpoint if there is one, else the explicit empty-blob "reset to
  // initial state" order — a target is never left trusting its own
  // (possibly stale) copy of the slot.
  RestoreReq restore_payload(std::size_t slot) const;

  std::shared_ptr<const wire::WireCodec> rx_;
  FrontConfig cfg_;
  Backoff backoff_;
  std::vector<WorkerLink> workers_;
  std::vector<std::size_t> owner_;               // slot -> worker index
  std::vector<std::deque<FrameRecord>> resend_;  // per slot, seq order
  std::map<std::size_t, SlotState> checkpoint_;  // slot -> last checkpoint
  std::size_t resend_total_ = 0;
  EgressWindow window_;
  std::uint64_t next_seq_ = 1;
  std::uint32_t batches_sent_ = 0;  // for the dup_every chaos knob
  banzai::Packet scratch_;          // parse target for slot hashing
  FrontStats stats_;
};

}  // namespace dist
