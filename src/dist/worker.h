// WorkerServer: one process (or in-process harness instance) of the
// distributed fleet.  It owns a FleetService built from a compiled machine,
// listens on a TCP port, and serves the front tier's RPC protocol
// (dist/framing.h): byte-frame ingest with per-slot sequence dedup, egress
// return tagged with the front tier's global sequence numbers, snapshot /
// restore of whole slots (the live-migration payload), engine hot-swap, and
// heartbeats.
//
// Robustness contracts this side enforces:
//   * At-least-once ingest, exactly-once apply: the front tier may re-send
//     any frame (retry after a timeout, replay after a migration).  The
//     worker tracks the highest applied sequence number per slot; a frame
//     with seq <= applied_seq[slot] never touches the service.  Per-slot
//     frames arrive in sequence order, so the monotonic check is an exact
//     dedup, not a heuristic.  An APPLIED frame at-or-below the watermark is
//     acknowledged kDuplicate; a REJECTED one (which never advanced the
//     watermark) is re-answered its original reject status — parsing is
//     deterministic on identical bytes, so re-parsing reconstructs the
//     verdict exactly and the front's tombstone stays redeliverable even
//     after a later frame in the slot moved the watermark past it.
//   * Corrupt migration payloads reject cleanly: a RestoreReq is fully
//     validated (framing decode, state-shape check against the live store,
//     slot bounds) BEFORE any slot is touched; on any failure the worker
//     answers kError and keeps serving with its state untouched.  An EMPTY
//     state blob is the one exception to "blob must decode": it is the
//     front's explicit "start from scratch" order, resetting the slot to
//     the prototype's initial state (and applied_seq to the given value) so
//     a target that silently kept stale state for the slot — e.g. a
//     partitioned-but-alive worker being re-admitted — starts from the same
//     known point a pristine worker would.
//   * A lost connection is not a crash: the serve loop returns to accept(),
//     so a front tier that reconnects (with a fresh HELLO) resumes against
//     the same state and the same dedup table.
//
// kill() simulates a process crash for in-process chaos tests: connections
// drop mid-request and ALL service state is discarded (a SIGKILL'd process
// loses its memory) — recovery must come from the front tier's checkpoint +
// replay, which is exactly what the chaos suite verifies.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "banzai/machine.h"
#include "banzai/packet.h"
#include "banzai/service.h"
#include "banzai/state.h"
#include "dist/framing.h"
#include "dist/rpc.h"

namespace dist {

struct WorkerConfig {
  std::uint16_t port = 0;        // 0 = ephemeral (read back from port())
  std::string algorithm;         // corpus algorithm name (HELLO validation)
  std::size_t num_slots = 16;    // global slot table size (fleet-wide)
  std::size_t num_shards = 2;    // worker-local threads
  std::size_t batch_size = 64;
  std::size_t ring_capacity = 1024;
  std::vector<std::string> flow_key;  // field names, resolved per machine
  // Deadline for any single send/recv on the serve connection.
  Millis io_timeout{2000};
  // Chaos knob: stall (sleep) before answering every Nth ingest request,
  // long enough to blow the front tier's RPC deadline — drives the
  // timeout -> retry -> duplicate-ack path deterministically.  0 = off.
  std::uint32_t stall_every = 0;
  Millis stall_for{0};
};

struct WorkerStats {
  std::uint64_t requests = 0;
  std::uint64_t frames_accepted = 0;
  std::uint64_t frames_duplicate = 0;  // deduped by the per-slot seq guard
  std::uint64_t frames_rejected = 0;   // parse rejections (typed, counted)
  std::uint64_t egress_returned = 0;
  std::uint64_t restores = 0;          // slots installed via RestoreReq
  std::uint64_t restore_rejects = 0;   // corrupt payloads refused
  std::uint64_t engine_swaps = 0;
  std::uint64_t reconnects = 0;        // accepted front-tier connections - 1
};

class WorkerServer {
 public:
  // The machine prototype must carry the algorithm's compiled pipeline; rx
  // parses ingress frames, tx deparses egress (built with the compiler's
  // output_map).  The service starts on the prototype's engine.
  WorkerServer(const banzai::Machine& prototype,
               std::shared_ptr<const wire::WireCodec> rx,
               std::shared_ptr<const wire::WireCodec> tx, WorkerConfig cfg);
  ~WorkerServer();
  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  // Binds the port and spawns the serve thread.  Throws RpcError on bind
  // failure.
  void start();

  // Graceful shutdown: unblocks the serve loop, flushes and stops the
  // service, joins.  Idempotent.
  void stop();

  // Crash simulation: drop connections and DISCARD all service state (fresh
  // slots, zeroed dedup table), as a killed process would.  The listener
  // stays closed until restart().
  void kill();

  // Brings a killed worker back on the same port with fresh state — the
  // "restarted process" half of a chaos schedule.
  void restart();

  // Serves requests on the calling thread until kStop or kill()/stop() —
  // the worker-main entry point for real processes (examples/dist_worker).
  void serve_forever();

  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  WorkerStats stats() const;

 private:
  void serve_loop();
  void serve_connection(Conn& conn);
  // Handles one request; returns false when the connection should close.
  bool handle(Conn& conn, const Message& req);
  void reply(Conn& conn, MsgType type,
             const std::vector<std::uint8_t>& payload);
  void reply_error(Conn& conn, const std::string& what);

  // Drains settled service egress and pairs it with the pending global seqs
  // (FIFO: the service preserves ingest order).  Appends to out_egress_.
  void harvest_egress();
  // Moves up to `limit` harvested egress records into a response.
  std::vector<EgressRecord> take_egress(std::size_t limit);

  void handle_ingest(Conn& conn, const Message& req);
  void handle_snapshot(Conn& conn, const Message& req);
  void handle_restore(Conn& conn, const Message& req);
  void handle_swap(Conn& conn, const Message& req);
  void handle_flush(Conn& conn);
  void handle_hello(Conn& conn, const Message& req);
  void handle_heartbeat(Conn& conn, const Message& req);

  // Rebuilds the FleetService from the prototype (fresh state).
  void rebuild_service();

  banzai::Machine proto_;
  std::shared_ptr<const wire::WireCodec> rx_, tx_;
  WorkerConfig cfg_;
  banzai::ServiceConfig svc_cfg_;
  // The prototype's pristine state: the restore point an empty-blob
  // RestoreReq resets a slot to.  Captured once; engine swaps don't touch it.
  banzai::StateStore initial_state_;

  // Everything below mu_ is touched by the serve thread and by the control
  // surface (kill/restart/stats) — coarse lock, zero contention in steady
  // state because control calls are rare.
  mutable std::mutex mu_;
  std::unique_ptr<banzai::FleetService> svc_;
  std::vector<std::uint64_t> applied_seq_;  // per slot, 0 = nothing applied
  std::deque<std::uint64_t> pending_seq_;   // global seqs of accepted frames
  std::deque<EgressRecord> out_egress_;     // harvested, not yet returned
  // Egress included in the most recent reply.  Request/response lockstep
  // means the next request on the same connection proves the reply arrived
  // (confirmed -> dropped); a NEW connection instead means the reply may
  // have died with the old one, so these re-queue onto out_egress_.  The
  // front tier's window dedups the case where the reply did arrive.
  std::deque<EgressRecord> unconfirmed_;
  WorkerStats stats_;
  std::uint64_t conns_seen_ = 0;
  std::uint32_t ingest_count_ = 0;          // for the stall_every knob
  banzai::Packet scratch_;                  // re-parse target for dedup acks

  Listener listener_;
  std::uint16_t port_ = 0;
  std::thread server_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> killed_{false};
};

}  // namespace dist
