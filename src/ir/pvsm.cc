#include "ir/pvsm.h"

#include <algorithm>
#include <sstream>

namespace domino {

std::set<std::string> Codelet::state_vars() const {
  std::set<std::string> out;
  for (const auto& s : stmts)
    if (s.touches_state()) out.insert(s.state_var);
  return out;
}

bool Codelet::has_intrinsic() const {
  return std::any_of(stmts.begin(), stmts.end(), [](const TacStmt& s) {
    return s.kind == TacStmt::Kind::kIntrinsic;
  });
}

std::string Codelet::intrinsic_name() const {
  for (const auto& s : stmts)
    if (s.kind == TacStmt::Kind::kIntrinsic) return s.intrinsic;
  return {};
}

std::vector<std::string> Codelet::external_inputs() const {
  std::vector<std::string> out;
  std::set<std::string> written;
  std::set<std::string> seen;
  for (const auto& s : stmts) {
    for (const auto& f : s.fields_read()) {
      if (!written.count(f) && !seen.count(f)) {
        out.push_back(f);
        seen.insert(f);
      }
    }
    if (auto w = s.field_written()) written.insert(*w);
  }
  return out;
}

std::vector<std::string> Codelet::fields_written() const {
  std::vector<std::string> out;
  for (const auto& s : stmts)
    if (auto w = s.field_written()) out.push_back(*w);
  return out;
}

std::vector<std::pair<std::string, std::string>> Codelet::read_flanks() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& s : stmts)
    if (s.kind == TacStmt::Kind::kReadState)
      out.emplace_back(s.state_var, s.dst);
  return out;
}

std::string Codelet::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < stmts.size(); ++i) {
    if (i) os << " ";
    os << stmts[i].str();
  }
  return os.str();
}

std::size_t CodeletPipeline::max_codelets_per_stage() const {
  std::size_t m = 0;
  for (const auto& s : stages) m = std::max(m, s.size());
  return m;
}

std::size_t CodeletPipeline::num_codelets() const {
  std::size_t n = 0;
  for (const auto& s : stages) n += s.size();
  return n;
}

std::size_t CodeletPipeline::num_stateful_codelets() const {
  std::size_t n = 0;
  for (const auto& s : stages)
    for (const auto& c : s)
      if (c.is_stateful()) ++n;
  return n;
}

std::string CodeletPipeline::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    os << "=== Stage " << (i + 1) << " ===\n";
    for (const auto& c : stages[i]) {
      os << (c.is_stateful() ? "  [stateful] " : "  [stateless] ") << c.str()
         << "\n";
    }
  }
  return os.str();
}

}  // namespace domino
