// Three-address code (§4.1 "Flattening to three-address code").
//
// After normalization every instruction is either a read/write of a state
// variable or an operation on packet fields:
//     pkt.f = pkt.g op pkt.h;          (binary; operands may be constants)
//     pkt.f = pkt.c ? pkt.a : pkt.b;   (conditional — 4 arguments)
//     pkt.f = intrinsic(...) [% mod];  (hash units etc.)
//     pkt.f = state;  pkt.f = state[pkt.idx];   (read flank)
//     state = pkt.f;  state[pkt.idx] = pkt.f;   (write flank)
//
// The `% mod` attachment on intrinsics reflects hash generator hardware that
// produces an index into a memory of a given size; the front end folds
// `hashK(...) % CONST` into a single unit, mirroring the flowlet example
// (Figure 3b keeps `hash2(...) % NUM_FLOWLETS` as one box).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "banzai/state.h"
#include "banzai/value.h"
#include "ir/diag.h"
#include "ir/ops.h"

namespace domino {

struct Operand {
  enum class Kind { kField, kConst };
  Kind kind = Kind::kConst;
  std::string field;
  Value cst = 0;

  static Operand make_field(std::string name) {
    Operand o;
    o.kind = Kind::kField;
    o.field = std::move(name);
    return o;
  }
  static Operand make_const(Value v) {
    Operand o;
    o.kind = Kind::kConst;
    o.cst = v;
    return o;
  }

  bool is_field() const { return kind == Kind::kField; }
  bool is_const() const { return kind == Kind::kConst; }
  std::string str() const {
    return is_field() ? ("pkt." + field) : std::to_string(cst);
  }
  bool operator==(const Operand& o) const {
    return kind == o.kind && field == o.field && cst == o.cst;
  }
};

struct TacStmt {
  enum class Kind {
    kCopy,       // dst = a
    kUnary,      // dst = un_op a
    kBinary,     // dst = a op b
    kTernary,    // dst = a ? b : c
    kIntrinsic,  // dst = intrinsic(args) [% intrinsic_mod]
    kReadState,  // dst = state_var[index?]
    kWriteState, // state_var[index?] = a
  };

  Kind kind = Kind::kCopy;
  SourceLoc loc;

  std::string dst;  // destination packet field (empty for kWriteState)
  Operand a, b, c;
  UnOp un_op = UnOp::kNeg;
  BinOp op = BinOp::kAdd;

  std::string state_var;
  bool state_is_array = false;
  Operand index;  // a packet field after normalization

  std::string intrinsic;
  std::vector<Operand> args;
  Value intrinsic_mod = 0;  // 0 means "no modulus"

  bool reads_state() const { return kind == Kind::kReadState; }
  bool writes_state() const { return kind == Kind::kWriteState; }
  bool touches_state() const { return reads_state() || writes_state(); }

  // Packet fields read by this statement (including array indices).
  std::vector<std::string> fields_read() const;
  // Packet field written, if any.
  std::optional<std::string> field_written() const;

  std::string str() const;
  bool operator==(const TacStmt& o) const {
    return kind == o.kind && dst == o.dst && a == o.a && b == o.b &&
           c == o.c && un_op == o.un_op && op == o.op &&
           state_var == o.state_var && state_is_array == o.state_is_array &&
           index == o.index && intrinsic == o.intrinsic && args == o.args &&
           intrinsic_mod == o.intrinsic_mod;
  }
};

// A normalized transaction: straight-line three-address code plus the state
// declarations it references.
struct TacProgram {
  std::vector<TacStmt> stmts;
  std::string str() const;
};

// --- Evaluation -------------------------------------------------------------

// Field environment used by TAC evaluation; missing fields read as zero
// (packet temporaries start uninitialized-as-zero, matching the simulator).
using FieldEnv = std::vector<std::pair<std::string, Value>>;

class TacEvaluator {
 public:
  // Executes `stmt` against a field map and the full state store (arrays
  // supported; index operands are looked up in the field map).
  static void exec(const TacStmt& stmt,
                   std::vector<std::pair<std::string, Value>>& fields,
                   banzai::StateStore& state);

  static Value read_field(
      const std::vector<std::pair<std::string, Value>>& fields,
      const std::string& name);
  static void write_field(std::vector<std::pair<std::string, Value>>& fields,
                          const std::string& name, Value v);
  static Value eval_operand(
      const Operand& op,
      const std::vector<std::pair<std::string, Value>>& fields);
};

}  // namespace domino
