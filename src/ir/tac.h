// Three-address code (§4.1 "Flattening to three-address code").
//
// After normalization every instruction is either a read/write of a state
// variable or an operation on packet fields:
//     pkt.f = pkt.g op pkt.h;          (binary; operands may be constants)
//     pkt.f = pkt.c ? pkt.a : pkt.b;   (conditional — 4 arguments)
//     pkt.f = intrinsic(...) [% mod];  (hash units etc.)
//     pkt.f = state;  pkt.f = state[pkt.idx];   (read flank)
//     state = pkt.f;  state[pkt.idx] = pkt.f;   (write flank)
//
// The `% mod` attachment on intrinsics reflects hash generator hardware that
// produces an index into a memory of a given size; the front end folds
// `hashK(...) % CONST` into a single unit, mirroring the flowlet example
// (Figure 3b keeps `hash2(...) % NUM_FLOWLETS` as one box).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "banzai/state.h"
#include "banzai/value.h"
#include "ir/diag.h"
#include "ir/ops.h"

namespace domino {

struct Operand {
  enum class Kind { kField, kConst };
  Kind kind = Kind::kConst;
  std::string field;
  Value cst = 0;

  static Operand make_field(std::string name) {
    Operand o;
    o.kind = Kind::kField;
    o.field = std::move(name);
    return o;
  }
  static Operand make_const(Value v) {
    Operand o;
    o.kind = Kind::kConst;
    o.cst = v;
    return o;
  }

  bool is_field() const { return kind == Kind::kField; }
  bool is_const() const { return kind == Kind::kConst; }
  std::string str() const {
    return is_field() ? ("pkt." + field) : std::to_string(cst);
  }
  bool operator==(const Operand& o) const {
    return kind == o.kind && field == o.field && cst == o.cst;
  }
};

struct TacStmt {
  enum class Kind {
    kCopy,       // dst = a
    kUnary,      // dst = un_op a
    kBinary,     // dst = a op b
    kTernary,    // dst = a ? b : c
    kIntrinsic,  // dst = intrinsic(args) [% intrinsic_mod]
    kReadState,  // dst = state_var[index?]
    kWriteState, // state_var[index?] = a
  };

  Kind kind = Kind::kCopy;
  SourceLoc loc;

  std::string dst;  // destination packet field (empty for kWriteState)
  Operand a, b, c;
  UnOp un_op = UnOp::kNeg;
  BinOp op = BinOp::kAdd;

  std::string state_var;
  bool state_is_array = false;
  Operand index;  // a packet field after normalization

  std::string intrinsic;
  std::vector<Operand> args;
  Value intrinsic_mod = 0;  // 0 means "no modulus"

  bool reads_state() const { return kind == Kind::kReadState; }
  bool writes_state() const { return kind == Kind::kWriteState; }
  bool touches_state() const { return reads_state() || writes_state(); }

  // Packet fields read by this statement (including array indices).
  std::vector<std::string> fields_read() const;
  // Packet field written, if any.
  std::optional<std::string> field_written() const;

  std::string str() const;
  bool operator==(const TacStmt& o) const {
    return kind == o.kind && dst == o.dst && a == o.a && b == o.b &&
           c == o.c && un_op == o.un_op && op == o.op &&
           state_var == o.state_var && state_is_array == o.state_is_array &&
           index == o.index && intrinsic == o.intrinsic && args == o.args &&
           intrinsic_mod == o.intrinsic_mod;
  }
};

// A normalized transaction: straight-line three-address code plus the state
// declarations it references.
struct TacProgram {
  std::vector<TacStmt> stmts;
  std::string str() const;
};

// --- Evaluation -------------------------------------------------------------

// Field environment used by TAC evaluation; missing fields read as zero
// (packet temporaries start uninitialized-as-zero, matching the simulator).
using FieldEnv = std::vector<std::pair<std::string, Value>>;

// Name-based evaluator: every operand access scans the FieldEnv linearly.
// Convenient for one-off executions and golden tests; hot paths should build
// a CompiledTac instead, which resolves names to dense indices once.
class TacEvaluator {
 public:
  // Executes `stmt` against a field map and the full state store (arrays
  // supported; index operands are looked up in the field map).
  static void exec(const TacStmt& stmt,
                   std::vector<std::pair<std::string, Value>>& fields,
                   banzai::StateStore& state);

  static Value read_field(
      const std::vector<std::pair<std::string, Value>>& fields,
      const std::string& name);
  static void write_field(std::vector<std::pair<std::string, Value>>& fields,
                          const std::string& name, Value v);
  static Value eval_operand(
      const Operand& op,
      const std::vector<std::pair<std::string, Value>>& fields);
};

// Per-program compiled form of the TAC evaluator.  Construction walks the
// statements once, interning every packet-field name into a dense index;
// execution then reads and writes a flat Value array, so each operand access
// is O(1) instead of the O(fields) scan TacEvaluator pays per access.
// Semantics are identical to running TacEvaluator::exec over the same
// statements: unwritten fields read as zero.
class CompiledTac {
 public:
  struct ROperand {
    bool is_const = true;
    Value cst = 0;
    std::uint32_t idx = 0;  // field index when !is_const
  };

  // A TacStmt with every field name replaced by its dense index.  The state
  // variable keeps its name: the StateStore is supplied per execution and may
  // differ between calls.
  struct RStmt {
    TacStmt::Kind kind = TacStmt::Kind::kCopy;
    std::uint32_t dst = 0;  // unused for kWriteState
    ROperand a, b, c;
    UnOp un_op = UnOp::kNeg;
    BinOp op = BinOp::kAdd;
    std::string state_var;
    bool state_is_array = false;
    ROperand index;
    std::string intrinsic;
    std::vector<ROperand> args;
    Value intrinsic_mod = 0;
  };

  explicit CompiledTac(const std::vector<TacStmt>& stmts);
  explicit CompiledTac(const TacProgram& prog) : CompiledTac(prog.stmts) {}

  std::size_t num_fields() const { return names_.size(); }
  const std::vector<std::string>& field_names() const { return names_; }
  const std::vector<RStmt>& stmts() const { return stmts_; }

  // Dense index of `name`, or nullopt if the program never touches it.
  std::optional<std::uint32_t> index_of(const std::string& name) const {
    auto it = index_.find(name);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  // A zeroed environment sized for this program.
  std::vector<Value> make_env() const {
    return std::vector<Value>(names_.size(), 0);
  }

  static Value eval_operand(const ROperand& op, const std::vector<Value>& env) {
    return op.is_const ? op.cst : env[op.idx];
  }

  // Executes one resolved statement / the whole program.  env.size() must be
  // num_fields().
  void exec_stmt(const RStmt& stmt, std::vector<Value>& env,
                 banzai::StateStore& state) const;
  void exec(std::vector<Value>& env, banzai::StateStore& state) const {
    for (const RStmt& s : stmts_) exec_stmt(s, env, state);
  }

 private:
  std::uint32_t intern(const std::string& name);
  ROperand resolve(const Operand& op);

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> index_;
  std::vector<RStmt> stmts_;
};

}  // namespace domino
