// The Pipelined Virtual Switch Machine (PVSM, §4.2): the compiler's
// intermediate representation.  A codelet is a sequential block of
// three-address code statements (one strongly connected component of the
// dependency graph); the PVSM is a pipeline of codelets with no computational
// or resource constraints — those are imposed later, during code generation.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "ir/tac.h"

namespace domino {

struct Codelet {
  std::vector<TacStmt> stmts;  // topologically ordered within the codelet

  // State variables this codelet reads or writes.  Non-empty => stateful.
  std::set<std::string> state_vars() const;
  bool is_stateful() const { return !state_vars().empty(); }

  // True if the codelet invokes a hardware accelerator (hash/math unit).
  bool has_intrinsic() const;
  // Name of the intrinsic if has_intrinsic().
  std::string intrinsic_name() const;

  // Packet fields read from outside the codelet (live-ins).
  std::vector<std::string> external_inputs() const;
  // Packet fields written by the codelet (in statement order).
  std::vector<std::string> fields_written() const;
  // Fields holding the pre-update value of each state variable (read flanks),
  // keyed in the order of state_vars().
  std::vector<std::pair<std::string, std::string>> read_flanks() const;

  std::string str() const;
};

// One stage of the PVSM: codelets that execute in parallel.
using PvsmStage = std::vector<Codelet>;

struct CodeletPipeline {
  std::vector<PvsmStage> stages;

  std::size_t num_stages() const { return stages.size(); }
  std::size_t max_codelets_per_stage() const;
  std::size_t num_codelets() const;
  std::size_t num_stateful_codelets() const;

  std::string str() const;
};

}  // namespace domino
