// Domino intrinsics (§3.1): hardware accelerators invoked like functions.
//
// The compiler uses an intrinsic's signature for dependency analysis and
// supplies a canned run-time implementation; it does not look inside.  Each
// intrinsic belongs to a hardware unit class; a Banzai target advertises which
// unit classes it provides.  All paper targets provide hash units; none
// provides a math unit — that is why CoDel (which needs a square root) cannot
// be mapped, and why the look-up-table extension target (§5.3 future work)
// exists.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "banzai/value.h"

namespace domino {

enum class IntrinsicUnit {
  kHash,  // hash generators, available on every Banzai target
  kMath,  // approximate math (sqrt), only on the LUT-extended target
};

struct IntrinsicInfo {
  std::string name;
  int arity;
  IntrinsicUnit unit;
};

// Returns metadata for `name`, or nullopt if not an intrinsic.
std::optional<IntrinsicInfo> intrinsic_info(const std::string& name);

// Canned implementations.  Deterministic: interpreter, synthesis and the
// Banzai simulator share these definitions bit-for-bit.
banzai::Value eval_intrinsic(const std::string& name,
                             const std::vector<banzai::Value>& args);

// Raw-pointer form of the same implementations, for the fused kernel VM
// (banzai/kernel.h) whose execution path carries no strings or vectors.
// Returns nullptr for unknown names.  eval_intrinsic routes through these
// bodies, so the two forms cannot drift.
using RawIntrinsicFn = banzai::Value (*)(const banzai::Value* args,
                                         std::size_t n);
RawIntrinsicFn intrinsic_raw_fn(const std::string& name);

// Integer square root (floor), used by the CoDel control law.
std::int32_t isqrt(std::int32_t v);

}  // namespace domino
