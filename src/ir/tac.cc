#include "ir/tac.h"

#include <sstream>

#include "ir/intrinsics.h"

namespace domino {

std::vector<std::string> TacStmt::fields_read() const {
  std::vector<std::string> out;
  auto add = [&out](const Operand& o) {
    if (o.is_field()) out.push_back(o.field);
  };
  switch (kind) {
    case Kind::kCopy:
    case Kind::kUnary:
      add(a);
      break;
    case Kind::kBinary:
      add(a);
      add(b);
      break;
    case Kind::kTernary:
      add(a);
      add(b);
      add(c);
      break;
    case Kind::kIntrinsic:
      for (const auto& arg : args) add(arg);
      break;
    case Kind::kReadState:
      if (state_is_array) add(index);
      break;
    case Kind::kWriteState:
      add(a);
      if (state_is_array) add(index);
      break;
  }
  return out;
}

std::optional<std::string> TacStmt::field_written() const {
  if (kind == Kind::kWriteState) return std::nullopt;
  return dst;
}

std::string TacStmt::str() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kCopy:
      os << "pkt." << dst << " = " << a.str() << ";";
      break;
    case Kind::kUnary:
      os << "pkt." << dst << " = " << unop_str(un_op) << a.str() << ";";
      break;
    case Kind::kBinary:
      os << "pkt." << dst << " = " << a.str() << " " << binop_str(op) << " "
         << b.str() << ";";
      break;
    case Kind::kTernary:
      os << "pkt." << dst << " = " << a.str() << " ? " << b.str() << " : "
         << c.str() << ";";
      break;
    case Kind::kIntrinsic: {
      os << "pkt." << dst << " = " << intrinsic << "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) os << ", ";
        os << args[i].str();
      }
      os << ")";
      if (intrinsic_mod > 0) os << " % " << intrinsic_mod;
      os << ";";
      break;
    }
    case Kind::kReadState:
      os << "pkt." << dst << " = " << state_var;
      if (state_is_array) os << "[" << index.str() << "]";
      os << ";";
      break;
    case Kind::kWriteState:
      os << state_var;
      if (state_is_array) os << "[" << index.str() << "]";
      os << " = " << a.str() << ";";
      break;
  }
  return os.str();
}

std::string TacProgram::str() const {
  std::ostringstream os;
  for (const auto& s : stmts) os << s.str() << "\n";
  return os.str();
}

Value TacEvaluator::read_field(
    const std::vector<std::pair<std::string, Value>>& fields,
    const std::string& name) {
  for (const auto& [k, v] : fields)
    if (k == name) return v;
  return 0;
}

void TacEvaluator::write_field(
    std::vector<std::pair<std::string, Value>>& fields,
    const std::string& name, Value v) {
  for (auto& [k, val] : fields) {
    if (k == name) {
      val = v;
      return;
    }
  }
  fields.emplace_back(name, v);
}

Value TacEvaluator::eval_operand(
    const Operand& op,
    const std::vector<std::pair<std::string, Value>>& fields) {
  return op.is_const() ? op.cst : read_field(fields, op.field);
}

void TacEvaluator::exec(const TacStmt& stmt,
                        std::vector<std::pair<std::string, Value>>& fields,
                        banzai::StateStore& state) {
  switch (stmt.kind) {
    case TacStmt::Kind::kCopy:
      write_field(fields, stmt.dst, eval_operand(stmt.a, fields));
      break;
    case TacStmt::Kind::kUnary:
      write_field(fields, stmt.dst,
                  eval_unop(stmt.un_op, eval_operand(stmt.a, fields)));
      break;
    case TacStmt::Kind::kBinary:
      write_field(fields, stmt.dst,
                  eval_binop(stmt.op, eval_operand(stmt.a, fields),
                             eval_operand(stmt.b, fields)));
      break;
    case TacStmt::Kind::kTernary:
      write_field(fields, stmt.dst,
                  eval_operand(stmt.a, fields) != 0
                      ? eval_operand(stmt.b, fields)
                      : eval_operand(stmt.c, fields));
      break;
    case TacStmt::Kind::kIntrinsic: {
      std::vector<Value> argv;
      argv.reserve(stmt.args.size());
      for (const auto& a : stmt.args) argv.push_back(eval_operand(a, fields));
      Value v = eval_intrinsic(stmt.intrinsic, argv);
      if (stmt.intrinsic_mod > 0) v = banzai::total_mod(v, stmt.intrinsic_mod);
      write_field(fields, stmt.dst, v);
      break;
    }
    case TacStmt::Kind::kReadState: {
      auto& var = state.var(stmt.state_var);
      Value v = stmt.state_is_array
                    ? var.load(eval_operand(stmt.index, fields))
                    : var.load_scalar();
      write_field(fields, stmt.dst, v);
      break;
    }
    case TacStmt::Kind::kWriteState: {
      auto& var = state.var(stmt.state_var);
      Value v = eval_operand(stmt.a, fields);
      if (stmt.state_is_array)
        var.store(eval_operand(stmt.index, fields), v);
      else
        var.store_scalar(v);
      break;
    }
  }
}

}  // namespace domino
