#include "ir/tac.h"

#include <sstream>

#include "ir/intrinsics.h"

namespace domino {

std::vector<std::string> TacStmt::fields_read() const {
  std::vector<std::string> out;
  auto add = [&out](const Operand& o) {
    if (o.is_field()) out.push_back(o.field);
  };
  switch (kind) {
    case Kind::kCopy:
    case Kind::kUnary:
      add(a);
      break;
    case Kind::kBinary:
      add(a);
      add(b);
      break;
    case Kind::kTernary:
      add(a);
      add(b);
      add(c);
      break;
    case Kind::kIntrinsic:
      for (const auto& arg : args) add(arg);
      break;
    case Kind::kReadState:
      if (state_is_array) add(index);
      break;
    case Kind::kWriteState:
      add(a);
      if (state_is_array) add(index);
      break;
  }
  return out;
}

std::optional<std::string> TacStmt::field_written() const {
  if (kind == Kind::kWriteState) return std::nullopt;
  return dst;
}

std::string TacStmt::str() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kCopy:
      os << "pkt." << dst << " = " << a.str() << ";";
      break;
    case Kind::kUnary:
      os << "pkt." << dst << " = " << unop_str(un_op) << a.str() << ";";
      break;
    case Kind::kBinary:
      os << "pkt." << dst << " = " << a.str() << " " << binop_str(op) << " "
         << b.str() << ";";
      break;
    case Kind::kTernary:
      os << "pkt." << dst << " = " << a.str() << " ? " << b.str() << " : "
         << c.str() << ";";
      break;
    case Kind::kIntrinsic: {
      os << "pkt." << dst << " = " << intrinsic << "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) os << ", ";
        os << args[i].str();
      }
      os << ")";
      if (intrinsic_mod > 0) os << " % " << intrinsic_mod;
      os << ";";
      break;
    }
    case Kind::kReadState:
      os << "pkt." << dst << " = " << state_var;
      if (state_is_array) os << "[" << index.str() << "]";
      os << ";";
      break;
    case Kind::kWriteState:
      os << state_var;
      if (state_is_array) os << "[" << index.str() << "]";
      os << " = " << a.str() << ";";
      break;
  }
  return os.str();
}

std::string TacProgram::str() const {
  std::ostringstream os;
  for (const auto& s : stmts) os << s.str() << "\n";
  return os.str();
}

Value TacEvaluator::read_field(
    const std::vector<std::pair<std::string, Value>>& fields,
    const std::string& name) {
  for (const auto& [k, v] : fields)
    if (k == name) return v;
  return 0;
}

void TacEvaluator::write_field(
    std::vector<std::pair<std::string, Value>>& fields,
    const std::string& name, Value v) {
  for (auto& [k, val] : fields) {
    if (k == name) {
      val = v;
      return;
    }
  }
  fields.emplace_back(name, v);
}

Value TacEvaluator::eval_operand(
    const Operand& op,
    const std::vector<std::pair<std::string, Value>>& fields) {
  return op.is_const() ? op.cst : read_field(fields, op.field);
}

void TacEvaluator::exec(const TacStmt& stmt,
                        std::vector<std::pair<std::string, Value>>& fields,
                        banzai::StateStore& state) {
  switch (stmt.kind) {
    case TacStmt::Kind::kCopy:
      write_field(fields, stmt.dst, eval_operand(stmt.a, fields));
      break;
    case TacStmt::Kind::kUnary:
      write_field(fields, stmt.dst,
                  eval_unop(stmt.un_op, eval_operand(stmt.a, fields)));
      break;
    case TacStmt::Kind::kBinary:
      write_field(fields, stmt.dst,
                  eval_binop(stmt.op, eval_operand(stmt.a, fields),
                             eval_operand(stmt.b, fields)));
      break;
    case TacStmt::Kind::kTernary:
      write_field(fields, stmt.dst,
                  eval_operand(stmt.a, fields) != 0
                      ? eval_operand(stmt.b, fields)
                      : eval_operand(stmt.c, fields));
      break;
    case TacStmt::Kind::kIntrinsic: {
      std::vector<Value> argv;
      argv.reserve(stmt.args.size());
      for (const auto& a : stmt.args) argv.push_back(eval_operand(a, fields));
      Value v = eval_intrinsic(stmt.intrinsic, argv);
      if (stmt.intrinsic_mod > 0) v = banzai::total_mod(v, stmt.intrinsic_mod);
      write_field(fields, stmt.dst, v);
      break;
    }
    case TacStmt::Kind::kReadState: {
      auto& var = state.var(stmt.state_var);
      Value v = stmt.state_is_array
                    ? var.load(eval_operand(stmt.index, fields))
                    : var.load_scalar();
      write_field(fields, stmt.dst, v);
      break;
    }
    case TacStmt::Kind::kWriteState: {
      auto& var = state.var(stmt.state_var);
      Value v = eval_operand(stmt.a, fields);
      if (stmt.state_is_array)
        var.store(eval_operand(stmt.index, fields), v);
      else
        var.store_scalar(v);
      break;
    }
  }
}

std::uint32_t CompiledTac::intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

CompiledTac::ROperand CompiledTac::resolve(const Operand& op) {
  ROperand r;
  if (op.is_const()) {
    r.is_const = true;
    r.cst = op.cst;
  } else {
    r.is_const = false;
    r.idx = intern(op.field);
  }
  return r;
}

CompiledTac::CompiledTac(const std::vector<TacStmt>& stmts) {
  stmts_.reserve(stmts.size());
  for (const TacStmt& s : stmts) {
    RStmt r;
    r.kind = s.kind;
    if (!s.dst.empty()) r.dst = intern(s.dst);
    r.a = resolve(s.a);
    r.b = resolve(s.b);
    r.c = resolve(s.c);
    r.un_op = s.un_op;
    r.op = s.op;
    r.state_var = s.state_var;
    r.state_is_array = s.state_is_array;
    r.index = resolve(s.index);
    r.intrinsic = s.intrinsic;
    r.args.reserve(s.args.size());
    for (const Operand& a : s.args) r.args.push_back(resolve(a));
    r.intrinsic_mod = s.intrinsic_mod;
    stmts_.push_back(std::move(r));
  }
}

void CompiledTac::exec_stmt(const RStmt& stmt, std::vector<Value>& env,
                            banzai::StateStore& state) const {
  switch (stmt.kind) {
    case TacStmt::Kind::kCopy:
      env[stmt.dst] = eval_operand(stmt.a, env);
      break;
    case TacStmt::Kind::kUnary:
      env[stmt.dst] = eval_unop(stmt.un_op, eval_operand(stmt.a, env));
      break;
    case TacStmt::Kind::kBinary:
      env[stmt.dst] = eval_binop(stmt.op, eval_operand(stmt.a, env),
                                 eval_operand(stmt.b, env));
      break;
    case TacStmt::Kind::kTernary:
      env[stmt.dst] = eval_operand(stmt.a, env) != 0
                          ? eval_operand(stmt.b, env)
                          : eval_operand(stmt.c, env);
      break;
    case TacStmt::Kind::kIntrinsic: {
      // Reused scratch: this runs in the synthesis inner loop, where a
      // per-statement allocation would swamp the O(1) field accesses.
      static thread_local std::vector<Value> argv;
      argv.clear();
      argv.reserve(stmt.args.size());
      for (const ROperand& a : stmt.args) argv.push_back(eval_operand(a, env));
      Value v = eval_intrinsic(stmt.intrinsic, argv);
      if (stmt.intrinsic_mod > 0) v = banzai::total_mod(v, stmt.intrinsic_mod);
      env[stmt.dst] = v;
      break;
    }
    case TacStmt::Kind::kReadState: {
      auto& var = state.var(stmt.state_var);
      env[stmt.dst] = stmt.state_is_array
                          ? var.load(eval_operand(stmt.index, env))
                          : var.load_scalar();
      break;
    }
    case TacStmt::Kind::kWriteState: {
      auto& var = state.var(stmt.state_var);
      Value v = eval_operand(stmt.a, env);
      if (stmt.state_is_array)
        var.store(eval_operand(stmt.index, env), v);
      else
        var.store_scalar(v);
      break;
    }
  }
}

}  // namespace domino
