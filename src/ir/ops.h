// Operators shared by the AST, three-address code, atom templates and the
// synthesis engine, together with their (total) evaluation semantics.
#pragma once

#include <string>

#include "banzai/value.h"

namespace domino {

using banzai::Value;

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kShl, kShr,
  kBitAnd, kBitOr, kBitXor,
  kLAnd, kLOr,
  kLt, kLe, kGt, kGe, kEq, kNe,
};

enum class UnOp { kNeg, kLNot, kBitNot };

inline const char* binop_str(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kBitAnd: return "&";
    case BinOp::kBitOr: return "|";
    case BinOp::kBitXor: return "^";
    case BinOp::kLAnd: return "&&";
    case BinOp::kLOr: return "||";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
  }
  return "?";
}

inline const char* unop_str(UnOp op) {
  switch (op) {
    case UnOp::kNeg: return "-";
    case UnOp::kLNot: return "!";
    case UnOp::kBitNot: return "~";
  }
  return "?";
}

inline bool is_relational(BinOp op) {
  switch (op) {
    case BinOp::kLt: case BinOp::kLe: case BinOp::kGt:
    case BinOp::kGe: case BinOp::kEq: case BinOp::kNe:
      return true;
    default:
      return false;
  }
}

inline Value eval_binop(BinOp op, Value a, Value b) {
  using namespace banzai;
  switch (op) {
    case BinOp::kAdd: return wrap_add(a, b);
    case BinOp::kSub: return wrap_sub(a, b);
    case BinOp::kMul: return wrap_mul(a, b);
    case BinOp::kDiv: return total_div(a, b);
    case BinOp::kMod: return total_mod(a, b);
    case BinOp::kShl: return shift_left(a, b);
    case BinOp::kShr: return shift_right(a, b);
    case BinOp::kBitAnd: return a & b;
    case BinOp::kBitOr: return a | b;
    case BinOp::kBitXor: return a ^ b;
    case BinOp::kLAnd: return (a != 0 && b != 0) ? 1 : 0;
    case BinOp::kLOr: return (a != 0 || b != 0) ? 1 : 0;
    case BinOp::kLt: return a < b ? 1 : 0;
    case BinOp::kLe: return a <= b ? 1 : 0;
    case BinOp::kGt: return a > b ? 1 : 0;
    case BinOp::kGe: return a >= b ? 1 : 0;
    case BinOp::kEq: return a == b ? 1 : 0;
    case BinOp::kNe: return a != b ? 1 : 0;
  }
  return 0;
}

inline Value eval_unop(UnOp op, Value a) {
  switch (op) {
    case UnOp::kNeg: return banzai::wrap_sub(0, a);
    case UnOp::kLNot: return a == 0 ? 1 : 0;
    case UnOp::kBitNot: return ~a;
  }
  return 0;
}

}  // namespace domino
