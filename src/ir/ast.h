// Abstract syntax tree for Domino packet transactions (§3.1).
//
// A Domino program consists of:
//   - #define constants,
//   - a `struct Packet` declaration listing packet fields,
//   - global state variable declarations (scalars or arrays),
//   - exactly one packet-transaction function taking `struct Packet pkt`.
//
// The AST uses a single tagged node type for expressions and one for
// statements.  Compiler passes clone and rewrite these trees; the node set is
// deliberately small because Domino forbids loops, gotos, pointers and heap
// allocation (Table 1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/diag.h"
#include "ir/ops.h"

namespace domino {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kIntLit,    // 42
    kField,     // pkt.f            (name = "f")
    kState,     // s or s[index]    (name = "s", index != null for arrays)
    kUnary,     // op a             (a)
    kBinary,    // a op b           (a, b)
    kTernary,   // cond ? a : b     (cond, a, b)
    kCall,      // intrinsic(args...)
  };

  Kind kind;
  SourceLoc loc;

  Value int_value = 0;        // kIntLit
  std::string name;           // kField / kState / kCall
  ExprPtr index;              // kState array subscript
  UnOp un_op = UnOp::kNeg;    // kUnary
  BinOp bin_op = BinOp::kAdd; // kBinary
  ExprPtr a, b, cond;         // operands
  std::vector<ExprPtr> args;  // kCall

  ExprPtr clone() const;
  std::string str() const;

  bool is_field(const std::string& f) const {
    return kind == Kind::kField && name == f;
  }
};

// Convenience constructors.
ExprPtr make_int(Value v, SourceLoc loc = {});
ExprPtr make_field(std::string name, SourceLoc loc = {});
ExprPtr make_state(std::string name, ExprPtr index = nullptr,
                   SourceLoc loc = {});
ExprPtr make_unary(UnOp op, ExprPtr a, SourceLoc loc = {});
ExprPtr make_binary(BinOp op, ExprPtr a, ExprPtr b, SourceLoc loc = {});
ExprPtr make_ternary(ExprPtr cond, ExprPtr a, ExprPtr b, SourceLoc loc = {});
ExprPtr make_call(std::string name, std::vector<ExprPtr> args,
                  SourceLoc loc = {});

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kAssign,  // target = value;   target is kField or kState
    kIf,      // if (cond) { then_body } [else { else_body }]
  };

  Kind kind;
  SourceLoc loc;

  ExprPtr target;  // kAssign
  ExprPtr value;   // kAssign

  ExprPtr cond;                    // kIf
  std::vector<StmtPtr> then_body;  // kIf
  std::vector<StmtPtr> else_body;  // kIf

  StmtPtr clone() const;
  std::string str(int indent = 0) const;
};

StmtPtr make_assign(ExprPtr target, ExprPtr value, SourceLoc loc = {});
StmtPtr make_if(ExprPtr cond, std::vector<StmtPtr> then_body,
                std::vector<StmtPtr> else_body, SourceLoc loc = {});

std::vector<StmtPtr> clone_body(const std::vector<StmtPtr>& body);

// Declarations -------------------------------------------------------------

struct DefineDecl {
  std::string name;
  Value value;
  SourceLoc loc;
};

struct FieldDecl {
  std::string name;
  SourceLoc loc;
};

struct StateDecl {
  std::string name;
  bool is_array = false;
  Value size = 1;   // number of cells (1 for scalars)
  Value init = 0;   // initializer, e.g. `= {0}` or `= 0`
  SourceLoc loc;
};

struct TransactionDecl {
  std::string name;          // function name, e.g. "flowlet"
  std::string packet_param;  // parameter name, normally "pkt"
  std::vector<StmtPtr> body;
  SourceLoc loc;
};

struct Program {
  std::vector<DefineDecl> defines;
  std::vector<FieldDecl> packet_fields;
  std::vector<StateDecl> state_vars;
  TransactionDecl transaction;

  const StateDecl* find_state(const std::string& name) const {
    for (const auto& s : state_vars)
      if (s.name == name) return &s;
    return nullptr;
  }

  bool has_packet_field(const std::string& name) const {
    for (const auto& f : packet_fields)
      if (f.name == name) return true;
    return false;
  }

  Program clone() const;
  std::string str() const;
};

}  // namespace domino
