#include "ir/intrinsics.h"

#include <array>
#include <stdexcept>

namespace domino {
namespace {

// hash_combine-style mixer; cheap, deterministic, well spread.
std::uint32_t mix(std::uint32_t h, std::uint32_t v) {
  h ^= v + 0x9e3779b9u + (h << 6) + (h >> 2);
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  return h;
}

std::uint32_t hash_n(std::uint32_t seed, const banzai::Value* args,
                     std::size_t n) {
  std::uint32_t h = seed;
  for (std::size_t i = 0; i < n; ++i)
    h = mix(h, static_cast<std::uint32_t>(args[i]));
  return h & 0x7fffffffu;  // non-negative so `% size` indexes are in range
}

banzai::Value hash2_raw(const banzai::Value* a, std::size_t n) {
  return static_cast<banzai::Value>(hash_n(0xdeadbeefu, a, n));
}
banzai::Value hash3_raw(const banzai::Value* a, std::size_t n) {
  return static_cast<banzai::Value>(hash_n(0xcafef00du, a, n));
}
banzai::Value hash4_raw(const banzai::Value* a, std::size_t n) {
  return static_cast<banzai::Value>(hash_n(0x8badf00du, a, n));
}
banzai::Value isqrt_raw(const banzai::Value* a, std::size_t) {
  return isqrt(a[0]);
}

const std::array<IntrinsicInfo, 5> kIntrinsics = {{
    {"hash2", 2, IntrinsicUnit::kHash},
    {"hash3", 3, IntrinsicUnit::kHash},
    {"hash4", 4, IntrinsicUnit::kHash},
    {"isqrt", 1, IntrinsicUnit::kMath},
    // CoDel's control law INTERVAL / sqrt(count+1) as one table lookup; this
    // is the function a LUT-extended atom would hold in its ROM (§5.3).
    {"sqrt_interval", 1, IntrinsicUnit::kMath},
}};

std::int32_t sqrt_interval_impl(std::int32_t c) {
  constexpr std::int64_t kInterval = 4096;
  if (c < 0) c = 0;
  if (c > (1 << 20)) c = 1 << 20;  // ROM domain clamp
  const std::int64_t scaled = (static_cast<std::int64_t>(c) + 1) << 16;
  // 64-bit digit-by-digit square root: root ~= 256 * sqrt(c + 1).
  std::int64_t root = 0, x = scaled, bit = std::int64_t(1) << 36;
  while (bit > x) bit >>= 2;
  while (bit != 0) {
    if (x >= root + bit) {
      x -= root + bit;
      root = (root >> 1) + bit;
    } else {
      root >>= 1;
    }
    bit >>= 2;
  }
  if (root == 0) root = 1;
  return static_cast<std::int32_t>(kInterval * 256 / root);
}

banzai::Value sqrt_interval_raw(const banzai::Value* a, std::size_t) {
  return sqrt_interval_impl(a[0]);
}

}  // namespace

std::optional<IntrinsicInfo> intrinsic_info(const std::string& name) {
  for (const auto& i : kIntrinsics)
    if (i.name == name) return i;
  return std::nullopt;
}

std::int32_t isqrt(std::int32_t v) {
  if (v <= 0) return 0;
  auto x = static_cast<std::uint32_t>(v);
  std::uint32_t r = 0;
  // Digit-by-digit method: 16 iterations for 32-bit input.
  std::uint32_t bit = 1u << 30;
  while (bit > x) bit >>= 2;
  while (bit != 0) {
    if (x >= r + bit) {
      x -= r + bit;
      r = (r >> 1) + bit;
    } else {
      r >>= 1;
    }
    bit >>= 2;
  }
  return static_cast<std::int32_t>(r);
}

RawIntrinsicFn intrinsic_raw_fn(const std::string& name) {
  if (name == "hash2") return &hash2_raw;
  if (name == "hash3") return &hash3_raw;
  if (name == "hash4") return &hash4_raw;
  if (name == "isqrt") return &isqrt_raw;
  if (name == "sqrt_interval") return &sqrt_interval_raw;
  return nullptr;
}

banzai::Value eval_intrinsic(const std::string& name,
                             const std::vector<banzai::Value>& args) {
  const RawIntrinsicFn fn = intrinsic_raw_fn(name);
  if (fn == nullptr) return 0;
  // Sema enforces arity at compile time; this guards direct callers so a
  // raw body indexing args[0] can never read an empty buffer.  (The info
  // lookup stays inside the error branch — this is the closure engine's
  // per-packet path.)
  if (args.empty()) {
    const auto info = intrinsic_info(name);
    if (info.has_value() && info->arity > 0)
      throw std::out_of_range("intrinsic '" + name + "': missing argument");
  }
  return fn(args.data(), args.size());
}

}  // namespace domino
