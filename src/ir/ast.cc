#include "ir/ast.h"

#include <sstream>

namespace domino {

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  e->int_value = int_value;
  e->name = name;
  e->un_op = un_op;
  e->bin_op = bin_op;
  if (index) e->index = index->clone();
  if (a) e->a = a->clone();
  if (b) e->b = b->clone();
  if (cond) e->cond = cond->clone();
  e->args.reserve(args.size());
  for (const auto& arg : args) e->args.push_back(arg->clone());
  return e;
}

std::string Expr::str() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kIntLit:
      os << int_value;
      break;
    case Kind::kField:
      os << "pkt." << name;
      break;
    case Kind::kState:
      os << name;
      if (index) os << "[" << index->str() << "]";
      break;
    case Kind::kUnary:
      os << unop_str(un_op) << "(" << a->str() << ")";
      break;
    case Kind::kBinary:
      os << "(" << a->str() << " " << binop_str(bin_op) << " " << b->str()
         << ")";
      break;
    case Kind::kTernary:
      os << "(" << cond->str() << " ? " << a->str() << " : " << b->str()
         << ")";
      break;
    case Kind::kCall: {
      os << name << "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) os << ", ";
        os << args[i]->str();
      }
      os << ")";
      break;
    }
  }
  return os.str();
}

ExprPtr make_int(Value v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kIntLit;
  e->int_value = v;
  e->loc = loc;
  return e;
}

ExprPtr make_field(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kField;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr make_state(std::string name, ExprPtr index, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kState;
  e->name = std::move(name);
  e->index = std::move(index);
  e->loc = loc;
  return e;
}

ExprPtr make_unary(UnOp op, ExprPtr a, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kUnary;
  e->un_op = op;
  e->a = std::move(a);
  e->loc = loc;
  return e;
}

ExprPtr make_binary(BinOp op, ExprPtr a, ExprPtr b, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->bin_op = op;
  e->a = std::move(a);
  e->b = std::move(b);
  e->loc = loc;
  return e;
}

ExprPtr make_ternary(ExprPtr cond, ExprPtr a, ExprPtr b, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kTernary;
  e->cond = std::move(cond);
  e->a = std::move(a);
  e->b = std::move(b);
  e->loc = loc;
  return e;
}

ExprPtr make_call(std::string name, std::vector<ExprPtr> args, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kCall;
  e->name = std::move(name);
  e->args = std::move(args);
  e->loc = loc;
  return e;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  if (target) s->target = target->clone();
  if (value) s->value = value->clone();
  if (cond) s->cond = cond->clone();
  s->then_body = clone_body(then_body);
  s->else_body = clone_body(else_body);
  return s;
}

std::string Stmt::str(int indent) const {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::ostringstream os;
  switch (kind) {
    case Kind::kAssign:
      os << pad << target->str() << " = " << value->str() << ";\n";
      break;
    case Kind::kIf: {
      os << pad << "if (" << cond->str() << ") {\n";
      for (const auto& s : then_body) os << s->str(indent + 1);
      os << pad << "}";
      if (!else_body.empty()) {
        os << " else {\n";
        for (const auto& s : else_body) os << s->str(indent + 1);
        os << pad << "}";
      }
      os << "\n";
      break;
    }
  }
  return os.str();
}

StmtPtr make_assign(ExprPtr target, ExprPtr value, SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kAssign;
  s->target = std::move(target);
  s->value = std::move(value);
  s->loc = loc;
  return s;
}

StmtPtr make_if(ExprPtr cond, std::vector<StmtPtr> then_body,
                std::vector<StmtPtr> else_body, SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kIf;
  s->cond = std::move(cond);
  s->then_body = std::move(then_body);
  s->else_body = std::move(else_body);
  s->loc = loc;
  return s;
}

std::vector<StmtPtr> clone_body(const std::vector<StmtPtr>& body) {
  std::vector<StmtPtr> out;
  out.reserve(body.size());
  for (const auto& s : body) out.push_back(s->clone());
  return out;
}

Program Program::clone() const {
  Program p;
  p.defines = defines;
  p.packet_fields = packet_fields;
  p.state_vars = state_vars;
  p.transaction.name = transaction.name;
  p.transaction.packet_param = transaction.packet_param;
  p.transaction.loc = transaction.loc;
  p.transaction.body = clone_body(transaction.body);
  return p;
}

std::string Program::str() const {
  std::ostringstream os;
  for (const auto& d : defines)
    os << "#define " << d.name << " " << d.value << "\n";
  os << "\nstruct Packet {\n";
  for (const auto& f : packet_fields) os << "  int " << f.name << ";\n";
  os << "};\n\n";
  for (const auto& s : state_vars) {
    os << "int " << s.name;
    if (s.is_array) os << "[" << s.size << "]";
    os << " = ";
    if (s.is_array)
      os << "{" << s.init << "}";
    else
      os << s.init;
    os << ";\n";
  }
  os << "\nvoid " << transaction.name << "(struct Packet "
     << transaction.packet_param << ") {\n";
  for (const auto& s : transaction.body) os << s->str(1);
  os << "}\n";
  return os.str();
}

}  // namespace domino
