// Source locations and compiler diagnostics.
//
// The Domino compiler is all-or-nothing (§4): any failure — lexical, syntactic,
// semantic, resource overflow or a codelet that no atom can implement — raises
// a CompileError carrying the failure phase, so callers can distinguish
// "your program is ill-formed" from "this target cannot run it at line rate".
#pragma once

#include <stdexcept>
#include <string>

namespace domino {

struct SourceLoc {
  int line = 0;
  int column = 0;

  std::string str() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

enum class CompilePhase {
  kLex,
  kParse,
  kSema,
  kNormalize,
  kPipeline,
  kResource,   // pipeline width/depth exceeded on the target
  kMapping,    // a codelet fits no atom template of the target
};

inline const char* phase_name(CompilePhase p) {
  switch (p) {
    case CompilePhase::kLex: return "lex";
    case CompilePhase::kParse: return "parse";
    case CompilePhase::kSema: return "sema";
    case CompilePhase::kNormalize: return "normalize";
    case CompilePhase::kPipeline: return "pipeline";
    case CompilePhase::kResource: return "resource";
    case CompilePhase::kMapping: return "mapping";
  }
  return "?";
}

class CompileError : public std::runtime_error {
 public:
  CompileError(CompilePhase phase, SourceLoc loc, const std::string& message)
      : std::runtime_error(std::string(phase_name(phase)) + " error at " +
                           loc.str() + ": " + message),
        phase_(phase),
        loc_(loc),
        message_(message) {}

  CompileError(CompilePhase phase, const std::string& message)
      : std::runtime_error(std::string(phase_name(phase)) + " error: " +
                           message),
        phase_(phase),
        message_(message) {}

  CompilePhase phase() const { return phase_; }
  SourceLoc loc() const { return loc_; }
  const std::string& message() const { return message_; }

 private:
  CompilePhase phase_;
  SourceLoc loc_{};
  std::string message_;
};

}  // namespace domino
