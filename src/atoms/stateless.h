// The stateless atom (§5.2): an ALU supporting simple arithmetic (add,
// subtract, shifts), logical (and/or/xor), relational and conditional
// operations on packet fields and constants.  Stateless operations can be
// spread across stages without violating atomicity (§2.3), so one stateless
// codelet is always a single three-address-code statement and mapping is a
// structural check rather than a synthesis problem.
//
// Deliberately NOT supported (faithful to the paper): multiply, divide,
// modulo and square root.  `hashK(...) % CONST` is a hash-unit intrinsic, not
// an ALU modulo.  This is exactly why CoDel fails to map (§5.3).
#pragma once

#include <optional>
#include <string>

#include "ir/tac.h"

namespace atoms {

// True if the single statement fits the stateless ALU.
bool stateless_alu_supports(const domino::TacStmt& stmt);

// If the statement is unsupported, a human-readable reason; nullopt if it is
// supported.  (Intrinsics are judged by unit availability elsewhere.)
std::optional<std::string> stateless_alu_reject_reason(
    const domino::TacStmt& stmt);

}  // namespace atoms
