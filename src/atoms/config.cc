#include "atoms/config.h"

#include <sstream>

namespace atoms {

const char* rel_str(RelKind r) {
  switch (r) {
    case RelKind::kAlways: return "true";
    case RelKind::kLt: return "<";
    case RelKind::kLe: return "<=";
    case RelKind::kGt: return ">";
    case RelKind::kGe: return ">=";
    case RelKind::kEq: return "==";
    case RelKind::kNe: return "!=";
  }
  return "?";
}

std::string OperandSel::str(util::Span<const std::string> field_names) const {
  switch (kind) {
    case Kind::kState: return "x" + std::to_string(state_idx);
    case Kind::kField: {
      auto pos = static_cast<std::size_t>(field_pos);
      if (pos < field_names.size()) return "pkt." + field_names[pos];
      return "pkt.?" + std::to_string(field_pos);
    }
    case Kind::kConst: return std::to_string(cst);
  }
  return "?";
}

std::string PredConfig::str(util::Span<const std::string> field_names) const {
  if (rel == RelKind::kAlways) return "true";
  return a.str(field_names) + " " + rel_str(rel) + " " + b.str(field_names);
}

std::string ArmConfig::str(util::Span<const std::string> field_names) const {
  switch (mode) {
    case ArmMode::kKeep: return "x";
    case ArmMode::kSet: return src1.str(field_names);
    case ArmMode::kAdd: return "x + " + src1.str(field_names);
    case ArmMode::kSubt: return "x - " + src1.str(field_names);
    case ArmMode::kSetAdd:
      return src1.str(field_names) + " + " + src2.str(field_names);
    case ArmMode::kSetSub:
      return src1.str(field_names) + " - " + src2.str(field_names);
    case ArmMode::kAddSub:
      return "x + " + src1.str(field_names) + " - " + src2.str(field_names);
    case ArmMode::kLutAdd:
      return "lut(" + src1.str(field_names) + ") + " + src2.str(field_names);
  }
  return "?";
}

std::string StatefulConfig::str(
    util::Span<const std::string> field_names) const {
  const auto& t = template_info(kind);
  std::ostringstream os;
  os << t.name << "{";
  auto leaf_str = [&](std::size_t leaf) {
    std::string s;
    for (std::size_t k = 0; k < leaves[leaf].size(); ++k) {
      if (k) s += ", ";
      s += "x" + std::to_string(k) + "' = " +
           leaves[leaf][k].str(field_names);
    }
    return s;
  };
  if (t.pred_levels == 0) {
    os << leaf_str(0);
  } else if (t.pred_levels == 1) {
    os << "if (" << preds[0].str(field_names) << ") {" << leaf_str(0)
       << "} else {" << leaf_str(1) << "}";
  } else {
    os << "if (" << preds[0].str(field_names) << ") { if ("
       << preds[1].str(field_names) << ") {" << leaf_str(0) << "} else {"
       << leaf_str(1) << "} } else { if (" << preds[2].str(field_names)
       << ") {" << leaf_str(2) << "} else {" << leaf_str(3) << "} }";
  }
  os << "}";
  return os.str();
}

}  // namespace atoms
