// Gate-level cost model for atoms: the substitute for the paper's Synopsys
// Design Compiler runs on a 32 nm standard-cell library (§5.2, Tables 3/5/6).
//
// Each atom template lowers to an inventory of hardware primitives (muxes,
// adders, relational units, state flops, ...) plus a critical-path chain.
// Per-primitive area and delay constants are calibrated so that the model
// reproduces the paper's published numbers; what the model must preserve is
// the *shape* the evaluation relies on:
//   - area grows monotonically along the containment hierarchy (Table 3),
//   - delay grows with circuit depth (Table 6),
//   - max line rate = 1 / delay falls as programmability rises (Table 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atoms/stateful.h"

namespace atoms {

enum class Primitive {
  kStateReg,   // 32-bit state flop bank + write-back
  kMux2,
  kMux3,
  kMux4,
  kAdder,
  kSubtractor,
  kCsa,        // 3:2 carry-save compressor stage
  kRelop,      // 32-bit relational unit
  kShifter,    // barrel shifter (stateless ALU)
  kLogicUnit,  // and/or/xor unit (stateless ALU)
  kPredGlue,   // predicate combine / enable logic
  kXbarTap,    // crossbar tap for cross-state-variable routing (Pairs)
  kLutRom,     // look-up-table ROM in the update path (extension atom)
};

const char* primitive_name(Primitive p);

// Area in um^2 (32 nm standard cells, calibrated).
double primitive_area(Primitive p);
// Delay contribution in ps when the primitive sits on the critical path.
double primitive_delay(Primitive p);

struct Circuit {
  std::string name;
  // Inventory: (primitive, count) pairs.
  std::vector<std::pair<Primitive, int>> inventory;
  // Critical path as a chain of primitives; a final register-setup allowance
  // is added by min_delay_ps().
  std::vector<Primitive> critical_path;

  double area_um2() const;
  double min_delay_ps() const;
  int depth() const { return static_cast<int>(critical_path.size()); }

  // Maximum line rate in billion packets per second (Table 5): the inverse of
  // the critical-path delay.
  double max_line_rate_gpps() const { return 1000.0 / min_delay_ps(); }

  std::string str() const;
};

// Circuit for one stateful atom template.
Circuit stateful_circuit(StatefulKind kind);
// Circuit for the stateless ALU atom.
Circuit stateless_circuit();

// Paper-published reference values, for calibration tests and benches.
struct PaperAtomRow {
  std::string name;
  double area_um2;      // Table 3
  double min_delay_ps;  // Table 5 (stateful atoms only; 0 = not reported)
};
const std::vector<PaperAtomRow>& paper_atom_table();

}  // namespace atoms
