#include "atoms/circuit.h"

#include <sstream>
#include <stdexcept>

namespace atoms {
namespace {

// Per-primitive constants, calibrated against the paper's 32 nm synthesis
// results (Table 3 areas, Table 5 delays).  The calibration anchors:
//   Write = reg + two 2:1 muxes       -> 250 um^2, 176 ps   (exact)
//   RAW   = Write + adder + mode mux  -> ~431 um^2, 316 ps
// Everything else follows from the template structure; the model lands within
// ~2% of every published number (asserted in tests/circuit_model_test.cc).
struct PrimCost {
  double area;   // um^2
  double delay;  // ps on the critical path
};

PrimCost cost_of(Primitive p) {
  switch (p) {
    case Primitive::kStateReg: return {150.0, 88.0};  // delay = setup + clk->q
    case Primitive::kMux2: return {50.0, 44.0};
    case Primitive::kMux3: return {75.0, 58.0};
    case Primitive::kMux4: return {100.0, 72.0};
    case Primitive::kAdder: return {110.0, 126.0};
    case Primitive::kSubtractor: return {115.0, 130.0};
    case Primitive::kCsa: return {120.0, 17.0};
    case Primitive::kRelop: return {95.0, 120.0};
    case Primitive::kShifter: return {210.0, 140.0};
    case Primitive::kLogicUnit: return {160.0, 40.0};
    case Primitive::kPredGlue: return {60.0, 25.0};
    case Primitive::kXbarTap: return {30.0, 29.0};
    case Primitive::kLutRom: return {1250.0, 95.0};
  }
  throw std::logic_error("unknown primitive");
}

}  // namespace

const char* primitive_name(Primitive p) {
  switch (p) {
    case Primitive::kStateReg: return "state-reg";
    case Primitive::kMux2: return "mux2";
    case Primitive::kMux3: return "mux3";
    case Primitive::kMux4: return "mux4";
    case Primitive::kAdder: return "adder";
    case Primitive::kSubtractor: return "subtractor";
    case Primitive::kCsa: return "csa3:2";
    case Primitive::kRelop: return "relop";
    case Primitive::kShifter: return "shifter";
    case Primitive::kLogicUnit: return "logic-unit";
    case Primitive::kPredGlue: return "pred-glue";
    case Primitive::kXbarTap: return "xbar-tap";
    case Primitive::kLutRom: return "lut-rom";
  }
  return "?";
}

double primitive_area(Primitive p) { return cost_of(p).area; }
double primitive_delay(Primitive p) { return cost_of(p).delay; }

double Circuit::area_um2() const {
  double a = 0;
  for (const auto& [p, n] : inventory) a += cost_of(p).area * n;
  return a;
}

double Circuit::min_delay_ps() const {
  double d = 0;
  for (Primitive p : critical_path) d += cost_of(p).delay;
  return d;
}

std::string Circuit::str() const {
  std::ostringstream os;
  os << name << ": area=" << area_um2() << "um^2 delay=" << min_delay_ps()
     << "ps depth=" << depth() << " [";
  for (std::size_t i = 0; i < critical_path.size(); ++i) {
    if (i) os << " -> ";
    os << primitive_name(critical_path[i]);
  }
  os << "]";
  return os.str();
}

Circuit stateful_circuit(StatefulKind kind) {
  using P = Primitive;
  Circuit c;
  c.name = template_info(kind).name;
  switch (kind) {
    case StatefulKind::kWrite:
      // Operand mux (pkt/const) + write-enable mux in front of the state reg.
      c.inventory = {{P::kStateReg, 1}, {P::kMux2, 2}};
      c.critical_path = {P::kMux2, P::kMux2, P::kStateReg};
      break;
    case StatefulKind::kRAW:
      // Adds an adder and a keep/set/add mode mux (Table 6 middle row).
      c.inventory = {{P::kStateReg, 1}, {P::kMux2, 2}, {P::kAdder, 1},
                     {P::kMux3, 1}};
      c.critical_path = {P::kMux2, P::kAdder, P::kMux3, P::kStateReg};
      break;
    case StatefulKind::kPRAW:
      // RAW plus a predicate: relop over two 3:1 operand muxes (pkt/const/x),
      // enable glue, and a final keep mux (Table 6 bottom row).
      c.inventory = {{P::kStateReg, 1}, {P::kMux2, 3},  {P::kAdder, 1},
                     {P::kMux3, 3},     {P::kRelop, 1}, {P::kPredGlue, 1}};
      c.critical_path = {P::kMux3, P::kRelop,    P::kPredGlue,
                         P::kMux3, P::kMux2, P::kStateReg};
      break;
    case StatefulKind::kIfElseRAW:
      // Second RAW arm sharing the operand muxes; the critical path is the
      // same mux->relop->mux chain as PRAW (the paper's 392 vs 393 ps
      // non-monotonicity is a synthesis-heuristic artifact, footnote 9).
      c.inventory = {{P::kStateReg, 1}, {P::kMux2, 3},  {P::kAdder, 2},
                     {P::kMux3, 4},     {P::kRelop, 1}, {P::kPredGlue, 1}};
      c.critical_path = {P::kMux3, P::kRelop,    P::kPredGlue,
                         P::kMux3, P::kMux2, P::kStateReg};
      break;
    case StatefulKind::kSub:
      // Arms become base + addend - subtrahend: a subtractor and a 3:2
      // carry-save stage per arm, plus a second-source operand mux.
      c.inventory = {{P::kStateReg, 1},   {P::kMux2, 5},  {P::kAdder, 2},
                     {P::kMux3, 4},       {P::kRelop, 1}, {P::kPredGlue, 1},
                     {P::kSubtractor, 2}, {P::kCsa, 2}};
      c.critical_path = {P::kMux3, P::kRelop, P::kPredGlue,
                         P::kCsa,  P::kMux3,  P::kMux2,
                         P::kStateReg};
      break;
    case StatefulKind::kNested:
      // Four Sub-style arms, three predicates with wider (4:1) operand muxes
      // and a two-level leaf-select tree.  The second predicate level sits on
      // the critical path.
      c.inventory = {{P::kStateReg, 1},   {P::kMux2, 12}, {P::kAdder, 4},
                     {P::kMux3, 4},       {P::kMux4, 7},  {P::kRelop, 3},
                     {P::kPredGlue, 3},   {P::kSubtractor, 4},
                     {P::kCsa, 4}};
      c.critical_path = {P::kRelop, P::kPredGlue, P::kRelop,
                         P::kPredGlue, P::kPredGlue, P::kCsa,
                         P::kMux4,  P::kMux2,     P::kMux2,
                         P::kStateReg};
      break;
    case StatefulKind::kPairs:
      // Everything doubled for the second state variable, predicates can read
      // both states (crossbar taps route x<->y into the relops and arms).
      c.inventory = {{P::kStateReg, 2},   {P::kMux2, 16}, {P::kAdder, 8},
                     {P::kMux3, 8},       {P::kMux4, 7},  {P::kRelop, 3},
                     {P::kPredGlue, 3},   {P::kSubtractor, 8},
                     {P::kCsa, 8},        {P::kXbarTap, 12}};
      c.critical_path = {P::kXbarTap, P::kRelop, P::kPredGlue,
                         P::kRelop,   P::kPredGlue, P::kPredGlue,
                         P::kCsa,     P::kMux4,  P::kMux2,
                         P::kMux2,    P::kStateReg};
      break;
    case StatefulKind::kLutPairs:
      // Pairs plus a LUT ROM feeding the update adders (§5.3 future work).
      c = stateful_circuit(StatefulKind::kPairs);
      c.name = "LutPairs";
      c.inventory.emplace_back(P::kLutRom, 2);
      c.critical_path.insert(c.critical_path.begin(), P::kLutRom);
      break;
  }
  return c;
}

Circuit stateless_circuit() {
  using P = Primitive;
  Circuit c;
  c.name = "Stateless";
  // Three 4:1 operand muxes feeding an adder, subtractor, barrel shifter,
  // logic unit and relational unit in parallel, a conditional-select mux and
  // an output mux, plus crossbar taps to the action field buses.
  c.inventory = {{P::kMux4, 3},       {P::kAdder, 1}, {P::kSubtractor, 1},
                 {P::kShifter, 1},    {P::kLogicUnit, 1}, {P::kRelop, 1},
                 {P::kMux3, 1},       {P::kMux4, 1},  {P::kPredGlue, 1},
                 {P::kMux2, 2},       {P::kXbarTap, 2}};
  c.critical_path = {P::kMux4, P::kShifter, P::kMux3, P::kMux4, P::kStateReg};
  return c;
}

const std::vector<PaperAtomRow>& paper_atom_table() {
  static const std::vector<PaperAtomRow> kTable = {
      {"Stateless", 1384.0, 0.0},   {"Write", 250.0, 176.0},
      {"RAW", 431.0, 316.0},        {"PRAW", 791.0, 393.0},
      {"IfElseRAW", 985.0, 392.0},  {"Sub", 1522.0, 409.0},
      {"Nested", 3597.0, 580.0},    {"Pairs", 5997.0, 609.0},
  };
  return kTable;
}

}  // namespace atoms
