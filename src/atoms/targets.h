// The concrete compiler targets (§5.2): one Banzai machine per stateful atom
// in the containment hierarchy, each also containing the single stateless
// atom, hash units, and the paper's resource limits — 32 stages, ~300
// stateless and ~10 stateful atom slots per stage.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "atoms/circuit.h"
#include "atoms/stateful.h"
#include "banzai/machine.h"
#include "ir/intrinsics.h"

namespace atoms {

struct BanzaiTarget {
  std::string name;           // e.g. "banzai-praw"
  StatefulKind stateful_atom;
  bool has_math_unit = false; // LUT extension target only (§5.3 future work)

  std::size_t pipeline_depth = 32;
  std::size_t stateless_per_stage = 300;
  std::size_t stateful_per_stage = 10;

  banzai::MachineSpec machine_spec() const {
    banzai::MachineSpec m;
    m.name = name;
    m.stateful_template = template_info(stateful_atom).name;
    m.pipeline_depth = pipeline_depth;
    m.stateless_per_stage = stateless_per_stage;
    m.stateful_per_stage = stateful_per_stage;
    return m;
  }

  bool provides_unit(domino::IntrinsicUnit unit) const {
    switch (unit) {
      case domino::IntrinsicUnit::kHash: return true;
      case domino::IntrinsicUnit::kMath: return has_math_unit;
    }
    return false;
  }
};

// The seven paper targets, ordered by hierarchy rank (Write .. Pairs).
const std::vector<BanzaiTarget>& paper_targets();

// The target named `banzai-<atom>`, if it exists.
std::optional<BanzaiTarget> find_target(const std::string& name);

// The look-up-table extension target: Pairs atoms plus a math unit that
// approximates sqrt — the paper's proposed direction for supporting CoDel.
BanzaiTarget lut_extended_target();

// Chip-area budget analysis (§5.2 "Resource limits"): derives the atom
// counts per stage and total area overhead from a chip area and the atom
// circuit models, reproducing the 7% + 1% + 4% ~= 12% overhead argument.
struct ResourceBudget {
  double chip_area_mm2;             // 200 mm^2, smallest in Gibb et al.
  double stateless_overhead_frac;   // 0.07 (RMT action-unit overhead)
  std::size_t num_stages;           // 32
  std::size_t stateless_total;      // atoms affordable within the overhead
  std::size_t stateless_per_stage;
  std::size_t stateful_per_stage;   // limited by memory banking, ~10
  double stateful_overhead_frac;
  double crossbar_area_mm2;         // scaled from RMT's 6 mm^2 / 224 units
  double crossbar_overhead_frac;
  double total_overhead_frac;
};

ResourceBudget compute_resource_budget(StatefulKind stateful_atom,
                                       double chip_area_mm2 = 200.0);

}  // namespace atoms
