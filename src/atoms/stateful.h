// The containment hierarchy of stateful atom templates (§5.2, Table 3).
//
// Each template is a parameterized program ("atom template", Figure 2b): a
// decision tree of predicates over {state, packet operands, constants} whose
// leaves update the state variable(s).  The holes (configuration parameters)
// are: the relational operator and operands of each predicate, and the mode
// and operands of each update arm.  Filling the holes yields a concrete atom.
//
// The hierarchy (each level can express everything below it):
//
//   Write       x' = x | src                                 (no predicate)
//   RAW         x' = x | src | x + src                       (no predicate)
//   PRAW        if (pred) RAW-arm else x' = x
//   IfElseRAW   if (pred) RAW-arm else RAW-arm
//   Sub         if (pred) Sub-arm else Sub-arm               (arms may subtract)
//   Nested      if (p1) { if (p2) arm : arm } else { if (p3) arm : arm }
//   Pairs       Nested over two state variables; predicates see both;
//               every leaf updates both.
//
// A Sub-arm is `x' = base + addend - subtrahend` (a carry-save chain in
// hardware), which is what lets e.g. HULL's `counter + pkt.size - DRAIN`
// map to a single atom.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace atoms {

enum class StatefulKind {
  kWrite,
  kRAW,
  kPRAW,
  kIfElseRAW,
  kSub,
  kNested,
  kPairs,
  // Extension (§5.3 future work): Pairs plus a look-up table in the update
  // path, approximating mathematical functions such as CoDel's
  // interval/sqrt(count).  Not part of the paper's seven targets.
  kLutPairs,
};

// Update-arm modes.  Modes involving subtraction or two sources are only
// available from the Sub template upward; kLutAdd only exists in the
// LUT-extended template.
enum class ArmMode {
  kKeep,    // x' = x
  kSet,     // x' = src1
  kAdd,     // x' = x + src1
  kSubt,    // x' = x - src1
  kSetAdd,  // x' = src1 + src2
  kSetSub,  // x' = src1 - src2
  kAddSub,  // x' = x + src1 - src2
  kLutAdd,  // x' = lut(src1) + src2
};

struct StatefulTemplateInfo {
  StatefulKind kind;
  std::string name;
  int num_states;        // state variables the atom owns (1, or 2 for Pairs)
  int pred_levels;       // 0 (Write/RAW), 1 (PRAW..Sub), 2 (Nested/Pairs)
  bool false_leaf_keep;  // PRAW: the predicate-false leaf must leave x alone
  std::vector<ArmMode> allowed_modes;
  int hierarchy_rank;    // 0 = Write ... 6 = Pairs
};

// The seven paper templates, ordered by hierarchy_rank.
const std::vector<StatefulTemplateInfo>& stateful_hierarchy();
// The paper templates plus the LUT extension.
const std::vector<StatefulTemplateInfo>& all_templates();

const StatefulTemplateInfo& template_info(StatefulKind kind);
const char* stateful_kind_name(StatefulKind kind);

// The canned look-up table of the extension atom: an approximation of
// CoDel's control law gap(c) = INTERVAL / sqrt(c + 1), in the same time
// units as packet arrival timestamps.  Total on every 32-bit input.
std::int32_t lut_eval(std::int32_t c);

// Number of decision-tree leaves for a template (1, 2 or 4).
inline int num_leaves(const StatefulTemplateInfo& t) {
  return 1 << t.pred_levels;
}

// Number of predicates (0, 1 or 3: p1 plus p2/p3 for two levels).
inline int num_preds(const StatefulTemplateInfo& t) {
  return t.pred_levels == 0 ? 0 : (t.pred_levels == 1 ? 1 : 3);
}

}  // namespace atoms
