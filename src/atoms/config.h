// Concrete configurations (hole assignments) for stateful atom templates, and
// their evaluation semantics.
//
// A configuration is what the synthesis engine searches for (§4.3): "the
// mapping problem is equivalent to searching for the value of the parameters
// to configure the atom such that it implements the provided specification."
// The same configuration object is used three ways:
//   1. during synthesis, to test a candidate against the codelet spec,
//   2. during final verification, on a much larger input sample,
//   3. at "run time", wrapped into a banzai::ConfiguredAtom closure.
#pragma once

#include <array>
#include <cstdint>
#include "util/span.h"
#include <string>
#include <vector>

#include "atoms/stateful.h"
#include "banzai/value.h"

namespace atoms {

using banzai::Value;

// Relational operator of a predicate; kAlways ignores its operands.
enum class RelKind { kAlways, kLt, kLe, kGt, kGe, kEq, kNe };

inline bool eval_rel(RelKind r, Value a, Value b) {
  switch (r) {
    case RelKind::kAlways: return true;
    case RelKind::kLt: return a < b;
    case RelKind::kLe: return a <= b;
    case RelKind::kGt: return a > b;
    case RelKind::kGe: return a >= b;
    case RelKind::kEq: return a == b;
    case RelKind::kNe: return a != b;
  }
  return false;
}

const char* rel_str(RelKind r);

// An operand selector: one of the atom's state inputs, one of the codelet's
// input packet fields (by position in the codelet's input list), or an
// immediate constant.
struct OperandSel {
  enum class Kind { kState, kField, kConst };
  Kind kind = Kind::kConst;
  int state_idx = 0;  // kState
  int field_pos = 0;  // kField: position in the codelet input-field list
  Value cst = 0;      // kConst

  static OperandSel state(int idx) {
    OperandSel o;
    o.kind = Kind::kState;
    o.state_idx = idx;
    return o;
  }
  static OperandSel field(int pos) {
    OperandSel o;
    o.kind = Kind::kField;
    o.field_pos = pos;
    return o;
  }
  static OperandSel constant(Value v) {
    OperandSel o;
    o.kind = Kind::kConst;
    o.cst = v;
    return o;
  }

  Value eval(util::Span<const Value> states, util::Span<const Value> fields) const {
    switch (kind) {
      case Kind::kState: return states[static_cast<std::size_t>(state_idx)];
      case Kind::kField: return fields[static_cast<std::size_t>(field_pos)];
      case Kind::kConst: return cst;
    }
    return 0;
  }

  std::string str(util::Span<const std::string> field_names) const;
};

struct PredConfig {
  RelKind rel = RelKind::kAlways;
  OperandSel a, b;

  bool eval(util::Span<const Value> states, util::Span<const Value> fields) const {
    return eval_rel(rel, a.eval(states, fields), b.eval(states, fields));
  }

  std::string str(util::Span<const std::string> field_names) const;
};

// One update arm: next value for one state variable.
struct ArmConfig {
  ArmMode mode = ArmMode::kKeep;
  OperandSel src1, src2;

  Value eval(Value x, util::Span<const Value> states,
             util::Span<const Value> fields) const {
    using namespace banzai;
    const Value s1 = src1.eval(states, fields);
    const Value s2 = src2.eval(states, fields);
    switch (mode) {
      case ArmMode::kKeep: return x;
      case ArmMode::kSet: return s1;
      case ArmMode::kAdd: return wrap_add(x, s1);
      case ArmMode::kSubt: return wrap_sub(x, s1);
      case ArmMode::kSetAdd: return wrap_add(s1, s2);
      case ArmMode::kSetSub: return wrap_sub(s1, s2);
      case ArmMode::kAddSub: return wrap_sub(wrap_add(x, s1), s2);
      case ArmMode::kLutAdd: return wrap_add(lut_eval(s1), s2);
    }
    return x;
  }

  std::string str(util::Span<const std::string> field_names) const;
};

// A full hole assignment for a stateful template.
struct StatefulConfig {
  StatefulKind kind = StatefulKind::kWrite;
  // Predicates: empty (Write/RAW), {p1} (PRAW..Sub) or {p1, p2, p3}
  // (Nested/Pairs; p2 guards the p1-true side, p3 the p1-false side).
  std::vector<PredConfig> preds;
  // leaves[leaf][state]: one arm per owned state variable per leaf.
  // Leaf order: one level: {true, false}; two levels:
  // {p1&p2, p1&!p2, !p1&p3, !p1&!p3}.
  std::vector<std::vector<ArmConfig>> leaves;

  // Returns the active leaf index for the given inputs.
  int select_leaf(util::Span<const Value> states,
                  util::Span<const Value> fields) const {
    const auto& t = template_info(kind);
    if (t.pred_levels == 0) return 0;
    const bool p1 = preds[0].eval(states, fields);
    if (t.pred_levels == 1) return p1 ? 0 : 1;
    if (p1) return preds[1].eval(states, fields) ? 0 : 1;
    return preds[2].eval(states, fields) ? 2 : 3;
  }

  // Evaluates the configured atom: given old state values and input fields,
  // returns the new state values.
  void eval(util::Span<const Value> states_in, util::Span<const Value> fields,
            util::Span<Value> states_out) const {
    const int leaf = select_leaf(states_in, fields);
    const auto& arms = leaves[static_cast<std::size_t>(leaf)];
    for (std::size_t k = 0; k < arms.size(); ++k)
      states_out[k] = arms[k].eval(states_in[k], states_in, fields);
  }

  std::string str(util::Span<const std::string> field_names) const;
};

// How each live-out packet field of a codelet is produced by the atom: the
// pre-update ("old") or post-update ("new") value of one owned state slot.
struct LiveOutBinding {
  std::string field;
  int state_idx = 0;
  bool use_new = false;  // false: old value (read flank), true: updated value
};

}  // namespace atoms
