#include "atoms/stateful.h"

#include "banzai/value.h"
#include "ir/intrinsics.h"

#include <stdexcept>

namespace atoms {
namespace {

std::vector<StatefulTemplateInfo> build_templates() {
  using M = ArmMode;
  const std::vector<M> write_modes = {M::kKeep, M::kSet};
  const std::vector<M> raw_modes = {M::kKeep, M::kSet, M::kAdd};
  const std::vector<M> sub_modes = {M::kKeep, M::kSet,    M::kAdd,   M::kSubt,
                                    M::kSetAdd, M::kSetSub, M::kAddSub};
  std::vector<M> lut_modes = sub_modes;
  lut_modes.push_back(M::kLutAdd);
  return {
      {StatefulKind::kWrite, "Write", 1, 0, false, write_modes, 0},
      {StatefulKind::kRAW, "RAW", 1, 0, false, raw_modes, 1},
      {StatefulKind::kPRAW, "PRAW", 1, 1, true, raw_modes, 2},
      {StatefulKind::kIfElseRAW, "IfElseRAW", 1, 1, false, raw_modes, 3},
      {StatefulKind::kSub, "Sub", 1, 1, false, sub_modes, 4},
      {StatefulKind::kNested, "Nested", 1, 2, false, sub_modes, 5},
      {StatefulKind::kPairs, "Pairs", 2, 2, false, sub_modes, 6},
      {StatefulKind::kLutPairs, "LutPairs", 2, 2, false, lut_modes, 7},
  };
}

}  // namespace

const std::vector<StatefulTemplateInfo>& all_templates() {
  static const std::vector<StatefulTemplateInfo> kAll = build_templates();
  return kAll;
}

const std::vector<StatefulTemplateInfo>& stateful_hierarchy() {
  static const std::vector<StatefulTemplateInfo> kHierarchy = [] {
    auto v = build_templates();
    v.pop_back();  // drop the LUT extension: not one of the paper's targets
    return v;
  }();
  return kHierarchy;
}

const StatefulTemplateInfo& template_info(StatefulKind kind) {
  for (const auto& t : all_templates())
    if (t.kind == kind) return t;
  throw std::logic_error("unknown stateful template kind");
}

const char* stateful_kind_name(StatefulKind kind) {
  return template_info(kind).name.c_str();
}

std::int32_t lut_eval(std::int32_t c) {
  // The ROM is programmed with the post-increment CoDel control law: when an
  // atom arm computes `next_mark = lut(count_old) + now` in the same cycle
  // that another arm computes `count = count_old + 1`, the table must hold
  // gap(count_old) = sqrt_interval(count_old + 1).  Sharing the intrinsic's
  // canned implementation keeps the interpreter, synthesis and the simulator
  // bit-identical.
  return domino::eval_intrinsic(
      "sqrt_interval", {banzai::wrap_add(c, 1)});
}

}  // namespace atoms
