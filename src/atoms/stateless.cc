#include "atoms/stateless.h"

namespace atoms {

using domino::BinOp;
using domino::TacStmt;

namespace {

bool alu_binop(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kShl:
    case BinOp::kShr:
    case BinOp::kBitAnd:
    case BinOp::kBitOr:
    case BinOp::kBitXor:
    case BinOp::kLAnd:
    case BinOp::kLOr:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
    case BinOp::kEq:
    case BinOp::kNe:
      return true;
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod:
      return false;
  }
  return false;
}

}  // namespace

bool stateless_alu_supports(const TacStmt& stmt) {
  return !stateless_alu_reject_reason(stmt).has_value();
}

std::optional<std::string> stateless_alu_reject_reason(const TacStmt& stmt) {
  switch (stmt.kind) {
    case TacStmt::Kind::kCopy:
    case TacStmt::Kind::kUnary:
    case TacStmt::Kind::kTernary:
      return std::nullopt;
    case TacStmt::Kind::kBinary:
      if (alu_binop(stmt.op)) return std::nullopt;
      return std::string("operator '") + domino::binop_str(stmt.op) +
             "' is not provided by the stateless ALU";
    case TacStmt::Kind::kIntrinsic:
      return std::string("intrinsic '") + stmt.intrinsic +
             "' requires an accelerator unit, not the stateless ALU";
    case TacStmt::Kind::kReadState:
    case TacStmt::Kind::kWriteState:
      return std::string("state access requires a stateful atom");
  }
  return std::string("unknown statement kind");
}

}  // namespace atoms
