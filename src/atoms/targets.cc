#include "atoms/targets.h"

#include <algorithm>
#include <cmath>

namespace atoms {

const std::vector<BanzaiTarget>& paper_targets() {
  static const std::vector<BanzaiTarget> kTargets = [] {
    std::vector<BanzaiTarget> t;
    for (const auto& info : stateful_hierarchy()) {
      BanzaiTarget bt;
      std::string lower = info.name;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      bt.name = "banzai-" + lower;
      bt.stateful_atom = info.kind;
      t.push_back(bt);
    }
    return t;
  }();
  return kTargets;
}

std::optional<BanzaiTarget> find_target(const std::string& name) {
  for (const auto& t : paper_targets())
    if (t.name == name) return t;
  if (name == lut_extended_target().name) return lut_extended_target();
  return std::nullopt;
}

BanzaiTarget lut_extended_target() {
  BanzaiTarget bt;
  bt.name = "banzai-pairs-lut";
  bt.stateful_atom = StatefulKind::kLutPairs;
  bt.has_math_unit = true;
  return bt;
}

ResourceBudget compute_resource_budget(StatefulKind stateful_atom,
                                       double chip_area_mm2) {
  ResourceBudget rb;
  rb.chip_area_mm2 = chip_area_mm2;
  rb.num_stages = 32;

  // Stateless atoms: 7% of chip area (the RMT action-unit overhead) buys
  // area / stateless_atom_area instances; paper: ~10000 total, ~300/stage.
  rb.stateless_overhead_frac = 0.07;
  const double stateless_area_um2 = stateless_circuit().area_um2();
  const double budget_um2 = chip_area_mm2 * 1e6 * rb.stateless_overhead_frac;
  rb.stateless_total = static_cast<std::size_t>(budget_um2 / stateless_area_um2);
  rb.stateless_per_stage = rb.stateless_total / rb.num_stages;

  // Stateful atoms: area would allow ~70/stage for Pairs, but per-stage
  // memory banking limits it; the paper settles on ~10/stage (~1% overhead).
  rb.stateful_per_stage = 10;
  const double stateful_area_um2 = stateful_circuit(stateful_atom).area_um2();
  rb.stateful_overhead_frac =
      (stateful_area_um2 * static_cast<double>(rb.stateful_per_stage) *
       static_cast<double>(rb.num_stages)) /
      (chip_area_mm2 * 1e6);

  // Crossbar: RMT reports 6 mm^2 for 224 action units over 32 stages; scale
  // linearly to ~300 units -> ~8 mm^2, ~4% of a 200 mm^2 chip.
  rb.crossbar_area_mm2 =
      6.0 * (static_cast<double>(rb.stateless_per_stage) / 224.0);
  rb.crossbar_overhead_frac = rb.crossbar_area_mm2 / chip_area_mm2;

  rb.total_overhead_frac = rb.stateless_overhead_frac +
                           rb.stateful_overhead_frac +
                           rb.crossbar_overhead_frac;
  return rb;
}

}  // namespace atoms
