// Codelet specifications for synthesis (§4.3): "Each codelet can be viewed as
// a functional specification of the atom."
//
// A stateful codelet is a block of three-address code touching one or two
// state variables.  Thanks to the same-index restriction (Table 1), per-cell
// behaviour is a pure function
//     (state_in[], input_fields[]) -> (state_out[], liveout_fields[])
// which this class evaluates by directly interpreting the codelet's
// statements with a scalar view of each state variable.
#pragma once

#include "util/span.h"
#include <optional>
#include <string>
#include <vector>

#include "banzai/value.h"
#include "ir/pvsm.h"
#include "ir/tac.h"

namespace synthesis {

using banzai::Value;

class CodeletSpec {
 public:
  // `liveouts`: the packet fields written by the codelet that later pipeline
  // stages read (code generation computes these; tests may pass any subset).
  CodeletSpec(const domino::Codelet& codelet,
              std::vector<std::string> liveouts);

  const std::vector<std::string>& state_vars() const { return state_vars_; }
  const std::vector<std::string>& input_fields() const {
    return input_fields_;
  }
  const std::vector<std::string>& liveout_fields() const {
    return liveout_fields_;
  }
  const domino::Codelet& codelet() const { return codelet_; }

  std::size_t num_states() const { return state_vars_.size(); }
  std::size_t num_inputs() const { return input_fields_.size(); }

  // Constants that appear anywhere in the codelet (used to seed the
  // constant-hole search, mirroring the paper's 5-bit constant restriction).
  std::vector<Value> constants() const;

  // True if the codelet contains an operation no stateful atom provides
  // (multiply / divide / modulo / intrinsic call); such codelets are
  // rejected without search.  When `allow_lut_intrinsics` is set (the
  // LUT-extension template), intrinsic calls are admitted and the search
  // decides whether the atom's look-up table realizes them.
  bool has_unmappable_op(std::string* reason = nullptr,
                         bool allow_lut_intrinsics = false) const;

  // Evaluates the codelet.  states_in/states_out are indexed like
  // state_vars(); fields like input_fields(); liveouts like liveout_fields().
  void eval(util::Span<const Value> states_in, util::Span<const Value> fields,
            util::Span<Value> states_out, util::Span<Value> liveouts) const;

 private:
  domino::Codelet codelet_;
  std::vector<std::string> state_vars_;
  std::vector<std::string> input_fields_;
  std::vector<std::string> liveout_fields_;

  // Resolved-index execution plan: eval() runs in the synthesis inner loop
  // (once per candidate atom per example), so field names are interned once
  // here instead of being scanned per operand access.
  domino::CompiledTac compiled_;
  std::vector<std::size_t> stmt_state_index_;  // per stmt: index into state_vars_
  std::vector<std::optional<std::uint32_t>> input_index_;
  std::vector<std::optional<std::uint32_t>> liveout_index_;
};

}  // namespace synthesis
