#include "synthesis/spec.h"

#include <algorithm>
#include <set>

#include "ir/intrinsics.h"

namespace synthesis {

using domino::TacStmt;

CodeletSpec::CodeletSpec(const domino::Codelet& codelet,
                         std::vector<std::string> liveouts)
    : codelet_(codelet), liveout_fields_(std::move(liveouts)) {
  // State variables in first-touch order (stable across runs).
  std::set<std::string> seen;
  for (const auto& s : codelet_.stmts) {
    if (s.touches_state() && !seen.count(s.state_var)) {
      seen.insert(s.state_var);
      state_vars_.push_back(s.state_var);
    }
  }
  input_fields_ = codelet_.external_inputs();
}

std::vector<Value> CodeletSpec::constants() const {
  std::set<Value> consts;
  auto add = [&consts](const domino::Operand& o) {
    if (o.is_const()) consts.insert(o.cst);
  };
  for (const auto& s : codelet_.stmts) {
    add(s.a);
    add(s.b);
    add(s.c);
    for (const auto& arg : s.args) add(arg);
  }
  return {consts.begin(), consts.end()};
}

bool CodeletSpec::has_unmappable_op(std::string* reason,
                                    bool allow_lut_intrinsics) const {
  for (const auto& s : codelet_.stmts) {
    if (s.kind == TacStmt::Kind::kIntrinsic && !allow_lut_intrinsics) {
      if (reason)
        *reason = "stateful codelet calls intrinsic '" + s.intrinsic +
                  "', which no stateful atom provides";
      return true;
    }
    if (s.kind == TacStmt::Kind::kBinary &&
        (s.op == domino::BinOp::kMul || s.op == domino::BinOp::kDiv ||
         s.op == domino::BinOp::kMod)) {
      if (reason)
        *reason = std::string("stateful codelet uses operator '") +
                  domino::binop_str(s.op) +
                  "', which no stateful atom provides";
      return true;
    }
  }
  return false;
}

void CodeletSpec::eval(util::Span<const Value> states_in,
                       util::Span<const Value> fields,
                       util::Span<Value> states_out,
                       util::Span<Value> liveouts) const {
  // Scalar state view: valid because all accesses to an array within one
  // transaction use the same index (enforced by sema).
  std::vector<Value> state_val(states_in.begin(), states_in.end());
  // Small linear-probed field environment.
  std::vector<std::pair<std::string, Value>> env;
  env.reserve(input_fields_.size() + codelet_.stmts.size());
  for (std::size_t i = 0; i < input_fields_.size(); ++i)
    env.emplace_back(input_fields_[i], fields[i]);

  auto state_index = [this](const std::string& name) {
    for (std::size_t k = 0; k < state_vars_.size(); ++k)
      if (state_vars_[k] == name) return k;
    return std::size_t{0};
  };

  using E = domino::TacEvaluator;
  for (const auto& s : codelet_.stmts) {
    switch (s.kind) {
      case TacStmt::Kind::kReadState:
        E::write_field(env, s.dst, state_val[state_index(s.state_var)]);
        break;
      case TacStmt::Kind::kWriteState:
        state_val[state_index(s.state_var)] = E::eval_operand(s.a, env);
        break;
      default: {
        // Pure packet-field statement; no state store needed.
        static thread_local banzai::StateStore empty_store;
        E::exec(s, env, empty_store);
        break;
      }
    }
  }

  for (std::size_t k = 0; k < state_vars_.size(); ++k)
    states_out[k] = state_val[k];
  for (std::size_t i = 0; i < liveout_fields_.size(); ++i)
    liveouts[i] = E::read_field(env, liveout_fields_[i]);
}

}  // namespace synthesis
