#include "synthesis/spec.h"

#include <algorithm>
#include <set>

#include "ir/intrinsics.h"

namespace synthesis {

using domino::TacStmt;

CodeletSpec::CodeletSpec(const domino::Codelet& codelet,
                         std::vector<std::string> liveouts)
    : codelet_(codelet),
      liveout_fields_(std::move(liveouts)),
      compiled_(codelet.stmts) {
  // State variables in first-touch order (stable across runs).
  std::set<std::string> seen;
  for (const auto& s : codelet_.stmts) {
    if (s.touches_state() && !seen.count(s.state_var)) {
      seen.insert(s.state_var);
      state_vars_.push_back(s.state_var);
    }
  }
  input_fields_ = codelet_.external_inputs();

  // Resolve every name eval() will touch to a dense index, once.
  stmt_state_index_.reserve(codelet_.stmts.size());
  for (const auto& s : codelet_.stmts) {
    std::size_t k = 0;
    if (s.touches_state()) {
      while (k < state_vars_.size() && state_vars_[k] != s.state_var) ++k;
      if (k == state_vars_.size()) k = 0;
    }
    stmt_state_index_.push_back(k);
  }
  input_index_.reserve(input_fields_.size());
  for (const auto& f : input_fields_) input_index_.push_back(compiled_.index_of(f));
  liveout_index_.reserve(liveout_fields_.size());
  for (const auto& f : liveout_fields_)
    liveout_index_.push_back(compiled_.index_of(f));
}

std::vector<Value> CodeletSpec::constants() const {
  std::set<Value> consts;
  auto add = [&consts](const domino::Operand& o) {
    if (o.is_const()) consts.insert(o.cst);
  };
  for (const auto& s : codelet_.stmts) {
    add(s.a);
    add(s.b);
    add(s.c);
    for (const auto& arg : s.args) add(arg);
  }
  return {consts.begin(), consts.end()};
}

bool CodeletSpec::has_unmappable_op(std::string* reason,
                                    bool allow_lut_intrinsics) const {
  for (const auto& s : codelet_.stmts) {
    if (s.kind == TacStmt::Kind::kIntrinsic && !allow_lut_intrinsics) {
      if (reason)
        *reason = "stateful codelet calls intrinsic '" + s.intrinsic +
                  "', which no stateful atom provides";
      return true;
    }
    if (s.kind == TacStmt::Kind::kBinary &&
        (s.op == domino::BinOp::kMul || s.op == domino::BinOp::kDiv ||
         s.op == domino::BinOp::kMod)) {
      if (reason)
        *reason = std::string("stateful codelet uses operator '") +
                  domino::binop_str(s.op) +
                  "', which no stateful atom provides";
      return true;
    }
  }
  return false;
}

void CodeletSpec::eval(util::Span<const Value> states_in,
                       util::Span<const Value> fields,
                       util::Span<Value> states_out,
                       util::Span<Value> liveouts) const {
  // Scalar state view: valid because all accesses to an array within one
  // transaction use the same index (enforced by sema).
  std::vector<Value> state_val(states_in.begin(), states_in.end());
  // Dense field environment indexed by CompiledTac's interned ids; fields the
  // codelet never writes read as zero, like the by-name evaluator.
  std::vector<Value> env(compiled_.num_fields(), 0);
  for (std::size_t i = 0; i < input_fields_.size(); ++i)
    if (input_index_[i]) env[*input_index_[i]] = fields[i];

  using C = domino::CompiledTac;
  const auto& stmts = compiled_.stmts();
  for (std::size_t i = 0; i < stmts.size(); ++i) {
    const C::RStmt& s = stmts[i];
    switch (s.kind) {
      case TacStmt::Kind::kReadState:
        env[s.dst] = state_val[stmt_state_index_[i]];
        break;
      case TacStmt::Kind::kWriteState:
        state_val[stmt_state_index_[i]] = C::eval_operand(s.a, env);
        break;
      default: {
        // Pure packet-field statement; no state store needed.
        static thread_local banzai::StateStore empty_store;
        compiled_.exec_stmt(s, env, empty_store);
        break;
      }
    }
  }

  for (std::size_t k = 0; k < state_vars_.size(); ++k)
    states_out[k] = state_val[k];
  for (std::size_t i = 0; i < liveout_fields_.size(); ++i)
    liveouts[i] = liveout_index_[i] ? env[*liveout_index_[i]] : 0;
}

}  // namespace synthesis
