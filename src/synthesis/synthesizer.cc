#include "synthesis/synthesizer.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <sstream>

namespace synthesis {

using atoms::ArmConfig;
using atoms::ArmMode;
using atoms::LiveOutBinding;
using atoms::OperandSel;
using atoms::PredConfig;
using atoms::RelKind;
using atoms::StatefulConfig;
using atoms::StatefulTemplateInfo;

namespace {

struct Vec {
  std::vector<Value> states;
  std::vector<Value> fields;
};

struct SpecOut {
  std::vector<Value> states;
  std::vector<Value> liveouts;
};

using Subset = std::vector<int>;  // indices into the vector set

class Search {
 public:
  Search(const CodeletSpec& spec, const StatefulTemplateInfo& tmpl,
         const SynthOptions& opts)
      : spec_(spec), tmpl_(tmpl), opts_(opts) {}

  SynthResult run() {
    const auto t0 = std::chrono::steady_clock::now();
    SynthResult result;
    result.input_fields = spec_.input_fields();

    const bool has_lut =
        std::find(tmpl_.allowed_modes.begin(), tmpl_.allowed_modes.end(),
                  ArmMode::kLutAdd) != tmpl_.allowed_modes.end();
    std::string reason;
    if (spec_.num_states() == 0) {
      result.failure_reason = "codelet touches no state variable";
    } else if (spec_.num_states() >
               static_cast<std::size_t>(tmpl_.num_states)) {
      result.failure_reason =
          "codelet updates " + std::to_string(spec_.num_states()) +
          " state variables but the " + tmpl_.name + " atom owns only " +
          std::to_string(tmpl_.num_states);
    } else if (spec_.has_unmappable_op(&reason, has_lut)) {
      result.failure_reason = reason;
    }
    if (!result.failure_reason.empty()) {
      finish(result, t0);
      return result;
    }

    build_constant_pools();
    build_initial_vectors();

    for (int iter = 0; iter < opts_.max_cegis_iters; ++iter) {
      stats_.cegis_iterations = iter + 1;
      evaluate_spec();

      std::vector<LiveOutBinding> bindings;
      if (!bind_liveouts(&bindings)) {
        result.failure_reason =
            "live-out field '" + unbindable_liveout_ +
            "' is neither the old nor the new value of a state variable";
        finish(result, t0);
        return result;
      }

      std::optional<StatefulConfig> config = search_tree();
      if (!config.has_value()) {
        result.failure_reason = "no hole assignment of the " + tmpl_.name +
                                " template matches the codelet";
        finish(result, t0);
        return result;
      }

      Vec counterexample;
      if (verify(*config, bindings, &counterexample)) {
        result.success = true;
        result.config = *config;
        result.liveouts = bindings;
        finish(result, t0);
        return result;
      }
      vectors_.push_back(std::move(counterexample));
    }
    result.failure_reason = "CEGIS iteration limit exceeded";
    finish(result, t0);
    return result;
  }

 private:
  void finish(SynthResult& result, std::chrono::steady_clock::time_point t0) {
    stats_.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    result.stats = stats_;
  }

  void build_constant_pools() {
    std::set<Value> pool;
    if (opts_.seed_constants) {
      for (Value v : {-2, -1, 0, 1, 2}) pool.insert(v);
      for (Value c : spec_.constants()) {
        pool.insert(c);
        pool.insert(banzai::wrap_add(c, 1));
        pool.insert(banzai::wrap_sub(c, 1));
      }
    } else {
      const Value lo = -(Value{1} << (opts_.const_bits - 1));
      const Value hi = (Value{1} << (opts_.const_bits - 1)) - 1;
      for (Value v = lo; v <= hi; ++v) pool.insert(v);
      // Constants appearing in the codelet stay available even if they do
      // not fit const_bits, so that wider programs are still mappable —
      // the sweep measures cost, not artificial failures.
      for (Value c : spec_.constants()) pool.insert(c);
    }
    const_pool_.assign(pool.begin(), pool.end());
  }

  void build_initial_vectors() {
    const std::size_t n = spec_.num_states() + spec_.num_inputs();
    std::set<Value> base = {0,  1,  -1, 2,  -2,  3,   5,
                            -16, 15, 30, 99, -100, 1000};
    for (Value c : spec_.constants()) {
      base.insert(c);
      base.insert(banzai::wrap_add(c, 1));
      base.insert(banzai::wrap_sub(c, 1));
    }
    std::vector<Value> b(base.begin(), base.end());

    auto make_vec = [this](auto&& fill) {
      Vec v;
      v.states.assign(spec_.num_states(), 0);
      v.fields.assign(spec_.num_inputs(), 0);
      fill(v);
      return v;
    };

    vectors_.push_back(make_vec([](Vec&) {}));  // all zero
    for (std::size_t i = 0; i < n; ++i) {
      for (Value val : b) {
        vectors_.push_back(make_vec([&](Vec& v) { slot(v, i) = val; }));
      }
    }
    // Seeded small random vectors to break symmetric coincidences early.
    std::mt19937 rng(opts_.seed);
    std::uniform_int_distribution<Value> small(-8, 31);
    std::uniform_int_distribution<Value> wide(INT32_MIN, INT32_MAX);
    for (int k = 0; k < 30; ++k)
      vectors_.push_back(make_vec([&](Vec& v) {
        for (std::size_t i = 0; i < n; ++i) slot(v, i) = small(rng);
      }));
    for (int k = 0; k < 10; ++k)
      vectors_.push_back(make_vec([&](Vec& v) {
        for (std::size_t i = 0; i < n; ++i) slot(v, i) = wide(rng);
      }));
  }

  Value& slot(Vec& v, std::size_t i) {
    return i < v.states.size() ? v.states[i] : v.fields[i - v.states.size()];
  }

  void evaluate_spec() {
    outs_.clear();
    outs_.reserve(vectors_.size());
    for (const Vec& v : vectors_) {
      SpecOut o;
      o.states.assign(spec_.num_states(), 0);
      o.liveouts.assign(spec_.liveout_fields().size(), 0);
      spec_.eval(v.states, v.fields, o.states, o.liveouts);
      outs_.push_back(std::move(o));
    }
    arm_memo_.clear();
  }

  bool bind_liveouts(std::vector<LiveOutBinding>* bindings) {
    bindings->clear();
    for (std::size_t i = 0; i < spec_.liveout_fields().size(); ++i) {
      bool bound = false;
      for (std::size_t k = 0; k < spec_.num_states() && !bound; ++k) {
        bool all_old = true, all_new = true;
        for (std::size_t vi = 0; vi < vectors_.size(); ++vi) {
          if (outs_[vi].liveouts[i] != vectors_[vi].states[k])
            all_old = false;
          if (outs_[vi].liveouts[i] != outs_[vi].states[k]) all_new = false;
          if (!all_old && !all_new) break;
        }
        if (all_old || all_new) {
          bindings->push_back({spec_.liveout_fields()[i],
                               static_cast<int>(k), /*use_new=*/!all_old});
          bound = true;
        }
      }
      if (!bound) {
        unbindable_liveout_ = spec_.liveout_fields()[i];
        return false;
      }
    }
    return true;
  }

  // --- Predicate enumeration -----------------------------------------------

  struct PredCand {
    PredConfig cfg;
    std::vector<char> truth;  // over all vectors_
  };

  std::vector<OperandSel> pred_operands() const {
    std::vector<OperandSel> ops;
    for (std::size_t k = 0; k < spec_.num_states(); ++k)
      ops.push_back(OperandSel::state(static_cast<int>(k)));
    for (std::size_t i = 0; i < spec_.num_inputs(); ++i)
      ops.push_back(OperandSel::field(static_cast<int>(i)));
    for (Value c : const_pool_) ops.push_back(OperandSel::constant(c));
    return ops;
  }

  std::vector<PredCand> enumerate_preds() {
    std::vector<PredCand> cands;
    std::set<std::vector<char>> seen;

    // The degenerate predicate first: gives simpler configurations priority
    // and realizes hierarchy containment (e.g. PRAW with pred=true == RAW).
    {
      PredCand always;
      always.cfg.rel = RelKind::kAlways;
      always.truth.assign(vectors_.size(), 1);
      seen.insert(always.truth);
      cands.push_back(std::move(always));
    }

    const auto ops = pred_operands();
    const RelKind rels[] = {RelKind::kLt, RelKind::kLe, RelKind::kGt,
                            RelKind::kGe, RelKind::kEq, RelKind::kNe};
    for (RelKind rel : rels) {
      for (std::size_t ia = 0; ia < ops.size(); ++ia) {
        for (std::size_t ib = 0; ib < ops.size(); ++ib) {
          if (ia == ib) continue;
          // Constant-vs-constant predicates are either kAlways or useless.
          if (ops[ia].kind == OperandSel::Kind::kConst &&
              ops[ib].kind == OperandSel::Kind::kConst)
            continue;
          ++stats_.candidates_tried;
          PredCand pc;
          pc.cfg.rel = rel;
          pc.cfg.a = ops[ia];
          pc.cfg.b = ops[ib];
          pc.truth.resize(vectors_.size());
          bool all_same = true;
          for (std::size_t vi = 0; vi < vectors_.size(); ++vi) {
            pc.truth[vi] = pc.cfg.eval(vectors_[vi].states,
                                       vectors_[vi].fields)
                               ? 1
                               : 0;
            if (vi > 0 && pc.truth[vi] != pc.truth[0]) all_same = false;
          }
          // Constant-truth predicates are subsumed by kAlways / leaf swap.
          if (all_same && pc.truth[0] == 1) continue;
          if (seen.insert(pc.truth).second) cands.push_back(std::move(pc));
        }
      }
    }
    stats_.unique_predicates = cands.size();
    return cands;
  }

  // --- Arm synthesis --------------------------------------------------------

  std::vector<OperandSel> arm_operands() const {
    std::vector<OperandSel> ops;
    // The LUT extension routes state values into the update path (the ROM
    // input can be another state variable, e.g. CoDel's count feeding the
    // next-mark computation); the paper templates take only fields/constants.
    const bool has_lut =
        std::find(tmpl_.allowed_modes.begin(), tmpl_.allowed_modes.end(),
                  ArmMode::kLutAdd) != tmpl_.allowed_modes.end();
    if (has_lut)
      for (std::size_t k = 0; k < spec_.num_states(); ++k)
        ops.push_back(OperandSel::state(static_cast<int>(k)));
    for (std::size_t i = 0; i < spec_.num_inputs(); ++i)
      ops.push_back(OperandSel::field(static_cast<int>(i)));
    for (Value c : const_pool_) ops.push_back(OperandSel::constant(c));
    return ops;
  }

  static bool mode_uses_src1(ArmMode m) { return m != ArmMode::kKeep; }
  static bool mode_uses_src2(ArmMode m) {
    return m == ArmMode::kSetAdd || m == ArmMode::kSetSub ||
           m == ArmMode::kAddSub || m == ArmMode::kLutAdd;
  }

  bool arm_fits(const ArmConfig& arm, std::size_t k, const Subset& S) {
    for (int vi : S) {
      const auto ui = static_cast<std::size_t>(vi);
      const Value got = arm.eval(vectors_[ui].states[k], vectors_[ui].states,
                                 vectors_[ui].fields);
      if (got != outs_[ui].states[k]) return false;
    }
    return true;
  }

  std::optional<ArmConfig> find_arm(std::size_t k, const Subset& S) {
    auto key = std::make_pair(k, S);
    if (auto it = arm_memo_.find(key); it != arm_memo_.end())
      return it->second;

    std::optional<ArmConfig> found;
    const auto ops = arm_operands();
    for (ArmMode mode : tmpl_.allowed_modes) {
      ArmConfig arm;
      arm.mode = mode;
      if (!mode_uses_src1(mode)) {
        ++stats_.candidates_tried;
        if (arm_fits(arm, k, S)) {
          found = arm;
          break;
        }
        continue;
      }
      for (const auto& s1 : ops) {
        arm.src1 = s1;
        if (!mode_uses_src2(mode)) {
          ++stats_.candidates_tried;
          if (arm_fits(arm, k, S)) {
            found = arm;
            break;
          }
          continue;
        }
        for (const auto& s2 : ops) {
          arm.src2 = s2;
          ++stats_.candidates_tried;
          if (arm_fits(arm, k, S)) {
            found = arm;
            break;
          }
        }
        if (found) break;
      }
      if (found) break;
    }
    arm_memo_.emplace(std::move(key), found);
    return found;
  }

  std::optional<std::vector<ArmConfig>> solve_leaf(const Subset& S) {
    std::vector<ArmConfig> arms;
    for (std::size_t k = 0; k < spec_.num_states(); ++k) {
      auto arm = find_arm(k, S);
      if (!arm.has_value()) return std::nullopt;
      arms.push_back(*arm);
    }
    return arms;
  }

  bool spec_keeps_state(const Subset& S) const {
    for (int vi : S) {
      const auto ui = static_cast<std::size_t>(vi);
      for (std::size_t k = 0; k < spec_.num_states(); ++k)
        if (outs_[ui].states[k] != vectors_[ui].states[k]) return false;
    }
    return true;
  }

  static std::pair<Subset, Subset> split(const Subset& S,
                                         const std::vector<char>& truth) {
    Subset t, f;
    for (int vi : S)
      (truth[static_cast<std::size_t>(vi)] ? t : f).push_back(vi);
    return {std::move(t), std::move(f)};
  }

  struct Side {
    PredConfig pred;
    std::vector<ArmConfig> leaf_true, leaf_false;
  };

  // Finds (pred, leaf_true, leaf_false) covering subset S, deduplicating
  // predicates by their truth signature restricted to S.
  std::optional<Side> solve_side(const Subset& S,
                                 const std::vector<PredCand>& preds) {
    std::set<std::vector<char>> seen;
    for (const auto& pc : preds) {
      std::vector<char> restricted;
      restricted.reserve(S.size());
      for (int vi : S)
        restricted.push_back(pc.truth[static_cast<std::size_t>(vi)]);
      if (!seen.insert(restricted).second) continue;
      auto [st, sf] = split(S, pc.truth);
      auto lt = solve_leaf(st);
      if (!lt.has_value()) continue;
      auto lf = solve_leaf(sf);
      if (!lf.has_value()) continue;
      return Side{pc.cfg, std::move(*lt), std::move(*lf)};
    }
    return std::nullopt;
  }

  std::optional<StatefulConfig> search_tree() {
    StatefulConfig config;
    config.kind = tmpl_.kind;

    Subset all(vectors_.size());
    for (std::size_t i = 0; i < vectors_.size(); ++i)
      all[i] = static_cast<int>(i);

    if (tmpl_.pred_levels == 0) {
      auto arms = solve_leaf(all);
      if (!arms.has_value()) return std::nullopt;
      config.leaves = {std::move(*arms)};
      return config;
    }

    const auto preds = enumerate_preds();

    if (tmpl_.pred_levels == 1) {
      for (const auto& pc : preds) {
        auto [st, sf] = split(all, pc.truth);
        auto lt = solve_leaf(st);
        if (!lt.has_value()) continue;
        std::vector<ArmConfig> lf_arms;
        if (tmpl_.false_leaf_keep) {
          if (!spec_keeps_state(sf)) continue;
          lf_arms.assign(spec_.num_states(), ArmConfig{});
        } else {
          auto lf = solve_leaf(sf);
          if (!lf.has_value()) continue;
          lf_arms = std::move(*lf);
        }
        config.preds = {pc.cfg};
        config.leaves = {std::move(*lt), std::move(lf_arms)};
        return config;
      }
      return std::nullopt;
    }

    // Two predicate levels (Nested / Pairs / LutPairs).
    for (const auto& pc : preds) {
      auto [st, sf] = split(all, pc.truth);
      auto side_t = solve_side(st, preds);
      if (!side_t.has_value()) continue;
      auto side_f = solve_side(sf, preds);
      if (!side_f.has_value()) continue;
      config.preds = {pc.cfg, side_t->pred, side_f->pred};
      config.leaves = {std::move(side_t->leaf_true),
                       std::move(side_t->leaf_false),
                       std::move(side_f->leaf_true),
                       std::move(side_f->leaf_false)};
      return config;
    }
    return std::nullopt;
  }

  // --- Verification ---------------------------------------------------------

  bool check_vector(const StatefulConfig& config,
                    const std::vector<LiveOutBinding>& bindings,
                    const Vec& v) {
    SpecOut o;
    o.states.assign(spec_.num_states(), 0);
    o.liveouts.assign(spec_.liveout_fields().size(), 0);
    spec_.eval(v.states, v.fields, o.states, o.liveouts);

    std::vector<Value> got(spec_.num_states(), 0);
    config.eval(v.states, v.fields, got);
    for (std::size_t k = 0; k < spec_.num_states(); ++k)
      if (got[k] != o.states[k]) return false;
    for (std::size_t i = 0; i < bindings.size(); ++i) {
      const auto& b = bindings[i];
      const Value atom_out =
          b.use_new ? got[static_cast<std::size_t>(b.state_idx)]
                    : v.states[static_cast<std::size_t>(b.state_idx)];
      if (atom_out != o.liveouts[i]) return false;
    }
    return true;
  }

  bool verify(const StatefulConfig& config,
              const std::vector<LiveOutBinding>& bindings,
              Vec* counterexample) {
    const std::size_t n = spec_.num_states() + spec_.num_inputs();

    // Exhaustive pass over a small boundary domain when feasible.
    std::set<Value> dset = {-2, -1, 0, 1, 2};
    for (Value c : spec_.constants()) {
      dset.insert(c);
      dset.insert(banzai::wrap_add(c, 1));
      dset.insert(banzai::wrap_sub(c, 1));
    }
    std::vector<Value> domain(dset.begin(), dset.end());
    if (domain.size() > 9) domain.resize(9);
    double combos = 1;
    for (std::size_t i = 0; i < n; ++i) combos *= double(domain.size());
    if (n > 0 && combos <= 8192.0) {
      Vec v;
      v.states.assign(spec_.num_states(), 0);
      v.fields.assign(spec_.num_inputs(), 0);
      std::vector<std::size_t> idx(n, 0);
      while (true) {
        for (std::size_t i = 0; i < n; ++i) slot(v, i) = domain[idx[i]];
        if (!check_vector(config, bindings, v)) {
          *counterexample = v;
          return false;
        }
        std::size_t i = 0;
        for (; i < n; ++i) {
          if (++idx[i] < domain.size()) break;
          idx[i] = 0;
        }
        if (i == n) break;
      }
    }

    // Seeded random pass mixing magnitudes.
    std::mt19937 rng(opts_.seed ^ 0x9e3779b9u);
    std::uniform_int_distribution<int> scale(0, 3);
    std::uniform_int_distribution<Value> tiny(-4, 4);
    std::uniform_int_distribution<Value> small(-64, 64);
    std::uniform_int_distribution<Value> mid(-65536, 65536);
    std::uniform_int_distribution<Value> wide(INT32_MIN, INT32_MAX);
    Vec v;
    v.states.assign(spec_.num_states(), 0);
    v.fields.assign(spec_.num_inputs(), 0);
    for (std::size_t t = 0; t < opts_.random_verify_vectors; ++t) {
      for (std::size_t i = 0; i < n; ++i) {
        switch (scale(rng)) {
          case 0: slot(v, i) = tiny(rng); break;
          case 1: slot(v, i) = small(rng); break;
          case 2: slot(v, i) = mid(rng); break;
          default: slot(v, i) = wide(rng); break;
        }
      }
      if (!check_vector(config, bindings, v)) {
        *counterexample = v;
        return false;
      }
    }
    return true;
  }

  const CodeletSpec& spec_;
  const StatefulTemplateInfo& tmpl_;
  SynthOptions opts_;

  std::vector<Value> const_pool_;
  std::vector<Vec> vectors_;
  std::vector<SpecOut> outs_;
  std::map<std::pair<std::size_t, Subset>, std::optional<ArmConfig>> arm_memo_;
  std::string unbindable_liveout_;
  SynthStats stats_;
};

}  // namespace

SynthResult synthesize(const CodeletSpec& spec, atoms::StatefulKind kind,
                       const SynthOptions& opts) {
  Search search(spec, atoms::template_info(kind), opts);
  return search.run();
}

bool check_equivalent(const CodeletSpec& spec,
                      const atoms::StatefulConfig& config,
                      const std::vector<atoms::LiveOutBinding>& liveouts,
                      std::uint32_t seed, std::size_t num_vectors,
                      std::string* mismatch) {
  const std::size_t ns = spec.num_states();
  const std::size_t nf = spec.num_inputs();
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> scale(0, 2);
  std::uniform_int_distribution<Value> small(-32, 32);
  std::uniform_int_distribution<Value> mid(-65536, 65536);
  std::uniform_int_distribution<Value> wide(INT32_MIN, INT32_MAX);

  std::vector<Value> states(ns), fields(nf), s_out(ns), got(ns);
  std::vector<Value> liveout_vals(spec.liveout_fields().size());
  for (std::size_t t = 0; t < num_vectors; ++t) {
    for (auto& s : states)
      s = scale(rng) == 0 ? small(rng) : (scale(rng) == 1 ? mid(rng) : wide(rng));
    for (auto& f : fields)
      f = scale(rng) == 0 ? small(rng) : (scale(rng) == 1 ? mid(rng) : wide(rng));
    spec.eval(states, fields, s_out, liveout_vals);
    config.eval(states, fields, got);
    for (std::size_t k = 0; k < ns; ++k) {
      if (got[k] != s_out[k]) {
        if (mismatch) {
          std::ostringstream os;
          os << "state " << spec.state_vars()[k] << ": atom=" << got[k]
             << " spec=" << s_out[k];
          *mismatch = os.str();
        }
        return false;
      }
    }
    for (std::size_t i = 0; i < liveouts.size(); ++i) {
      const auto& b = liveouts[i];
      const Value atom_out =
          b.use_new ? got[static_cast<std::size_t>(b.state_idx)]
                    : states[static_cast<std::size_t>(b.state_idx)];
      if (atom_out != liveout_vals[i]) {
        if (mismatch) *mismatch = "live-out " + b.field + " mismatch";
        return false;
      }
    }
  }
  return true;
}

}  // namespace synthesis
