// Codelet-to-atom synthesis (§4.3) — the SKETCH substitute.
//
// The paper hands each codelet plus an atom template to the SKETCH program
// synthesizer, which searches for hole values making the configured template
// functionally identical to the codelet (with hole constants restricted to
// 5 bits).  We implement the same search as counterexample-guided inductive
// synthesis (CEGIS) with an enumerative inductive step:
//
//   1. Evaluate the codelet spec on a set V of test vectors.
//   2. Enumerate predicate holes, deduplicated by their truth vector on V,
//      and update-arm holes per decision-tree leaf, memoized per vector
//      subset; assemble a candidate configuration consistent with V.
//   3. Verify the candidate against a bounded oracle (an exhaustive small
//      domain plus thousands of seeded random 32-bit vectors).  A mismatch
//      becomes a counterexample added to V, and the search repeats.
//
// Like SKETCH, the search is complete over the hole space: if the inductive
// step fails on V, no configuration exists (failing on a subset implies
// failing on any superset), so rejection is definitive.  Unlike SKETCH,
// verification is bounded rather than SAT-based; every accepted mapping is
// additionally cross-validated end-to-end by the differential pipeline tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atoms/config.h"
#include "atoms/stateful.h"
#include "synthesis/spec.h"

namespace synthesis {

struct SynthOptions {
  // Width of enumerated constant holes when seed_constants is false:
  // constants range over [-2^(bits-1), 2^(bits-1)-1].  The paper limits
  // SKETCH to 5-bit constants for the same reason (§5.3).
  int const_bits = 5;
  // Seed the constant pool from constants appearing in the codelet (+/-1)
  // plus small values, instead of enumerating the full 2^bits range.
  bool seed_constants = true;
  int max_cegis_iters = 16;
  std::size_t random_verify_vectors = 3000;
  std::uint32_t seed = 0x5eedu;
};

struct SynthStats {
  std::size_t candidates_tried = 0;  // arm + predicate candidates evaluated
  std::size_t unique_predicates = 0;
  int cegis_iterations = 0;
  double seconds = 0.0;
};

struct SynthResult {
  bool success = false;
  atoms::StatefulConfig config;
  std::vector<atoms::LiveOutBinding> liveouts;
  // Field-position ordering referenced by OperandSel::field_pos.
  std::vector<std::string> input_fields;
  std::string failure_reason;
  SynthStats stats;
};

// Attempts to map `spec` onto the stateful template `kind`.
SynthResult synthesize(const CodeletSpec& spec, atoms::StatefulKind kind,
                       const SynthOptions& opts = {});

// Independent equivalence check between a spec and a configured atom on
// `num_vectors` fresh seeded vectors; used by soundness property tests.
bool check_equivalent(const CodeletSpec& spec,
                      const atoms::StatefulConfig& config,
                      const std::vector<atoms::LiveOutBinding>& liveouts,
                      std::uint32_t seed, std::size_t num_vectors,
                      std::string* mismatch = nullptr);

}  // namespace synthesis
