#include "sim/sched.h"

#include <algorithm>
#include <stdexcept>

#include "algorithms/corpus.h"
#include "atoms/targets.h"
#include "core/compiler.h"
#include "sim/tracegen.h"
#include "sim/zipf.h"

namespace netsim {

RankMachine::RankMachine(banzai::Machine machine,
                         const std::map<std::string, std::string>& output_map,
                         const std::string& rank_field)
    : machine_(std::move(machine)) {
  const banzai::FieldTable& fields = machine_.fields();
  auto first_of = [&fields](const char* a, const char* b) {
    auto id = fields.try_id_of(a);
    if (!id.has_value() && b != nullptr) id = fields.try_id_of(b);
    return id;
  };
  flow_ = first_of("flow", "flow_id");
  len_ = first_of("len", "size_bytes");
  now_ = first_of("now", "arrival");
  vt_ = first_of("vt", nullptr);
  refund_ = first_of("refund", nullptr);
  trefund_ = first_of("trefund", nullptr);
  tenant_ = first_of("tenant", nullptr);

  std::string final_name = rank_field;
  auto it = output_map.find(rank_field);
  if (it != output_map.end()) final_name = it->second;
  const auto rank_id = fields.try_id_of(final_name);
  if (!rank_id.has_value())
    throw std::invalid_argument("RankMachine: rank field '" + rank_field +
                                "' (resolved to '" + final_name +
                                "') is not in the program's field table");
  rank_id_ = *rank_id;
}

banzai::Value RankMachine::rank(std::int64_t now, const RankFeedback& fb,
                                const QueueItem& item) {
  banzai::Packet p(machine_.fields().size());
  if (flow_) p.set(*flow_, item.flow_id);
  if (len_) p.set(*len_, item.size_bytes);
  if (now_) p.set(*now_, static_cast<banzai::Value>(now));
  if (vt_) p.set(*vt_, static_cast<banzai::Value>(fb.vt));
  if (refund_) p.set(*refund_, static_cast<banzai::Value>(fb.refund));
  if (trefund_) p.set(*trefund_, static_cast<banzai::Value>(fb.trefund));
  if (tenant_) p.set(*tenant_, item.tenant_id);
  return machine_.process(std::move(p)).get(rank_id_);
}

RankMachine compile_rank_machine(const std::string& name,
                                 banzai::ExecEngine engine) {
  const algorithms::AlgorithmInfo& alg = algorithms::rank_algorithm(name);
  domino::CompileOptions options;
  options.engine = engine;
  for (const auto& target : atoms::paper_targets()) {
    try {
      auto compiled = domino::compile(alg.source, target, options);
      return RankMachine(std::move(compiled.machine()), compiled.output_map(),
                        alg.rank_field);
    } catch (const domino::CompileError&) {
    }
  }
  throw std::runtime_error("compile_rank_machine: '" + name +
                           "' rejected by every paper target");
}

namespace {
// Pays down `amount` of the ledger entry at `key`, erasing it when settled.
void settle_refund(std::map<std::int32_t, std::int64_t>& ledger,
                   std::int32_t key, std::int64_t amount) {
  auto it = ledger.find(key);
  if (it == ledger.end()) return;
  it->second -= amount;
  if (it->second <= 0) ledger.erase(it);
}
}  // namespace

PifoQueue::PifoQueue(const QueueConfig& config) : QueueDiscipline(config) {}

PifoQueue::PifoQueue(const QueueConfig& config, RankMachine rank)
    : QueueDiscipline(config), rank_(std::move(rank)) {}

void PifoQueue::start_service(std::int64_t at) {
  const Entry e = *waiting_.begin();
  waiting_.erase(waiting_.begin());
  const std::int64_t start = std::max(at, busy_until_);
  const std::int64_t service_ticks =
      (e.item.size_bytes + config_.bytes_per_tick - 1) /
      config_.bytes_per_tick;
  const std::int64_t finish = start + std::max<std::int64_t>(1, service_ticks);
  busy_until_ = finish;
  // STFQ's virtual time: the start rank of the packet entering service.
  // max() keeps it monotone when a late low-rank arrival overtakes.
  virtual_time_ = std::max(virtual_time_, e.rank);
  in_service_ = InService{finish, e.item};
}

void PifoQueue::credit_eviction(const QueueItem& victim) {
  if (!rank_.has_value()) return;
  if (rank_->uses_refund()) flow_refund_[victim.flow_id] += victim.size_bytes;
  if (rank_->uses_tenant_refund())
    tenant_refund_[victim.tenant_id] += victim.size_bytes;
}

void PifoQueue::advance(std::int64_t now) {
  while (in_service_.has_value() && in_service_->finish <= now) {
    const std::int64_t finish = in_service_->finish;
    backlog_bytes_ -= in_service_->item.size_bytes;
    ready_.push_back(Departed{finish, in_service_->item, false});
    in_service_.reset();
    // Work conserving: the next minimum-rank packet starts back-to-back.
    // Only packets admitted before this completion are in waiting_ — the
    // offer/pop call discipline (nondecreasing `now`) makes the eligible
    // set exact.
    if (!waiting_.empty()) start_service(finish);
  }
}

QueueSample PifoQueue::admit(std::int64_t now, const QueueItem& item) {
  advance(now);

  QueueSample s;
  s.arrival = now;
  s.size_bytes = item.size_bytes;
  s.qlen_bytes = backlog_bytes_;
  s.qlen_pkts = static_cast<std::int32_t>(waiting_.size() +
                                          (in_service_.has_value() ? 1 : 0));

  // When the buffer is full the arrival may lose the eviction contest below;
  // a dropped packet must not advance the rank program's clocks (a flow
  // overdriving a full buffer would otherwise be charged for bytes that were
  // never scheduled, racing its virtual start time ahead and starving it).
  // Snapshot the machine state and roll back on an arrival drop.
  const bool may_drop = config_.capacity_bytes >= 0 &&
                        backlog_bytes_ + item.size_bytes >
                            config_.capacity_bytes;
  std::optional<banzai::StateStore> undo;
  if (may_drop && rank_.has_value())
    undo = rank_->machine().snapshot_state();

  RankFeedback fb;
  fb.vt = virtual_time_;
  std::int64_t rank = item.rank;
  if (rank_.has_value()) {
    if (auto it = flow_refund_.find(item.flow_id); it != flow_refund_.end())
      fb.refund = it->second;
    if (auto it = tenant_refund_.find(item.tenant_id);
        it != tenant_refund_.end())
      fb.trefund = it->second;
    rank = static_cast<std::int64_t>(rank_->rank(now, fb, item));
  }

  // Bounded size: evict worst-ranked waiting packets to make room; if the
  // arrival is itself the worst (ties lose — a waiting packet with an equal
  // rank has the earlier admission seq), the arrival is dropped.  The packet
  // in service is never evicted.  An evicted packet's bytes are credited to
  // the refund ledgers so the rank program can un-charge its clocks; a
  // dropped arrival's machine charge is rolled back via `undo`.
  if (config_.capacity_bytes >= 0) {
    while (backlog_bytes_ + item.size_bytes > config_.capacity_bytes) {
      if (waiting_.empty()) {
        s.dropped = true;
      } else {
        const auto worst = std::prev(waiting_.end());
        if (worst->rank > rank) {
          backlog_bytes_ -= worst->item.size_bytes;
          ready_.push_back(Departed{now, worst->item, true});
          note_eviction(worst->item.size_bytes);
          ++evicted_pkts_;
          credit_eviction(worst->item);
          waiting_.erase(worst);
          continue;
        }
        s.dropped = true;
      }
      if (undo.has_value()) rank_->machine().restore_state(*undo);
      s.departure = now;
      s.sojourn = 0;
      return s;
    }
  }

  // The machine consumed the refunds it was offered; settle the ledgers
  // (evictions this very call may have added new debt for the same keys).
  if (rank_.has_value()) {
    if (fb.refund > 0) settle_refund(flow_refund_, item.flow_id, fb.refund);
    if (fb.trefund > 0)
      settle_refund(tenant_refund_, item.tenant_id, fb.trefund);
  }

  // ECN threshold on the backlog the packet found (same rule as ByteQueue).
  s.ecn_marked = config_.ecn_threshold_bytes >= 0 &&
                 s.qlen_bytes >= config_.ecn_threshold_bytes;

  Entry e;
  e.rank = rank;
  e.seq = next_seq_++;
  e.item = item;
  waiting_.insert(e);
  backlog_bytes_ += item.size_bytes;
  if (!in_service_.has_value()) start_service(now);

  // Departure is scheduled, not known here: the sample reports arrival-side
  // facts only (departure_known_at_offer() == false).
  s.departure = 0;
  s.sojourn = 0;
  return s;
}

std::optional<std::int64_t> PifoQueue::next_departure() const {
  if (in_service_.has_value()) return in_service_->finish;
  return std::nullopt;
}

std::optional<Departed> PifoQueue::pop_departed(std::int64_t now) {
  advance(now);
  if (ready_.empty()) return std::nullopt;
  Departed d = ready_.front();
  ready_.pop_front();
  return d;
}

std::int64_t PifoQueue::backlog_bytes(std::int64_t now) {
  advance(now);
  return backlog_bytes_;
}

std::int32_t PifoQueue::backlog_pkts(std::int64_t now) {
  advance(now);
  return static_cast<std::int32_t>(waiting_.size() +
                                   (in_service_.has_value() ? 1 : 0));
}

FairnessReport run_fairness_scenario(const FairnessConfig& config) {
  NetFabricConfig fc;
  fc.num_leaves = config.num_leaves;
  fc.num_spines = config.num_spines;
  fc.seed = config.seed;
  // Fabric ports are deliberately generous: the destination host port is the
  // only bottleneck, so the discipline under test owns every drop.
  fc.port.bytes_per_tick = 8 * config.bytes_per_tick;
  fc.port.capacity_bytes = -1;
  fc.port.ecn_threshold_bytes = -1;
  NetFabric fabric(fc);

  QueueConfig bottleneck;
  bottleneck.bytes_per_tick = config.bytes_per_tick;
  bottleneck.capacity_bytes = config.capacity_bytes;
  bottleneck.ecn_threshold_bytes = -1;
  if (config.use_pifo) {
    fabric.set_host_port_discipline(
        0, std::make_unique<PifoQueue>(
               bottleneck, compile_rank_machine("stfq", config.engine)));
  } else {
    fabric.set_host_port_discipline(0,
                                    std::make_unique<ByteQueue>(bottleneck));
  }

  // Zipf-skewed tenants, all incast to leaf 0.  flow_id == tenant, so the
  // STFQ rank program's per-flow virtual clock is a per-tenant clock.
  FairnessReport report;
  report.delivered_bytes.assign(static_cast<std::size_t>(config.tenants), 0);
  report.offered_bytes.assign(static_cast<std::size_t>(config.tenants), 0);
  Zipf zipf(static_cast<std::size_t>(config.tenants), config.zipf_skew);
  Xoshiro256 rng(config.seed);
  const std::int32_t kPktBytes = 1000;
  for (int i = 0; i < config.packets; ++i) {
    const int tenant = static_cast<int>(zipf.sample(rng));
    TracePacket p;
    p.arrival = i / config.packets_per_tick;
    p.flow_id = tenant;
    p.sport = 1000 + tenant;
    p.dport = 80;
    p.size_bytes = kPktBytes;
    const int src_leaf =
        config.num_leaves > 1 ? 1 + tenant % (config.num_leaves - 1) : 0;
    report.offered_bytes[static_cast<std::size_t>(tenant)] += p.size_bytes;
    fabric.inject(p, src_leaf, /*dst_leaf=*/0);
  }
  fabric.run();

  for (const DeliveredPacket& d : fabric.delivered()) {
    const auto tenant = static_cast<std::size_t>(d.pkt.flow_id);
    report.delivered_bytes.at(tenant) += d.pkt.size_bytes;
    report.delivered_total += d.pkt.size_bytes;
  }
  std::int64_t lo = report.delivered_bytes[0], hi = report.delivered_bytes[0];
  for (std::int64_t b : report.delivered_bytes) {
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  report.max_min_ratio = static_cast<double>(hi) /
                         static_cast<double>(std::max<std::int64_t>(1, lo));
  report.stats = fabric.stats();
  return report;
}

}  // namespace netsim
