#include "sim/netfabric.h"

#include <algorithm>
#include <stdexcept>

#include "sim/partition.h"

namespace netsim {

namespace {

// One compiled machine on a node.
class MachineEngine final : public SwitchEngine {
 public:
  explicit MachineEngine(banzai::Machine machine)
      : machine_(std::move(machine)) {}
  banzai::Packet process(banzai::Packet pkt) override {
    return machine_.process(std::move(pkt));
  }
  std::size_t num_fields() const override { return machine_.fields().size(); }
  banzai::Machine* machine() override { return &machine_; }

 private:
  banzai::Machine machine_;
};

// A multi-pipeline switch: per-flow state partitioned across slot replicas,
// the same placement FleetService uses (banzai/fleet.h).
class ShardEngine final : public SwitchEngine {
 public:
  ShardEngine(const banzai::Machine& prototype, std::size_t num_slots,
              std::size_t num_shards, std::vector<banzai::FieldId> flow_key)
      : num_fields_(prototype.fields().size()),
        core_(prototype, num_slots, num_shards, /*batch_size=*/1,
              std::move(flow_key)) {}
  banzai::Packet process(banzai::Packet pkt) override {
    std::size_t slot = core_.slot_of(pkt);
    banzai::Packet out;
    core_.drain(slot % core_.num_shards(), &slot, &pkt, 1, &out);
    return out;
  }
  std::size_t num_fields() const override { return num_fields_; }

 private:
  std::size_t num_fields_;
  banzai::ShardCore core_;
};

}  // namespace

FieldBinding FieldBinding::resolve(
    const banzai::FieldTable& fields,
    const std::map<std::string, std::string>& output_map) {
  auto in = [&fields](const char* name) { return fields.try_id_of(name); };
  auto out = [&fields, &output_map](const char* name) {
    auto it = output_map.find(name);
    if (it != output_map.end()) return fields.try_id_of(it->second);
    return fields.try_id_of(name);
  };
  FieldBinding b;
  b.now = in("now");
  b.arrival = in("arrival");
  b.size_bytes = in("size_bytes");
  b.flow_id = in("flow_id");
  b.sport = in("sport");
  b.dport = in("dport");
  b.src = in("src");
  b.dst = in("dst");
  b.qdelay = in("qdelay");
  b.util = in("util");
  b.path_id = in("path_id");
  b.mark = out("mark");
  b.best_path_now = out("best_path_now");
  return b;
}

struct NetFabric::Hosted {
  std::unique_ptr<SwitchEngine> engine;
  FieldBinding binding;
};

struct NetFabric::Flight {
  TracePacket pkt;
  int src_leaf = 0;
  int dst_leaf = 0;
  int path = -1;
  std::int64_t injected = 0;
  std::int64_t queue_delay = 0;
  std::int64_t observed_util = 0;
  bool ecn = false;
  banzai::Value ingress_mark = 0;
  QueueSample last_hop;
  // Arrival-side sample while the packet waits in a scheduled (PIFO) port;
  // service_port() back-fills departure/sojourn when the packet leaves.
  // Hops are strictly sequential, so one slot per flight suffices.
  QueueSample pending;
  banzai::Packet ingress_view;
};

struct NetFabric::Event {
  std::int64_t tick = 0;
  std::uint64_t seq = 0;
  int kind = 0;  // Kind below
  std::uint32_t flight = 0;
};

enum EventKind {
  kInject = 0,
  kArriveSpine,
  kArriveEgress,
  kDeliver,
  kFeedback,
  // Service completion on a scheduled discipline; the event's `flight` field
  // carries the linear port id, not a flight index.
  kPortService,
};

struct NetFabric::EventOrder {
  // std::push_heap builds a max-heap; invert for earliest-first.
  bool operator()(const Event& a, const Event& b) const {
    if (a.tick != b.tick) return a.tick > b.tick;
    return a.seq > b.seq;
  }
};

NetFabric::NetFabric(const NetFabricConfig& config) : config_(config) {
  if (config_.num_leaves < 1)
    throw std::invalid_argument("NetFabric: need at least one leaf");
  if (config_.num_spines < 0)
    throw std::invalid_argument("NetFabric: negative spine count");
  const auto leaves = static_cast<std::size_t>(config_.num_leaves);
  const auto spines = static_cast<std::size_t>(config_.num_spines);
  ingress_.resize(leaves);
  egress_.resize(leaves);
  spines_.resize(spines);
  uplinks_.resize(leaves * spines);
  downlinks_.resize(spines * leaves);
  host_ports_.resize(leaves);
  for (auto& q : uplinks_) q = std::make_unique<ByteQueue>(config_.port);
  for (auto& q : downlinks_) q = std::make_unique<ByteQueue>(config_.port);
  for (auto& q : host_ports_) q = std::make_unique<ByteQueue>(config_.port);
  armed_.assign(uplinks_.size() + downlinks_.size() + host_ports_.size(), -1);
  probe_rr_.assign(leaves, 0);
}

NetFabric::~NetFabric() = default;

void NetFabric::host_ingress(int leaf, banzai::Machine machine,
                             FieldBinding binding) {
  ingress_.at(static_cast<std::size_t>(leaf)) = {
      std::make_unique<MachineEngine>(std::move(machine)), binding};
}

void NetFabric::host_egress(int leaf, banzai::Machine machine,
                            FieldBinding binding) {
  egress_.at(static_cast<std::size_t>(leaf)) = {
      std::make_unique<MachineEngine>(std::move(machine)), binding};
}

void NetFabric::host_spine(int spine, banzai::Machine machine,
                           FieldBinding binding) {
  spines_.at(static_cast<std::size_t>(spine)) = {
      std::make_unique<MachineEngine>(std::move(machine)), binding};
}

void NetFabric::host_ingress_sharded(int leaf, const banzai::Machine& prototype,
                                     std::size_t num_slots,
                                     std::size_t num_shards,
                                     std::vector<banzai::FieldId> flow_key,
                                     FieldBinding binding) {
  ingress_.at(static_cast<std::size_t>(leaf)) = {
      std::make_unique<ShardEngine>(prototype, num_slots, num_shards,
                                    std::move(flow_key)),
      binding};
}

namespace {
// The historical ByteQueue& accessors promise the concrete default type.
ByteQueue& as_byte_queue(QueueDiscipline& q) {
  auto* b = dynamic_cast<ByteQueue*>(&q);
  if (b == nullptr)
    throw std::logic_error(
        "NetFabric: port runs a non-ByteQueue discipline; use the "
        "*_discipline accessors");
  return *b;
}
}  // namespace

std::uint32_t NetFabric::uplink_port_id(int leaf, int spine) const {
  return static_cast<std::uint32_t>(
      static_cast<std::size_t>(leaf) *
          static_cast<std::size_t>(config_.num_spines) +
      static_cast<std::size_t>(spine));
}
std::uint32_t NetFabric::downlink_port_id(int spine, int leaf) const {
  return static_cast<std::uint32_t>(
      uplinks_.size() +
      static_cast<std::size_t>(spine) *
          static_cast<std::size_t>(config_.num_leaves) +
      static_cast<std::size_t>(leaf));
}
std::uint32_t NetFabric::host_port_id(int leaf) const {
  return static_cast<std::uint32_t>(uplinks_.size() + downlinks_.size() +
                                    static_cast<std::size_t>(leaf));
}
QueueDiscipline& NetFabric::port(std::uint32_t port_id) {
  std::size_t i = port_id;
  if (i < uplinks_.size()) return *uplinks_[i];
  i -= uplinks_.size();
  if (i < downlinks_.size()) return *downlinks_[i];
  i -= downlinks_.size();
  return *host_ports_.at(i);
}

QueueDiscipline& NetFabric::uplink_discipline(int leaf, int spine) {
  return *uplinks_.at(uplink_port_id(leaf, spine));
}
QueueDiscipline& NetFabric::downlink_discipline(int spine, int leaf) {
  return *downlinks_.at(downlink_port_id(spine, leaf) - uplinks_.size());
}
QueueDiscipline& NetFabric::host_port_discipline(int leaf) {
  return *host_ports_.at(static_cast<std::size_t>(leaf));
}
void NetFabric::set_uplink_discipline(int leaf, int spine,
                                      std::unique_ptr<QueueDiscipline> q) {
  const std::uint32_t pid = uplink_port_id(leaf, spine);
  uplinks_.at(pid) = std::move(q);
  armed_.at(pid) = -1;
}
void NetFabric::set_downlink_discipline(int spine, int leaf,
                                        std::unique_ptr<QueueDiscipline> q) {
  const std::uint32_t pid = downlink_port_id(spine, leaf);
  downlinks_.at(pid - uplinks_.size()) = std::move(q);
  armed_.at(pid) = -1;
}
void NetFabric::set_host_port_discipline(int leaf,
                                         std::unique_ptr<QueueDiscipline> q) {
  const std::uint32_t pid = host_port_id(leaf);
  host_ports_.at(static_cast<std::size_t>(leaf)) = std::move(q);
  armed_.at(pid) = -1;
}

ByteQueue& NetFabric::uplink(int leaf, int spine) {
  return as_byte_queue(uplink_discipline(leaf, spine));
}
ByteQueue& NetFabric::downlink(int spine, int leaf) {
  return as_byte_queue(downlink_discipline(spine, leaf));
}
ByteQueue& NetFabric::host_port(int leaf) {
  return as_byte_queue(host_port_discipline(leaf));
}
const ByteQueue& NetFabric::uplink(int leaf, int spine) const {
  return const_cast<NetFabric*>(this)->uplink(leaf, spine);
}
const ByteQueue& NetFabric::downlink(int spine, int leaf) const {
  return const_cast<NetFabric*>(this)->downlink(spine, leaf);
}
const ByteQueue& NetFabric::host_port(int leaf) const {
  return const_cast<NetFabric*>(this)->host_port(leaf);
}

std::int64_t NetFabric::max_uplink_accepted_bytes() const {
  std::int64_t best = 0;
  for (const auto& q : uplinks_) best = std::max(best, q->accepted_bytes());
  return best;
}

std::int64_t NetFabric::total_uplink_accepted_bytes() const {
  std::int64_t total = 0;
  for (const auto& q : uplinks_) total += q->accepted_bytes();
  return total;
}

banzai::Machine* NetFabric::ingress_machine(int leaf) {
  auto& h = ingress_.at(static_cast<std::size_t>(leaf));
  return h.engine ? h.engine->machine() : nullptr;
}

banzai::Machine* NetFabric::egress_machine(int leaf) {
  auto& h = egress_.at(static_cast<std::size_t>(leaf));
  return h.engine ? h.engine->machine() : nullptr;
}

void NetFabric::schedule(std::int64_t tick, int kind, std::uint32_t flight) {
  heap_.push_back(Event{tick, next_seq_++, kind, flight});
  std::push_heap(heap_.begin(), heap_.end(), EventOrder{});
}

void NetFabric::inject(const TracePacket& pkt, int src_leaf, int dst_leaf) {
  if (src_leaf < 0 || src_leaf >= config_.num_leaves || dst_leaf < 0 ||
      dst_leaf >= config_.num_leaves)
    throw std::out_of_range("NetFabric::inject: leaf index out of range");
  Flight f;
  f.pkt = pkt;
  f.src_leaf = src_leaf;
  f.dst_leaf = dst_leaf;
  f.injected = pkt.arrival;
  flights_.push_back(std::move(f));
  ++stats_.injected;
  schedule(pkt.arrival, kInject,
           static_cast<std::uint32_t>(flights_.size() - 1));
}

void NetFabric::run() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
    const Event ev = heap_.back();
    heap_.pop_back();
    ++stats_.events;
    dispatch(ev);
  }
}

void NetFabric::dispatch(const Event& ev) {
  switch (ev.kind) {
    case kInject:
      on_inject(ev.flight, ev.tick);
      break;
    case kArriveSpine:
      on_arrive_spine(ev.flight, ev.tick);
      break;
    case kArriveEgress:
      on_arrive_egress(ev.flight, ev.tick);
      break;
    case kDeliver:
      on_deliver(ev.flight, ev.tick);
      break;
    case kFeedback:
      on_feedback(ev.flight, ev.tick);
      break;
    case kPortService:
      on_port_service(ev.flight, ev.tick);
      break;
  }
}

bool NetFabric::offer_port(std::uint32_t port_id, std::uint32_t idx,
                           std::int64_t tick, int next_kind,
                           std::int64_t latency) {
  Flight& f = flights_[idx];
  QueueDiscipline& q = port(port_id);
  QueueItem item;
  item.size_bytes = f.pkt.size_bytes;
  item.flow_id = f.pkt.flow_id;
  item.tenant_id = f.pkt.dport;  // scenarios encode the tenant class in dport
  item.cookie = idx;
  const QueueSample s = q.offer(tick, item);

  if (q.departure_known_at_offer()) {
    if (s.dropped) {
      ++stats_.dropped;
      return false;
    }
    account_hop(f, s);
    if (next_kind == kDeliver) f.last_hop = s;
    schedule(s.departure + latency, next_kind, idx);
    return true;
  }

  // Scheduled discipline: keep the arrival-side sample; the continuation
  // fires from service_port() when the packet actually departs.  An offer
  // can complete an earlier service at this very tick, so drain (and count
  // evictions the admission caused) before returning.
  const bool accepted = !s.dropped;
  if (s.dropped)
    ++stats_.dropped;
  else
    f.pending = s;
  service_port(port_id, tick);
  return accepted;
}

void NetFabric::service_port(std::uint32_t port_id, std::int64_t tick) {
  QueueDiscipline& q = port(port_id);
  const std::size_t nu = uplinks_.size();
  const std::size_t nd = downlinks_.size();
  while (auto d = q.pop_departed(tick)) {
    const auto idx = static_cast<std::uint32_t>(d->item.cookie);
    if (d->dropped) {
      // A bounded-size eviction: the packet was accepted earlier but loses
      // its buffer slot now.  Its flight ends here.
      ++stats_.dropped;
      continue;
    }
    Flight& f = flights_[idx];
    QueueSample s = f.pending;
    s.departure = d->tick;
    s.sojourn = d->tick - s.arrival;
    account_hop(f, s);
    if (port_id < nu) {
      schedule(d->tick + config_.link_latency, kArriveSpine, idx);
    } else if (port_id < nu + nd) {
      schedule(d->tick + config_.link_latency, kArriveEgress, idx);
    } else {
      f.last_hop = s;
      schedule(d->tick, kDeliver, idx);
    }
  }
  // Arm the next completion.  Service is non-preemptive, so per-port finish
  // ticks strictly increase and one armed slot dedups exactly.
  const auto next = q.next_departure();
  if (next.has_value() && armed_[port_id] != *next) {
    armed_[port_id] = *next;
    schedule(*next, kPortService, port_id);
  }
}

void NetFabric::on_port_service(std::uint32_t port_id, std::int64_t tick) {
  service_port(port_id, tick);
}

// The metadata every hosted program sees regardless of role; callers layer
// the role-specific fields (probe util, qdelay, path) on top.  `remote_leaf`
// is the far end of the flow: the destination at ingress, the source at
// egress — the key CONGA-style per-destination tables use.
banzai::Packet NetFabric::make_view(const Hosted& node, std::int64_t tick,
                                    const Flight& f, int remote_leaf) const {
  const FieldBinding& b = node.binding;
  banzai::Packet p(node.engine->num_fields());
  if (b.now) p.set(*b.now, static_cast<banzai::Value>(tick));
  if (b.arrival) p.set(*b.arrival, static_cast<banzai::Value>(tick));
  if (b.size_bytes) p.set(*b.size_bytes, f.pkt.size_bytes);
  if (b.flow_id) p.set(*b.flow_id, f.pkt.flow_id);
  if (b.sport) p.set(*b.sport, f.pkt.sport);
  if (b.dport) p.set(*b.dport, f.pkt.dport);
  if (b.src) p.set(*b.src, remote_leaf);
  if (b.dst) p.set(*b.dst, f.dst_leaf);
  return p;
}

void NetFabric::account_hop(Flight& f, const QueueSample& sample) {
  f.queue_delay += sample.sojourn;
  f.observed_util = std::max(
      f.observed_util,
      sample.qlen_bytes + static_cast<std::int64_t>(sample.size_bytes));
  f.ecn = f.ecn || sample.ecn_marked;
}

int NetFabric::route(const Flight& f, const banzai::Packet* processed,
                     const FieldBinding& binding) const {
  const int spines = config_.num_spines;
  if (processed != nullptr && binding.best_path_now.has_value()) {
    const auto v =
        static_cast<std::int64_t>(processed->get(*binding.best_path_now));
    return static_cast<int>(((v % spines) + spines) % spines);
  }
  // Flow-hash ECMP: each flow pinned to one path ("random placement").
  const std::uint64_t key =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.pkt.flow_id)) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.pkt.sport))
       << 32);
  return static_cast<int>(mix64(key ^ config_.seed) %
                          static_cast<std::uint64_t>(spines));
}

void NetFabric::on_inject(std::uint32_t idx, std::int64_t tick) {
  Flight& f = flights_[idx];
  Hosted& node = ingress_[static_cast<std::size_t>(f.src_leaf)];
  const bool local = f.src_leaf == f.dst_leaf || config_.num_spines == 0;

  const banzai::Packet* view = nullptr;
  if (node.engine) {
    const FieldBinding& b = node.binding;
    banzai::Packet p = make_view(node, tick, f, /*remote_leaf=*/f.dst_leaf);
    if (!local && b.util && b.path_id) {
      // Piggybacked local feedback: each packet refreshes the program's view
      // of one rotating uplink, the switch's own honest congestion sample.
      int& rr = probe_rr_[static_cast<std::size_t>(f.src_leaf)];
      const int probe = rr;
      rr = (rr + 1) % config_.num_spines;
      p.set(*b.path_id, probe);
      p.set(*b.util,
            static_cast<banzai::Value>(
                uplink_discipline(f.src_leaf, probe).backlog_bytes(tick)));
    }
    f.ingress_view = node.engine->process(std::move(p));
    if (b.mark) {
      f.ingress_mark = f.ingress_view.get(*b.mark);
      // Counted here, not at delivery: a later drop-tail loss must not erase
      // the ingress program's decision from the marking statistics.
      if (f.ingress_mark != 0) ++stats_.ingress_marks;
    }
    view = &f.ingress_view;
  }

  if (local) {
    offer_port(host_port_id(f.dst_leaf), idx, tick, kDeliver, /*latency=*/0);
    return;
  }

  f.path = route(f, view, node.binding);
  offer_port(uplink_port_id(f.src_leaf, f.path), idx, tick, kArriveSpine,
             config_.link_latency);
}

void NetFabric::on_arrive_spine(std::uint32_t idx, std::int64_t tick) {
  Flight& f = flights_[idx];
  Hosted& node = spines_[static_cast<std::size_t>(f.path)];
  if (node.engine) {
    const FieldBinding& b = node.binding;
    banzai::Packet p = make_view(node, tick, f, /*remote_leaf=*/f.src_leaf);
    if (b.path_id) p.set(*b.path_id, f.path);
    if (b.util)
      p.set(*b.util,
            static_cast<banzai::Value>(
                downlink_discipline(f.path, f.dst_leaf).backlog_bytes(tick)));
    node.engine->process(std::move(p));
  }
  offer_port(downlink_port_id(f.path, f.dst_leaf), idx, tick, kArriveEgress,
             config_.link_latency);
}

void NetFabric::on_arrive_egress(std::uint32_t idx, std::int64_t tick) {
  const int dst_leaf = flights_[idx].dst_leaf;
  offer_port(host_port_id(dst_leaf), idx, tick, kDeliver, /*latency=*/0);
}

void NetFabric::on_deliver(std::uint32_t idx, std::int64_t tick) {
  Flight& f = flights_[idx];
  DeliveredPacket d;
  d.pkt = f.pkt;
  d.src_leaf = f.src_leaf;
  d.dst_leaf = f.dst_leaf;
  d.path = f.path;
  d.injected_tick = f.injected;
  d.delivered_tick = tick;
  d.queue_delay = f.queue_delay;
  d.observed_util = f.observed_util;
  d.ecn_marked = f.ecn;
  d.ingress_mark = f.ingress_mark;
  d.last_hop = f.last_hop;
  d.ingress_view = f.ingress_view;

  Hosted& node = egress_[static_cast<std::size_t>(f.dst_leaf)];
  if (node.engine) {
    const FieldBinding& b = node.binding;
    banzai::Packet p = make_view(node, tick, f, /*remote_leaf=*/f.src_leaf);
    if (b.qdelay) p.set(*b.qdelay, static_cast<banzai::Value>(f.queue_delay));
    if (b.path_id) p.set(*b.path_id, f.path);
    banzai::Packet out = node.engine->process(std::move(p));
    if (b.mark) d.egress_mark = out.get(*b.mark);
  }

  if (d.ecn_marked) ++stats_.ecn_marked;
  ++stats_.delivered;
  delivered_.push_back(std::move(d));

  // Close the loop: tell the ingress program how congested the path it chose
  // actually was (real CONGA piggybacks this on reverse traffic).
  if (f.path >= 0) {
    const Hosted& in = ingress_[static_cast<std::size_t>(f.src_leaf)];
    if (in.engine && in.binding.util && in.binding.path_id)
      schedule(tick + config_.feedback_latency, kFeedback,
               idx);
  }
}

void NetFabric::on_feedback(std::uint32_t idx, std::int64_t tick) {
  Flight& f = flights_[idx];
  Hosted& node = ingress_[static_cast<std::size_t>(f.src_leaf)];
  if (!node.engine) return;
  const FieldBinding& b = node.binding;
  // The feedback's `src` is the far leaf the path serves, same key as the
  // data packets that built the table.
  banzai::Packet p = make_view(node, tick, f, /*remote_leaf=*/f.dst_leaf);
  if (b.path_id) p.set(*b.path_id, f.path);
  if (b.util) p.set(*b.util, static_cast<banzai::Value>(f.observed_util));
  node.engine->process(std::move(p));
  ++stats_.feedback_packets;
}

std::pair<int, int> flow_endpoints(std::int32_t flow_id, int num_leaves,
                                   std::uint64_t salt) {
  const std::uint64_t h = mix64(
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(flow_id)) ^ salt);
  const auto leaves = static_cast<std::uint64_t>(num_leaves);
  const int src = static_cast<int>(h % leaves);
  int dst = static_cast<int>((h >> 32) % leaves);
  if (dst == src) dst = (dst + 1) % num_leaves;
  return {src, dst};
}

void sort_by_arrival(std::vector<TracePacket>& trace) {
  std::stable_sort(trace.begin(), trace.end(),
                   [](const TracePacket& a, const TracePacket& b) {
                     return a.arrival < b.arrival;
                   });
}

}  // namespace netsim
