// A miniature leaf-spine fabric model for the CONGA example: a set of paths
// between leaf pairs whose utilizations evolve as flows are placed on them.
// This provides the `util` / `path_id` feedback stream CONGA consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace netsim {

class LeafSpineFabric {
 public:
  LeafSpineFabric(int num_leaves, int num_paths, std::uint64_t seed)
      : num_leaves_(num_leaves),
        util_(static_cast<std::size_t>(num_leaves) *
                  static_cast<std::size_t>(num_paths),
              0),
        num_paths_(num_paths),
        rng_(seed) {}

  int num_paths() const { return num_paths_; }
  int num_leaves() const { return num_leaves_; }

  // Adds `bytes` of load to (leaf, path); returns the new utilization.
  std::int32_t add_load(int leaf, int path, std::int32_t bytes) {
    auto& u = util_[index(leaf, path)];
    u += bytes;
    return u;
  }

  // Ages all paths by draining a fraction of their load (called per epoch).
  void drain(std::int32_t bytes) {
    for (auto& u : util_) u = u > bytes ? u - bytes : 0;
  }

  // Random background churn: some paths pick up cross-traffic.
  void churn(std::int32_t max_bytes) {
    for (auto& u : util_)
      if (rng_.uniform() < 0.2)
        u += static_cast<std::int32_t>(rng_.below(
            static_cast<std::uint64_t>(max_bytes)));
  }

  std::int32_t utilization(int leaf, int path) const {
    return util_[index(leaf, path)];
  }

  // The true best (least utilized) path towards `leaf`.
  int best_path(int leaf) const {
    int best = 0;
    std::int32_t best_util = utilization(leaf, 0);
    for (int p = 1; p < num_paths_; ++p) {
      if (utilization(leaf, p) < best_util) {
        best_util = utilization(leaf, p);
        best = p;
      }
    }
    return best;
  }

 private:
  std::size_t index(int leaf, int path) const {
    return static_cast<std::size_t>(leaf) *
               static_cast<std::size_t>(num_paths_) +
           static_cast<std::size_t>(path);
  }

  int num_leaves_;
  std::vector<std::int32_t> util_;
  int num_paths_;
  Xoshiro256 rng_;
};

}  // namespace netsim
