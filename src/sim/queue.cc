#include "sim/queue.h"

#include <algorithm>

namespace netsim {

std::vector<QueueSample> simulate_queue(const std::vector<TracePacket>& trace,
                                        const QueueConfig& config) {
  std::vector<QueueSample> samples;
  samples.reserve(trace.size());

  // Virtual finish time of the last byte currently in the queue, measured in
  // "byte-ticks" at the service rate.
  std::int64_t busy_until = 0;       // tick when the server drains completely
  std::deque<std::pair<std::int64_t, std::int32_t>> backlog;  // (departs, sz)

  for (const auto& p : trace) {
    const std::int64_t now = p.arrival;
    // Drop served packets from the backlog view.
    while (!backlog.empty() && backlog.front().first <= now)
      backlog.pop_front();

    std::int64_t qbytes = 0;
    for (const auto& [dep, sz] : backlog) qbytes += sz;

    const std::int64_t start = std::max<std::int64_t>(now, busy_until);
    const std::int64_t service_ticks =
        (p.size_bytes + config.bytes_per_tick - 1) / config.bytes_per_tick;
    const std::int64_t departs = start + std::max<std::int64_t>(1, service_ticks);
    busy_until = departs;
    backlog.emplace_back(departs, p.size_bytes);

    QueueSample s;
    s.arrival = p.arrival;
    s.departure = static_cast<std::int32_t>(departs);
    s.sojourn = static_cast<std::int32_t>(departs - now);
    s.qlen_bytes = static_cast<std::int32_t>(qbytes);
    s.qlen_pkts = static_cast<std::int32_t>(backlog.size()) - 1;
    s.size_bytes = p.size_bytes;
    samples.push_back(s);
  }
  return samples;
}

}  // namespace netsim
