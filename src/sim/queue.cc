#include "sim/queue.h"

#include <algorithm>
#include <limits>

namespace netsim {

void FifoQueue::prune(std::int64_t now) {
  while (!backlog_.empty() && backlog_.front().first <= now) {
    backlog_bytes_ -= backlog_.front().second;
    backlog_.pop_front();
  }
}

std::int64_t FifoQueue::backlog_bytes(std::int64_t now) {
  prune(now);
  return backlog_bytes_;
}

std::int32_t FifoQueue::backlog_pkts(std::int64_t now) {
  prune(now);
  return static_cast<std::int32_t>(backlog_.size());
}

QueueSample FifoQueue::admit(std::int64_t now, const QueueItem& item) {
  const std::int32_t size_bytes = item.size_bytes;
  prune(now);

  QueueSample s;
  s.arrival = now;
  s.qlen_bytes = backlog_bytes_;
  s.qlen_pkts = static_cast<std::int32_t>(backlog_.size());
  s.size_bytes = size_bytes;

  if (config_.capacity_bytes >= 0 &&
      backlog_bytes_ + size_bytes > config_.capacity_bytes) {
    s.dropped = true;
    s.departure = now;
    s.sojourn = 0;
    return s;
  }

  s.ecn_marked = mark_on_admit(backlog_bytes_);

  const std::int64_t start = std::max<std::int64_t>(now, busy_until_);
  const std::int64_t service_ticks =
      (size_bytes + config_.bytes_per_tick - 1) / config_.bytes_per_tick;
  s.departure = start + std::max<std::int64_t>(1, service_ticks);
  s.sojourn = s.departure - now;
  busy_until_ = s.departure;
  backlog_.emplace_back(s.departure, size_bytes);
  backlog_bytes_ += size_bytes;
  return s;
}

std::vector<QueueSample> simulate_queue(const std::vector<TracePacket>& trace,
                                        QueueDiscipline& queue) {
  std::vector<QueueSample> samples;
  samples.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TracePacket& p = trace[i];
    QueueItem item;
    item.size_bytes = p.size_bytes;
    item.flow_id = p.flow_id;
    item.rank = 0;
    item.cookie = i;  // sample index, for departure back-fill below
    samples.push_back(queue.offer(p.arrival, item));
  }
  if (queue.departure_known_at_offer()) return samples;

  // Scheduled discipline: drain everything still queued and back-fill each
  // accepted packet's sample with its real departure.  Evicted packets turn
  // into dropped samples at their eviction tick.
  const std::int64_t horizon = std::numeric_limits<std::int64_t>::max();
  while (auto d = queue.pop_departed(horizon)) {
    QueueSample& s = samples.at(static_cast<std::size_t>(d->item.cookie));
    s.departure = d->tick;
    s.sojourn = d->tick - s.arrival;
    s.dropped = d->dropped;
  }
  return samples;
}

std::vector<QueueSample> simulate_queue(const std::vector<TracePacket>& trace,
                                        const QueueConfig& config) {
  ByteQueue queue(config);
  return simulate_queue(trace, queue);
}

}  // namespace netsim
