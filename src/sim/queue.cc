#include "sim/queue.h"

#include <algorithm>

namespace netsim {

void ByteQueue::prune(std::int64_t now) {
  while (!backlog_.empty() && backlog_.front().first <= now) {
    backlog_bytes_ -= backlog_.front().second;
    backlog_.pop_front();
  }
}

std::int64_t ByteQueue::backlog_bytes(std::int64_t now) {
  prune(now);
  return backlog_bytes_;
}

std::int32_t ByteQueue::backlog_pkts(std::int64_t now) {
  prune(now);
  return static_cast<std::int32_t>(backlog_.size());
}

QueueSample ByteQueue::offer(std::int64_t now, std::int32_t size_bytes) {
  prune(now);
  ++offered_pkts_;
  offered_bytes_ += size_bytes;

  QueueSample s;
  s.arrival = now;
  s.qlen_bytes = backlog_bytes_;
  s.qlen_pkts = static_cast<std::int32_t>(backlog_.size());
  s.size_bytes = size_bytes;

  if (config_.capacity_bytes >= 0 &&
      backlog_bytes_ + size_bytes > config_.capacity_bytes) {
    s.dropped = true;
    s.departure = now;
    s.sojourn = 0;
    ++dropped_pkts_;
    dropped_bytes_ += size_bytes;
    return s;
  }

  if (config_.ecn_threshold_bytes >= 0 &&
      backlog_bytes_ >= config_.ecn_threshold_bytes) {
    s.ecn_marked = true;
    ++ecn_marked_pkts_;
  }

  const std::int64_t start = std::max<std::int64_t>(now, busy_until_);
  const std::int64_t service_ticks =
      (size_bytes + config_.bytes_per_tick - 1) / config_.bytes_per_tick;
  s.departure = start + std::max<std::int64_t>(1, service_ticks);
  s.sojourn = s.departure - now;
  busy_until_ = s.departure;
  backlog_.emplace_back(s.departure, size_bytes);
  backlog_bytes_ += size_bytes;
  return s;
}

std::vector<QueueSample> simulate_queue(const std::vector<TracePacket>& trace,
                                        const QueueConfig& config) {
  ByteQueue queue(config);
  std::vector<QueueSample> samples;
  samples.reserve(trace.size());
  for (const auto& p : trace)
    samples.push_back(queue.offer(p.arrival, p.size_bytes));
  return samples;
}

}  // namespace netsim
