#include "sim/tracegen.h"

#include <algorithm>

namespace netsim {

std::vector<TracePacket> generate_flow_trace(const FlowTraceConfig& config) {
  Xoshiro256 rng(config.seed);
  Zipf zipf(config.num_flows, config.zipf_skew);

  struct FlowState {
    std::int64_t next_arrival = 0;
    bool in_burst = false;
  };
  std::vector<FlowState> flows(config.num_flows);

  std::vector<TracePacket> trace;
  trace.reserve(config.num_packets);
  std::int64_t clock = 0;
  for (std::size_t i = 0; i < config.num_packets; ++i) {
    const auto f = static_cast<std::int32_t>(zipf.sample(rng));
    FlowState& st = flows[static_cast<std::size_t>(f)];

    clock += 1;  // global line clock: one packet per tick
    std::int64_t arrival;
    if (!st.in_burst || clock - st.next_arrival > config.inter_burst_gap) {
      // new flowlet: the flow was idle long enough
      arrival = std::max(clock, st.next_arrival + config.inter_burst_gap);
      st.in_burst = true;
    } else {
      arrival = std::max(clock, st.next_arrival + config.intra_burst_gap);
    }
    st.next_arrival = arrival;
    if (rng.uniform() < config.burst_end_prob) st.in_burst = false;

    TracePacket p;
    p.arrival = arrival;
    p.flow_id = f;
    p.sport = 1024 + (f % 50000);
    p.dport = (f % 7 == 0) ? 80 : 443;
    p.srcip = 0x0a000000 + f;
    p.dstip = 0x0a800000 + (f % 512);
    p.proto = (f % 10 == 0) ? 17 : 6;
    p.size_bytes =
        static_cast<std::int32_t>(rng.uniform() < 0.3 ? 64 : rng.range(200, 1500));
    trace.push_back(p);
  }
  return trace;
}

std::vector<TracePacket> generate_arrival_trace(const ArrivalTraceConfig& c) {
  Xoshiro256 rng(c.seed);
  std::vector<TracePacket> trace;
  trace.reserve(c.num_packets);
  std::int64_t clock = 0;
  for (std::size_t i = 0; i < c.num_packets; ++i) {
    // Geometric inter-arrival with mean 1/load.
    const double u = rng.uniform();
    const int gap = 1 + static_cast<int>(-std::log(1.0 - u) / c.load);
    clock += gap;
    TracePacket p;
    p.arrival = clock;
    p.flow_id = static_cast<std::int32_t>(rng.below(64));
    p.size_bytes = static_cast<std::int32_t>(
        std::clamp<std::int64_t>(rng.range(64, 2 * c.mean_size_bytes), 64, 1500));
    trace.push_back(p);
  }
  return trace;
}

}  // namespace netsim
