// NetFabric: a deterministic discrete-event simulator for a leaf-spine
// network whose switches run compiled Banzai machines.
//
// Topology (the CONGA/§5.3 setting): `num_leaves` leaf switches, each
// connected to every one of `num_spines` spine switches.  A packet injected
// at its ingress leaf traverses
//
//     ingress leaf --uplink--> spine --downlink--> egress leaf --host port-->
//
// where the spine index *is* the path id.  Every directed hop owns a
// QueueDiscipline (sim/queue.h) — by default a ByteQueue, a finite drop-tail
// buffer served at a byte rate with an optional ECN marking threshold; any
// port can be swapped for another discipline (e.g. the machine-ranked
// PifoQueue of sim/sched.h), whose scheduled departures the fabric drives
// with port-service events.  Links add a fixed latency.
// Traffic between co-located hosts (src_leaf == dst_leaf, or a fabric with
// zero spines) goes straight to the destination leaf's host port.
//
// Nodes host compiled programs in three roles, each seeing an honest view of
// fabric state through a FieldBinding:
//   * ingress  — runs on every injected packet at its source leaf and on
//     CONGA-style feedback; its `best_path_now` output (when the program
//     computes one) chooses the packet's path, otherwise flow-hash ECMP pins
//     each flow to a path.
//   * spine    — runs on packets transiting a spine switch (monitoring,
//     in-network measurement).
//   * egress   — runs at delivery, when the fabric knows the packet's total
//     queueing delay (the AQM role: CoDel's `qdelay` input).
//
// The feedback loop is what distinguishes this from the seed's open-loop
// LeafSpineFabric: queue occupancy observed by packets in flight is carried
// back to the ingress program (`util`/`path_id` fields), whose state then
// decides future paths — congestion control closes over the fabric's own
// queues.  Determinism: events execute in (tick, schedule order); the only
// randomness is the caller's trace and the seed salting ECMP placement.
//
// A node can also host a ShardCore — the multi-pipeline switch from the
// fleet runtime — in place of a single Machine; per-flow state then lives in
// the slot the flow hashes to, exactly as in FleetService.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "banzai/fleet.h"
#include "banzai/machine.h"
#include "banzai/packet.h"
#include "sim/queue.h"
#include "sim/tracegen.h"

namespace netsim {

// Maps fabric-supplied metadata onto the packet fields a hosted program
// declares.  Unset entries are simply not bound, so any corpus program can be
// dropped onto a node: it sees the subset of fabric state it asks for.
struct FieldBinding {
  // Inputs, written before the program runs.
  std::optional<banzai::FieldId> now;         // current tick
  std::optional<banzai::FieldId> arrival;     // alias for `now` (flowlets)
  std::optional<banzai::FieldId> size_bytes;  // packet length
  std::optional<banzai::FieldId> flow_id;
  std::optional<banzai::FieldId> sport, dport;
  // `src` is bound to the *remote* leaf (ingress role: the destination leaf;
  // egress role: the source leaf) — the key CONGA's per-destination tables
  // use, matching real CONGA where feedback arrives tagged with the far leaf.
  std::optional<banzai::FieldId> src;
  std::optional<banzai::FieldId> dst;      // destination leaf, both roles
  std::optional<banzai::FieldId> qdelay;   // total queueing delay (egress)
  std::optional<banzai::FieldId> util;     // path congestion feedback, bytes
  std::optional<banzai::FieldId> path_id;  // path the `util` value measured
  // Outputs, read after the program runs.
  std::optional<banzai::FieldId> mark;           // AQM mark decision
  std::optional<banzai::FieldId> best_path_now;  // routing decision

  // Resolves the conventional field names against a program's FieldTable;
  // outputs are first translated through `output_map` (the compiler's
  // user-name -> final-SSA-name map) when present.
  static FieldBinding resolve(
      const banzai::FieldTable& fields,
      const std::map<std::string, std::string>& output_map = {});
};

// A switch's packet-processing engine: one compiled Machine, or a ShardCore
// treating the node as a multi-pipeline switch.
class SwitchEngine {
 public:
  virtual ~SwitchEngine() = default;
  virtual banzai::Packet process(banzai::Packet pkt) = 0;
  virtual std::size_t num_fields() const = 0;
  // The underlying single machine, when there is exactly one (for state
  // inspection in tests); nullptr for sharded engines.
  virtual banzai::Machine* machine() { return nullptr; }
};

struct NetFabricConfig {
  int num_leaves = 2;
  int num_spines = 2;
  QueueConfig port;                   // applied to every fabric port
  std::int64_t link_latency = 4;      // ticks per traversed link
  std::int64_t feedback_latency = 4;  // delivery -> ingress feedback delay
  std::uint64_t seed = 1;             // salts ECMP flow placement
};

struct DeliveredPacket {
  TracePacket pkt;
  int src_leaf = 0;
  int dst_leaf = 0;
  int path = -1;  // spine index, -1 for leaf-local delivery
  std::int64_t injected_tick = 0;
  std::int64_t delivered_tick = 0;
  std::int64_t queue_delay = 0;     // summed sojourn across traversed ports
  std::int64_t observed_util = 0;   // max backlog+self seen on fabric ports
  bool ecn_marked = false;          // any traversed port hit its ECN threshold
  banzai::Value ingress_mark = 0;   // ingress program's `mark` output
  banzai::Value egress_mark = 0;    // egress program's `mark` output
  QueueSample last_hop;             // sample from the destination host port
  banzai::Packet ingress_view;      // ingress program output (empty if none)
};

struct FabricStats {
  std::int64_t injected = 0;
  std::int64_t delivered = 0;
  std::int64_t dropped = 0;          // drop-tail losses at any port
  std::int64_t ecn_marked = 0;       // delivered packets with ECN set
  std::int64_t ingress_marks = 0;    // ingress `mark` outputs over ALL injected
                                     // packets, including later-dropped ones
  std::int64_t feedback_packets = 0; // CONGA feedback events processed
  std::int64_t events = 0;           // total discrete events executed
};

class NetFabric {
 public:
  explicit NetFabric(const NetFabricConfig& config);
  NetFabric(const NetFabric&) = delete;
  NetFabric& operator=(const NetFabric&) = delete;
  ~NetFabric();

  int num_leaves() const { return config_.num_leaves; }
  int num_spines() const { return config_.num_spines; }
  const NetFabricConfig& config() const { return config_; }

  // Hosts a program on a node (replacing any previous occupant).  The
  // machine is moved in; each node owns an independent replica.
  void host_ingress(int leaf, banzai::Machine machine, FieldBinding binding);
  void host_egress(int leaf, banzai::Machine machine, FieldBinding binding);
  void host_spine(int spine, banzai::Machine machine, FieldBinding binding);
  // Multi-pipeline variant: the node runs `prototype` as a ShardCore with
  // per-flow state partitioned across `num_slots` slot replicas.
  void host_ingress_sharded(int leaf, const banzai::Machine& prototype,
                            std::size_t num_slots, std::size_t num_shards,
                            std::vector<banzai::FieldId> flow_key,
                            FieldBinding binding);

  // Schedules a packet for injection at `src_leaf` at tick pkt.arrival,
  // destined for a host behind `dst_leaf`.  Events execute in tick order with
  // injection order breaking ties, so inject traces sorted by arrival.
  void inject(const TracePacket& pkt, int src_leaf, int dst_leaf);

  // Runs the simulation until every event (including feedback) has executed.
  void run();

  const std::vector<DeliveredPacket>& delivered() const { return delivered_; }
  const FabricStats& stats() const { return stats_; }

  // Port accessors (valid indices only; uplink/downlink require spines > 0).
  // Every port starts as a ByteQueue (drop-tail + ECN threshold from
  // config.port); these historical accessors return that concrete type and
  // throw std::logic_error if the port has been swapped to a non-FIFO
  // discipline — use the *_discipline accessors for those.
  ByteQueue& uplink(int leaf, int spine);
  ByteQueue& downlink(int spine, int leaf);
  ByteQueue& host_port(int leaf);
  const ByteQueue& uplink(int leaf, int spine) const;
  const ByteQueue& downlink(int spine, int leaf) const;
  const ByteQueue& host_port(int leaf) const;

  // Discipline-generic port access and replacement.  Swapping a discipline
  // resets that port's accounting (a new queue object); swap before
  // injecting traffic.  Scheduled disciplines (PIFO) are driven by port-
  // service events the fabric arms from next_departure().
  QueueDiscipline& uplink_discipline(int leaf, int spine);
  QueueDiscipline& downlink_discipline(int spine, int leaf);
  QueueDiscipline& host_port_discipline(int leaf);
  void set_uplink_discipline(int leaf, int spine,
                             std::unique_ptr<QueueDiscipline> q);
  void set_downlink_discipline(int spine, int leaf,
                               std::unique_ptr<QueueDiscipline> q);
  void set_host_port_discipline(int leaf, std::unique_ptr<QueueDiscipline> q);

  // Highest cumulative byte count accepted on any leaf->spine uplink — the
  // "max path utilization" the CONGA evaluation compares against random
  // placement (all runs over the same trace offer the same total bytes).
  std::int64_t max_uplink_accepted_bytes() const;
  std::int64_t total_uplink_accepted_bytes() const;

  // The single machine hosted at a node, when there is one (tests).
  banzai::Machine* ingress_machine(int leaf);
  banzai::Machine* egress_machine(int leaf);

 private:
  struct Hosted;
  struct Flight;
  struct Event;
  struct EventOrder;

  void dispatch(const Event& ev);
  banzai::Packet make_view(const Hosted& node, std::int64_t tick,
                           const Flight& f, int remote_leaf) const;
  void on_inject(std::uint32_t idx, std::int64_t tick);
  void on_arrive_spine(std::uint32_t idx, std::int64_t tick);
  void on_arrive_egress(std::uint32_t idx, std::int64_t tick);
  void on_deliver(std::uint32_t idx, std::int64_t tick);
  void on_feedback(std::uint32_t idx, std::int64_t tick);
  void schedule(std::int64_t tick, int kind, std::uint32_t flight);
  void account_hop(Flight& f, const QueueSample& sample);
  int route(const Flight& f, const banzai::Packet* processed,
            const FieldBinding& binding) const;

  // Scheduled-discipline plumbing.  Ports are addressed linearly — uplinks,
  // then downlinks, then host ports — so one event kind serves them all.
  std::uint32_t uplink_port_id(int leaf, int spine) const;
  std::uint32_t downlink_port_id(int spine, int leaf) const;
  std::uint32_t host_port_id(int leaf) const;
  QueueDiscipline& port(std::uint32_t port_id);
  // Offers to port `port_id` on behalf of flight `idx` and, for a FIFO
  // discipline, schedules `next_kind` at departure + `latency`; for a
  // scheduled discipline the continuation fires from service_port() when the
  // packet actually departs.  Returns false when the packet was dropped on
  // arrival (the caller's flight ends).
  bool offer_port(std::uint32_t port_id, std::uint32_t idx, std::int64_t tick,
                  int next_kind, std::int64_t latency);
  // Drains everything departed from a scheduled port by `tick` (served
  // packets continue their path, evictions die as drops) and arms the next
  // port-service event from next_departure().
  void service_port(std::uint32_t port_id, std::int64_t tick);
  void on_port_service(std::uint32_t port_id, std::int64_t tick);

  NetFabricConfig config_;
  std::vector<Hosted> ingress_;  // per leaf
  std::vector<Hosted> egress_;   // per leaf
  std::vector<Hosted> spines_;   // per spine
  // leaf * num_spines + spine / spine * num_leaves + leaf / per leaf.
  std::vector<std::unique_ptr<QueueDiscipline>> uplinks_;
  std::vector<std::unique_ptr<QueueDiscipline>> downlinks_;
  std::vector<std::unique_ptr<QueueDiscipline>> host_ports_;
  // Per linear port id: the departure tick a port-service event is armed
  // for, or -1.  Service is non-preemptive, so completion ticks only move
  // forward and one armed tick per port suffices.
  std::vector<std::int64_t> armed_;
  std::vector<int> probe_rr_;         // per leaf: rotating probe path

  std::vector<Flight> flights_;
  std::vector<Event> heap_;  // binary min-heap on (tick, seq)
  std::uint64_t next_seq_ = 0;
  std::vector<DeliveredPacket> delivered_;
  FabricStats stats_;
};

// Deterministic flow -> (src_leaf, dst_leaf) placement for multi-leaf
// scenarios: hash the flow id (salted) onto distinct leaves.  Shared by the
// CONGA example, the fabric tests and the throughput bench so they agree on
// what "a flow's endpoints" means.
std::pair<int, int> flow_endpoints(std::int32_t flow_id, int num_leaves,
                                   std::uint64_t salt);

// Stable-sorts a trace by arrival tick.  Fabric events execute in time
// order; flowlet traces are only per-flow monotone, so sort before
// injecting (ties keep trace order, matching inject order).
void sort_by_arrival(std::vector<TracePacket>& trace);

}  // namespace netsim
