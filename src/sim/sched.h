// Programmable packet scheduling: the PIFO queue discipline, ranked by
// compiled Banzai machines.
//
// The companion paper ("Programmable Packet Scheduling at Line Rate",
// PAPERS.md) observes that a push-in-first-out queue — insert by rank,
// always dequeue the minimum — plus a rank computed by exactly the packet
// transactions this repo compiles expresses a large family of schedulers:
// start-time fair queueing, token-bucket shaping, hierarchical schemes.
// PifoQueue is that primitive as a QueueDiscipline (sim/queue.h), so it
// drops into every NetFabric port and into simulate_queue:
//
//   * rank — read from the packet field a compiled machine computes
//     (RankMachine), or taken verbatim from QueueItem::rank when no machine
//     is bound.  The rank programs live in algorithms::rank_corpus().
//   * dequeue-min with deterministic FIFO tie-breaking: equal ranks leave in
//     admission order (each entry carries a monotone admission sequence).
//   * bounded size with lowest-priority (highest-rank) eviction: when the
//     buffer is full, worst-ranked *waiting* packets are evicted to make
//     room for a better-ranked arrival; an arrival that is itself worst is
//     dropped.  The packet in service is never preempted.
//
// Service is non-preemptive at config().bytes_per_tick: once the minimum-
// rank packet starts service its completion tick is fixed, which is why
// departures are scheduled (departure_known_at_offer() == false) and
// surface through next_departure()/pop_departed() rather than in the offer
// sample.
//
// run_fairness_scenario() is the NetFabric workload this enables: Zipf-
// skewed tenants incast into one leaf of a leaf-spine fabric, where
// STFQ-on-PIFO bounds the max/min per-tenant throughput ratio that a FIFO
// bottleneck lets collapse to the offered-load skew.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "banzai/kernel.h"
#include "banzai/machine.h"
#include "banzai/packet.h"
#include "sim/netfabric.h"
#include "sim/queue.h"

namespace netsim {

// The scheduler-side feedback a rank program may consume, filled by
// PifoQueue on every offer.
struct RankFeedback {
  std::int64_t vt = 0;       // virtual time: start rank of pkt in service
  std::int64_t refund = 0;   // flow's bytes evicted since its last offer
  std::int64_t trefund = 0;  // tenant's bytes evicted since its last offer
};

// A compiled machine bound as a rank function.  Inputs are resolved against
// the program's field table by convention, accepting both the rank corpus's
// names and the fabric's: flow ("flow" | "flow_id"), len ("len" |
// "size_bytes"), now ("now" | "arrival", the wall-clock tick), tenant
// ("tenant"), plus the scheduler feedback fields "vt", "refund" and
// "trefund" (see RankFeedback).  The rank output is `rank_field` translated
// through the compiler's output map.  The machine runs on whatever engine
// its toggle selects — the scheduler is a second consumer of all three
// engines.
class RankMachine {
 public:
  RankMachine(banzai::Machine machine,
              const std::map<std::string, std::string>& output_map,
              const std::string& rank_field);

  // Computes the rank of `item` arriving at tick `now` with scheduler
  // feedback `fb`, advancing the rank program's state (virtual clocks,
  // token buckets) exactly once.
  banzai::Value rank(std::int64_t now, const RankFeedback& fb,
                     const QueueItem& item);

  // Which feedback inputs the program declares — the scheduler only clears
  // a refund ledger the machine actually consumed.
  bool uses_refund() const { return refund_.has_value(); }
  bool uses_tenant_refund() const { return trefund_.has_value(); }

  banzai::Machine& machine() { return machine_; }
  const banzai::Machine& machine() const { return machine_; }

 private:
  banzai::Machine machine_;
  std::optional<banzai::FieldId> flow_, len_, now_, vt_, refund_, trefund_,
      tenant_;
  banzai::FieldId rank_id_ = 0;
};

// Compiles `rank_corpus()` entry `name` on the least expressive paper target
// that accepts it and binds its rank field, with the machine's engine toggle
// set to `engine`.  Throws std::out_of_range for unknown names.
RankMachine compile_rank_machine(
    const std::string& name,
    banzai::ExecEngine engine = banzai::ExecEngine::kKernel);

// The push-in-first-out discipline.  See the header comment for semantics.
class PifoQueue final : public QueueDiscipline {
 public:
  explicit PifoQueue(const QueueConfig& config);
  PifoQueue(const QueueConfig& config, RankMachine rank);

  bool departure_known_at_offer() const override { return false; }
  std::optional<std::int64_t> next_departure() const override;
  std::optional<Departed> pop_departed(std::int64_t now) override;
  std::int64_t backlog_bytes(std::int64_t now) override;
  std::int32_t backlog_pkts(std::int64_t now) override;
  std::int64_t busy_until() const override { return busy_until_; }

  // Post-acceptance evictions, a subset of dropped_pkts().
  std::int64_t evicted_pkts() const { return evicted_pkts_; }

  // The scheduler's virtual time: the largest start rank that has entered
  // service, fed back to the rank program as its `vt` input (so per-flow
  // clocks that raced ahead on dropped traffic rejoin the current round).
  std::int64_t virtual_time() const { return virtual_time_; }

  // The bound rank machine, nullptr when ranks come from QueueItem::rank.
  RankMachine* rank_machine() { return rank_ ? &*rank_ : nullptr; }

 protected:
  QueueSample admit(std::int64_t now, const QueueItem& item) override;

 private:
  struct Entry {
    std::int64_t rank = 0;
    std::uint64_t seq = 0;  // admission order: the FIFO tie-break
    QueueItem item;
    bool operator<(const Entry& o) const {
      if (rank != o.rank) return rank < o.rank;
      return seq < o.seq;
    }
  };
  struct InService {
    std::int64_t finish = 0;
    QueueItem item;
  };

  // Completes every service due by `now`, starting the next minimum-rank
  // packet back-to-back (work conserving, non-preemptive).
  void advance(std::int64_t now);
  void start_service(std::int64_t at);
  // Credits an evicted packet's bytes to the refund ledgers (only the ones
  // the bound rank program consumes).
  void credit_eviction(const QueueItem& victim);

  std::optional<RankMachine> rank_;
  // Eviction refund ledgers: bytes evicted per flow/tenant, owed to the
  // rank program's clocks.  An entry is cleared when the machine consumes
  // it (the offer's rank was kept); a rolled-back offer keeps the debt.
  std::map<std::int32_t, std::int64_t> flow_refund_;
  std::map<std::int32_t, std::int64_t> tenant_refund_;
  std::set<Entry> waiting_;           // ordered by (rank, admission seq)
  std::optional<InService> in_service_;
  std::deque<Departed> ready_;        // completed/evicted, not yet popped
  std::int64_t backlog_bytes_ = 0;    // waiting + in service
  std::int64_t busy_until_ = 0;
  std::int64_t virtual_time_ = 0;     // max start rank entered into service
  std::uint64_t next_seq_ = 0;
  std::int64_t evicted_pkts_ = 0;
};

// The fairness scenario: `tenants` Zipf-skewed tenants on a leaf-spine
// fabric all sending to leaf 0, whose host port is the bottleneck — an
// ECN-less drop-tail FIFO, or a PIFO running the STFQ rank program compiled
// on `engine`.  Every tenant offers more than its fair share, so delivered
// bytes measure what the discipline grants, not what the tenant asked for.
struct FairnessConfig {
  int num_leaves = 8;
  int num_spines = 8;
  int tenants = 8;
  int packets = 6000;             // total injected
  int packets_per_tick = 3;       // offered load (pkts are 1000 bytes)
  double zipf_skew = 1.0;         // tenant popularity skew
  std::uint64_t seed = 1;
  std::int64_t bytes_per_tick = 500;     // bottleneck service rate
  std::int64_t capacity_bytes = 20000;   // bottleneck buffer
  bool use_pifo = false;                 // false: drop-tail FIFO bottleneck
  banzai::ExecEngine engine = banzai::ExecEngine::kKernel;
};

struct FairnessReport {
  std::vector<std::int64_t> delivered_bytes;  // per tenant
  std::vector<std::int64_t> offered_bytes;    // per tenant
  std::int64_t delivered_total = 0;
  // max/min over per-tenant delivered bytes (min clamped to 1 so a starved
  // tenant yields a huge, finite ratio).
  double max_min_ratio = 0.0;
  FabricStats stats;
};

FairnessReport run_fairness_scenario(const FairnessConfig& config);

}  // namespace netsim
