// Deterministic random-number generation for workloads.
//
// Self-contained SplitMix64 / xoshiro256** implementation so traces are
// reproducible bit-for-bit across platforms and standard-library versions
// (std::mt19937 is portable, but distributions are not).
#pragma once

#include <cstdint>

namespace netsim {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n) without modulo bias for small n (Lemire's method).
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace netsim
