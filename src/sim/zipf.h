// Zipfian sampler over {0, ..., n-1}: flow popularity in real traffic is
// heavy-tailed, which is exactly what sketch-based measurement algorithms
// (heavy hitters, NetFlow) are designed for.
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "sim/rng.h"

namespace netsim {

class Zipf {
 public:
  // Requires n >= 1: an empty support has no distribution (the seed version
  // dereferenced cdf_.back() on an empty vector — UB).
  Zipf(std::size_t n, double skew) : cdf_(n) {
    if (n == 0)
      throw std::invalid_argument("Zipf: support size must be >= 1");
    std::vector<double> weight(n);
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      weight[i] = 1.0 / std::pow(static_cast<double>(i + 1), skew);
      total += weight[i];
    }
    double acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += weight[i] / total;
      cdf_[i] = acc;
    }
    cdf_.back() = 1.0;
  }

  std::size_t sample(Xoshiro256& rng) const {
    const double u = rng.uniform();
    // Binary search the CDF.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace netsim
