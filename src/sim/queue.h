// A deterministic FIFO queue simulator: produces per-packet sojourn times and
// queue lengths for the AQM algorithms (HULL, AVQ, CoDel).  Service is
// byte-based at a fixed line rate.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/tracegen.h"

namespace netsim {

struct QueueSample {
  std::int32_t arrival = 0;       // packet arrival tick
  std::int32_t departure = 0;     // tick the packet finished service
  std::int32_t sojourn = 0;       // departure - arrival (queueing delay)
  std::int32_t qlen_bytes = 0;    // backlog on arrival, bytes
  std::int32_t qlen_pkts = 0;     // backlog on arrival, packets
  std::int32_t size_bytes = 0;
};

struct QueueConfig {
  std::int32_t bytes_per_tick = 1000;  // service rate
};

// Runs the trace through the queue; one sample per packet, in arrival order.
std::vector<QueueSample> simulate_queue(const std::vector<TracePacket>& trace,
                                        const QueueConfig& config);

}  // namespace netsim
