// A deterministic FIFO queue simulator: produces per-packet sojourn times and
// queue lengths for the AQM algorithms (HULL, AVQ, CoDel).  Service is
// byte-based at a fixed line rate.
//
// The core is ByteQueue, a single output port with a finite drop-tail buffer
// and an optional ECN marking threshold; simulate_queue runs a whole trace
// through one ByteQueue, and NetFabric instantiates one ByteQueue per fabric
// port.  All clocks are 64-bit: an overloaded queue's departure horizon grows
// without bound, so 32-bit tick arithmetic silently overflows on long traces
// (the seed stored int64 departures into int32 fields).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/tracegen.h"

namespace netsim {

struct QueueSample {
  std::int64_t arrival = 0;       // packet arrival tick
  std::int64_t departure = 0;     // tick the packet finished service
  std::int64_t sojourn = 0;       // departure - arrival (queueing delay)
  std::int64_t qlen_bytes = 0;    // backlog on arrival, bytes
  std::int32_t qlen_pkts = 0;     // backlog on arrival, packets
  std::int32_t size_bytes = 0;
  bool dropped = false;           // drop-tail: buffer was full on arrival
  bool ecn_marked = false;        // backlog was at or above the ECN threshold
};

struct QueueConfig {
  std::int64_t bytes_per_tick = 1000;     // service rate
  std::int64_t capacity_bytes = -1;       // drop-tail buffer; < 0 = infinite
  std::int64_t ecn_threshold_bytes = -1;  // mark when backlog >= this; < 0 = off
};

// One output port: byte-rate service, drop-tail buffer, ECN hook.  All
// methods are deterministic; time only moves forward through the `now`
// arguments the caller passes.
class ByteQueue {
 public:
  ByteQueue() = default;
  explicit ByteQueue(const QueueConfig& config) : config_(config) {}

  const QueueConfig& config() const { return config_; }

  // Offers one packet at tick `now` (must be >= every earlier `now`).  On
  // accept, the sample carries the departure tick; on drop-tail it carries
  // dropped = true with departure == arrival.  qlen_* report the backlog as
  // the packet found it, before its own enqueue.
  QueueSample offer(std::int64_t now, std::int32_t size_bytes);

  // Unserved bytes in the buffer at tick `now` (prunes departed packets).
  std::int64_t backlog_bytes(std::int64_t now);
  // Unserved packets in the buffer at tick `now`.
  std::int32_t backlog_pkts(std::int64_t now);

  // Tick at which the server drains completely.
  std::int64_t busy_until() const { return busy_until_; }

  // Cumulative accounting since construction.
  std::int64_t offered_pkts() const { return offered_pkts_; }
  std::int64_t accepted_pkts() const { return offered_pkts_ - dropped_pkts_; }
  std::int64_t dropped_pkts() const { return dropped_pkts_; }
  std::int64_t offered_bytes() const { return offered_bytes_; }
  std::int64_t accepted_bytes() const { return offered_bytes_ - dropped_bytes_; }
  std::int64_t dropped_bytes() const { return dropped_bytes_; }
  std::int64_t ecn_marked_pkts() const { return ecn_marked_pkts_; }

 private:
  void prune(std::int64_t now);

  QueueConfig config_;
  std::int64_t busy_until_ = 0;
  std::int64_t backlog_bytes_ = 0;  // bytes of the packets in backlog_
  std::deque<std::pair<std::int64_t, std::int32_t>> backlog_;  // (departs, sz)

  std::int64_t offered_pkts_ = 0;
  std::int64_t dropped_pkts_ = 0;
  std::int64_t offered_bytes_ = 0;
  std::int64_t dropped_bytes_ = 0;
  std::int64_t ecn_marked_pkts_ = 0;
};

// Runs the trace through one queue; one sample per packet, in arrival order.
// Dropped packets still produce a sample (dropped = true) so callers can
// account for every offered packet.
std::vector<QueueSample> simulate_queue(const std::vector<TracePacket>& trace,
                                        const QueueConfig& config);

}  // namespace netsim
