// The queue-discipline layer: deterministic single-port packet queues that
// produce per-packet sojourn times and queue lengths.  Service is byte-based
// at a fixed line rate.
//
// QueueDiscipline is the abstraction every consumer runs on — NetFabric's
// uplinks/downlinks/host ports and the standalone simulate_queue driver use
// only this interface, so scheduling policy is data, not fabric code.  Two
// discipline families ship here:
//
//   * FifoQueue — work order is arrival order, the departure tick is known
//     the moment a packet is accepted (departure_known_at_offer() == true),
//     and a finite buffer drops at the tail.  Pure drop-tail.
//   * ByteQueue — FifoQueue plus an ECN marking threshold on the backlog.
//     This is the historical name the fabric and the AQM examples use; its
//     offer() math is unchanged from when it was the only queue.
//
// sim/sched.h adds PifoQueue, the push-in-first-out discipline whose work
// order is a per-packet rank (optionally computed by a compiled Banzai
// machine) — the first discipline whose departures are *scheduled*: accepted
// packets surface later through next_departure()/pop_departed() rather than
// carrying a departure tick in the offer sample.
//
// All clocks are 64-bit: an overloaded queue's departure horizon grows
// without bound, so 32-bit tick arithmetic silently overflows on long traces
// (the seed stored int64 departures into int32 fields).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sim/tracegen.h"

namespace netsim {

struct QueueSample {
  std::int64_t arrival = 0;       // packet arrival tick
  std::int64_t departure = 0;     // tick the packet finished service; 0 when
                                  // the discipline schedules departures
                                  // (departure_known_at_offer() == false)
  std::int64_t sojourn = 0;       // departure - arrival (queueing delay)
  std::int64_t qlen_bytes = 0;    // backlog on arrival, bytes
  std::int32_t qlen_pkts = 0;     // backlog on arrival, packets
  std::int32_t size_bytes = 0;
  bool dropped = false;           // rejected on arrival (buffer full, or the
                                  // packet itself was the worst-ranked)
  bool ecn_marked = false;        // backlog was at or above the ECN threshold
};

struct QueueConfig {
  std::int64_t bytes_per_tick = 1000;     // service rate
  std::int64_t capacity_bytes = -1;       // buffer bound; < 0 = infinite
  std::int64_t ecn_threshold_bytes = -1;  // mark when backlog >= this; < 0 = off
};

// The metadata a discipline may use to order, police or identify a packet.
// FIFO disciplines read only size_bytes; PIFO reads flow/tenant/now to
// compute a rank (or takes `rank` verbatim when no rank machine is bound),
// and hands `cookie` back in the Departed record so event-driven callers can
// find the packet again.
struct QueueItem {
  std::int32_t size_bytes = 0;
  std::int32_t flow_id = 0;
  std::int32_t tenant_id = 0;
  std::int64_t rank = 0;      // pre-computed rank; ignored by FIFO
  std::uint64_t cookie = 0;   // caller tag, echoed in Departed
};

// One packet leaving a scheduled discipline: served (dropped == false, tick
// is the service-completion tick) or evicted after acceptance to make room
// for a better-ranked arrival (dropped == true, tick is the eviction tick).
struct Departed {
  std::int64_t tick = 0;
  QueueItem item;
  bool dropped = false;
};

// One output port.  All methods are deterministic; time only moves forward
// through the `now` arguments the caller passes, which must be nondecreasing
// across offer() calls.
//
// Accounting contract: offered == accepted + dropped at every instant, in
// packets and in bytes.  Drops counted here include both arrival rejections
// (drop-tail, worst-ranked arrival) and post-acceptance evictions.
class QueueDiscipline {
 public:
  explicit QueueDiscipline(const QueueConfig& config) : config_(config) {}
  QueueDiscipline() = default;
  virtual ~QueueDiscipline() = default;

  const QueueConfig& config() const { return config_; }

  // Offers one packet at tick `now`.  qlen_* report the backlog as the packet
  // found it, before its own enqueue.  For FIFO disciplines the sample
  // carries the departure tick on accept; for scheduled disciplines
  // (departure_known_at_offer() == false) departure/sojourn are 0 and the
  // real departure surfaces later through pop_departed().  On drop the
  // sample has dropped = true with departure == arrival.
  QueueSample offer(std::int64_t now, const QueueItem& item) {
    ++offered_pkts_;
    offered_bytes_ += item.size_bytes;
    QueueSample s = admit(now, item);
    if (s.dropped) {
      ++dropped_pkts_;
      dropped_bytes_ += item.size_bytes;
    }
    if (s.ecn_marked) ++ecn_marked_pkts_;
    return s;
  }

  // Size-only convenience, the historical ByteQueue::offer signature.
  QueueSample offer(std::int64_t now, std::int32_t size_bytes) {
    QueueItem item;
    item.size_bytes = size_bytes;
    return offer(now, item);
  }

  // True when offer() samples carry the departure tick (FIFO family).  When
  // false the caller drives service through next_departure()/pop_departed().
  virtual bool departure_known_at_offer() const { return true; }

  // Earliest tick at which pop_departed() will have something to return, if
  // any packet is in service.  Always > the last offer tick for scheduled
  // disciplines (a service in progress never completes retroactively).
  virtual std::optional<std::int64_t> next_departure() const {
    return std::nullopt;
  }

  // Pops the next packet that has left the queue by tick `now` — served
  // packets in completion order, evictions as of their eviction tick.
  // std::nullopt when nothing has departed yet.
  virtual std::optional<Departed> pop_departed(std::int64_t now) {
    (void)now;
    return std::nullopt;
  }

  // Unserved bytes/packets in the buffer at tick `now` (includes the packet
  // in service until its completion tick).
  virtual std::int64_t backlog_bytes(std::int64_t now) = 0;
  virtual std::int32_t backlog_pkts(std::int64_t now) = 0;

  // Tick at which the server drains completely, given no further arrivals.
  virtual std::int64_t busy_until() const = 0;

  // Cumulative accounting since construction.
  std::int64_t offered_pkts() const { return offered_pkts_; }
  std::int64_t accepted_pkts() const { return offered_pkts_ - dropped_pkts_; }
  std::int64_t dropped_pkts() const { return dropped_pkts_; }
  std::int64_t offered_bytes() const { return offered_bytes_; }
  std::int64_t accepted_bytes() const { return offered_bytes_ - dropped_bytes_; }
  std::int64_t dropped_bytes() const { return dropped_bytes_; }
  std::int64_t ecn_marked_pkts() const { return ecn_marked_pkts_; }

 protected:
  // Policy hook: decide drop/mark and enqueue.  offer() has already counted
  // the packet as offered; it counts the drop/mark from the returned sample.
  virtual QueueSample admit(std::int64_t now, const QueueItem& item) = 0;

  // Post-acceptance eviction: the packet was counted as accepted when
  // offered, so the eviction only moves it to the dropped column.
  void note_eviction(std::int32_t size_bytes) {
    ++dropped_pkts_;
    dropped_bytes_ += size_bytes;
  }

  QueueConfig config_;

 private:
  std::int64_t offered_pkts_ = 0;
  std::int64_t dropped_pkts_ = 0;
  std::int64_t offered_bytes_ = 0;
  std::int64_t dropped_bytes_ = 0;
  std::int64_t ecn_marked_pkts_ = 0;
};

// Drop-tail FIFO served at a byte rate: work order is arrival order, the
// departure tick is computed at accept time.  No marking — the mark_on_admit
// hook is how ByteQueue layers the ECN threshold on top without forking the
// drop/service math.
class FifoQueue : public QueueDiscipline {
 public:
  FifoQueue() = default;
  explicit FifoQueue(const QueueConfig& config) : QueueDiscipline(config) {}

  std::int64_t backlog_bytes(std::int64_t now) override;
  std::int32_t backlog_pkts(std::int64_t now) override;
  std::int64_t busy_until() const override { return busy_until_; }

 protected:
  QueueSample admit(std::int64_t now, const QueueItem& item) override;

  // Whether to ECN-mark an accepted packet that found `backlog` bytes queued.
  virtual bool mark_on_admit(std::int64_t backlog) const {
    (void)backlog;
    return false;
  }

 private:
  void prune(std::int64_t now);

  std::int64_t busy_until_ = 0;
  std::int64_t backlog_bytes_ = 0;  // bytes of the packets in backlog_
  std::deque<std::pair<std::int64_t, std::int32_t>> backlog_;  // (departs, sz)
};

// The ECN-threshold discipline: drop-tail FIFO that marks accepted packets
// when the backlog they found is at or above config().ecn_threshold_bytes.
// This is the default port of every NetFabric instance and the queue
// simulate_queue has always run; its behavior is bit-identical to the
// pre-refactor monolithic ByteQueue.
class ByteQueue final : public FifoQueue {
 public:
  ByteQueue() = default;
  explicit ByteQueue(const QueueConfig& config) : FifoQueue(config) {}

 protected:
  bool mark_on_admit(std::int64_t backlog) const override {
    return config_.ecn_threshold_bytes >= 0 &&
           backlog >= config_.ecn_threshold_bytes;
  }
};

// Runs the trace through one queue; one sample per packet, in arrival order.
// Dropped packets still produce a sample (dropped = true) so callers can
// account for every offered packet.  For scheduled disciplines (PIFO) the
// queue is drained after the last arrival and each accepted packet's sample
// is back-filled with its real departure/sojourn — post-acceptance evictions
// come back as dropped = true with sojourn = eviction - arrival.
std::vector<QueueSample> simulate_queue(const std::vector<TracePacket>& trace,
                                        QueueDiscipline& queue);

// Convenience form preserving the historical signature: ECN-threshold FIFO.
std::vector<QueueSample> simulate_queue(const std::vector<TracePacket>& trace,
                                        const QueueConfig& config);

}  // namespace netsim
