// Flow-hash sharding: the one place the shard-selection hash lives, shared by
// the trace-level partitioner here and the packet-level banzai::Fleet.
//
// Partitioning is by flow so that all packets of a flow land on the same
// shard, preserving per-flow state consistency (each shard's StateStore sees
// a flow's packets in arrival order, exactly as a single machine would).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/tracegen.h"

namespace netsim {

// SplitMix64 finalizer: cheap, well-mixed, and stable across platforms so
// shard assignment is deterministic everywhere.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline std::size_t shard_of_key(std::uint64_t key, std::size_t num_shards) {
  return num_shards <= 1
             ? 0
             : static_cast<std::size_t>(mix64(key) % num_shards);
}

// A trace split across shards, remembering each packet's position in the
// original trace so results can be merged back into arrival order.
struct PartitionedTrace {
  std::vector<std::vector<TracePacket>> shards;
  std::vector<std::vector<std::size_t>> source_index;  // per shard, per packet

  std::size_t num_shards() const { return shards.size(); }
};

// Stable partition by flow id: within a shard, packets keep their relative
// arrival order.
inline PartitionedTrace partition_by_flow(const std::vector<TracePacket>& trace,
                                          std::size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  PartitionedTrace out;
  out.shards.resize(num_shards);
  out.source_index.resize(num_shards);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::size_t s = shard_of_key(
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(trace[i].flow_id)),
        num_shards);
    out.shards[s].push_back(trace[i]);
    out.source_index[s].push_back(i);
  }
  return out;
}

}  // namespace netsim
