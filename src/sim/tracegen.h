// Synthetic packet traces: the substitutes for production traces (DESIGN.md
// substitution #4).  All generators are deterministic under their seed.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/zipf.h"

namespace netsim {

struct TracePacket {
  std::int64_t arrival = 0;     // ticks (64-bit: queue simulations push
                                // departure horizons far past arrivals, and
                                // the two clocks must share a width)
  std::int32_t flow_id = 0;
  std::int32_t sport = 0;
  std::int32_t dport = 0;
  std::int32_t srcip = 0;
  std::int32_t dstip = 0;
  std::int32_t proto = 0;
  std::int32_t size_bytes = 0;
};

struct FlowTraceConfig {
  std::size_t num_packets = 10000;
  std::size_t num_flows = 1000;
  double zipf_skew = 1.1;       // flow popularity skew
  // Flowlet burstiness: packets within a burst are back-to-back; bursts are
  // separated by idle gaps larger than the flowlet threshold.
  int intra_burst_gap = 1;      // ticks between packets of one burst
  int inter_burst_gap = 50;     // idle gap starting a new flowlet
  double burst_end_prob = 0.15; // P(burst ends after each packet)
  std::uint64_t seed = 1;
};

// TCP-like bursty trace with Zipfian flow popularity.  Per-flow arrival
// clocks advance so that a flow's packets form bursts ("flowlets") separated
// by gaps, the traffic pattern flowlet switching exploits.
std::vector<TracePacket> generate_flow_trace(const FlowTraceConfig& config);

// Simple Poisson-ish arrival trace (geometric inter-arrivals) used by the
// AQM examples.
struct ArrivalTraceConfig {
  std::size_t num_packets = 10000;
  double load = 0.9;            // offered load relative to service rate
  int mean_size_bytes = 800;
  std::uint64_t seed = 2;
};

std::vector<TracePacket> generate_arrival_trace(const ArrivalTraceConfig& c);

}  // namespace netsim
