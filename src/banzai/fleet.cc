#include "banzai/fleet.h"

#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/partition.h"

namespace banzai {

std::vector<Packet> FleetResult::egress_in_order() const {
  std::size_t total = 0;
  for (const ShardResult& s : shards) total += s.egress.size();
  std::vector<Packet> merged(total);
  for (const ShardResult& s : shards)
    for (std::size_t i = 0; i < s.egress.size(); ++i)
      merged[s.source_index[i]] = s.egress[i];
  return merged;
}

Fleet::Fleet(const Machine& prototype, FleetConfig config)
    : config_(std::move(config)) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.num_shards > 1 && config_.flow_key.empty())
    throw std::invalid_argument(
        "Fleet: flow_key must name at least one packet field when sharding");
  replicas_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s)
    replicas_.push_back(prototype.clone());
}

std::size_t Fleet::shard_of(const Packet& pkt) const {
  if (replicas_.size() <= 1) return 0;
  // Combine the flow-key fields with the same mixer the trace-level
  // partitioner uses, so shard assignment is one definition repo-wide.
  std::uint64_t h = 0;
  for (FieldId f : config_.flow_key)
    h = netsim::mix64(
        h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(pkt.get(f))));
  return static_cast<std::size_t>(h % replicas_.size());
}

FleetResult Fleet::run(const std::vector<Packet>& trace) {
  const std::size_t n = replicas_.size();
  FleetResult result;
  result.shards.resize(n);
  result.packets = trace.size();

  // Stable partition: within a shard, packets keep arrival order.
  std::vector<std::vector<Packet>> partitions(n);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::size_t s = shard_of(trace[i]);
    partitions[s].push_back(trace[i]);
    result.shards[s].source_index.push_back(i);
  }

  auto drain_shard = [&](std::size_t s) {
    BatchSim sim(replicas_[s], config_.batch_size);
    sim.enqueue_all(std::move(partitions[s]));
    sim.run();
    result.shards[s].egress = std::move(sim.egress());
    result.shards[s].stats = sim.stats();
  };

  if (config_.parallel && n > 1) {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (std::size_t s = 0; s < n; ++s) workers.emplace_back(drain_shard, s);
    for (std::thread& w : workers) w.join();
  } else {
    for (std::size_t s = 0; s < n; ++s) drain_shard(s);
  }
  return result;
}

}  // namespace banzai
