#include "banzai/fleet.h"

#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/partition.h"

namespace banzai {

ShardCore::ShardCore(const Machine& prototype, std::size_t num_slots,
                     std::size_t num_shards, std::size_t batch_size,
                     std::vector<FieldId> flow_key, BatchDispatch dispatch)
    : num_shards_(num_shards == 0 ? 1 : num_shards),
      flow_key_(std::move(flow_key)) {
  if (num_slots == 0) num_slots = num_shards_;
  if (num_slots < num_shards_)
    throw std::invalid_argument(
        "ShardCore: num_slots must be >= num_shards (slots are the unit of "
        "state placement)");
  if (num_slots > 1 && flow_key_.empty())
    throw std::invalid_argument(
        "ShardCore: flow_key must name at least one packet field when "
        "partitioning state across slots");
  slots_.reserve(num_slots);
  sims_.reserve(num_slots);
  for (std::size_t v = 0; v < num_slots; ++v) {
    slots_.push_back(prototype.clone());
    // Size each replica's stage-counter table now, before workers may read
    // it concurrently (it is not resize-safe against readers), and zero it —
    // a prototype that already processed packets must not pollute this
    // core's aggregated totals.
    slots_.back().prepare_stage_counters();
    slots_.back().reset_stage_counters();
    sims_.emplace_back(slots_.back(), batch_size, dispatch);
  }
  scratch_.resize(num_shards_);
  for (Scratch& sc : scratch_) sc.idx.resize(num_slots);
}

std::uint64_t ShardCore::flow_hash(const Packet& pkt) const {
  std::uint64_t h = 0;
  for (FieldId f : flow_key_)
    h = netsim::mix64(
        h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(pkt.get(f))));
  return h;
}

std::size_t ShardCore::slot_of(const Packet& pkt) const {
  if (slots_.size() <= 1) return 0;
  return static_cast<std::size_t>(flow_hash(pkt) % slots_.size());
}

BatchStats ShardCore::shard_stats(std::size_t shard) const {
  BatchStats sum;
  for (std::size_t v = shard; v < sims_.size(); v += num_shards_) {
    sum.batches += sims_[v].stats().batches;
    sum.packets += sims_[v].stats().packets;
  }
  return sum;
}

void ShardCore::drain(std::size_t shard, const std::size_t* slot_ids,
                      Packet* pkts, std::size_t n, Packet* out) {
  Scratch& sc = scratch_[shard];
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t>& idx = sc.idx[slot_ids[i]];
    if (idx.empty()) sc.touched.push_back(slot_ids[i]);
    idx.push_back(i);
  }
  for (std::size_t slot : sc.touched) {
    std::vector<std::size_t>& idx = sc.idx[slot];
    BatchSim& sim = sims_[slot];
    for (std::size_t k : idx) sim.enqueue(std::move(pkts[k]));
    sim.run();
    std::vector<Packet> egress = sim.take_egress();
    for (std::size_t k = 0; k < idx.size(); ++k)
      out[idx[k]] = std::move(egress[k]);
    idx.clear();
  }
  sc.touched.clear();
}

std::vector<StageCounterRow> ShardCore::stage_counter_rows() const {
  std::vector<StageCounterRow> rows;
  for (const Machine& m : slots_) m.stage_counters().merge_into(rows);
  return rows;
}

std::vector<StateStore> ShardCore::snapshot_state() const {
  std::vector<StateStore> snap;
  snap.reserve(slots_.size());
  for (const Machine& m : slots_) snap.push_back(m.snapshot_state());
  return snap;
}

void ShardCore::restore_state(const std::vector<StateStore>& snap) {
  if (snap.size() != slots_.size())
    throw std::invalid_argument(
        "ShardCore::restore_state: snapshot has a different slot count");
  for (std::size_t v = 0; v < slots_.size(); ++v)
    slots_[v].restore_state(snap[v]);
}

std::vector<Packet> FleetResult::egress_in_order() const {
  std::size_t total = 0;
  for (const ShardResult& s : shards) total += s.egress.size();
  std::vector<Packet> merged(total);
  for (const ShardResult& s : shards)
    for (std::size_t i = 0; i < s.egress.size(); ++i)
      merged[s.source_index[i]] = s.egress[i];
  return merged;
}

Fleet::Fleet(const Machine& prototype, FleetConfig config)
    : config_(std::move(config)),
      core_(prototype, config_.num_shards, config_.num_shards,
            config_.batch_size, config_.flow_key, config_.batch_dispatch),
      buffers_(core_.num_shards()) {
  config_.num_shards = core_.num_shards();
}

FleetResult Fleet::run(const std::vector<Packet>& trace) {
  const std::size_t n = core_.num_shards();
  FleetResult result;
  result.shards.resize(n);
  result.packets = trace.size();

  // Stable partition into buffers that keep their capacity across calls:
  // within a shard, packets keep arrival order.
  for (ShardBuffers& b : buffers_) {
    b.pkts.clear();
    b.slots.clear();
  }
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::size_t slot = core_.slot_of(trace[i]);
    const std::size_t s = slot % n;
    buffers_[s].pkts.push_back(trace[i]);
    buffers_[s].slots.push_back(slot);
    result.shards[s].source_index.push_back(i);
  }

  auto drain_shard = [&](std::size_t s) {
    ShardBuffers& b = buffers_[s];
    ShardResult& sh = result.shards[s];
    const BatchStats before = core_.shard_stats(s);
    sh.egress.resize(b.pkts.size());
    core_.drain(s, b.slots.data(), b.pkts.data(), b.pkts.size(),
                sh.egress.data());
    const BatchStats after = core_.shard_stats(s);
    sh.stats.batches = after.batches - before.batches;
    sh.stats.packets = after.packets - before.packets;
  };

  if (config_.parallel && n > 1) {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (std::size_t s = 0; s < n; ++s) workers.emplace_back(drain_shard, s);
    for (std::thread& w : workers) w.join();
  } else {
    for (std::size_t s = 0; s < n; ++s) drain_shard(s);
  }
  return result;
}

}  // namespace banzai
