// A configured atom instance: one processing unit in one Banzai stage.
//
// Code generation (src/core/codegen.*) lowers each codelet to a closure over
// the atom-template evaluator plus its synthesized configuration.  The Banzai
// simulator itself is agnostic to how the closure was produced: an atom is
// "a body of sequential code that completes before the next packet" (§2.3),
// here literally a function executed atomically within one simulated cycle.
//
// Execution semantics within a stage: all atoms of a stage run in parallel on
// the packet as it *entered* the stage (reads from `in`), producing writes
// into `out`.  Each atom owns disjoint output fields and disjoint state, which
// code generation guarantees.  Those two disjointness properties are what
// every faster engine rests on: they make the atom loop and the packet loop
// commute (Stage::execute_batch, BatchSim's stage-major order) and they make
// in-place execution legal (the fused micro-op kernel of banzai/kernel.h).
//
// Engine-equivalence contract: the closure in `exec` is the reference
// semantics.  `exec_batch` — and the lowered kernel program a compiled
// machine carries alongside these closures — must be bit-exact with it on
// every packet field and every state cell, for every input.  Totality is
// part of that contract: no exceptions, wrapping arithmetic, total
// division (banzai/value.h), clamped array indices (banzai/state.h).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "banzai/packet.h"
#include "banzai/state.h"

namespace banzai {

enum class AtomKind {
  kStateless,  // pure packet-field computation
  kStateful,   // reads and/or writes one or two state variables
  kIntrinsic,  // hardware accelerator (hash unit, lookup table)
};

struct ConfiguredAtom {
  std::string label;  // human-readable description (for dumps/benches)
  AtomKind kind = AtomKind::kStateless;
  // State variables this atom owns (empty for stateless atoms).
  std::vector<std::string> state_vars;
  // Packet fields this atom writes (used to verify disjointness).
  std::vector<FieldId> output_fields;
  // The atom body.  Must be total: no exceptions on any input.
  std::function<void(const Packet& in, Packet& out, StateStore& state)> exec;
  // Optional batched body: semantically `for i in [0,n): exec(in[i], out[i])`
  // but with per-packet dispatch amortized across the batch (state variables
  // resolved once, one indirect call per batch instead of per packet).
  // Engines fall back to per-packet exec when absent.
  std::function<void(const Packet* in, Packet* out, std::size_t n,
                     StateStore& state)>
      exec_batch;
};

}  // namespace banzai
