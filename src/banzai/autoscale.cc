#include "banzai/autoscale.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace banzai {

std::size_t Autoscaler::observe(std::size_t current, double queue_frac,
                                std::uint64_t p99_ticks, TimePoint now) {
  const bool latency_on = cfg_.p99_ticks_high > 0;
  const bool high = queue_frac >= cfg_.queue_frac_high ||
                    (latency_on && p99_ticks >= cfg_.p99_ticks_high);
  const bool low = queue_frac <= cfg_.queue_frac_low &&
                   (!latency_on || p99_ticks <= cfg_.p99_ticks_low);

  if (high) {
    ++high_streak_;
    low_streak_ = 0;
  } else if (low) {
    ++low_streak_;
    high_streak_ = 0;
  } else {
    // Inside the hysteresis band: the service is neither hot nor idle, so
    // any partial streak was noise.
    high_streak_ = 0;
    low_streak_ = 0;
  }

  const bool cooled =
      !last_action_.has_value() || now - *last_action_ >= cfg_.cooldown;
  if (!cooled) return current;

  if (high_streak_ >= cfg_.sustain) {
    const std::size_t target = std::min(current * 2, cfg_.max_shards);
    if (target != current) {
      high_streak_ = 0;
      low_streak_ = 0;
      last_action_ = now;
      ++scale_ups_;
      return target;
    }
    // Already at max: hold the streak so a later max_shards raise (or a
    // config with head-room) can act, but report no action.
    return current;
  }
  if (low_streak_ >= cfg_.sustain) {
    const std::size_t target = std::max(current / 2, cfg_.min_shards);
    if (target != current) {
      high_streak_ = 0;
      low_streak_ = 0;
      last_action_ = now;
      ++scale_downs_;
      return target;
    }
    return current;
  }
  return current;
}

ServiceSample ServiceSampler::push(const ServiceStats& st,
                                   std::size_t ring_capacity,
                                   std::chrono::steady_clock::time_point now) {
  ServiceSample s;
  s.at = now;
  s.stats = st;
  for (std::size_t d : st.queue_depth)
    s.max_queue_depth = std::max(s.max_queue_depth, d);
  if (ring_capacity > 0)
    s.queue_frac = static_cast<double>(s.max_queue_depth) /
                   static_cast<double>(ring_capacity);
  if (!window_.empty()) {
    const ServiceSample& prev = window_.back();
    s.dt_seconds = std::chrono::duration<double>(now - prev.at).count();
    if (s.dt_seconds > 0) {
      // Counters are cumulative and monotone within one service generation;
      // a reshard resets them, so clamp the deltas at zero instead of
      // reporting a huge negative rate for the sample that straddles it.
      auto rate = [&](std::uint64_t cur, std::uint64_t old) {
        return cur >= old ? static_cast<double>(cur - old) / s.dt_seconds : 0.0;
      };
      s.ingest_rate = rate(st.ingested, prev.stats.ingested);
      s.delivery_rate = rate(st.delivered, prev.stats.delivered);
      s.drop_rate = rate(st.dropped, prev.stats.dropped);
    }
  }
  window_.push_back(s);
  while (window_.size() > window_limit_) window_.pop_front();
  return window_.back();
}

namespace {

// Accumulates one retired generation's counters into `into` (the fields that
// are meaningful as sums; rates and quantiles stay generation-local).
void fold_stats(ServiceStats& into, const ServiceStats& gen) {
  into.ingested += gen.ingested;
  into.delivered += gen.delivered;
  into.dropped += gen.dropped;
  into.wire.frames_parsed += gen.wire.frames_parsed;
  into.wire.frames_rejected += gen.wire.frames_rejected;
  into.wire.reject_truncated += gen.wire.reject_truncated;
  into.wire.reject_oversized += gen.wire.reject_oversized;
  into.wire.reject_bad_value += gen.wire.reject_bad_value;
  into.wire.bytes_in += gen.wire.bytes_in;
  into.wire.bytes_out += gen.wire.bytes_out;
  if (into.stage_counters.size() < gen.stage_counters.size())
    into.stage_counters.resize(gen.stage_counters.size());
  for (std::size_t i = 0; i < gen.stage_counters.size(); ++i) {
    into.stage_counters[i].packets += gen.stage_counters[i].packets;
    into.stage_counters[i].ops += gen.stage_counters[i].ops;
    into.stage_counters[i].ns += gen.stage_counters[i].ns;
  }
}

}  // namespace

AutoscalingService::AutoscalingService(const Machine& prototype,
                                       AutoscalingServiceConfig cfg)
    : proto_(prototype.clone()),
      cfg_(std::move(cfg)),
      autoscaler_(cfg_.autoscaler),
      sampler_(cfg_.sampler_window) {
  // Every reachable shard count must fit in the slot table, or a scale-up
  // would throw mid-stream; fail at construction instead.
  if (cfg_.autoscaler.min_shards == 0)
    throw std::invalid_argument("AutoscalingService: min_shards must be >= 1");
  if (cfg_.autoscaler.max_shards < cfg_.autoscaler.min_shards)
    throw std::invalid_argument(
        "AutoscalingService: max_shards must be >= min_shards");
  if (cfg_.autoscaler.max_shards > cfg_.service.num_slots)
    throw std::invalid_argument(
        "AutoscalingService: max_shards exceeds num_slots (slots are the "
        "migration unit, so they bound the shard count)");
  if (cfg_.tick_stride == 0) cfg_.tick_stride = 1;
  cfg_.service.num_shards =
      std::clamp(cfg_.service.num_shards, cfg_.autoscaler.min_shards,
                 cfg_.autoscaler.max_shards);
  svc_ = std::make_unique<FleetService>(proto_, cfg_.service);
}

void AutoscalingService::start() {
  svc_->start();
  last_sample_ = std::chrono::steady_clock::now();
  sampled_once_ = false;
}

void AutoscalingService::stop() { svc_->stop(); }

void AutoscalingService::flush() { svc_->flush(); }

bool AutoscalingService::ingest(Packet pkt) {
  const bool ok = svc_->ingest(std::move(pkt));
  if (++since_tick_ >= cfg_.tick_stride) {
    since_tick_ = 0;
    const auto now = std::chrono::steady_clock::now();
    if (!sampled_once_ || now - last_sample_ >= cfg_.sample_period)
      tick(now);
  }
  return ok;
}

bool AutoscalingService::tick(std::chrono::steady_clock::time_point now) {
  last_sample_ = now;
  sampled_once_ = true;
  const ServiceSample s =
      sampler_.push(svc_->stats(), cfg_.service.ring_capacity, now);
  const std::size_t current = svc_->num_shards();
  const std::size_t target = autoscaler_.observe(
      current, s.queue_frac, s.stats.latency_p99_ticks, now);
  if (target == current) return false;
  reshard_to(target);
  return true;
}

void AutoscalingService::reshard_to(std::size_t target_shards) {
  if (target_shards == 0 || target_shards == svc_->num_shards()) return;
  // Retire the current generation: flush so every accepted packet reaches
  // the egress window, stop so snapshot() is legal, and drain the settled
  // egress into pending_ so nothing is lost when the window is discarded
  // with the old service.
  svc_->flush();
  svc_->stop();
  ServiceSnapshot snap = svc_->snapshot();
  ServiceStats old = svc_->stats();
  // When the byte path is attached, settled egress must leave the retiring
  // generation as frames — draining packets here would strand them un-deparsed
  // when the window goes away with the old service.
  std::vector<std::vector<std::uint8_t>> drained_frames;
  std::vector<Packet> drained;
  if (wire_rx_ != nullptr)
    drained_frames = svc_->drain_egress_frames();
  else
    drained = svc_->drain_egress();

  ServiceConfig next_cfg = svc_->config();
  next_cfg.num_shards = target_shards;
  auto next = std::make_unique<FleetService>(proto_, next_cfg);
  if (wire_rx_ != nullptr) next->set_wire(wire_rx_, wire_tx_);
  next->restore(snap);

  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.insert(pending_.end(), std::make_move_iterator(drained.begin()),
                    std::make_move_iterator(drained.end()));
    pending_frames_.insert(pending_frames_.end(),
                           std::make_move_iterator(drained_frames.begin()),
                           std::make_move_iterator(drained_frames.end()));
    fold_stats(retired_, old);
    svc_ = std::move(next);
  }
  svc_->start();
  ++reshards_;
}

void AutoscalingService::set_wire(std::shared_ptr<const wire::WireCodec> rx,
                                  std::shared_ptr<const wire::WireCodec> tx) {
  svc_->set_wire(rx, tx);  // throws on a running service / bad binding first
  std::lock_guard<std::mutex> lock(mu_);
  wire_rx_ = std::move(rx);
  wire_tx_ = std::move(tx);
}

FleetService::FrameIngest AutoscalingService::ingest_frame(
    const std::uint8_t* data, std::size_t len) {
  const FleetService::FrameIngest res = svc_->ingest_frame(data, len);
  if (++since_tick_ >= cfg_.tick_stride) {
    since_tick_ = 0;
    const auto now = std::chrono::steady_clock::now();
    if (!sampled_once_ || now - last_sample_ >= cfg_.sample_period)
      tick(now);
  }
  return res;
}

std::vector<std::vector<std::uint8_t>>
AutoscalingService::drain_egress_frames() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<std::uint8_t>> out = std::move(pending_frames_);
  pending_frames_.clear();
  std::vector<std::vector<std::uint8_t>> live = svc_->drain_egress_frames();
  out.insert(out.end(), std::make_move_iterator(live.begin()),
             std::make_move_iterator(live.end()));
  return out;
}

std::vector<Packet> AutoscalingService::drain_egress() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Packet> out = std::move(pending_);
  pending_.clear();
  std::vector<Packet> live = svc_->drain_egress();
  out.insert(out.end(), std::make_move_iterator(live.begin()),
             std::make_move_iterator(live.end()));
  return out;
}

ServiceStats AutoscalingService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = svc_->stats();
  fold_stats(out, retired_);
  return out;
}

std::vector<HeavyHitter> AutoscalingService::heavy_hitters(
    std::size_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  // The table lives in the current generation, so it describes traffic since
  // the last reshard — a recent window, which is what a hot-flow report
  // should be anyway.
  return svc_->heavy_hitters(k);
}

std::size_t AutoscalingService::num_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return svc_->num_shards();
}

bool AutoscalingService::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return svc_->running();
}

}  // namespace banzai
