// Observability primitives for the Banzai runtime: per-stage counters keyed
// on the kernel's StageRange boundaries, a log2-bucketed latency histogram,
// and a space-saving heavy-hitter table for the service ingest path.
//
// Design contract (docs/OBSERVABILITY.md):
//  - StageCounters is written on the hot path with relaxed atomics and read
//    concurrently by stats()/metrics threads.  It is NOT resize-safe against
//    concurrent readers: callers must prepare() every instance up front
//    (ShardCore does this for each slot replica at construction) and never
//    grow one while workers run.
//  - Counter increments are exact, not sampled: a packet that traverses stage
//    s adds exactly 1 to packets[s].  The exactness tests in
//    tests/metrics_test.cc pin threaded FleetService totals to a sequential
//    Machine::process reference, per stage, per engine.
//  - All of this compiles and is unit-tested regardless of the
//    DOMINO_STAGE_COUNTERS build flag; the flag only decides whether the
//    execution engines *increment* the counters (see machine.cc, emit.cc).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace banzai {

// One stage's totals, as plain data (the snapshot/aggregation currency).
struct StageCounterRow {
  std::uint64_t packets = 0;  // packets that executed this stage
  std::uint64_t ops = 0;      // micro-ops retired (atoms on the closure engine)
  std::uint64_t ns = 0;       // wall time attributed to this stage
};

// A copyable relaxed atomic counter.  Copy/assign load the source with
// memory_order_relaxed, which keeps StageCounters (and Machine) copyable —
// a clone starts from whatever the source had accumulated; callers that want
// a fresh replica reset() after cloning (ShardCore does).
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  explicit RelaxedCounter(std::uint64_t v) : v_(v) {}
  RelaxedCounter(const RelaxedCounter& o)
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.v_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
  void add(std::uint64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Dense per-stage accumulators.  One instance per Machine; each worker owns
// its machine replica so hot-path increments never contend — aggregation
// happens at stats() time by summing rows() across replicas.
class StageCounters {
 public:
  // Sizes the table for `stages` stages.  Growing is only safe while no other
  // thread touches this instance; shrinking never happens (prepare with the
  // max).  Idempotent when already at least `stages` wide.
  void prepare(std::size_t stages) {
    if (cells_.size() < stages) cells_.resize(stages);
  }

  std::size_t stages() const { return cells_.size(); }
  bool empty() const { return cells_.empty(); }

  void add(std::size_t stage, std::uint64_t packets, std::uint64_t ops,
           std::uint64_t ns) {
    Cell& c = cells_[stage];
    c.packets.add(packets);
    c.ops.add(ops);
    c.ns.add(ns);
  }

  StageCounterRow row(std::size_t stage) const {
    const Cell& c = cells_[stage];
    return {c.packets.get(), c.ops.get(), c.ns.get()};
  }

  std::vector<StageCounterRow> rows() const {
    std::vector<StageCounterRow> out(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) out[i] = row(i);
    return out;
  }

  // Adds this instance's totals into `into`, growing it as needed.  Safe to
  // call while writers are still incrementing (totals are then a snapshot
  // that may trail the hot path by a few packets — fine for metrics; the
  // exactness tests quiesce first).
  void merge_into(std::vector<StageCounterRow>& into) const {
    if (into.size() < cells_.size()) into.resize(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      const StageCounterRow r = row(i);
      into[i].packets += r.packets;
      into[i].ops += r.ops;
      into[i].ns += r.ns;
    }
  }

  void reset() {
    for (Cell& c : cells_) {
      c.packets.reset();
      c.ops.reset();
      c.ns.reset();
    }
  }

 private:
  struct Cell {
    RelaxedCounter packets, ops, ns;
  };
  std::vector<Cell> cells_;
};

// ---------------------------------------------------------------------------
// Latency histogram: log2 buckets over non-negative tick counts.
// ---------------------------------------------------------------------------

// Bucket i counts samples whose value has bit-width i (value 0 → bucket 0,
// 1 → bucket 1, 2..3 → bucket 2, 4..7 → bucket 3, ...).  Quantiles report the
// bucket's inclusive upper edge (2^i - 1), i.e. a conservative estimate with
// relative error < 2x — plenty for a control loop comparing against a
// threshold an order of magnitude away from steady state.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit widths of uint64_t + 0

  void record(std::uint64_t ticks) {
    ++counts_[bucket_of(ticks)];
    ++total_;
  }

  std::uint64_t total() const { return total_; }

  void merge_into(std::uint64_t (&counts)[kBuckets],
                  std::uint64_t& total) const {
    for (std::size_t i = 0; i < kBuckets; ++i) counts[i] += counts_[i];
    total += total_;
  }

  void reset() {
    for (auto& c : counts_) c = 0;
    total_ = 0;
  }

  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t w = 0;
    while (v != 0) {
      ++w;
      v >>= 1;
    }
    return w;
  }

  // Inclusive upper edge of bucket i.
  static std::uint64_t bucket_edge(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

// The q-quantile (q in [0,1]) of a merged bucket array: the upper edge of the
// bucket containing the ceil(q * total)-th sample.  Returns 0 on an empty
// histogram.
std::uint64_t histogram_quantile(
    const std::uint64_t (&counts)[LatencyHistogram::kBuckets],
    std::uint64_t total, double q);

// ---------------------------------------------------------------------------
// Heavy hitters: the space-saving algorithm (Metwally et al., 2005) — the
// fixed-size top-k summary HashPipe approximates in a pipeline.
// ---------------------------------------------------------------------------

struct HeavyHitter {
  std::uint64_t key = 0;    // flow key (FleetService uses flow_hash)
  std::uint64_t count = 0;  // estimated count; count - error <= true <= count
  std::uint64_t error = 0;  // overestimation bound inherited at replacement
};

// Classic space-saving: a fixed table of `capacity` entries.  A hit
// increments; a miss with room inserts {key, 1, 0}; a miss at capacity
// replaces the minimum-count entry with {key, min+1, min}.  Guarantees: every
// flow with true count > N/capacity is present, and each entry's estimate
// over-counts by at most its `error`.  Not thread-safe — FleetService guards
// its instance with a mutex off the worker hot path (ingest thread only).
class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t capacity) : capacity_(capacity) {
    entries_.reserve(capacity);
    index_.reserve(capacity * 2);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  std::uint64_t offered() const { return offered_; }

  void offer(std::uint64_t key);

  // The top-k entries by estimated count, descending (ties by key for
  // determinism).  k > size() returns everything.
  std::vector<HeavyHitter> top(std::size_t k) const;

  void reset() {
    entries_.clear();
    index_.clear();
    offered_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<HeavyHitter> entries_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key → entries_ idx
  std::uint64_t offered_ = 0;
};

}  // namespace banzai
