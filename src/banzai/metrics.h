// Prometheus text rendering (exposition format 0.0.4) for everything the
// repo can count — service counters, per-stage observability rows, the wire
// front end, heavy hitters, the native object cache, and queue disciplines —
// plus MetricsEndpoint, a minimal blocking HTTP listener that serves the
// rendered page so `curl localhost:PORT/metrics` works against any running
// example or service.
//
// The render functions are free functions over plain structs: they take the
// snapshot, not the live object, so callers decide the locking (e.g. take
// FleetService::stats() once and render it).  All metric names carry the
// `domino_` prefix; counters end in `_total` per Prometheus convention.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "banzai/native.h"
#include "banzai/service.h"

namespace netsim {
class QueueDiscipline;
}

namespace banzai {

// Service counters, rates, latency quantiles, per-shard queue depth and the
// per-stage counter rows (domino_service_*, domino_stage_*, domino_wire_*).
// Wire metrics are emitted only when the byte path saw traffic; stage rows
// only when non-empty (they are all-zero unless -DDOMINO_STAGE_COUNTERS).
void render_service_metrics(std::ostream& os, const ServiceStats& st);

// Top-k flows as domino_heavy_hitter_count{flow="<hex hash>"} with the
// matching overestimate bound domino_heavy_hitter_error.
void render_heavy_hitters(std::ostream& os,
                          const std::vector<HeavyHitter>& hitters);

// Native AOT cache occupancy (domino_native_cache_*).
void render_native_cache_metrics(std::ostream& os,
                                 const NativeCacheStats& stats);

// Cumulative accounting of one queue discipline (domino_queue_*), labelled
// queue="<name>" so several ports can share a page.
void render_queue_metrics(std::ostream& os, const netsim::QueueDiscipline& q,
                          const std::string& name);

// A blocking TCP listener serving the concatenation of its sources as
// `text/plain; version=0.0.4` on every request (the path is ignored, so both
// `/` and `/metrics` work).  One accept-loop thread, one request at a time —
// scrape-rate traffic, not a web server.  Sources run on the accept thread;
// they must do their own locking (FleetService::stats() and friends already
// do).  add_source() before start(); stop() is idempotent and joins.
class MetricsEndpoint {
 public:
  struct Options {
    // Port to bind on 127.0.0.1; 0 picks an ephemeral port, readable from
    // port() after start().
    std::uint16_t port = 0;
  };

  MetricsEndpoint() = default;
  explicit MetricsEndpoint(Options opts) : opts_(opts) {}
  ~MetricsEndpoint() { stop(); }
  MetricsEndpoint(const MetricsEndpoint&) = delete;
  MetricsEndpoint& operator=(const MetricsEndpoint&) = delete;

  // Registers one page fragment; fragments render in registration order.
  void add_source(std::function<void(std::ostream&)> source);

  // Renders the full page without touching the network (the unit-testable
  // core; the listener serves exactly this string).
  std::string render() const;

  // Binds, listens and spawns the accept loop.  Throws std::runtime_error on
  // socket errors (e.g. the port is taken).
  void start();
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (resolves ephemeral binds); 0 before start().
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();

  Options opts_;
  mutable std::mutex mu_;  // guards sources_
  std::vector<std::function<void(std::ostream&)>> sources_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread server_;
};

}  // namespace banzai
