#include "banzai/metrics.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "sim/queue.h"

namespace banzai {

namespace {

void help_line(std::ostream& os, const char* name, const char* type,
               const char* help) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

void render_service_metrics(std::ostream& os, const ServiceStats& st) {
  help_line(os, "domino_service_ingested_total", "counter",
            "Packets offered to the service (accepted + dropped + in flight)");
  os << "domino_service_ingested_total " << st.ingested << '\n';
  help_line(os, "domino_service_delivered_total", "counter",
            "Packets delivered to the ordered egress");
  os << "domino_service_delivered_total " << st.delivered << '\n';
  help_line(os, "domino_service_dropped_total", "counter",
            "Packets shed by DropTail backpressure");
  os << "domino_service_dropped_total " << st.dropped << '\n';
  help_line(os, "domino_service_packets_per_sec", "gauge",
            "Delivered packets over wall-clock running time");
  os << "domino_service_packets_per_sec " << st.packets_per_sec << '\n';
  help_line(os, "domino_service_latency_ticks", "gauge",
            "Enqueue-to-egress latency in ingest ticks, by quantile");
  os << "domino_service_latency_ticks{quantile=\"0.5\"} "
     << st.latency_p50_ticks << '\n';
  os << "domino_service_latency_ticks{quantile=\"0.99\"} "
     << st.latency_p99_ticks << '\n';
  help_line(os, "domino_service_latency_ticks_avg", "gauge",
            "Mean enqueue-to-egress latency in ingest ticks");
  os << "domino_service_latency_ticks_avg " << st.avg_latency_ticks << '\n';

  if (!st.queue_depth.empty()) {
    help_line(os, "domino_service_queue_depth", "gauge",
              "Current ring occupancy per shard");
    for (std::size_t s = 0; s < st.queue_depth.size(); ++s)
      os << "domino_service_queue_depth{shard=\"" << s << "\"} "
         << st.queue_depth[s] << '\n';
  }

  if (st.wire.frames_parsed + st.wire.frames_rejected > 0) {
    help_line(os, "domino_wire_frames_parsed_total", "counter",
              "Frames parsed clean and offered to ingest");
    os << "domino_wire_frames_parsed_total " << st.wire.frames_parsed << '\n';
    help_line(os, "domino_wire_frames_rejected_total", "counter",
              "Frames rejected by the parser, by reason");
    os << "domino_wire_frames_rejected_total{reason=\"truncated\"} "
       << st.wire.reject_truncated << '\n';
    os << "domino_wire_frames_rejected_total{reason=\"oversized\"} "
       << st.wire.reject_oversized << '\n';
    os << "domino_wire_frames_rejected_total{reason=\"bad_value\"} "
       << st.wire.reject_bad_value << '\n';
    help_line(os, "domino_wire_bytes_total", "counter",
              "Bytes through the wire front end, by direction");
    os << "domino_wire_bytes_total{direction=\"in\"} " << st.wire.bytes_in
       << '\n';
    os << "domino_wire_bytes_total{direction=\"out\"} " << st.wire.bytes_out
       << '\n';
  }

  if (!st.stage_counters.empty()) {
    help_line(os, "domino_stage_packets_total", "counter",
              "Packets through each pipeline stage (DOMINO_STAGE_COUNTERS)");
    for (std::size_t i = 0; i < st.stage_counters.size(); ++i)
      os << "domino_stage_packets_total{stage=\"" << i << "\"} "
         << st.stage_counters[i].packets << '\n';
    help_line(os, "domino_stage_ops_total", "counter",
              "Micro-ops (atom executions on the closure engine) per stage");
    for (std::size_t i = 0; i < st.stage_counters.size(); ++i)
      os << "domino_stage_ops_total{stage=\"" << i << "\"} "
         << st.stage_counters[i].ops << '\n';
    help_line(os, "domino_stage_ns_total", "counter",
              "Wall-clock nanoseconds spent executing each stage");
    for (std::size_t i = 0; i < st.stage_counters.size(); ++i)
      os << "domino_stage_ns_total{stage=\"" << i << "\"} "
         << st.stage_counters[i].ns << '\n';
  }
}

void render_heavy_hitters(std::ostream& os,
                          const std::vector<HeavyHitter>& hitters) {
  if (hitters.empty()) return;
  help_line(os, "domino_heavy_hitter_count", "gauge",
            "Estimated offered packets of the top-k flows, keyed by flow "
            "hash; overestimates true count by at most the matching error");
  std::ostringstream hex;
  for (const HeavyHitter& h : hitters) {
    hex.str("");
    hex << std::hex << std::setw(16) << std::setfill('0') << h.key;
    os << "domino_heavy_hitter_count{flow=\"" << hex.str() << "\"} " << h.count
       << '\n';
  }
  help_line(os, "domino_heavy_hitter_error", "gauge",
            "Maximum overestimate of the matching count");
  for (const HeavyHitter& h : hitters) {
    hex.str("");
    hex << std::hex << std::setw(16) << std::setfill('0') << h.key;
    os << "domino_heavy_hitter_error{flow=\"" << hex.str() << "\"} " << h.error
       << '\n';
  }
}

void render_native_cache_metrics(std::ostream& os,
                                 const NativeCacheStats& stats) {
  help_line(os, "domino_native_cache_objects", "gauge",
            "Compiled .so objects in the native AOT cache");
  os << "domino_native_cache_objects " << stats.objects << '\n';
  help_line(os, "domino_native_cache_sources", "gauge",
            "Emitted .cc sources kept beside the objects");
  os << "domino_native_cache_sources " << stats.sources << '\n';
  help_line(os, "domino_native_cache_bytes", "gauge",
            "Total bytes the cache directory holds");
  os << "domino_native_cache_bytes " << stats.total_bytes << '\n';
}

void render_queue_metrics(std::ostream& os, const netsim::QueueDiscipline& q,
                          const std::string& name) {
  help_line(os, "domino_queue_offered_pkts_total", "counter",
            "Packets offered to the queue discipline");
  os << "domino_queue_offered_pkts_total{queue=\"" << name << "\"} "
     << q.offered_pkts() << '\n';
  help_line(os, "domino_queue_dropped_pkts_total", "counter",
            "Packets dropped (arrival rejections and evictions)");
  os << "domino_queue_dropped_pkts_total{queue=\"" << name << "\"} "
     << q.dropped_pkts() << '\n';
  help_line(os, "domino_queue_ecn_marked_pkts_total", "counter",
            "Packets ECN-marked on admit");
  os << "domino_queue_ecn_marked_pkts_total{queue=\"" << name << "\"} "
     << q.ecn_marked_pkts() << '\n';
  help_line(os, "domino_queue_offered_bytes_total", "counter",
            "Bytes offered to the queue discipline");
  os << "domino_queue_offered_bytes_total{queue=\"" << name << "\"} "
     << q.offered_bytes() << '\n';
  help_line(os, "domino_queue_dropped_bytes_total", "counter",
            "Bytes dropped (arrival rejections and evictions)");
  os << "domino_queue_dropped_bytes_total{queue=\"" << name << "\"} "
     << q.dropped_bytes() << '\n';
}

void MetricsEndpoint::add_source(std::function<void(std::ostream&)> source) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.push_back(std::move(source));
}

std::string MetricsEndpoint::render() const {
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& source : sources_) source(os);
  return os.str();
}

void MetricsEndpoint::start() {
  if (running_.load(std::memory_order_acquire)) return;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("MetricsEndpoint: socket: ") +
                             std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("MetricsEndpoint: bind: ") +
                             std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  if (::listen(fd, 8) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("MetricsEndpoint: listen: ") +
                             std::strerror(err));
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  server_ = std::thread(&MetricsEndpoint::serve_loop, this);
}

void MetricsEndpoint::stop() {
  if (!running_.exchange(false)) return;
  // shutdown() unblocks the accept() the server thread is parked in; close
  // happens after the join so the fd cannot be recycled under the loop.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (server_.joinable()) server_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsEndpoint::serve_loop() {
  int accept_errors = 0;
  while (running_.load(std::memory_order_acquire)) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Transient failures (EMFILE under fd pressure, ENOMEM) must not kill
      // the endpoint: back off briefly and try again.  Only a persistent
      // error spin — the listener really is gone — exits the loop.
      if (++accept_errors > 64) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    accept_errors = 0;
    // Read whatever request line arrived (best effort; the page is the same
    // for every path) so the peer does not see a reset before the response.
    char buf[1024];
    (void)::recv(conn, buf, sizeof(buf), 0);
    const std::string body = render();
    std::ostringstream os;
    os << "HTTP/1.1 200 OK\r\n"
       << "Content-Type: text/plain; version=0.0.4\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    const std::string resp = os.str();
    std::size_t off = 0;
    while (off < resp.size()) {
      const ssize_t n = ::send(conn, resp.data() + off, resp.size() - off,
#ifdef MSG_NOSIGNAL
                               MSG_NOSIGNAL
#else
                               0
#endif
      );
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      // A signal mid-write is not a failed scrape: retry.  Anything else
      // (reset, full buffer on a blocking socket gone bad) abandons this
      // client only — the serve loop itself survives abrupt peers.
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    ::close(conn);
  }
}

}  // namespace banzai
