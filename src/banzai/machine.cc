#include "banzai/machine.h"

#include <stdexcept>
#include <utility>

#if defined(DOMINO_STAGE_COUNTERS)
#include <chrono>
#endif

namespace banzai {

#if defined(DOMINO_STAGE_COUNTERS)
namespace {
// The counted builds route every engine through per-stage instrumentation;
// this helper folds the plain rows a native .so fills into the machine's
// atomic accumulators.
void fold_native_rows(const NativeStageCounterRow* rows, std::size_t stages,
                      StageCounters& into) {
  for (std::size_t s = 0; s < stages; ++s)
    if (rows[s].packets | rows[s].ops | rows[s].ns)
      into.add(s, rows[s].packets, rows[s].ops, rows[s].ns);
}
}  // namespace
#endif

void Machine::run_batch(BatchView batch) {
  const std::size_t n = batch.size();
  if (n == 0) return;

  switch (active_engine()) {
    case ExecEngine::kNative: {
      const NativePipeline* nat = native_.get();
      rebind_state_if_stale();
#if defined(DOMINO_STAGE_COUNTERS)
      // The emitted code increments plain uint64 rows (no atomics in the
      // .so); fold them into the shared-readable accumulators afterwards.
      // A .so emitted without counter support leaves the rows zero.
      prepare_stage_counters();
      native_ctr_.assign(kernel_->num_stages(), NativeStageCounterRow{});
      NativeStageCounterRow* const ctr = native_ctr_.data();
#else
      NativeStageCounterRow* const ctr = nullptr;
#endif
      if (batch.columnar()) {
        ColumnBatch& cb = batch.cols();
        if (cb.num_fields() < nat->num_fields())
          throw std::invalid_argument(
              "native pipeline: column batch narrower than the compiled "
              "program's field table");
        if (nat->has_columnar()) {
          nat->run_columns(cb.col_ptrs(), n, bind_.views.data(), ctr);
        } else {
          // A .so from before the columnar emission mode: keep the columnar
          // shape on the kernel VM rather than transposing back.
#if defined(DOMINO_STAGE_COUNTERS)
          kernel_->run_columns_counted(cb, bind_.vars.data(), stage_counters_);
          return;
#else
          kernel_->run_columns_bound(cb, bind_.vars.data());
#endif
        }
#if defined(DOMINO_STAGE_COUNTERS)
        fold_native_rows(ctr, kernel_->num_stages(), stage_counters_);
#endif
        return;
      }
      Packet* pkts = batch.row_data();
      for (std::size_t i = 0; i < n; ++i)
        if (pkts[i].num_fields() < nat->num_fields())
          throw std::invalid_argument(
              "native pipeline: packet narrower than the compiled program's "
              "field table");
      bind_.pkt_ptrs.resize(n);
      for (std::size_t i = 0; i < n; ++i) bind_.pkt_ptrs[i] = pkts[i].data();
      nat->run(bind_.pkt_ptrs.data(), n, bind_.views.data(), ctr);
#if defined(DOMINO_STAGE_COUNTERS)
      fold_native_rows(ctr, kernel_->num_stages(), stage_counters_);
#endif
      return;
    }
    case ExecEngine::kKernel: {
      rebind_state_if_stale();
#if defined(DOMINO_STAGE_COUNTERS)
      if (batch.columnar())
        kernel_->run_columns_counted(batch.cols(), bind_.vars.data(),
                                     stage_counters_);
      else
        kernel_->run_batch_counted(batch.row_data(), n, bind_.vars.data(),
                                   stage_counters_);
#else
      if (batch.columnar())
        kernel_->run_columns_bound(batch.cols(), bind_.vars.data());
      else
        kernel_->run_batch_bound(batch.row_data(), n, bind_.vars.data());
#endif
      return;
    }
    case ExecEngine::kClosure:
      break;
  }

  // Closure engine.  Columnar views take a transpose detour through row
  // scratch: the reference semantics have no columnar form.
  if (batch.columnar()) {
    ColumnBatch& cb = batch.cols();
    if (col_rows_.size() < n) col_rows_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      if (col_rows_[i].num_fields() != cb.num_fields())
        col_rows_[i] = Packet(cb.num_fields());
    cb.scatter(col_rows_.data());
    run_closure_rows(col_rows_.data(), n);
    cb.gather(col_rows_.data(), n, cb.num_fields());
    return;
  }
  run_closure_rows(batch.row_data(), n);
}

// Stage-major over the whole batch (the order BatchSim pioneered — legal by
// §2.3 state locality, see banzai/batch.h): stage 0 reads the callers'
// packets into cur_, later stages ping-pong between the two reusable
// buffers, and the final stage's output moves back into the caller's
// storage, keeping run_batch's in-place contract.
void Machine::run_closure_rows(Packet* pkts, std::size_t n) {
  if (stages_.empty()) return;
  if (cur_.size() < n) cur_.resize(n);
  if (next_.size() < n) next_.resize(n);
#if defined(DOMINO_STAGE_COUNTERS)
  // The closure engine counts atoms, not micro-ops: ops here is "atom
  // executions" (packets x atoms of the stage).  Packet counts are exact and
  // engine-independent; the exactness tests compare packets across engines
  // and ops only where micro-ops are the unit (kernel vs native).
  prepare_stage_counters();
  using clock = std::chrono::steady_clock;
  auto timed = [&](std::size_t s, const Packet* in, Packet* out) {
    const auto t0 = clock::now();
    stages_[s].execute_batch(in, out, n, state_);
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count());
    stage_counters_.add(s, n, stages_[s].atoms.size() * n, ns);
  };
  timed(0, pkts, cur_.data());
  for (std::size_t s = 1; s < stages_.size(); ++s) {
    timed(s, cur_.data(), next_.data());
    std::swap(cur_, next_);
  }
#else
  stages_[0].execute_batch(pkts, cur_.data(), n, state_);
  for (std::size_t s = 1; s < stages_.size(); ++s) {
    stages_[s].execute_batch(cur_.data(), next_.data(), n, state_);
    std::swap(cur_, next_);
  }
#endif
  for (std::size_t i = 0; i < n; ++i) pkts[i] = std::move(cur_[i]);
}

}  // namespace banzai
