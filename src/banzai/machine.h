// The Banzai machine: a pipeline of stages, each a vector of atoms executing
// in parallel on every clock cycle (Figure 1, bottom half).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "banzai/atom.h"
#include "banzai/kernel.h"
#include "banzai/packet.h"
#include "banzai/state.h"

namespace banzai {

// Resource limits of a Banzai machine (§2.4 "Resource limits" and §5.2).
struct MachineSpec {
  std::string name;                      // e.g. "praw" target
  std::string stateful_template;         // name of the stateful atom template
  std::size_t pipeline_depth = 32;       // number of stages
  std::size_t stateless_per_stage = 300; // stateless atom slots per stage
  std::size_t stateful_per_stage = 10;   // stateful atom slots per stage
};

// One pipeline stage: atoms that execute in parallel each cycle.
//
// Stage-parallel read/write semantics: every atom of the stage observes the
// packet exactly as it entered the stage, and the atoms' writes — disjoint
// packet fields, disjoint state, a property code generation guarantees and
// CompiledPipeline::seal re-verifies — merge into the packet the next stage
// sees.  Any execution order of a stage's atoms is therefore equivalent, and
// every engine below exploits that freedom differently.
struct Stage {
  std::vector<ConfiguredAtom> atoms;

  // The stage-execution core shared by every engine (Machine::process, the
  // cycle-accurate PipelineSim, the batched BatchSim): all atoms observe the
  // packet as it entered the stage (`in`) and apply their writes to `out`.
  // `out` is assigned from `in` first, so callers can reuse its storage
  // across invocations without reallocating.
  void execute_into(const Packet& in, Packet& out, StateStore& state) const {
    out = in;
    for (const ConfiguredAtom& a : atoms) a.exec(in, out, state);
  }

  // Convenience form returning a fresh packet.
  Packet execute(const Packet& in, StateStore& state) const {
    Packet out;
    execute_into(in, out, state);
    return out;
  }

  // Batched form: runs the stage over n packets, atom-major so each atom's
  // configuration (and its batched fast path, when present) stays hot across
  // the whole batch.  Equivalent to execute_into on each packet in order:
  // atoms write disjoint fields and own disjoint state, so the atom loop and
  // the packet loop commute.
  void execute_batch(const Packet* in, Packet* out, std::size_t n,
                     StateStore& state) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i];
    for (const ConfiguredAtom& a : atoms) {
      if (a.exec_batch) {
        a.exec_batch(in, out, n, state);
      } else {
        for (std::size_t i = 0; i < n; ++i) a.exec(in[i], out[i], state);
      }
    }
  }
};

// A fully configured machine: the output of Domino code generation.
//
// A compiled machine carries two interchangeable execution paths:
//   * the closure path — per-atom std::function closures walked stage by
//     stage (the reference semantics, always present), and
//   * the kernel path — the flat micro-op program the lowering pass emits
//     (banzai/kernel.h), shared read-only across clones.
// The ExecEngine toggle (CompileOptions::engine, or set_engine) selects
// which one process() and the engines layered on it use.  The two paths are
// bit-exact on every packet field and state cell for every input — the
// engine-equivalence contract tests/kernel_test.cc enforces corpus-wide —
// so flipping the toggle mid-stream is legal: both paths read and write the
// same FieldTable ids and the same StateStore.
class Machine {
 public:
  Machine() = default;
  Machine(MachineSpec spec, FieldTable fields)
      : spec_(std::move(spec)), fields_(std::move(fields)) {}

  MachineSpec& spec() { return spec_; }
  const MachineSpec& spec() const { return spec_; }

  FieldTable& fields() { return fields_; }
  const FieldTable& fields() const { return fields_; }

  std::vector<Stage>& stages() { return stages_; }
  const std::vector<Stage>& stages() const { return stages_; }

  StateStore& state() { return state_; }
  const StateStore& state() const { return state_; }

  std::size_t num_stages() const { return stages_.size(); }

  std::size_t num_atoms() const {
    std::size_t n = 0;
    for (const Stage& s : stages_) n += s.atoms.size();
    return n;
  }

  std::size_t max_atoms_per_stage() const {
    std::size_t m = 0;
    for (const Stage& s : stages_) m = std::max(m, s.atoms.size());
    return m;
  }

  // Engine selection.  A machine without a lowered kernel (hand-assembled,
  // or pre-dating the lowering pass) silently executes on closures whatever
  // the toggle says — kKernel is a request, active_kernel() is the truth.
  ExecEngine engine() const { return engine_; }
  void set_engine(ExecEngine engine) { engine_ = engine; }
  void set_kernel(std::shared_ptr<const CompiledPipeline> kernel) {
    kernel_ = std::move(kernel);
  }
  const CompiledPipeline* kernel() const { return kernel_.get(); }
  // The kernel execution actually dispatches to: non-null only when a
  // lowered program is attached AND the engine toggle selects it.
  const CompiledPipeline* active_kernel() const {
    return engine_ == ExecEngine::kKernel ? kernel_.get() : nullptr;
  }

  // Runs one packet through all stages back-to-back (functionally equivalent
  // to the pipelined execution; see PipelineSim for the cycle-accurate form
  // and BatchSim for the batched throughput engine).  Dispatches to the
  // fused micro-op program when the kernel engine is selected.
  Packet process(Packet pkt) {
    if (const CompiledPipeline* k = active_kernel()) {
      k->run(pkt, state_);
      return pkt;
    }
    for (const Stage& s : stages_) pkt = s.execute(pkt, state_);
    return pkt;
  }

  // Checkpoint and restore of the mutable half of the machine.  The pipeline
  // configuration is immutable after codegen, so persistent state is the only
  // thing a drained machine needs to hand to its successor.
  StateStore snapshot_state() const { return state_.snapshot(); }
  void restore_state(const StateStore& snap) { state_.restore(snap); }

  // An independent replica of this machine: same pipeline configuration, its
  // own StateStore snapshot.  Atom closures capture their configuration by
  // value and reach state only through the StateStore& they are handed at
  // execution time, so replicas never share mutable state — this is what the
  // Fleet relies on to scale one compiled program across shards.  The lowered
  // kernel, immutable after sealing and stateless at execution time, is
  // shared between replicas rather than copied.
  Machine clone() const { return *this; }

 private:
  MachineSpec spec_;
  FieldTable fields_;
  std::vector<Stage> stages_;
  StateStore state_;
  ExecEngine engine_ = ExecEngine::kClosure;
  std::shared_ptr<const CompiledPipeline> kernel_;
};

}  // namespace banzai
