// The Banzai machine: a pipeline of stages, each a vector of atoms executing
// in parallel on every clock cycle (Figure 1, bottom half).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "banzai/atom.h"
#include "banzai/packet.h"
#include "banzai/state.h"

namespace banzai {

// Resource limits of a Banzai machine (§2.4 "Resource limits" and §5.2).
struct MachineSpec {
  std::string name;                      // e.g. "praw" target
  std::string stateful_template;         // name of the stateful atom template
  std::size_t pipeline_depth = 32;       // number of stages
  std::size_t stateless_per_stage = 300; // stateless atom slots per stage
  std::size_t stateful_per_stage = 10;   // stateful atom slots per stage
};

// One pipeline stage: atoms that execute in parallel each cycle.
struct Stage {
  std::vector<ConfiguredAtom> atoms;

  // The stage-execution core shared by every engine (Machine::process, the
  // cycle-accurate PipelineSim, the batched BatchSim): all atoms observe the
  // packet as it entered the stage (`in`) and apply their writes to `out`.
  // `out` is assigned from `in` first, so callers can reuse its storage
  // across invocations without reallocating.
  void execute_into(const Packet& in, Packet& out, StateStore& state) const {
    out = in;
    for (const ConfiguredAtom& a : atoms) a.exec(in, out, state);
  }

  // Convenience form returning a fresh packet.
  Packet execute(const Packet& in, StateStore& state) const {
    Packet out;
    execute_into(in, out, state);
    return out;
  }

  // Batched form: runs the stage over n packets, atom-major so each atom's
  // configuration (and its batched fast path, when present) stays hot across
  // the whole batch.  Equivalent to execute_into on each packet in order:
  // atoms write disjoint fields and own disjoint state, so the atom loop and
  // the packet loop commute.
  void execute_batch(const Packet* in, Packet* out, std::size_t n,
                     StateStore& state) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i];
    for (const ConfiguredAtom& a : atoms) {
      if (a.exec_batch) {
        a.exec_batch(in, out, n, state);
      } else {
        for (std::size_t i = 0; i < n; ++i) a.exec(in[i], out[i], state);
      }
    }
  }
};

// A fully configured machine: the output of Domino code generation.
class Machine {
 public:
  Machine() = default;
  Machine(MachineSpec spec, FieldTable fields)
      : spec_(std::move(spec)), fields_(std::move(fields)) {}

  MachineSpec& spec() { return spec_; }
  const MachineSpec& spec() const { return spec_; }

  FieldTable& fields() { return fields_; }
  const FieldTable& fields() const { return fields_; }

  std::vector<Stage>& stages() { return stages_; }
  const std::vector<Stage>& stages() const { return stages_; }

  StateStore& state() { return state_; }
  const StateStore& state() const { return state_; }

  std::size_t num_stages() const { return stages_.size(); }

  std::size_t num_atoms() const {
    std::size_t n = 0;
    for (const Stage& s : stages_) n += s.atoms.size();
    return n;
  }

  std::size_t max_atoms_per_stage() const {
    std::size_t m = 0;
    for (const Stage& s : stages_) m = std::max(m, s.atoms.size());
    return m;
  }

  // Runs one packet through all stages back-to-back (functionally equivalent
  // to the pipelined execution; see PipelineSim for the cycle-accurate form
  // and BatchSim for the batched throughput engine).
  Packet process(Packet pkt) {
    for (const Stage& s : stages_) pkt = s.execute(pkt, state_);
    return pkt;
  }

  // Checkpoint and restore of the mutable half of the machine.  The pipeline
  // configuration is immutable after codegen, so persistent state is the only
  // thing a drained machine needs to hand to its successor.
  StateStore snapshot_state() const { return state_.snapshot(); }
  void restore_state(const StateStore& snap) { state_.restore(snap); }

  // An independent replica of this machine: same pipeline configuration, its
  // own StateStore snapshot.  Atom closures capture their configuration by
  // value and reach state only through the StateStore& they are handed at
  // execution time, so replicas never share mutable state — this is what the
  // Fleet relies on to scale one compiled program across shards.
  Machine clone() const { return *this; }

 private:
  MachineSpec spec_;
  FieldTable fields_;
  std::vector<Stage> stages_;
  StateStore state_;
};

}  // namespace banzai
