// The Banzai machine: a pipeline of stages, each a vector of atoms executing
// in parallel on every clock cycle (Figure 1, bottom half).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "banzai/atom.h"
#include "banzai/column.h"
#include "banzai/kernel.h"
#include "banzai/native.h"
#include "banzai/packet.h"
#include "banzai/state.h"
#include "banzai/stats.h"

namespace banzai {

// Resource limits of a Banzai machine (§2.4 "Resource limits" and §5.2).
struct MachineSpec {
  std::string name;                      // e.g. "praw" target
  std::string stateful_template;         // name of the stateful atom template
  std::size_t pipeline_depth = 32;       // number of stages
  std::size_t stateless_per_stage = 300; // stateless atom slots per stage
  std::size_t stateful_per_stage = 10;   // stateful atom slots per stage
};

// One pipeline stage: atoms that execute in parallel each cycle.
//
// Stage-parallel read/write semantics: every atom of the stage observes the
// packet exactly as it entered the stage, and the atoms' writes — disjoint
// packet fields, disjoint state, a property code generation guarantees and
// CompiledPipeline::seal re-verifies — merge into the packet the next stage
// sees.  Any execution order of a stage's atoms is therefore equivalent, and
// every engine below exploits that freedom differently.
struct Stage {
  std::vector<ConfiguredAtom> atoms;

  // The stage-execution core shared by every engine (Machine::process, the
  // cycle-accurate PipelineSim, the batched BatchSim): all atoms observe the
  // packet as it entered the stage (`in`) and apply their writes to `out`.
  // `out` is assigned from `in` first, so callers can reuse its storage
  // across invocations without reallocating.
  void execute_into(const Packet& in, Packet& out, StateStore& state) const {
    out = in;
    for (const ConfiguredAtom& a : atoms) a.exec(in, out, state);
  }

  // Convenience form returning a fresh packet.
  Packet execute(const Packet& in, StateStore& state) const {
    Packet out;
    execute_into(in, out, state);
    return out;
  }

  // Batched form: runs the stage over n packets, atom-major so each atom's
  // configuration (and its batched fast path, when present) stays hot across
  // the whole batch.  Equivalent to execute_into on each packet in order:
  // atoms write disjoint fields and own disjoint state, so the atom loop and
  // the packet loop commute.
  void execute_batch(const Packet* in, Packet* out, std::size_t n,
                     StateStore& state) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i];
    for (const ConfiguredAtom& a : atoms) {
      if (a.exec_batch) {
        a.exec_batch(in, out, n, state);
      } else {
        for (std::size_t i = 0; i < n; ++i) a.exec(in[i], out[i], state);
      }
    }
  }
};

// A fully configured machine: the output of Domino code generation.
//
// A compiled machine carries up to three interchangeable execution paths:
//   * the closure path — per-atom std::function closures walked stage by
//     stage (the reference semantics, always present),
//   * the kernel path — the flat micro-op program the lowering pass emits
//     (banzai/kernel.h), shared read-only across clones, and
//   * the native path — the same program AOT-emitted as C++ (core/emit.*),
//     compiled by the host toolchain and dlopen'd (banzai/native.h); absent
//     when no toolchain exists, with the reason recorded.
// The ExecEngine toggle (CompileOptions::engine, or set_engine) selects
// which one process() and the engines layered on it use.  All paths are
// bit-exact on every packet field and state cell for every input — the
// engine-equivalence contract tests/kernel_test.cc enforces corpus-wide —
// so flipping the toggle mid-stream is legal: every path reads and writes
// the same FieldTable ids and the same StateStore.
//
// State binding cache: the kernel and native paths address state through
// pre-resolved StateVar pointers.  Resolving them costs one by-name hash
// lookup per state variable; the cache below keys the resolved bindings on
// the StateStore's generation counter (state.h), so the steady-state
// per-packet path (Machine::process in NetFabric nodes, single-packet
// service drains) does zero name lookups.  restore_state() and clone() bump
// or re-key the generation, so stale pointers into a replaced map can never
// be dereferenced.
class Machine {
 public:
  Machine() = default;
  Machine(MachineSpec spec, FieldTable fields)
      : spec_(std::move(spec)), fields_(std::move(fields)) {}

  MachineSpec& spec() { return spec_; }
  const MachineSpec& spec() const { return spec_; }

  FieldTable& fields() { return fields_; }
  const FieldTable& fields() const { return fields_; }

  std::vector<Stage>& stages() { return stages_; }
  const std::vector<Stage>& stages() const { return stages_; }

  StateStore& state() { return state_; }
  const StateStore& state() const { return state_; }

  std::size_t num_stages() const { return stages_.size(); }

  std::size_t num_atoms() const {
    std::size_t n = 0;
    for (const Stage& s : stages_) n += s.atoms.size();
    return n;
  }

  std::size_t max_atoms_per_stage() const {
    std::size_t m = 0;
    for (const Stage& s : stages_) m = std::max(m, s.atoms.size());
    return m;
  }

  // Engine selection.  Each value is a request; the dispatch is the truth:
  // a machine without a lowered kernel (hand-assembled, or pre-dating the
  // lowering pass) executes on closures whatever the toggle says, and
  // kNative without a loaded native pipeline runs the kernel VM — the
  // graceful-degradation ladder native > kernel > closure.  active_engine()
  // makes the resolved rung observable; flipping away from the closure
  // engine releases its ping-pong scratch so a kernel/native machine does
  // not retain closure-sized buffers.
  ExecEngine engine() const { return engine_; }
  void set_engine(ExecEngine engine) {
    engine_ = engine;
    if (active_engine() != ExecEngine::kClosure) release_closure_scratch();
  }
  // The rung of the ladder run_batch()/process() will actually execute on —
  // the old bool success-protocol of run_compiled_batch, made a first-class
  // query: callers pick batch shapes (and tests assert dispatch) against
  // this, never by probing a return value.
  ExecEngine active_engine() const {
    if (kernel_ == nullptr) return ExecEngine::kClosure;
    if (engine_ == ExecEngine::kNative)
      return native_ != nullptr ? ExecEngine::kNative : ExecEngine::kKernel;
    return engine_;
  }
  void set_kernel(std::shared_ptr<const CompiledPipeline> kernel) {
    kernel_ = std::move(kernel);
  }
  const CompiledPipeline* kernel() const { return kernel_.get(); }
  // The kernel execution actually dispatches to: non-null only when a
  // lowered program is attached AND the engine toggle resolves to it —
  // including a kNative request degrading to the VM.
  const CompiledPipeline* active_kernel() const {
    if (kernel_ == nullptr) return nullptr;
    if (engine_ == ExecEngine::kKernel) return kernel_.get();
    if (engine_ == ExecEngine::kNative && native_ == nullptr)
      return kernel_.get();
    return nullptr;
  }

  // The native (AOT-compiled, dlopen'd) pipeline.  Attached by the compiler
  // driver when CompileOptions::engine == kNative and the host toolchain
  // accepts the emitted source; shared across clones like the kernel.  The
  // native path binds state through the kernel's state table, so a native
  // pipeline is only dispatched to when the kernel is attached too.
  void set_native(std::shared_ptr<const NativePipeline> native) {
    native_ = std::move(native);
    if (native_ != nullptr) native_fallback_.clear();
  }
  const NativePipeline* native() const { return native_.get(); }
  const NativePipeline* active_native() const {
    return engine_ == ExecEngine::kNative && kernel_ != nullptr
               ? native_.get()
               : nullptr;
  }
  // Why a kNative request is running on the kernel VM instead: empty when a
  // native pipeline is attached (or was never requested).
  void set_native_fallback(std::string reason) {
    native_fallback_ = std::move(reason);
  }
  const std::string& native_fallback_reason() const {
    return native_fallback_;
  }

  // Runs one packet through all stages back-to-back (functionally equivalent
  // to the pipelined execution; see PipelineSim for the cycle-accurate form
  // and BatchSim for the batched throughput engine) on whichever engine
  // active_engine() resolves to.
  Packet process(Packet pkt) {
    run_batch(BatchView::rows(&pkt, 1));
    return pkt;
  }

  // The single typed batch entry point: runs the view's packets through the
  // whole pipeline, in place, on whichever engine active_engine() resolves
  // to — every engine × every batch shape, no success protocol.  Row views
  // execute directly on every engine.  Columnar views run the native
  // columnar entry point when the loaded .so exports it, the kernel VM's
  // columnar loops otherwise, and on the closure engine scatter into row
  // scratch, execute the reference semantics, and gather back — correct
  // everywhere, fast where the engine can use the shape.
  void run_batch(BatchView batch);

  // Checkpoint and restore of the mutable half of the machine.  The pipeline
  // configuration is immutable after codegen, so persistent state is the only
  // thing a drained machine needs to hand to its successor.
  StateStore snapshot_state() const { return state_.snapshot(); }
  void restore_state(const StateStore& snap) { state_.restore(snap); }

  // --- Per-stage observability (banzai/stats.h) ---------------------------
  // Every machine carries a StageCounters table; whether the execution
  // engines *increment* it is a build-time decision (-DDOMINO_STAGE_COUNTERS)
  // so the default hot path pays nothing — stage_counters_enabled() reports
  // which build this is.  The counters are per-replica (cloning copies, then
  // ShardCore resets each slot's copy), so hot-path increments never share a
  // cache line across workers; aggregation sums rows() at stats() time.
  static constexpr bool stage_counters_enabled() {
#if defined(DOMINO_STAGE_COUNTERS)
    return true;
#else
    return false;
#endif
  }
  StageCounters& stage_counters() { return stage_counters_; }
  const StageCounters& stage_counters() const { return stage_counters_; }
  // Pre-sizes the table to this machine's stage count.  Must be called (once,
  // single-threaded) before concurrent readers may touch the counters — the
  // table is not resize-safe against them.  Idempotent.
  void prepare_stage_counters() { stage_counters_.prepare(num_stages()); }
  void reset_stage_counters() { stage_counters_.reset(); }

  // An independent replica of this machine: same pipeline configuration, its
  // own StateStore snapshot.  Atom closures capture their configuration by
  // value and reach state only through the StateStore& they are handed at
  // execution time, so replicas never share mutable state — this is what the
  // Fleet relies on to scale one compiled program across shards.  The lowered
  // kernel and the native pipeline, immutable after sealing/loading and
  // stateless at execution time, are shared between replicas rather than
  // copied.  The copied StateStore takes a fresh generation, so the replica's
  // binding cache can never dereference pointers into the source's store.
  Machine clone() const { return *this; }

 private:
  // Resolved state bindings for the kernel/native paths, keyed on the
  // StateStore generation.  Copying a Machine copies the store (fresh
  // generation) but the cache too — the generation mismatch forces a rebind
  // before first use, so the copied pointers are never dereferenced.  Moves
  // keep both valid: unordered_map moves preserve node addresses.
  struct BindingCache {
    std::uint64_t gen = 0;
    const CompiledPipeline* prog = nullptr;
    std::vector<StateVar*> vars;        // slot order of kernel state table
    std::vector<NativeStateView> views; // same order, for the native ABI
    std::vector<Value*> pkt_ptrs;       // scratch for native batch calls
  };

  void rebind_state_if_stale() {
    if (bind_.prog == kernel_.get() && bind_.gen == state_.generation())
      return;
    const std::size_t n = kernel_->num_state_vars();
    bind_.vars.clear();
    bind_.views.clear();
    bind_.vars.reserve(n);
    bind_.views.reserve(n);
    for (const std::string& name : kernel_->state_names()) {
      StateVar& v = state_.var(name);
      bind_.vars.push_back(&v);
      bind_.views.push_back(
          NativeStateView{v.data(), static_cast<std::uint64_t>(v.size())});
    }
    bind_.prog = kernel_.get();
    bind_.gen = state_.generation();
  }

  // The closure engine's batch path (machine.cc): stage-major ping-pong over
  // cur_/next_, plus row scratch for columnar views.  Released when the
  // engine toggle leaves the closure rung.
  void run_closure_rows(Packet* pkts, std::size_t n);
  void release_closure_scratch() {
    std::vector<Packet>().swap(cur_);
    std::vector<Packet>().swap(next_);
    std::vector<Packet>().swap(col_rows_);
  }

  MachineSpec spec_;
  FieldTable fields_;
  std::vector<Stage> stages_;
  StateStore state_;
  ExecEngine engine_ = ExecEngine::kClosure;
  std::shared_ptr<const CompiledPipeline> kernel_;
  std::shared_ptr<const NativePipeline> native_;
  std::string native_fallback_;
  BindingCache bind_;
  std::vector<Packet> cur_, next_;  // closure ping-pong stage buffers
  std::vector<Packet> col_rows_;    // closure row scratch for columnar views
  StageCounters stage_counters_;    // per-stage packets/ops/ns (stats.h)
  // Scratch rows the native ABI fills per batch before folding into
  // stage_counters_ (the .so writes plain uint64s, not atomics).
  std::vector<NativeStageCounterRow> native_ctr_;
};

}  // namespace banzai
