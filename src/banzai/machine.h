// The Banzai machine: a pipeline of stages, each a vector of atoms executing
// in parallel on every clock cycle (Figure 1, bottom half).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "banzai/atom.h"
#include "banzai/packet.h"
#include "banzai/state.h"

namespace banzai {

// Resource limits of a Banzai machine (§2.4 "Resource limits" and §5.2).
struct MachineSpec {
  std::string name;                      // e.g. "praw" target
  std::string stateful_template;         // name of the stateful atom template
  std::size_t pipeline_depth = 32;       // number of stages
  std::size_t stateless_per_stage = 300; // stateless atom slots per stage
  std::size_t stateful_per_stage = 10;   // stateful atom slots per stage
};

// One pipeline stage: atoms that execute in parallel each cycle.
struct Stage {
  std::vector<ConfiguredAtom> atoms;

  // Executes the stage on one packet: all atoms observe the packet as it
  // entered the stage and apply their writes to a copy that leaves the stage.
  Packet execute(const Packet& in, StateStore& state) const {
    Packet out = in;
    for (const ConfiguredAtom& a : atoms) a.exec(in, out, state);
    return out;
  }
};

// A fully configured machine: the output of Domino code generation.
class Machine {
 public:
  Machine() = default;
  Machine(MachineSpec spec, FieldTable fields)
      : spec_(std::move(spec)), fields_(std::move(fields)) {}

  MachineSpec& spec() { return spec_; }
  const MachineSpec& spec() const { return spec_; }

  FieldTable& fields() { return fields_; }
  const FieldTable& fields() const { return fields_; }

  std::vector<Stage>& stages() { return stages_; }
  const std::vector<Stage>& stages() const { return stages_; }

  StateStore& state() { return state_; }
  const StateStore& state() const { return state_; }

  std::size_t num_stages() const { return stages_.size(); }

  std::size_t num_atoms() const {
    std::size_t n = 0;
    for (const Stage& s : stages_) n += s.atoms.size();
    return n;
  }

  std::size_t max_atoms_per_stage() const {
    std::size_t m = 0;
    for (const Stage& s : stages_) m = std::max(m, s.atoms.size());
    return m;
  }

  // Runs one packet through all stages back-to-back (functionally equivalent
  // to the pipelined execution; see PipelineSim for the cycle-accurate form).
  Packet process(Packet pkt) {
    for (const Stage& s : stages_) pkt = s.execute(pkt, state_);
    return pkt;
  }

 private:
  MachineSpec spec_;
  FieldTable fields_;
  std::vector<Stage> stages_;
  StateStore state_;
};

}  // namespace banzai
