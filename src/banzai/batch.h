// Batched Banzai execution: the throughput engine.
//
// PipelineSim is the cycle-accurate reference — one packet per stage slot,
// one clock per tick — and pays a packet allocation per stage hand-off.
// BatchSim advances a whole batch of packets through each stage before moving
// to the next ("stage-major" order): the stage's atom closures and the state
// they touch stay hot in cache across the batch, per-packet atom dispatch is
// amortized through ConfiguredAtom::exec_batch, and on the compiled engines
// the whole batch runs in place — leaving one allocation per packet (the
// retained egress copy) instead of one per packet per stage.
//
// Stage-major order is observationally identical to packet-major order
// because every state variable is local to exactly one atom in one stage
// (§2.3's locality discipline): state mutated in stage s is never read by any
// other stage, so running all packets through stage s before stage s+1
// commits the same per-packet state transitions in the same arrival order.
// The differential tests in tests/batch_test.cc prove this against both
// PipelineSim and sequential Machine::process on the whole algorithm corpus.
//
// Batch currency: every batch goes through the machine's single typed entry
// point, Machine::run_batch(BatchView).  The dispatch knob picks the shape:
//   kRows     — the ingress slice is handed over row-major, in place.
//   kColumnar — the slice is transposed into the sim's ColumnBatch
//               (struct-of-arrays, banzai/column.h) first, run column-major
//               — the kernel VM's column loops, or the emitted columnar
//               entry point under kNative — and transposed back.
//   kAuto     — rows.  The default.  BatchSim's ingress arrives row-major,
//               and on corpus-scale pipelines (3–14 ops) the two transposes
//               cost more than the fused column loops recoup (EXPERIMENTS.md,
//               "Batch shape") — columnar wins when the batch already LIVES
//               columnar (Machine::run_batch(BatchView::columns(...))
//               directly), so kColumnar is an explicit opt-in here, kept for
//               workloads and hosts where the trade measures the other way.
// Either shape is bit-exact with sequential Machine::process — the columnar
// differential in tests/batch_test.cc and tests/kernel_test.cc holds this
// corpus-wide.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "banzai/column.h"
#include "banzai/machine.h"
#include "banzai/packet.h"

namespace banzai {

// How BatchSim shapes each batch before handing it to Machine::run_batch.
enum class BatchDispatch { kAuto, kRows, kColumnar };

struct BatchStats {
  std::uint64_t batches = 0;
  std::uint64_t columnar_batches = 0;  // of those, run as ColumnBatch
  std::uint64_t packets = 0;
};

class BatchSim {
 public:
  explicit BatchSim(Machine& machine, std::size_t batch_size = 256,
                    BatchDispatch dispatch = BatchDispatch::kAuto)
      : machine_(machine),
        batch_size_(batch_size ? batch_size : 1),
        dispatch_(dispatch) {}

  // The one ingress path: move-append.  The overload for a whole trace
  // steals the vector when the queue is empty and reserves + moves
  // otherwise — never an element-by-element copy.
  void enqueue(Packet pkt) { ingress_.push_back(std::move(pkt)); }
  void enqueue(std::vector<Packet> pkts) {
    if (ingress_.empty()) {
      ingress_ = std::move(pkts);
      return;
    }
    ingress_.reserve(ingress_.size() + pkts.size());
    for (Packet& p : pkts) ingress_.push_back(std::move(p));
  }

  // Drains the entire ingress through the pipeline, batch by batch, in
  // arrival order.  Egress packets appear in the same order.
  void run() {
    const std::size_t total = ingress_.size();
    egress_.reserve(egress_.size() + total);
    for (std::size_t start = 0; start < total; start += batch_size_) {
      const std::size_t n = std::min(batch_size_, total - start);
      run_batch(start, n);
      ++stats_.batches;
      stats_.packets += n;
    }
    ingress_.clear();
  }

  // Moves the accumulated egress out, leaving the queue empty (capacity
  // included — a drained sim holds no packet storage).  The const accessor
  // remains for inspection; there is no mutable reference into the queue.
  std::vector<Packet> take_egress() {
    return std::exchange(egress_, std::vector<Packet>());
  }
  const std::vector<Packet>& egress() const { return egress_; }
  const BatchStats& stats() const { return stats_; }
  std::size_t batch_size() const { return batch_size_; }
  BatchDispatch dispatch() const { return dispatch_; }

 private:
  bool use_columns() const {
    switch (dispatch_) {
      case BatchDispatch::kRows: return false;
      case BatchDispatch::kColumnar: return true;
      case BatchDispatch::kAuto: return false;  // see the header comment
    }
    return false;
  }

  void run_batch(std::size_t start, std::size_t n) {
    Packet* slice = &ingress_[start];
    if (use_columns()) {
      const CompiledPipeline* k = machine_.kernel();
      if (k != nullptr) {
        // Liveness-guided transpose: populate only the columns the program
        // reads before writing, copy back only the columns it stores to.
        // Every other field passes through untouched in the row packets.
        const auto& in = k->live_in_fields();
        const auto& out = k->written_fields();
        cols_.gather_fields(slice, n, k->num_fields(), in.data(), in.size());
        machine_.run_batch(BatchView::columns(cols_));
        cols_.scatter_fields(slice, out.data(), out.size());
      } else {
        cols_.gather(slice, n, machine_.fields().size());
        machine_.run_batch(BatchView::columns(cols_));
        cols_.scatter(slice);
      }
      ++stats_.columnar_batches;
    } else {
      machine_.run_batch(BatchView::rows(slice, n));
    }
    for (std::size_t i = 0; i < n; ++i)
      egress_.push_back(std::move(ingress_[start + i]));
  }

  Machine& machine_;
  std::size_t batch_size_;
  BatchDispatch dispatch_;
  std::vector<Packet> ingress_;
  std::vector<Packet> egress_;
  ColumnBatch cols_;  // reused transpose buffer for columnar batches
  BatchStats stats_;
};

}  // namespace banzai
