// Batched Banzai execution: the throughput engine.
//
// PipelineSim is the cycle-accurate reference — one packet per stage slot,
// one clock per tick — and pays a packet allocation per stage hand-off.
// BatchSim advances a whole batch of packets through each stage before moving
// to the next ("stage-major" order): the stage's atom closures and the state
// they touch stay hot in cache across the batch, the two ping-pong buffers
// reuse their storage across stages, and per-packet atom dispatch is
// amortized through ConfiguredAtom::exec_batch — leaving one allocation per
// packet (the retained egress copy) instead of one per packet per stage.
//
// Stage-major order is observationally identical to packet-major order
// because every state variable is local to exactly one atom in one stage
// (§2.3's locality discipline): state mutated in stage s is never read by any
// other stage, so running all packets through stage s before stage s+1
// commits the same per-packet state transitions in the same arrival order.
// The differential tests in tests/batch_test.cc prove this against both
// PipelineSim and sequential Machine::process on the whole algorithm corpus.
//
// When the machine carries a lowered kernel and the kKernel engine is
// selected, BatchSim hands whole batches to CompiledPipeline::run_batch
// instead: the same stage-major argument taken to its limit (op-major over
// the flat micro-op program, executed in place) — see banzai/kernel.h, and
// tests/kernel_test.cc for the engine differential.  Under kNative the batch
// goes to the AOT-compiled function of banzai/native.h, where the host
// optimizer already scheduled the whole pipeline as one straight-line body.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "banzai/machine.h"
#include "banzai/packet.h"

namespace banzai {

struct BatchStats {
  std::uint64_t batches = 0;
  std::uint64_t packets = 0;
};

class BatchSim {
 public:
  explicit BatchSim(Machine& machine, std::size_t batch_size = 256)
      : machine_(machine), batch_size_(batch_size ? batch_size : 1) {}

  void enqueue(Packet pkt) { ingress_.push_back(std::move(pkt)); }

  void enqueue_all(std::vector<Packet> pkts) {
    if (ingress_.empty()) {
      ingress_ = std::move(pkts);
    } else {
      for (Packet& p : pkts) ingress_.push_back(std::move(p));
    }
  }

  // Drains the entire ingress through the pipeline, batch by batch, in
  // arrival order.  Egress packets appear in the same order.
  void run() {
    const std::size_t total = ingress_.size();
    egress_.reserve(egress_.size() + total);
    for (std::size_t start = 0; start < total; start += batch_size_) {
      const std::size_t n = std::min(batch_size_, total - start);
      run_batch(start, n);
      ++stats_.batches;
      stats_.packets += n;
    }
    ingress_.clear();
  }

  std::vector<Packet>& egress() { return egress_; }
  const std::vector<Packet>& egress() const { return egress_; }
  const BatchStats& stats() const { return stats_; }
  std::size_t batch_size() const { return batch_size_; }

 private:
  void run_batch(std::size_t start, std::size_t n) {
    // Kernel/native engines: the compiled program runs the whole batch
    // through all stages in place on the ingress storage — generation-cached
    // state bindings, no ping-pong copies at all.
    if (machine_.run_compiled_batch(&ingress_[start], n)) {
      for (std::size_t i = 0; i < n; ++i)
        egress_.push_back(std::move(ingress_[start + i]));
      return;
    }
    const auto& stages = machine_.stages();
    if (stages.empty()) {
      for (std::size_t i = 0; i < n; ++i)
        egress_.push_back(std::move(ingress_[start + i]));
      return;
    }
    cur_.resize(n);
    next_.resize(n);
    // Stage 0 consumes straight from the ingress slice; later stages
    // ping-pong between the two reusable buffers.
    stages[0].execute_batch(&ingress_[start], cur_.data(), n,
                            machine_.state());
    for (std::size_t s = 1; s < stages.size(); ++s) {
      stages[s].execute_batch(cur_.data(), next_.data(), n, machine_.state());
      std::swap(cur_, next_);
    }
    for (std::size_t i = 0; i < n; ++i) egress_.push_back(std::move(cur_[i]));
  }

  Machine& machine_;
  std::size_t batch_size_;
  std::vector<Packet> ingress_;
  std::vector<Packet> egress_;
  std::vector<Packet> cur_, next_;  // ping-pong stage buffers
  BatchStats stats_;
};

}  // namespace banzai
