// Fused stage kernels: a compiled Banzai pipeline as one flat micro-op
// program.
//
// The closure engine (banzai/atom.h + core/codegen.cc) executes each atom as
// a std::function over heap-allocated configuration objects: per packet it
// pays indirect dispatch per atom, by-name StateStore lookups, a scratch
// vector for the stateful input-field gather, and a full packet copy per
// stage.  CompiledPipeline removes all of that ahead of time.  The lowering
// pass in core/codegen.cc flattens every stage's atoms — stateless ALU
// statements, the synthesized stateful templates of §5.2 (predicates plus
// update arms, including the §5.3 LUT extension), and intrinsics — into one
// contiguous MicroOp array in which packet fields are dense FieldIds, owned
// state variables are dense slots into a per-program state table, intrinsics
// and LUTs are raw function pointers, and stateful operand selectors address
// the packet directly (no input-field gather).  A branch-light switch
// dispatches opcodes; the batch form resolves state variables once per batch
// and iterates packets innermost, so a stage's whole configuration stays in
// registers across the batch.  This mirrors how the paper's Banzai emits
// straight-line C++ per atom, and how fixed-function P4 targets assume
// index-addressed, fixed-layout metadata.
//
// Engine-equivalence contract: for every program the lowering accepts,
// CompiledPipeline::run / run_batch are bit-exact with the closure engine
// (Stage::execute_into per stage, atoms in order) on every packet field and
// every state cell, for any input — including wrap-around arithmetic,
// division by zero, and hostile array indices.  tests/kernel_test.cc holds
// this contract over the whole algorithm corpus across all four runtimes
// (per-packet, batched, sharded, fabric).
//
// Why in-place execution is legal: within a stage, the closure engine gives
// every atom the packet as it *entered* the stage.  Codelets scheduled into
// one stage are mutually independent (no codelet reads another's output —
// that dependency would have forced a later stage) and write disjoint
// fields, so executing a stage's ops in order on a single buffer observes
// the same values; seal() verifies both properties and rejects the program
// otherwise.  Across stages, program order is exactly dataflow order.
// Op-major batching (all packets through op k, then op k+1) additionally
// relies on every state variable being local to exactly one atom (§2.3), so
// per-atom state sequences see packets in arrival order — the same argument
// that makes BatchSim's stage-major order legal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "banzai/column.h"
#include "banzai/packet.h"
#include "banzai/state.h"
#include "banzai/value.h"

namespace banzai {

class StageCounters;  // banzai/stats.h — per-stage observability accumulators

// Which execution path a Machine uses for process()/BatchSim and everything
// layered on them (ShardCore, Fleet, FleetService, NetFabric nodes).
//   kClosure — walk the per-atom std::function closures: the reference
//              semantics, always available.
//   kKernel  — run the lowered micro-op program; falls back to closures on
//              machines that carry no kernel (e.g. hand-assembled ones).
//   kNative  — run the AOT-emitted C++ of the same micro-op program,
//              compiled by the host toolchain and loaded via dlopen
//              (core/emit.* + banzai/native.*): no dispatch loop at all.
//              Falls back to kKernel (then closures) on machines that carry
//              no native pipeline — no toolchain on the host, emission
//              failure — with the reason recorded on the Machine.
enum class ExecEngine { kClosure, kKernel, kNative };

// An intrinsic body: args are already evaluated, in call order.  The lowering
// supplies pointers to the canned implementations in ir/intrinsics.cc so the
// kernel layer stays independent of the compiler layer.
using IntrinsicFn = Value (*)(const Value* args, std::size_t n);
// A look-up-table ROM (§5.3): one total function of one value.
using LutFn = Value (*)(Value);

// Micro-op opcodes.  One opcode per ALU operation keeps the dispatch a single
// dense switch with no secondary decode.
enum class KOp : std::uint8_t {
  kMov,     // dst = a
  kNeg,     // dst = -a (wrapping)
  kLNot,    // dst = !a
  kBitNot,  // dst = ~a
  kAdd, kSub, kMul,       // wrapping
  kDiv, kMod,             // total: x/0 == 0, INT_MIN/-1 wraps
  kShl, kShr,             // shift amount masked to 5 bits
  kBitAnd, kBitOr, kBitXor,
  kLAnd, kLOr,            // logical, producing 0/1
  kLt, kLe, kGt, kGe, kEq, kNe,  // relational, producing 0/1
  kSelect,     // dst = a ? b : c
  kIntrinsic,  // dst = fn(args...) [% mod]; payload in the intrinsic pool
  kStateful,   // fused stateful-template update; payload in the stateful pool
};

// A resolved stateless operand: immediate constant or packet field.
struct KSrc {
  Value cst = 0;
  std::uint32_t field = 0;
  bool is_const = true;

  static KSrc constant(Value v) { return {v, 0, true}; }
  static KSrc field_ref(std::uint32_t id) { return {0, id, false}; }

  Value get(const Packet& p) const { return is_const ? cst : p[field]; }
};

// A resolved stateful-template operand: constant, packet field, or one of the
// atom's owned state values (pre-update).  This is atoms::OperandSel with the
// codelet-relative field *position* replaced by the packet FieldId itself.
struct KRef {
  enum class Kind : std::uint8_t { kConst, kField, kState };
  Kind kind = Kind::kConst;
  std::uint8_t state_idx = 0;
  std::uint32_t field = 0;
  Value cst = 0;

  static KRef constant(Value v) {
    KRef r;
    r.cst = v;
    return r;
  }
  static KRef field_ref(std::uint32_t id) {
    KRef r;
    r.kind = Kind::kField;
    r.field = id;
    return r;
  }
  static KRef state_ref(int idx) {
    KRef r;
    r.kind = Kind::kState;
    r.state_idx = static_cast<std::uint8_t>(idx);
    return r;
  }

  Value get(const Packet& p, const Value* states_in) const {
    switch (kind) {
      case Kind::kConst: return cst;
      case Kind::kField: return p[field];
      case Kind::kState: return states_in[state_idx];
    }
    return 0;
  }
};

// Relational operator of a template predicate (atoms::RelKind, mirrored so
// the kernel layer carries no compiler-layer includes).
enum class KRel : std::uint8_t { kAlways, kLt, kLe, kGt, kGe, kEq, kNe };

// Update-arm modes (atoms::ArmMode, mirrored).
enum class KArm : std::uint8_t {
  kKeep, kSet, kAdd, kSubt, kSetAdd, kSetSub, kAddSub, kLutAdd,
};

struct KPred {
  KRel rel = KRel::kAlways;
  KRef a, b;
};

struct KArmOp {
  KArm mode = KArm::kKeep;
  KRef src1, src2;
};

// One live-out packet field of a stateful op: the pre-update ("old") or
// post-update ("new") value of one owned state slot.
struct KLiveOut {
  std::uint32_t dst = 0;
  std::uint8_t state_idx = 0;
  bool use_new = false;
};

// A whole synthesized stateful atom fused into one op: load owned state
// (array cells addressed by a packet field), pick a decision-tree leaf with
// up to three predicates, run one update arm per state, store, and publish
// the live-out fields.  Everything is pre-resolved; execution touches no
// strings and allocates nothing.
struct StatefulOp {
  struct Slot {
    std::uint32_t var = 0;  // index into the pipeline's state table
    std::uint32_t index_field = 0;  // packet field holding the array index
    bool is_array = false;
  };
  std::uint8_t num_states = 1;   // 1, or 2 for Pairs-class templates
  std::uint8_t pred_levels = 0;  // 0 (Write/RAW), 1 (PRAW..Sub), 2 (Nested+)
  Slot slots[2];
  KPred preds[3];   // [p1, p2, p3]; p2/p3 only with two levels
  KArmOp arms[4][2];  // [leaf][state]; leaf order matches atoms::StatefulConfig
  LutFn lut = nullptr;  // ROM for kLutAdd arms
  std::uint32_t liveout_begin = 0, liveout_end = 0;  // into the live-out pool
};

// Which well-known body `fn` points at.  Recorded at lowering time so the
// native emitter can print the body inline instead of calling through the
// ABI function-pointer table — which is what lets the columnar entry point
// vectorize hashing.  kOpaque intrinsics (isqrt, ROM lookups, anything
// loopy) are only reachable through the pointer.
enum class IntrinsicKind : std::uint8_t { kOpaque, kHash2, kHash3, kHash4 };

struct IntrinsicOp {
  static constexpr std::size_t kMaxArgs = 4;
  IntrinsicFn fn = nullptr;
  IntrinsicKind kind = IntrinsicKind::kOpaque;
  std::uint8_t num_args = 0;
  KSrc args[kMaxArgs];
  Value mod = 0;  // 0 means "no modulus"; else result = total_mod(result, mod)
};

struct MicroOp {
  KOp code = KOp::kMov;
  std::uint32_t dst = 0;   // output FieldId (unused by kStateful)
  std::uint32_t aux = 0;   // kIntrinsic/kStateful: index into the payload pool
  KSrc a, b, c;
};

// The lowered program.  Immutable after seal(); safe to share (and to execute
// concurrently) across machine clones — execution reads the program, touches
// only the caller's packets and StateStore, and uses no internal scratch.
class CompiledPipeline {
 public:
  // --- Builder interface, used by the lowering pass in core/codegen.cc ----
  void begin_stage();
  void add_alu(KOp code, std::uint32_t dst, KSrc a, KSrc b = KSrc{},
               KSrc c = KSrc{});
  void add_intrinsic(std::uint32_t dst, const IntrinsicOp& payload);
  void add_stateful(const StatefulOp& op,
                    const std::vector<KLiveOut>& liveouts);
  // Dense index of `name` in the state table, interning it if new.
  std::uint32_t intern_state(const std::string& name);
  // Freezes the program: records the packet width and verifies the in-place
  // execution preconditions (disjoint writes per stage, no intra-stage
  // read-after-write).  Throws std::logic_error on violation — such a program
  // would need the copy-based closure engine.
  void seal(std::size_t num_fields);

  // --- Execution ----------------------------------------------------------
  // Runs one packet through the whole pipeline, in place.
  void run(Packet& pkt, StateStore& state) const { run_batch(&pkt, 1, state); }
  // Runs `n` packets through the whole pipeline, in place, op-major: state
  // variables are resolved once per batch and packets iterate innermost, so
  // each op's configuration is loaded once per batch rather than per packet.
  void run_batch(Packet* pkts, std::size_t n, StateStore& state) const;
  // Same, with the by-name state resolution already done by the caller:
  // `vars[k]` must be the StateVar for state_names()[k].  This is the
  // zero-lookup path behind Machine's generation-keyed binding cache.
  void run_batch_bound(Packet* pkts, std::size_t n,
                       StateVar* const* vars) const;
  // Runs exactly one stage's ops over one packet, in place — the per-stage
  // entry point the cycle-accurate PipelineSim uses to execute the same
  // micro-op program the whole-pipeline paths run (there is one StageRange
  // per Machine stage; the lowering pass emits them in lockstep).  Bound
  // form as above.
  void run_stage(std::size_t stage, Packet& pkt, StateStore& state) const;
  void run_stage_bound(std::size_t stage, Packet& pkt,
                       StateVar* const* vars) const;
  // Columnar (SoA) forms of the same op-major program: stateless ALU ops run
  // down a whole dense column at a time (plain array loops the host
  // vectorizer can handle), stateful/intrinsic ops keep a per-packet inner
  // loop reading operands column-wise.  Bit-exact with run_batch on the
  // transposed batch — the engine-equivalence contract above extends to this
  // entry point.  `cb` must carry at least num_fields() columns.
  void run_columns(ColumnBatch& cb, StateStore& state) const;
  void run_columns_bound(ColumnBatch& cb, StateVar* const* vars) const;
  // Counted forms of the bound batch entries: identical execution split at
  // stage boundaries (legal for the same reason op-major batching is — state
  // is local to one atom, so any stage-boundary fissioning preserves the
  // per-atom packet order), with per-stage packets/ops/wall-ns recorded into
  // `counters` (prepared for num_stages() by the caller; see stats.h for the
  // concurrency contract).  Machine routes through these only when built
  // with -DDOMINO_STAGE_COUNTERS — the default hot path never pays for them.
  void run_batch_counted(Packet* pkts, std::size_t n, StateVar* const* vars,
                         StageCounters& counters) const;
  void run_columns_counted(ColumnBatch& cb, StateVar* const* vars,
                           StageCounters& counters) const;
  // Resolves this program's state table against `state`, in slot order.
  // `vars` must have room for num_state_vars() pointers.
  void resolve_state(StateStore& state, StateVar** vars) const {
    for (std::size_t k = 0; k < state_names_.size(); ++k)
      vars[k] = &state.var(state_names_[k]);
  }

  // --- Introspection ------------------------------------------------------
  struct StageRange {
    std::uint32_t begin = 0, end = 0;
  };

  bool sealed() const { return sealed_; }
  std::size_t num_ops() const { return ops_.size(); }
  std::size_t num_stages() const { return stages_.size(); }
  std::size_t num_state_vars() const { return state_names_.size(); }
  std::size_t num_fields() const { return num_fields_; }
  // Transpose liveness sets, computed at seal() (sorted by FieldId).  Every
  // write in this ISA is unconditional (conditionals are kSelect values and
  // stateful update arms, never skipped stores), so a single program-order
  // scan is exact: live_in_fields() is every field read before its first
  // write — the only columns a gather must populate — and written_fields()
  // is every field some op stores to — the only columns a scatter must copy
  // back.  ColumnBatch::gather_fields/scatter_fields consume these.
  const std::vector<std::uint32_t>& live_in_fields() const {
    return live_in_fields_;
  }
  const std::vector<std::uint32_t>& written_fields() const {
    return written_fields_;
  }
  const std::vector<std::string>& state_names() const { return state_names_; }
  // The raw program, for the disassembler (str()), the C++ emitter
  // (core/emit.*) and the native loader's fn-pointer tables
  // (banzai/native.*).  Stable only after seal().
  const std::vector<MicroOp>& ops() const { return ops_; }
  const std::vector<StageRange>& stage_ranges() const { return stages_; }
  const std::vector<StatefulOp>& stateful_pool() const { return stateful_; }
  const std::vector<IntrinsicOp>& intrinsic_pool() const {
    return intrinsics_;
  }
  const std::vector<KLiveOut>& liveout_pool() const { return liveouts_; }
  // Human-readable disassembly: one line per op (opcode, dst, operands),
  // grouped by stage range, with the state table appended — the final
  // lowering artifact, inspectable like every normalization pass
  // (`dominoc --artifacts`).
  std::string str() const;

 private:
  void require_open_stage() const;
  void verify_in_place_safe() const;
  void compute_liveness();
  // The op-major execution core: ops [first, last) over `n` packets.
  void run_ops_bound(std::uint32_t first, std::uint32_t last, Packet* pkts,
                     std::size_t n, StateVar* const* vars) const;
  // Columnar twin of run_ops_bound: ops [first, last) down the whole batch.
  void run_col_ops_bound(std::uint32_t first, std::uint32_t last,
                         ColumnBatch& cb, StateVar* const* vars) const;

  std::vector<MicroOp> ops_;
  std::vector<StageRange> stages_;
  std::vector<StatefulOp> stateful_;
  std::vector<IntrinsicOp> intrinsics_;
  std::vector<KLiveOut> liveouts_;
  std::vector<std::string> state_names_;
  std::vector<std::uint32_t> live_in_fields_;  // read before first write
  std::vector<std::uint32_t> written_fields_;  // stored to by some op
  std::unordered_map<std::string, std::uint32_t> state_index_;
  std::size_t num_fields_ = 0;
  bool sealed_ = false;
};

}  // namespace banzai
