// Value semantics shared by the Domino interpreter, the synthesis engine and
// the Banzai machine simulator.
//
// All Domino values are 32-bit signed integers (the paper's `int`).  Every
// arithmetic operation is defined to be total so that the sequential
// interpreter, the three-address-code evaluator, synthesized atoms and the
// pipeline simulator agree bit-for-bit on every input:
//   - add/sub/mul wrap modulo 2^32 (two's complement),
//   - division and modulo by zero yield zero,
//   - INT_MIN / -1 yields INT_MIN (wraps),
//   - shifts use only the low 5 bits of the shift amount,
//   - relational and logical operators yield 0 or 1.
#pragma once

#include <cstdint>

namespace banzai {

using Value = std::int32_t;

// Wrapping arithmetic via unsigned intermediate (defined behaviour in C++).
inline Value wrap_add(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a) +
                            static_cast<std::uint32_t>(b));
}

inline Value wrap_sub(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a) -
                            static_cast<std::uint32_t>(b));
}

inline Value wrap_mul(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a) *
                            static_cast<std::uint32_t>(b));
}

inline Value total_div(Value a, Value b) {
  if (b == 0) return 0;
  if (a == INT32_MIN && b == -1) return INT32_MIN;
  return a / b;
}

inline Value total_mod(Value a, Value b) {
  if (b == 0) return 0;
  if (a == INT32_MIN && b == -1) return 0;
  return a % b;
}

inline Value shift_left(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a)
                            << (static_cast<std::uint32_t>(b) & 31u));
}

// Arithmetic right shift (implementation-defined pre-C++20; guaranteed for
// C++20 two's complement).
inline Value shift_right(Value a, Value b) {
  return a >> (static_cast<std::uint32_t>(b) & 31u);
}

}  // namespace banzai
