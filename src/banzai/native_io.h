// File I/O helpers for the native AOT loader, split out so their failure
// behavior is unit-testable without running a host compile.  Every function
// reports failure explicitly — the loader turns these into
// NativeLoadResult::error instead of silently proceeding with empty or
// truncated data.
#pragma once

#include <cstddef>
#include <string>

namespace banzai {
namespace native_io {

// Writes `contents` to `path`, truncating.  Returns false on any stream
// failure (unwritable directory, disk full, path is a directory, ...).
bool write_file(const std::string& path, const std::string& contents);

// Reads the whole of `path` into `out`.  Returns false — and leaves `out`
// empty — when the file cannot be opened or the read fails; a zero-byte
// file reads successfully as the empty string.
bool read_file(const std::string& path, std::string& out);

// How much of a failed compile's log the loader keeps in the error string.
inline constexpr std::size_t kCompileLogTailBytes = 2000;

// Returns the last kCompileLogTailBytes bytes of the compile log at `path`
// (diagnostics end with the fatal error, so the tail is the useful part),
// prefixed with an elision marker when truncated.  An unreadable log is a
// diagnosis failure worth surfacing, not an empty string:
// "(compile log unreadable: <path>)".
std::string compile_log_tail(const std::string& path);

}  // namespace native_io
}  // namespace banzai
