// Columnar (struct-of-arrays) batch storage: the native currency of the
// batch-execution path.
//
// The Banzai machine is op-major in hardware — every stage's atoms fire on a
// vector of packets per clock — and the kernel VM already executes op-major
// over batches.  But row-major batches (one Value vector per Packet) make
// that op-major walk stride across heap-scattered rows, so neither the VM
// loops (banzai/kernel.cc) nor the AOT-emitted code (core/emit.cc) can be
// auto-vectorized by the host compiler.  ColumnBatch transposes the batch
// once: one dense Value column per FieldId, so "run op k over the batch"
// becomes a contiguous column loop the vectorizer handles like any other
// array kernel.
//
// Layout: one flat allocation, column-major.  Column f occupies
// data_[f * stride_, f * stride_ + size_); stride_ is the capacity the batch
// was last reshaped to, so growing and shrinking n within a capacity never
// reallocates or re-derives column pointers.  col_ptrs_ caches one raw
// pointer per field in FieldId order — exactly the `Value* const* cols`
// array the native columnar entry point takes (banzai/native.h).
//
// Converters: gather() transposes row-major Packets in, scatter() transposes
// back out into the same (or equally wide) packets.  Packets wider than the
// batch (extra trailing fields) keep those fields untouched across a
// round-trip, matching the in-place row engines which only address fields
// below the program width.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "banzai/packet.h"
#include "banzai/value.h"

namespace banzai {

class ColumnBatch {
 public:
  ColumnBatch() = default;
  ColumnBatch(std::size_t num_fields, std::size_t n) { reshape(num_fields, n); }

  // Sets the batch to n packets of num_fields columns each, reusing the
  // existing allocation when it is large enough.  Contents are unspecified
  // until written (gather, or per-column stores).
  void reshape(std::size_t num_fields, std::size_t n) {
    if (num_fields != num_fields_ || n > stride_) {
      stride_ = std::max(n, stride_);
      num_fields_ = num_fields;
      data_.resize(num_fields_ * stride_);
      col_ptrs_.resize(num_fields_);
      for (std::size_t f = 0; f < num_fields_; ++f)
        col_ptrs_[f] = data_.data() + f * stride_;
    }
    size_ = n;
  }

  // Transposes pkts[0..n) in.  Every packet must carry at least num_fields
  // fields; wider packets contribute their first num_fields columns.
  void gather(const Packet* pkts, std::size_t n, std::size_t num_fields) {
    for (std::size_t i = 0; i < n; ++i)
      if (pkts[i].num_fields() < num_fields)
        throw std::invalid_argument(
            "ColumnBatch::gather: packet narrower than the batch's field "
            "count");
    reshape(num_fields, n);
    for (std::size_t i = 0; i < n; ++i) {
      const Value* row = pkts[i].data();
      for (std::size_t f = 0; f < num_fields_; ++f)
        col_ptrs_[f][i] = row[f];
    }
  }

  // Transposes back out into pkts[0..size()); fields beyond num_fields() are
  // left untouched.  Packets must be at least num_fields() wide.
  void scatter(Packet* pkts) const {
    for (std::size_t i = 0; i < size_; ++i)
      if (pkts[i].num_fields() < num_fields_)
        throw std::invalid_argument(
            "ColumnBatch::scatter: packet narrower than the batch's field "
            "count");
    for (std::size_t i = 0; i < size_; ++i) {
      Value* row = pkts[i].data();
      for (std::size_t f = 0; f < num_fields_; ++f)
        row[f] = col_ptrs_[f][i];
    }
  }

  // Subset transpose, driven by the compiled program's liveness sets
  // (CompiledPipeline::live_in_fields / written_fields): reshapes to the full
  // num_fields width but copies only the listed columns in, leaving the rest
  // unspecified.  Legal whenever every untransposed column is written before
  // it is read — which the kernel ISA guarantees for every field outside the
  // live-in set, since all its writes are unconditional.  Cuts the transpose
  // cost from 2*n*num_fields to n*(live_in + written) copies, which is what
  // lets the columnar shape beat rows end to end.
  void gather_fields(const Packet* pkts, std::size_t n, std::size_t num_fields,
                     const std::uint32_t* fields, std::size_t nf) {
    for (std::size_t i = 0; i < n; ++i)
      if (pkts[i].num_fields() < num_fields)
        throw std::invalid_argument(
            "ColumnBatch::gather_fields: packet narrower than the batch's "
            "field count");
    reshape(num_fields, n);
    for (std::size_t i = 0; i < n; ++i) {
      const Value* row = pkts[i].data();
      for (std::size_t k = 0; k < nf; ++k)
        col_ptrs_[fields[k]][i] = row[fields[k]];
    }
  }

  // Transposes only the listed columns back out; every other field keeps the
  // value it had in the packet.  The field list must not contain columns the
  // program left unwritten and ungathered (their contents are unspecified).
  void scatter_fields(Packet* pkts, const std::uint32_t* fields,
                      std::size_t nf) const {
    for (std::size_t i = 0; i < size_; ++i)
      if (pkts[i].num_fields() < num_fields_)
        throw std::invalid_argument(
            "ColumnBatch::scatter_fields: packet narrower than the batch's "
            "field count");
    for (std::size_t i = 0; i < size_; ++i) {
      Value* row = pkts[i].data();
      for (std::size_t k = 0; k < nf; ++k)
        row[fields[k]] = col_ptrs_[fields[k]][i];
    }
  }

  Value* col(FieldId f) { return col_ptrs_[f]; }
  const Value* col(FieldId f) const { return col_ptrs_[f]; }
  // One pointer per field in FieldId order — the native columnar ABI.
  Value* const* col_ptrs() const { return col_ptrs_.data(); }

  Value& at(std::size_t i, FieldId f) { return col_ptrs_[f][i]; }
  Value at(std::size_t i, FieldId f) const { return col_ptrs_[f][i]; }

  std::size_t size() const { return size_; }
  std::size_t num_fields() const { return num_fields_; }
  std::size_t capacity() const { return stride_; }

  // Releases the backing allocation (the batch becomes empty, zero fields).
  void release() {
    std::vector<Value>().swap(data_);
    std::vector<Value*>().swap(col_ptrs_);
    num_fields_ = stride_ = size_ = 0;
  }

 private:
  std::vector<Value> data_;      // column-major, one stride_-sized lane per field
  std::vector<Value*> col_ptrs_; // col_ptrs_[f] = &data_[f * stride_]
  std::size_t num_fields_ = 0;
  std::size_t stride_ = 0;       // capacity in packets
  std::size_t size_ = 0;         // live packets
};

// The typed batch currency of Machine::run_batch: a borrowed view of either
// row-major packets (processed in place) or a column-major ColumnBatch.
// Replaces the old bool-returning Machine::run_compiled_batch success
// protocol — every engine, closures included, executes behind the one entry
// point, and the caller picks the storage shape, not the engine.
class BatchView {
 public:
  static BatchView rows(Packet* pkts, std::size_t n) {
    BatchView v;
    v.pkts_ = pkts;
    v.n_ = n;
    return v;
  }
  static BatchView columns(ColumnBatch& cols) {
    BatchView v;
    v.cols_ = &cols;
    v.n_ = cols.size();
    return v;
  }

  bool columnar() const { return cols_ != nullptr; }
  std::size_t size() const { return n_; }
  Packet* row_data() const { return pkts_; }
  ColumnBatch& cols() const { return *cols_; }

 private:
  BatchView() = default;
  Packet* pkts_ = nullptr;
  ColumnBatch* cols_ = nullptr;
  std::size_t n_ = 0;
};

}  // namespace banzai
