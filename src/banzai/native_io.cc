#include "banzai/native_io.h"

#include <fstream>
#include <sstream>

namespace banzai {
namespace native_io {

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << contents;
  out.flush();
  return static_cast<bool>(out);
}

bool read_file(const std::string& path, std::string& out) {
  out.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  // Explicit read loop rather than `os << in.rdbuf()`: reading a directory
  // opens fine on Linux and only the read() itself fails (badbit), while a
  // genuinely empty file must still count as success.
  char buf[4096];
  while (in.read(buf, sizeof buf) || in.gcount() > 0)
    out.append(buf, static_cast<std::size_t>(in.gcount()));
  if (in.bad()) {
    out.clear();
    return false;
  }
  return true;
}

std::string compile_log_tail(const std::string& path) {
  std::string log;
  if (!read_file(path, log))
    return "(compile log unreadable: " + path + ")";
  if (log.size() > kCompileLogTailBytes)
    log = "[...log truncated...]\n" +
          log.substr(log.size() - kCompileLogTailBytes);
  return log;
}

}  // namespace native_io
}  // namespace banzai
