// Native AOT execution of a compiled pipeline: the paper's actual Banzai
// strategy.  Banzai does not interpret atom configurations — it code-generates
// C++ per atom and compiles it with the host toolchain.  The kNative engine
// does the same for the whole pipeline at once: core/emit.cc prints the
// sealed CompiledPipeline micro-op program as one flat `extern "C"` function
// (straight-line per-op code, stage barriers as comments), and the loader
// here shells out to the host C++ compiler (`-O3 -fPIC -shared`), caches the
// resulting shared object under a content hash of the emitted source, and
// `dlopen`s it.  Where the kernel VM pays one switch dispatch per op per
// batch, the native function pays none — the host optimizer sees the entire
// pipeline as a single function and schedules it like any other hot loop.
//
// ABI: the emitted translation unit is self-contained (it re-declares the
// structs below as layout-identical PODs and carries its own copies of the
// total-arithmetic helpers from banzai/value.h), so the .so links against
// nothing.  Everything host-resident — state cells, intrinsic bodies, LUT
// ROMs — reaches the generated code through one fixed ABI struct of raw
// pointers, resolved once at load time (functions) or once per binding
// generation (state views; see Machine's binding cache in machine.h).
//
// Fallback contract: loading is best-effort.  No host toolchain, a disabled
// engine (DOMINO_NATIVE_DISABLE), an emission or compile or dlopen failure —
// each returns a NativeLoadResult carrying the reason instead of a pipeline,
// and the Machine keeps executing on the kernel VM (then closures), with the
// reason recorded via Machine::native_fallback_reason().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "banzai/kernel.h"
#include "banzai/value.h"

namespace banzai {

// One bound state variable as the generated code sees it: raw cells plus the
// cell count for index clamping.  Layout must match the POD the emitter
// prints into every generated translation unit (core/emit.cc, kAbiPrelude).
struct NativeStateView {
  Value* cells = nullptr;
  std::uint64_t size = 0;
};

// Per-stage counters as the generated code fills them: plain uint64 rows
// (no atomics in the .so — the host folds them into the shared-readable
// StageCounters accumulators after the batch; machine.cc).  Layout must
// match the POD printed by the counters prelude (core/emit.cc).
struct NativeStageCounterRow {
  std::uint64_t packets = 0;
  std::uint64_t ops = 0;
  std::uint64_t ns = 0;
};

// The fixed ABI struct passed to every generated entry point.  `states` is
// indexed by the program's dense state-slot ids, `intrinsics` by position in
// the CompiledPipeline intrinsic pool, `luts` by position in the stateful
// pool.  Layout must match the emitter's POD (core/emit.cc, kAbiPrelude).
// `stage_counters` (one row per stage, or null) is only read by objects
// emitted with counter support (NativeEmitOptions::stage_counters); the
// default prelude's POD is a strict layout prefix of this struct, so old
// objects and counterless builds are mutually compatible in both directions.
struct NativeAbi {
  const NativeStateView* states = nullptr;
  const IntrinsicFn* intrinsics = nullptr;
  const LutFn* luts = nullptr;
  NativeStageCounterRow* stage_counters = nullptr;
};

// Every generated pipeline exports this row-major entry point: process `n`
// packets (one field array each) through the whole pipeline, in place.
using NativeEntryFn = void (*)(Value* const* pkts, std::uint64_t n,
                               const NativeAbi* abi);
inline constexpr char kNativeEntrySymbol[] = "domino_pipeline_run";

// …and the columnar twin: `cols[f]` is the dense column of field f (a
// ColumnBatch's col_ptrs()), processed batch-major — maximal ALU runs as
// fused column loops over __restrict__ pointers with intermediates in
// registers, the auto-vectorizable shape.
// Resolved optionally at load time: a .so emitted before the columnar mode
// existed simply lacks the symbol and the Machine runs the kernel VM's
// columnar loops instead (has_columnar() below).
using NativeColsEntryFn = void (*)(Value* const* cols, std::uint64_t n,
                                   const NativeAbi* abi);
inline constexpr char kNativeColsEntrySymbol[] = "domino_pipeline_run_cols";

// Where compiled pipelines land when neither NativeOptions::cache_dir nor
// DOMINO_NATIVE_CACHE says otherwise.
inline constexpr char kDefaultNativeCacheDir[] = "/tmp/domino-native-cache";

// Knobs for the out-of-process compile.  The single resolution point for the
// DOMINO_NATIVE_* environment is from_env(); each string knob resolves
// explicit option, then environment variable, then built-in default:
//   compiler    DOMINO_NATIVE_CXX       first of c++ / g++ / clang++ on PATH
//   extra_flags DOMINO_NATIVE_CXXFLAGS  (appended to -std=c++17 -O3 -fPIC
//                                        -shared)
//   cache_dir   DOMINO_NATIVE_CACHE     kDefaultNativeCacheDir
//   disabled    DOMINO_NATIVE_DISABLE   false (any non-empty value disables)
// The string knobs are optionals with presence semantics: an engaged field
// wins over the environment even when its value is empty, so a caller can
// force "no extra flags" or "probe PATH for the compiler" while the
// corresponding variable is set.  A disengaged field (the default) falls
// through to the environment, then to the built-in default.  A disabled
// load refuses with the documented fallback reason — the switch CI and
// tests use to exercise the no-toolchain path deterministically.
//
// Tuning recipe: the default flags compile the emitted pipeline for a
// generic host ISA.  Set DOMINO_NATIVE_CXXFLAGS="-march=native" (or
// extra_flags) to let the columnar entry point use the full vector ISA of
// the build machine — at the cost of a .so that may not run elsewhere; the
// content hash keys on the flags, so both variants can share one cache.
struct NativeOptions {
  std::optional<std::string> compiler;
  std::optional<std::string> extra_flags;
  std::optional<std::string> cache_dir;
  bool disabled = false;
  bool force_recompile = false;  // ignore a cached .so, rebuild it
  // Size cap for the cache directory: after a successful compile the loader
  // LRU-sweeps (native_cache_sweep below) everything but the entry it just
  // produced until the cache fits.  Disengaged (the default) means no cap.
  // Environment form: DOMINO_NATIVE_CACHE_MAX_BYTES.
  std::optional<std::uint64_t> cache_max_bytes;

  // Reads the DOMINO_NATIVE_* variables.  A set, non-empty variable engages
  // the field; unset (or empty) leaves it disengaged so the built-in
  // default applies downstream.  The only place the environment is
  // consulted — compile_and_load() and every caller resolve through here.
  static NativeOptions from_env();
};

// --- Cache hygiene (dominoc --native-cache {stats,clear,sweep}) ------------
// Long-lived deployments accumulate one .cc/.so pair per (program, compiler,
// flags) triple; these operate on the resolved cache directory (`dir`, or
// the NativeOptions::from_env() resolution when empty).  An "entry" is the
// 16-hex-digit content-hash stem; stray temporaries from crashed compiles
// count as entries too so a sweep can reclaim them.
struct NativeCacheStats {
  std::string dir;
  std::size_t objects = 0;       // .so files
  std::size_t sources = 0;       // .cc files
  std::uint64_t total_bytes = 0; // everything under the directory
};

NativeCacheStats native_cache_stats(const std::string& dir = "");
// Removes every cache file.  Returns the number of files removed.
std::size_t native_cache_clear(const std::string& dir = "");
// LRU sweep: evicts whole entries (.so + .cc + logs sharing a stem), oldest
// last-use first (atime; the loader touches a .so's atime on every cache
// hit, so the order is meaningful on relatime/noatime mounts too), until the
// directory's total size is <= max_bytes.  `keep_hash` (when non-empty) is
// never evicted — compile_and_load passes the entry it just loaded.  Returns
// the number of files removed.
std::size_t native_cache_sweep(std::uint64_t max_bytes,
                               const std::string& dir = "",
                               const std::string& keep_hash = "");

class NativePipeline;

struct NativeLoadResult {
  std::shared_ptr<const NativePipeline> pipeline;  // null on failure
  std::string error;        // why `pipeline` is null; empty on success
  std::string source_path;  // emitted .cc in the cache (when written)
  std::string so_path;      // compiled shared object in the cache
  bool cache_hit = false;   // .so was reused, host compiler never ran
};

// A loaded native pipeline: the dlopen handle, the resolved entry point, and
// the load-time function-pointer tables (intrinsics, LUTs) the ABI struct
// points at.  Immutable after load and stateless at execution time — shared
// across machine clones exactly like the CompiledPipeline it was emitted
// from; concurrent run() calls against different state views are safe.
class NativePipeline {
 public:
  // Compiles `source` (the emit_native_cc rendering of `prog`) and loads it.
  // `prog` supplies the ABI tables and the shape metadata; it must be the
  // same sealed program the source was emitted from.
  static NativeLoadResult compile_and_load(const CompiledPipeline& prog,
                                           const std::string& source,
                                           const NativeOptions& opts = {});

  NativePipeline(const NativePipeline&) = delete;
  NativePipeline& operator=(const NativePipeline&) = delete;
  ~NativePipeline();

  // Runs `n` packets (raw field arrays, one per packet) through the whole
  // pipeline in place.  `views[k]` must be the bound view of
  // state_names()[k] — callers hold them in Machine's binding cache.
  // `counters`, when non-null, must point at one row per stage; only objects
  // emitted with counter support write it (others leave the rows untouched).
  void run(Value* const* pkts, std::uint64_t n, const NativeStateView* views,
           NativeStageCounterRow* counters = nullptr) const {
    NativeAbi abi;
    abi.states = views;
    abi.intrinsics = intrinsics_.data();
    abi.luts = luts_.data();
    abi.stage_counters = counters;
    fn_(pkts, n, &abi);
  }

  // Whether the loaded .so exports the columnar entry point.
  bool has_columnar() const { return cols_fn_ != nullptr; }
  // Runs the batch columnar: `cols[f]` is field f's dense column.  Only
  // callable when has_columnar().
  void run_columns(Value* const* cols, std::uint64_t n,
                   const NativeStateView* views,
                   NativeStageCounterRow* counters = nullptr) const {
    NativeAbi abi;
    abi.states = views;
    abi.intrinsics = intrinsics_.data();
    abi.luts = luts_.data();
    abi.stage_counters = counters;
    cols_fn_(cols, n, &abi);
  }

  std::size_t num_fields() const { return num_fields_; }
  std::size_t num_state_vars() const { return state_names_.size(); }
  const std::vector<std::string>& state_names() const { return state_names_; }
  const std::string& so_path() const { return so_path_; }

 private:
  NativePipeline() = default;

  void* handle_ = nullptr;
  NativeEntryFn fn_ = nullptr;
  NativeColsEntryFn cols_fn_ = nullptr;
  std::vector<IntrinsicFn> intrinsics_;  // one per intrinsic-pool entry
  std::vector<LutFn> luts_;              // one per stateful-pool entry
  std::vector<std::string> state_names_;
  std::size_t num_fields_ = 0;
  std::string so_path_;
};

}  // namespace banzai
