// FleetService: the always-on streaming form of the sharded engine.
//
// The paper's Banzai machine models a switch that never stops — packets
// arrive continuously and per-flow state persists indefinitely.  Fleet::run
// (the offline path) partitions a finished trace; FleetService instead keeps
// the same ShardCore hot behind a live ingest path:
//
//   ingest thread ──hash──► per-shard SpscRing ──► shard worker ──► ShardCore
//        │                                              │
//        │ (Block: wait for space; DropTail: shed)      ▼
//        └──────────────── drop tombstones ───► OrderedEgress ──► drain()
//
// Every offered packet gets a global sequence number on the ingest thread;
// workers deliver processed packets to the OrderedEgress sink, which releases
// them strictly in arrival order (DropTail losses leave tombstones so the
// order watermark never stalls on a shed packet).
//
// Lifecycle: start() spawns one worker per shard; stop() drains every ring
// and joins (all accepted packets are delivered before stop returns);
// flush() blocks until everything offered so far is delivered or dropped.
// A stopped service can snapshot() its per-slot state, hand it to a service
// with a *different shard count* via restore(), and resume — state migrates
// with its slot (slot = flow_hash % num_slots is shard-count-independent),
// so the resharded service is bit-identical to a fresh one fed the same
// packets.  tests/service_test.cc and tests/service_fuzz_test.cc pin all of
// these contracts differentially against sequential Machine::process.
//
// Threading contract: at most one ingest thread at a time; drain_egress(),
// flush() and stats() may be called from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "banzai/fleet.h"
#include "banzai/spsc_ring.h"
#include "banzai/stats.h"
#include "wire/codec.h"

namespace banzai {

enum class Backpressure {
  kBlock,     // ingest waits for ring space: lossless, applies backpressure
  kDropTail,  // ingest sheds the packet when its shard's ring is full
};

struct ServiceConfig {
  std::size_t num_shards = 1;
  // State granularity: per-flow state lives in one of num_slots replicas, and
  // slots (not shards) are the unit of migration when resharding.  Must be
  // >= num_shards and must be kept identical across snapshot/restore.
  std::size_t num_slots = 64;
  std::size_t batch_size = 256;
  std::size_t ring_capacity = 1024;  // per shard, rounded up to a power of two
  Backpressure backpressure = Backpressure::kBlock;
  // Batch shape each slot's BatchSim hands to Machine::run_batch (see
  // banzai/batch.h): kAuto keeps row-major ingress row-major.
  BatchDispatch batch_dispatch = BatchDispatch::kAuto;
  // Packet fields hashed together to pick a slot (and thus a shard).  Must be
  // non-empty unless num_slots == 1.
  std::vector<FieldId> flow_key;
  // Entries in the ingest-path heavy-hitter table (stats.h SpaceSaving,
  // keyed by flow_hash).  0 (the default) disables the detector entirely —
  // the ingest path then never touches it.
  std::size_t heavy_hitter_capacity = 0;
};

// Accounting for the byte-stream front end (ingest_frame / egress frames).
// The hardening invariant the wire fuzz suite pins: every offered frame is
// exactly one of parsed or rejected, and the per-status reject counters sum
// to frames_rejected — no frame is silently swallowed.
struct WireStats {
  std::uint64_t frames_parsed = 0;    // parsed clean and offered to ingest
  std::uint64_t frames_rejected = 0;  // sum of the three reject counters
  std::uint64_t reject_truncated = 0;
  std::uint64_t reject_oversized = 0;
  std::uint64_t reject_bad_value = 0;
  std::uint64_t bytes_in = 0;   // bytes of frames parsed clean
  std::uint64_t bytes_out = 0;  // bytes of egress frames deparsed
};

struct ServiceStats {
  std::uint64_t ingested = 0;   // offered = delivered + dropped + in flight
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;    // DropTail sheds
  WireStats wire;               // zero unless the byte path is in use
  double packets_per_sec = 0;   // delivered over wall-clock running time
  // Mean enqueue-to-egress latency where one tick == one subsequently
  // offered packet: a queueing-depth measure that is immune to clock jitter.
  double avg_latency_ticks = 0;
  // Latency quantiles in the same tick unit, from per-shard log2 histograms
  // merged at stats() time (stats.h): the reported value is the containing
  // bucket's upper edge, a conservative estimate within 2x.
  std::uint64_t latency_p50_ticks = 0;
  std::uint64_t latency_p99_ticks = 0;
  std::vector<std::size_t> queue_depth;  // current per-shard ring occupancy
  // Per-stage packets/ops/ns summed over every slot replica.  Exact (not
  // sampled) in -DDOMINO_STAGE_COUNTERS builds — tests/metrics_test.cc pins
  // the totals to a sequential reference per stage; all-zero otherwise.
  std::vector<StageCounterRow> stage_counters;
};

// Per-slot state checkpoint; the unit FleetService migrates on reshard.
struct ServiceSnapshot {
  std::size_t num_slots = 0;
  std::vector<StateStore> slot_state;
};

// Collects processed packets from all shard workers and releases them in
// global arrival (sequence) order.  Dropped sequence numbers are recorded as
// tombstones so the in-order watermark can pass over them.  Sequence numbers
// are dense, so the reorder window is a deque indexed by seq - next_ — O(1)
// per packet with no per-packet node allocation on the delivery hot path.
class OrderedEgress {
 public:
  void deliver(std::uint64_t seq, Packet&& pkt) {
    std::lock_guard<std::mutex> lock(mu_);
    put(seq, Cell::kDelivered, std::move(pkt));
    advance();
  }

  // Delivers n (seq, packet) pairs under one lock; pkts are consumed.
  void deliver_batch(const std::uint64_t* seqs, Packet* pkts, std::size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < n; ++i)
      put(seqs[i], Cell::kDelivered, std::move(pkts[i]));
    advance();
  }

  void drop(std::uint64_t seq) {
    std::lock_guard<std::mutex> lock(mu_);
    put(seq, Cell::kDropped, Packet());
    advance();
  }

  // All packets whose order is settled (every earlier sequence number is
  // delivered or dropped), in arrival order; clears them from the sink.
  std::vector<Packet> drain() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Packet> out = std::move(ready_);
    ready_.clear();
    return out;
  }

  // First sequence number not yet accounted for: when this reaches the
  // ingest counter, every offered packet is delivered or dropped.
  std::uint64_t watermark() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_;
  }

 private:
  struct Cell {
    enum State : std::uint8_t { kPending, kDelivered, kDropped };
    State state = kPending;
    Packet pkt;
  };

  void put(std::uint64_t seq, Cell::State state, Packet&& pkt) {
    const std::size_t idx = static_cast<std::size_t>(seq - next_);
    if (idx >= window_.size()) window_.resize(idx + 1);
    window_[idx].state = state;
    window_[idx].pkt = std::move(pkt);
  }

  void advance() {
    while (!window_.empty() && window_.front().state != Cell::kPending) {
      if (window_.front().state == Cell::kDelivered)
        ready_.push_back(std::move(window_.front().pkt));
      window_.pop_front();
      ++next_;
    }
  }

  mutable std::mutex mu_;
  std::deque<Cell> window_;  // window_[i] holds sequence number next_ + i
  std::vector<Packet> ready_;
  std::uint64_t next_ = 0;
};

class FleetService {
 public:
  FleetService(const Machine& prototype, ServiceConfig config);
  ~FleetService();
  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  // Spawns one worker thread per shard.  Idempotent while running.
  void start();

  // Drains every ring (all accepted packets are processed), joins the
  // workers and accumulates uptime.  Idempotent; start() may follow.
  void stop();

  // Blocks until every packet offered before the call is delivered or
  // dropped.  Requires a running service when packets are outstanding.
  void flush();

  // Offers one packet.  Returns true if accepted; false if shed (DropTail
  // with a full shard ring).  Under kBlock this waits for ring space and
  // always returns true.  Must not be called concurrently with itself.
  bool ingest(Packet pkt);

  // Offers a whole trace in order; returns how many packets were accepted.
  std::size_t ingest_all(const std::vector<Packet>& pkts);

  // ---- byte-stream front end (parse -> shard-hash -> pipeline -> deparse) --
  //
  // Attach an ingress codec (parses frames into machine packets) and an
  // egress codec (deparses processed packets back to frames; pass the
  // compiler's output_map() as its rename so final field values land on the
  // wire).  tx == nullptr reuses rx for both directions.  Must be called
  // while the service is stopped; both codecs must be bound against the
  // prototype machine's FieldTable.
  void set_wire(std::shared_ptr<const wire::WireCodec> rx,
                std::shared_ptr<const wire::WireCodec> tx = nullptr);

  struct FrameIngest {
    wire::ParseResult parse;
    bool accepted = false;  // false: rejected by parse, or shed by DropTail
  };

  // Offers one frame.  Exact framing (frames are headers: trailing payload
  // is kOversized).  A frame is either parsed and offered to ingest() — so
  // every ingest contract (ordering, backpressure, stats) applies — or
  // rejected with a typed status and counted, leaving no other trace: a
  // malformed frame can never reach a ring, a shard, or the egress window.
  // Same threading contract as ingest(): one caller at a time.
  FrameIngest ingest_frame(const std::uint8_t* data, std::size_t len);

  // Order-settled egress deparsed back to frames (one byte vector each), in
  // arrival order.  Requires set_wire.
  std::vector<std::vector<std::uint8_t>> drain_egress_frames();

  // Order-settled egress so far, in arrival order (see OrderedEgress).
  std::vector<Packet> drain_egress() { return egress_.drain(); }

  ServiceStats stats() const;

  // The top-k flows by offered-packet count, keyed by flow_hash, from the
  // ingest-path space-saving table (see stats.h for the estimate/error
  // guarantees).  Empty unless ServiceConfig::heavy_hitter_capacity > 0.
  // Counts offered load, so DropTail sheds are included — the detector's job
  // is to explain pressure, not delivery.  Any thread.
  std::vector<HeavyHitter> heavy_hitters(std::size_t k) const;

  // Checkpoint / elastic-resharding cycle.  Both require a stopped service;
  // restore additionally requires a matching slot count (resharding changes
  // num_shards, never num_slots).
  ServiceSnapshot snapshot() const;
  void restore(const ServiceSnapshot& snap);

  bool running() const { return running_.load(std::memory_order_acquire); }
  const ServiceConfig& config() const { return config_; }
  std::size_t num_shards() const { return core_.num_shards(); }
  std::size_t num_slots() const { return core_.num_slots(); }
  std::size_t slot_of(const Packet& pkt) const { return core_.slot_of(pkt); }
  std::size_t shard_of(const Packet& pkt) const { return core_.shard_of(pkt); }
  // The slot replica, for differential verification against a reference.
  Machine& slot_machine(std::size_t slot) { return core_.slot_machine(slot); }

 private:
  struct Item {
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    Packet pkt;
  };

  struct Shard {
    explicit Shard(std::size_t ring_capacity) : ring(ring_capacity) {}
    SpscRing<Item> ring;
    std::mutex mu;
    std::condition_variable cv;        // worker idle-sleep / wake-up
    std::atomic<bool> sleeping{false};
    std::thread worker;
    // Per-shard latency histogram: the worker records one sample per
    // delivered packet (batched, under lat_mu — uncontended except when
    // stats() merges).  Per-worker accumulation keeps the hot path free of
    // cross-shard sharing; stats() merges across shards.
    std::mutex lat_mu;
    LatencyHistogram lat_hist;
  };

  void worker_loop(std::size_t shard_index);
  void wake(Shard& shard);

  ServiceConfig config_;
  ShardCore core_;
  OrderedEgress egress_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Byte-stream front end.  Codecs are immutable after set_wire (which
  // requires a stopped service); counters are atomics because deparse
  // (drain_egress_frames) may run on a different thread than ingest_frame.
  std::shared_ptr<const wire::WireCodec> wire_rx_, wire_tx_;
  std::atomic<std::uint64_t> frames_parsed_{0};
  std::atomic<std::uint64_t> reject_truncated_{0};
  std::atomic<std::uint64_t> reject_oversized_{0};
  std::atomic<std::uint64_t> reject_bad_value_{0};
  std::atomic<std::uint64_t> wire_bytes_in_{0};
  std::atomic<std::uint64_t> wire_bytes_out_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // Ingest calls in flight.  Workers refuse to exit while this is non-zero,
  // closing the race where an ingest that passed the running_ check pushes
  // into a ring whose worker has already shut down (all seq_cst: the
  // increment is ordered before the stopping_ check on the producer, so a
  // worker that reads 0 after stopping_ was set cannot miss a push).
  std::atomic<std::uint64_t> ingest_inflight_{0};
  std::atomic<std::uint64_t> seq_counter_{0};  // ingest clock: offered packets
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> latency_ticks_sum_{0};

  // Heavy-hitter table, fed by the (single) ingest thread and read by
  // heavy_hitters()/metrics threads; null when disabled.  The mutex is off
  // the worker hot path entirely — only ingest and readers touch it.
  std::unique_ptr<SpaceSaving> hh_;
  mutable std::mutex hh_mu_;

  mutable std::mutex lifecycle_mu_;  // start/stop/snapshot/restore/uptime
  std::chrono::steady_clock::time_point started_at_{};
  double uptime_seconds_ = 0;
};

}  // namespace banzai
