// Flow-hash sharded execution of one compiled Banzai program, in two forms:
//
//   * ShardCore — the partition/drain engine both execution paths share.  One
//     compiled program is cloned into `num_slots` replicas ("slots", the
//     virtual shards of consistent hashing); a packet's flow key hashes to a
//     slot, and slots are dealt round-robin onto `num_shards` workers
//     (shard = slot % num_shards).  Because a slot carries its entire
//     StateStore, per-flow state can later be migrated to a different worker
//     count by moving whole slots — the mechanism behind FleetService's
//     snapshot → reshard → restore cycle.
//   * Fleet — the offline wrapper from PR 1: partition a whole trace, drain
//     every shard (optionally on worker threads), return.  It configures the
//     core with num_slots == num_shards, which reproduces the original
//     one-replica-per-shard behaviour bit for bit.
//
// What sharding preserves and what it gives up: flows that never share state
// cells behave identically to a single machine.  Flows on different slots no
// longer collide in shared state (e.g. two flows hashing to the same
// flowlet-table entry) — tests/fleet_test.cc pins down both sides of that
// contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "banzai/batch.h"
#include "banzai/machine.h"
#include "banzai/packet.h"

namespace banzai {

// The partition/drain core.  Thread-safety contract: calls for different
// shards may run concurrently (a shard's slots, BatchSims and scratch buffers
// are touched by no other shard because slot % num_shards is a partition);
// calls for the same shard must be serialized by the caller.
class ShardCore {
 public:
  ShardCore(const Machine& prototype, std::size_t num_slots,
            std::size_t num_shards, std::size_t batch_size,
            std::vector<FieldId> flow_key,
            BatchDispatch dispatch = BatchDispatch::kAuto);
  // Machines are copyable, but sims_ binds Machine& into this core's slots_:
  // a copy would silently execute against the source's state.
  ShardCore(const ShardCore&) = delete;
  ShardCore& operator=(const ShardCore&) = delete;

  std::size_t num_slots() const { return slots_.size(); }
  std::size_t num_shards() const { return num_shards_; }

  // Chained SplitMix64 over the flow-key fields: the one flow-hash definition
  // repo-wide (see sim/partition.h for the single-key form).
  std::uint64_t flow_hash(const Packet& pkt) const;
  std::size_t slot_of(const Packet& pkt) const;
  std::size_t shard_of(const Packet& pkt) const {
    return slot_of(pkt) % num_shards_;
  }

  Machine& slot_machine(std::size_t slot) { return slots_[slot]; }
  const Machine& slot_machine(std::size_t slot) const { return slots_[slot]; }

  // Cumulative batch statistics summed over the shard's slots.
  BatchStats shard_stats(std::size_t shard) const;

  // Drains n packets belonging to `shard` through their slot replicas,
  // preserving arrival order per slot, and writes the processed packet for
  // pkts[i] into out[i].  slot_ids[i] must equal slot_of(pkts[i]) and map to
  // `shard`; pkts are consumed (moved from).  Grouping the batch by slot is
  // legal because slots share no state: the per-slot sub-batches commute.
  void drain(std::size_t shard, const std::size_t* slot_ids, Packet* pkts,
             std::size_t n, Packet* out);

  // Whole-slot state checkpointing, indexed by slot.  restore_state accepts
  // snapshots taken from a core with any shard count, as long as the slot
  // count (and program shape) match — that is the elastic-resharding move.
  std::vector<StateStore> snapshot_state() const;
  void restore_state(const std::vector<StateStore>& snap);

  // Per-stage observability totals summed over every slot replica (stats.h).
  // Safe to call while shards drain concurrently: the constructor prepared
  // (and reset) each replica's table, so readers only race relaxed counter
  // loads — the result is a point-in-time snapshot that may trail in-flight
  // batches.  All-zero rows unless built with -DDOMINO_STAGE_COUNTERS.
  std::vector<StageCounterRow> stage_counter_rows() const;

 private:
  std::size_t num_shards_;
  std::vector<FieldId> flow_key_;
  std::vector<Machine> slots_;   // one replica per slot
  std::vector<BatchSim> sims_;   // one per slot, bound to slots_[i]
  struct Scratch {
    std::vector<std::vector<std::size_t>> idx;  // per slot: batch positions
    std::vector<std::size_t> touched;           // slots seen this drain
  };
  std::vector<Scratch> scratch_;  // one per shard, reused across drains
};

struct FleetConfig {
  std::size_t num_shards = 1;
  std::size_t batch_size = 256;
  bool parallel = true;  // run shards on worker threads
  // Batch shape each slot's BatchSim hands to Machine::run_batch (see
  // banzai/batch.h): kAuto keeps row-major ingress row-major.
  BatchDispatch batch_dispatch = BatchDispatch::kAuto;
  // Packet fields hashed together to pick a shard: the flow key.  Must be
  // non-empty unless num_shards == 1.
  std::vector<FieldId> flow_key;
};

struct ShardResult {
  std::vector<Packet> egress;             // in shard-arrival order
  std::vector<std::size_t> source_index;  // original trace index per packet
  BatchStats stats;
};

struct FleetResult {
  std::vector<ShardResult> shards;
  std::uint64_t packets = 0;

  // Egress merged back into the original trace order.
  std::vector<Packet> egress_in_order() const;
};

class Fleet {
 public:
  Fleet(const Machine& prototype, FleetConfig config);

  std::size_t num_shards() const { return core_.num_shards(); }
  Machine& shard_machine(std::size_t s) { return core_.slot_machine(s); }
  const Machine& shard_machine(std::size_t s) const {
    return core_.slot_machine(s);
  }
  const FleetConfig& config() const { return config_; }

  // The shard that serves this packet's flow.
  std::size_t shard_of(const Packet& pkt) const { return core_.shard_of(pkt); }

  // Partitions the trace by flow hash and drains every shard; shards run
  // concurrently when config.parallel is set.  Replica state persists across
  // calls, like a switch staying up across traffic; partition buffers and the
  // core's batch scratch persist too, so steady-state calls do not reallocate.
  FleetResult run(const std::vector<Packet>& trace);

 private:
  FleetConfig config_;
  ShardCore core_;
  struct ShardBuffers {
    std::vector<Packet> pkts;
    std::vector<std::size_t> slots;
  };
  std::vector<ShardBuffers> buffers_;  // reused across run() calls
};

}  // namespace banzai
