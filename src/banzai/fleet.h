// Fleet: N replica Banzai machines behind a flow-hash load balancer.
//
// One compiled program is cloned into N independent machines (each with its
// own StateStore); traffic is partitioned by a hash of designated flow-key
// packet fields, so every packet of a flow is served by the same replica and
// per-flow state evolves exactly as on a single machine.  Shards execute on
// worker threads, each draining its partition through a BatchSim, scaling
// aggregate packets/sec with shard count — the scale-out move multi-pipeline
// P4 targets make in hardware.
//
// What sharding preserves and what it gives up: flows that never share state
// cells behave identically to a single machine.  Flows on different shards no
// longer collide in shared state (e.g. two flows hashing to the same
// flowlet-table slot) — tests/fleet_test.cc pins down both sides of that
// contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "banzai/batch.h"
#include "banzai/machine.h"
#include "banzai/packet.h"

namespace banzai {

struct FleetConfig {
  std::size_t num_shards = 1;
  std::size_t batch_size = 256;
  bool parallel = true;  // run shards on worker threads
  // Packet fields hashed together to pick a shard: the flow key.  Must be
  // non-empty unless num_shards == 1.
  std::vector<FieldId> flow_key;
};

struct ShardResult {
  std::vector<Packet> egress;             // in shard-arrival order
  std::vector<std::size_t> source_index;  // original trace index per packet
  BatchStats stats;
};

struct FleetResult {
  std::vector<ShardResult> shards;
  std::uint64_t packets = 0;

  // Egress merged back into the original trace order.
  std::vector<Packet> egress_in_order() const;
};

class Fleet {
 public:
  Fleet(const Machine& prototype, FleetConfig config);

  std::size_t num_shards() const { return replicas_.size(); }
  Machine& shard_machine(std::size_t s) { return replicas_[s]; }
  const Machine& shard_machine(std::size_t s) const { return replicas_[s]; }
  const FleetConfig& config() const { return config_; }

  // The shard that serves this packet's flow.
  std::size_t shard_of(const Packet& pkt) const;

  // Partitions the trace by flow hash and drains every shard; shards run
  // concurrently when config.parallel is set.  Replica state persists across
  // calls, like a switch staying up across traffic.
  FleetResult run(const std::vector<Packet>& trace);

 private:
  FleetConfig config_;
  std::vector<Machine> replicas_;
};

}  // namespace banzai
