#include "banzai/kernel.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>

#include "banzai/stats.h"

namespace banzai {

namespace {

constexpr std::size_t kInlineStateVars = 16;

const char* kop_name(KOp code) {
  switch (code) {
    case KOp::kMov: return "mov";
    case KOp::kNeg: return "neg";
    case KOp::kLNot: return "lnot";
    case KOp::kBitNot: return "bnot";
    case KOp::kAdd: return "add";
    case KOp::kSub: return "sub";
    case KOp::kMul: return "mul";
    case KOp::kDiv: return "div";
    case KOp::kMod: return "mod";
    case KOp::kShl: return "shl";
    case KOp::kShr: return "shr";
    case KOp::kBitAnd: return "and";
    case KOp::kBitOr: return "or";
    case KOp::kBitXor: return "xor";
    case KOp::kLAnd: return "land";
    case KOp::kLOr: return "lor";
    case KOp::kLt: return "lt";
    case KOp::kLe: return "le";
    case KOp::kGt: return "gt";
    case KOp::kGe: return "ge";
    case KOp::kEq: return "eq";
    case KOp::kNe: return "ne";
    case KOp::kSelect: return "sel";
    case KOp::kIntrinsic: return "intrin";
    case KOp::kStateful: return "stateful";
  }
  return "?";
}

const char* krel_name(KRel rel) {
  switch (rel) {
    case KRel::kAlways: return "always";
    case KRel::kLt: return "<";
    case KRel::kLe: return "<=";
    case KRel::kGt: return ">";
    case KRel::kGe: return ">=";
    case KRel::kEq: return "==";
    case KRel::kNe: return "!=";
  }
  return "?";
}

const char* karm_name(KArm mode) {
  switch (mode) {
    case KArm::kKeep: return "keep";
    case KArm::kSet: return "set";
    case KArm::kAdd: return "add";
    case KArm::kSubt: return "sub";
    case KArm::kSetAdd: return "set+";
    case KArm::kSetSub: return "set-";
    case KArm::kAddSub: return "add-sub";
    case KArm::kLutAdd: return "lut+";
  }
  return "?";
}

std::string src_str(const KSrc& s) {
  return s.is_const ? std::to_string(s.cst) : "f" + std::to_string(s.field);
}

std::string ref_str(const KRef& r) {
  switch (r.kind) {
    case KRef::Kind::kConst: return std::to_string(r.cst);
    case KRef::Kind::kField: return "f" + std::to_string(r.field);
    case KRef::Kind::kState: return "s" + std::to_string(r.state_idx);
  }
  return "?";
}

int operand_count(KOp code) {
  switch (code) {
    case KOp::kMov:
    case KOp::kNeg:
    case KOp::kLNot:
    case KOp::kBitNot:
      return 1;
    case KOp::kSelect:
      return 3;
    default:
      return 2;
  }
}

bool eval_pred(const KPred& pred, const Packet& p, const Value* states_in) {
  if (pred.rel == KRel::kAlways) return true;
  const Value a = pred.a.get(p, states_in);
  const Value b = pred.b.get(p, states_in);
  switch (pred.rel) {
    case KRel::kAlways: return true;
    case KRel::kLt: return a < b;
    case KRel::kLe: return a <= b;
    case KRel::kGt: return a > b;
    case KRel::kGe: return a >= b;
    case KRel::kEq: return a == b;
    case KRel::kNe: return a != b;
  }
  return false;
}

Value eval_arm(const KArmOp& arm, Value x, const Packet& p,
               const Value* states_in, LutFn lut) {
  const Value s1 = arm.src1.get(p, states_in);
  const Value s2 = arm.src2.get(p, states_in);
  switch (arm.mode) {
    case KArm::kKeep: return x;
    case KArm::kSet: return s1;
    case KArm::kAdd: return wrap_add(x, s1);
    case KArm::kSubt: return wrap_sub(x, s1);
    case KArm::kSetAdd: return wrap_add(s1, s2);
    case KArm::kSetSub: return wrap_sub(s1, s2);
    case KArm::kAddSub: return wrap_sub(wrap_add(x, s1), s2);
    case KArm::kLutAdd: return wrap_add(lut(s1), s2);
  }
  return x;
}

// Columnar twins of KSrc::get / KRef::get / eval_pred / eval_arm: operand i
// of column f lives at cb.col(f)[i] instead of pkts[i][f].
Value src_get_col(const KSrc& s, const ColumnBatch& cb, std::size_t i) {
  return s.is_const ? s.cst : cb.col(s.field)[i];
}

Value ref_get_col(const KRef& r, const ColumnBatch& cb, std::size_t i,
                  const Value* states_in) {
  switch (r.kind) {
    case KRef::Kind::kConst: return r.cst;
    case KRef::Kind::kField: return cb.col(r.field)[i];
    case KRef::Kind::kState: return states_in[r.state_idx];
  }
  return 0;
}

bool eval_pred_col(const KPred& pred, const ColumnBatch& cb, std::size_t i,
                   const Value* states_in) {
  if (pred.rel == KRel::kAlways) return true;
  const Value a = ref_get_col(pred.a, cb, i, states_in);
  const Value b = ref_get_col(pred.b, cb, i, states_in);
  switch (pred.rel) {
    case KRel::kAlways: return true;
    case KRel::kLt: return a < b;
    case KRel::kLe: return a <= b;
    case KRel::kGt: return a > b;
    case KRel::kGe: return a >= b;
    case KRel::kEq: return a == b;
    case KRel::kNe: return a != b;
  }
  return false;
}

Value eval_arm_col(const KArmOp& arm, Value x, const ColumnBatch& cb,
                   std::size_t i, const Value* states_in, LutFn lut) {
  const Value s1 = ref_get_col(arm.src1, cb, i, states_in);
  const Value s2 = ref_get_col(arm.src2, cb, i, states_in);
  switch (arm.mode) {
    case KArm::kKeep: return x;
    case KArm::kSet: return s1;
    case KArm::kAdd: return wrap_add(x, s1);
    case KArm::kSubt: return wrap_sub(x, s1);
    case KArm::kSetAdd: return wrap_add(s1, s2);
    case KArm::kSetSub: return wrap_sub(s1, s2);
    case KArm::kAddSub: return wrap_sub(wrap_add(x, s1), s2);
    case KArm::kLutAdd: return wrap_add(lut(s1), s2);
  }
  return x;
}

}  // namespace

void CompiledPipeline::begin_stage() {
  const auto at = static_cast<std::uint32_t>(ops_.size());
  stages_.push_back({at, at});
}

void CompiledPipeline::require_open_stage() const {
  if (stages_.empty())
    throw std::logic_error(
        "CompiledPipeline: add an op before the first begin_stage()");
}

void CompiledPipeline::add_alu(KOp code, std::uint32_t dst, KSrc a, KSrc b,
                               KSrc c) {
  require_open_stage();
  MicroOp op;
  op.code = code;
  op.dst = dst;
  op.a = a;
  op.b = b;
  op.c = c;
  ops_.push_back(op);
  stages_.back().end = static_cast<std::uint32_t>(ops_.size());
}

void CompiledPipeline::add_intrinsic(std::uint32_t dst,
                                     const IntrinsicOp& payload) {
  require_open_stage();
  if (payload.fn == nullptr)
    throw std::logic_error("CompiledPipeline: intrinsic without a body");
  if (payload.num_args > IntrinsicOp::kMaxArgs)
    throw std::logic_error("CompiledPipeline: intrinsic arity exceeds pool");
  MicroOp op;
  op.code = KOp::kIntrinsic;
  op.dst = dst;
  op.aux = static_cast<std::uint32_t>(intrinsics_.size());
  intrinsics_.push_back(payload);
  ops_.push_back(op);
  stages_.back().end = static_cast<std::uint32_t>(ops_.size());
}

void CompiledPipeline::add_stateful(const StatefulOp& sop,
                                    const std::vector<KLiveOut>& liveouts) {
  require_open_stage();
  StatefulOp stored = sop;
  stored.liveout_begin = static_cast<std::uint32_t>(liveouts_.size());
  liveouts_.insert(liveouts_.end(), liveouts.begin(), liveouts.end());
  stored.liveout_end = static_cast<std::uint32_t>(liveouts_.size());
  MicroOp op;
  op.code = KOp::kStateful;
  op.aux = static_cast<std::uint32_t>(stateful_.size());
  stateful_.push_back(stored);
  ops_.push_back(op);
  stages_.back().end = static_cast<std::uint32_t>(ops_.size());
}

std::uint32_t CompiledPipeline::intern_state(const std::string& name) {
  auto it = state_index_.find(name);
  if (it != state_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(state_names_.size());
  state_names_.push_back(name);
  state_index_.emplace(name, id);
  return id;
}

void CompiledPipeline::seal(std::size_t num_fields) {
  num_fields_ = num_fields;
  verify_in_place_safe();
  compute_liveness();
  sealed_ = true;
}

// One program-order scan suffices because every store in this ISA executes
// unconditionally (kSelect selects values, stateful templates select update
// arms — no op ever skips its write): a field first touched by a write can
// never observe its pre-program value, and a field no op stores to can never
// change.  Stage boundaries are irrelevant here — within a stage reads see
// stage-entry values, but verify_in_place_safe has already rejected
// intra-stage read-after-write, so program order and stage order agree.
void CompiledPipeline::compute_liveness() {
  enum : std::uint8_t { kUntouched, kLiveIn, kDefinedFirst };
  std::vector<std::uint8_t> cls(num_fields_, kUntouched);
  auto read = [&](std::uint32_t f) {
    if (cls[f] == kUntouched) cls[f] = kLiveIn;
  };
  auto read_src = [&](const KSrc& s) {
    if (!s.is_const) read(s.field);
  };
  auto read_ref = [&](const KRef& r) {
    if (r.kind == KRef::Kind::kField) read(r.field);
  };
  std::vector<bool> written(num_fields_, false);
  auto write = [&](std::uint32_t f) {
    if (cls[f] == kUntouched) cls[f] = kDefinedFirst;
    written[f] = true;
  };
  for (const MicroOp& op : ops_) {
    switch (op.code) {
      case KOp::kIntrinsic: {
        const IntrinsicOp& io = intrinsics_[op.aux];
        for (std::size_t i = 0; i < io.num_args; ++i) read_src(io.args[i]);
        write(op.dst);
        break;
      }
      case KOp::kStateful: {
        const StatefulOp& so = stateful_[op.aux];
        for (std::size_t k = 0; k < so.num_states; ++k)
          if (so.slots[k].is_array) read(so.slots[k].index_field);
        for (const KPred& pr : so.preds) {
          read_ref(pr.a);
          read_ref(pr.b);
        }
        for (const auto& leaf : so.arms)
          for (const KArmOp& arm : leaf) {
            read_ref(arm.src1);
            read_ref(arm.src2);
          }
        for (std::uint32_t l = so.liveout_begin; l < so.liveout_end; ++l)
          write(liveouts_[l].dst);
        break;
      }
      default:
        read_src(op.a);
        read_src(op.b);
        read_src(op.c);
        write(op.dst);
        break;
    }
  }
  live_in_fields_.clear();
  written_fields_.clear();
  for (std::uint32_t f = 0; f < num_fields_; ++f) {
    if (cls[f] == kLiveIn) live_in_fields_.push_back(f);
    if (written[f]) written_fields_.push_back(f);
  }
}

// In-place execution is only equivalent to the closure engine's
// copy-in/copy-out stage semantics when, within each stage, (a) no two ops
// write the same field and (b) no op reads a field an earlier op of the same
// stage writes.  The pipeliner guarantees both (same-stage codelets are
// mutually independent with disjoint outputs); this check turns a violated
// assumption into a loud compile-time failure instead of silent divergence.
void CompiledPipeline::verify_in_place_safe() const {
  auto op_reads = [&](const MicroOp& op, std::vector<std::uint32_t>& out) {
    out.clear();
    auto add_src = [&](const KSrc& s) {
      if (!s.is_const) out.push_back(s.field);
    };
    auto add_ref = [&](const KRef& r) {
      if (r.kind == KRef::Kind::kField) out.push_back(r.field);
    };
    switch (op.code) {
      case KOp::kIntrinsic: {
        const IntrinsicOp& io = intrinsics_[op.aux];
        for (std::size_t i = 0; i < io.num_args; ++i) add_src(io.args[i]);
        break;
      }
      case KOp::kStateful: {
        const StatefulOp& so = stateful_[op.aux];
        for (std::size_t k = 0; k < so.num_states; ++k)
          if (so.slots[k].is_array) out.push_back(so.slots[k].index_field);
        for (const KPred& pr : so.preds) {
          add_ref(pr.a);
          add_ref(pr.b);
        }
        for (const auto& leaf : so.arms)
          for (const KArmOp& arm : leaf) {
            add_ref(arm.src1);
            add_ref(arm.src2);
          }
        break;
      }
      default:
        add_src(op.a);
        add_src(op.b);
        add_src(op.c);
        break;
    }
  };
  auto op_writes = [&](const MicroOp& op, std::vector<std::uint32_t>& out) {
    out.clear();
    if (op.code == KOp::kStateful) {
      const StatefulOp& so = stateful_[op.aux];
      for (std::uint32_t l = so.liveout_begin; l < so.liveout_end; ++l)
        out.push_back(liveouts_[l].dst);
    } else {
      out.push_back(op.dst);
    }
  };

  // Op-major batching additionally relies on §2.3's state locality: every
  // state variable is owned by exactly one op program-wide, or interleaving
  // packets across ops would reorder that variable's update sequence.
  std::set<std::uint32_t> state_owned;
  for (const StatefulOp& so : stateful_)
    for (std::size_t k = 0; k < so.num_states; ++k)
      if (!state_owned.insert(so.slots[k].var).second)
        throw std::logic_error(
            "CompiledPipeline: state variable '" +
            state_names_[so.slots[k].var] +
            "' is owned by two stateful ops — op-major batching would "
            "reorder its updates");

  std::vector<std::uint32_t> reads, writes;
  for (const StageRange& st : stages_) {
    std::set<std::uint32_t> written;  // by earlier ops of this stage
    for (std::uint32_t i = st.begin; i < st.end; ++i) {
      op_reads(ops_[i], reads);
      for (std::uint32_t f : reads) {
        if (f >= num_fields_)
          throw std::logic_error(
              "CompiledPipeline: op reads field " + std::to_string(f) +
              " beyond the program's " + std::to_string(num_fields_) +
              " fields");
        if (written.count(f))
          throw std::logic_error(
              "CompiledPipeline: intra-stage read-after-write on field " +
              std::to_string(f) + " — stage is not in-place safe");
      }
      op_writes(ops_[i], writes);
      for (std::uint32_t f : writes) {
        if (f >= num_fields_)
          throw std::logic_error(
              "CompiledPipeline: op writes field " + std::to_string(f) +
              " beyond the program's " + std::to_string(num_fields_) +
              " fields");
        if (!written.insert(f).second)
          throw std::logic_error(
              "CompiledPipeline: two ops of one stage write field " +
              std::to_string(f));
      }
    }
  }
}

void CompiledPipeline::run_batch(Packet* pkts, std::size_t n,
                                 StateStore& state) const {
  if (n == 0) return;
  // One state resolution per batch.
  StateVar* inline_vars[kInlineStateVars];
  std::vector<StateVar*> heap_vars;
  StateVar** vars = inline_vars;
  if (state_names_.size() > kInlineStateVars) {
    heap_vars.resize(state_names_.size());
    vars = heap_vars.data();
  }
  resolve_state(state, vars);
  run_batch_bound(pkts, n, vars);
}

void CompiledPipeline::run_batch_bound(Packet* pkts, std::size_t n,
                                       StateVar* const* vars) const {
  if (n == 0) return;
  if (!sealed_)
    throw std::logic_error("CompiledPipeline: run before seal()");
  for (std::size_t i = 0; i < n; ++i)
    if (pkts[i].num_fields() < num_fields_)
      throw std::invalid_argument(
          "CompiledPipeline: packet narrower than the compiled program's "
          "field table");
  run_ops_bound(0, static_cast<std::uint32_t>(ops_.size()), pkts, n, vars);
}

void CompiledPipeline::run_stage(std::size_t stage, Packet& pkt,
                                 StateStore& state) const {
  StateVar* inline_vars[kInlineStateVars];
  std::vector<StateVar*> heap_vars;
  StateVar** vars = inline_vars;
  if (state_names_.size() > kInlineStateVars) {
    heap_vars.resize(state_names_.size());
    vars = heap_vars.data();
  }
  resolve_state(state, vars);
  run_stage_bound(stage, pkt, vars);
}

void CompiledPipeline::run_stage_bound(std::size_t stage, Packet& pkt,
                                       StateVar* const* vars) const {
  if (!sealed_)
    throw std::logic_error("CompiledPipeline: run before seal()");
  if (stage >= stages_.size())
    throw std::out_of_range("CompiledPipeline: stage index out of range");
  if (pkt.num_fields() < num_fields_)
    throw std::invalid_argument(
        "CompiledPipeline: packet narrower than the compiled program's "
        "field table");
  const StageRange& r = stages_[stage];
  run_ops_bound(r.begin, r.end, &pkt, 1, vars);
}

void CompiledPipeline::run_ops_bound(std::uint32_t first, std::uint32_t last,
                                     Packet* pkts, std::size_t n,
                                     StateVar* const* vars) const {
  // Op-major: one dispatch per op per batch, packets innermost.
  for (std::uint32_t oi = first; oi < last; ++oi) {
    const MicroOp& op = ops_[oi];
    auto unary = [&](auto f) {
      for (std::size_t i = 0; i < n; ++i) {
        Packet& p = pkts[i];
        p[op.dst] = f(op.a.get(p));
      }
    };
    auto binary = [&](auto f) {
      for (std::size_t i = 0; i < n; ++i) {
        Packet& p = pkts[i];
        p[op.dst] = f(op.a.get(p), op.b.get(p));
      }
    };
    switch (op.code) {
      case KOp::kMov:
        unary([](Value a) { return a; });
        break;
      case KOp::kNeg:
        unary([](Value a) { return wrap_sub(0, a); });
        break;
      case KOp::kLNot:
        unary([](Value a) { return a == 0 ? 1 : 0; });
        break;
      case KOp::kBitNot:
        unary([](Value a) { return ~a; });
        break;
      case KOp::kAdd:
        binary([](Value a, Value b) { return wrap_add(a, b); });
        break;
      case KOp::kSub:
        binary([](Value a, Value b) { return wrap_sub(a, b); });
        break;
      case KOp::kMul:
        binary([](Value a, Value b) { return wrap_mul(a, b); });
        break;
      case KOp::kDiv:
        binary([](Value a, Value b) { return total_div(a, b); });
        break;
      case KOp::kMod:
        binary([](Value a, Value b) { return total_mod(a, b); });
        break;
      case KOp::kShl:
        binary([](Value a, Value b) { return shift_left(a, b); });
        break;
      case KOp::kShr:
        binary([](Value a, Value b) { return shift_right(a, b); });
        break;
      case KOp::kBitAnd:
        binary([](Value a, Value b) { return a & b; });
        break;
      case KOp::kBitOr:
        binary([](Value a, Value b) { return a | b; });
        break;
      case KOp::kBitXor:
        binary([](Value a, Value b) { return a ^ b; });
        break;
      case KOp::kLAnd:
        binary([](Value a, Value b) { return (a != 0 && b != 0) ? 1 : 0; });
        break;
      case KOp::kLOr:
        binary([](Value a, Value b) { return (a != 0 || b != 0) ? 1 : 0; });
        break;
      case KOp::kLt:
        binary([](Value a, Value b) { return a < b ? 1 : 0; });
        break;
      case KOp::kLe:
        binary([](Value a, Value b) { return a <= b ? 1 : 0; });
        break;
      case KOp::kGt:
        binary([](Value a, Value b) { return a > b ? 1 : 0; });
        break;
      case KOp::kGe:
        binary([](Value a, Value b) { return a >= b ? 1 : 0; });
        break;
      case KOp::kEq:
        binary([](Value a, Value b) { return a == b ? 1 : 0; });
        break;
      case KOp::kNe:
        binary([](Value a, Value b) { return a != b ? 1 : 0; });
        break;
      case KOp::kSelect:
        for (std::size_t i = 0; i < n; ++i) {
          Packet& p = pkts[i];
          p[op.dst] = op.a.get(p) != 0 ? op.b.get(p) : op.c.get(p);
        }
        break;
      case KOp::kIntrinsic: {
        const IntrinsicOp& io = intrinsics_[op.aux];
        for (std::size_t i = 0; i < n; ++i) {
          Packet& p = pkts[i];
          Value argv[IntrinsicOp::kMaxArgs];
          for (std::size_t j = 0; j < io.num_args; ++j)
            argv[j] = io.args[j].get(p);
          Value v = io.fn(argv, io.num_args);
          if (io.mod > 0) v = total_mod(v, io.mod);
          p[op.dst] = v;
        }
        break;
      }
      case KOp::kStateful: {
        const StatefulOp& so = stateful_[op.aux];
        StateVar* const sv[2] = {vars[so.slots[0].var],
                           so.num_states > 1 ? vars[so.slots[1].var] : nullptr};
        for (std::size_t i = 0; i < n; ++i) {
          Packet& p = pkts[i];
          Value states_in[2] = {0, 0}, states_out[2] = {0, 0};
          Value idx[2] = {0, 0};
          for (std::size_t k = 0; k < so.num_states; ++k) {
            if (so.slots[k].is_array) {
              idx[k] = p[so.slots[k].index_field];
              states_in[k] = sv[k]->load(idx[k]);
            } else {
              states_in[k] = sv[k]->load_scalar();
            }
          }
          int leaf = 0;
          if (so.pred_levels >= 1) {
            const bool p1 = eval_pred(so.preds[0], p, states_in);
            if (so.pred_levels == 1) {
              leaf = p1 ? 0 : 1;
            } else if (p1) {
              leaf = eval_pred(so.preds[1], p, states_in) ? 0 : 1;
            } else {
              leaf = eval_pred(so.preds[2], p, states_in) ? 2 : 3;
            }
          }
          const auto lf = static_cast<std::size_t>(leaf);
          for (std::size_t k = 0; k < so.num_states; ++k)
            states_out[k] =
                eval_arm(so.arms[lf][k], states_in[k], p, states_in, so.lut);
          for (std::size_t k = 0; k < so.num_states; ++k) {
            if (so.slots[k].is_array)
              sv[k]->store(idx[k], states_out[k]);
            else
              sv[k]->store_scalar(states_out[k]);
          }
          for (std::uint32_t l = so.liveout_begin; l < so.liveout_end; ++l) {
            const KLiveOut& lo = liveouts_[l];
            p[lo.dst] = lo.use_new ? states_out[lo.state_idx]
                                   : states_in[lo.state_idx];
          }
        }
        break;
      }
    }
  }
}

void CompiledPipeline::run_columns(ColumnBatch& cb, StateStore& state) const {
  if (cb.size() == 0) return;
  StateVar* inline_vars[kInlineStateVars];
  std::vector<StateVar*> heap_vars;
  StateVar** vars = inline_vars;
  if (state_names_.size() > kInlineStateVars) {
    heap_vars.resize(state_names_.size());
    vars = heap_vars.data();
  }
  resolve_state(state, vars);
  run_columns_bound(cb, vars);
}

void CompiledPipeline::run_columns_bound(ColumnBatch& cb,
                                         StateVar* const* vars) const {
  const std::size_t n = cb.size();
  if (n == 0) return;
  if (!sealed_)
    throw std::logic_error("CompiledPipeline: run before seal()");
  if (cb.num_fields() < num_fields_)
    throw std::invalid_argument(
        "CompiledPipeline: column batch narrower than the compiled program's "
        "field table");
  run_col_ops_bound(0, static_cast<std::uint32_t>(ops_.size()), cb, vars);
}

void CompiledPipeline::run_col_ops_bound(std::uint32_t first,
                                         std::uint32_t last, ColumnBatch& cb,
                                         StateVar* const* vars) const {
  const std::size_t n = cb.size();
  // Op-major as in run_batch_bound, but a stateless op is now one contiguous
  // column loop.  The const-ness of each operand is resolved before the loop
  // so the loop body is a branch-free array expression.  dst may alias an
  // operand column (dst == src is a same-index read-then-write, which is safe
  // elementwise); distinct columns never overlap.
  for (std::uint32_t oi = first; oi < last; ++oi) {
    const MicroOp& op = ops_[oi];
    auto unary = [&](auto f) {
      Value* const dst = cb.col(op.dst);
      if (op.a.is_const) {
        const Value v = f(op.a.cst);
        for (std::size_t i = 0; i < n; ++i) dst[i] = v;
      } else {
        const Value* const a = cb.col(op.a.field);
        for (std::size_t i = 0; i < n; ++i) dst[i] = f(a[i]);
      }
    };
    auto binary = [&](auto f) {
      Value* const dst = cb.col(op.dst);
      if (!op.a.is_const && !op.b.is_const) {
        const Value* const a = cb.col(op.a.field);
        const Value* const b = cb.col(op.b.field);
        for (std::size_t i = 0; i < n; ++i) dst[i] = f(a[i], b[i]);
      } else if (!op.a.is_const) {
        const Value* const a = cb.col(op.a.field);
        const Value bc = op.b.cst;
        for (std::size_t i = 0; i < n; ++i) dst[i] = f(a[i], bc);
      } else if (!op.b.is_const) {
        const Value ac = op.a.cst;
        const Value* const b = cb.col(op.b.field);
        for (std::size_t i = 0; i < n; ++i) dst[i] = f(ac, b[i]);
      } else {
        const Value v = f(op.a.cst, op.b.cst);
        for (std::size_t i = 0; i < n; ++i) dst[i] = v;
      }
    };
    switch (op.code) {
      case KOp::kMov:
        unary([](Value a) { return a; });
        break;
      case KOp::kNeg:
        unary([](Value a) { return wrap_sub(0, a); });
        break;
      case KOp::kLNot:
        unary([](Value a) { return a == 0 ? 1 : 0; });
        break;
      case KOp::kBitNot:
        unary([](Value a) { return ~a; });
        break;
      case KOp::kAdd:
        binary([](Value a, Value b) { return wrap_add(a, b); });
        break;
      case KOp::kSub:
        binary([](Value a, Value b) { return wrap_sub(a, b); });
        break;
      case KOp::kMul:
        binary([](Value a, Value b) { return wrap_mul(a, b); });
        break;
      case KOp::kDiv:
        binary([](Value a, Value b) { return total_div(a, b); });
        break;
      case KOp::kMod:
        binary([](Value a, Value b) { return total_mod(a, b); });
        break;
      case KOp::kShl:
        binary([](Value a, Value b) { return shift_left(a, b); });
        break;
      case KOp::kShr:
        binary([](Value a, Value b) { return shift_right(a, b); });
        break;
      case KOp::kBitAnd:
        binary([](Value a, Value b) { return a & b; });
        break;
      case KOp::kBitOr:
        binary([](Value a, Value b) { return a | b; });
        break;
      case KOp::kBitXor:
        binary([](Value a, Value b) { return a ^ b; });
        break;
      case KOp::kLAnd:
        binary([](Value a, Value b) { return (a != 0 && b != 0) ? 1 : 0; });
        break;
      case KOp::kLOr:
        binary([](Value a, Value b) { return (a != 0 || b != 0) ? 1 : 0; });
        break;
      case KOp::kLt:
        binary([](Value a, Value b) { return a < b ? 1 : 0; });
        break;
      case KOp::kLe:
        binary([](Value a, Value b) { return a <= b ? 1 : 0; });
        break;
      case KOp::kGt:
        binary([](Value a, Value b) { return a > b ? 1 : 0; });
        break;
      case KOp::kGe:
        binary([](Value a, Value b) { return a >= b ? 1 : 0; });
        break;
      case KOp::kEq:
        binary([](Value a, Value b) { return a == b ? 1 : 0; });
        break;
      case KOp::kNe:
        binary([](Value a, Value b) { return a != b ? 1 : 0; });
        break;
      case KOp::kSelect: {
        Value* const dst = cb.col(op.dst);
        const Value* const a = op.a.is_const ? nullptr : cb.col(op.a.field);
        const Value* const b = op.b.is_const ? nullptr : cb.col(op.b.field);
        const Value* const c = op.c.is_const ? nullptr : cb.col(op.c.field);
        for (std::size_t i = 0; i < n; ++i) {
          const Value av = a ? a[i] : op.a.cst;
          dst[i] = av != 0 ? (b ? b[i] : op.b.cst) : (c ? c[i] : op.c.cst);
        }
        break;
      }
      case KOp::kIntrinsic: {
        const IntrinsicOp& io = intrinsics_[op.aux];
        Value* const dst = cb.col(op.dst);
        for (std::size_t i = 0; i < n; ++i) {
          Value argv[IntrinsicOp::kMaxArgs];
          for (std::size_t j = 0; j < io.num_args; ++j)
            argv[j] = src_get_col(io.args[j], cb, i);
          Value v = io.fn(argv, io.num_args);
          if (io.mod > 0) v = total_mod(v, io.mod);
          dst[i] = v;
        }
        break;
      }
      case KOp::kStateful: {
        const StatefulOp& so = stateful_[op.aux];
        StateVar* const sv[2] = {vars[so.slots[0].var],
                           so.num_states > 1 ? vars[so.slots[1].var] : nullptr};
        for (std::size_t i = 0; i < n; ++i) {
          Value states_in[2] = {0, 0}, states_out[2] = {0, 0};
          Value idx[2] = {0, 0};
          for (std::size_t k = 0; k < so.num_states; ++k) {
            if (so.slots[k].is_array) {
              idx[k] = cb.col(so.slots[k].index_field)[i];
              states_in[k] = sv[k]->load(idx[k]);
            } else {
              states_in[k] = sv[k]->load_scalar();
            }
          }
          int leaf = 0;
          if (so.pred_levels >= 1) {
            const bool p1 = eval_pred_col(so.preds[0], cb, i, states_in);
            if (so.pred_levels == 1) {
              leaf = p1 ? 0 : 1;
            } else if (p1) {
              leaf = eval_pred_col(so.preds[1], cb, i, states_in) ? 0 : 1;
            } else {
              leaf = eval_pred_col(so.preds[2], cb, i, states_in) ? 2 : 3;
            }
          }
          const auto lf = static_cast<std::size_t>(leaf);
          for (std::size_t k = 0; k < so.num_states; ++k)
            states_out[k] = eval_arm_col(so.arms[lf][k], states_in[k], cb, i,
                                         states_in, so.lut);
          for (std::size_t k = 0; k < so.num_states; ++k) {
            if (so.slots[k].is_array)
              sv[k]->store(idx[k], states_out[k]);
            else
              sv[k]->store_scalar(states_out[k]);
          }
          for (std::uint32_t l = so.liveout_begin; l < so.liveout_end; ++l) {
            const KLiveOut& lo = liveouts_[l];
            cb.col(lo.dst)[i] = lo.use_new ? states_out[lo.state_idx]
                                           : states_in[lo.state_idx];
          }
        }
        break;
      }
    }
  }
}

void CompiledPipeline::run_batch_counted(Packet* pkts, std::size_t n,
                                         StateVar* const* vars,
                                         StageCounters& counters) const {
  if (n == 0) return;
  if (!sealed_)
    throw std::logic_error("CompiledPipeline: run before seal()");
  for (std::size_t i = 0; i < n; ++i)
    if (pkts[i].num_fields() < num_fields_)
      throw std::invalid_argument(
          "CompiledPipeline: packet narrower than the compiled program's "
          "field table");
  counters.prepare(stages_.size());
  using clock = std::chrono::steady_clock;
  for (std::size_t si = 0; si < stages_.size(); ++si) {
    const StageRange& st = stages_[si];
    const auto t0 = clock::now();
    run_ops_bound(st.begin, st.end, pkts, n, vars);
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count());
    counters.add(si, n, static_cast<std::uint64_t>(st.end - st.begin) * n, ns);
  }
}

void CompiledPipeline::run_columns_counted(ColumnBatch& cb,
                                           StateVar* const* vars,
                                           StageCounters& counters) const {
  const std::size_t n = cb.size();
  if (n == 0) return;
  if (!sealed_)
    throw std::logic_error("CompiledPipeline: run before seal()");
  if (cb.num_fields() < num_fields_)
    throw std::invalid_argument(
        "CompiledPipeline: column batch narrower than the compiled program's "
        "field table");
  counters.prepare(stages_.size());
  using clock = std::chrono::steady_clock;
  for (std::size_t si = 0; si < stages_.size(); ++si) {
    const StageRange& st = stages_[si];
    const auto t0 = clock::now();
    run_col_ops_bound(st.begin, st.end, cb, vars);
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count());
    counters.add(si, n, static_cast<std::uint64_t>(st.end - st.begin) * n, ns);
  }
}

std::string CompiledPipeline::str() const {
  std::ostringstream os;
  os << "micro-op kernel: " << ops_.size() << " ops, " << stages_.size()
     << " stages, " << num_fields_ << " fields, " << state_names_.size()
     << " state vars" << (sealed_ ? "" : " (unsealed)") << "\n";
  for (std::size_t si = 0; si < stages_.size(); ++si) {
    const StageRange& st = stages_[si];
    os << "stage " << si << " (ops " << st.begin << ".." << st.end << "):\n";
    for (std::uint32_t i = st.begin; i < st.end; ++i) {
      const MicroOp& op = ops_[i];
      os << "  [" << i << "] " << kop_name(op.code);
      switch (op.code) {
        case KOp::kIntrinsic: {
          const IntrinsicOp& io = intrinsics_[op.aux];
          os << "#" << op.aux << " f" << op.dst << " <- (";
          for (std::size_t a = 0; a < io.num_args; ++a)
            os << (a ? ", " : "") << src_str(io.args[a]);
          os << ")";
          if (io.mod > 0) os << " % " << io.mod;
          break;
        }
        case KOp::kStateful: {
          const StatefulOp& so = stateful_[op.aux];
          os << "#" << op.aux;
          for (std::size_t k = 0; k < so.num_states; ++k) {
            const StatefulOp::Slot& slot = so.slots[k];
            os << " s" << k << "=" << state_names_[slot.var];
            if (slot.is_array) os << "[f" << slot.index_field << "]";
          }
          const int num_preds = so.pred_levels == 0 ? 0
                                : so.pred_levels == 1 ? 1
                                                      : 3;
          for (int p = 0; p < num_preds; ++p) {
            os << " p" << p + 1 << ":(";
            if (so.preds[p].rel == KRel::kAlways)
              os << "always";
            else
              os << ref_str(so.preds[p].a) << " " << krel_name(so.preds[p].rel)
                 << " " << ref_str(so.preds[p].b);
            os << ")";
          }
          const std::size_t num_leaves = so.pred_levels == 0 ? 1
                                         : so.pred_levels == 1 ? 2
                                                               : 4;
          for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
            os << " L" << leaf << ":[";
            for (std::size_t k = 0; k < so.num_states; ++k) {
              const KArmOp& arm = so.arms[leaf][k];
              os << (k ? "; " : "") << karm_name(arm.mode);
              if (arm.mode != KArm::kKeep)
                os << "(" << ref_str(arm.src1) << "," << ref_str(arm.src2)
                   << ")";
            }
            os << "]";
          }
          for (std::uint32_t l = so.liveout_begin; l < so.liveout_end; ++l)
            os << " out:f" << liveouts_[l].dst << "="
               << (liveouts_[l].use_new ? "new" : "old") << "(s"
               << int(liveouts_[l].state_idx) << ")";
          break;
        }
        default: {
          os << " f" << op.dst << " <- " << src_str(op.a);
          const int argc = operand_count(op.code);
          if (argc >= 2) os << ", " << src_str(op.b);
          if (argc >= 3) os << ", " << src_str(op.c);
          break;
        }
      }
      os << "\n";
    }
  }
  if (!state_names_.empty()) {
    os << "state table:\n";
    for (std::size_t k = 0; k < state_names_.size(); ++k)
      os << "  s[" << k << "] = " << state_names_[k] << "\n";
  }
  return os.str();
}

}  // namespace banzai
