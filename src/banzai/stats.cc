#include "banzai/stats.h"

#include <algorithm>

namespace banzai {

std::uint64_t histogram_quantile(
    const std::uint64_t (&counts)[LatencyHistogram::kBuckets],
    std::uint64_t total, double q) {
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based: ceil(q * total), at least 1.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) return LatencyHistogram::bucket_edge(i);
  }
  return LatencyHistogram::bucket_edge(LatencyHistogram::kBuckets - 1);
}

void SpaceSaving::offer(std::uint64_t key) {
  ++offered_;
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++entries_[it->second].count;
    return;
  }
  if (entries_.size() < capacity_) {
    index_.emplace(key, entries_.size());
    entries_.push_back({key, 1, 0});
    return;
  }
  // Replace the minimum-count entry; its count becomes the new entry's error
  // bound (the new flow may have occurred up to `min` times already).
  std::size_t victim = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i)
    if (entries_[i].count < entries_[victim].count) victim = i;
  index_.erase(entries_[victim].key);
  const std::uint64_t min = entries_[victim].count;
  entries_[victim] = {key, min + 1, min};
  index_.emplace(key, victim);
}

std::vector<HeavyHitter> SpaceSaving::top(std::size_t k) const {
  std::vector<HeavyHitter> out = entries_;
  std::sort(out.begin(), out.end(), [](const HeavyHitter& a,
                                       const HeavyHitter& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace banzai
