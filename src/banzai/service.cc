#include "banzai/service.h"

#include <stdexcept>
#include <utility>

namespace banzai {

namespace {
constexpr std::chrono::microseconds kIdleNap{200};   // worker idle wait slice
constexpr std::chrono::microseconds kBlockNap{50};   // blocked-ingest wait
constexpr std::chrono::microseconds kFlushPoll{100};
constexpr int kSpinsBeforeNap = 64;
}  // namespace

FleetService::FleetService(const Machine& prototype, ServiceConfig config)
    : config_(std::move(config)),
      core_(prototype, config_.num_slots, config_.num_shards,
            config_.batch_size, config_.flow_key, config_.batch_dispatch) {
  config_.num_shards = core_.num_shards();
  config_.num_slots = core_.num_slots();
  shards_.reserve(core_.num_shards());
  for (std::size_t s = 0; s < core_.num_shards(); ++s)
    shards_.push_back(std::make_unique<Shard>(config_.ring_capacity));
  config_.ring_capacity = shards_[0]->ring.capacity();
  if (config_.heavy_hitter_capacity > 0)
    hh_ = std::make_unique<SpaceSaving>(config_.heavy_hitter_capacity);
}

FleetService::~FleetService() { stop(); }

void FleetService::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) return;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  started_at_ = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < shards_.size(); ++s)
    shards_[s]->worker = std::thread(&FleetService::worker_loop, this, s);
}

void FleetService::stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true);  // seq_cst: pairs with the in-flight ingest guard
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->cv.notify_all();
  }
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
  running_.store(false, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  uptime_seconds_ += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started_at_)
                         .count();
}

void FleetService::flush() {
  const std::uint64_t target = seq_counter_.load(std::memory_order_acquire);
  while (egress_.watermark() < target) {
    if (!running_.load(std::memory_order_acquire)) {
      // A concurrent stop() drains every ring before clearing running_, so
      // re-check the watermark: only a genuinely stranded packet may throw.
      if (egress_.watermark() >= target) return;
      throw std::logic_error(
          "FleetService::flush: packets outstanding but service is stopped");
    }
    for (auto& shard : shards_) wake(*shard);
    std::this_thread::sleep_for(kFlushPoll);
  }
}

void FleetService::wake(Shard& shard) {
  if (shard.sleeping.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.cv.notify_one();
  }
}

bool FleetService::ingest(Packet pkt) {
  // Raise the in-flight count BEFORE the liveness check (both seq_cst): a
  // racing stop() either sees the count and its workers keep draining until
  // this push lands, or this thread sees stopping_/!running_ and bails
  // before touching a ring.  Without the handshake an accepted packet could
  // be stranded in a ring whose worker already exited.
  ingest_inflight_.fetch_add(1);
  struct InflightGuard {
    std::atomic<std::uint64_t>& count;
    ~InflightGuard() { count.fetch_sub(1); }
  } guard{ingest_inflight_};
  if (!running_.load() || stopping_.load())
    throw std::logic_error("FleetService::ingest: service is not started");
  // Offered load feeds the heavy-hitter table (before any backpressure
  // verdict: the detector explains pressure, shed packets included).  The
  // ingest thread is the only writer; readers serialize on hh_mu_.
  if (hh_ != nullptr) {
    std::lock_guard<std::mutex> hh_lock(hh_mu_);
    hh_->offer(core_.flow_hash(pkt));
  }
  const std::size_t slot = core_.slot_of(pkt);
  Shard& shard = *shards_[slot % core_.num_shards()];
  const std::uint64_t seq =
      seq_counter_.fetch_add(1, std::memory_order_acq_rel);
  Item item{seq, static_cast<std::uint32_t>(slot), std::move(pkt)};
  if (!shard.ring.try_push(std::move(item))) {
    if (config_.backpressure == Backpressure::kDropTail) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      egress_.drop(seq);
      return false;
    }
    // kBlock: the worker will make space; nap until it does.
    int spins = 0;
    do {
      wake(shard);
      if (++spins < kSpinsBeforeNap)
        std::this_thread::yield();
      else
        std::this_thread::sleep_for(kBlockNap);
    } while (!shard.ring.try_push(std::move(item)));
  }
  wake(shard);
  return true;
}

std::size_t FleetService::ingest_all(const std::vector<Packet>& pkts) {
  std::size_t accepted = 0;
  for (const Packet& p : pkts)
    if (ingest(p)) ++accepted;
  return accepted;
}

void FleetService::set_wire(std::shared_ptr<const wire::WireCodec> rx,
                            std::shared_ptr<const wire::WireCodec> tx) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire))
    throw std::logic_error(
        "FleetService::set_wire: stop() the service before changing codecs");
  if (rx == nullptr)
    throw std::invalid_argument("FleetService::set_wire: rx codec is null");
  wire_rx_ = std::move(rx);
  wire_tx_ = tx != nullptr ? std::move(tx) : wire_rx_;
}

FleetService::FrameIngest FleetService::ingest_frame(const std::uint8_t* data,
                                                     std::size_t len) {
  if (wire_rx_ == nullptr)
    throw std::logic_error(
        "FleetService::ingest_frame: no wire codec (call set_wire first)");
  FrameIngest out;
  Packet pkt(wire_rx_->num_table_fields());
  out.parse = wire_rx_->parse_exact(data, len, pkt);
  if (!out.parse.ok()) {
    switch (out.parse.status) {
      case wire::ParseStatus::kTruncated:
        reject_truncated_.fetch_add(1, std::memory_order_relaxed);
        break;
      case wire::ParseStatus::kOversized:
        reject_oversized_.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        reject_bad_value_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    return out;
  }
  frames_parsed_.fetch_add(1, std::memory_order_relaxed);
  wire_bytes_in_.fetch_add(len, std::memory_order_relaxed);
  out.accepted = ingest(std::move(pkt));
  return out;
}

std::vector<std::vector<std::uint8_t>> FleetService::drain_egress_frames() {
  if (wire_tx_ == nullptr)
    throw std::logic_error(
        "FleetService::drain_egress_frames: no wire codec (call set_wire "
        "first)");
  const std::vector<Packet> pkts = egress_.drain();
  std::vector<std::vector<std::uint8_t>> frames;
  frames.reserve(pkts.size());
  for (const Packet& p : pkts) frames.push_back(wire_tx_->deparse(p));
  wire_bytes_out_.fetch_add(frames.size() * wire_tx_->header_bytes(),
                            std::memory_order_relaxed);
  return frames;
}

void FleetService::worker_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  const std::size_t batch = config_.batch_size ? config_.batch_size : 1;
  std::vector<Item> items;
  std::vector<std::size_t> slot_ids;
  std::vector<std::uint64_t> seqs;
  std::vector<Packet> in, out;
  items.reserve(batch);

  for (;;) {
    items.clear();
    Item item;
    while (items.size() < batch && shard.ring.try_pop(item))
      items.push_back(std::move(item));

    if (!items.empty()) {
      const std::size_t n = items.size();
      slot_ids.resize(n);
      seqs.resize(n);
      in.resize(n);
      out.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        slot_ids[i] = items[i].slot;
        seqs[i] = items[i].seq;
        in[i] = std::move(items[i].pkt);
      }
      core_.drain(shard_index, slot_ids.data(), in.data(), n, out.data());
      egress_.deliver_batch(seqs.data(), out.data(), n);
      // Latency in ingest ticks: how many packets were offered service-wide
      // between this packet's arrival and its delivery.
      const std::uint64_t now_tick =
          seq_counter_.load(std::memory_order_acquire);
      std::uint64_t lat = 0;
      for (std::size_t i = 0; i < n; ++i) lat += now_tick - seqs[i];
      latency_ticks_sum_.fetch_add(lat, std::memory_order_relaxed);
      {
        // Quantile samples, batched under the shard-local lock (contended
        // only by a concurrent stats() merge, never by other workers).
        std::lock_guard<std::mutex> lat_lock(shard.lat_mu);
        for (std::size_t i = 0; i < n; ++i)
          shard.lat_hist.record(now_tick - seqs[i]);
      }
      delivered_.fetch_add(n, std::memory_order_acq_rel);
      continue;
    }

    // Exit only when stop was requested, no ingest call is mid-push, and the
    // ring is drained — in that order: a producer that read stopping_ ==
    // false before our in-flight read would still be counted, and one that
    // finished its push before the in-flight read leaves the ring non-empty
    // for the check that follows.
    if (stopping_.load() && ingest_inflight_.load() == 0 && shard.ring.empty())
      break;

    // Idle: nap until the ingest thread pushes or stop() is requested.  The
    // timed wait bounds the one benign race (a push landing between the last
    // empty poll and the wait).
    std::unique_lock<std::mutex> lock(shard.mu);
    shard.sleeping.store(true, std::memory_order_relaxed);
    shard.cv.wait_for(lock, kIdleNap, [&] {
      return !shard.ring.empty() ||
             stopping_.load(std::memory_order_acquire);
    });
    shard.sleeping.store(false, std::memory_order_relaxed);
  }
}

ServiceStats FleetService::stats() const {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  ServiceStats st;
  st.ingested = seq_counter_.load(std::memory_order_acquire);
  st.delivered = delivered_.load(std::memory_order_acquire);
  st.dropped = dropped_.load(std::memory_order_acquire);
  st.wire.frames_parsed = frames_parsed_.load(std::memory_order_relaxed);
  st.wire.reject_truncated =
      reject_truncated_.load(std::memory_order_relaxed);
  st.wire.reject_oversized =
      reject_oversized_.load(std::memory_order_relaxed);
  st.wire.reject_bad_value =
      reject_bad_value_.load(std::memory_order_relaxed);
  st.wire.frames_rejected = st.wire.reject_truncated +
                            st.wire.reject_oversized +
                            st.wire.reject_bad_value;
  st.wire.bytes_in = wire_bytes_in_.load(std::memory_order_relaxed);
  st.wire.bytes_out = wire_bytes_out_.load(std::memory_order_relaxed);
  double up = uptime_seconds_;
  if (running_.load(std::memory_order_acquire))
    up += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started_at_)
              .count();
  st.packets_per_sec = up > 0 ? static_cast<double>(st.delivered) / up : 0;
  st.avg_latency_ticks =
      st.delivered > 0
          ? static_cast<double>(
                latency_ticks_sum_.load(std::memory_order_relaxed)) /
                static_cast<double>(st.delivered)
          : 0;
  st.queue_depth.reserve(shards_.size());
  for (const auto& shard : shards_) st.queue_depth.push_back(shard->ring.size());
  // Latency quantiles: merge the per-shard histograms, then read the bucket
  // edges.  Cheap (kBuckets integers per shard) and off the worker hot path.
  {
    std::uint64_t counts[LatencyHistogram::kBuckets] = {};
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lat_lock(shard->lat_mu);
      shard->lat_hist.merge_into(counts, total);
    }
    st.latency_p50_ticks = histogram_quantile(counts, total, 0.50);
    st.latency_p99_ticks = histogram_quantile(counts, total, 0.99);
  }
  st.stage_counters = core_.stage_counter_rows();
  return st;
}

std::vector<HeavyHitter> FleetService::heavy_hitters(std::size_t k) const {
  std::lock_guard<std::mutex> hh_lock(hh_mu_);
  if (hh_ == nullptr) return {};
  return hh_->top(k);
}

ServiceSnapshot FleetService::snapshot() const {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire))
    throw std::logic_error(
        "FleetService::snapshot: stop() the service before snapshotting");
  ServiceSnapshot snap;
  snap.num_slots = core_.num_slots();
  snap.slot_state = core_.snapshot_state();
  return snap;
}

void FleetService::restore(const ServiceSnapshot& snap) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire))
    throw std::logic_error(
        "FleetService::restore: stop() the service before restoring");
  if (snap.num_slots != core_.num_slots() ||
      snap.slot_state.size() != core_.num_slots())
    throw std::invalid_argument(
        "FleetService::restore: slot count mismatch (resharding changes "
        "num_shards, never num_slots)");
  core_.restore_state(snap.slot_state);
}

}  // namespace banzai
