#include "banzai/native.h"

#include <dlfcn.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <utility>

#include "banzai/native_io.h"

namespace banzai {

namespace {

namespace fs = std::filesystem;

std::optional<std::string> env_opt(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return std::nullopt;
  return std::string(v);
}

// Option-over-environment merge with presence semantics: an engaged option
// field wins even when empty; a disengaged one falls through to the
// environment, then to `fallback`.
std::string resolve(const std::optional<std::string>& opt,
                    const std::optional<std::string>& env,
                    const std::string& fallback) {
  if (opt.has_value()) return *opt;
  if (env.has_value()) return *env;
  return fallback;
}

// POSIX-shell single-quoting with embedded quotes escaped ('\''), so paths
// with spaces or apostrophes survive the `system()` round trip.
std::string shq(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

// `system("command -v ...")` so PATH lookup matches what the compile step's
// shell will do.
bool on_path(const std::string& exe) {
  if (exe.empty()) return false;
  const std::string probe = "command -v " + shq(exe) + " >/dev/null 2>&1";
  return std::system(probe.c_str()) == 0;
}

// FNV-1a 64-bit over the source text plus the compile command shape: a flag
// or compiler change must miss the cache, or stale objects would shadow it.
std::string content_hash(const std::string& source, const std::string& cxx,
                         const std::string& flags) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
    h ^= 0xff;  // separator so ("ab","c") != ("a","bc")
    h *= 0x100000001b3ull;
  };
  mix(source);
  mix(cxx);
  mix(flags);
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

// The 16-hex-digit content-hash stem of a cache file, or "" when the name
// does not look like a cache entry (sweep treats those — temporaries from
// crashed compiles — as single-file entries under their full name).
std::string entry_stem(const std::string& filename) {
  if (filename.size() < 16) return "";
  const std::string stem = filename.substr(0, 16);
  for (char c : stem)
    if (!std::isxdigit(static_cast<unsigned char>(c))) return "";
  return stem;
}

// Last-use time of a file for LRU ordering: atime, which the loader
// refreshes on every cache hit (see touch_atime), falling back to 0 when the
// file vanished mid-scan.
std::int64_t last_use_ns(const fs::path& p) {
  struct stat st{};
  if (::stat(p.c_str(), &st) != 0) return 0;
  return static_cast<std::int64_t>(st.st_atim.tv_sec) * 1000000000 +
         st.st_atim.tv_nsec;
}

// Refreshes only the access time (mtime untouched, so content-based tooling
// still sees a stable artifact).  Best-effort: a read-only cache is fine.
void touch_atime(const fs::path& p) {
  struct timespec ts[2];
  ts[0].tv_sec = 0;
  ts[0].tv_nsec = UTIME_NOW;   // atime := now
  ts[1].tv_sec = 0;
  ts[1].tv_nsec = UTIME_OMIT;  // mtime untouched
  ::utimensat(AT_FDCWD, p.c_str(), ts, 0);
}

std::string resolved_cache_dir(const std::string& dir) {
  if (!dir.empty()) return dir;
  const NativeOptions env = NativeOptions::from_env();
  std::string cache = env.cache_dir.value_or(kDefaultNativeCacheDir);
  if (cache.empty()) cache = kDefaultNativeCacheDir;
  return cache;
}

}  // namespace

NativeOptions NativeOptions::from_env() {
  NativeOptions o;
  o.compiler = env_opt("DOMINO_NATIVE_CXX");
  o.extra_flags = env_opt("DOMINO_NATIVE_CXXFLAGS");
  o.cache_dir = env_opt("DOMINO_NATIVE_CACHE");
  o.disabled = env_opt("DOMINO_NATIVE_DISABLE").has_value();
  if (const auto cap = env_opt("DOMINO_NATIVE_CACHE_MAX_BYTES")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cap->c_str(), &end, 10);
    if (end != nullptr && *end == '\0') o.cache_max_bytes = v;
  }
  return o;
}

NativeCacheStats native_cache_stats(const std::string& dir) {
  NativeCacheStats out;
  out.dir = resolved_cache_dir(dir);
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(out.dir, ec)) {
    if (!e.is_regular_file(ec)) continue;
    const std::string name = e.path().filename().string();
    const auto sz = e.file_size(ec);
    if (!ec) out.total_bytes += sz;
    if (name.size() > 3 && name.compare(name.size() - 3, 3, ".so") == 0)
      ++out.objects;
    else if (name.size() > 3 && name.compare(name.size() - 3, 3, ".cc") == 0)
      ++out.sources;
  }
  return out;
}

std::size_t native_cache_clear(const std::string& dir) {
  const std::string cache = resolved_cache_dir(dir);
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(cache, ec)) {
    if (!e.is_regular_file(ec)) continue;
    if (fs::remove(e.path(), ec)) ++removed;
  }
  return removed;
}

std::size_t native_cache_sweep(std::uint64_t max_bytes, const std::string& dir,
                               const std::string& keep_hash) {
  const std::string cache = resolved_cache_dir(dir);
  struct Entry {
    std::int64_t last_use = 0;  // newest file of the entry
    std::uint64_t bytes = 0;
    std::vector<fs::path> files;
  };
  std::map<std::string, Entry> entries;  // stem (or full name) → files
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(cache, ec)) {
    if (!e.is_regular_file(ec)) continue;
    const std::string name = e.path().filename().string();
    std::string stem = entry_stem(name);
    if (stem.empty()) stem = name;
    Entry& ent = entries[stem];
    ent.files.push_back(e.path());
    const auto sz = e.file_size(ec);
    if (!ec) {
      ent.bytes += sz;
      total += sz;
    }
    ent.last_use = std::max(ent.last_use, last_use_ns(e.path()));
  }
  if (total <= max_bytes) return 0;

  std::vector<std::pair<std::string, const Entry*>> order;
  order.reserve(entries.size());
  for (const auto& [stem, ent] : entries)
    if (stem != keep_hash) order.emplace_back(stem, &ent);
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second->last_use != b.second->last_use)
      return a.second->last_use < b.second->last_use;  // oldest use first
    return a.first < b.first;                          // deterministic ties
  });

  std::size_t removed = 0;
  for (const auto& [stem, ent] : order) {
    if (total <= max_bytes) break;
    (void)stem;
    for (const fs::path& p : ent->files)
      if (fs::remove(p, ec)) ++removed;
    total -= std::min(total, static_cast<std::uint64_t>(ent->bytes));
  }
  return removed;
}

NativeLoadResult NativePipeline::compile_and_load(const CompiledPipeline& prog,
                                                  const std::string& source,
                                                  const NativeOptions& opts) {
  NativeLoadResult result;
  // Engaged option fields win (even when empty — that is how a caller
  // forces "no extra flags" against a set DOMINO_NATIVE_CXXFLAGS);
  // disengaged fields resolve through the one documented environment read.
  const NativeOptions env = NativeOptions::from_env();
  if (opts.disabled || env.disabled) {
    result.error = "native engine disabled by DOMINO_NATIVE_DISABLE";
    return result;
  }
  if (!prog.sealed()) {
    result.error = "cannot load a native pipeline for an unsealed program";
    return result;
  }

  // Resolve the host compiler: explicit option, then environment, then the
  // first conventional name on PATH (an engaged-but-empty option forces the
  // PATH probe).
  std::string cxx = resolve(opts.compiler, env.compiler, "");
  if (cxx.empty()) {
    for (const char* candidate : {"c++", "g++", "clang++"}) {
      if (on_path(candidate)) {
        cxx = candidate;
        break;
      }
    }
    if (cxx.empty()) {
      result.error =
          "no host C++ compiler found (tried c++, g++, clang++; set "
          "DOMINO_NATIVE_CXX to point at one)";
      return result;
    }
  } else if (!on_path(cxx)) {
    result.error = "host C++ compiler '" + cxx +
                   "' not found on PATH (from DOMINO_NATIVE_CXX or "
                   "NativeOptions::compiler)";
    return result;
  }

  const std::string flags = resolve(opts.extra_flags, env.extra_flags, "");
  std::string cache =
      resolve(opts.cache_dir, env.cache_dir, kDefaultNativeCacheDir);
  if (cache.empty()) cache = kDefaultNativeCacheDir;

  std::error_code ec;
  fs::create_directories(cache, ec);
  if (ec) {
    result.error = "cannot create native cache dir '" + cache +
                   "': " + ec.message();
    return result;
  }

  const std::string hash = content_hash(source, cxx, flags);
  const fs::path src_path = fs::path(cache) / (hash + ".cc");
  const fs::path so_path = fs::path(cache) / (hash + ".so");
  result.source_path = src_path.string();
  result.so_path = so_path.string();

  if (opts.force_recompile || !fs::exists(so_path)) {
    // Write source and compile via process-unique temporaries, then rename
    // into place: two racing cold-cache loads never read each other's torn
    // files, both succeed, and the content hash guarantees the renamed
    // artifacts are interchangeable.
    // Keep the .cc/.so suffixes on the temporaries — the host compiler
    // infers the source language and output kind from them.
    const std::string tmp_tag =
        ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const fs::path tmp_src = fs::path(cache) / (hash + tmp_tag + ".cc");
    if (!native_io::write_file(tmp_src.string(), source)) {
      result.error = "cannot write emitted source to " + tmp_src.string();
      return result;
    }
    const fs::path tmp_so = fs::path(cache) / (hash + tmp_tag + ".so");
    const fs::path log_path = fs::path(tmp_so.string() + ".log");
    // -O3 rather than -O2: the columnar entry point is plain array loops
    // over __restrict__ columns, and GCC only auto-vectorizes those
    // profitably at -O3.  Host tuning (e.g. -march=native) layers on via
    // `flags`; see the recipe on NativeOptions.
    const std::string cmd = shq(cxx) + " -std=c++17 -O3 -fPIC -shared " +
                            flags + " -o " + shq(tmp_so.string()) + " " +
                            shq(tmp_src.string()) + " > " +
                            shq(log_path.string()) + " 2>&1";
    const int status = std::system(cmd.c_str());
    if (status != 0) {
      // The tail, not the head: the fatal diagnostic is at the end, and a
      // log that cannot be read back says so instead of vanishing.
      const std::string log = native_io::compile_log_tail(log_path.string());
      fs::remove(tmp_src, ec);
      fs::remove(tmp_so, ec);
      fs::remove(log_path, ec);
      result.error = "host compile failed (exit " + std::to_string(status) +
                     "): " + cxx + " -O3 -fPIC -shared\n" + log;
      return result;
    }
    fs::remove(log_path, ec);
    fs::rename(tmp_src, src_path, ec);  // keep the artifact inspectable
    if (ec) fs::remove(tmp_src, ec);
    fs::rename(tmp_so, so_path, ec);
    if (ec) {
      fs::remove(tmp_so, ec);
      result.error = "cannot move compiled object into cache: " +
                     so_path.string();
      return result;
    }
  } else {
    result.cache_hit = true;
    // Record the reuse so an LRU sweep sees this entry as recently used even
    // on mounts where reads alone do not update atime (relatime, noatime).
    touch_atime(so_path);
    touch_atime(src_path);
  }

  // Enforce the size cap, never evicting the entry being loaded.
  const std::optional<std::uint64_t> cap =
      opts.cache_max_bytes.has_value() ? opts.cache_max_bytes
                                       : env.cache_max_bytes;
  if (cap.has_value()) native_cache_sweep(*cap, cache, hash);

  void* handle = ::dlopen(so_path.string().c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* why = ::dlerror();
    result.error = std::string("dlopen failed: ") +
                   (why != nullptr ? why : "(no dlerror)");
    return result;
  }
  auto fn = reinterpret_cast<NativeEntryFn>(
      ::dlsym(handle, kNativeEntrySymbol));
  if (fn == nullptr) {
    ::dlclose(handle);
    result.error = std::string("entry symbol '") + kNativeEntrySymbol +
                   "' missing from " + so_path.string();
    return result;
  }
  // The columnar entry is optional: absent from objects emitted before the
  // columnar mode existed; callers probe has_columnar() and fall back to the
  // kernel VM's columnar loops.
  auto cols_fn = reinterpret_cast<NativeColsEntryFn>(
      ::dlsym(handle, kNativeColsEntrySymbol));

  auto pipeline = std::shared_ptr<NativePipeline>(new NativePipeline());
  pipeline->handle_ = handle;
  pipeline->fn_ = fn;
  pipeline->cols_fn_ = cols_fn;
  pipeline->num_fields_ = prog.num_fields();
  pipeline->state_names_ = prog.state_names();
  pipeline->so_path_ = so_path.string();
  pipeline->intrinsics_.reserve(prog.intrinsic_pool().size());
  for (const IntrinsicOp& io : prog.intrinsic_pool())
    pipeline->intrinsics_.push_back(io.fn);
  pipeline->luts_.reserve(prog.stateful_pool().size());
  for (const StatefulOp& so : prog.stateful_pool())
    pipeline->luts_.push_back(so.lut);
  result.pipeline = std::move(pipeline);
  return result;
}

NativePipeline::~NativePipeline() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

}  // namespace banzai
