// Packets as seen by the Banzai machine: a flat vector of named integer
// fields.  The set of fields (headers plus compiler-introduced temporaries)
// is fixed per program and described by a FieldTable; individual packets are
// then cheap value types indexed by FieldId.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "banzai/value.h"

namespace banzai {

using FieldId = std::size_t;

// Maps field names to dense indices.  Built once per compiled program.
class FieldTable {
 public:
  // Returns the id of `name`, interning it if new.
  FieldId intern(std::string_view name) {
    auto it = index_.find(std::string(name));
    if (it != index_.end()) return it->second;
    FieldId id = names_.size();
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  // Returns the id of `name`; throws if the field was never interned.
  FieldId id_of(std::string_view name) const {
    auto it = index_.find(std::string(name));
    if (it == index_.end())
      throw std::out_of_range("unknown packet field: " + std::string(name));
    return it->second;
  }

  std::optional<FieldId> try_id_of(std::string_view name) const {
    auto it = index_.find(std::string(name));
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& name_of(FieldId id) const { return names_.at(id); }
  std::size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, FieldId> index_;
};

// One packet: a value for every field in the program's FieldTable.
// Fields start at zero, matching uninitialized metadata in real pipelines.
class Packet {
 public:
  Packet() = default;
  explicit Packet(std::size_t num_fields) : fields_(num_fields, 0) {}

  Value get(FieldId id) const { return fields_.at(id); }
  void set(FieldId id, Value v) { fields_.at(id) = v; }

  Value& operator[](FieldId id) { return fields_[id]; }
  Value operator[](FieldId id) const { return fields_[id]; }

  // Raw field storage, for the native engine's packet-pointer batches.
  Value* data() { return fields_.data(); }
  const Value* data() const { return fields_.data(); }

  std::size_t num_fields() const { return fields_.size(); }

  bool operator==(const Packet& o) const { return fields_ == o.fields_; }
  bool operator!=(const Packet& o) const { return !(*this == o); }

 private:
  std::vector<Value> fields_;
};

}  // namespace banzai
