// The closed control loop over FleetService: periodic stats sampling
// (deltas → rates), a threshold controller with hysteresis and cooldown
// (Autoscaler), and a wrapper that drives the existing snapshot/restore
// resharding machinery from what the samples say (AutoscalingService).
//
// The controller is deliberately clock-agnostic: observe() takes the sample
// time as an argument, so unit tests drive it on a fake clock and the
// wrapper feeds it steady_clock.  The bit-exactness story is inherited, not
// re-proven: a reshard is flush → stop → snapshot → new FleetService with a
// different shard count → restore → start, exactly the manual cycle
// tests/service_test.cc already pins against sequential execution — the
// controller only decides *when* to run it.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "banzai/service.h"

namespace banzai {

struct AutoscalerConfig {
  std::size_t min_shards = 2;
  std::size_t max_shards = 8;
  // Pressure signal: the maximum per-shard ring occupancy fraction.  High
  // when any shard's ring is this full; low only when every shard is this
  // empty.  The gap between the two is the hysteresis band.
  double queue_frac_high = 0.75;
  double queue_frac_low = 0.10;
  // Latency signal in ingest ticks (ServiceStats::latency_p99_ticks).
  // p99_ticks_high == 0 disables the latency signal entirely.
  std::uint64_t p99_ticks_high = 0;
  std::uint64_t p99_ticks_low = 0;
  // Consecutive samples a signal must hold before the controller acts: a
  // single hot sample (one bursty batch) never triggers a reshard.
  int sustain = 3;
  // Minimum time between actions.  Streaks keep accumulating during the
  // cooldown, but actions are clamped until it passes — so a sustained
  // plateau walks 2→4→8 one doubling per cooldown window, while an
  // oscillating signal (which resets streaks) never acts at all.
  std::chrono::milliseconds cooldown{500};
};

// Threshold controller: feed it one (queue_frac, p99) observation per sample
// period; it returns the shard count the service should run at.  Scale-up
// when EITHER signal is high for `sustain` samples (pressure anywhere is
// pressure); scale-down only when BOTH are low (the conservative side of the
// hysteresis band).  Actions double or halve, clamped to [min, max]; each
// action resets the streaks and stamps the cooldown.  Not thread-safe — one
// control loop owns it.
class Autoscaler {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit Autoscaler(AutoscalerConfig cfg) : cfg_(cfg) {}

  // One control-loop step.  `current` is the shard count the service runs
  // at now; the return value is the target (== current when no action).
  std::size_t observe(std::size_t current, double queue_frac,
                      std::uint64_t p99_ticks, TimePoint now);

  const AutoscalerConfig& config() const { return cfg_; }
  std::uint64_t scale_ups() const { return scale_ups_; }
  std::uint64_t scale_downs() const { return scale_downs_; }
  int high_streak() const { return high_streak_; }
  int low_streak() const { return low_streak_; }

 private:
  AutoscalerConfig cfg_;
  int high_streak_ = 0;
  int low_streak_ = 0;
  std::optional<TimePoint> last_action_;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
};

// One timestamped stats sample with the deltas to its predecessor rendered
// as rates (the p4db-style periodic counter sampling).
struct ServiceSample {
  std::chrono::steady_clock::time_point at{};
  ServiceStats stats;          // cumulative, as returned by stats()
  double dt_seconds = 0;       // vs the previous sample; 0 for the first
  double ingest_rate = 0;      // offered pkts/sec over the delta window
  double delivery_rate = 0;
  double drop_rate = 0;
  std::size_t max_queue_depth = 0;
  double queue_frac = 0;       // max_queue_depth / ring_capacity
};

// Bounded ring of samples.  push() computes the delta rates against the
// previous sample; window() exposes the recent history (oldest first) for
// rendering or trend logic.  Not thread-safe — owned by the control loop.
class ServiceSampler {
 public:
  explicit ServiceSampler(std::size_t window = 64)
      : window_limit_(window == 0 ? 1 : window) {}

  ServiceSample push(const ServiceStats& st, std::size_t ring_capacity,
                     std::chrono::steady_clock::time_point now);

  const std::deque<ServiceSample>& window() const { return window_; }
  const ServiceSample* latest() const {
    return window_.empty() ? nullptr : &window_.back();
  }

 private:
  std::size_t window_limit_;
  std::deque<ServiceSample> window_;
};

struct AutoscalingServiceConfig {
  ServiceConfig service;        // num_shards here is the starting point
  AutoscalerConfig autoscaler;
  // How often the control loop samples when driven through ingest().
  std::chrono::milliseconds sample_period{50};
  // Ingest calls between clock reads: the loop piggybacks on the ingest
  // thread, so the steady-state cost is one counter increment per packet.
  std::size_t tick_stride = 256;
  std::size_t sampler_window = 64;
};

// FleetService plus the closed loop: packets flow through ingest() as
// before, and every sample_period the wrapper feeds the controller; when it
// answers with a different shard count the wrapper reshards in place using
// snapshot/restore, folding the retired service's egress and counters into
// its own so external observers see one continuous service.
//
// The wire front end scales too: set_wire() is recorded here and re-applied
// to every reshard generation before restore, so a byte-path deployment
// (ingest_frame / drain_egress_frames) rides through shard-count changes the
// same way the field-packet path does — egress frames settled by the retired
// generation are drained into the continuity buffer at the swap point, so
// the byte stream observes one continuous, ordered service.
//
// Threading contract: ingest()/ingest_frame()/tick()/reshard_to()/start()/
// stop()/flush() from ONE thread (the control loop rides the ingest thread);
// stats(), drain_egress(), drain_egress_frames() and heavy_hitters() from
// any thread.
class AutoscalingService {
 public:
  AutoscalingService(const Machine& prototype, AutoscalingServiceConfig cfg);

  void start();
  void stop();
  void flush();

  // Offers one packet; every tick_stride calls the control loop checks the
  // clock and may sample + reshard inline (so a caller that only ever calls
  // ingest still gets autoscaling).  Same return contract as
  // FleetService::ingest.
  bool ingest(Packet pkt);

  // One explicit control-loop step at `now`: sample, consult the controller,
  // reshard if it says so.  Returns true when a reshard happened.  The
  // clock-injection point for tests; ingest() calls this with steady_clock.
  bool tick(std::chrono::steady_clock::time_point now);

  // Forced reshard to an explicit shard count (the test hook; also what
  // tick() calls when the controller acts).  No-op when target equals the
  // current count.  Requires a running service.
  void reshard_to(std::size_t target_shards);

  // Attaches wire codecs (FleetService::set_wire contract: stopped service,
  // codecs bound to the prototype's FieldTable).  The codecs persist across
  // reshards: every new generation gets them re-applied before restore.
  void set_wire(std::shared_ptr<const wire::WireCodec> rx,
                std::shared_ptr<const wire::WireCodec> tx = nullptr);

  // Byte-path ingest with the same inline control-loop piggyback as
  // ingest(): a frame-only caller still gets autoscaling.
  FleetService::FrameIngest ingest_frame(const std::uint8_t* data,
                                         std::size_t len);

  // Settled egress frames across every reshard generation, in arrival
  // order (the byte-path analogue of drain_egress()).
  std::vector<std::vector<std::uint8_t>> drain_egress_frames();

  // Order-settled egress across every reshard generation, in arrival order:
  // a retired generation's egress is fully flushed before the next starts,
  // so concatenation preserves the global order.
  std::vector<Packet> drain_egress();

  // Continuous-service stats: counters accumulate across reshards (the sums
  // of every retired generation plus the live one).  Rates and latency
  // quantiles describe the live generation only.
  ServiceStats stats() const;

  std::vector<HeavyHitter> heavy_hitters(std::size_t k) const;

  std::size_t num_shards() const;
  bool running() const;
  std::uint64_t reshards() const { return reshards_; }
  const Autoscaler& autoscaler() const { return autoscaler_; }
  const ServiceSampler& sampler() const { return sampler_; }

 private:
  Machine proto_;               // replica source for every generation
  AutoscalingServiceConfig cfg_;
  Autoscaler autoscaler_;
  ServiceSampler sampler_;
  std::unique_ptr<FleetService> svc_;
  // Guards svc_ (swapped on reshard) and pending_/retired_ against
  // concurrent stats()/drain_egress() readers.
  mutable std::mutex mu_;
  std::vector<Packet> pending_;  // drained egress of retired generations
  // Byte-path continuity across reshards: codecs to re-apply to each new
  // generation, and retired generations' settled egress frames.
  std::shared_ptr<const wire::WireCodec> wire_rx_, wire_tx_;
  std::vector<std::vector<std::uint8_t>> pending_frames_;
  ServiceStats retired_;         // summed counters of retired generations
  std::uint64_t reshards_ = 0;
  std::size_t since_tick_ = 0;
  std::chrono::steady_clock::time_point last_sample_{};
  bool sampled_once_ = false;
};

}  // namespace banzai
