// Persistent switch state: scalar registers and register arrays.
//
// In the Banzai machine model every piece of state is local to exactly one
// atom in one stage (Section 2.3 of the paper); the StateStore here is a
// program-wide map so that the sequential interpreter and the pipeline
// simulator can be compared state-for-state, but the simulator enforces the
// locality discipline (each state variable is touched by exactly one atom).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "banzai/value.h"

namespace banzai {

// A single state variable: scalar (size == 1, accessed without an index) or
// a register array.
class StateVar {
 public:
  StateVar() : scalar_(true), cells_(1, 0) {}
  StateVar(std::size_t size, bool scalar, Value init = 0)
      : scalar_(scalar), cells_(size == 0 ? 1 : size, init) {}

  bool is_scalar() const { return scalar_; }
  std::size_t size() const { return cells_.size(); }

  Value load(Value index) const { return cells_[clamp(index)]; }
  void store(Value index, Value v) { cells_[clamp(index)] = v; }

  Value load_scalar() const { return cells_[0]; }
  void store_scalar(Value v) { cells_[0] = v; }

  void fill(Value v) { cells_.assign(cells_.size(), v); }
  const std::vector<Value>& cells() const { return cells_; }
  // Raw cell storage, for engines that bind state once and then address it
  // without lookups (the kernel's bound batch path and the native engine's
  // NativeStateView).  The storage never reallocates after construction:
  // every mutator writes in place.
  Value* data() { return cells_.data(); }

  bool operator==(const StateVar& o) const {
    return scalar_ == o.scalar_ && cells_ == o.cells_;
  }
  bool operator!=(const StateVar& o) const { return !(*this == o); }

 private:
  // Out-of-range indices wrap (hardware truncates the address lines).  The
  // Domino front end always produces `hash % size` indices so this only
  // matters for hostile inputs.
  std::size_t clamp(Value index) const {
    std::size_t n = cells_.size();
    auto u = static_cast<std::uint64_t>(static_cast<std::uint32_t>(index));
    return static_cast<std::size_t>(u % n);
  }

  bool scalar_;
  std::vector<Value> cells_;
};

// All state variables of one program instance.
//
// Generation counter: callers that cache StateVar* bindings (the per-Machine
// binding cache behind Machine::process, see machine.h) key the cache on
// generation().  Every operation that could invalidate pointers into vars_ —
// declare(), restore(), and copy construction/assignment (fresh map nodes) —
// assigns a new process-unique generation, so a cached (generation, pointers)
// pair can never be revalidated against a different map.  Moves keep the
// generation: unordered_map moves preserve node addresses, so cached pointers
// stay valid and travel with the value.  Cell mutation through StateVar&
// never changes the map structure and never bumps the generation.
class StateStore {
 public:
  StateStore() : gen_(next_generation()) {}
  StateStore(const StateStore& o) : vars_(o.vars_), gen_(next_generation()) {}
  StateStore& operator=(const StateStore& o) {
    vars_ = o.vars_;
    gen_ = next_generation();
    return *this;
  }
  StateStore(StateStore&&) = default;
  StateStore& operator=(StateStore&&) = default;

  std::uint64_t generation() const { return gen_; }

  void declare(std::string_view name, std::size_t size, bool scalar,
               Value init = 0) {
    vars_.insert_or_assign(std::string(name), StateVar(size, scalar, init));
    gen_ = next_generation();
  }

  StateVar& var(std::string_view name) {
    auto it = vars_.find(std::string(name));
    if (it == vars_.end())
      throw std::out_of_range("unknown state variable: " + std::string(name));
    return it->second;
  }

  const StateVar& var(std::string_view name) const {
    auto it = vars_.find(std::string(name));
    if (it == vars_.end())
      throw std::out_of_range("unknown state variable: " + std::string(name));
    return it->second;
  }

  bool contains(std::string_view name) const {
    return vars_.count(std::string(name)) > 0;
  }

  const std::unordered_map<std::string, StateVar>& vars() const {
    return vars_;
  }

  bool operator==(const StateStore& o) const { return vars_ == o.vars_; }
  bool operator!=(const StateStore& o) const { return !(*this == o); }

  // Checkpointing, the primitive FleetService's drain → reshard → resume
  // cycle is built on.  A snapshot is a deep copy of every variable; restore
  // refuses a snapshot whose shape (variable names, sizes, scalarness) does
  // not match this store, so state from a different program can never be
  // smuggled in.
  StateStore snapshot() const { return *this; }

  bool same_shape(const StateStore& o) const {
    if (vars_.size() != o.vars_.size()) return false;
    for (const auto& [name, var] : vars_) {
      auto it = o.vars_.find(name);
      if (it == o.vars_.end() || it->second.is_scalar() != var.is_scalar() ||
          it->second.size() != var.size())
        return false;
    }
    return true;
  }

  void restore(const StateStore& snap) {
    if (!same_shape(snap))
      throw std::invalid_argument(
          "StateStore::restore: snapshot shape does not match this store");
    vars_ = snap.vars_;  // fresh map nodes: stale StateVar* must not survive
    gen_ = next_generation();
  }

 private:
  static std::uint64_t next_generation() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::unordered_map<std::string, StateVar> vars_;
  std::uint64_t gen_ = 0;
};

}  // namespace banzai
