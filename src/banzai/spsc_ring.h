// Bounded single-producer / single-consumer ring buffer: the ingest-to-worker
// hand-off inside FleetService.  One ingest thread pushes, one shard worker
// pops; indices are monotonically increasing 64-bit counters masked into a
// power-of-two slot array, so full/empty are plain subtractions and the only
// synchronization is one release store per operation (plus an acquire load
// when the producer/consumer's cached view of the other side runs dry).
//
// The bounded capacity is what makes backpressure real: when the ring is
// full the producer must either wait (Backpressure::kBlock) or shed the
// packet (Backpressure::kDropTail) — exactly the choice a line-rate switch
// faces when an output queue fills.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace banzai {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to the next power of two (minimum 1).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  // Producer side.  On failure (ring full) `v` is left untouched, so the
  // caller can retry or divert it.
  bool try_push(T&& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  // Approximate occupancy: exact only when both sides are quiescent, which
  // is all the stats reporting needs.
  std::size_t size() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t n = tail - head;
    return n > slots_.size() ? slots_.size() : static_cast<std::size_t>(n);
  }

 private:
  std::size_t mask_ = 0;
  std::vector<T> slots_;
  // Producer and consumer indices live on separate cache lines, as do the
  // single-owner cached views of the opposite index (head_cache_ belongs to
  // the producer, tail_cache_ to the consumer).
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::uint64_t head_cache_ = 0;
  alignas(64) std::uint64_t tail_cache_ = 0;
};

}  // namespace banzai
