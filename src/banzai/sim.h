// Cycle-accurate Banzai pipeline simulation with multiple packets in flight.
//
// This is what makes the transactional guarantee *testable*: packets enter one
// per clock cycle and overlap in the pipeline (packet i is in stage s while
// packet i+1 is in stage s-1), exactly as in the hardware the paper models.
// Differential tests compare the result of this execution against the
// sequential one-packet-at-a-time interpreter.
//
// Engine dispatch: when the machine's engine toggle is off the closure rung
// and a lowered micro-op program is attached, each stage executes its
// StageRange of the CompiledPipeline in place (kernel.h) — the same program
// the whole-pipeline kernel and native paths run, so cycle-accurate
// simulation is no longer closure-only.  Per-stage in-place execution is
// legal because seal() verifies each stage's writes are disjoint with no
// intra-stage read-after-write.  A kNative machine also runs the micro-op
// program here: the dlopen'd pipeline exports whole-pipeline entry points
// only, and the engines are bit-exact, so the VM is the per-stage truth.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "banzai/machine.h"
#include "banzai/packet.h"

namespace banzai {

struct SimStats {
  std::uint64_t cycles = 0;
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
};

class PipelineSim {
 public:
  explicit PipelineSim(Machine& machine)
      : machine_(machine), in_flight_(machine.num_stages()) {}

  // Offers one packet to the pipeline for the upcoming cycle.  Line-rate
  // switches accept one packet per clock; calling enqueue more than once per
  // tick queues packets at the parser, preserving arrival order.
  void enqueue(Packet pkt) {
    ingress_.push_back(std::move(pkt));
    ++stats_.packets_in;
  }

  // Advances the machine by one clock cycle: every stage processes the packet
  // it holds and hands it to the next stage; a new packet (if any) enters
  // stage 0.
  void tick() {
    ++stats_.cycles;
    const std::size_t n = machine_.num_stages();
    // Move from the last stage outwards so each packet advances exactly one
    // stage per cycle.
    if (n == 0) {
      if (!ingress_.empty()) {
        egress_.push_back(std::move(ingress_.front()));
        ingress_.pop_front();
        ++stats_.packets_out;
      }
      return;
    }
    if (in_flight_[n - 1].has_value()) {
      egress_.push_back(std::move(*in_flight_[n - 1]));
      in_flight_[n - 1].reset();
      ++stats_.packets_out;
    }
    const CompiledPipeline* k = stage_kernel();
    for (std::size_t s = n - 1; s > 0; --s) {
      if (in_flight_[s - 1].has_value()) {
        if (k != nullptr) {
          Packet p = std::move(*in_flight_[s - 1]);
          k->run_stage_bound(s, p, bound_vars(*k));
          in_flight_[s] = std::move(p);
        } else {
          in_flight_[s] = machine_.stages()[s].execute(*in_flight_[s - 1],
                                                       machine_.state());
        }
        in_flight_[s - 1].reset();
      }
    }
    if (!ingress_.empty()) {
      if (k != nullptr) {
        Packet p = std::move(ingress_.front());
        k->run_stage_bound(0, p, bound_vars(*k));
        in_flight_[0] = std::move(p);
      } else {
        in_flight_[0] =
            machine_.stages()[0].execute(ingress_.front(), machine_.state());
      }
      ingress_.pop_front();
    }
  }

  // Ticks until the pipeline is fully drained.
  void drain() {
    while (!ingress_.empty() || busy()) tick();
  }

  bool busy() const {
    for (const auto& slot : in_flight_)
      if (slot.has_value()) return true;
    return false;
  }

  std::vector<Packet>& egress() { return egress_; }
  const SimStats& stats() const { return stats_; }

 private:
  // The micro-op program per-stage execution runs on, or nullptr for the
  // closure reference path.  The lowering pass emits one StageRange per
  // Machine stage, so the index spaces agree whenever a kernel is attached.
  const CompiledPipeline* stage_kernel() const {
    if (machine_.engine() == ExecEngine::kClosure) return nullptr;
    const CompiledPipeline* k = machine_.kernel();
    if (k != nullptr && k->num_stages() != machine_.num_stages())
      return nullptr;  // hand-assembled mismatch: fall back to closures
    return k;
  }

  // Resolved state bindings, keyed on the StateStore generation exactly like
  // Machine's cache: restore_state()/declare() bump the generation, forcing
  // a rebind before the next stale pointer could be dereferenced.
  StateVar* const* bound_vars(const CompiledPipeline& k) {
    if (bind_prog_ != &k || bind_gen_ != machine_.state().generation()) {
      vars_.resize(k.num_state_vars());
      k.resolve_state(machine_.state(), vars_.data());
      bind_prog_ = &k;
      bind_gen_ = machine_.state().generation();
    }
    return vars_.data();
  }

  Machine& machine_;
  std::deque<Packet> ingress_;
  std::vector<std::optional<Packet>> in_flight_;  // one slot per stage
  std::vector<Packet> egress_;
  SimStats stats_;
  const CompiledPipeline* bind_prog_ = nullptr;
  std::uint64_t bind_gen_ = 0;
  std::vector<StateVar*> vars_;
};

}  // namespace banzai
