// Cycle-accurate Banzai pipeline simulation with multiple packets in flight.
//
// This is what makes the transactional guarantee *testable*: packets enter one
// per clock cycle and overlap in the pipeline (packet i is in stage s while
// packet i+1 is in stage s-1), exactly as in the hardware the paper models.
// Differential tests compare the result of this execution against the
// sequential one-packet-at-a-time interpreter.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "banzai/machine.h"
#include "banzai/packet.h"

namespace banzai {

struct SimStats {
  std::uint64_t cycles = 0;
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
};

class PipelineSim {
 public:
  explicit PipelineSim(Machine& machine)
      : machine_(machine), in_flight_(machine.num_stages()) {}

  // Offers one packet to the pipeline for the upcoming cycle.  Line-rate
  // switches accept one packet per clock; calling enqueue more than once per
  // tick queues packets at the parser, preserving arrival order.
  void enqueue(Packet pkt) {
    ingress_.push_back(std::move(pkt));
    ++stats_.packets_in;
  }

  // Advances the machine by one clock cycle: every stage processes the packet
  // it holds and hands it to the next stage; a new packet (if any) enters
  // stage 0.
  void tick() {
    ++stats_.cycles;
    const std::size_t n = machine_.num_stages();
    // Move from the last stage outwards so each packet advances exactly one
    // stage per cycle.
    if (n == 0) {
      if (!ingress_.empty()) {
        egress_.push_back(std::move(ingress_.front()));
        ingress_.pop_front();
        ++stats_.packets_out;
      }
      return;
    }
    if (in_flight_[n - 1].has_value()) {
      egress_.push_back(std::move(*in_flight_[n - 1]));
      in_flight_[n - 1].reset();
      ++stats_.packets_out;
    }
    for (std::size_t s = n - 1; s > 0; --s) {
      if (in_flight_[s - 1].has_value()) {
        in_flight_[s] = machine_.stages()[s].execute(*in_flight_[s - 1],
                                                     machine_.state());
        in_flight_[s - 1].reset();
      }
    }
    if (!ingress_.empty()) {
      in_flight_[0] =
          machine_.stages()[0].execute(ingress_.front(), machine_.state());
      ingress_.pop_front();
    }
  }

  // Ticks until the pipeline is fully drained.
  void drain() {
    while (!ingress_.empty() || busy()) tick();
  }

  bool busy() const {
    for (const auto& slot : in_flight_)
      if (slot.has_value()) return true;
    return false;
  }

  std::vector<Packet>& egress() { return egress_; }
  const SimStats& stats() const { return stats_; }

 private:
  Machine& machine_;
  std::deque<Packet> ingress_;
  std::vector<std::optional<Packet>> in_flight_;  // one slot per stage
  std::vector<Packet> egress_;
  SimStats stats_;
};

}  // namespace banzai
