#include "algorithms/corpus.h"

#include <stdexcept>

namespace algorithms {
namespace {

// --------------------------------------------------------------------------
// 1. Bloom filter (3 hash functions) — set membership bit on every packet.
// --------------------------------------------------------------------------
const char* kBloomFilter = R"(
#define NUM_ENTRIES 1024

struct Packet {
  int sport;
  int dport;
  int idx0;
  int idx1;
  int idx2;
  int member;
};

int filter0[NUM_ENTRIES] = {0};
int filter1[NUM_ENTRIES] = {0};
int filter2[NUM_ENTRIES] = {0};

void bloom_filter(struct Packet pkt) {
  pkt.idx0 = hash2(pkt.sport, pkt.dport) % NUM_ENTRIES;
  pkt.idx1 = hash3(pkt.sport, pkt.dport, 1) % NUM_ENTRIES;
  pkt.idx2 = hash3(pkt.sport, pkt.dport, 2) % NUM_ENTRIES;
  pkt.member = filter0[pkt.idx0] & filter1[pkt.idx1] & filter2[pkt.idx2];
  filter0[pkt.idx0] = 1;
  filter1[pkt.idx1] = 1;
  filter2[pkt.idx2] = 1;
}
)";

const char* kBloomFilterWire = R"(
wire bloom_filter_v1 {
  magic  : u16 be @0 = 0xD001;
  sport  : u16 be @2;
  dport  : u16 be @4;
  member : u32 be @6;
}
)";

// --------------------------------------------------------------------------
// 2. Heavy hitters — increment a Count-Min Sketch on every packet and flag
//    flows whose estimated count exceeds a threshold.
// --------------------------------------------------------------------------
const char* kHeavyHitters = R"(
#define NUM_ENTRIES 4096
#define THRESHOLD 100

struct Packet {
  int srcip;
  int dstip;
  int sport;
  int dport;
  int proto;
  int idx0;
  int idx1;
  int idx2;
  int c0;
  int c1;
  int c2;
  int min01;
  int count;
  int heavy;
};

int cms0[NUM_ENTRIES] = {0};
int cms1[NUM_ENTRIES] = {0};
int cms2[NUM_ENTRIES] = {0};

void heavy_hitters(struct Packet pkt) {
  pkt.idx0 = hash4(pkt.srcip, pkt.dstip, pkt.sport, pkt.dport) % NUM_ENTRIES;
  pkt.idx1 = hash4(pkt.dstip, pkt.srcip, pkt.dport, pkt.sport) % NUM_ENTRIES;
  pkt.idx2 = hash3(pkt.srcip, pkt.dstip, pkt.proto) % NUM_ENTRIES;
  cms0[pkt.idx0] = cms0[pkt.idx0] + 1;
  cms1[pkt.idx1] = cms1[pkt.idx1] + 1;
  cms2[pkt.idx2] = cms2[pkt.idx2] + 1;
  pkt.c0 = cms0[pkt.idx0];
  pkt.c1 = cms1[pkt.idx1];
  pkt.c2 = cms2[pkt.idx2];
  pkt.min01 = (pkt.c0 < pkt.c1) ? pkt.c0 : pkt.c1;
  pkt.count = (pkt.min01 < pkt.c2) ? pkt.min01 : pkt.c2;
  pkt.heavy = pkt.count > THRESHOLD;
}
)";

const char* kHeavyHittersWire = R"(
wire heavy_hitters_v1 {
  magic : u16 be @0 = 0xD002;
  srcip : u32 be @2;
  dstip : u32 be @6;
  sport : u16 be @10;
  dport : u16 be @12;
  proto : u8  be @14;
  heavy : u8  be @15;
}
)";

// --------------------------------------------------------------------------
// 3. Flowlet switching — Figure 3a, verbatim modulo whitespace.
// --------------------------------------------------------------------------
const char* kFlowlets = R"(
#define NUM_FLOWLETS 8000
#define THRESHOLD 5
#define NUM_HOPS 10

struct Packet {
  int sport;
  int dport;
  int new_hop;
  int arrival;
  int next_hop;
  int id; // array index
};

int last_time[NUM_FLOWLETS] = {0};
int saved_hop[NUM_FLOWLETS] = {0};

void flowlet(struct Packet pkt) {
  pkt.new_hop = hash3(pkt.sport,
                      pkt.dport,
                      pkt.arrival)
                % NUM_HOPS;

  pkt.id = hash2(pkt.sport,
                 pkt.dport)
           % NUM_FLOWLETS;

  if (pkt.arrival - last_time[pkt.id]
      > THRESHOLD)
  { saved_hop[pkt.id] = pkt.new_hop; }

  last_time[pkt.id] = pkt.arrival;
  pkt.next_hop = saved_hop[pkt.id];
}
)";

const char* kFlowletsWire = R"(
wire flowlets_v1 {
  magic    : u16 be @0 = 0xD003;
  sport    : u16 be @2;
  dport    : u16 be @4;
  arrival  : u32 be @6;
  next_hop : u8  be @10;
}
)";

// --------------------------------------------------------------------------
// 4. RCP — accumulate RTT sum if the RTT is under the maximum allowable RTT.
// --------------------------------------------------------------------------
const char* kRcp = R"(
#define MAX_ALLOWABLE_RTT 30

struct Packet {
  int size_bytes;
  int rtt;
};

int input_traffic_bytes = 0;
int sum_rtt = 0;
int num_pkts_with_rtt = 0;

void rcp(struct Packet pkt) {
  input_traffic_bytes += pkt.size_bytes;
  if (pkt.rtt < MAX_ALLOWABLE_RTT) {
    sum_rtt += pkt.rtt;
    num_pkts_with_rtt += 1;
  }
}
)";

const char* kRcpWire = R"(
wire rcp_v1 {
  magic      : u16 be @0 = 0xD004;
  size_bytes : u16 be @2;
  rtt        : u16 be @4;
}
)";

// --------------------------------------------------------------------------
// 5. Sampled NetFlow — sample one packet in N; reset the counter at N.
// --------------------------------------------------------------------------
const char* kSampledNetflow = R"(
#define SAMPLE_THRESHOLD 29

struct Packet {
  int srcip;
  int dstip;
  int old_count;
  int sample;
};

int count = 0;

void sampled_netflow(struct Packet pkt) {
  pkt.old_count = count;
  if (count == SAMPLE_THRESHOLD) {
    count = 0;
  } else {
    count = count + 1;
  }
  pkt.sample = pkt.old_count == SAMPLE_THRESHOLD;
}
)";

const char* kSampledNetflowWire = R"(
wire sampled_netflow_v1 {
  magic  : u16 be @0 = 0xD005;
  srcip  : u32 be @2;
  dstip  : u32 be @6;
  sample : u8  be @10;
}
)";

// --------------------------------------------------------------------------
// 6. HULL — phantom (virtual) queue: drains at a virtual capacity below line
//    rate (DRAIN_SHIFT: 512 bytes/tick against a 1000 bytes/tick link) and
//    marks ECN when the phantom queue exceeds the threshold.  Elapsed time
//    comes from a last-arrival state variable, like flowlets' last_time.
// --------------------------------------------------------------------------
const char* kHull = R"(
#define DRAIN_SHIFT 9
#define ECN_THRESH 3000

struct Packet {
  int now;
  int size_bytes;
  int prev;
  int drain;
  int cur_q;
  int mark;
};

int last_arr = 0;
int vq = 0;

void hull(struct Packet pkt) {
  pkt.prev = last_arr;
  last_arr = pkt.now;
  pkt.drain = ((pkt.now - pkt.prev) << DRAIN_SHIFT) - pkt.size_bytes;
  if (vq < pkt.drain) {
    vq = 0;
  } else {
    vq = vq - pkt.drain;
  }
  pkt.cur_q = vq;
  pkt.mark = pkt.cur_q > ECN_THRESH;
}
)";

const char* kHullWire = R"(
wire hull_v1 {
  magic      : u16 be @0 = 0xD006;
  now        : u32 be @2;
  size_bytes : u16 be @6;
  mark       : u8  be @8;
}
)";

// --------------------------------------------------------------------------
// 7. Adaptive Virtual Queue — adapt the virtual capacity to the measured
//    queue, drain a virtual queue with it, mark when the virtual queue grows.
// --------------------------------------------------------------------------
const char* kAvq = R"(
#define TARGET_QLEN 100
#define ALPHA 4
#define VCAP_MIN 10
#define VCAP_MAX 1000

struct Packet {
  int size_bytes;
  int qlen;
  int vcap_old;
  int drain;
  int vq_now;
  int mark;
};

int vcap = 100;
int vq = 0;

void avq(struct Packet pkt) {
  pkt.vcap_old = vcap;
  if (pkt.qlen > TARGET_QLEN) {
    if (vcap > VCAP_MIN) {
      vcap = vcap - ALPHA;
    }
  } else {
    if (vcap < VCAP_MAX) {
      vcap = vcap + ALPHA;
    }
  }
  pkt.drain = pkt.vcap_old - pkt.size_bytes;
  if (vq < pkt.drain) {
    vq = 0;
  } else {
    vq = vq - pkt.drain;
  }
  pkt.vq_now = vq;
  pkt.mark = pkt.vq_now > TARGET_QLEN;
}
)";

const char* kAvqWire = R"(
wire avq_v1 {
  magic      : u16 be @0 = 0xD007;
  size_bytes : u16 be @2;
  qlen       : u16 be @4;
  mark       : u8  be @6;
}
)";

// --------------------------------------------------------------------------
// 8. WFQ priority computation (start-time fair queueing) — a packet's
//    virtual start time is the max of its flow's last finish time and now.
// --------------------------------------------------------------------------
const char* kStfq = R"(
#define NUM_FLOWS 1024

struct Packet {
  int flow;
  int len;
  int now;
  int idx;
  int last;
  int start;
};

int last_finish[NUM_FLOWS] = {0};

void stfq(struct Packet pkt) {
  pkt.idx = hash2(pkt.flow, 1) % NUM_FLOWS;
  pkt.last = last_finish[pkt.idx];
  if (pkt.last == 0) {
    last_finish[pkt.idx] = pkt.now + pkt.len;
  } else if (pkt.last > pkt.now) {
    last_finish[pkt.idx] = pkt.last + pkt.len;
  } else {
    last_finish[pkt.idx] = pkt.now + pkt.len;
  }
  pkt.start = (pkt.last > pkt.now) ? pkt.last : pkt.now;
}
)";

const char* kStfqWire = R"(
wire stfq_v1 {
  magic : u16 be @0 = 0xD008;
  flow  : u16 be @2;
  len   : u16 be @4;
  now   : u32 be @6;
  start : u32 be @10;
}
)";

// --------------------------------------------------------------------------
// 9. DNS TTL change tracking — count, per domain, how often the announced
//    TTL changes (EXPOSURE uses this as a malicious-domain feature).
// --------------------------------------------------------------------------
// --------------------------------------------------------------------------
// Rank programs (rank_corpus): scheduling transactions whose output field a
// PIFO queue reads as the packet's rank — the companion paper's examples.
// `now` is the wall-clock tick; `vt` and `refund`/`trefund` are scheduler
// feedback: the virtual time (start rank of the packet in service) and the
// bytes of the flow/tenant the scheduler evicted since the last offer.
// --------------------------------------------------------------------------

// Start-time fair queueing as a rank program.  Unlike the Table-4 `stfq`
// row (which approximates virtual time with the wall clock), this is the
// companion paper's formulation plus scheduler feedback: `vt` clamps the
// flow's clock from below so an idle flow rejoins at the current round, and
// `refund` subtracts evicted bytes so the clock tracks served+buffered
// bytes rather than ever-admitted bytes (without it a flow overdriving a
// full buffer is charged for evicted packets and starves).  `len - refund`
// and `vt + refund` are folded outside the stateful codelet so the state
// update keeps the two-operand shape the paper's atoms provide.
const char* kStfqRank = R"(
#define NUM_FLOWS 1024

struct Packet {
  int flow;
  int len;
  int vt;
  int refund;
  int adj;
  int vr;
  int idx;
  int last;
  int start;
};

int last_finish[NUM_FLOWS] = {0};

void stfq_rank(struct Packet pkt) {
  pkt.adj = pkt.len - pkt.refund;
  pkt.vr = pkt.vt + pkt.refund;
  pkt.idx = hash2(pkt.flow, 1) % NUM_FLOWS;
  pkt.last = last_finish[pkt.idx];
  if (pkt.last > pkt.vr) {
    last_finish[pkt.idx] = pkt.last + pkt.adj;
  } else {
    last_finish[pkt.idx] = pkt.vt + pkt.len;
  }
  pkt.start = (pkt.last > pkt.vr) ? (pkt.last - pkt.refund) : pkt.vt;
}
)";

const char* kStfqRankWire = R"(
wire stfq_rank_v1 {
  magic  : u16 be @0 = 0xD00E;
  flow   : u16 be @2;
  len    : u16 be @4;
  vt     : u32 be @6;
  refund : u32 be @10;
  start  : u32 be @14;
}
)";

// Token-bucket shaping at one byte per tick: per-flow theoretical arrival
// time (TAT) advances by the packet length; a packet may depart up to BURST
// bytes ahead of its TAT, otherwise its rank pushes it into the future.
const char* kTokenBucket = R"(
#define NUM_FLOWS 512
#define BURST 6000

struct Packet {
  int flow;
  int len;
  int now;
  int idx;
  int t;
  int send;
};

int next_free[NUM_FLOWS] = {0};

void token_bucket(struct Packet pkt) {
  pkt.idx = hash2(pkt.flow, 2) % NUM_FLOWS;
  pkt.t = next_free[pkt.idx];
  if (pkt.t < pkt.now) {
    next_free[pkt.idx] = pkt.now + pkt.len;
  } else {
    next_free[pkt.idx] = pkt.t + pkt.len;
  }
  pkt.send = ((pkt.t - BURST) > pkt.now) ? (pkt.t - BURST) : pkt.now;
}
)";

const char* kTokenBucketWire = R"(
wire token_bucket_v1 {
  magic : u16 be @0 = 0xD00C;
  flow  : u16 be @2;
  len   : u16 be @4;
  now   : u32 be @6;
  send  : u32 be @10;
}
)";

// Two-level hierarchical scheduling collapsed into one rank: tenant-level
// STFQ virtual time majorizes, the flow-level virtual time breaks ties
// within a BAND-tick band — an approximation of HPFQ's PIFO tree with a
// single PIFO.  The fed-back `vt` is a combined rank, so the program first
// projects it to tenant units (vt >> BAND_SHIFT) before clamping either
// clock.
const char* kHsched = R"(
#define NUM_TENANTS 64
#define NUM_QUEUES 1024
#define BAND_SHIFT 6
#define BAND_MASK 63

struct Packet {
  int tenant;
  int flow;
  int len;
  int vt;
  int refund;
  int trefund;
  int tvt;
  int tadj;
  int tvr;
  int fadj;
  int fvr;
  int tidx;
  int fidx;
  int tlast;
  int flast;
  int tstart;
  int fstart;
  int rank;
};

int tenant_finish[NUM_TENANTS] = {0};
int flow_finish[NUM_QUEUES] = {0};

void hsched(struct Packet pkt) {
  pkt.tvt = pkt.vt >> BAND_SHIFT;
  pkt.tadj = pkt.len - pkt.trefund;
  pkt.tvr = pkt.tvt + pkt.trefund;
  pkt.fadj = pkt.len - pkt.refund;
  pkt.fvr = pkt.tvt + pkt.refund;
  pkt.tidx = hash2(pkt.tenant, 3) % NUM_TENANTS;
  pkt.fidx = hash2(pkt.flow, 5) % NUM_QUEUES;
  pkt.tlast = tenant_finish[pkt.tidx];
  if (pkt.tlast > pkt.tvr) {
    tenant_finish[pkt.tidx] = pkt.tlast + pkt.tadj;
  } else {
    tenant_finish[pkt.tidx] = pkt.tvt + pkt.len;
  }
  pkt.flast = flow_finish[pkt.fidx];
  if (pkt.flast > pkt.fvr) {
    flow_finish[pkt.fidx] = pkt.flast + pkt.fadj;
  } else {
    flow_finish[pkt.fidx] = pkt.tvt + pkt.len;
  }
  pkt.tstart = (pkt.tlast > pkt.tvr) ? (pkt.tlast - pkt.trefund) : pkt.tvt;
  pkt.fstart = (pkt.flast > pkt.fvr) ? (pkt.flast - pkt.refund) : pkt.tvt;
  pkt.rank = (pkt.tstart << BAND_SHIFT) + (pkt.fstart & BAND_MASK);
}
)";

const char* kHschedWire = R"(
wire hsched_v1 {
  magic   : u16 be @0 = 0xD00D;
  tenant  : u16 be @2;
  flow    : u16 be @4;
  len     : u16 be @6;
  vt      : u32 be @8;
  refund  : u32 be @12;
  trefund : u32 be @16;
  rank    : u32 be @20;
}
)";

const char* kDnsTtl = R"(
#define NUM_DOMAINS 4096

struct Packet {
  int domain;
  int ttl;
  int idx;
  int old_ttl;
  int changes_now;
};

int last_ttl[NUM_DOMAINS] = {0};
int num_changes[NUM_DOMAINS] = {0};

void dns_ttl_tracker(struct Packet pkt) {
  pkt.idx = hash2(pkt.domain, 7) % NUM_DOMAINS;
  pkt.old_ttl = last_ttl[pkt.idx];
  last_ttl[pkt.idx] = pkt.ttl;
  if (pkt.old_ttl != 0) {
    if (pkt.old_ttl != pkt.ttl) {
      num_changes[pkt.idx] = num_changes[pkt.idx] + 1;
    }
  }
  pkt.changes_now = num_changes[pkt.idx];
}
)";

const char* kDnsTtlWire = R"(
wire dns_ttl_v1 {
  magic       : u16 be @0 = 0xD009;
  domain      : u16 be @2;
  ttl         : u32 be @4;
  changes_now : u32 be @8;
}
)";

// --------------------------------------------------------------------------
// 10. CONGA — §5.3's pair-update example, verbatim structure: track the best
//     (least utilized) path per destination.
// --------------------------------------------------------------------------
const char* kConga = R"(
#define NUM_DESTS 256
#define INFINITE_UTIL 2147483647

struct Packet {
  int src;
  int util;
  int path_id;
  int best_util_now;
  int best_path_now;
};

int best_path_util[NUM_DESTS] = {INFINITE_UTIL};
int best_path[NUM_DESTS] = {0};

void conga(struct Packet pkt) {
  if (pkt.util < best_path_util[pkt.src]) {
    best_path_util[pkt.src] = pkt.util;
    best_path[pkt.src] = pkt.path_id;
  } else if (pkt.path_id == best_path[pkt.src]) {
    best_path_util[pkt.src] = pkt.util;
  }
  pkt.best_util_now = best_path_util[pkt.src];
  pkt.best_path_now = best_path[pkt.src];
}
)";

// CONGA's utilization rides little-endian: the one corpus format exercising
// the DSL's `le` byte order end to end.
const char* kCongaWire = R"(
wire conga_v1 {
  magic         : u16 be @0 = 0xD00A;
  src           : u8  be @2;
  path_id       : u8  be @3;
  util          : u32 le @4;
  best_path_now : u8  be @8;
  best_util_now : u32 le @9;
}
)";

// --------------------------------------------------------------------------
// 11. CoDel — the AQM control law: when the sojourn time stays above target,
//     mark at intervals that shrink as INTERVAL/sqrt(count).  Needs a square
//     root, which no paper atom provides -> "Doesn't map" (§5.3); the
//     LUT-extension target runs it.
// --------------------------------------------------------------------------
const char* kCodel = R"(
#define TARGET 5
#define INTERVAL 4096

struct Packet {
  int now;
  int qdelay;
  int above;
  int next_old;
  int count_now;
  int mark;
};

int next_mark = 0;
int count = 0;

void codel(struct Packet pkt) {
  pkt.above = pkt.qdelay > TARGET;
  pkt.next_old = next_mark;
  if (pkt.above == 0) {
    count = 0;
    next_mark = pkt.now + INTERVAL;
  } else {
    if (pkt.now >= next_mark) {
      count = count + 1;
      next_mark = sqrt_interval(count) + pkt.now;
    }
  }
  pkt.count_now = count;
  pkt.mark = pkt.above && (pkt.now >= pkt.next_old);
}
)";

const char* kCodelWire = R"(
wire codel_v1 {
  magic  : u16 be @0 = 0xD00B;
  now    : u32 be @2;
  qdelay : u16 be @6;
  mark   : u8  be @8;
}
)";

// --------------------------------------------------------------------------
// Workload generators (all deterministic under the caller's seed).
// --------------------------------------------------------------------------

WorkloadGen flow_tuple_workload(int num_flows) {
  return [num_flows](std::mt19937& rng, int, std::map<std::string, Value>& f) {
    // Zipf-ish skew: a few hot flows, a long tail.
    std::uniform_int_distribution<int> coin(0, 9);
    std::uniform_int_distribution<int> hot(0, 3);
    std::uniform_int_distribution<int> cold(0, num_flows - 1);
    const int flow = coin(rng) < 7 ? hot(rng) : cold(rng);
    f["sport"] = 1000 + flow;
    f["dport"] = 80 + (flow % 7);
    f["srcip"] = 0x0a000000 + flow;
    f["dstip"] = 0x0a800000 + (flow % 16);
    f["proto"] = (flow % 2) ? 6 : 17;
    f["flow"] = flow;
    f["domain"] = flow;
  };
}

}  // namespace

const std::vector<AlgorithmInfo>& corpus() {
  static const std::vector<AlgorithmInfo> kCorpus = [] {
    std::vector<AlgorithmInfo> v;

    v.push_back({"bloom_filter",
                 "Set membership bit on every packet (3 hash functions)",
                 kBloomFilter, "Either", "Write", 4, 3, 29, 104,
                 {"sport", "dport"},
                 flow_tuple_workload(512), kBloomFilterWire});

    v.push_back({"heavy_hitters",
                 "Increment Count-Min Sketch on every packet",
                 kHeavyHitters, "Either", "RAW", 10, 9, 35, 192,
                 {"srcip", "dstip", "sport", "dport", "proto"},
                 flow_tuple_workload(256), kHeavyHittersWire});

    {
      AlgorithmInfo a{"flowlets",
                      "Update saved next hop if flowlet threshold is exceeded",
                      kFlowlets, "Ingress", "PRAW", 6, 2, 37, 107,
                      {"sport", "dport", "arrival"},
                      {},
                      kFlowletsWire};
      a.workload = [](std::mt19937& rng, int i,
                      std::map<std::string, Value>& f) {
        std::uniform_int_distribution<int> flow(0, 19);
        std::uniform_int_distribution<int> gap(0, 9);
        f["sport"] = 1000 + flow(rng);
        f["dport"] = 80;
        // bursty arrivals: mostly back-to-back, occasionally a long gap
        f["arrival"] = i * 2 + (gap(rng) == 0 ? 50 : 0);
      };
      v.push_back(std::move(a));
    }

    {
      AlgorithmInfo a{"rcp",
                      "Accumulate RTT sum if RTT is under maximum allowable",
                      kRcp, "Egress", "PRAW", 3, 3, 23, 75,
                      {"size_bytes", "rtt"},
                      {},
                      kRcpWire};
      a.workload = [](std::mt19937& rng, int,
                      std::map<std::string, Value>& f) {
        std::uniform_int_distribution<int> size(64, 1500);
        std::uniform_int_distribution<int> rtt(1, 60);
        f["size_bytes"] = size(rng);
        f["rtt"] = rtt(rng);
      };
      v.push_back(std::move(a));
    }

    {
      AlgorithmInfo a{"sampled_netflow",
                      "Sample a packet if count reaches N; reset count at N",
                      kSampledNetflow, "Either", "IfElseRAW", 4, 2, 18, 70,
                      {"srcip", "dstip"},
                      flow_tuple_workload(64),
                      kSampledNetflowWire};
      v.push_back(std::move(a));
    }

    {
      AlgorithmInfo a{"hull",
                      "Update counter for virtual queue",
                      kHull, "Egress", "Sub", 7, 1, 26, 95,
                      {"now", "size_bytes"},
                      {},
                      kHullWire};
      a.workload = [](std::mt19937& rng, int i,
                      std::map<std::string, Value>& f) {
        std::uniform_int_distribution<int> size(64, 1500);
        std::uniform_int_distribution<int> jitter(0, 1);
        f["now"] = i * 2 + jitter(rng);  // monotone arrival clock
        f["size_bytes"] = size(rng);
      };
      v.push_back(std::move(a));
    }

    {
      AlgorithmInfo a{"avq",
                      "Update virtual queue size and virtual capacity",
                      kAvq, "Ingress", "Nested", 7, 3, 36, 147,
                      {"size_bytes", "qlen"},
                      {},
                      kAvqWire};
      a.workload = [](std::mt19937& rng, int,
                      std::map<std::string, Value>& f) {
        std::uniform_int_distribution<int> size(64, 1500);
        std::uniform_int_distribution<int> qlen(0, 250);
        f["size_bytes"] = size(rng);
        f["qlen"] = qlen(rng);
      };
      v.push_back(std::move(a));
    }

    {
      AlgorithmInfo a{"stfq",
                      "Compute packet's virtual start time from the finish "
                      "time of the last packet in its flow",
                      kStfq, "Ingress", "Nested", 4, 2, 29, 87,
                      {"flow", "len", "now"},
                      {},
                      kStfqWire};
      a.workload = [](std::mt19937& rng, int i,
                      std::map<std::string, Value>& f) {
        std::uniform_int_distribution<int> flow(0, 31);
        std::uniform_int_distribution<int> len(64, 1500);
        f["flow"] = flow(rng);
        f["len"] = len(rng);
        f["now"] = i * 3;
      };
      v.push_back(std::move(a));
    }

    {
      AlgorithmInfo a{"dns_ttl_tracker",
                      "Track number of changes in announced TTL per domain",
                      kDnsTtl, "Ingress", "Nested", 6, 3, 27, 119,
                      {"domain", "ttl"},
                      {},
                      kDnsTtlWire};
      a.workload = [](std::mt19937& rng, int,
                      std::map<std::string, Value>& f) {
        std::uniform_int_distribution<int> domain(0, 99);
        std::uniform_int_distribution<int> ttl_change(0, 9);
        std::uniform_int_distribution<int> ttl_val(1, 5);
        f["domain"] = domain(rng);
        // most domains keep a stable TTL; some flip-flop
        f["ttl"] = (ttl_change(rng) == 0) ? ttl_val(rng) * 60 : 300;
      };
      v.push_back(std::move(a));
    }

    {
      AlgorithmInfo a{"conga",
                      "Update best path's utilization/id if we see a better "
                      "path; update utilization alone if it changes",
                      kConga, "Ingress", "Pairs", 4, 2, 32, 89,
                      {"src", "util", "path_id"},
                      {},
                      kCongaWire};
      a.workload = [](std::mt19937& rng, int,
                      std::map<std::string, Value>& f) {
        std::uniform_int_distribution<int> src(0, 15);
        std::uniform_int_distribution<int> util(0, 1000);
        std::uniform_int_distribution<int> path(0, 7);
        f["src"] = src(rng);
        f["util"] = util(rng);
        f["path_id"] = path(rng);
      };
      v.push_back(std::move(a));
    }

    {
      AlgorithmInfo a{"codel",
                      "Track marking state, next mark time and mark count "
                      "(control law needs INTERVAL/sqrt(count))",
                      kCodel, "Egress", "Doesn't map", 15, 3, 57, 271,
                      {"now", "qdelay"},
                      {},
                      kCodelWire};
      a.workload = [](std::mt19937& rng, int i,
                      std::map<std::string, Value>& f) {
        std::uniform_int_distribution<int> delay(0, 12);
        f["now"] = i * 7;
        // sustained standing queue with occasional dips below target
        f["qdelay"] = delay(rng);
      };
      v.push_back(std::move(a));
    }

    return v;
  }();
  return kCorpus;
}

const AlgorithmInfo& algorithm(const std::string& name) {
  for (const auto& a : corpus())
    if (a.name == name) return a;
  throw std::out_of_range("unknown algorithm: " + name);
}

const std::vector<AlgorithmInfo>& rank_corpus() {
  static const std::vector<AlgorithmInfo> kRankCorpus = [] {
    std::vector<AlgorithmInfo> v;

    {
      AlgorithmInfo a{"stfq",
                      "Start-time fair queueing rank: the flow's virtual "
                      "start time against the scheduler's fed-back virtual "
                      "time",
                      kStfqRank, "Ingress", "Nested", 0, 0, 20, 0,
                      {"flow", "len", "vt", "refund"},
                      {},
                      kStfqRankWire,
                      "start"};
      a.workload = [](std::mt19937& rng, int i,
                      std::map<std::string, Value>& f) {
        std::uniform_int_distribution<int> flow(0, 31);
        std::uniform_int_distribution<int> len(64, 1500);
        std::uniform_int_distribution<int> evict(0, 9);
        f["flow"] = flow(rng);
        f["len"] = len(rng);
        f["vt"] = i * 400;  // the scheduler's round advances ~a packet/step
        f["refund"] = (evict(rng) == 0) ? 1500 : 0;  // occasional eviction
      };
      v.push_back(std::move(a));
    }

    {
      AlgorithmInfo a{"token_bucket",
                      "Shape each flow to one byte per tick with a BURST-byte "
                      "bucket; rank is the packet's earliest send time",
                      kTokenBucket, "Ingress", "Nested", 0, 0, 19, 0,
                      {"flow", "len", "now"},
                      {},
                      kTokenBucketWire,
                      "send"};
      a.workload = [](std::mt19937& rng, int i,
                      std::map<std::string, Value>& f) {
        std::uniform_int_distribution<int> flow(0, 15);
        std::uniform_int_distribution<int> len(64, 1500);
        f["flow"] = flow(rng);
        f["len"] = len(rng);
        f["now"] = i * 2;  // heavily overloaded: shaping must engage
      };
      v.push_back(std::move(a));
    }

    {
      AlgorithmInfo a{"hsched",
                      "Two-level hierarchical scheduling: tenant-level STFQ "
                      "majorizes, flow-level STFQ breaks ties in-band",
                      kHsched, "Ingress", "Nested", 0, 0, 33, 0,
                      {"tenant", "flow", "len", "vt", "refund", "trefund"},
                      {},
                      kHschedWire,
                      "rank"};
      a.workload = [](std::mt19937& rng, int i,
                      std::map<std::string, Value>& f) {
        std::uniform_int_distribution<int> tenant(0, 7);
        std::uniform_int_distribution<int> sub(0, 3);
        std::uniform_int_distribution<int> len(64, 1500);
        std::uniform_int_distribution<int> evict(0, 9);
        const int t = tenant(rng);
        f["tenant"] = t;
        f["flow"] = t * 4 + sub(rng);
        f["len"] = len(rng);
        f["vt"] = (i * 400) << 6;  // combined-rank units (see BAND_SHIFT)
        const bool ev = evict(rng) == 0;
        f["refund"] = ev ? 1500 : 0;
        f["trefund"] = ev ? 1500 : 0;
      };
      v.push_back(std::move(a));
    }

    return v;
  }();
  return kRankCorpus;
}

const AlgorithmInfo& rank_algorithm(const std::string& name) {
  for (const auto& a : rank_corpus())
    if (a.name == name) return a;
  throw std::out_of_range("unknown rank algorithm: " + name);
}

}  // namespace algorithms
