// The data-plane algorithm corpus of Table 4: every algorithm the paper
// evaluates, written in Domino, with the paper's published expectations
// (least expressive atom, stage counts, pipeline location, lines of code)
// and a deterministic workload generator for differential testing and the
// benchmark harnesses.
//
// Formulation note: the paper's exact sources are not published for every
// algorithm; each program here implements the published pseudocode of the
// underlying algorithm and is written in the decoupled read-flank style the
// Domino compiler expects (observable values are read from a state variable's
// pre/post-update value, never from intermediate predicates).  EXPERIMENTS.md
// records measured-vs-paper for every row.
#pragma once

#include <functional>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "banzai/value.h"

namespace algorithms {

using banzai::Value;

// Fills the input packet fields for the i-th packet of a seeded workload.
using WorkloadGen =
    std::function<void(std::mt19937&, int i, std::map<std::string, Value>&)>;

struct AlgorithmInfo {
  std::string name;
  std::string description;        // Table 4 "Description" column
  std::string source;             // the Domino program
  std::string pipeline_location;  // "Ingress", "Egress" or "Either"
  std::string paper_least_atom;   // Table 4, "Doesn't map" for CoDel
  int paper_stages;
  int paper_max_atoms_per_stage;
  int paper_domino_loc;
  int paper_p4_loc;
  std::vector<std::string> input_fields;  // fields the workload populates
  WorkloadGen workload;
  // The algorithm's wire format, declared next to the Domino program in the
  // header-spec DSL (wire/spec.h): every input field plus the observable
  // outputs a middlebox would put back on the wire, led by a per-algorithm
  // magic constant so garbage frames are rejectable.  Parsed and bound by
  // wire::WireCodec; tests/wire_test.cc round-trips every entry.
  std::string wire_spec;
  // For rank programs (rank_corpus()): the output packet field a PIFO queue
  // reads as the packet's rank.  Empty for the Table-4 corpus.
  std::string rank_field = {};
};

// All eleven algorithms, in Table 4 order.
const std::vector<AlgorithmInfo>& corpus();

// Lookup by name; throws std::out_of_range if unknown.
const AlgorithmInfo& algorithm(const std::string& name);

// The scheduling corpus: rank programs for PIFO queues (the companion
// "Programmable Packet Scheduling" paper's examples).  Each entry is an
// ordinary Domino transaction whose rank_field output orders a PifoQueue —
// STFQ virtual start times, token-bucket shaping send times, and a
// two-level hierarchical (tenant-major) scheme.  Kept separate from
// corpus() so the Table-4 enumeration (tests, Table-4 benches, the paper's
// eleven-row evaluation) stays exactly the paper's set.
const std::vector<AlgorithmInfo>& rank_corpus();

// Lookup across rank_corpus(); throws std::out_of_range if unknown.
const AlgorithmInfo& rank_algorithm(const std::string& name);

}  // namespace algorithms
