// Hand-written lexer for Domino.  Handles //- and /**/-comments and the
// `#define NAME value` preprocessor form (the only directive Domino needs).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/token.h"

namespace domino {

// Tokenizes the whole source; throws CompileError(kLex) on bad input.
std::vector<Token> lex(std::string_view source);

}  // namespace domino
