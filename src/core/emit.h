// AOT C++ emission (the paper's Banzai code-generation strategy, §5 "Banzai
// simulates a switch pipeline... generated C++ is compiled with the host
// toolchain"): prints a sealed CompiledPipeline micro-op program as one
// self-contained translation unit exporting two `extern "C"` renderings of
// the same program — the per-packet row body (banzai::kNativeEntrySymbol,
// one outer packet loop of straight-line per-op code) and the batch-major
// columnar body (banzai::kNativeColsEntrySymbol, one plain `for (i < n)`
// column loop per stateless op over per-field __restrict__ pointers whose
// width is fixed at emit time, so the host compiler can auto-vectorize).
// Stage barriers are comments, state slots are addressed through a raw view
// array, intrinsics and LUT ROMs are called through the fixed ABI struct of
// banzai/native.h.  The loader there compiles and dlopens the result;
// `dominoc --emit-cc` dumps it as an artifact.
//
// Determinism: the emitted text is a pure function of the program, so the
// loader's content-hash cache turns repeated compiles of one program into a
// single host-compiler invocation per machine boot.
#pragma once

#include <string>

#include "banzai/kernel.h"

namespace domino {

// Emission knobs.  The default-constructed value reproduces the historical
// emission byte-for-byte — the loader's content-hash cache (and the docs'
// "flag-off build is untouched" contract) depend on that.
struct NativeEmitOptions {
  // Emit per-stage packets/ops/ns increments against the ABI's
  // stage_counters rows (banzai::NativeStageCounterRow): both entry points
  // restructure into stage-major loops wrapped in steady_clock reads, each
  // guarded by `if (ctr)` so a null pointer costs one branch per stage per
  // batch.  Set by the compiler driver only in -DDOMINO_STAGE_COUNTERS
  // builds; the changed text gives counter-aware objects their own content
  // hash, so counted and uncounted .so's share one cache without collision.
  bool stage_counters = false;
};

// Renders `prog` as compilable C++ exporting banzai::kNativeEntrySymbol
// (row-major) and banzai::kNativeColsEntrySymbol (columnar).
// Throws std::logic_error if the program is not sealed.
std::string emit_native_cc(const banzai::CompiledPipeline& prog,
                           const NativeEmitOptions& opts = {});

}  // namespace domino
