// AOT C++ emission (the paper's Banzai code-generation strategy, §5 "Banzai
// simulates a switch pipeline... generated C++ is compiled with the host
// toolchain"): prints a sealed CompiledPipeline micro-op program as one
// self-contained translation unit exporting a single `extern "C"` function —
// straight-line per-op code with stage barriers as comments, state slots
// addressed through a raw view array, intrinsics and LUT ROMs called through
// the fixed ABI struct of banzai/native.h.  The loader there compiles and
// dlopens the result; `dominoc --emit-cc` dumps it as an artifact.
//
// Determinism: the emitted text is a pure function of the program, so the
// loader's content-hash cache turns repeated compiles of one program into a
// single host-compiler invocation per machine boot.
#pragma once

#include <string>

#include "banzai/kernel.h"

namespace domino {

// Renders `prog` as compilable C++ exporting banzai::kNativeEntrySymbol.
// Throws std::logic_error if the program is not sealed.
std::string emit_native_cc(const banzai::CompiledPipeline& prog);

}  // namespace domino
