#include "core/interp.h"

#include "ir/intrinsics.h"
#include "ir/ops.h"

namespace domino {

Interpreter::Interpreter(const Program& prog) : prog_(prog.clone()) {
  for (const auto& f : prog_.packet_fields) fields_.intern(f.name);
  for (const auto& s : prog_.state_vars)
    state_.declare(s.name, static_cast<std::size_t>(s.size), !s.is_array,
                   s.init);
}

banzai::Value Interpreter::eval(const Expr& e, const banzai::Packet& pkt) {
  switch (e.kind) {
    case Expr::Kind::kIntLit:
      return e.int_value;
    case Expr::Kind::kField:
      return pkt.get(fields_.id_of(e.name));
    case Expr::Kind::kState: {
      const auto& var = state_.var(e.name);
      return e.index ? var.load(eval(*e.index, pkt)) : var.load_scalar();
    }
    case Expr::Kind::kUnary:
      return eval_unop(e.un_op, eval(*e.a, pkt));
    case Expr::Kind::kBinary:
      return eval_binop(e.bin_op, eval(*e.a, pkt), eval(*e.b, pkt));
    case Expr::Kind::kTernary:
      return eval(*e.cond, pkt) != 0 ? eval(*e.a, pkt) : eval(*e.b, pkt);
    case Expr::Kind::kCall: {
      std::vector<banzai::Value> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) args.push_back(eval(*a, pkt));
      return eval_intrinsic(e.name, args);
    }
  }
  return 0;
}

void Interpreter::exec(const Stmt& s, banzai::Packet& pkt) {
  switch (s.kind) {
    case Stmt::Kind::kAssign: {
      const banzai::Value v = eval(*s.value, pkt);
      if (s.target->kind == Expr::Kind::kField) {
        pkt.set(fields_.id_of(s.target->name), v);
      } else {
        auto& var = state_.var(s.target->name);
        if (s.target->index)
          var.store(eval(*s.target->index, pkt), v);
        else
          var.store_scalar(v);
      }
      break;
    }
    case Stmt::Kind::kIf: {
      const auto& body =
          eval(*s.cond, pkt) != 0 ? s.then_body : s.else_body;
      for (const auto& t : body) exec(*t, pkt);
      break;
    }
  }
}

void Interpreter::run(banzai::Packet& pkt) {
  for (const auto& s : prog_.transaction.body) exec(*s, pkt);
}

}  // namespace domino
