// Semantic analysis: enforces the Domino restrictions of Table 1 that are not
// already syntactic, plus ordinary name/arity checking.
//
// Checks:
//   - every pkt.field is declared in struct Packet,
//   - every state variable is declared; arrays are always subscripted and
//     scalars never are,
//   - intrinsics exist and are called with the right arity,
//   - all accesses to a given array within the transaction use the same
//     (syntactically identical) index expression   [Table 1],
//   - array index expressions read only packet fields / constants, and every
//     field they read is assigned at most once, before the first access —
//     together these make the index constant for the packet's execution,
//   - assignment targets are packet fields or state variables.
#pragma once

#include "ir/ast.h"

namespace domino {

// Throws CompileError(kSema) on violation.
void analyze(const Program& prog);

}  // namespace domino
