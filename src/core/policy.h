// Guards and policies (§3.3-3.4).
//
// A guard is a predicate on packet fields that triggers a transaction; it
// maps to the match half of a match-action table (exact, ternary, range or
// longest-prefix, depending on the pipeline's match semantics).  A policy
// pairs guards with transactions; when guards overlap, the matched
// transactions compose by concatenating their bodies in policy order —
// "providing the illusion of a larger transaction".
//
// The paper compiles only single transactions (composition is left to future
// work); this module follows suit: composition produces a single fused
// Program which is then compiled or interpreted like any other.
#pragma once

#include <string>
#include <vector>

#include "banzai/packet.h"
#include "ir/ast.h"

namespace domino {

struct GuardClause {
  enum class Kind { kExact, kRange, kTernary, kPrefix };
  Kind kind = Kind::kExact;
  std::string field;
  banzai::Value value = 0;  // exact match / range low / ternary value / prefix
  banzai::Value high = 0;   // range high (inclusive)
  banzai::Value mask = -1;  // ternary mask
  int prefix_len = 32;      // longest-prefix length

  bool matches(banzai::Value v) const;
};

// A guard is a conjunction of clauses; an empty guard matches everything.
struct Guard {
  std::vector<GuardClause> clauses;

  bool matches(const banzai::Packet& pkt,
               const banzai::FieldTable& fields) const;

  static Guard exact(std::string field, banzai::Value v);
  static Guard range(std::string field, banzai::Value lo, banzai::Value hi);
  static Guard ternary(std::string field, banzai::Value v, banzai::Value mask);
  static Guard prefix(std::string field, banzai::Value addr, int len);
  Guard& and_exact(std::string field, banzai::Value v);
};

struct PolicyEntry {
  Guard guard;
  Program transaction;
};

// Fuses two transactions into one program: union of packet fields (same-name
// fields unify), disjoint state variables (collisions are an error), and the
// concatenation of the bodies in argument order.
Program compose_transactions(const Program& first, const Program& second);

// An ordered guard->transaction policy.  `transaction_for` returns the fused
// program of every matching entry, in order (§3.4's composition semantics),
// or nullopt when nothing matches.
class Policy {
 public:
  void add(Guard guard, Program transaction) {
    entries_.push_back({std::move(guard), std::move(transaction)});
  }

  const std::vector<PolicyEntry>& entries() const { return entries_; }

  std::vector<std::size_t> matching_entries(
      const banzai::Packet& pkt, const banzai::FieldTable& fields) const;

 private:
  std::vector<PolicyEntry> entries_;
};

}  // namespace domino
