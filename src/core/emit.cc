#include "core/emit.h"

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "banzai/native.h"

namespace domino {

using banzai::CompiledPipeline;
using banzai::IntrinsicKind;
using banzai::IntrinsicOp;
using banzai::KArm;
using banzai::KArmOp;
using banzai::KOp;
using banzai::KPred;
using banzai::KRef;
using banzai::KRel;
using banzai::KSrc;
using banzai::MicroOp;
using banzai::StatefulOp;
using banzai::Value;

namespace {

// The self-contained prelude of every generated translation unit: the total
// arithmetic of banzai/value.h and the hash mixer of ir/intrinsics.cc
// (duplicated textually — the .so must link against nothing) and the ABI
// PODs, layout-identical to NativeStateView / NativeAbi in banzai/native.h.
// Keep the four in sync; the corpus differentials (native vs kernel VM) pin
// the duplicated arithmetic bit-exactly.
constexpr const char* kPrelude = R"(#include <cstddef>
#include <cstdint>

namespace {

using Value = std::int32_t;

inline Value wrap_add(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a) +
                            static_cast<std::uint32_t>(b));
}
inline Value wrap_sub(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a) -
                            static_cast<std::uint32_t>(b));
}
inline Value wrap_mul(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a) *
                            static_cast<std::uint32_t>(b));
}
inline Value total_div(Value a, Value b) {
  if (b == 0) return 0;
  if (a == INT32_MIN && b == -1) return INT32_MIN;
  return a / b;
}
inline Value total_mod(Value a, Value b) {
  if (b == 0) return 0;
  if (a == INT32_MIN && b == -1) return 0;
  return a % b;
}
inline Value shift_left(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a)
                            << (static_cast<std::uint32_t>(b) & 31u));
}
inline Value shift_right(Value a, Value b) {
  return a >> (static_cast<std::uint32_t>(b) & 31u);
}
inline std::uint32_t hash_mix(std::uint32_t h, std::uint32_t v) {
  h ^= v + 0x9e3779b9u + (h << 6) + (h >> 2);
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  return h;
}

}  // namespace

extern "C" {

struct DominoNativeStateView {
  Value* cells;
  std::uint64_t size;
};

struct DominoNativeAbi {
  const DominoNativeStateView* states;
  Value (*const* intrinsics)(const Value*, std::size_t);
  Value (*const* luts)(Value);
};
)";

// The counters twin of kPrelude (NativeEmitOptions::stage_counters): same
// arithmetic helpers plus a monotonic-nanosecond read, and the ABI POD grown
// by the stage-counters pointer — layout-identical to the 4-member NativeAbi
// of banzai/native.h, of which the default POD above is a strict prefix.
// Kept as a verbatim second constant rather than assembled from fragments:
// the default prelude's bytes must never change (content-hash cache), and a
// reviewer diffing the two raw strings sees exactly the counted additions.
// Keep the shared middle in sync with kPrelude.
constexpr const char* kPreludeCounters = R"(#include <chrono>
#include <cstddef>
#include <cstdint>

namespace {

using Value = std::int32_t;

inline Value wrap_add(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a) +
                            static_cast<std::uint32_t>(b));
}
inline Value wrap_sub(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a) -
                            static_cast<std::uint32_t>(b));
}
inline Value wrap_mul(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a) *
                            static_cast<std::uint32_t>(b));
}
inline Value total_div(Value a, Value b) {
  if (b == 0) return 0;
  if (a == INT32_MIN && b == -1) return INT32_MIN;
  return a / b;
}
inline Value total_mod(Value a, Value b) {
  if (b == 0) return 0;
  if (a == INT32_MIN && b == -1) return 0;
  return a % b;
}
inline Value shift_left(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a)
                            << (static_cast<std::uint32_t>(b) & 31u));
}
inline Value shift_right(Value a, Value b) {
  return a >> (static_cast<std::uint32_t>(b) & 31u);
}
inline std::uint32_t hash_mix(std::uint32_t h, std::uint32_t v) {
  h ^= v + 0x9e3779b9u + (h << 6) + (h >> 2);
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  return h;
}
inline std::uint64_t domino_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

extern "C" {

struct DominoNativeStateView {
  Value* cells;
  std::uint64_t size;
};

struct DominoStageCounterRow {
  std::uint64_t packets;
  std::uint64_t ops;
  std::uint64_t ns;
};

struct DominoNativeAbi {
  const DominoNativeStateView* states;
  Value (*const* intrinsics)(const Value*, std::size_t);
  Value (*const* luts)(Value);
  DominoStageCounterRow* stage_counters;
};
)";

// The two bodies one translation unit carries:
//   kRows — the per-packet body: one outer packet loop, ops read/write
//           `f[N]` of the current packet's field array.
//   kColsFused — inside the fused columnar loop (emit_cols_body below):
//           fields are the scalar locals `vN`, loaded from their column once
//           at loop top and stored back once at loop bottom, so chained ops
//           pass intermediates through registers instead of memory.  The
//           whole columnar entry point is emitted this way — there is no
//           one-loop-per-op columnar form.
enum class EmitMode { kRows, kColsFused };

std::string field_expr(EmitMode mode, std::uint32_t f) {
  switch (mode) {
    case EmitMode::kRows: return "f[" + std::to_string(f) + "]";
    case EmitMode::kColsFused: return "v" + std::to_string(f);
  }
  return "";
}

std::string literal(Value v) {
  // INT32_MIN has no decimal literal in C++; every other value prints as-is.
  if (v == INT32_MIN) return "(-2147483647 - 1)";
  return std::to_string(v);
}

std::string src_expr(EmitMode mode, const KSrc& s) {
  return s.is_const ? literal(s.cst) : field_expr(mode, s.field);
}

// A stateful-template operand inside the op's block: `in0`/`in1` are the
// pre-update state loads declared at the top of the block.
std::string ref_expr(EmitMode mode, const KRef& r) {
  switch (r.kind) {
    case KRef::Kind::kConst: return literal(r.cst);
    case KRef::Kind::kField: return field_expr(mode, r.field);
    case KRef::Kind::kState: return "in" + std::to_string(r.state_idx);
  }
  return "0";
}

std::string pred_expr(EmitMode mode, const KPred& p) {
  const char* rel = "";
  switch (p.rel) {
    case KRel::kAlways: return "true";
    case KRel::kLt: rel = "<"; break;
    case KRel::kLe: rel = "<="; break;
    case KRel::kGt: rel = ">"; break;
    case KRel::kGe: rel = ">="; break;
    case KRel::kEq: rel = "=="; break;
    case KRel::kNe: rel = "!="; break;
  }
  return ref_expr(mode, p.a) + " " + rel + " " + ref_expr(mode, p.b);
}

// The update-arm value for state k of one leaf; `x` is the pre-update value.
std::string arm_expr(EmitMode mode, const KArmOp& arm, std::size_t k,
                     std::uint32_t lut_idx) {
  const std::string x = "in" + std::to_string(k);
  const std::string s1 = ref_expr(mode, arm.src1);
  const std::string s2 = ref_expr(mode, arm.src2);
  switch (arm.mode) {
    case KArm::kKeep: return x;
    case KArm::kSet: return s1;
    case KArm::kAdd: return "wrap_add(" + x + ", " + s1 + ")";
    case KArm::kSubt: return "wrap_sub(" + x + ", " + s1 + ")";
    case KArm::kSetAdd: return "wrap_add(" + s1 + ", " + s2 + ")";
    case KArm::kSetSub: return "wrap_sub(" + s1 + ", " + s2 + ")";
    case KArm::kAddSub:
      return "wrap_sub(wrap_add(" + x + ", " + s1 + "), " + s2 + ")";
    case KArm::kLutAdd:
      return "wrap_add(abi->luts[" + std::to_string(lut_idx) + "](" + s1 +
             "), " + s2 + ")";
  }
  return x;
}

std::string alu_expr(EmitMode mode, const MicroOp& op) {
  const std::string a = src_expr(mode, op.a);
  const std::string b = src_expr(mode, op.b);
  switch (op.code) {
    case KOp::kMov: return a;
    case KOp::kNeg: return "wrap_sub(0, " + a + ")";
    case KOp::kLNot: return "(" + a + " == 0 ? 1 : 0)";
    case KOp::kBitNot: return "~" + a;
    case KOp::kAdd: return "wrap_add(" + a + ", " + b + ")";
    case KOp::kSub: return "wrap_sub(" + a + ", " + b + ")";
    case KOp::kMul: return "wrap_mul(" + a + ", " + b + ")";
    case KOp::kDiv: return "total_div(" + a + ", " + b + ")";
    case KOp::kMod: return "total_mod(" + a + ", " + b + ")";
    case KOp::kShl: return "shift_left(" + a + ", " + b + ")";
    case KOp::kShr: return "shift_right(" + a + ", " + b + ")";
    case KOp::kBitAnd: return "(" + a + " & " + b + ")";
    case KOp::kBitOr: return "(" + a + " | " + b + ")";
    case KOp::kBitXor: return "(" + a + " ^ " + b + ")";
    case KOp::kLAnd: return "((" + a + " != 0 && " + b + " != 0) ? 1 : 0)";
    case KOp::kLOr: return "((" + a + " != 0 || " + b + " != 0) ? 1 : 0)";
    case KOp::kLt: return "(" + a + " < " + b + " ? 1 : 0)";
    case KOp::kLe: return "(" + a + " <= " + b + " ? 1 : 0)";
    case KOp::kGt: return "(" + a + " > " + b + " ? 1 : 0)";
    case KOp::kGe: return "(" + a + " >= " + b + " ? 1 : 0)";
    case KOp::kEq: return "(" + a + " == " + b + " ? 1 : 0)";
    case KOp::kNe: return "(" + a + " != " + b + " ? 1 : 0)";
    case KOp::kSelect:
      return "(" + a + " != 0 ? " + b + " : " + src_expr(mode, op.c) + ")";
    case KOp::kIntrinsic:
    case KOp::kStateful:
      break;  // handled by their own emitters
  }
  return "0";
}

// Seed literal for an inlineable hash intrinsic, or nullptr for opaque
// bodies.  Values must match ir/intrinsics.cc (hash2/hash3/hash4); the
// corpus differentials hold the duplicated definition bit-exact.
const char* hash_seed_literal(IntrinsicKind kind) {
  switch (kind) {
    case IntrinsicKind::kHash2: return "0xdeadbeefu";
    case IntrinsicKind::kHash3: return "0xcafef00du";
    case IntrinsicKind::kHash4: return "0x8badf00du";
    case IntrinsicKind::kOpaque: return nullptr;
  }
  return nullptr;
}

// The inline twin of ir/intrinsics.cc's hash_n: seed, one hash_mix per
// argument, mask to non-negative.  Straight-line integer ops instead of a
// call through the ABI function-pointer table — both bodies get cheaper
// hashing, and a columnar loop with no stateful ops stays vectorizable.
void emit_inline_hash(std::ostringstream& os, EmitMode mode, const MicroOp& op,
                      const IntrinsicOp& io, const std::string& ind) {
  os << ind << "{\n";
  os << ind << "  std::uint32_t h = " << hash_seed_literal(io.kind) << ";\n";
  for (std::size_t a = 0; a < io.num_args; ++a)
    os << ind << "  h = hash_mix(h, static_cast<std::uint32_t>("
       << src_expr(mode, io.args[a]) << "));\n";
  os << ind << "  " << field_expr(mode, op.dst)
     << " = static_cast<Value>(h & 0x7fffffffu);\n";
  os << ind << "}\n";
  if (io.mod > 0)
    os << ind << field_expr(mode, op.dst) << " = total_mod("
       << field_expr(mode, op.dst) << ", " << literal(io.mod) << ");\n";
}

// An opaque intrinsic: argument marshalling plus a call through the ABI
// function-pointer table.
void emit_opaque_intrinsic(std::ostringstream& os, EmitMode mode,
                           const MicroOp& op, const IntrinsicOp& io,
                           const std::string& ind) {
  os << ind << "{\n";
  if (io.num_args > 0) {
    os << ind << "  const Value argv[" << int(io.num_args) << "] = {";
    for (std::size_t a = 0; a < io.num_args; ++a)
      os << (a ? ", " : "") << src_expr(mode, io.args[a]);
    os << "};\n";
    os << ind << "  Value v = abi->intrinsics[" << op.aux << "](argv, "
       << int(io.num_args) << ");\n";
  } else {
    os << ind << "  Value v = abi->intrinsics[" << op.aux
       << "](nullptr, 0);\n";
  }
  if (io.mod > 0)
    os << ind << "  v = total_mod(v, " << literal(io.mod) << ");\n";
  os << ind << "  " << field_expr(mode, op.dst) << " = v;\n";
  os << ind << "}\n";
}

void emit_intrinsic(std::ostringstream& os, EmitMode mode, const MicroOp& op,
                    const IntrinsicOp& io, const std::string& ind) {
  if (hash_seed_literal(io.kind) != nullptr)
    emit_inline_hash(os, mode, op, io, ind);
  else
    emit_opaque_intrinsic(os, mode, op, io, ind);
}

// One leaf of the decision tree: the update arms for every owned state.
// Arms read only `in0`/`in1` (pre-update values), packet fields and
// constants, so assignment order within a leaf is immaterial.
void emit_leaf(std::ostringstream& os, EmitMode mode, const StatefulOp& so,
               std::size_t leaf, std::uint32_t lut_idx,
               const std::string& indent) {
  for (std::size_t k = 0; k < so.num_states; ++k) {
    const KArmOp& arm = so.arms[leaf][k];
    if (arm.mode == KArm::kKeep) continue;  // out{k} already holds in{k}
    os << indent << "out" << k << " = " << arm_expr(mode, arm, k, lut_idx)
       << ";\n";
  }
}

// The per-packet body of one stateful op: state loads, decision tree, state
// stores, live-out publication.  Expects `s0`/`s1` (the op's state views) to
// be bound in the enclosing scope; the caller supplies that binding so the
// columnar segment loop can hoist it out of the packet loop.
void emit_stateful_body(std::ostringstream& os, EmitMode mode,
                        const CompiledPipeline& prog, const MicroOp& op,
                        const std::string& base) {
  const StatefulOp& so = prog.stateful_pool()[op.aux];
  // Loads: every arm and predicate sees the pre-update values.
  for (std::size_t k = 0; k < so.num_states; ++k) {
    const StatefulOp::Slot& slot = so.slots[k];
    if (slot.is_array) {
      // Mirrors StateVar::clamp: wrap hostile indices like truncated
      // hardware address lines.
      os << base << "const std::uint64_t x" << k
         << " = static_cast<std::uint64_t>(static_cast<std::uint32_t>("
         << field_expr(mode, slot.index_field) << ")) % s" << k << ".size;\n";
      os << base << "const Value in" << k << " = s" << k << ".cells[x" << k
         << "];\n";
    } else {
      os << base << "const Value in" << k << " = s" << k << ".cells[0];\n";
    }
  }
  for (std::size_t k = 0; k < so.num_states; ++k)
    os << base << "Value out" << k << " = in" << k << ";\n";
  // The decision tree, as real branches.
  if (so.pred_levels == 0) {
    emit_leaf(os, mode, so, 0, op.aux, base);
  } else if (so.pred_levels == 1) {
    os << base << "if (" << pred_expr(mode, so.preds[0]) << ") {\n";
    emit_leaf(os, mode, so, 0, op.aux, base + "  ");
    os << base << "} else {\n";
    emit_leaf(os, mode, so, 1, op.aux, base + "  ");
    os << base << "}\n";
  } else {
    os << base << "if (" << pred_expr(mode, so.preds[0]) << ") {\n";
    os << base << "  if (" << pred_expr(mode, so.preds[1]) << ") {\n";
    emit_leaf(os, mode, so, 0, op.aux, base + "    ");
    os << base << "  } else {\n";
    emit_leaf(os, mode, so, 1, op.aux, base + "    ");
    os << base << "  }\n";
    os << base << "} else {\n";
    os << base << "  if (" << pred_expr(mode, so.preds[2]) << ") {\n";
    emit_leaf(os, mode, so, 2, op.aux, base + "    ");
    os << base << "  } else {\n";
    emit_leaf(os, mode, so, 3, op.aux, base + "    ");
    os << base << "  }\n";
    os << base << "}\n";
  }
  // Stores, then live-out publication.
  for (std::size_t k = 0; k < so.num_states; ++k) {
    if (so.slots[k].is_array)
      os << base << "s" << k << ".cells[x" << k << "] = out" << k << ";\n";
    else
      os << base << "s" << k << ".cells[0] = out" << k << ";\n";
  }
  for (std::uint32_t l = so.liveout_begin; l < so.liveout_end; ++l) {
    const banzai::KLiveOut& lo = prog.liveout_pool()[l];
    os << base << field_expr(mode, lo.dst) << " = "
       << (lo.use_new ? "out" : "in") << int(lo.state_idx) << ";\n";
  }
}

// Row-body stateful op: bind the state views, then the body.
void emit_stateful_rows(std::ostringstream& os, const CompiledPipeline& prog,
                        const MicroOp& op) {
  const StatefulOp& so = prog.stateful_pool()[op.aux];
  os << "    {  // stateful #" << op.aux;
  for (std::size_t k = 0; k < so.num_states; ++k)
    os << " s" << k << "=" << prog.state_names()[so.slots[k].var];
  os << "\n";
  for (std::size_t k = 0; k < so.num_states; ++k)
    os << "      const DominoNativeStateView& s" << k << " = abi->states["
       << so.slots[k].var << "];\n";
  emit_stateful_body(os, EmitMode::kRows, prog, op, "      ");
  os << "    }\n";
}

// ---- Columnar body ---------------------------------------------------------
//
// The whole op stream as ONE `for (i < n)` loop over the columns with
// per-field register locals (kColsFused): every field the program reads
// before writing loads from its column once at loop top, every field it
// writes stores back once at loop bottom, and all intermediates live in the
// scalar locals `vN` — chained ops never round-trip through memory.  Fusing
// across stage boundaries is legal because per-packet program order IS the
// row semantics (seal() already rejected the intra-stage hazards that could
// make them differ).  State views bind once above the loop (`sv<aux>_<k>`),
// aliased to `s<k>` inside each stateful op's block.
//
// One fused loop measured uniformly at-or-ahead of every fissioned variant
// tried (per-op loops, hash-run loops): corpus pipelines are short (3–14
// ops) and stateful-dominated, so the columnar shape's win is dense
// sequential column access plus register-carried intermediates, not SIMD —
// loop fission only forces values back through memory.  A pipeline with no
// stateful ops still auto-vectorizes whole, inlined hashes included.
//
// The read scan below must over-approximate exactly like
// CompiledPipeline::compute_liveness (all predicates, all arms): any column
// preloaded here that is not written earlier in the program is then in
// live_in_fields(), so BatchSim's liveness-guided gather populated it.
// `begin`/`end` bound the emitted op range: the whole program in the default
// emission, one StageRange per call in the counted emission (stage fission
// is legal by the same §2.3 state-locality argument as stage-major batching;
// a field written by stage s and read by stage s+1 simply round-trips
// through its column between the two loops).
void emit_cols_body(std::ostringstream& os, const CompiledPipeline& prog,
                    std::uint32_t begin, std::uint32_t end) {
  enum : std::uint8_t { kUntouched, kLoad, kDefined };
  std::vector<std::uint8_t> cls(prog.num_fields(), kUntouched);
  std::vector<bool> written(prog.num_fields(), false);
  auto read_field = [&](std::uint32_t f) {
    if (cls[f] == kUntouched) cls[f] = kLoad;
  };
  auto read_src = [&](const KSrc& s) {
    if (!s.is_const) read_field(s.field);
  };
  auto read_ref = [&](const KRef& r) {
    if (r.kind == KRef::Kind::kField) read_field(r.field);
  };
  auto write_field = [&](std::uint32_t f) {
    if (cls[f] == kUntouched) cls[f] = kDefined;
    written[f] = true;
  };
  for (std::uint32_t i = begin; i < end; ++i) {
    const MicroOp& op = prog.ops()[i];
    switch (op.code) {
      case KOp::kIntrinsic: {
        const IntrinsicOp& io = prog.intrinsic_pool()[op.aux];
        for (std::size_t a = 0; a < io.num_args; ++a) read_src(io.args[a]);
        write_field(op.dst);
        break;
      }
      case KOp::kStateful: {
        const StatefulOp& so = prog.stateful_pool()[op.aux];
        for (std::size_t k = 0; k < so.num_states; ++k)
          if (so.slots[k].is_array) read_field(so.slots[k].index_field);
        for (const KPred& pr : so.preds) {
          read_ref(pr.a);
          read_ref(pr.b);
        }
        for (const auto& leaf : so.arms)
          for (const KArmOp& arm : leaf) {
            read_ref(arm.src1);
            read_ref(arm.src2);
          }
        for (std::uint32_t l = so.liveout_begin; l < so.liveout_end; ++l)
          write_field(prog.liveout_pool()[l].dst);
        break;
      }
      default:
        read_src(op.a);
        read_src(op.b);
        read_src(op.c);
        write_field(op.dst);
        break;
    }
  }

  os << "    // ---- fused columnar loop: ops [" << begin << ", " << end
     << ") ----\n";
  // Hoist state-view bindings above the loop, once per stateful op.
  for (std::uint32_t i = begin; i < end; ++i) {
    const MicroOp& op = prog.ops()[i];
    if (op.code != KOp::kStateful) continue;
    const StatefulOp& so = prog.stateful_pool()[op.aux];
    for (std::size_t k = 0; k < so.num_states; ++k)
      os << "    const DominoNativeStateView& sv" << op.aux << "_" << k
         << " = abi->states[" << so.slots[k].var << "];  // "
         << prog.state_names()[so.slots[k].var] << "\n";
  }
  os << "    for (std::uint64_t i = 0; i < n; ++i) {\n";
  for (std::uint32_t f = 0; f < prog.num_fields(); ++f) {
    if (cls[f] == kLoad)
      os << "      Value v" << f << " = c" << f << "[i];\n";
    else if (cls[f] == kDefined)
      os << "      Value v" << f << ";\n";  // assigned before any use below
  }
  for (std::uint32_t i = begin; i < end; ++i) {
    const MicroOp& op = prog.ops()[i];
    switch (op.code) {
      case KOp::kIntrinsic:
        emit_intrinsic(os, EmitMode::kColsFused, op,
                       prog.intrinsic_pool()[op.aux], "      ");
        break;
      case KOp::kStateful: {
        const StatefulOp& so = prog.stateful_pool()[op.aux];
        os << "      {  // stateful #" << op.aux << "\n";
        for (std::size_t k = 0; k < so.num_states; ++k)
          os << "        const DominoNativeStateView& s" << k << " = sv"
             << op.aux << "_" << k << ";\n";
        emit_stateful_body(os, EmitMode::kColsFused, prog, op, "        ");
        os << "      }\n";
        break;
      }
      default:
        os << "      v" << op.dst << " = "
           << alu_expr(EmitMode::kColsFused, op) << ";\n";
        break;
    }
  }
  for (std::uint32_t f = 0; f < prog.num_fields(); ++f)
    if (written[f]) os << "      c" << f << "[i] = v" << f << ";\n";
  os << "    }\n";
}

void emit_rows_ops(std::ostringstream& os, const CompiledPipeline& prog,
                   std::uint32_t begin, std::uint32_t end) {
  for (std::uint32_t i = begin; i < end; ++i) {
    const MicroOp& op = prog.ops()[i];
    switch (op.code) {
      case KOp::kIntrinsic:
        emit_intrinsic(os, EmitMode::kRows, op, prog.intrinsic_pool()[op.aux],
                       "    ");
        break;
      case KOp::kStateful:
        emit_stateful_rows(os, prog, op);
        break;
      default:
        os << "    f[" << op.dst << "] = " << alu_expr(EmitMode::kRows, op)
           << ";\n";
        break;
    }
  }
}

void emit_rows_body(std::ostringstream& os, const CompiledPipeline& prog) {
  const auto& stages = prog.stage_ranges();
  for (std::size_t si = 0; si < stages.size(); ++si) {
    os << "    // ---- stage " << si << " ----\n";
    emit_rows_ops(os, prog, stages[si].begin, stages[si].end);
  }
}

// The counted increment for stage si: packets, micro-ops retired, wall ns —
// identical accounting to CompiledPipeline::run_batch_counted so kernel and
// native totals are comparable op for op.
void emit_counter_update(std::ostringstream& os, std::size_t si,
                         std::uint32_t num_ops) {
  os << "    if (ctr) {\n"
     << "      ctr[" << si << "].packets += n;\n"
     << "      ctr[" << si << "].ops += " << num_ops << "ull * n;\n"
     << "      ctr[" << si << "].ns += domino_now_ns() - t0;\n"
     << "    }\n";
}

// Counted row body: stage-major (all packets through stage s, then s+1 — the
// BatchSim order, legal by §2.3 state locality) so one clock read brackets
// the whole batch per stage instead of every packet paying two.
void emit_rows_body_counted(std::ostringstream& os,
                            const CompiledPipeline& prog) {
  const auto& stages = prog.stage_ranges();
  for (std::size_t si = 0; si < stages.size(); ++si) {
    os << "  {  // ---- stage " << si << " ----\n"
       << "    const std::uint64_t t0 = ctr ? domino_now_ns() : 0;\n"
       << "    for (std::uint64_t pi = 0; pi < n; ++pi) {\n"
       << "    Value* const f = pkts[pi];\n";
    emit_rows_ops(os, prog, stages[si].begin, stages[si].end);
    os << "    }\n";
    emit_counter_update(os, si, stages[si].end - stages[si].begin);
    os << "  }\n";
  }
}

// Counted columnar body: the fused loop fissions at stage boundaries, each
// fragment wrapped in one timing bracket.  Cross-stage values round-trip
// through their columns — the price of attribution; the uncounted emission
// keeps the single fully-fused loop.
void emit_cols_body_counted(std::ostringstream& os,
                            const CompiledPipeline& prog) {
  const auto& stages = prog.stage_ranges();
  for (std::size_t si = 0; si < stages.size(); ++si) {
    os << "  {  // ---- stage " << si << " ----\n"
       << "    const std::uint64_t t0 = ctr ? domino_now_ns() : 0;\n";
    emit_cols_body(os, prog, stages[si].begin, stages[si].end);
    emit_counter_update(os, si, stages[si].end - stages[si].begin);
    os << "  }\n";
  }
}

}  // namespace

std::string emit_native_cc(const CompiledPipeline& prog,
                           const NativeEmitOptions& opts) {
  if (!prog.sealed())
    throw std::logic_error("emit_native_cc: program is not sealed");
  std::ostringstream os;
  os << "// Generated by domino (core/emit.cc) — do not edit.\n"
     << "// One sealed CompiledPipeline as straight-line C++: " << prog.num_ops()
     << " ops over " << prog.num_stages() << " stages, " << prog.num_fields()
     << " packet fields, " << prog.num_state_vars() << " state vars.\n"
     << "// Two entry points over the same program: the per-packet row body\n"
     << "// and the batch-major columnar body (one fused column loop).\n";
  if (opts.stage_counters)
    os << "// Emitted with per-stage counters (DOMINO_STAGE_COUNTERS): both\n"
       << "// bodies run stage-major, bracketing each stage's batch loop\n"
       << "// with monotonic-clock reads against abi->stage_counters.\n";
  if (prog.num_state_vars() > 0) {
    os << "// State table:\n";
    for (std::size_t k = 0; k < prog.state_names().size(); ++k)
      os << "//   states[" << k << "] = " << prog.state_names()[k] << "\n";
  }
  os << (opts.stage_counters ? kPreludeCounters : kPrelude);

  // Row-major entry: one outer packet loop, ops addressing f[N].  The
  // counted form inverts the nesting (stage-major) so each stage's wall time
  // covers the whole batch with two clock reads.
  os << "\nvoid " << banzai::kNativeEntrySymbol
     << "(Value* const* pkts, std::uint64_t n,\n"
     << "     const DominoNativeAbi* abi) {\n";
  if (opts.stage_counters) {
    os << "  DominoStageCounterRow* const ctr = abi->stage_counters;\n";
    emit_rows_body_counted(os, prog);
  } else {
    os << "  for (std::uint64_t pi = 0; pi < n; ++pi) {\n"
       << "    Value* const f = pkts[pi];\n";
    emit_rows_body(os, prog);
    os << "  }\n";
  }
  os << "}\n";

  // Columnar entry: `cols[f]` is the dense column of field f (ColumnBatch's
  // col_ptrs()).  Distinct columns never overlap — ColumnBatch carves them
  // from disjoint slices of one allocation — so every pointer is __restrict__
  // and the width is burned in at emit time; the whole op stream runs as one
  // fused register-resident column loop (emit_cols_body above), fissioned at
  // stage boundaries in the counted emission.
  os << "\nvoid " << banzai::kNativeColsEntrySymbol
     << "(Value* const* cols, std::uint64_t n,\n"
     << "     const DominoNativeAbi* abi) {\n";
  for (std::size_t f = 0; f < prog.num_fields(); ++f)
    os << "  Value* __restrict__ const c" << f << " = cols[" << f << "];\n";
  for (std::size_t f = 0; f < prog.num_fields(); ++f)
    os << "  (void)c" << f << ";\n";
  if (opts.stage_counters) {
    os << "  DominoStageCounterRow* const ctr = abi->stage_counters;\n";
    emit_cols_body_counted(os, prog);
  } else {
    emit_cols_body(os, prog, 0, static_cast<std::uint32_t>(prog.num_ops()));
  }
  os << "}\n"
     << "\n}  // extern \"C\"\n";
  return os.str();
}

}  // namespace domino
