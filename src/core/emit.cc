#include "core/emit.h"

#include <sstream>
#include <stdexcept>
#include <string>

#include "banzai/native.h"

namespace domino {

using banzai::CompiledPipeline;
using banzai::IntrinsicOp;
using banzai::KArm;
using banzai::KArmOp;
using banzai::KOp;
using banzai::KPred;
using banzai::KRef;
using banzai::KRel;
using banzai::KSrc;
using banzai::MicroOp;
using banzai::StatefulOp;
using banzai::Value;

namespace {

// The self-contained prelude of every generated translation unit: the total
// arithmetic of banzai/value.h (duplicated textually — the .so must link
// against nothing) and the ABI PODs, layout-identical to NativeStateView /
// NativeAbi in banzai/native.h.  Keep the three in sync.
constexpr const char* kPrelude = R"(#include <cstddef>
#include <cstdint>

namespace {

using Value = std::int32_t;

inline Value wrap_add(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a) +
                            static_cast<std::uint32_t>(b));
}
inline Value wrap_sub(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a) -
                            static_cast<std::uint32_t>(b));
}
inline Value wrap_mul(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a) *
                            static_cast<std::uint32_t>(b));
}
inline Value total_div(Value a, Value b) {
  if (b == 0) return 0;
  if (a == INT32_MIN && b == -1) return INT32_MIN;
  return a / b;
}
inline Value total_mod(Value a, Value b) {
  if (b == 0) return 0;
  if (a == INT32_MIN && b == -1) return 0;
  return a % b;
}
inline Value shift_left(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint32_t>(a)
                            << (static_cast<std::uint32_t>(b) & 31u));
}
inline Value shift_right(Value a, Value b) {
  return a >> (static_cast<std::uint32_t>(b) & 31u);
}

}  // namespace

extern "C" {

struct DominoNativeStateView {
  Value* cells;
  std::uint64_t size;
};

struct DominoNativeAbi {
  const DominoNativeStateView* states;
  Value (*const* intrinsics)(const Value*, std::size_t);
  Value (*const* luts)(Value);
};
)";

std::string literal(Value v) {
  // INT32_MIN has no decimal literal in C++; every other value prints as-is.
  if (v == INT32_MIN) return "(-2147483647 - 1)";
  return std::to_string(v);
}

std::string src_expr(const KSrc& s) {
  return s.is_const ? literal(s.cst) : "f[" + std::to_string(s.field) + "]";
}

// A stateful-template operand inside the op's block: `in0`/`in1` are the
// pre-update state loads declared at the top of the block.
std::string ref_expr(const KRef& r) {
  switch (r.kind) {
    case KRef::Kind::kConst: return literal(r.cst);
    case KRef::Kind::kField: return "f[" + std::to_string(r.field) + "]";
    case KRef::Kind::kState: return "in" + std::to_string(r.state_idx);
  }
  return "0";
}

std::string pred_expr(const KPred& p) {
  const char* rel = "";
  switch (p.rel) {
    case KRel::kAlways: return "true";
    case KRel::kLt: rel = "<"; break;
    case KRel::kLe: rel = "<="; break;
    case KRel::kGt: rel = ">"; break;
    case KRel::kGe: rel = ">="; break;
    case KRel::kEq: rel = "=="; break;
    case KRel::kNe: rel = "!="; break;
  }
  return ref_expr(p.a) + " " + rel + " " + ref_expr(p.b);
}

// The update-arm value for state k of one leaf; `x` is the pre-update value.
std::string arm_expr(const KArmOp& arm, std::size_t k, std::uint32_t lut_idx) {
  const std::string x = "in" + std::to_string(k);
  const std::string s1 = ref_expr(arm.src1);
  const std::string s2 = ref_expr(arm.src2);
  switch (arm.mode) {
    case KArm::kKeep: return x;
    case KArm::kSet: return s1;
    case KArm::kAdd: return "wrap_add(" + x + ", " + s1 + ")";
    case KArm::kSubt: return "wrap_sub(" + x + ", " + s1 + ")";
    case KArm::kSetAdd: return "wrap_add(" + s1 + ", " + s2 + ")";
    case KArm::kSetSub: return "wrap_sub(" + s1 + ", " + s2 + ")";
    case KArm::kAddSub:
      return "wrap_sub(wrap_add(" + x + ", " + s1 + "), " + s2 + ")";
    case KArm::kLutAdd:
      return "wrap_add(abi->luts[" + std::to_string(lut_idx) + "](" + s1 +
             "), " + s2 + ")";
  }
  return x;
}

std::string alu_expr(const MicroOp& op) {
  const std::string a = src_expr(op.a);
  const std::string b = src_expr(op.b);
  switch (op.code) {
    case KOp::kMov: return a;
    case KOp::kNeg: return "wrap_sub(0, " + a + ")";
    case KOp::kLNot: return "(" + a + " == 0 ? 1 : 0)";
    case KOp::kBitNot: return "~" + a;
    case KOp::kAdd: return "wrap_add(" + a + ", " + b + ")";
    case KOp::kSub: return "wrap_sub(" + a + ", " + b + ")";
    case KOp::kMul: return "wrap_mul(" + a + ", " + b + ")";
    case KOp::kDiv: return "total_div(" + a + ", " + b + ")";
    case KOp::kMod: return "total_mod(" + a + ", " + b + ")";
    case KOp::kShl: return "shift_left(" + a + ", " + b + ")";
    case KOp::kShr: return "shift_right(" + a + ", " + b + ")";
    case KOp::kBitAnd: return "(" + a + " & " + b + ")";
    case KOp::kBitOr: return "(" + a + " | " + b + ")";
    case KOp::kBitXor: return "(" + a + " ^ " + b + ")";
    case KOp::kLAnd: return "((" + a + " != 0 && " + b + " != 0) ? 1 : 0)";
    case KOp::kLOr: return "((" + a + " != 0 || " + b + " != 0) ? 1 : 0)";
    case KOp::kLt: return "(" + a + " < " + b + " ? 1 : 0)";
    case KOp::kLe: return "(" + a + " <= " + b + " ? 1 : 0)";
    case KOp::kGt: return "(" + a + " > " + b + " ? 1 : 0)";
    case KOp::kGe: return "(" + a + " >= " + b + " ? 1 : 0)";
    case KOp::kEq: return "(" + a + " == " + b + " ? 1 : 0)";
    case KOp::kNe: return "(" + a + " != " + b + " ? 1 : 0)";
    case KOp::kSelect:
      return "(" + a + " != 0 ? " + b + " : " + src_expr(op.c) + ")";
    case KOp::kIntrinsic:
    case KOp::kStateful:
      break;  // handled by their own emitters
  }
  return "0";
}

void emit_intrinsic(std::ostringstream& os, const MicroOp& op,
                    const IntrinsicOp& io) {
  os << "    {\n";
  if (io.num_args > 0) {
    os << "      const Value argv[" << int(io.num_args) << "] = {";
    for (std::size_t a = 0; a < io.num_args; ++a)
      os << (a ? ", " : "") << src_expr(io.args[a]);
    os << "};\n";
    os << "      Value v = abi->intrinsics[" << op.aux << "](argv, "
       << int(io.num_args) << ");\n";
  } else {
    os << "      Value v = abi->intrinsics[" << op.aux << "](nullptr, 0);\n";
  }
  if (io.mod > 0)
    os << "      v = total_mod(v, " << literal(io.mod) << ");\n";
  os << "      f[" << op.dst << "] = v;\n";
  os << "    }\n";
}

// One leaf of the decision tree: the update arms for every owned state.
// Arms read only `in0`/`in1` (pre-update values), packet fields and
// constants, so assignment order within a leaf is immaterial.
void emit_leaf(std::ostringstream& os, const StatefulOp& so, std::size_t leaf,
               std::uint32_t lut_idx, const char* indent) {
  for (std::size_t k = 0; k < so.num_states; ++k) {
    const KArmOp& arm = so.arms[leaf][k];
    if (arm.mode == KArm::kKeep) continue;  // out{k} already holds in{k}
    os << indent << "out" << k << " = " << arm_expr(arm, k, lut_idx) << ";\n";
  }
}

void emit_stateful(std::ostringstream& os, const CompiledPipeline& prog,
                   const MicroOp& op) {
  const StatefulOp& so = prog.stateful_pool()[op.aux];
  os << "    {  // stateful #" << op.aux;
  for (std::size_t k = 0; k < so.num_states; ++k)
    os << " s" << k << "=" << prog.state_names()[so.slots[k].var];
  os << "\n";
  // Loads: every arm and predicate sees the pre-update values.
  for (std::size_t k = 0; k < so.num_states; ++k) {
    const StatefulOp::Slot& slot = so.slots[k];
    os << "      const DominoNativeStateView& s" << k << " = abi->states["
       << slot.var << "];\n";
    if (slot.is_array) {
      // Mirrors StateVar::clamp: wrap hostile indices like truncated
      // hardware address lines.
      os << "      const std::uint64_t x" << k
         << " = static_cast<std::uint64_t>(static_cast<std::uint32_t>(f["
         << slot.index_field << "])) % s" << k << ".size;\n";
      os << "      const Value in" << k << " = s" << k << ".cells[x" << k
         << "];\n";
    } else {
      os << "      const Value in" << k << " = s" << k << ".cells[0];\n";
    }
  }
  for (std::size_t k = 0; k < so.num_states; ++k)
    os << "      Value out" << k << " = in" << k << ";\n";
  // The decision tree, as real branches.
  if (so.pred_levels == 0) {
    emit_leaf(os, so, 0, op.aux, "      ");
  } else if (so.pred_levels == 1) {
    os << "      if (" << pred_expr(so.preds[0]) << ") {\n";
    emit_leaf(os, so, 0, op.aux, "        ");
    os << "      } else {\n";
    emit_leaf(os, so, 1, op.aux, "        ");
    os << "      }\n";
  } else {
    os << "      if (" << pred_expr(so.preds[0]) << ") {\n";
    os << "        if (" << pred_expr(so.preds[1]) << ") {\n";
    emit_leaf(os, so, 0, op.aux, "          ");
    os << "        } else {\n";
    emit_leaf(os, so, 1, op.aux, "          ");
    os << "        }\n";
    os << "      } else {\n";
    os << "        if (" << pred_expr(so.preds[2]) << ") {\n";
    emit_leaf(os, so, 2, op.aux, "          ");
    os << "        } else {\n";
    emit_leaf(os, so, 3, op.aux, "          ");
    os << "        }\n";
    os << "      }\n";
  }
  // Stores, then live-out publication.
  for (std::size_t k = 0; k < so.num_states; ++k) {
    if (so.slots[k].is_array)
      os << "      s" << k << ".cells[x" << k << "] = out" << k << ";\n";
    else
      os << "      s" << k << ".cells[0] = out" << k << ";\n";
  }
  for (std::uint32_t l = so.liveout_begin; l < so.liveout_end; ++l) {
    const banzai::KLiveOut& lo = prog.liveout_pool()[l];
    os << "      f[" << lo.dst << "] = "
       << (lo.use_new ? "out" : "in") << int(lo.state_idx) << ";\n";
  }
  os << "    }\n";
}

}  // namespace

std::string emit_native_cc(const CompiledPipeline& prog) {
  if (!prog.sealed())
    throw std::logic_error("emit_native_cc: program is not sealed");
  std::ostringstream os;
  os << "// Generated by domino (core/emit.cc) — do not edit.\n"
     << "// One sealed CompiledPipeline as straight-line C++: " << prog.num_ops()
     << " ops over " << prog.num_stages() << " stages, " << prog.num_fields()
     << " packet fields, " << prog.num_state_vars() << " state vars.\n";
  if (prog.num_state_vars() > 0) {
    os << "// State table:\n";
    for (std::size_t k = 0; k < prog.state_names().size(); ++k)
      os << "//   states[" << k << "] = " << prog.state_names()[k] << "\n";
  }
  os << kPrelude;
  os << "\nvoid " << banzai::kNativeEntrySymbol
     << "(Value* const* pkts, std::uint64_t n,\n"
     << "     const DominoNativeAbi* abi) {\n"
     << "  for (std::uint64_t pi = 0; pi < n; ++pi) {\n"
     << "    Value* const f = pkts[pi];\n";
  const auto& stages = prog.stage_ranges();
  for (std::size_t si = 0; si < stages.size(); ++si) {
    os << "    // ---- stage " << si << " ----\n";
    for (std::uint32_t i = stages[si].begin; i < stages[si].end; ++i) {
      const MicroOp& op = prog.ops()[i];
      switch (op.code) {
        case KOp::kIntrinsic:
          emit_intrinsic(os, op, prog.intrinsic_pool()[op.aux]);
          break;
        case KOp::kStateful:
          emit_stateful(os, prog, op);
          break;
        default:
          os << "    f[" << op.dst << "] = " << alu_expr(op) << ";\n";
          break;
      }
    }
  }
  os << "  }\n"
     << "}\n"
     << "\n}  // extern \"C\"\n";
  return os.str();
}

}  // namespace domino
