// Recursive-descent parser for Domino (§3.1, Figure 3a).
//
// Grammar (informally):
//   program    := (define | struct | state | function)*
//   define     := '#define' IDENT NUMBER
//   struct     := 'struct' 'Packet' '{' ('int' IDENT ';')* '}' ';'
//   state      := 'int' IDENT ('[' constexpr ']')? ('=' init)? ';'
//   function   := 'void' IDENT '(' 'struct' 'Packet' IDENT ')' '{' stmt* '}'
//   stmt       := lvalue ('='|'+='|'-=') expr ';' | lvalue ('++'|'--') ';'
//               | 'if' '(' expr ')' block ('else' (ifstmt | block))?
//   block      := '{' stmt* '}' | stmt
//
// Table 1 restrictions with dedicated syntax (loops, goto/break/continue,
// pointers) are rejected here with targeted diagnostics; value-level
// restrictions (same array index per transaction, etc.) are checked in sema.
#pragma once

#include <string_view>

#include "ir/ast.h"

namespace domino {

// Parses a full Domino program; throws CompileError(kParse / kLex).
Program parse(std::string_view source);

}  // namespace domino
