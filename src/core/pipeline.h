// Pipelining (§4.2): turns normalized straight-line three-address code into a
// PVSM codelet pipeline.
//
//   1. Build the dependency graph: read-after-write edges (the only kind left
//      after branch removal and SSA) plus a pair of edges between reads and
//      writes of the same state variable, capturing that state must stay
//      internal to one atom (Figure 9a).
//   2. Condense strongly connected components into a DAG (Figure 9b).
//   3. Critical-path (ASAP) scheduling: an operation lands one stage after
//      the last of its predecessors (Figure 3b).
#pragma once

#include <string>
#include <vector>

#include "ir/pvsm.h"
#include "ir/tac.h"

namespace domino {

struct DepGraph {
  // adjacency: edges[i] = statements that depend on statement i.
  std::vector<std::vector<int>> edges;
  std::size_t num_nodes() const { return edges.size(); }
};

// Read-after-write field edges plus same-state-variable pair edges.
DepGraph build_dep_graph(const TacProgram& tac);

// Strongly connected components (Tarjan).  Each component's statement indices
// are sorted ascending; components are returned in topological order of the
// condensed DAG.
std::vector<std::vector<int>> strongly_connected_components(
    const DepGraph& g);

// Full pipelining: dependency graph -> SCC condensation -> ASAP schedule.
CodeletPipeline pipeline_schedule(const TacProgram& tac);

// Graphviz renderings of the two halves of Figure 9.
std::string dep_graph_dot(const TacProgram& tac);
std::string condensed_dag_dot(const TacProgram& tac);

}  // namespace domino
