// Tokens of the Domino language: C-like syntax (§3.2) restricted per Table 1.
#pragma once

#include <string>

#include "banzai/value.h"
#include "ir/diag.h"

namespace domino {

enum class Tok {
  kEnd,
  kIdent,
  kNumber,
  // keywords
  kStruct, kInt, kVoid, kIf, kElse, kDefine,
  // forbidden keywords, recognized to give targeted errors (Table 1)
  kWhile, kFor, kDo, kGoto, kBreak, kContinue, kReturn,
  // punctuation
  kLBrace, kRBrace, kLParen, kRParen, kLBracket, kRBracket,
  kSemi, kComma, kDot, kQuestion, kColon,
  // operators
  kAssign, kPlusAssign, kMinusAssign, kIncrement, kDecrement,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kShl, kShr, kLt, kGt, kLe, kGe, kEqEq, kNe,
  kAmp, kPipe, kCaret, kAmpAmp, kPipePipe, kBang, kTilde,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  banzai::Value number = 0;
  SourceLoc loc;
};

const char* tok_name(Tok t);

}  // namespace domino
