#include "core/sema.h"

#include <functional>
#include <map>
#include <set>
#include <string>

#include "ir/intrinsics.h"

namespace domino {
namespace {

class Sema {
 public:
  explicit Sema(const Program& prog) : prog_(prog) {}

  void run() {
    for (const auto& s : prog_.state_vars) {
      if (prog_.has_packet_field(s.name))
        fail(s.loc, "state variable '" + s.name +
                        "' collides with a packet field of the same name");
    }
    for (const auto& stmt : prog_.transaction.body) check_stmt(*stmt);
    check_index_field_stability();
  }

 private:
  [[noreturn]] void fail(SourceLoc loc, const std::string& msg) const {
    throw CompileError(CompilePhase::kSema, loc, msg);
  }

  void check_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kAssign: {
        check_target(*s.target);
        check_expr(*s.value);
        if (s.target->kind == Expr::Kind::kField) {
          assigned_fields_[s.target->name]++;
          first_assign_stmt_.try_emplace(s.target->name, stmt_counter_);
        }
        ++stmt_counter_;
        break;
      }
      case Stmt::Kind::kIf: {
        check_expr(*s.cond);
        ++stmt_counter_;
        for (const auto& t : s.then_body) check_stmt(*t);
        for (const auto& t : s.else_body) check_stmt(*t);
        break;
      }
    }
  }

  void check_target(const Expr& e) {
    if (e.kind == Expr::Kind::kField) {
      check_field(e);
      return;
    }
    if (e.kind == Expr::Kind::kState) {
      check_state(e);
      return;
    }
    fail(e.loc, "assignment target must be a packet field or state variable");
  }

  void check_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        return;
      case Expr::Kind::kField:
        check_field(e);
        return;
      case Expr::Kind::kState:
        check_state(e);
        return;
      case Expr::Kind::kUnary:
        check_expr(*e.a);
        return;
      case Expr::Kind::kBinary:
        check_expr(*e.a);
        check_expr(*e.b);
        return;
      case Expr::Kind::kTernary:
        check_expr(*e.cond);
        check_expr(*e.a);
        check_expr(*e.b);
        return;
      case Expr::Kind::kCall: {
        auto info = intrinsic_info(e.name);
        if (!info.has_value())
          fail(e.loc, "unknown function '" + e.name +
                          "' (only intrinsics may be called)");
        if (static_cast<int>(e.args.size()) != info->arity)
          fail(e.loc, "intrinsic '" + e.name + "' takes " +
                          std::to_string(info->arity) + " arguments, got " +
                          std::to_string(e.args.size()));
        for (const auto& a : e.args) check_expr(*a);
        return;
      }
    }
  }

  void check_field(const Expr& e) {
    if (!prog_.has_packet_field(e.name))
      fail(e.loc, "packet field '" + e.name +
                      "' is not declared in struct Packet");
  }

  void check_state(const Expr& e) {
    const StateDecl* d = prog_.find_state(e.name);
    if (d == nullptr)
      fail(e.loc, "undeclared state variable '" + e.name + "'");
    if (d->is_array && !e.index)
      fail(e.loc, "state array '" + e.name + "' used without an index");
    if (!d->is_array && e.index)
      fail(e.loc, "state scalar '" + e.name + "' used with an index");
    if (e.index) {
      check_index_expr(*e.index, e.name);
      const std::string key = e.index->str();
      auto [it, inserted] = array_index_.try_emplace(e.name, key);
      if (!inserted && it->second != key)
        fail(e.loc, "array '" + e.name +
                        "' is accessed with two different indices ('" +
                        it->second + "' and '" + key +
                        "'); all accesses within a transaction must use the "
                        "same index (Table 1)");
      if (inserted) first_array_use_stmt_[e.name] = stmt_counter_;
      for (const auto& f : index_fields(*e.index))
        index_fields_of_[e.name].insert(f);
    }
  }

  void check_index_expr(const Expr& e, const std::string& array) {
    if (e.kind == Expr::Kind::kState)
      fail(e.loc, "index of array '" + array +
                      "' reads state; indices must depend only on packet "
                      "fields and constants");
    if (e.a) check_index_expr(*e.a, array);
    if (e.b) check_index_expr(*e.b, array);
    if (e.cond) check_index_expr(*e.cond, array);
    for (const auto& a : e.args) check_index_expr(*a, array);
  }

  std::set<std::string> index_fields(const Expr& e) const {
    std::set<std::string> out;
    std::function<void(const Expr&)> walk = [&](const Expr& x) {
      if (x.kind == Expr::Kind::kField) out.insert(x.name);
      if (x.a) walk(*x.a);
      if (x.b) walk(*x.b);
      if (x.cond) walk(*x.cond);
      for (const auto& a : x.args) walk(*a);
    };
    walk(e);
    return out;
  }

  // Fields feeding an array index must be assigned at most once, and that
  // assignment must precede the first access of the array; this plus the
  // syntactic-identity check makes indices constant per transaction.
  void check_index_field_stability() const {
    for (const auto& [array, fields] : index_fields_of_) {
      const int first_use = first_array_use_stmt_.at(array);
      for (const auto& f : fields) {
        auto cnt = assigned_fields_.find(f);
        if (cnt == assigned_fields_.end()) continue;  // pure input field
        if (cnt->second > 1)
          throw CompileError(
              CompilePhase::kSema,
              "packet field '" + f +
                  "' is used in an array index but assigned more than once; "
                  "the index would not be constant for the transaction "
                  "(Table 1)");
        if (first_assign_stmt_.at(f) >= first_use)
          throw CompileError(
              CompilePhase::kSema,
              "packet field '" + f + "' indexes array '" + array +
                  "' but is assigned at or after the array's first access; "
                  "the index would not be constant for the transaction "
                  "(Table 1)");
      }
    }
  }

  const Program& prog_;
  std::map<std::string, std::string> array_index_;
  std::map<std::string, int> first_array_use_stmt_;
  std::map<std::string, int> assigned_fields_;
  std::map<std::string, int> first_assign_stmt_;
  std::map<std::string, std::set<std::string>> index_fields_of_;
  int stmt_counter_ = 0;
};

}  // namespace

void analyze(const Program& prog) { Sema(prog).run(); }

}  // namespace domino
