#include "core/policy.h"

#include <set>

#include "ir/diag.h"

namespace domino {

bool GuardClause::matches(banzai::Value v) const {
  switch (kind) {
    case Kind::kExact:
      return v == value;
    case Kind::kRange:
      return v >= value && v <= high;
    case Kind::kTernary:
      return (v & mask) == (value & mask);
    case Kind::kPrefix: {
      if (prefix_len <= 0) return true;
      const auto shift = static_cast<std::uint32_t>(32 - prefix_len);
      return (static_cast<std::uint32_t>(v) >> shift) ==
             (static_cast<std::uint32_t>(value) >> shift);
    }
  }
  return false;
}

bool Guard::matches(const banzai::Packet& pkt,
                    const banzai::FieldTable& fields) const {
  for (const auto& c : clauses) {
    auto id = fields.try_id_of(c.field);
    if (!id.has_value()) return false;
    if (!c.matches(pkt.get(*id))) return false;
  }
  return true;
}

Guard Guard::exact(std::string field, banzai::Value v) {
  Guard g;
  g.clauses.push_back({GuardClause::Kind::kExact, std::move(field), v, 0, -1, 32});
  return g;
}

Guard Guard::range(std::string field, banzai::Value lo, banzai::Value hi) {
  Guard g;
  g.clauses.push_back({GuardClause::Kind::kRange, std::move(field), lo, hi, -1, 32});
  return g;
}

Guard Guard::ternary(std::string field, banzai::Value v, banzai::Value mask) {
  Guard g;
  g.clauses.push_back({GuardClause::Kind::kTernary, std::move(field), v, 0, mask, 32});
  return g;
}

Guard Guard::prefix(std::string field, banzai::Value addr, int len) {
  Guard g;
  g.clauses.push_back({GuardClause::Kind::kPrefix, std::move(field), addr, 0, -1, len});
  return g;
}

Guard& Guard::and_exact(std::string field, banzai::Value v) {
  clauses.push_back({GuardClause::Kind::kExact, std::move(field), v, 0, -1, 32});
  return *this;
}

Program compose_transactions(const Program& first, const Program& second) {
  Program out = first.clone();

  // Defines: identical names must agree.
  for (const auto& d : second.defines) {
    bool found = false;
    for (const auto& e : out.defines) {
      if (e.name == d.name) {
        if (e.value != d.value)
          throw CompileError(CompilePhase::kSema, d.loc,
                             "#define '" + d.name +
                                 "' differs between composed transactions");
        found = true;
      }
    }
    if (!found) out.defines.push_back(d);
  }

  // Packet fields unify by name.
  for (const auto& f : second.packet_fields)
    if (!out.has_packet_field(f.name)) out.packet_fields.push_back(f);

  // State must be disjoint: transactions own their state (atoms cannot share
  // state across codelets).
  for (const auto& s : second.state_vars) {
    if (out.find_state(s.name) != nullptr)
      throw CompileError(CompilePhase::kSema, s.loc,
                         "state variable '" + s.name +
                             "' appears in both composed transactions; state "
                             "cannot be shared");
    out.state_vars.push_back(s);
  }

  // Concatenate bodies in user-specified order (§3.4).
  out.transaction.name = first.transaction.name + "_" + second.transaction.name;
  Program second_clone = second.clone();
  for (auto& s : second_clone.transaction.body)
    out.transaction.body.push_back(std::move(s));
  return out;
}

std::vector<std::size_t> Policy::matching_entries(
    const banzai::Packet& pkt, const banzai::FieldTable& fields) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].guard.matches(pkt, fields)) out.push_back(i);
  return out;
}

}  // namespace domino
