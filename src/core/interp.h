// Sequential reference interpreter for packet transactions (§3.1):
// "Conceptually, the switch invokes the packet transaction function one
// packet at a time, with no concurrent packet processing."
//
// This is the semantic ground truth.  Differential tests run the same trace
// through a compiled Banzai pipeline (with packets overlapped in flight) and
// require identical packet fields and state.
#pragma once

#include <string>

#include "banzai/packet.h"
#include "banzai/state.h"
#include "ir/ast.h"

namespace domino {

class Interpreter {
 public:
  // Builds a field table containing the program's packet fields and a state
  // store initialized from the program's state declarations.
  explicit Interpreter(const Program& prog);

  banzai::FieldTable& fields() { return fields_; }
  const banzai::FieldTable& fields() const { return fields_; }
  banzai::StateStore& state() { return state_; }
  const banzai::StateStore& state() const { return state_; }

  // Creates a packet with all fields zeroed.
  banzai::Packet make_packet() const {
    return banzai::Packet(fields_.size());
  }

  // Runs the transaction to completion on one packet.
  void run(banzai::Packet& pkt);

  // Convenience accessors by field name.
  banzai::Value get(const banzai::Packet& pkt, const std::string& field) const {
    return pkt.get(fields_.id_of(field));
  }
  void set(banzai::Packet& pkt, const std::string& field,
           banzai::Value v) const {
    pkt.set(fields_.id_of(field), v);
  }

 private:
  banzai::Value eval(const Expr& e, const banzai::Packet& pkt);
  void exec(const Stmt& s, banzai::Packet& pkt);

  Program prog_;
  banzai::FieldTable fields_;
  banzai::StateStore state_;
};

}  // namespace domino
