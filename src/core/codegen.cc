#include "core/codegen.h"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>

#include "atoms/stateless.h"
#include "banzai/kernel.h"
#include "ir/intrinsics.h"

namespace domino {

using banzai::AtomKind;
using banzai::ConfiguredAtom;
using banzai::FieldId;
using banzai::FieldTable;
using banzai::Packet;
using banzai::StateStore;
using banzai::Value;

namespace {

// An operand with the field name pre-resolved to a FieldId.
struct ROp {
  bool is_const = true;
  Value cst = 0;
  FieldId id = 0;

  static ROp resolve(const Operand& o, FieldTable& ft) {
    ROp r;
    if (o.is_const()) {
      r.is_const = true;
      r.cst = o.cst;
    } else {
      r.is_const = false;
      r.id = ft.intern(o.field);
    }
    return r;
  }

  Value get(const Packet& p) const { return is_const ? cst : p.get(id); }
};

// Compiled form of a single stateless statement.
struct CompiledStmt {
  TacStmt::Kind kind;
  FieldId dst = 0;
  ROp a, b, c;
  UnOp un_op = UnOp::kNeg;
  BinOp op = BinOp::kAdd;
  std::string intrinsic;
  std::vector<ROp> args;
  Value mod = 0;

  static CompiledStmt compile(const TacStmt& s, FieldTable& ft) {
    CompiledStmt c;
    c.kind = s.kind;
    if (auto w = s.field_written()) c.dst = ft.intern(*w);
    c.a = ROp::resolve(s.a, ft);
    c.b = ROp::resolve(s.b, ft);
    c.c = ROp::resolve(s.c, ft);
    c.un_op = s.un_op;
    c.op = s.op;
    c.intrinsic = s.intrinsic;
    for (const auto& arg : s.args) c.args.push_back(ROp::resolve(arg, ft));
    c.mod = s.intrinsic_mod;
    return c;
  }

  void exec(const Packet& in, Packet& out) const {
    switch (kind) {
      case TacStmt::Kind::kCopy:
        out.set(dst, a.get(in));
        break;
      case TacStmt::Kind::kUnary:
        out.set(dst, eval_unop(un_op, a.get(in)));
        break;
      case TacStmt::Kind::kBinary:
        out.set(dst, eval_binop(op, a.get(in), b.get(in)));
        break;
      case TacStmt::Kind::kTernary:
        out.set(dst, a.get(in) != 0 ? b.get(in) : c.get(in));
        break;
      case TacStmt::Kind::kIntrinsic: {
        std::vector<Value> argv;
        argv.reserve(args.size());
        for (const auto& arg : args) argv.push_back(arg.get(in));
        Value v = eval_intrinsic(intrinsic, argv);
        if (mod > 0) v = banzai::total_mod(v, mod);
        out.set(dst, v);
        break;
      }
      default:
        break;  // state statements never reach stateless execution
    }
  }
};

// One owned state slot of a stateful atom at run time.
struct StateSlot {
  std::string var;
  bool is_array = false;
  std::optional<FieldId> index;
};

// How a live-out packet field is produced at run time.
struct LiveOutRt {
  FieldId id;
  int state_idx;
  bool use_new;
};

// The run-time semantics of one synthesized stateful atom: the single body
// shared by the per-packet and batched execution paths, so the two can never
// drift apart.  Callers resolve the owned StateVars first — once per packet
// (exec) or once per batch (exec_batch, amortizing the by-name lookups).
struct StatefulBody {
  std::vector<StateSlot> slots;
  std::vector<FieldId> input_ids;
  std::vector<LiveOutRt> liveouts;
  atoms::StatefulConfig config;

  void resolve(StateStore& store,
               std::array<banzai::StateVar*, 2>& vars) const {
    for (std::size_t k = 0; k < slots.size(); ++k)
      vars[k] = &store.var(slots[k].var);
  }

  // `field_vals` is caller-provided scratch sized to input_ids.size().
  void exec_one(const Packet& in, Packet& out,
                const std::array<banzai::StateVar*, 2>& vars,
                std::vector<Value>& field_vals) const {
    std::array<Value, 2> states_in{0, 0}, states_out{0, 0};
    std::array<Value, 2> idx{0, 0};
    for (std::size_t k = 0; k < slots.size(); ++k) {
      if (slots[k].is_array) {
        idx[k] = in.get(*slots[k].index);
        states_in[k] = vars[k]->load(idx[k]);
      } else {
        states_in[k] = vars[k]->load_scalar();
      }
    }
    for (std::size_t f = 0; f < input_ids.size(); ++f)
      field_vals[f] = in.get(input_ids[f]);

    config.eval(util::Span<const Value>(states_in.data(), slots.size()),
                field_vals,
                util::Span<Value>(states_out.data(), slots.size()));

    for (std::size_t k = 0; k < slots.size(); ++k) {
      if (slots[k].is_array)
        vars[k]->store(idx[k], states_out[k]);
      else
        vars[k]->store_scalar(states_out[k]);
    }
    for (const auto& l : liveouts) {
      const auto k = static_cast<std::size_t>(l.state_idx);
      out.set(l.id, l.use_new ? states_out[k] : states_in[k]);
    }
  }
};

// ---- Kernel lowering (banzai/kernel.h) -------------------------------------
// Alongside every closure atom, the generator emits the equivalent micro-ops
// into a CompiledPipeline: the same CompiledStmt / StatefulBody data that the
// closures capture, but with operators mapped to dense opcodes, intrinsics to
// raw function pointers, and stateful operand selectors resolved from
// codelet-relative field positions to packet FieldIds.  The closure path and
// the kernel program are built from one source of truth, so they cannot
// diverge structurally; tests/kernel_test.cc proves they do not diverge
// behaviourally either.

banzai::KSrc lower_src(const ROp& r) {
  return r.is_const
             ? banzai::KSrc::constant(r.cst)
             : banzai::KSrc::field_ref(static_cast<std::uint32_t>(r.id));
}

banzai::KOp lower_unop(UnOp op) {
  switch (op) {
    case UnOp::kNeg: return banzai::KOp::kNeg;
    case UnOp::kLNot: return banzai::KOp::kLNot;
    case UnOp::kBitNot: return banzai::KOp::kBitNot;
  }
  return banzai::KOp::kNeg;
}

banzai::KOp lower_binop(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return banzai::KOp::kAdd;
    case BinOp::kSub: return banzai::KOp::kSub;
    case BinOp::kMul: return banzai::KOp::kMul;
    case BinOp::kDiv: return banzai::KOp::kDiv;
    case BinOp::kMod: return banzai::KOp::kMod;
    case BinOp::kShl: return banzai::KOp::kShl;
    case BinOp::kShr: return banzai::KOp::kShr;
    case BinOp::kBitAnd: return banzai::KOp::kBitAnd;
    case BinOp::kBitOr: return banzai::KOp::kBitOr;
    case BinOp::kBitXor: return banzai::KOp::kBitXor;
    case BinOp::kLAnd: return banzai::KOp::kLAnd;
    case BinOp::kLOr: return banzai::KOp::kLOr;
    case BinOp::kLt: return banzai::KOp::kLt;
    case BinOp::kLe: return banzai::KOp::kLe;
    case BinOp::kGt: return banzai::KOp::kGt;
    case BinOp::kGe: return banzai::KOp::kGe;
    case BinOp::kEq: return banzai::KOp::kEq;
    case BinOp::kNe: return banzai::KOp::kNe;
  }
  return banzai::KOp::kAdd;
}

banzai::KRel lower_rel(atoms::RelKind rel) {
  switch (rel) {
    case atoms::RelKind::kAlways: return banzai::KRel::kAlways;
    case atoms::RelKind::kLt: return banzai::KRel::kLt;
    case atoms::RelKind::kLe: return banzai::KRel::kLe;
    case atoms::RelKind::kGt: return banzai::KRel::kGt;
    case atoms::RelKind::kGe: return banzai::KRel::kGe;
    case atoms::RelKind::kEq: return banzai::KRel::kEq;
    case atoms::RelKind::kNe: return banzai::KRel::kNe;
  }
  return banzai::KRel::kAlways;
}

banzai::KArm lower_arm_mode(atoms::ArmMode mode) {
  switch (mode) {
    case atoms::ArmMode::kKeep: return banzai::KArm::kKeep;
    case atoms::ArmMode::kSet: return banzai::KArm::kSet;
    case atoms::ArmMode::kAdd: return banzai::KArm::kAdd;
    case atoms::ArmMode::kSubt: return banzai::KArm::kSubt;
    case atoms::ArmMode::kSetAdd: return banzai::KArm::kSetAdd;
    case atoms::ArmMode::kSetSub: return banzai::KArm::kSetSub;
    case atoms::ArmMode::kAddSub: return banzai::KArm::kAddSub;
    case atoms::ArmMode::kLutAdd: return banzai::KArm::kLutAdd;
  }
  return banzai::KArm::kKeep;
}

// Resolves an atom-template operand selector against the codelet's input
// field list, collapsing the field_vals gather the closure path performs.
banzai::KRef lower_ref(const atoms::OperandSel& sel,
                       const std::vector<FieldId>& input_ids) {
  switch (sel.kind) {
    case atoms::OperandSel::Kind::kState:
      return banzai::KRef::state_ref(sel.state_idx);
    case atoms::OperandSel::Kind::kField:
      return banzai::KRef::field_ref(static_cast<std::uint32_t>(
          input_ids[static_cast<std::size_t>(sel.field_pos)]));
    case atoms::OperandSel::Kind::kConst:
      return banzai::KRef::constant(sel.cst);
  }
  return banzai::KRef::constant(0);
}

void lower_stateless(const CompiledStmt& cs, banzai::CompiledPipeline& kernel) {
  const auto dst = static_cast<std::uint32_t>(cs.dst);
  switch (cs.kind) {
    case TacStmt::Kind::kCopy:
      kernel.add_alu(banzai::KOp::kMov, dst, lower_src(cs.a));
      break;
    case TacStmt::Kind::kUnary:
      kernel.add_alu(lower_unop(cs.un_op), dst, lower_src(cs.a));
      break;
    case TacStmt::Kind::kBinary:
      kernel.add_alu(lower_binop(cs.op), dst, lower_src(cs.a),
                     lower_src(cs.b));
      break;
    case TacStmt::Kind::kTernary:
      kernel.add_alu(banzai::KOp::kSelect, dst, lower_src(cs.a),
                     lower_src(cs.b), lower_src(cs.c));
      break;
    case TacStmt::Kind::kIntrinsic: {
      banzai::IntrinsicOp io;
      io.fn = intrinsic_raw_fn(cs.intrinsic);
      if (io.fn == nullptr ||
          cs.args.size() > banzai::IntrinsicOp::kMaxArgs)
        throw CompileError(
            CompilePhase::kMapping,
            "cannot lower intrinsic '" + cs.intrinsic + "' to a micro-op");
      // Tag the hash family so the native emitter can inline (and the
      // columnar body vectorize) the mixer instead of calling through the
      // ABI pointer table.
      if (cs.intrinsic == "hash2")
        io.kind = banzai::IntrinsicKind::kHash2;
      else if (cs.intrinsic == "hash3")
        io.kind = banzai::IntrinsicKind::kHash3;
      else if (cs.intrinsic == "hash4")
        io.kind = banzai::IntrinsicKind::kHash4;
      io.num_args = static_cast<std::uint8_t>(cs.args.size());
      for (std::size_t i = 0; i < cs.args.size(); ++i)
        io.args[i] = lower_src(cs.args[i]);
      io.mod = cs.mod;
      kernel.add_intrinsic(dst, io);
      break;
    }
    default:
      throw CompileError(CompilePhase::kMapping,
                         "state statement reached stateless lowering");
  }
}

void lower_stateful(const StatefulBody& body,
                    banzai::CompiledPipeline& kernel) {
  const auto& t = atoms::template_info(body.config.kind);
  // StatefulOp carries fixed-size pools sized for the paper's templates; a
  // future template outgrowing them must fail loudly, like intrinsic arity.
  bool oversized = body.slots.size() > 2 || body.config.preds.size() > 3 ||
                   body.config.leaves.size() > 4;
  for (const auto& leaf : body.config.leaves)
    oversized = oversized || leaf.size() > 2;
  if (oversized)
    throw CompileError(CompilePhase::kMapping,
                       "stateful template '" + t.name +
                           "' exceeds the micro-op pools (2 states, 3 "
                           "predicates, 4 leaves, 2 arms per leaf)");
  banzai::StatefulOp so;
  so.num_states = static_cast<std::uint8_t>(body.slots.size());
  so.pred_levels = static_cast<std::uint8_t>(t.pred_levels);
  for (std::size_t k = 0; k < body.slots.size(); ++k) {
    so.slots[k].var = kernel.intern_state(body.slots[k].var);
    so.slots[k].is_array = body.slots[k].is_array;
    so.slots[k].index_field = body.slots[k].index
                                  ? static_cast<std::uint32_t>(
                                        *body.slots[k].index)
                                  : 0;
  }
  for (std::size_t i = 0; i < body.config.preds.size(); ++i) {
    so.preds[i].rel = lower_rel(body.config.preds[i].rel);
    so.preds[i].a = lower_ref(body.config.preds[i].a, body.input_ids);
    so.preds[i].b = lower_ref(body.config.preds[i].b, body.input_ids);
  }
  for (std::size_t leaf = 0; leaf < body.config.leaves.size(); ++leaf)
    for (std::size_t k = 0; k < body.config.leaves[leaf].size(); ++k) {
      const atoms::ArmConfig& arm = body.config.leaves[leaf][k];
      so.arms[leaf][k].mode = lower_arm_mode(arm.mode);
      so.arms[leaf][k].src1 = lower_ref(arm.src1, body.input_ids);
      so.arms[leaf][k].src2 = lower_ref(arm.src2, body.input_ids);
    }
  so.lut = &atoms::lut_eval;
  std::vector<banzai::KLiveOut> los;
  los.reserve(body.liveouts.size());
  for (const LiveOutRt& l : body.liveouts)
    los.push_back({static_cast<std::uint32_t>(l.id),
                   static_cast<std::uint8_t>(l.state_idx), l.use_new});
  kernel.add_stateful(so, los);
}

class CodeGenerator {
 public:
  CodeGenerator(const CodeletPipeline& pvsm, const Program& prog,
                const atoms::BanzaiTarget& target,
                const std::map<std::string, std::string>& final_names,
                const synthesis::SynthOptions& synth_opts)
      : pvsm_(pvsm),
        prog_(prog),
        target_(target),
        final_names_(final_names),
        synth_opts_(synth_opts) {}

  CodegenResult run() {
    CodegenResult result;
    result.fitted = fit_resources();

    FieldTable fields;
    pre_intern_fields(fields);
    compute_liveouts();

    banzai::Machine machine(target_.machine_spec(), FieldTable{});
    std::vector<banzai::Stage> stages;
    kernel_ = std::make_shared<banzai::CompiledPipeline>();

    for (std::size_t si = 0; si < result.fitted.stages.size(); ++si) {
      banzai::Stage stage;
      if (kernel_) kernel_->begin_stage();
      for (const auto& codelet : result.fitted.stages[si]) {
        CodeletReport report;
        report.stage = static_cast<int>(si) + 1;
        report.description = codelet.str();
        stage.atoms.push_back(
            build_atom(codelet, fields, report, result.synth_seconds));
        result.reports.push_back(std::move(report));
      }
      stages.push_back(std::move(stage));
    }

    machine.fields() = std::move(fields);
    machine.stages() = std::move(stages);
    // Seal verifies the in-place preconditions (disjoint writes, no
    // intra-stage RAW, exclusive state ownership).  Today's pipeliner always
    // satisfies them; should a future pass break one — or should any atom
    // above have failed to lower — the machine simply ships without a kernel
    // and runs on closures (the documented fallback) rather than failing the
    // whole compile for the reference path too.
    if (kernel_) {
      try {
        kernel_->seal(machine.fields().size());
        machine.set_kernel(std::move(kernel_));
      } catch (const std::logic_error&) {
        kernel_.reset();
      }
    }
    for (const auto& d : prog_.state_vars)
      machine.state().declare(d.name, static_cast<std::size_t>(d.size),
                              !d.is_array, d.init);
    result.machine = std::move(machine);
    return result;
  }

 private:
  // Width fitting (§4.3 "Resource limits"): if a stage exceeds the pipeline
  // width, spread its codelets over as many new stages as required.  Codelets
  // within one PVSM stage are mutually independent, so any split preserves
  // dependencies.  Rejects the program if the pipeline depth is exceeded.
  CodeletPipeline fit_resources() {
    CodeletPipeline fitted;
    for (const auto& stage : pvsm_.stages) {
      std::size_t stateless = 0, stateful = 0;
      PvsmStage current;
      auto flush = [&]() {
        if (!current.empty()) {
          fitted.stages.push_back(std::move(current));
          current.clear();
          stateless = stateful = 0;
        }
      };
      for (const auto& c : stage) {
        const bool is_stateful = c.is_stateful();
        if ((is_stateful && stateful + 1 > target_.stateful_per_stage) ||
            (!is_stateful && stateless + 1 > target_.stateless_per_stage))
          flush();
        (is_stateful ? stateful : stateless) += 1;
        current.push_back(c);
      }
      flush();
    }
    if (fitted.stages.size() > target_.pipeline_depth)
      throw CompileError(
          CompilePhase::kResource,
          "program needs " + std::to_string(fitted.stages.size()) +
              " pipeline stages but target '" + target_.name +
              "' provides only " + std::to_string(target_.pipeline_depth));
    return fitted;
  }

  void pre_intern_fields(FieldTable& fields) {
    // User-declared fields first so examples can address them by name.
    for (const auto& f : prog_.packet_fields) fields.intern(f.name);
  }

  void compute_liveouts() {
    // Fields read by each codelet, and the set of observable outputs.
    std::set<std::string> outputs;
    for (const auto& [user, ssa] : final_names_) outputs.insert(ssa);

    std::vector<const Codelet*> all;
    for (const auto& st : pvsm_.stages)
      for (const auto& c : st) all.push_back(&c);

    for (std::size_t i = 0; i < all.size(); ++i) {
      std::set<std::string> read_elsewhere;
      for (std::size_t j = 0; j < all.size(); ++j) {
        if (i == j) continue;
        for (const auto& s : all[j]->stmts)
          for (const auto& f : s.fields_read()) read_elsewhere.insert(f);
      }
      std::vector<std::string> lo;
      for (const auto& w : all[i]->fields_written())
        if (read_elsewhere.count(w) || outputs.count(w)) lo.push_back(w);
      liveouts_[all[i]->str()] = std::move(lo);
    }
  }

  // Runs one atom's kernel lowering; any failure (unlowerable construct,
  // pool overflow, builder misuse) drops the kernel and lets the machine
  // ship closure-only — the documented fallback — instead of failing the
  // compile for the reference path too.
  template <typename Fn>
  void lower_atom(Fn&& lower) {
    if (!kernel_) return;
    try {
      lower();
    } catch (const std::exception&) {
      kernel_.reset();
    }
  }

  ConfiguredAtom build_atom(const Codelet& codelet, FieldTable& fields,
                            CodeletReport& report, double& synth_seconds) {
    if (!codelet.is_stateful()) {
      if (codelet.stmts.size() != 1)
        throw CompileError(CompilePhase::kMapping,
                           "stateless codelet with multiple statements: " +
                               codelet.str());
      return build_stateless_atom(codelet.stmts[0], fields, report);
    }
    return build_stateful_atom(codelet, fields, report, synth_seconds);
  }

  ConfiguredAtom build_stateless_atom(const TacStmt& stmt, FieldTable& fields,
                                      CodeletReport& report) {
    ConfiguredAtom atom;
    atom.label = stmt.str();
    if (stmt.kind == TacStmt::Kind::kIntrinsic) {
      const auto info = intrinsic_info(stmt.intrinsic);
      if (!info.has_value())
        throw CompileError(CompilePhase::kMapping,
                           "unknown intrinsic '" + stmt.intrinsic + "'");
      if (!target_.provides_unit(info->unit))
        throw CompileError(
            CompilePhase::kMapping,
            "intrinsic '" + stmt.intrinsic + "' needs a unit that target '" +
                target_.name + "' does not provide");
      atom.kind = AtomKind::kIntrinsic;
      report.intrinsic = true;
      report.atom = info->unit == IntrinsicUnit::kHash ? "hash-unit"
                                                       : "math-unit";
    } else {
      if (auto why = atoms::stateless_alu_reject_reason(stmt))
        throw CompileError(CompilePhase::kMapping,
                           *why + " (in: " + stmt.str() + ")");
      atom.kind = AtomKind::kStateless;
      report.atom = "Stateless";
    }
    CompiledStmt cs = CompiledStmt::compile(stmt, fields);
    lower_atom([&] { lower_stateless(cs, *kernel_); });
    atom.output_fields = {cs.dst};
    atom.exec = [cs](const Packet& in, Packet& out, StateStore&) {
      cs.exec(in, out);
    };
    // Batched fast path: one closure dispatch per batch instead of per packet.
    atom.exec_batch = [cs](const Packet* in, Packet* out, std::size_t n,
                           StateStore&) {
      for (std::size_t i = 0; i < n; ++i) cs.exec(in[i], out[i]);
    };
    return atom;
  }

  ConfiguredAtom build_stateful_atom(const Codelet& codelet,
                                     FieldTable& fields, CodeletReport& report,
                                     double& synth_seconds) {
    report.stateful = true;
    const auto& lo = liveouts_.at(codelet.str());
    synthesis::CodeletSpec spec(codelet, lo);
    synthesis::SynthResult synth =
        synthesis::synthesize(spec, target_.stateful_atom, synth_opts_);
    synth_seconds += synth.stats.seconds;
    report.synth_stats = synth.stats;
    if (!synth.success)
      throw CompileError(
          CompilePhase::kMapping,
          "codelet { " + codelet.str() + " } cannot be mapped to the " +
              std::string(atoms::stateful_kind_name(target_.stateful_atom)) +
              " atom: " + synth.failure_reason);
    report.atom = atoms::stateful_kind_name(target_.stateful_atom);
    report.config = synth.config.str(synth.input_fields);

    // Resolve run-time bindings.
    std::vector<StateSlot> slots;
    for (const auto& var : spec.state_vars()) {
      StateSlot slot;
      slot.var = var;
      for (const auto& s : codelet.stmts) {
        if (s.touches_state() && s.state_var == var) {
          slot.is_array = s.state_is_array;
          if (s.state_is_array) slot.index = fields.intern(s.index.field);
          break;
        }
      }
      slots.push_back(std::move(slot));
    }
    StatefulBody body;
    body.slots = std::move(slots);
    for (const auto& f : synth.input_fields)
      body.input_ids.push_back(fields.intern(f));
    for (const auto& b : synth.liveouts)
      body.liveouts.push_back({fields.intern(b.field), b.state_idx, b.use_new});
    body.config = synth.config;

    lower_atom([&] { lower_stateful(body, *kernel_); });

    ConfiguredAtom atom;
    atom.kind = AtomKind::kStateful;
    atom.label = report.atom + " atom: " + codelet.str();
    for (const auto& s : body.slots) atom.state_vars.push_back(s.var);
    for (const auto& l : body.liveouts) atom.output_fields.push_back(l.id);

    atom.exec = [body](const Packet& in, Packet& out, StateStore& store) {
      std::array<banzai::StateVar*, 2> vars{nullptr, nullptr};
      body.resolve(store, vars);
      std::vector<Value> field_vals(body.input_ids.size());
      body.exec_one(in, out, vars, field_vals);
    };
    // Batched fast path: same body, but the by-name StateVar lookups and the
    // scratch allocation are paid once per batch instead of once per packet.
    atom.exec_batch = [body](const Packet* in, Packet* out, std::size_t n,
                             StateStore& store) {
      std::array<banzai::StateVar*, 2> vars{nullptr, nullptr};
      body.resolve(store, vars);
      std::vector<Value> field_vals(body.input_ids.size());
      for (std::size_t i = 0; i < n; ++i)
        body.exec_one(in[i], out[i], vars, field_vals);
    };
    return atom;
  }

  const CodeletPipeline& pvsm_;
  const Program& prog_;
  const atoms::BanzaiTarget& target_;
  const std::map<std::string, std::string>& final_names_;
  synthesis::SynthOptions synth_opts_;
  std::map<std::string, std::vector<std::string>> liveouts_;
  std::shared_ptr<banzai::CompiledPipeline> kernel_;  // built alongside stages
};

}  // namespace

CodegenResult generate_code(const CodeletPipeline& pvsm, const Program& prog,
                            const atoms::BanzaiTarget& target,
                            const std::map<std::string, std::string>& final_names,
                            const synthesis::SynthOptions& synth_opts) {
  return CodeGenerator(pvsm, prog, target, final_names, synth_opts).run();
}

}  // namespace domino
