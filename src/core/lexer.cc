#include "core/lexer.h"

#include <cctype>
#include <unordered_map>

namespace domino {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kEnd: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kNumber: return "number";
    case Tok::kStruct: return "'struct'";
    case Tok::kInt: return "'int'";
    case Tok::kVoid: return "'void'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kDefine: return "'#define'";
    case Tok::kWhile: return "'while'";
    case Tok::kFor: return "'for'";
    case Tok::kDo: return "'do'";
    case Tok::kGoto: return "'goto'";
    case Tok::kBreak: return "'break'";
    case Tok::kContinue: return "'continue'";
    case Tok::kReturn: return "'return'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kSemi: return "';'";
    case Tok::kComma: return "','";
    case Tok::kDot: return "'.'";
    case Tok::kQuestion: return "'?'";
    case Tok::kColon: return "':'";
    case Tok::kAssign: return "'='";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
    case Tok::kIncrement: return "'++'";
    case Tok::kDecrement: return "'--'";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
    case Tok::kLt: return "'<'";
    case Tok::kGt: return "'>'";
    case Tok::kLe: return "'<='";
    case Tok::kGe: return "'>='";
    case Tok::kEqEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kAmpAmp: return "'&&'";
    case Tok::kPipePipe: return "'||'";
    case Tok::kBang: return "'!'";
    case Tok::kTilde: return "'~'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kw = {
      {"struct", Tok::kStruct},   {"int", Tok::kInt},
      {"void", Tok::kVoid},       {"if", Tok::kIf},
      {"else", Tok::kElse},       {"while", Tok::kWhile},
      {"for", Tok::kFor},         {"do", Tok::kDo},
      {"goto", Tok::kGoto},       {"break", Tok::kBreak},
      {"continue", Tok::kContinue}, {"return", Tok::kReturn},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_ws_and_comments();
      if (pos_ >= src_.size()) break;
      out.push_back(next_token());
    }
    Token end;
    end.kind = Tok::kEnd;
    end.loc = loc();
    out.push_back(end);
    return out;
  }

 private:
  SourceLoc loc() const { return {line_, col_}; }

  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws_and_comments() {
    for (;;) {
      while (pos_ < src_.size() && std::isspace(static_cast<unsigned char>(peek())))
        advance();
      if (peek() == '/' && peek(1) == '/') {
        while (pos_ < src_.size() && peek() != '\n') advance();
        continue;
      }
      if (peek() == '/' && peek(1) == '*') {
        SourceLoc start = loc();
        advance();
        advance();
        while (pos_ < src_.size() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (pos_ >= src_.size())
          throw CompileError(CompilePhase::kLex, start,
                             "unterminated block comment");
        advance();
        advance();
        continue;
      }
      break;
    }
  }

  Token next_token() {
    Token t;
    t.loc = loc();
    char c = peek();

    if (c == '#') {
      advance();
      skip_ws_and_comments();
      Token word = next_token();
      if (word.kind != Tok::kIdent || word.text != "define")
        throw CompileError(CompilePhase::kLex, t.loc,
                           "only #define is supported");
      t.kind = Tok::kDefine;
      return t;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        ident.push_back(advance());
      auto it = keywords().find(ident);
      t.kind = it != keywords().end() ? it->second : Tok::kIdent;
      t.text = std::move(ident);
      return t;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v = 0;
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        while (std::isxdigit(static_cast<unsigned char>(peek()))) {
          char d = advance();
          v = v * 16 + (std::isdigit(static_cast<unsigned char>(d))
                            ? d - '0'
                            : std::tolower(d) - 'a' + 10);
          v &= 0xffffffffll;
        }
      } else {
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          v = v * 10 + (advance() - '0');
          if (v > 0xffffffffll)
            throw CompileError(CompilePhase::kLex, t.loc,
                               "integer literal does not fit 32 bits");
        }
      }
      t.kind = Tok::kNumber;
      t.number = static_cast<banzai::Value>(static_cast<std::uint32_t>(v));
      return t;
    }

    advance();
    auto two = [this](char second, Tok yes, Tok no) {
      if (peek() == second) {
        advance();
        return yes;
      }
      return no;
    };
    switch (c) {
      case '{': t.kind = Tok::kLBrace; return t;
      case '}': t.kind = Tok::kRBrace; return t;
      case '(': t.kind = Tok::kLParen; return t;
      case ')': t.kind = Tok::kRParen; return t;
      case '[': t.kind = Tok::kLBracket; return t;
      case ']': t.kind = Tok::kRBracket; return t;
      case ';': t.kind = Tok::kSemi; return t;
      case ',': t.kind = Tok::kComma; return t;
      case '.': t.kind = Tok::kDot; return t;
      case '?': t.kind = Tok::kQuestion; return t;
      case ':': t.kind = Tok::kColon; return t;
      case '~': t.kind = Tok::kTilde; return t;
      case '^': t.kind = Tok::kCaret; return t;
      case '*': t.kind = Tok::kStar; return t;
      case '/': t.kind = Tok::kSlash; return t;
      case '%': t.kind = Tok::kPercent; return t;
      case '+':
        if (peek() == '+') { advance(); t.kind = Tok::kIncrement; return t; }
        t.kind = two('=', Tok::kPlusAssign, Tok::kPlus);
        return t;
      case '-':
        if (peek() == '-') { advance(); t.kind = Tok::kDecrement; return t; }
        t.kind = two('=', Tok::kMinusAssign, Tok::kMinus);
        return t;
      case '=': t.kind = two('=', Tok::kEqEq, Tok::kAssign); return t;
      case '!': t.kind = two('=', Tok::kNe, Tok::kBang); return t;
      case '<':
        if (peek() == '<') { advance(); t.kind = Tok::kShl; return t; }
        t.kind = two('=', Tok::kLe, Tok::kLt);
        return t;
      case '>':
        if (peek() == '>') { advance(); t.kind = Tok::kShr; return t; }
        t.kind = two('=', Tok::kGe, Tok::kGt);
        return t;
      case '&': t.kind = two('&', Tok::kAmpAmp, Tok::kAmp); return t;
      case '|': t.kind = two('|', Tok::kPipePipe, Tok::kPipe); return t;
      default:
        throw CompileError(CompilePhase::kLex, t.loc,
                           std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace domino
