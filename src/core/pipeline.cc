#include "core/pipeline.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "ir/diag.h"

namespace domino {

DepGraph build_dep_graph(const TacProgram& tac) {
  const auto n = static_cast<int>(tac.stmts.size());
  DepGraph g;
  g.edges.assign(static_cast<std::size_t>(n), {});

  // SSA: each field has exactly one defining statement.
  std::map<std::string, int> def_of;
  for (int i = 0; i < n; ++i) {
    if (auto w = tac.stmts[static_cast<std::size_t>(i)].field_written()) {
      if (def_of.count(*w))
        throw CompileError(CompilePhase::kPipeline,
                           "field '" + *w + "' defined twice; SSA violated");
      def_of[*w] = i;
    }
  }

  auto add_edge = [&g](int from, int to) {
    if (from == to) return;
    auto& v = g.edges[static_cast<std::size_t>(from)];
    if (std::find(v.begin(), v.end(), to) == v.end()) v.push_back(to);
  };

  // Read-after-write edges.
  for (int i = 0; i < n; ++i) {
    for (const auto& f : tac.stmts[static_cast<std::size_t>(i)].fields_read()) {
      auto it = def_of.find(f);
      if (it != def_of.end()) add_edge(it->second, i);
    }
  }

  // Pair edges between statements touching the same state variable: state is
  // internal to one atom, so its reads and writes must stay together.
  std::map<std::string, std::vector<int>> touchers;
  for (int i = 0; i < n; ++i) {
    const auto& s = tac.stmts[static_cast<std::size_t>(i)];
    if (s.touches_state()) touchers[s.state_var].push_back(i);
  }
  for (const auto& [var, idxs] : touchers) {
    for (int a : idxs)
      for (int b : idxs)
        if (a != b) add_edge(a, b);
  }
  return g;
}

std::vector<std::vector<int>> strongly_connected_components(
    const DepGraph& g) {
  const int n = static_cast<int>(g.num_nodes());
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int counter = 0;

  std::function<void(int)> strongconnect = [&](int v) {
    index[static_cast<std::size_t>(v)] = low[static_cast<std::size_t>(v)] =
        counter++;
    stack.push_back(v);
    on_stack[static_cast<std::size_t>(v)] = true;
    for (int w : g.edges[static_cast<std::size_t>(v)]) {
      if (index[static_cast<std::size_t>(w)] == -1) {
        strongconnect(w);
        low[static_cast<std::size_t>(v)] =
            std::min(low[static_cast<std::size_t>(v)],
                     low[static_cast<std::size_t>(w)]);
      } else if (on_stack[static_cast<std::size_t>(w)]) {
        low[static_cast<std::size_t>(v)] =
            std::min(low[static_cast<std::size_t>(v)],
                     index[static_cast<std::size_t>(w)]);
      }
    }
    if (low[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
      std::vector<int> comp;
      for (;;) {
        int w = stack.back();
        stack.pop_back();
        on_stack[static_cast<std::size_t>(w)] = false;
        comp.push_back(w);
        if (w == v) break;
      }
      std::sort(comp.begin(), comp.end());
      sccs.push_back(std::move(comp));
    }
  };

  for (int v = 0; v < n; ++v)
    if (index[static_cast<std::size_t>(v)] == -1) strongconnect(v);

  // Tarjan emits components in reverse topological order; flip them.
  std::reverse(sccs.begin(), sccs.end());
  return sccs;
}

namespace {

struct Condensed {
  std::vector<std::vector<int>> sccs;      // topological order
  std::vector<int> comp_of;                // node -> scc id
  std::vector<std::set<int>> dag_edges;    // scc -> successor sccs
};

Condensed condense(const TacProgram& tac, const DepGraph& g) {
  Condensed c;
  c.sccs = strongly_connected_components(g);
  c.comp_of.assign(g.num_nodes(), -1);
  for (std::size_t k = 0; k < c.sccs.size(); ++k)
    for (int v : c.sccs[k]) c.comp_of[static_cast<std::size_t>(v)] =
        static_cast<int>(k);
  c.dag_edges.assign(c.sccs.size(), {});
  for (std::size_t v = 0; v < g.num_nodes(); ++v)
    for (int w : g.edges[v]) {
      int a = c.comp_of[v], b = c.comp_of[static_cast<std::size_t>(w)];
      if (a != b) c.dag_edges[static_cast<std::size_t>(a)].insert(b);
    }
  (void)tac;
  return c;
}

}  // namespace

CodeletPipeline pipeline_schedule(const TacProgram& tac) {
  const DepGraph g = build_dep_graph(tac);
  const Condensed c = condense(tac, g);

  // ASAP levels over the condensed DAG (components are in topological order).
  std::vector<int> level(c.sccs.size(), 0);
  for (std::size_t k = 0; k < c.sccs.size(); ++k)
    for (int succ : c.dag_edges[k])
      level[static_cast<std::size_t>(succ)] =
          std::max(level[static_cast<std::size_t>(succ)],
                   level[k] + 1);

  int max_level = 0;
  for (int l : level) max_level = std::max(max_level, l);

  CodeletPipeline p;
  p.stages.assign(static_cast<std::size_t>(max_level) + 1, {});
  for (std::size_t k = 0; k < c.sccs.size(); ++k) {
    Codelet cl;
    for (int v : c.sccs[k])
      cl.stmts.push_back(tac.stmts[static_cast<std::size_t>(v)]);
    p.stages[static_cast<std::size_t>(level[k])].push_back(std::move(cl));
  }
  // Deterministic order within a stage: by first statement index, which the
  // construction above already guarantees (SCCs are emitted in topological
  // order and their statement lists are sorted).
  return p;
}

namespace {

std::string dot_escape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"') out += "\\\"";
    else out += ch;
  }
  return out;
}

}  // namespace

std::string dep_graph_dot(const TacProgram& tac) {
  const DepGraph g = build_dep_graph(tac);
  std::ostringstream os;
  os << "digraph dependencies {\n  node [shape=box];\n";
  for (std::size_t i = 0; i < tac.stmts.size(); ++i)
    os << "  n" << i << " [label=\"" << dot_escape(tac.stmts[i].str())
       << "\"];\n";
  for (std::size_t i = 0; i < g.num_nodes(); ++i)
    for (int j : g.edges[i]) os << "  n" << i << " -> n" << j << ";\n";
  os << "}\n";
  return os.str();
}

std::string condensed_dag_dot(const TacProgram& tac) {
  const DepGraph g = build_dep_graph(tac);
  const Condensed c = condense(tac, g);
  std::ostringstream os;
  os << "digraph condensed {\n  node [shape=box];\n";
  for (std::size_t k = 0; k < c.sccs.size(); ++k) {
    std::string label;
    for (int v : c.sccs[k]) {
      if (!label.empty()) label += "\\n";
      label += dot_escape(tac.stmts[static_cast<std::size_t>(v)].str());
    }
    os << "  c" << k << " [label=\"" << label << "\"];\n";
  }
  for (std::size_t k = 0; k < c.sccs.size(); ++k)
    for (int succ : c.dag_edges[k]) os << "  c" << k << " -> c" << succ
                                       << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace domino
