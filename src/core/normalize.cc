#include "core/normalize.h"

#include <functional>
#include <set>

#include "ir/diag.h"
#include "ir/intrinsics.h"

namespace domino {
namespace {

// Fresh packet-field names that cannot collide with user identifiers: user
// fields come from C-like identifiers, which never contain '.', and we strip
// the "pkt." prefix — so a leading underscore plus a reserved stem suffices
// as long as we check against the declared field list.
std::string fresh_name(Program& prog, const std::string& stem) {
  int n = 0;
  for (;;) {
    std::string candidate = stem + std::to_string(n);
    if (!prog.has_packet_field(candidate)) {
      prog.packet_fields.push_back({candidate, SourceLoc{}});
      return candidate;
    }
    ++n;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1: branch removal (Figure 5)
// ---------------------------------------------------------------------------

namespace {

void flatten_into(Program& prog, std::vector<StmtPtr>& out,
                  const std::vector<StmtPtr>& body,
                  std::set<std::string>& cond_fields) {
  for (const auto& s : body) {
    if (s->kind == Stmt::Kind::kAssign) {
      out.push_back(s->clone());
      continue;
    }
    // if-statement: hoist the condition into a fresh field, then guard every
    // assignment of both branches with the conditional operator.  Recursing
    // first flattens inner ifs ("starting from the innermost if and recursing
    // outwards").  Hoisted conditions themselves stay unguarded: evaluating a
    // condition is side-effect free, and guarding it would make the inner
    // condition field read its own uninitialized value on the untaken path.
    const std::string cond_field = fresh_name(prog, "_br");
    cond_fields.insert(cond_field);
    out.push_back(
        make_assign(make_field(cond_field, s->loc), s->cond->clone(), s->loc));

    std::vector<StmtPtr> then_flat, else_flat;
    flatten_into(prog, then_flat, s->then_body, cond_fields);
    flatten_into(prog, else_flat, s->else_body, cond_fields);

    for (auto& t : then_flat) {
      if (cond_fields.count(t->target->name)) {
        out.push_back(std::move(t));
        continue;
      }
      ExprPtr guarded =
          make_ternary(make_field(cond_field, t->loc), std::move(t->value),
                       t->target->clone(), t->loc);
      out.push_back(
          make_assign(std::move(t->target), std::move(guarded), t->loc));
    }
    for (auto& t : else_flat) {
      if (cond_fields.count(t->target->name)) {
        out.push_back(std::move(t));
        continue;
      }
      ExprPtr guarded =
          make_ternary(make_field(cond_field, t->loc), t->target->clone(),
                       std::move(t->value), t->loc);
      out.push_back(
          make_assign(std::move(t->target), std::move(guarded), t->loc));
    }
  }
}

}  // namespace

Program remove_branches(const Program& prog) {
  Program out = prog.clone();
  std::vector<StmtPtr> flat;
  std::set<std::string> cond_fields;
  flatten_into(out, flat, prog.transaction.body, cond_fields);
  out.transaction.body = std::move(flat);
  return out;
}

// ---------------------------------------------------------------------------
// Pass 2: read/write flanks (Figure 6)
// ---------------------------------------------------------------------------

namespace {

void walk_exprs(const ExprPtr& e, const std::function<void(const Expr&)>& fn) {
  if (!e) return;
  fn(*e);
  walk_exprs(e->a, fn);
  walk_exprs(e->b, fn);
  walk_exprs(e->cond, fn);
  walk_exprs(e->index, fn);
  for (const auto& a : e->args) walk_exprs(a, fn);
}

void rewrite_state_reads(ExprPtr& e, const std::string& var,
                         const std::string& field) {
  if (!e) return;
  if (e->kind == Expr::Kind::kState && e->name == var) {
    e = make_field(field, e->loc);
    return;
  }
  rewrite_state_reads(e->a, var, field);
  rewrite_state_reads(e->b, var, field);
  rewrite_state_reads(e->cond, var, field);
  rewrite_state_reads(e->index, var, field);
  for (auto& a : e->args) rewrite_state_reads(a, var, field);
}

struct VarUse {
  int first_stmt = -1;
  bool written = false;
  ExprPtr index;  // for arrays: the (unique, sema-checked) index expression
};

}  // namespace

Program rewrite_state_vars(const Program& prog) {
  Program out = prog.clone();
  auto& body = out.transaction.body;

  // Collect first use, writes and index expression per state variable.
  std::vector<std::string> order;  // first-use order, for deterministic output
  std::map<std::string, VarUse> uses;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const Stmt& s = *body[i];
    if (s.kind != Stmt::Kind::kAssign)
      throw CompileError(CompilePhase::kNormalize, s.loc,
                         "rewrite_state_vars requires straight-line code");
    auto touch = [&](const Expr& e, bool write) {
      if (e.kind != Expr::Kind::kState) return;
      auto [it, inserted] = uses.try_emplace(e.name);
      if (inserted) {
        order.push_back(e.name);
        it->second.first_stmt = static_cast<int>(i);
        if (e.index) it->second.index = e.index->clone();
      }
      it->second.written |= write;
    };
    touch(*s.target, /*write=*/true);
    walk_exprs(s.value, [&](const Expr& e) { touch(e, false); });
    // State reads inside the target's index expression.
    if (s.target->index)
      walk_exprs(s.target->index, [&](const Expr& e) { touch(e, false); });
  }

  // For each variable: a read flank before its first use, substitution of a
  // packet temporary everywhere, and a write flank at the end.
  std::map<std::string, std::string> temp_of, idx_field_of;
  std::map<int, std::vector<StmtPtr>> flank_before;  // stmt index -> flanks
  std::vector<StmtPtr> write_flanks;

  for (const auto& name : order) {
    VarUse& u = uses[name];
    const StateDecl* decl = out.find_state(name);
    const std::string temp = fresh_name(out, "_" + name + "_");
    temp_of[name] = temp;

    std::vector<StmtPtr>& pre = flank_before[u.first_stmt];
    ExprPtr idx_expr;
    if (decl && decl->is_array) {
      // Move the index expression into the read flank: give it its own field
      // unless it is already a bare field.
      if (u.index && u.index->kind == Expr::Kind::kField) {
        idx_field_of[name] = u.index->name;
      } else {
        const std::string idx_field = fresh_name(out, "_idx_" + name + "_");
        pre.push_back(make_assign(make_field(idx_field), u.index->clone()));
        idx_field_of[name] = idx_field;
      }
      idx_expr = make_field(idx_field_of[name]);
    }
    pre.push_back(make_assign(
        make_field(temp),
        make_state(name, idx_expr ? idx_expr->clone() : nullptr)));

    if (u.written) {
      write_flanks.push_back(make_assign(
          make_state(name, idx_expr ? idx_expr->clone() : nullptr),
          make_field(temp)));
    }
  }

  // Rebuild the body with flanks inserted and state references rewritten.
  std::vector<StmtPtr> rebuilt;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (auto it = flank_before.find(static_cast<int>(i));
        it != flank_before.end())
      for (auto& f : it->second) rebuilt.push_back(std::move(f));

    StmtPtr s = std::move(body[i]);
    for (const auto& [var, temp] : temp_of) {
      rewrite_state_reads(s->value, var, temp);
      if (s->target->kind == Expr::Kind::kState && s->target->name == var)
        s->target = make_field(temp, s->target->loc);
      else if (s->target->index)
        rewrite_state_reads(s->target->index, var, temp);
    }
    rebuilt.push_back(std::move(s));
  }
  for (auto& f : write_flanks) rebuilt.push_back(std::move(f));
  out.transaction.body = std::move(rebuilt);
  return out;
}

// ---------------------------------------------------------------------------
// Pass 3: SSA (Figure 7)
// ---------------------------------------------------------------------------

namespace {

void rename_reads(ExprPtr& e,
                  const std::map<std::string, std::string>& current) {
  if (!e) return;
  if (e->kind == Expr::Kind::kField) {
    if (auto it = current.find(e->name); it != current.end())
      e->name = it->second;
    return;
  }
  rename_reads(e->a, current);
  rename_reads(e->b, current);
  rename_reads(e->cond, current);
  rename_reads(e->index, current);
  for (auto& a : e->args) rename_reads(a, current);
}

}  // namespace

Program to_ssa(const Program& prog,
               std::map<std::string, std::string>* final_names) {
  Program out = prog.clone();
  std::map<std::string, std::string> current;  // user name -> live SSA name

  for (auto& s : out.transaction.body) {
    if (s->kind != Stmt::Kind::kAssign)
      throw CompileError(CompilePhase::kNormalize, s->loc,
                         "to_ssa requires straight-line code");
    rename_reads(s->value, current);
    if (s->target->kind == Expr::Kind::kField) {
      const std::string base = s->target->name;
      const std::string ssa_name = fresh_name(out, base + "_v");
      current[base] = ssa_name;
      s->target->name = ssa_name;
    } else if (s->target->index) {
      rename_reads(s->target->index, current);
    }
  }

  if (final_names != nullptr) {
    final_names->clear();
    for (const auto& f : prog.packet_fields) {
      auto it = current.find(f.name);
      (*final_names)[f.name] = it != current.end() ? it->second : f.name;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pass 4: three-address code (Figure 8)
// ---------------------------------------------------------------------------

namespace {

class TacBuilder {
 public:
  explicit TacBuilder(const Program& prog) : prog_(prog.clone()) {}

  TacProgram run() {
    for (const auto& s : prog_.transaction.body) {
      if (s->kind != Stmt::Kind::kAssign)
        throw CompileError(CompilePhase::kNormalize, s->loc,
                           "to_tac requires straight-line code");
      lower_assign(*s);
    }
    return std::move(tac_);
  }

 private:
  std::string fresh_temp() {
    return fresh_name(prog_, "_t");
  }

  // Lowers `e` to an operand, emitting statements for compound expressions.
  Operand lower(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        return Operand::make_const(e.int_value);
      case Expr::Kind::kField:
        return Operand::make_field(e.name);
      case Expr::Kind::kState:
        throw CompileError(CompilePhase::kNormalize, e.loc,
                           "state reference survived flank rewriting: " +
                               e.str());
      case Expr::Kind::kUnary: {
        Operand a = lower(*e.a);
        if (a.is_const())
          return Operand::make_const(eval_unop(e.un_op, a.cst));
        TacStmt s;
        s.kind = TacStmt::Kind::kUnary;
        s.loc = e.loc;
        s.dst = fresh_temp();
        s.un_op = e.un_op;
        s.a = a;
        tac_.stmts.push_back(s);
        return Operand::make_field(s.dst);
      }
      case Expr::Kind::kBinary:
      case Expr::Kind::kTernary:
      case Expr::Kind::kCall: {
        TacStmt s = lower_compound_to(fresh_temp(), e);
        tac_.stmts.push_back(s);
        return Operand::make_field(s.dst);
      }
    }
    throw CompileError(CompilePhase::kNormalize, e.loc, "unreachable");
  }

  // Builds (without emitting) the statement computing `e` into field `dst`.
  TacStmt lower_compound_to(const std::string& dst, const Expr& e) {
    TacStmt s;
    s.loc = e.loc;
    s.dst = dst;
    if (e.kind == Expr::Kind::kBinary) {
      // hashK(...) % CONST folds into the hash unit (it produces an index
      // into a memory of that size).
      const bool mod_of_call = e.bin_op == BinOp::kMod &&
                               e.a->kind == Expr::Kind::kCall &&
                               e.b->kind == Expr::Kind::kIntLit &&
                               e.b->int_value > 0;
      if (mod_of_call) {
        s = lower_call(dst, *e.a);
        s.intrinsic_mod = e.b->int_value;
        return s;
      }
      Operand a = lower(*e.a);
      Operand b = lower(*e.b);
      if (a.is_const() && b.is_const()) {
        s.kind = TacStmt::Kind::kCopy;
        s.a = Operand::make_const(eval_binop(e.bin_op, a.cst, b.cst));
        return s;
      }
      s.kind = TacStmt::Kind::kBinary;
      s.op = e.bin_op;
      s.a = a;
      s.b = b;
      return s;
    }
    if (e.kind == Expr::Kind::kTernary) {
      s.kind = TacStmt::Kind::kTernary;
      s.a = lower(*e.cond);
      s.b = lower(*e.a);
      s.c = lower(*e.b);
      return s;
    }
    if (e.kind == Expr::Kind::kCall) return lower_call(dst, e);
    throw CompileError(CompilePhase::kNormalize, e.loc,
                       "not a compound expression");
  }

  TacStmt lower_call(const std::string& dst, const Expr& call) {
    TacStmt s;
    s.loc = call.loc;
    s.dst = dst;
    s.kind = TacStmt::Kind::kIntrinsic;
    s.intrinsic = call.name;
    for (const auto& a : call.args) s.args.push_back(lower(*a));
    return s;
  }

  void lower_assign(const Stmt& st) {
    const Expr& target = *st.target;
    const Expr& value = *st.value;

    if (target.kind == Expr::Kind::kState) {
      TacStmt s;
      s.kind = TacStmt::Kind::kWriteState;
      s.loc = st.loc;
      s.state_var = target.name;
      if (target.index) {
        s.state_is_array = true;
        if (target.index->kind != Expr::Kind::kField)
          throw CompileError(CompilePhase::kNormalize, st.loc,
                             "array index must be a packet field after "
                             "flank rewriting");
        s.index = Operand::make_field(target.index->name);
      }
      s.a = lower(value);
      tac_.stmts.push_back(s);
      return;
    }

    // target is a packet field
    if (value.kind == Expr::Kind::kState) {
      TacStmt s;
      s.kind = TacStmt::Kind::kReadState;
      s.loc = st.loc;
      s.dst = target.name;
      s.state_var = value.name;
      if (value.index) {
        s.state_is_array = true;
        if (value.index->kind != Expr::Kind::kField)
          throw CompileError(CompilePhase::kNormalize, st.loc,
                             "array index must be a packet field after "
                             "flank rewriting");
        s.index = Operand::make_field(value.index->name);
      }
      tac_.stmts.push_back(s);
      return;
    }

    switch (value.kind) {
      case Expr::Kind::kIntLit:
      case Expr::Kind::kField: {
        TacStmt s;
        s.kind = TacStmt::Kind::kCopy;
        s.loc = st.loc;
        s.dst = target.name;
        s.a = lower(value);
        tac_.stmts.push_back(s);
        return;
      }
      case Expr::Kind::kUnary: {
        Operand a = lower(*value.a);
        TacStmt s;
        s.loc = st.loc;
        s.dst = target.name;
        if (a.is_const()) {
          s.kind = TacStmt::Kind::kCopy;
          s.a = Operand::make_const(eval_unop(value.un_op, a.cst));
        } else {
          s.kind = TacStmt::Kind::kUnary;
          s.un_op = value.un_op;
          s.a = a;
        }
        tac_.stmts.push_back(s);
        return;
      }
      default:
        tac_.stmts.push_back(lower_compound_to(target.name, value));
        return;
    }
  }

  Program prog_;
  TacProgram tac_;
};

}  // namespace

TacProgram to_tac(const Program& prog) { return TacBuilder(prog).run(); }

TacProgram optimize_tac(const TacProgram& tac,
                        const std::set<std::string>& outputs) {
  // Copy propagation: under SSA, a read of the destination of `dst = src`
  // can always be replaced by `src` (resolved transitively).
  std::map<std::string, Operand> copy_of;
  auto resolve = [&copy_of](Operand o) {
    while (o.is_field()) {
      auto it = copy_of.find(o.field);
      if (it == copy_of.end()) break;
      o = it->second;
    }
    return o;
  };

  TacProgram propagated;
  for (TacStmt s : tac.stmts) {
    s.a = resolve(s.a);
    s.b = resolve(s.b);
    s.c = resolve(s.c);
    s.index = resolve(s.index);
    for (auto& arg : s.args) arg = resolve(arg);
    if (s.kind == TacStmt::Kind::kCopy) copy_of[s.dst] = s.a;
    propagated.stmts.push_back(std::move(s));
  }

  // Dead-code elimination, backwards: keep state writes, observable outputs
  // and everything they transitively read.
  std::set<std::string> needed(outputs.begin(), outputs.end());
  std::vector<bool> keep(propagated.stmts.size(), false);
  for (std::size_t i = propagated.stmts.size(); i-- > 0;) {
    const TacStmt& s = propagated.stmts[i];
    bool live = s.writes_state();
    if (auto w = s.field_written(); w && needed.count(*w)) live = true;
    if (!live) continue;
    keep[i] = true;
    for (const auto& f : s.fields_read()) needed.insert(f);
  }

  TacProgram out;
  for (std::size_t i = 0; i < propagated.stmts.size(); ++i)
    if (keep[i]) out.stmts.push_back(propagated.stmts[i]);

  // Copy coalescing: a surviving copy `output = f` where f is a compiler
  // temporary defined exactly once can be eliminated by renaming f's defining
  // statement to write the output directly (rewriting all readers of f).
  // This gives TAC the shape of Figure 8, where e.g. pkt.next_hop is the
  // direct target of the conditional operator rather than a copy of it.
  for (std::size_t i = 0; i < out.stmts.size();) {
    TacStmt& s = out.stmts[i];
    if (s.kind != TacStmt::Kind::kCopy || !s.a.is_field() ||
        !outputs.count(s.dst) || outputs.count(s.a.field)) {
      ++i;
      continue;
    }
    const std::string from = s.a.field, to = s.dst;
    int defs = 0;
    bool state_adjacent = false;
    for (const auto& t : out.stmts) {
      if (t.field_written() == std::optional<std::string>(from)) {
        ++defs;
        if (t.touches_state()) state_adjacent = true;
      }
      if (t.touches_state())
        for (const auto& f : t.fields_read())
          if (f == from) state_adjacent = true;
    }
    // Renaming into or out of a stateful strongly-connected component would
    // change which codelet produces the output (and hence the Figure 3b
    // pipeline shape); only coalesce pure stateless chains.
    if (defs != 1 || state_adjacent) {
      ++i;
      continue;
    }
    auto rename = [&](Operand& o) {
      if (o.is_field() && o.field == from) o.field = to;
    };
    for (auto& t : out.stmts) {
      if (t.field_written() == std::optional<std::string>(from)) t.dst = to;
      rename(t.a);
      rename(t.b);
      rename(t.c);
      rename(t.index);
      for (auto& arg : t.args) rename(arg);
    }
    out.stmts.erase(out.stmts.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return out;
}

Normalized normalize(const Program& prog) {
  Normalized n;
  n.branch_removed = remove_branches(prog);
  n.flanked = rewrite_state_vars(n.branch_removed);
  n.ssa = to_ssa(n.flanked, &n.final_names);
  // Only user-declared fields are observable outputs; compiler temporaries
  // (_br conditions, flank temporaries) must not be forced to survive, or
  // code generation would demand atoms output them.
  std::map<std::string, std::string> user_finals;
  for (const auto& f : prog.packet_fields) {
    auto it = n.final_names.find(f.name);
    user_finals[f.name] =
        it != n.final_names.end() ? it->second : f.name;
  }
  n.final_names = std::move(user_finals);
  n.tac_raw = to_tac(n.ssa);
  std::set<std::string> outputs;
  for (const auto& [user, ssa] : n.final_names) outputs.insert(ssa);
  n.tac = optimize_tac(n.tac_raw, outputs);
  return n;
}

}  // namespace domino
