// Code generation (§4.3): maps the PVSM codelet pipeline onto a concrete
// Banzai target, enforcing its resource limits (pipeline width and depth) and
// computational limits (the atom templates), and emitting a runnable
// banzai::Machine.  All-or-nothing: any codelet that cannot be mapped, or any
// resource overflow, raises CompileError — there is no degraded mode.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "atoms/targets.h"
#include "banzai/machine.h"
#include "ir/ast.h"
#include "ir/pvsm.h"
#include "synthesis/synthesizer.h"

namespace domino {

struct CodeletReport {
  int stage = 0;               // physical stage after resource fitting
  std::string description;     // codelet text
  bool stateful = false;
  bool intrinsic = false;
  std::string atom;            // atom/unit that implements the codelet
  std::string config;          // synthesized configuration (stateful only)
  synthesis::SynthStats synth_stats;
};

struct CodegenResult {
  banzai::Machine machine;
  CodeletPipeline fitted;  // pipeline after width fitting
  std::vector<CodeletReport> reports;
  double synth_seconds = 0.0;

  std::size_t stages_used() const { return fitted.num_stages(); }
};

// `final_names` maps each user packet field to the SSA field carrying its
// final value (the machine's observable outputs).
CodegenResult generate_code(const CodeletPipeline& pvsm, const Program& prog,
                            const atoms::BanzaiTarget& target,
                            const std::map<std::string, std::string>& final_names,
                            const synthesis::SynthOptions& synth_opts = {});

}  // namespace domino
