// Normalization (§4.1): the four passes that turn a packet transaction into
// straight-line three-address code while preserving its sequential semantics.
//
//   1. remove_branches    — if-conversion to conditional assignments,
//                           innermost-out (Figure 5)
//   2. rewrite_state_vars — read/write flanks; afterwards the only operations
//                           on state are reads and writes (Figure 6)
//   3. to_ssa             — static single assignment on straight-line code;
//                           only read-after-write dependencies remain
//                           (Figure 7)
//   4. to_tac             — flatten expressions into three-address code
//                           (Figure 8)
//
// Each pass returns a new program so that tests can check them individually;
// every pass preserves the transaction's observable behaviour (verified by
// the pass-preservation differential tests).
#pragma once

#include <map>
#include <set>
#include <string>

#include "ir/ast.h"
#include "ir/tac.h"

namespace domino {

// Pass 1: eliminate if-statements.  The resulting body is straight-line
// assignments; each hoisted branch condition lands in a fresh packet field.
Program remove_branches(const Program& prog);

// Pass 2: insert read/write flanks around state variables; all arithmetic
// afterwards happens on packet temporaries.  Requires straight-line code.
Program rewrite_state_vars(const Program& prog);

// Pass 3: static single assignment.  Every packet field is assigned at most
// once; `final_names` (if non-null) receives, for every field, the SSA name
// holding its final value at transaction end.
Program to_ssa(const Program& prog,
               std::map<std::string, std::string>* final_names);

// Pass 4: flatten to three-address code.  Folds `hashK(...) % CONST` into a
// single hash-unit statement (the hardware computes table indices directly).
TacProgram to_tac(const Program& prog);

// Pass 5: copy propagation plus dead-code elimination on the (SSA) TAC.
// `outputs` are fields whose final values are observable and must survive.
// This removes the copies introduced by flank rewriting so codelets take the
// shapes shown in Figure 8.
TacProgram optimize_tac(const TacProgram& tac,
                        const std::set<std::string>& outputs);

// The whole normalization pipeline.
struct Normalized {
  Program branch_removed;
  Program flanked;
  Program ssa;
  TacProgram tac_raw;  // straight out of flattening
  TacProgram tac;      // after copy propagation + DCE
  std::map<std::string, std::string> final_names;
};

Normalized normalize(const Program& prog);

}  // namespace domino
