#include "core/compiler.h"

#include <chrono>

#include "banzai/native.h"
#include "core/emit.h"
#include "core/parser.h"
#include "core/pipeline.h"
#include "core/sema.h"

namespace domino {

Program parse_and_check(std::string_view source) {
  Program p = parse(source);
  analyze(p);
  return p;
}

CompileResult compile(std::string_view source,
                      const atoms::BanzaiTarget& target,
                      const CompileOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  CompileResult r;
  r.program = parse_and_check(source);
  r.normalized = normalize(r.program);
  r.pvsm = pipeline_schedule(r.normalized.tac);
  r.codegen = generate_code(r.pvsm, r.normalized.ssa, target,
                            r.normalized.final_names, options.synth);
  r.machine().set_engine(options.engine);
  // Native AOT: emit the lowered program as C++, hand it to the host
  // toolchain, dlopen the result.  Best-effort by design — a machine that
  // cannot go native ships on the kernel VM with the reason recorded, never
  // a failed compile (the paper's all-or-nothing contract is about mapping
  // the program to the target, not about the simulation substrate).
  if (options.engine == banzai::ExecEngine::kNative) {
    banzai::Machine& m = r.machine();
    if (m.kernel() == nullptr) {
      m.set_native_fallback(
          "no lowered micro-op program to emit (machine is closure-only)");
    } else {
      // Counters builds emit counter-aware objects; the changed text gets
      // its own content hash, so both build flavors share one cache.
      NativeEmitOptions eopts;
#if defined(DOMINO_STAGE_COUNTERS)
      eopts.stage_counters = true;
#endif
      banzai::NativeLoadResult load = banzai::NativePipeline::compile_and_load(
          *m.kernel(), emit_native_cc(*m.kernel(), eopts), options.native);
      if (load.pipeline != nullptr)
        m.set_native(std::move(load.pipeline));
      else
        m.set_native_fallback(std::move(load.error));
    }
  }
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

std::size_t count_loc(std::string_view source) {
  std::size_t loc = 0;
  std::size_t pos = 0;
  bool in_block_comment = false;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string_view line =
        source.substr(pos, eol == std::string_view::npos ? source.size() - pos
                                                         : eol - pos);
    // Strip comments (good enough for LOC counting of our corpus).
    std::string stripped;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (i + 1 < line.size() && line[i] == '*' && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (i + 1 < line.size() && line[i] == '/' && line[i + 1] == '/') break;
      if (i + 1 < line.size() && line[i] == '/' && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      stripped.push_back(line[i]);
    }
    if (stripped.find_first_not_of(" \t\r") != std::string::npos) ++loc;
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return loc;
}

}  // namespace domino
