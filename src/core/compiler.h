// The Domino compiler driver (§4, Figure 4): normalization -> pipelining ->
// code generation, with every intermediate artifact retained for inspection,
// golden tests and the figure-reproduction benches.
//
// All-or-nothing (§4): compile() either returns a machine guaranteed to run
// the transaction at line rate on the given target, or throws CompileError.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "atoms/targets.h"
#include "core/codegen.h"
#include "core/normalize.h"
#include "ir/ast.h"
#include "ir/pvsm.h"

namespace domino {

struct CompileOptions {
  synthesis::SynthOptions synth;
  // Execution engine the compiled machine starts on (see banzai/kernel.h and
  // docs/ARCHITECTURE.md "Execution engines").  kKernel — the default — runs
  // the fused micro-op program lowered at compile time; kClosure walks the
  // per-atom closures (the reference semantics); kNative additionally emits
  // the micro-op program as C++ (core/emit.*), compiles it with the host
  // toolchain and dlopens it (banzai/native.*) — falling back to kKernel,
  // with the reason recorded on the machine
  // (Machine::native_fallback_reason), when no toolchain is available.
  // All engines are bit-exact; flip per machine at any time with
  // Machine::set_engine.
  banzai::ExecEngine engine = banzai::ExecEngine::kKernel;
  // Host-compiler knobs for kNative (compiler, flags, .so cache directory);
  // every field also honors its environment variable (see banzai/native.h).
  banzai::NativeOptions native;
};

struct CompileResult {
  Program program;        // parsed + sema-checked source
  Normalized normalized;  // Figures 5-8 artifacts
  CodeletPipeline pvsm;   // Figure 3b / 9b artifact (pre width-fitting)
  CodegenResult codegen;  // machine, fitted pipeline, per-codelet reports
  double seconds = 0.0;   // total wall-clock compile time

  banzai::Machine& machine() { return codegen.machine; }
  const banzai::Machine& machine() const { return codegen.machine; }

  // Maps each user-declared packet field to the machine field holding its
  // final value after the transaction.
  const std::map<std::string, std::string>& output_map() const {
    return normalized.final_names;
  }

  std::size_t num_stages() const { return codegen.fitted.num_stages(); }
  std::size_t max_atoms_per_stage() const {
    return codegen.fitted.max_codelets_per_stage();
  }
};

// Front-end only: parse + sema.
Program parse_and_check(std::string_view source);

// Full compilation to a Banzai target.
CompileResult compile(std::string_view source,
                      const atoms::BanzaiTarget& target,
                      const CompileOptions& options = {});

// Counts non-empty, non-comment source lines (the LOC metric of Table 4).
std::size_t count_loc(std::string_view source);

}  // namespace domino
