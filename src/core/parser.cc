#include "core/parser.h"

#include <unordered_map>

#include "core/lexer.h"
#include "ir/intrinsics.h"

namespace domino {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Program run() {
    while (!at(Tok::kEnd)) top_level();
    if (!saw_function_)
      throw CompileError(CompilePhase::kParse, cur().loc,
                         "program has no packet transaction function");
    return std::move(prog_);
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(std::size_t n = 1) const {
    return toks_[std::min(pos_ + n, toks_.size() - 1)];
  }
  bool at(Tok t) const { return cur().kind == t; }

  Token eat() { return toks_[pos_++]; }

  Token expect(Tok t, const std::string& what) {
    if (!at(t))
      throw CompileError(CompilePhase::kParse, cur().loc,
                         "expected " + std::string(tok_name(t)) + " " + what +
                             ", found " + std::string(tok_name(cur().kind)));
    return eat();
  }

  [[noreturn]] void forbidden(const Token& t, const std::string& what) {
    throw CompileError(CompilePhase::kParse, t.loc,
                       what + " is not allowed in Domino (Table 1)");
  }

  void top_level() {
    switch (cur().kind) {
      case Tok::kDefine: parse_define(); return;
      case Tok::kStruct: parse_struct(); return;
      case Tok::kInt: parse_state_decl(); return;
      case Tok::kVoid: parse_function(); return;
      case Tok::kWhile:
      case Tok::kFor:
      case Tok::kDo:
        forbidden(cur(), "iteration (while/for/do-while)");
      case Tok::kGoto:
        forbidden(cur(), "goto");
      default:
        throw CompileError(CompilePhase::kParse, cur().loc,
                           "expected a declaration, found " +
                               std::string(tok_name(cur().kind)));
    }
  }

  void parse_define() {
    eat();  // #define
    Token name = expect(Tok::kIdent, "after #define");
    Value v = parse_const_value("in #define value");
    prog_.defines.push_back({name.text, v, name.loc});
    defines_[name.text] = v;
  }

  Value parse_const_value(const std::string& ctx) {
    bool neg = false;
    if (at(Tok::kMinus)) {
      eat();
      neg = true;
    }
    if (at(Tok::kNumber)) {
      Value v = eat().number;
      return neg ? banzai::wrap_sub(0, v) : v;
    }
    if (at(Tok::kIdent)) {
      Token id = eat();
      auto it = defines_.find(id.text);
      if (it == defines_.end())
        throw CompileError(CompilePhase::kParse, id.loc,
                           "unknown constant '" + id.text + "' " + ctx);
      return neg ? banzai::wrap_sub(0, it->second) : it->second;
    }
    throw CompileError(CompilePhase::kParse, cur().loc,
                       "expected a constant " + ctx);
  }

  void parse_struct() {
    Token kw = eat();  // struct
    Token name = expect(Tok::kIdent, "after 'struct'");
    if (name.text != "Packet")
      throw CompileError(CompilePhase::kParse, name.loc,
                         "the only struct allowed is 'struct Packet'");
    if (!prog_.packet_fields.empty())
      throw CompileError(CompilePhase::kParse, kw.loc,
                         "duplicate 'struct Packet' declaration");
    expect(Tok::kLBrace, "to open struct Packet");
    while (!at(Tok::kRBrace)) {
      expect(Tok::kInt, "field type (all packet fields are int)");
      if (at(Tok::kStar)) forbidden(cur(), "a pointer field");
      Token f = expect(Tok::kIdent, "field name");
      expect(Tok::kSemi, "after field");
      prog_.packet_fields.push_back({f.text, f.loc});
    }
    eat();  // }
    expect(Tok::kSemi, "after struct Packet");
    saw_struct_ = true;
  }

  void parse_state_decl() {
    eat();  // int
    if (at(Tok::kStar)) forbidden(cur(), "a pointer");
    Token name = expect(Tok::kIdent, "state variable name");
    StateDecl d;
    d.name = name.text;
    d.loc = name.loc;
    if (at(Tok::kLBracket)) {
      eat();
      d.is_array = true;
      d.size = parse_const_value("as array size");
      if (d.size <= 0)
        throw CompileError(CompilePhase::kParse, name.loc,
                           "array size must be positive");
      expect(Tok::kRBracket, "after array size");
    }
    if (at(Tok::kAssign)) {
      eat();
      if (at(Tok::kLBrace)) {
        eat();
        d.init = parse_const_value("as initializer");
        expect(Tok::kRBrace, "after initializer list");
      } else {
        d.init = parse_const_value("as initializer");
      }
    }
    expect(Tok::kSemi, "after state declaration");
    prog_.state_vars.push_back(std::move(d));
  }

  void parse_function() {
    Token kw = eat();  // void
    if (saw_function_)
      throw CompileError(
          CompilePhase::kParse, kw.loc,
          "multiple packet transactions in one file; use a policy to compose "
          "transactions (Section 3.4)");
    Token name = expect(Tok::kIdent, "transaction name");
    expect(Tok::kLParen, "to open parameter list");
    expect(Tok::kStruct, "parameter type");
    Token pt = expect(Tok::kIdent, "parameter struct name");
    if (pt.text != "Packet")
      throw CompileError(CompilePhase::kParse, pt.loc,
                         "transaction parameter must be 'struct Packet'");
    if (at(Tok::kStar)) forbidden(cur(), "a pointer parameter");
    Token param = expect(Tok::kIdent, "parameter name");
    expect(Tok::kRParen, "to close parameter list");
    expect(Tok::kLBrace, "to open transaction body");
    prog_.transaction.name = name.text;
    prog_.transaction.packet_param = param.text;
    prog_.transaction.loc = name.loc;
    packet_param_ = param.text;
    while (!at(Tok::kRBrace)) prog_.transaction.body.push_back(parse_stmt());
    eat();  // }
    saw_function_ = true;
  }

  std::vector<StmtPtr> parse_block() {
    std::vector<StmtPtr> body;
    if (at(Tok::kLBrace)) {
      eat();
      while (!at(Tok::kRBrace)) body.push_back(parse_stmt());
      eat();
    } else {
      body.push_back(parse_stmt());
    }
    return body;
  }

  StmtPtr parse_stmt() {
    switch (cur().kind) {
      case Tok::kWhile:
      case Tok::kFor:
      case Tok::kDo:
        forbidden(cur(), "iteration (while/for/do-while)");
      case Tok::kGoto: forbidden(cur(), "goto");
      case Tok::kBreak: forbidden(cur(), "break");
      case Tok::kContinue: forbidden(cur(), "continue");
      case Tok::kReturn:
        forbidden(cur(), "return (transactions run to completion)");
      case Tok::kInt:
        forbidden(cur(), "a local variable declaration (no heap/stack data; "
                         "use packet fields)");
      case Tok::kIf: return parse_if();
      default: return parse_assign();
    }
  }

  StmtPtr parse_if() {
    Token kw = eat();  // if
    expect(Tok::kLParen, "after 'if'");
    ExprPtr cond = parse_expr();
    expect(Tok::kRParen, "after if condition");
    std::vector<StmtPtr> then_body = parse_block();
    std::vector<StmtPtr> else_body;
    if (at(Tok::kElse)) {
      eat();
      if (at(Tok::kIf)) {
        else_body.push_back(parse_if());
      } else {
        else_body = parse_block();
      }
    }
    return make_if(std::move(cond), std::move(then_body), std::move(else_body),
                   kw.loc);
  }

  StmtPtr parse_assign() {
    SourceLoc loc = cur().loc;
    ExprPtr target = parse_lvalue();
    if (at(Tok::kIncrement) || at(Tok::kDecrement)) {
      // x++ / x--  ==>  x = x +/- 1
      BinOp op = at(Tok::kIncrement) ? BinOp::kAdd : BinOp::kSub;
      eat();
      expect(Tok::kSemi, "after statement");
      ExprPtr rhs = make_binary(op, target->clone(), make_int(1, loc), loc);
      return make_assign(std::move(target), std::move(rhs), loc);
    }
    BinOp compound_op = BinOp::kAdd;
    bool compound = false;
    if (at(Tok::kPlusAssign)) {
      compound = true;
      compound_op = BinOp::kAdd;
      eat();
    } else if (at(Tok::kMinusAssign)) {
      compound = true;
      compound_op = BinOp::kSub;
      eat();
    } else {
      expect(Tok::kAssign, "in assignment");
    }
    ExprPtr value = parse_expr();
    expect(Tok::kSemi, "after statement");
    if (compound)
      value = make_binary(compound_op, target->clone(), std::move(value), loc);
    return make_assign(std::move(target), std::move(value), loc);
  }

  // lvalue := pkt '.' field | state | state '[' expr ']'
  ExprPtr parse_lvalue() {
    Token id = expect(Tok::kIdent, "in assignment target");
    return resolve_ident(id, /*lvalue=*/true);
  }

  ExprPtr resolve_ident(const Token& id, bool lvalue) {
    if (id.text == packet_param_) {
      expect(Tok::kDot, "after packet parameter");
      Token field = expect(Tok::kIdent, "packet field name");
      return make_field(field.text, id.loc);
    }
    if (auto it = defines_.find(id.text); it != defines_.end()) {
      if (lvalue)
        throw CompileError(CompilePhase::kParse, id.loc,
                           "cannot assign to constant '" + id.text + "'");
      return make_int(it->second, id.loc);
    }
    if (!lvalue && at(Tok::kLParen)) {  // intrinsic call
      eat();
      std::vector<ExprPtr> args;
      if (!at(Tok::kRParen)) {
        args.push_back(parse_expr());
        while (at(Tok::kComma)) {
          eat();
          args.push_back(parse_expr());
        }
      }
      expect(Tok::kRParen, "to close call");
      return make_call(id.text, std::move(args), id.loc);
    }
    // State variable (validated by sema), possibly subscripted.
    ExprPtr index;
    if (at(Tok::kLBracket)) {
      eat();
      index = parse_expr();
      expect(Tok::kRBracket, "after array index");
    }
    return make_state(id.text, std::move(index), id.loc);
  }

  // Expression grammar with C precedence.
  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_lor();
    if (!at(Tok::kQuestion)) return cond;
    SourceLoc loc = eat().loc;
    ExprPtr a = parse_expr();
    expect(Tok::kColon, "in conditional expression");
    ExprPtr b = parse_ternary();
    return make_ternary(std::move(cond), std::move(a), std::move(b), loc);
  }

  ExprPtr parse_lor() {
    ExprPtr e = parse_land();
    while (at(Tok::kPipePipe)) {
      SourceLoc loc = eat().loc;
      e = make_binary(BinOp::kLOr, std::move(e), parse_land(), loc);
    }
    return e;
  }

  ExprPtr parse_land() {
    ExprPtr e = parse_bitor();
    while (at(Tok::kAmpAmp)) {
      SourceLoc loc = eat().loc;
      e = make_binary(BinOp::kLAnd, std::move(e), parse_bitor(), loc);
    }
    return e;
  }

  ExprPtr parse_bitor() {
    ExprPtr e = parse_bitxor();
    while (at(Tok::kPipe)) {
      SourceLoc loc = eat().loc;
      e = make_binary(BinOp::kBitOr, std::move(e), parse_bitxor(), loc);
    }
    return e;
  }

  ExprPtr parse_bitxor() {
    ExprPtr e = parse_bitand();
    while (at(Tok::kCaret)) {
      SourceLoc loc = eat().loc;
      e = make_binary(BinOp::kBitXor, std::move(e), parse_bitand(), loc);
    }
    return e;
  }

  ExprPtr parse_bitand() {
    ExprPtr e = parse_equality();
    while (at(Tok::kAmp)) {
      SourceLoc loc = eat().loc;
      e = make_binary(BinOp::kBitAnd, std::move(e), parse_equality(), loc);
    }
    return e;
  }

  ExprPtr parse_equality() {
    ExprPtr e = parse_relational();
    while (at(Tok::kEqEq) || at(Tok::kNe)) {
      BinOp op = at(Tok::kEqEq) ? BinOp::kEq : BinOp::kNe;
      SourceLoc loc = eat().loc;
      e = make_binary(op, std::move(e), parse_relational(), loc);
    }
    return e;
  }

  ExprPtr parse_relational() {
    ExprPtr e = parse_shift();
    for (;;) {
      BinOp op;
      if (at(Tok::kLt)) op = BinOp::kLt;
      else if (at(Tok::kGt)) op = BinOp::kGt;
      else if (at(Tok::kLe)) op = BinOp::kLe;
      else if (at(Tok::kGe)) op = BinOp::kGe;
      else break;
      SourceLoc loc = eat().loc;
      e = make_binary(op, std::move(e), parse_shift(), loc);
    }
    return e;
  }

  ExprPtr parse_shift() {
    ExprPtr e = parse_additive();
    while (at(Tok::kShl) || at(Tok::kShr)) {
      BinOp op = at(Tok::kShl) ? BinOp::kShl : BinOp::kShr;
      SourceLoc loc = eat().loc;
      e = make_binary(op, std::move(e), parse_additive(), loc);
    }
    return e;
  }

  ExprPtr parse_additive() {
    ExprPtr e = parse_multiplicative();
    while (at(Tok::kPlus) || at(Tok::kMinus)) {
      BinOp op = at(Tok::kPlus) ? BinOp::kAdd : BinOp::kSub;
      SourceLoc loc = eat().loc;
      e = make_binary(op, std::move(e), parse_multiplicative(), loc);
    }
    return e;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr e = parse_unary();
    while (at(Tok::kStar) || at(Tok::kSlash) || at(Tok::kPercent)) {
      BinOp op = at(Tok::kStar)
                     ? BinOp::kMul
                     : (at(Tok::kSlash) ? BinOp::kDiv : BinOp::kMod);
      SourceLoc loc = eat().loc;
      e = make_binary(op, std::move(e), parse_unary(), loc);
    }
    return e;
  }

  ExprPtr parse_unary() {
    if (at(Tok::kMinus)) {
      SourceLoc loc = eat().loc;
      ExprPtr e = parse_unary();
      if (e->kind == Expr::Kind::kIntLit)
        return make_int(banzai::wrap_sub(0, e->int_value), loc);
      return make_unary(UnOp::kNeg, std::move(e), loc);
    }
    if (at(Tok::kBang)) {
      SourceLoc loc = eat().loc;
      return make_unary(UnOp::kLNot, parse_unary(), loc);
    }
    if (at(Tok::kTilde)) {
      SourceLoc loc = eat().loc;
      return make_unary(UnOp::kBitNot, parse_unary(), loc);
    }
    if (at(Tok::kStar)) forbidden(cur(), "pointer dereference");
    if (at(Tok::kAmp) ) forbidden(cur(), "taking an address");
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (at(Tok::kNumber)) {
      Token n = eat();
      return make_int(n.number, n.loc);
    }
    if (at(Tok::kLParen)) {
      eat();
      ExprPtr e = parse_expr();
      expect(Tok::kRParen, "to close parenthesized expression");
      return e;
    }
    if (at(Tok::kIdent)) {
      Token id = eat();
      return resolve_ident(id, /*lvalue=*/false);
    }
    throw CompileError(CompilePhase::kParse, cur().loc,
                       "expected an expression, found " +
                           std::string(tok_name(cur().kind)));
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  Program prog_;
  std::unordered_map<std::string, Value> defines_;
  std::string packet_param_;
  bool saw_struct_ = false;
  bool saw_function_ = false;
};

}  // namespace

Program parse(std::string_view source) {
  return Parser(lex(source)).run();
}

}  // namespace domino
