// Tests for guards and policies (§3.3-3.4): match semantics, transaction
// composition by concatenation, and end-to-end behaviour of a composed
// program.
#include "core/policy.h"

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/interp.h"
#include "core/sema.h"

namespace domino {
namespace {

TEST(GuardClauseTest, ExactMatch) {
  auto g = Guard::exact("dport", 80);
  banzai::FieldTable ft;
  banzai::Packet p(1);
  ft.intern("dport");
  p.set(0, 80);
  EXPECT_TRUE(g.matches(p, ft));
  p.set(0, 443);
  EXPECT_FALSE(g.matches(p, ft));
}

TEST(GuardClauseTest, RangeMatchInclusive) {
  auto g = Guard::range("len", 64, 1500);
  banzai::FieldTable ft;
  ft.intern("len");
  banzai::Packet p(1);
  for (auto [v, want] : std::vector<std::pair<banzai::Value, bool>>{
           {63, false}, {64, true}, {1000, true}, {1500, true}, {1501, false}})
  {
    p.set(0, v);
    EXPECT_EQ(g.matches(p, ft), want) << v;
  }
}

TEST(GuardClauseTest, TernaryMatchHonorsMask) {
  auto g = Guard::ternary("flags", 0b1010, 0b1110);
  banzai::FieldTable ft;
  ft.intern("flags");
  banzai::Packet p(1);
  p.set(0, 0b1011);  // differs only in the unmasked bit
  EXPECT_TRUE(g.matches(p, ft));
  p.set(0, 0b0010);
  EXPECT_FALSE(g.matches(p, ft));
}

TEST(GuardClauseTest, LongestPrefixMatch) {
  auto g = Guard::prefix("dstip", 0x0a000000, 8);  // 10.0.0.0/8
  banzai::FieldTable ft;
  ft.intern("dstip");
  banzai::Packet p(1);
  p.set(0, 0x0a123456);
  EXPECT_TRUE(g.matches(p, ft));
  p.set(0, 0x0b000001);
  EXPECT_FALSE(g.matches(p, ft));
}

TEST(GuardClauseTest, ZeroLengthPrefixMatchesAll) {
  auto g = Guard::prefix("dstip", 0, 0);
  banzai::FieldTable ft;
  ft.intern("dstip");
  banzai::Packet p(1);
  p.set(0, -12345);
  EXPECT_TRUE(g.matches(p, ft));
}

TEST(GuardTest, ConjunctionOfClauses) {
  auto g = Guard::exact("proto", 6).and_exact("dport", 80);
  banzai::FieldTable ft;
  ft.intern("proto");
  ft.intern("dport");
  banzai::Packet p(2);
  p.set(0, 6);
  p.set(1, 80);
  EXPECT_TRUE(g.matches(p, ft));
  p.set(1, 443);
  EXPECT_FALSE(g.matches(p, ft));
}

TEST(GuardTest, EmptyGuardMatchesEverything) {
  Guard g;
  banzai::FieldTable ft;
  banzai::Packet p(0);
  EXPECT_TRUE(g.matches(p, ft));
}

TEST(GuardTest, MissingFieldNeverMatches) {
  auto g = Guard::exact("no_such_field", 1);
  banzai::FieldTable ft;
  banzai::Packet p(0);
  EXPECT_FALSE(g.matches(p, ft));
}

// ---- composition --------------------------------------------------------------

const char* kCounterA =
    "struct Packet { int a; int outA; };\nint ca = 0;\n"
    "void ta(struct Packet pkt) { ca = ca + pkt.a; pkt.outA = ca; }\n";

const char* kCounterB =
    "struct Packet { int a; int outB; };\nint cb = 0;\n"
    "void tb(struct Packet pkt) { cb = cb + 1; pkt.outB = cb + pkt.a; }\n";

TEST(ComposeTest, BodiesConcatenateInOrder) {
  Program a = parse_and_check(kCounterA);
  Program b = parse_and_check(kCounterB);
  Program ab = compose_transactions(a, b);
  EXPECT_EQ(ab.transaction.name, "ta_tb");
  EXPECT_EQ(ab.transaction.body.size(),
            a.transaction.body.size() + b.transaction.body.size());
  // Fields unify by name: `a` shared, outA + outB both present.
  EXPECT_TRUE(ab.has_packet_field("a"));
  EXPECT_TRUE(ab.has_packet_field("outA"));
  EXPECT_TRUE(ab.has_packet_field("outB"));
}

TEST(ComposeTest, ComposedProgramIsCompilable) {
  Program ab = compose_transactions(parse_and_check(kCounterA),
                                    parse_and_check(kCounterB));
  analyze(ab);
  EXPECT_NO_THROW(compile(ab.str(), *atoms::find_target("banzai-raw")));
}

TEST(ComposeTest, CompositionEquivalentToSequentialExecution) {
  Program a = parse_and_check(kCounterA);
  Program b = parse_and_check(kCounterB);
  Program ab = compose_transactions(a, b);
  analyze(ab);

  Interpreter ia(a), ib(b), iab(ab);
  for (int i = 0; i < 50; ++i) {
    auto p1 = ia.make_packet();
    ia.set(p1, "a", i);
    ia.run(p1);
    auto p2 = ib.make_packet();
    ib.set(p2, "a", i);
    ib.run(p2);
    auto pc = iab.make_packet();
    iab.set(pc, "a", i);
    iab.run(pc);
    EXPECT_EQ(iab.get(pc, "outA"), ia.get(p1, "outA"));
    EXPECT_EQ(iab.get(pc, "outB"), ib.get(p2, "outB"));
  }
}

TEST(ComposeTest, SharedStateRejected) {
  const char* other =
      "struct Packet { int a; };\nint ca = 0;\n"
      "void tc(struct Packet pkt) { ca = ca + 2; }\n";
  EXPECT_THROW(compose_transactions(parse_and_check(kCounterA),
                                    parse_and_check(other)),
               CompileError);
}

TEST(ComposeTest, ConflictingDefinesRejected) {
  const char* d1 =
      "#define K 1\nstruct Packet { int a; };\nint s1 = 0;\n"
      "void t1(struct Packet pkt) { s1 = K; }\n";
  const char* d2 =
      "#define K 2\nstruct Packet { int a; };\nint s2 = 0;\n"
      "void t2(struct Packet pkt) { s2 = K; }\n";
  EXPECT_THROW(
      compose_transactions(parse_and_check(d1), parse_and_check(d2)),
      CompileError);
}

TEST(ComposeTest, AgreeingDefinesUnify) {
  const char* d1 =
      "#define K 3\nstruct Packet { int a; };\nint s1 = 0;\n"
      "void t1(struct Packet pkt) { s1 = K; }\n";
  const char* d2 =
      "#define K 3\nstruct Packet { int a; };\nint s2 = 0;\n"
      "void t2(struct Packet pkt) { s2 = K; }\n";
  Program p =
      compose_transactions(parse_and_check(d1), parse_and_check(d2));
  EXPECT_EQ(p.defines.size(), 1u);
}

// ---- policy dispatch -----------------------------------------------------------

TEST(PolicyTest, MatchingEntriesInOrder) {
  Policy policy;
  policy.add(Guard::exact("dport", 80), parse_and_check(kCounterA));
  policy.add(Guard::range("dport", 0, 1000), parse_and_check(kCounterB));

  banzai::FieldTable ft;
  ft.intern("dport");
  banzai::Packet p(1);
  p.set(0, 80);
  auto matches = policy.matching_entries(p, ft);
  ASSERT_EQ(matches.size(), 2u);  // overlapping guards: both fire, in order
  EXPECT_EQ(matches[0], 0u);
  EXPECT_EQ(matches[1], 1u);

  p.set(0, 443);
  matches = policy.matching_entries(p, ft);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], 1u);

  p.set(0, 5000);
  EXPECT_TRUE(policy.matching_entries(p, ft).empty());
}

}  // namespace
}  // namespace domino
