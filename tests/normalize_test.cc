#include "core/normalize.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/interp.h"
#include "core/parser.h"
#include "core/sema.h"

namespace domino {
namespace {

Program parsed(const std::string& src) {
  Program p = parse(src);
  analyze(p);
  return p;
}

const char* kSmall =
    "struct Packet { int a; int b; int out; };\n"
    "int s = 0;\n"
    "void t(struct Packet pkt) {\n"
    "  if (pkt.a > 3) { s = s + pkt.b; pkt.out = 1; } else { pkt.out = 2; }\n"
    "}\n";

// ---- branch removal -------------------------------------------------------

TEST(BranchRemovalTest, ResultHasNoIfStatements) {
  Program p = remove_branches(parsed(kSmall));
  for (const auto& s : p.transaction.body)
    EXPECT_EQ(s->kind, Stmt::Kind::kAssign);
}

TEST(BranchRemovalTest, ConditionHoistedIntoFreshField) {
  Program p = remove_branches(parsed(kSmall));
  // First statement assigns the hoisted condition.
  const Stmt& s = *p.transaction.body[0];
  EXPECT_EQ(s.target->kind, Expr::Kind::kField);
  EXPECT_EQ(s.target->name.rfind("_br", 0), 0u);
  EXPECT_EQ(s.value->bin_op, BinOp::kGt);
}

TEST(BranchRemovalTest, ThenAssignmentsGuardedWithTernary) {
  Program p = remove_branches(parsed(kSmall));
  // s = cond ? s + b : s
  const Stmt& s = *p.transaction.body[1];
  ASSERT_EQ(s.value->kind, Expr::Kind::kTernary);
  EXPECT_EQ(s.value->b->kind, Expr::Kind::kState);  // else-side keeps old
}

TEST(BranchRemovalTest, ElseAssignmentsGuardedWithSwappedArms) {
  Program p = remove_branches(parsed(kSmall));
  const Stmt& s = *p.transaction.body.back();  // pkt.out = cond ? out : 2
  ASSERT_EQ(s.value->kind, Expr::Kind::kTernary);
  EXPECT_EQ(s.value->b->int_value, 2);
}

TEST(BranchRemovalTest, NestedIfsFlattenInnermostFirst) {
  Program p = remove_branches(parsed(
      "struct Packet { int a; int b; };\nint s = 0;\n"
      "void t(struct Packet pkt) {\n"
      "  if (pkt.a) { if (pkt.b) { s = 1; } }\n"
      "}\n"));
  // Expect: _br0 = a; _br1 = b (unguarded); s = br0 ? (br1 ? 1 : s) : s
  ASSERT_EQ(p.transaction.body.size(), 3u);
  const Stmt& inner_cond = *p.transaction.body[1];
  EXPECT_EQ(inner_cond.value->kind, Expr::Kind::kField);  // plain copy of b
  const Stmt& update = *p.transaction.body[2];
  ASSERT_EQ(update.value->kind, Expr::Kind::kTernary);
  EXPECT_EQ(update.value->a->kind, Expr::Kind::kTernary);
}

TEST(BranchRemovalTest, StateArrayWriteRewrittenAsSelfConditional) {
  // Figure 5's exact pattern.
  Program p = remove_branches(parsed(
      "#define N 8\nstruct Packet { int id; int v; };\nint a[N] = {0};\n"
      "void t(struct Packet pkt) {\n"
      "  if (pkt.v > 5) { a[pkt.id] = pkt.v; }\n"
      "}\n"));
  const Stmt& s = *p.transaction.body[1];
  EXPECT_EQ(s.target->kind, Expr::Kind::kState);
  ASSERT_EQ(s.value->kind, Expr::Kind::kTernary);
  EXPECT_EQ(s.value->b->kind, Expr::Kind::kState);  // a[pkt.id] on else side
}

// ---- state flanks ---------------------------------------------------------

TEST(FlankTest, ReadFlankInsertedBeforeFirstUse) {
  Program p = rewrite_state_vars(remove_branches(parsed(kSmall)));
  // Somewhere a statement must read the state into a temporary field, and it
  // must appear before any use of that temporary.
  int read_flank = -1, first_use = -1;
  for (std::size_t i = 0; i < p.transaction.body.size(); ++i) {
    const Stmt& s = *p.transaction.body[i];
    if (s.value->kind == Expr::Kind::kState && read_flank < 0)
      read_flank = static_cast<int>(i);
    if (s.value->str().find("_s_") != std::string::npos && first_use < 0)
      first_use = static_cast<int>(i);
  }
  ASSERT_GE(read_flank, 0);
  EXPECT_TRUE(first_use == -1 || read_flank < first_use);
}

TEST(FlankTest, WriteFlankAtEnd) {
  Program p = rewrite_state_vars(remove_branches(parsed(kSmall)));
  const Stmt& last = *p.transaction.body.back();
  EXPECT_EQ(last.target->kind, Expr::Kind::kState);
  EXPECT_EQ(last.value->kind, Expr::Kind::kField);
}

TEST(FlankTest, OnlyFlanksTouchState) {
  // After the pass, state appears only in the read flank (value) and the
  // write flank (target); everything else is packet-field arithmetic.
  Program p = rewrite_state_vars(remove_branches(parsed(kSmall)));
  int state_refs = 0;
  for (const auto& s : p.transaction.body) {
    if (s->value->kind == Expr::Kind::kState) ++state_refs;
    if (s->target->kind == Expr::Kind::kState) ++state_refs;
    // no nested state refs in compound expressions:
    std::function<void(const Expr&)> walk = [&](const Expr& e) {
      if (&e != s->value.get() && e.kind == Expr::Kind::kState) ADD_FAILURE();
      if (e.a) walk(*e.a);
      if (e.b) walk(*e.b);
      if (e.cond) walk(*e.cond);
    };
    if (s->value->kind != Expr::Kind::kState) walk(*s->value);
  }
  EXPECT_EQ(state_refs, 2);  // one read flank + one write flank
}

TEST(FlankTest, ReadOnlyStateGetsNoWriteFlank) {
  Program p = rewrite_state_vars(remove_branches(parsed(
      "struct Packet { int out; };\nint s = 3;\n"
      "void t(struct Packet pkt) { pkt.out = s; }\n")));
  const Stmt& last = *p.transaction.body.back();
  EXPECT_NE(last.target->kind, Expr::Kind::kState);
}

TEST(FlankTest, ArrayIndexExpressionMovedToOwnField) {
  Program p = rewrite_state_vars(remove_branches(parsed(
      "#define N 8\nstruct Packet { int a; int b; int out; };\n"
      "int arr[N] = {0};\n"
      "void t(struct Packet pkt) { pkt.out = arr[pkt.a + pkt.b]; }\n")));
  // The compound index must have been hoisted into a field.
  const Stmt& idx = *p.transaction.body[0];
  EXPECT_EQ(idx.target->name.rfind("_idx_", 0), 0u);
  const Stmt& flank = *p.transaction.body[1];
  ASSERT_EQ(flank.value->kind, Expr::Kind::kState);
  EXPECT_EQ(flank.value->index->kind, Expr::Kind::kField);
}

TEST(FlankTest, BareFieldIndexReused) {
  Program p = rewrite_state_vars(remove_branches(parsed(
      "#define N 8\nstruct Packet { int i; int out; };\nint arr[N] = {0};\n"
      "void t(struct Packet pkt) { pkt.out = arr[pkt.i]; }\n")));
  const Stmt& flank = *p.transaction.body[0];
  ASSERT_EQ(flank.value->kind, Expr::Kind::kState);
  EXPECT_EQ(flank.value->index->name, "i");
}

// ---- SSA ------------------------------------------------------------------

TEST(SsaTest, EveryFieldAssignedAtMostOnce) {
  auto pre = rewrite_state_vars(remove_branches(parsed(kSmall)));
  Program p = to_ssa(pre, nullptr);
  std::set<std::string> assigned;
  for (const auto& s : p.transaction.body) {
    if (s->target->kind != Expr::Kind::kField) continue;
    EXPECT_TRUE(assigned.insert(s->target->name).second)
        << "field " << s->target->name << " assigned twice";
  }
}

TEST(SsaTest, ReadsSeeLatestVersion) {
  Program p = to_ssa(parsed("struct Packet { int a; int out; };\n"
                            "void t(struct Packet pkt) {\n"
                            "  pkt.a = 1;\n  pkt.a = pkt.a + 1;\n"
                            "  pkt.out = pkt.a;\n}\n"),
                     nullptr);
  const Stmt& second = *p.transaction.body[1];
  EXPECT_EQ(second.value->a->name, "a_v0");
  const Stmt& third = *p.transaction.body[2];
  EXPECT_EQ(third.value->name, "a_v1");
}

TEST(SsaTest, FinalNamesMapToLastVersion) {
  std::map<std::string, std::string> finals;
  to_ssa(parsed("struct Packet { int a; int b; };\n"
                "void t(struct Packet pkt) { pkt.a = 1; pkt.a = 2; }\n"),
         &finals);
  EXPECT_EQ(finals.at("a"), "a_v1");
  EXPECT_EQ(finals.at("b"), "b");  // never assigned: input name
}

TEST(SsaTest, InputFieldsKeepTheirNames) {
  Program p = to_ssa(parsed("struct Packet { int a; int out; };\n"
                            "void t(struct Packet pkt) { pkt.out = pkt.a; }\n"),
                     nullptr);
  EXPECT_EQ(p.transaction.body[0]->value->name, "a");
}

// ---- TAC ------------------------------------------------------------------

TEST(TacTest, FlattensCompoundExpressions) {
  TacProgram tac = normalize(parsed(
      "struct Packet { int a; int b; int c; int out; };\n"
      "void t(struct Packet pkt) { pkt.out = pkt.a + pkt.b - pkt.c; }\n")).tac;
  ASSERT_EQ(tac.stmts.size(), 2u);
  EXPECT_EQ(tac.stmts[0].kind, TacStmt::Kind::kBinary);
  EXPECT_EQ(tac.stmts[0].op, BinOp::kAdd);
  EXPECT_EQ(tac.stmts[1].op, BinOp::kSub);
}

TEST(TacTest, HashModFoldsIntoIntrinsic) {
  TacProgram tac = normalize(parsed(
      "#define N 64\nstruct Packet { int a; int b; int out; };\n"
      "void t(struct Packet pkt) { pkt.out = hash2(pkt.a, pkt.b) % N; }\n"))
                       .tac;
  ASSERT_EQ(tac.stmts.size(), 1u);
  EXPECT_EQ(tac.stmts[0].kind, TacStmt::Kind::kIntrinsic);
  EXPECT_EQ(tac.stmts[0].intrinsic_mod, 64);
}

TEST(TacTest, ConstantFolding) {
  TacProgram tac = normalize(parsed(
      "#define N 30\nstruct Packet { int out; };\n"
      "void t(struct Packet pkt) { pkt.out = N - 1; }\n")).tac;
  ASSERT_EQ(tac.stmts.size(), 1u);
  EXPECT_EQ(tac.stmts[0].kind, TacStmt::Kind::kCopy);
  EXPECT_EQ(tac.stmts[0].a.cst, 29);
}

TEST(TacTest, TernaryHasFourOperandForm) {
  TacProgram tac = normalize(parsed(
      "struct Packet { int c; int a; int b; int out; };\n"
      "void t(struct Packet pkt) { pkt.out = pkt.c ? pkt.a : pkt.b; }\n")).tac;
  ASSERT_EQ(tac.stmts.size(), 1u);
  EXPECT_EQ(tac.stmts[0].kind, TacStmt::Kind::kTernary);
}

TEST(TacTest, StateAccessesAreBareReadsAndWrites) {
  TacProgram tac = normalize(parsed(kSmall)).tac;
  for (const auto& s : tac.stmts) {
    if (s.kind == TacStmt::Kind::kReadState) {
      EXPECT_FALSE(s.dst.empty());
    }
    if (s.kind == TacStmt::Kind::kWriteState) {
      EXPECT_TRUE(s.a.is_field() || s.a.is_const());
    }
  }
}

// ---- copy propagation / DCE ----------------------------------------------

TEST(OptimizeTest, DeadTemporariesRemoved) {
  Normalized n = normalize(parsed(
      "struct Packet { int a; int out; };\n"
      "void t(struct Packet pkt) { pkt.out = pkt.a + 1; }\n"));
  EXPECT_LE(n.tac.stmts.size(), n.tac_raw.stmts.size());
  for (const auto& s : n.tac.stmts) {
    auto w = s.field_written();
    if (w.has_value()) {
      EXPECT_EQ(*w, "out_v0");
    }
  }
}

TEST(OptimizeTest, OutputCopiesSurvive) {
  Normalized n = normalize(parsed(
      "struct Packet { int a; int out; };\nint s = 0;\n"
      "void t(struct Packet pkt) { s = pkt.a; pkt.out = s; }\n"));
  bool has_out = false;
  for (const auto& s : n.tac.stmts)
    if (s.field_written() == std::optional<std::string>("out_v0"))
      has_out = true;
  EXPECT_TRUE(has_out);
}

TEST(OptimizeTest, StateWritesAlwaysSurvive) {
  Normalized n = normalize(parsed(
      "struct Packet { int a; };\nint s = 0;\n"
      "void t(struct Packet pkt) { s = s + pkt.a; }\n"));
  bool has_write = false;
  for (const auto& s : n.tac.stmts)
    if (s.kind == TacStmt::Kind::kWriteState) has_write = true;
  EXPECT_TRUE(has_write);
}

// ---- semantic preservation (property) --------------------------------------

// Each pass must preserve the transaction's observable semantics.  We run the
// original and the transformed program on identical random packet streams and
// compare all user fields and all state.
class PassPreservationTest : public ::testing::TestWithParam<int> {};

TEST_P(PassPreservationTest, AllPassesPreserveSemantics) {
  const int seed = GetParam();
  const std::string src =
      "#define N 16\n"
      "struct Packet { int a; int b; int c; int out; int out2; };\n"
      "int s = 0;\nint arr[N] = {0};\n"
      "void t(struct Packet pkt) {\n"
      "  pkt.c = hash2(pkt.a, pkt.b) % N;\n"
      "  if (pkt.a > 10) { arr[pkt.c] = arr[pkt.c] + pkt.b; s = s + 1; }\n"
      "  else { if (pkt.b > 5) { s = s + 2; } }\n"
      "  pkt.out = arr[pkt.c];\n"
      "  pkt.out2 = s;\n"
      "}\n";
  Program original = parsed(src);
  Program br = remove_branches(original);
  Program fl = rewrite_state_vars(br);

  Interpreter i0(original), i1(br), i2(fl);
  std::mt19937 rng(static_cast<unsigned>(seed));
  std::uniform_int_distribution<Value> dist(-20, 20);
  for (int n = 0; n < 500; ++n) {
    const Value a = dist(rng), b = dist(rng);
    auto run = [&](Interpreter& it) {
      auto pkt = it.make_packet();
      it.set(pkt, "a", a);
      it.set(pkt, "b", b);
      it.run(pkt);
      return std::pair(it.get(pkt, "out"), it.get(pkt, "out2"));
    };
    auto r0 = run(i0), r1 = run(i1), r2 = run(i2);
    ASSERT_EQ(r0, r1) << "branch removal changed semantics at packet " << n;
    ASSERT_EQ(r0, r2) << "flank rewriting changed semantics at packet " << n;
  }
  EXPECT_EQ(i0.state().var("s"), i1.state().var("s"));
  EXPECT_EQ(i0.state().var("arr"), i2.state().var("arr"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassPreservationTest,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace domino
