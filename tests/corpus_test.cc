// The Table 4 reproduction as a test suite: every corpus algorithm must
// (a) be a valid Domino program,
// (b) map to exactly the paper's least expressive atom,
// (c) stay within sane LOC bounds relative to the paper's counts.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "test_util.h"

namespace {

class CorpusTest : public ::testing::TestWithParam<std::string> {
 protected:
  const algorithms::AlgorithmInfo& alg() const {
    return algorithms::algorithm(GetParam());
  }
};

TEST_P(CorpusTest, ParsesAndPassesSema) {
  EXPECT_NO_THROW(domino::parse_and_check(alg().source));
}

TEST_P(CorpusTest, LeastExpressiveAtomMatchesTable4) {
  auto least = test_util::least_target(alg().source);
  if (alg().paper_least_atom == "Doesn't map") {
    EXPECT_FALSE(least.has_value())
        << GetParam() << " unexpectedly mapped to " << least->name;
  } else {
    ASSERT_TRUE(least.has_value()) << GetParam() << " failed on all targets";
    EXPECT_EQ(atoms::stateful_kind_name(least->stateful_atom),
              alg().paper_least_atom);
  }
}

TEST_P(CorpusTest, MostExpressiveTargetAcceptsEverythingMappable) {
  if (alg().paper_least_atom == "Doesn't map") return;
  EXPECT_NO_THROW(
      domino::compile(alg().source, *atoms::find_target("banzai-pairs")));
}

TEST_P(CorpusTest, DominoLocComparableToPaper) {
  const std::size_t loc = domino::count_loc(alg().source);
  // Same order of magnitude as the paper's count; our formatting differs.
  EXPECT_GE(loc, static_cast<std::size_t>(alg().paper_domino_loc / 3));
  EXPECT_LE(loc, static_cast<std::size_t>(alg().paper_domino_loc * 2));
}

TEST_P(CorpusTest, StageCountWithinPipelineDepth) {
  if (alg().paper_least_atom == "Doesn't map") return;
  auto r =
      domino::compile(alg().source, *atoms::find_target("banzai-pairs"));
  EXPECT_LE(r.num_stages(), 32u);
  EXPECT_GE(r.num_stages(), 1u);
}

TEST_P(CorpusTest, WorkloadGeneratorPopulatesDeclaredInputs) {
  std::mt19937 rng(1);
  std::map<std::string, banzai::Value> fields;
  alg().workload(rng, 0, fields);
  for (const auto& f : alg().input_fields)
    EXPECT_TRUE(fields.count(f)) << "workload does not set " << f;
}

TEST_P(CorpusTest, MetadataSanity) {
  EXPECT_FALSE(alg().description.empty());
  EXPECT_GT(alg().paper_domino_loc, 0);
  EXPECT_GT(alg().paper_p4_loc, alg().paper_domino_loc);
  EXPECT_TRUE(alg().pipeline_location == "Ingress" ||
              alg().pipeline_location == "Egress" ||
              alg().pipeline_location == "Either");
}

INSTANTIATE_TEST_SUITE_P(
    Table4, CorpusTest,
    ::testing::Values("bloom_filter", "heavy_hitters", "flowlets", "rcp",
                      "sampled_netflow", "hull", "avq", "stfq",
                      "dns_ttl_tracker", "conga", "codel"));

TEST(CorpusGlobalTest, ElevenAlgorithms) {
  EXPECT_EQ(algorithms::corpus().size(), 11u);
}

TEST(CorpusGlobalTest, UnknownAlgorithmThrows) {
  EXPECT_THROW(algorithms::algorithm("nope"), std::out_of_range);
}

TEST(CorpusGlobalTest, CodelCompilesOnlyOnLutTarget) {
  const auto& codel = algorithms::algorithm("codel");
  EXPECT_FALSE(test_util::least_target(codel.source).has_value());
  EXPECT_NO_THROW(domino::compile(codel.source, atoms::lut_extended_target()));
}

// Semantic spot-checks of individual reference behaviours.

TEST(CorpusSemanticsTest, BloomFilterNeverFalseNegative) {
  const auto& alg = algorithms::algorithm("bloom_filter");
  domino::Program p = domino::parse_and_check(alg.source);
  domino::Interpreter interp(p);
  // Insert (1000, 80); it must be reported as member on re-query.
  auto insert = [&](int sport, int dport) {
    auto pkt = interp.make_packet();
    interp.set(pkt, "sport", sport);
    interp.set(pkt, "dport", dport);
    interp.run(pkt);
    return interp.get(pkt, "member");
  };
  insert(1000, 80);
  EXPECT_EQ(insert(1000, 80), 1);  // second query sees membership
}

TEST(CorpusSemanticsTest, SampledNetflowSamplesOneInN) {
  const auto& alg = algorithms::algorithm("sampled_netflow");
  domino::Program p = domino::parse_and_check(alg.source);
  domino::Interpreter interp(p);
  int samples = 0;
  for (int i = 0; i < 300; ++i) {
    auto pkt = interp.make_packet();
    interp.run(pkt);
    samples += interp.get(pkt, "sample");
  }
  EXPECT_EQ(samples, 10);  // 300 packets / 30
}

TEST(CorpusSemanticsTest, FlowletsPickNewHopAfterGap) {
  const auto& alg = algorithms::algorithm("flowlets");
  domino::Program p = domino::parse_and_check(alg.source);
  domino::Interpreter interp(p);
  auto send = [&](int arrival) {
    auto pkt = interp.make_packet();
    interp.set(pkt, "sport", 1);
    interp.set(pkt, "dport", 2);
    interp.set(pkt, "arrival", arrival);
    interp.run(pkt);
    return interp.get(pkt, "next_hop");
  };
  const int h1 = send(100);
  // Packets inside the flowlet keep the hop regardless of their own hash.
  EXPECT_EQ(send(101), h1);
  EXPECT_EQ(send(103), h1);
  // After a gap larger than THRESHOLD the hop may be re-picked; the saved
  // hop must equal the new packet's fresh hash choice.
  auto pkt = interp.make_packet();
  interp.set(pkt, "sport", 1);
  interp.set(pkt, "dport", 2);
  interp.set(pkt, "arrival", 500);
  interp.run(pkt);
  EXPECT_EQ(interp.get(pkt, "next_hop"), interp.get(pkt, "new_hop"));
}

TEST(CorpusSemanticsTest, CongaTracksTrueMinimumUtilization) {
  const auto& alg = algorithms::algorithm("conga");
  domino::Program p = domino::parse_and_check(alg.source);
  domino::Interpreter interp(p);
  using VP = std::pair<banzai::Value, banzai::Value>;
  auto feedback = [&](int src, int util, int path) {
    auto pkt = interp.make_packet();
    interp.set(pkt, "src", src);
    interp.set(pkt, "util", util);
    interp.set(pkt, "path_id", path);
    interp.run(pkt);
    return VP(interp.get(pkt, "best_util_now"),
              interp.get(pkt, "best_path_now"));
  };
  EXPECT_EQ(feedback(3, 500, 1), VP(500, 1));
  EXPECT_EQ(feedback(3, 300, 2), VP(300, 2));
  // Worse utilization on a different path: best unchanged.
  EXPECT_EQ(feedback(3, 900, 5), VP(300, 2));
  // The best path itself degrading must be tracked (the Pairs case).
  EXPECT_EQ(feedback(3, 700, 2), VP(700, 2));
}

TEST(CorpusSemanticsTest, CodelMarksFasterUnderSustainedDelay) {
  const auto& alg = algorithms::algorithm("codel");
  domino::Program p = domino::parse_and_check(alg.source);
  domino::Interpreter interp(p);
  int marks = 0;
  int now = 0;
  for (int i = 0; i < 5000; ++i) {
    now += 7;
    auto pkt = interp.make_packet();
    interp.set(pkt, "now", now);
    interp.set(pkt, "qdelay", 50);  // always above target
    interp.run(pkt);
    marks += interp.get(pkt, "mark");
  }
  EXPECT_GT(marks, 3);  // marking accelerates: several marks well inside 5000
  // With low delay, no marks.
  int marks_low = 0;
  for (int i = 0; i < 1000; ++i) {
    now += 7;
    auto pkt = interp.make_packet();
    interp.set(pkt, "now", now);
    interp.set(pkt, "qdelay", 1);
    interp.run(pkt);
    marks_low += interp.get(pkt, "mark");
  }
  EXPECT_EQ(marks_low, 0);
}

}  // namespace
