// The central correctness property of the whole system (§3, §4): a compiled
// Banzai pipeline — with packets overlapped in flight — is observationally
// identical to executing the packet transaction sequentially, one packet at a
// time.  Parameterized over every mappable corpus algorithm, multiple
// targets, and multiple workload seeds.
#include <gtest/gtest.h>

#include "test_util.h"

namespace {

using algorithms::AlgorithmInfo;

struct DiffCase {
  std::string algorithm;
  std::string target;  // "" = least expressive target that accepts it
  unsigned seed;
};

class TransactionalSemanticsTest : public ::testing::TestWithParam<DiffCase> {
};

TEST_P(TransactionalSemanticsTest, PipelineMatchesSequentialExecution) {
  const auto& tc = GetParam();
  const AlgorithmInfo& alg = algorithms::algorithm(tc.algorithm);

  std::optional<atoms::BanzaiTarget> target;
  if (tc.target.empty()) {
    target = test_util::least_target(alg.source);
  } else {
    target = atoms::find_target(tc.target);
  }
  ASSERT_TRUE(target.has_value());

  domino::CompileResult compiled = domino::compile(alg.source, *target);
  auto result = test_util::run_differential(alg, compiled, 3000, tc.seed);
  EXPECT_EQ(result.field_mismatches, 0);
  EXPECT_TRUE(result.state_equal);
  // One packet per clock plus pipeline drain.
  EXPECT_EQ(result.cycles,
            static_cast<std::uint64_t>(result.packets) + compiled.num_stages());
}

std::vector<DiffCase> all_cases() {
  std::vector<DiffCase> cases;
  for (const auto& alg : algorithms::corpus()) {
    if (alg.paper_least_atom == "Doesn't map") continue;
    for (unsigned seed : {7u, 1234u, 987654u})
      cases.push_back({alg.name, "", seed});
    // Also on the most expressive target: containment must preserve behavior.
    cases.push_back({alg.name, "banzai-pairs", 42u});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, TransactionalSemanticsTest, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return info.param.algorithm +
             (info.param.target.empty() ? "_least_" : "_pairs_") +
             std::to_string(info.param.seed);
    });

TEST(TransactionalSemanticsTest, CodelOnLutExtensionTarget) {
  const AlgorithmInfo& alg = algorithms::algorithm("codel");
  domino::CompileResult compiled =
      domino::compile(alg.source, atoms::lut_extended_target());
  auto result = test_util::run_differential(alg, compiled, 3000, 9u);
  EXPECT_EQ(result.field_mismatches, 0);
  EXPECT_TRUE(result.state_equal);
}

// Adversarial workload: all fields at corner values, exercising wraparound
// and clamping inside atoms.
TEST(TransactionalSemanticsTest, CornerValueWorkload) {
  const AlgorithmInfo& alg = algorithms::algorithm("conga");
  algorithms::AlgorithmInfo corner = alg;
  corner.workload = [](std::mt19937& rng, int, std::map<std::string,
                                                        banzai::Value>& f) {
    static const banzai::Value corners[] = {0, 1, -1, INT32_MAX, INT32_MIN,
                                            255, -256};
    std::uniform_int_distribution<std::size_t> pick(0, 6);
    f["src"] = corners[pick(rng)] & 0xff;
    f["util"] = corners[pick(rng)];
    f["path_id"] = corners[pick(rng)];
  };
  auto target = atoms::find_target("banzai-pairs");
  ASSERT_TRUE(target.has_value());
  domino::CompileResult compiled = domino::compile(alg.source, *target);
  auto result = test_util::run_differential(corner, compiled, 2000, 5u);
  EXPECT_EQ(result.field_mismatches, 0);
  EXPECT_TRUE(result.state_equal);
}

}  // namespace
