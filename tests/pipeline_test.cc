#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "core/normalize.h"
#include "core/parser.h"
#include "core/sema.h"
#include "algorithms/corpus.h"
#include "test_util.h"

namespace domino {
namespace {

TacProgram tac_of(const std::string& src) {
  Program p = parse(src);
  analyze(p);
  return normalize(p).tac;
}

TEST(DepGraphTest, ReadAfterWriteEdge) {
  TacProgram tac = tac_of(
      "struct Packet { int a; int b; int out; };\n"
      "void t(struct Packet pkt) { pkt.b = pkt.a + 1; pkt.out = pkt.b + 2; "
      "}\n");
  DepGraph g = build_dep_graph(tac);
  ASSERT_EQ(g.num_nodes(), 2u);
  ASSERT_EQ(g.edges[0].size(), 1u);
  EXPECT_EQ(g.edges[0][0], 1);
  EXPECT_TRUE(g.edges[1].empty());
}

TEST(DepGraphTest, IndependentStatementsHaveNoEdges) {
  TacProgram tac = tac_of(
      "struct Packet { int a; int b; int x; int y; };\n"
      "void t(struct Packet pkt) { pkt.x = pkt.a + 1; pkt.y = pkt.b + 2; }\n");
  DepGraph g = build_dep_graph(tac);
  EXPECT_TRUE(g.edges[0].empty());
  EXPECT_TRUE(g.edges[1].empty());
}

TEST(DepGraphTest, StatePairEdgesFormCycle) {
  TacProgram tac = tac_of(
      "struct Packet { int out; };\nint s = 0;\n"
      "void t(struct Packet pkt) { s = s + 1; pkt.out = s; }\n");
  DepGraph g = build_dep_graph(tac);
  // Find the read and write statements of s.
  int read = -1, write = -1;
  for (std::size_t i = 0; i < tac.stmts.size(); ++i) {
    if (tac.stmts[i].reads_state()) read = static_cast<int>(i);
    if (tac.stmts[i].writes_state()) write = static_cast<int>(i);
  }
  ASSERT_GE(read, 0);
  ASSERT_GE(write, 0);
  auto has_edge = [&g](int a, int b) {
    const auto& v = g.edges[static_cast<std::size_t>(a)];
    return std::find(v.begin(), v.end(), b) != v.end();
  };
  EXPECT_TRUE(has_edge(read, write));
  EXPECT_TRUE(has_edge(write, read));
}

TEST(SccTest, StateCycleCollapsesIntoOneComponent) {
  TacProgram tac = tac_of(
      "struct Packet { int out; };\nint s = 0;\n"
      "void t(struct Packet pkt) { s = s + 1; pkt.out = s; }\n");
  DepGraph g = build_dep_graph(tac);
  auto sccs = strongly_connected_components(g);
  // read + add + write collapse together; the output copy stays separate.
  std::size_t largest = 0;
  for (const auto& c : sccs) largest = std::max(largest, c.size());
  EXPECT_GE(largest, 2u);
}

TEST(SccTest, StatelessChainHasSingletonComponents) {
  TacProgram tac = tac_of(
      "struct Packet { int a; int b; int out; };\n"
      "void t(struct Packet pkt) { pkt.b = pkt.a + 1; pkt.out = pkt.b + 2; "
      "}\n");
  auto sccs = strongly_connected_components(build_dep_graph(tac));
  for (const auto& c : sccs) EXPECT_EQ(c.size(), 1u);
}

TEST(SccTest, ComponentsAreInTopologicalOrder) {
  TacProgram tac = tac_of(
      "struct Packet { int a; int b; int c; int out; };\n"
      "void t(struct Packet pkt) { pkt.b = pkt.a + 1; pkt.c = pkt.b + 1; "
      "pkt.out = pkt.c + 1; }\n");
  DepGraph g = build_dep_graph(tac);
  auto sccs = strongly_connected_components(g);
  std::map<int, std::size_t> comp_of;
  for (std::size_t k = 0; k < sccs.size(); ++k)
    for (int v : sccs[k]) comp_of[v] = k;
  for (std::size_t v = 0; v < g.num_nodes(); ++v)
    for (int w : g.edges[v])
      if (comp_of[static_cast<int>(v)] != comp_of[w]) {
        EXPECT_LT(comp_of[static_cast<int>(v)], comp_of[w]);
      }
}

TEST(ScheduleTest, DependentStatementsLandInLaterStages) {
  TacProgram tac = tac_of(
      "struct Packet { int a; int b; int out; };\n"
      "void t(struct Packet pkt) { pkt.b = pkt.a + 1; pkt.out = pkt.b + 2; "
      "}\n");
  CodeletPipeline p = pipeline_schedule(tac);
  ASSERT_EQ(p.num_stages(), 2u);
  EXPECT_EQ(p.stages[0].size(), 1u);
  EXPECT_EQ(p.stages[1].size(), 1u);
}

TEST(ScheduleTest, IndependentStatementsShareAStage) {
  TacProgram tac = tac_of(
      "struct Packet { int a; int b; int x; int y; };\n"
      "void t(struct Packet pkt) { pkt.x = pkt.a + 1; pkt.y = pkt.b + 2; }\n");
  CodeletPipeline p = pipeline_schedule(tac);
  EXPECT_EQ(p.num_stages(), 1u);
  EXPECT_EQ(p.stages[0].size(), 2u);
}

TEST(ScheduleTest, AsapIsCriticalPathDepth) {
  // A chain of length 4 must give exactly 4 stages.
  TacProgram tac = tac_of(
      "struct Packet { int a; int t1; int t2; int t3; int out; };\n"
      "void t(struct Packet pkt) {\n"
      "  pkt.t1 = pkt.a + 1;\n  pkt.t2 = pkt.t1 + 1;\n"
      "  pkt.t3 = pkt.t2 + 1;\n  pkt.out = pkt.t3 + 1;\n}\n");
  EXPECT_EQ(pipeline_schedule(tac).num_stages(), 4u);
}

// Property: the schedule respects every dependency edge, for every corpus
// algorithm — a statement's stage is strictly after all its producers
// (within a codelet, ordering inside the atom covers it).
class SchedulePropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulePropertyTest, ScheduleRespectsDependencies) {
  const auto& alg = algorithms::algorithm(GetParam());
  Program p = parse(alg.source);
  analyze(p);
  TacProgram tac = normalize(p).tac;
  CodeletPipeline pipe = pipeline_schedule(tac);

  // stage + codelet of every field definition
  std::map<std::string, std::size_t> def_stage;
  std::map<std::string, const Codelet*> def_codelet;
  for (std::size_t si = 0; si < pipe.stages.size(); ++si)
    for (const auto& c : pipe.stages[si])
      for (const auto& s : c.stmts)
        if (auto w = s.field_written()) {
          def_stage[*w] = si;
          def_codelet[*w] = &c;
        }

  for (std::size_t si = 0; si < pipe.stages.size(); ++si) {
    for (const auto& c : pipe.stages[si]) {
      for (const auto& s : c.stmts) {
        for (const auto& f : s.fields_read()) {
          auto it = def_stage.find(f);
          if (it == def_stage.end()) continue;  // external input
          if (def_codelet[f] == &c) continue;   // intra-codelet dependency
          EXPECT_LT(it->second, si)
              << "field " << f << " read in stage " << si
              << " but defined in stage " << it->second;
        }
      }
    }
  }
}

TEST_P(SchedulePropertyTest, StateConfinedToSingleCodelet) {
  const auto& alg = algorithms::algorithm(GetParam());
  Program p = parse(alg.source);
  analyze(p);
  CodeletPipeline pipe = pipeline_schedule(normalize(p).tac);
  std::map<std::string, const Codelet*> owner;
  for (const auto& st : pipe.stages)
    for (const auto& c : st)
      for (const auto& v : c.state_vars()) {
        auto [it, inserted] = owner.try_emplace(v, &c);
        EXPECT_TRUE(inserted || it->second == &c)
            << "state " << v << " split across codelets";
      }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SchedulePropertyTest,
    ::testing::Values("bloom_filter", "heavy_hitters", "flowlets", "rcp",
                      "sampled_netflow", "hull", "avq", "stfq",
                      "dns_ttl_tracker", "conga", "codel"));

// Cycle-accurate pipelined execution must be engine-independent: the same
// workload through PipelineSim on the closure rung and on the kernel VM
// (per-stage micro-op execution, sim.h) produces identical egress packets,
// identical final state, and the same cycle count.
TEST(PipelineSimTest, ClosureAndKernelEnginesAgreeCycleAccurately) {
  const auto& alg = algorithms::algorithm("flowlets");
  const auto target = test_util::least_target(alg.source);
  ASSERT_TRUE(target.has_value());

  constexpr int kPackets = 200;
  std::vector<std::vector<banzai::Value>> egress[2];
  std::uint64_t cycles[2] = {0, 0};
  const banzai::StateStore* state[2] = {nullptr, nullptr};
  domino::CompileResult compiled[2] = {
      domino::compile(alg.source, *target, [] {
        domino::CompileOptions o;
        o.engine = banzai::ExecEngine::kClosure;
        return o;
      }()),
      domino::compile(alg.source, *target, [] {
        domino::CompileOptions o;
        o.engine = banzai::ExecEngine::kKernel;
        return o;
      }())};

  for (int e = 0; e < 2; ++e) {
    auto& machine = compiled[e].machine();
    banzai::PipelineSim sim(machine);
    std::mt19937 rng(1234);
    for (int i = 0; i < kPackets; ++i) {
      std::map<std::string, banzai::Value> fields;
      alg.workload(rng, i, fields);
      banzai::Packet pkt(machine.fields().size());
      for (const auto& [k, v] : fields)
        if (machine.fields().try_id_of(k).has_value())
          pkt.set(machine.fields().id_of(k), v);
      sim.enqueue(pkt);
    }
    sim.drain();
    cycles[e] = sim.stats().cycles;
    state[e] = &machine.state();
    for (const auto& pkt : sim.egress()) {
      std::vector<banzai::Value> row;
      for (std::size_t f = 0; f < machine.fields().size(); ++f)
        row.push_back(pkt.get(static_cast<banzai::FieldId>(f)));
      egress[e].push_back(std::move(row));
    }
  }

  ASSERT_EQ(egress[0].size(), static_cast<std::size_t>(kPackets));
  EXPECT_EQ(egress[0], egress[1]);
  EXPECT_EQ(cycles[0], cycles[1]);
  EXPECT_TRUE(*state[0] == *state[1]);
}

TEST(DotTest, DependencyGraphDotIsWellFormed) {
  TacProgram tac = tac_of(
      "struct Packet { int a; int out; };\nint s = 0;\n"
      "void t(struct Packet pkt) { s = s + pkt.a; pkt.out = s; }\n");
  std::string dot = dep_graph_dot(tac);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  std::string cdot = condensed_dag_dot(tac);
  EXPECT_NE(cdot.find("digraph"), std::string::npos);
}

}  // namespace
}  // namespace domino
