// Shared helpers for integration tests: drive a compiled Banzai machine and
// the sequential reference interpreter on identical workloads and compare.
#pragma once

#include <map>
#include <random>
#include <string>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/sim.h"
#include "core/compiler.h"
#include "core/interp.h"

namespace test_util {

struct DifferentialResult {
  int field_mismatches = 0;
  bool state_equal = false;
  std::uint64_t cycles = 0;
  int packets = 0;
};

// Runs `num_packets` of the algorithm's seeded workload through (a) the
// sequential interpreter and (b) the compiled machine under cycle-accurate
// pipelined execution, comparing every user packet field and all state.
inline DifferentialResult run_differential(
    const algorithms::AlgorithmInfo& alg, domino::CompileResult& compiled,
    int num_packets, unsigned seed) {
  DifferentialResult result;
  result.packets = num_packets;

  domino::Interpreter interp(compiled.program);
  auto& machine = compiled.machine();
  banzai::PipelineSim sim(machine);

  // Interpreter pass.
  std::mt19937 rng(seed);
  std::vector<std::vector<banzai::Value>> expected;
  for (int i = 0; i < num_packets; ++i) {
    std::map<std::string, banzai::Value> fields;
    alg.workload(rng, i, fields);
    auto pkt = interp.make_packet();
    for (const auto& [k, v] : fields)
      if (interp.fields().try_id_of(k).has_value()) interp.set(pkt, k, v);
    interp.run(pkt);
    std::vector<banzai::Value> row;
    for (const auto& f : compiled.program.packet_fields)
      row.push_back(interp.get(pkt, f.name));
    expected.push_back(std::move(row));
  }

  // Pipelined machine pass on the identical workload.
  std::mt19937 rng2(seed);
  for (int i = 0; i < num_packets; ++i) {
    std::map<std::string, banzai::Value> fields;
    alg.workload(rng2, i, fields);
    banzai::Packet pkt(machine.fields().size());
    for (const auto& [k, v] : fields)
      if (machine.fields().try_id_of(k).has_value())
        pkt.set(machine.fields().id_of(k), v);
    sim.enqueue(pkt);
  }
  sim.drain();
  result.cycles = sim.stats().cycles;

  for (int i = 0; i < num_packets; ++i) {
    std::size_t j = 0;
    for (const auto& f : compiled.program.packet_fields) {
      const auto& final_name = compiled.output_map().count(f.name)
                                   ? compiled.output_map().at(f.name)
                                   : f.name;
      const auto id = machine.fields().id_of(final_name);
      if (sim.egress()[static_cast<std::size_t>(i)].get(id) !=
          expected[static_cast<std::size_t>(i)][j])
        ++result.field_mismatches;
      ++j;
    }
  }
  result.state_equal = interp.state() == machine.state();
  return result;
}

// The least expressive paper target that accepts `source`, if any.
inline std::optional<atoms::BanzaiTarget> least_target(
    const std::string& source) {
  for (const auto& t : atoms::paper_targets()) {
    try {
      domino::compile(source, t);
      return t;
    } catch (const domino::CompileError&) {
    }
  }
  return std::nullopt;
}

}  // namespace test_util
