// Seeded randomized stress for FleetService: random traces driven through
// random interleavings of ingest / flush / stop / start / snapshot → reshard
// → restore, differentially checked against one sequential Machine::process
// replica per state slot.  The reshard step also pins the migration contract
// directly: the state a restored service carries must equal the state of a
// fresh service fed the same prefix from scratch.  Everything is
// deterministic under the trial seed except thread scheduling, which the
// ordered egress sink makes unobservable.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "banzai/service.h"
#include "sim/partition.h"
#include "test_util.h"

namespace {

using algorithms::AlgorithmInfo;
using banzai::Backpressure;
using banzai::FieldId;
using banzai::FleetService;
using banzai::Packet;
using banzai::ServiceConfig;
using banzai::ServiceSnapshot;

constexpr std::size_t kSlots = 8;

struct Harness {
  const AlgorithmInfo& alg;
  domino::CompileResult compiled;
  FieldId flow_field;

  explicit Harness(const std::string& name)
      : alg(algorithms::algorithm(name)),
        compiled(domino::compile(alg.source,
                                 *test_util::least_target(alg.source))),
        flow_field(
            compiled.machine().fields().id_of(alg.input_fields[0])) {}

  const banzai::Machine& machine() { return compiled.machine(); }

  ServiceConfig config(std::size_t shards) const {
    ServiceConfig cfg;
    cfg.num_shards = shards;
    cfg.num_slots = kSlots;
    cfg.batch_size = 32;
    cfg.ring_capacity = 128;
    cfg.backpressure = Backpressure::kBlock;
    cfg.flow_key = {flow_field};
    return cfg;
  }

  Packet make_packet(std::mt19937& rng, int i) {
    std::map<std::string, banzai::Value> fields;
    alg.workload(rng, i, fields);
    Packet pkt(machine().fields().size());
    for (const auto& [k, v] : fields)
      if (machine().fields().try_id_of(k).has_value())
        pkt.set(machine().fields().id_of(k), v);
    std::uniform_int_distribution<int> flow(0, 31);
    pkt.set(flow_field, 1000 + flow(rng));
    return pkt;
  }

  std::size_t slot_of(const Packet& pkt) const {
    const std::uint64_t h = netsim::mix64(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(pkt.get(flow_field))));
    return static_cast<std::size_t>(h % kSlots);
  }
};

std::size_t pick_shards(std::mt19937& rng) {
  const std::size_t choices[] = {1, 2, 4, 8};
  std::uniform_int_distribution<int> d(0, 3);
  return choices[d(rng)];
}

void run_trial(Harness& h, unsigned seed) {
  SCOPED_TRACE(h.alg.name + ", seed " + std::to_string(seed));
  std::mt19937 rng(seed);

  // Sequential reference: one pristine machine per slot.
  std::vector<banzai::Machine> ref;
  ref.reserve(kSlots);
  for (std::size_t v = 0; v < kSlots; ++v) ref.push_back(h.machine().clone());

  std::size_t shards = pick_shards(rng);
  auto svc = std::make_unique<FleetService>(h.machine(), h.config(shards));
  svc->start();

  std::vector<Packet> accepted_log;  // everything offered (kBlock: all accepted)
  std::vector<Packet> expected;      // reference egress, arrival order
  std::vector<Packet> collected;     // service egress, drained incrementally
  int packet_no = 0;
  bool replay_checked = false;
  // Stats counters are per service incarnation; carry them across reshards.
  std::uint64_t carried_ingested = 0, carried_delivered = 0;

  std::uniform_int_distribution<int> op_dist(0, 9);
  std::uniform_int_distribution<int> chunk_dist(1, 150);
  for (int op = 0; op < 30; ++op) {
    const int r = op_dist(rng);
    if (r < 5) {
      const int chunk = chunk_dist(rng);
      for (int i = 0; i < chunk; ++i) {
        Packet pkt = h.make_packet(rng, packet_no++);
        expected.push_back(ref[h.slot_of(pkt)].process(pkt));
        accepted_log.push_back(pkt);
        ASSERT_TRUE(svc->ingest(std::move(pkt)));
      }
    } else if (r < 7) {
      svc->flush();
      const auto egress = svc->drain_egress();
      collected.insert(collected.end(), egress.begin(), egress.end());
      // Flushed egress is the full in-order prefix of the reference stream.
      ASSERT_EQ(collected.size(), expected.size());
    } else if (r < 8) {
      svc->stop();
      svc->start();
    } else {
      // Snapshot → reshard → restore, keeping the egress drained so the
      // in-flight window is empty at the handoff.
      svc->stop();
      const auto egress = svc->drain_egress();
      collected.insert(collected.end(), egress.begin(), egress.end());
      const ServiceSnapshot snap = svc->snapshot();
      ASSERT_EQ(snap.slot_state.size(), kSlots);
      for (std::size_t v = 0; v < kSlots; ++v)
        ASSERT_EQ(snap.slot_state[v], ref[v].state()) << "slot " << v;

      const std::size_t new_shards = pick_shards(rng);
      if (!replay_checked) {
        // The migration contract, pinned directly: a fresh service with the
        // new shard count fed the same accepted prefix from scratch ends in
        // exactly the state the snapshot migrates.
        replay_checked = true;
        FleetService fresh(h.machine(), h.config(new_shards));
        fresh.start();
        ASSERT_EQ(fresh.ingest_all(accepted_log), accepted_log.size());
        fresh.stop();
        const ServiceSnapshot replay = fresh.snapshot();
        for (std::size_t v = 0; v < kSlots; ++v)
          ASSERT_EQ(replay.slot_state[v], snap.slot_state[v])
              << "slot " << v << " after replaying "
              << accepted_log.size() << " packets on " << new_shards
              << " shards";
      }

      const auto parting = svc->stats();
      carried_ingested += parting.ingested;
      carried_delivered += parting.delivered;
      EXPECT_EQ(parting.dropped, 0u);
      svc = std::make_unique<FleetService>(h.machine(), h.config(new_shards));
      svc->restore(snap);
      svc->start();
      shards = new_shards;
    }
  }

  svc->stop();
  const auto egress = svc->drain_egress();
  collected.insert(collected.end(), egress.begin(), egress.end());

  ASSERT_EQ(collected.size(), expected.size());
  for (std::size_t i = 0; i < collected.size(); ++i)
    ASSERT_EQ(collected[i], expected[i]) << "packet " << i;
  for (std::size_t v = 0; v < kSlots; ++v)
    EXPECT_EQ(svc->slot_machine(v).state(), ref[v].state()) << "slot " << v;

  const auto st = svc->stats();
  EXPECT_EQ(carried_ingested + st.ingested, accepted_log.size());
  EXPECT_EQ(carried_delivered + st.delivered, accepted_log.size());
  EXPECT_EQ(st.dropped, 0u);
}

TEST(ServiceFuzzTest, RandomLifecycleInterleavingsMatchSlotReference) {
  for (const char* name : {"flowlets", "sampled_netflow", "stfq"}) {
    Harness h(name);
    for (unsigned seed : {1u, 2u, 3u, 4u}) run_trial(h, seed);
  }
}

// DropTail under random overload: whatever the scheduler does, every offered
// packet is accounted (delivered + dropped == ingested) and the survivors are
// processed bit-exactly in arrival order.
TEST(ServiceFuzzTest, DropTailOverloadKeepsSurvivorsExact) {
  Harness h("flowlets");
  for (unsigned seed : {11u, 12u, 13u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937 rng(seed);
    ServiceConfig cfg = h.config(pick_shards(rng));
    cfg.ring_capacity = 8;
    cfg.batch_size = 8;
    cfg.backpressure = Backpressure::kDropTail;

    FleetService svc(h.machine(), cfg);
    svc.start();
    std::vector<banzai::Machine> ref;
    for (std::size_t v = 0; v < kSlots; ++v) ref.push_back(h.machine().clone());
    std::vector<Packet> expected;
    std::uint64_t offered = 0;
    std::uniform_int_distribution<int> chunk_dist(200, 2000);
    for (int burst = 0; burst < 8; ++burst) {
      const int chunk = chunk_dist(rng);
      for (int i = 0; i < chunk; ++i) {
        Packet pkt = h.make_packet(rng, static_cast<int>(offered));
        ++offered;
        const std::size_t slot = h.slot_of(pkt);
        if (svc.ingest(pkt)) expected.push_back(ref[slot].process(pkt));
      }
    }
    svc.flush();
    const auto egress = svc.drain_egress();
    svc.stop();

    const auto st = svc.stats();
    EXPECT_EQ(st.ingested, offered);
    EXPECT_EQ(st.delivered + st.dropped, st.ingested);
    ASSERT_EQ(egress.size(), expected.size());
    for (std::size_t i = 0; i < egress.size(); ++i)
      ASSERT_EQ(egress[i], expected[i]) << "packet " << i;
  }
}

}  // namespace
