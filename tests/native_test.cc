// The native AOT loader (banzai/native.{h,cc}) and emitter (core/emit.*):
// fallback behaviour when no toolchain exists, the content-hash .so cache,
// deterministic emission, and the Machine-level degradation ladder
// native > kernel > closure.  The engine differential itself lives in
// tests/kernel_test.cc.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <random>
#include <string>

#include "algorithms/corpus.h"
#include "banzai/batch.h"
#include "banzai/native.h"
#include "banzai/native_io.h"
#include "core/compiler.h"
#include "core/emit.h"

namespace {

using banzai::ExecEngine;
using banzai::Machine;
using banzai::Packet;

domino::CompileResult compile_flowlets(const domino::CompileOptions& opts) {
  return domino::compile(algorithms::algorithm("flowlets").source,
                         *atoms::find_target("banzai-praw"), opts);
}

// A per-test cache directory so cache-hit assertions cannot be satisfied by
// another test's (or another run's) leftovers.
std::string fresh_cache_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("domino-native-test-" + tag + "-" +
                    std::to_string(static_cast<long>(::getpid())));
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::vector<Packet> flowlet_workload(const domino::CompileResult& compiled,
                                     int n) {
  const auto& alg = algorithms::algorithm("flowlets");
  std::mt19937 rng(3);
  std::vector<Packet> out;
  for (int i = 0; i < n; ++i) {
    std::map<std::string, banzai::Value> f;
    alg.workload(rng, i, f);
    Packet p(compiled.machine().fields().size());
    for (const auto& [k, v] : f)
      if (compiled.machine().fields().try_id_of(k).has_value())
        p.set(compiled.machine().fields().id_of(k), v);
    out.push_back(std::move(p));
  }
  return out;
}

bool toolchain_available() {
  domino::CompileOptions opts;
  opts.engine = ExecEngine::kNative;
  static const bool available =
      compile_flowlets(opts).machine().native() != nullptr;
  return available;
}

TEST(NativeEmitTest, EmissionIsDeterministicAndSelfDescribing) {
  domino::CompileOptions opts;  // kernel only: emission needs no toolchain
  auto compiled = compile_flowlets(opts);
  const auto* kernel = compiled.machine().kernel();
  ASSERT_NE(kernel, nullptr);
  const std::string once = domino::emit_native_cc(*kernel);
  const std::string twice = domino::emit_native_cc(*kernel);
  EXPECT_EQ(once, twice) << "content-hash caching depends on determinism";
  // The fixed entry point, the per-stage barriers and the state table all
  // appear in the artifact.
  EXPECT_NE(once.find(banzai::kNativeEntrySymbol), std::string::npos);
  EXPECT_NE(once.find("extern \"C\""), std::string::npos);
  for (std::size_t s = 0; s < kernel->num_stages(); ++s)
    EXPECT_NE(once.find("---- stage " + std::to_string(s) + " ----"),
              std::string::npos);
  for (const auto& name : kernel->state_names())
    EXPECT_NE(once.find(name), std::string::npos);
}

TEST(NativeEmitTest, UnsealedProgramsAreRejected) {
  banzai::CompiledPipeline pipe;
  pipe.begin_stage();
  pipe.add_alu(banzai::KOp::kMov, 0, banzai::KSrc::constant(1));
  EXPECT_THROW(domino::emit_native_cc(pipe), std::logic_error);
}

TEST(NativeLoaderTest, MissingToolchainFallsBackWithRecordedReason) {
  domino::CompileOptions opts;
  opts.engine = ExecEngine::kNative;
  opts.native.compiler = "/nonexistent/dominoc-no-such-cxx";
  auto compiled = compile_flowlets(opts);
  Machine& m = compiled.machine();
  // The machine ships without a native pipeline but records why…
  EXPECT_EQ(m.native(), nullptr);
  ASSERT_FALSE(m.native_fallback_reason().empty());
  EXPECT_NE(m.native_fallback_reason().find("not found"), std::string::npos)
      << m.native_fallback_reason();
  // …and a kNative request degrades to the kernel VM, not to a crash: the
  // engine toggle still reads kNative, dispatch resolves to the kernel.
  EXPECT_EQ(m.engine(), ExecEngine::kNative);
  EXPECT_EQ(m.active_native(), nullptr);
  ASSERT_NE(m.active_kernel(), nullptr);
  auto ref = compile_flowlets(domino::CompileOptions{});
  ref.machine().set_engine(ExecEngine::kClosure);
  for (const Packet& p : flowlet_workload(compiled, 500))
    ASSERT_EQ(m.process(p), ref.machine().process(p));
}

TEST(NativeLoaderTest, DisableSwitchFallsBackWithRecordedReason) {
  ::setenv("DOMINO_NATIVE_DISABLE", "1", 1);
  domino::CompileOptions opts;
  opts.engine = ExecEngine::kNative;
  auto compiled = compile_flowlets(opts);
  ::unsetenv("DOMINO_NATIVE_DISABLE");
  EXPECT_EQ(compiled.machine().native(), nullptr);
  EXPECT_NE(
      compiled.machine().native_fallback_reason().find("DOMINO_NATIVE_DISABLE"),
      std::string::npos)
      << compiled.machine().native_fallback_reason();
}

TEST(NativeOptionsTest, FromEnvReadsTheDocumentedKnobs) {
  // The one environment read for the native engine (see the table on
  // NativeOptions): every knob lands in the corresponding field, and
  // clearing the environment restores the documented defaults.
  ::setenv("DOMINO_NATIVE_CXX", "my-cross-cxx", 1);
  ::setenv("DOMINO_NATIVE_CXXFLAGS", "-march=native", 1);
  ::setenv("DOMINO_NATIVE_CACHE", "/tmp/domino-native-env-test", 1);
  ::setenv("DOMINO_NATIVE_DISABLE", "1", 1);
  banzai::NativeOptions o = banzai::NativeOptions::from_env();
  EXPECT_EQ(o.compiler, "my-cross-cxx");
  EXPECT_EQ(o.extra_flags, "-march=native");
  EXPECT_EQ(o.cache_dir, "/tmp/domino-native-env-test");
  EXPECT_TRUE(o.disabled);

  ::unsetenv("DOMINO_NATIVE_CXX");
  ::unsetenv("DOMINO_NATIVE_CXXFLAGS");
  ::unsetenv("DOMINO_NATIVE_CACHE");
  ::unsetenv("DOMINO_NATIVE_DISABLE");
  banzai::NativeOptions d = banzai::NativeOptions::from_env();
  EXPECT_FALSE(d.compiler.has_value());
  EXPECT_FALSE(d.extra_flags.has_value());
  EXPECT_FALSE(d.cache_dir.has_value())
      << "unset variables stay disengaged so the built-in default ("
      << banzai::kDefaultNativeCacheDir << ") applies downstream";
  EXPECT_FALSE(d.disabled);
}

TEST(NativeOptionsTest, EngagedEmptyExtraFlagsOverrideTheEnvironment) {
  // The explicit-presence regression: with DOMINO_NATIVE_CXXFLAGS set to
  // something that breaks every compile, a caller must still be able to
  // force "no extra flags" by engaging the field with an empty value.  The
  // old empty-means-unset merge made that impossible.
  if (!toolchain_available()) GTEST_SKIP() << "no host C++ compiler";
  domino::CompileOptions opts;
  auto compiled = compile_flowlets(opts);
  const auto* kernel = compiled.machine().kernel();
  ASSERT_NE(kernel, nullptr);
  const std::string source = domino::emit_native_cc(*kernel);

  ::setenv("DOMINO_NATIVE_CXXFLAGS", "-fdomino-no-such-flag", 1);
  banzai::NativeOptions nopts;
  nopts.cache_dir = fresh_cache_dir("presence");

  // Disengaged extra_flags fall through to the broken environment value…
  auto env_flags =
      banzai::NativePipeline::compile_and_load(*kernel, source, nopts);
  EXPECT_EQ(env_flags.pipeline, nullptr);
  EXPECT_NE(env_flags.error.find("host compile failed"), std::string::npos)
      << env_flags.error;

  // …while an engaged-but-empty field overrides it and the compile succeeds.
  nopts.extra_flags = "";
  auto forced =
      banzai::NativePipeline::compile_and_load(*kernel, source, nopts);
  ::unsetenv("DOMINO_NATIVE_CXXFLAGS");
  EXPECT_NE(forced.pipeline, nullptr) << forced.error;

  std::filesystem::remove_all(*nopts.cache_dir);
}

TEST(NativeOptionsTest, EngagedCacheDirWinsOverTheEnvironment) {
  if (!toolchain_available()) GTEST_SKIP() << "no host C++ compiler";
  domino::CompileOptions opts;
  auto compiled = compile_flowlets(opts);
  const auto* kernel = compiled.machine().kernel();
  ASSERT_NE(kernel, nullptr);
  const std::string source = domino::emit_native_cc(*kernel);

  const std::string env_dir = fresh_cache_dir("cache-env");
  const std::string opt_dir = fresh_cache_dir("cache-opt");
  ::setenv("DOMINO_NATIVE_CACHE", env_dir.c_str(), 1);

  // Disengaged cache_dir resolves through the environment…
  banzai::NativeOptions nopts;
  auto via_env =
      banzai::NativePipeline::compile_and_load(*kernel, source, nopts);
  ASSERT_NE(via_env.pipeline, nullptr) << via_env.error;
  EXPECT_EQ(via_env.so_path.rfind(env_dir, 0), 0u) << via_env.so_path;

  // …and an engaged option beats the set variable.
  nopts.cache_dir = opt_dir;
  auto via_opt =
      banzai::NativePipeline::compile_and_load(*kernel, source, nopts);
  ::unsetenv("DOMINO_NATIVE_CACHE");
  ASSERT_NE(via_opt.pipeline, nullptr) << via_opt.error;
  EXPECT_EQ(via_opt.so_path.rfind(opt_dir, 0), 0u) << via_opt.so_path;

  std::filesystem::remove_all(env_dir);
  std::filesystem::remove_all(opt_dir);
}

TEST(NativeLoaderTest, HostTunedFlagsViaEnvProduceADistinctAgreeingObject) {
  // The -march=native tuning recipe from the NativeOptions docs: exporting
  // DOMINO_NATIVE_CXXFLAGS retunes the build without touching code, the
  // retuned object caches under its own hash, and it stays bit-exact with
  // the kernel VM (tuning may change speed, never results).
  if (!toolchain_available()) GTEST_SKIP() << "no host C++ compiler";
  domino::CompileOptions opts;
  auto compiled = compile_flowlets(opts);
  const auto* kernel = compiled.machine().kernel();
  ASSERT_NE(kernel, nullptr);
  const std::string source = domino::emit_native_cc(*kernel);

  banzai::NativeOptions nopts;
  nopts.cache_dir = fresh_cache_dir("march");
  auto generic =
      banzai::NativePipeline::compile_and_load(*kernel, source, nopts);
  ASSERT_NE(generic.pipeline, nullptr) << generic.error;

  ::setenv("DOMINO_NATIVE_CXXFLAGS", "-march=native", 1);
  auto tuned = banzai::NativePipeline::compile_and_load(*kernel, source, nopts);
  ::unsetenv("DOMINO_NATIVE_CXXFLAGS");
  if (tuned.pipeline == nullptr) {
    std::filesystem::remove_all(*nopts.cache_dir);
    GTEST_SKIP() << "host compiler rejects -march=native: " << tuned.error;
  }
  EXPECT_FALSE(tuned.cache_hit) << "env flags participate in the cache key";
  EXPECT_NE(generic.so_path, tuned.so_path);

  Machine m = compiled.machine().clone();
  m.set_native(tuned.pipeline);
  m.set_engine(ExecEngine::kNative);
  ASSERT_NE(m.active_native(), nullptr);
  Machine ref = compiled.machine().clone();
  ref.set_engine(ExecEngine::kKernel);
  for (const Packet& p : flowlet_workload(compiled, 1000))
    ASSERT_EQ(m.process(p), ref.process(p));
  EXPECT_TRUE(m.state() == ref.state());
  std::filesystem::remove_all(*nopts.cache_dir);
}

TEST(NativeLoaderTest, ColumnarEntryPointIsExportedAndAgreesWithRows) {
  // Both entry points live in one emitted TU, so a freshly built .so always
  // exports the columnar symbol; has_columnar() observes it, and columnar
  // dispatch through the native engine matches row dispatch packet for
  // packet and state cell for state cell.
  if (!toolchain_available()) GTEST_SKIP() << "no host C++ compiler";
  domino::CompileOptions opts;
  opts.engine = ExecEngine::kNative;
  auto compiled = compile_flowlets(opts);
  ASSERT_NE(compiled.machine().native(), nullptr)
      << compiled.machine().native_fallback_reason();
  EXPECT_TRUE(compiled.machine().native()->has_columnar());
  const std::string source =
      domino::emit_native_cc(*compiled.machine().kernel());
  EXPECT_NE(source.find(banzai::kNativeColsEntrySymbol), std::string::npos);

  Machine rows = compiled.machine().clone();
  Machine cols = compiled.machine().clone();
  banzai::BatchSim rsim(rows, 64, banzai::BatchDispatch::kRows);
  banzai::BatchSim csim(cols, 64, banzai::BatchDispatch::kColumnar);
  const auto trace = flowlet_workload(compiled, 2000);
  rsim.enqueue(trace);
  csim.enqueue(trace);
  rsim.run();
  csim.run();
  EXPECT_EQ(csim.stats().columnar_batches, csim.stats().batches);
  EXPECT_EQ(rsim.stats().columnar_batches, 0u);
  ASSERT_EQ(rsim.egress().size(), csim.egress().size());
  for (std::size_t i = 0; i < rsim.egress().size(); ++i)
    ASSERT_EQ(rsim.egress()[i], csim.egress()[i]) << "packet " << i;
  EXPECT_TRUE(rows.state() == cols.state());
}

TEST(NativeLoaderTest, SecondLoadOfTheSameProgramHitsTheSoCache) {
  if (!toolchain_available()) GTEST_SKIP() << "no host C++ compiler";
  domino::CompileOptions opts;
  auto compiled = compile_flowlets(opts);
  const auto* kernel = compiled.machine().kernel();
  ASSERT_NE(kernel, nullptr);
  const std::string source = domino::emit_native_cc(*kernel);

  banzai::NativeOptions nopts;
  nopts.cache_dir = fresh_cache_dir("cachehit");
  auto first = banzai::NativePipeline::compile_and_load(*kernel, source, nopts);
  ASSERT_NE(first.pipeline, nullptr) << first.error;
  EXPECT_FALSE(first.cache_hit) << "fresh cache dir cannot hit";
  EXPECT_TRUE(std::filesystem::exists(first.so_path));
  EXPECT_TRUE(std::filesystem::exists(first.source_path));

  auto second =
      banzai::NativePipeline::compile_and_load(*kernel, source, nopts);
  ASSERT_NE(second.pipeline, nullptr) << second.error;
  EXPECT_TRUE(second.cache_hit) << "identical source+flags must reuse the .so";
  EXPECT_EQ(first.so_path, second.so_path);

  // Both handles execute, and agree.
  Machine a = compiled.machine().clone();
  Machine b = compiled.machine().clone();
  a.set_native(first.pipeline);
  b.set_native(second.pipeline);
  a.set_engine(ExecEngine::kNative);
  b.set_engine(ExecEngine::kNative);
  ASSERT_NE(a.active_native(), nullptr);
  for (const Packet& p : flowlet_workload(compiled, 500))
    ASSERT_EQ(a.process(p), b.process(p));
  EXPECT_TRUE(a.state() == b.state());

  std::filesystem::remove_all(*nopts.cache_dir);
}

TEST(NativeLoaderTest, FlagChangeMissesTheCache) {
  if (!toolchain_available()) GTEST_SKIP() << "no host C++ compiler";
  domino::CompileOptions opts;
  auto compiled = compile_flowlets(opts);
  const std::string source =
      domino::emit_native_cc(*compiled.machine().kernel());

  banzai::NativeOptions nopts;
  nopts.cache_dir = fresh_cache_dir("flags");
  auto plain = banzai::NativePipeline::compile_and_load(
      *compiled.machine().kernel(), source, nopts);
  ASSERT_NE(plain.pipeline, nullptr) << plain.error;
  nopts.extra_flags = "-O1";
  auto flagged = banzai::NativePipeline::compile_and_load(
      *compiled.machine().kernel(), source, nopts);
  ASSERT_NE(flagged.pipeline, nullptr) << flagged.error;
  EXPECT_FALSE(flagged.cache_hit)
      << "a flag change must produce a distinct cached object";
  EXPECT_NE(plain.so_path, flagged.so_path);
  std::filesystem::remove_all(*nopts.cache_dir);
}

TEST(NativeLoaderTest, BrokenSourceReportsTheCompilerError) {
  if (!toolchain_available()) GTEST_SKIP() << "no host C++ compiler";
  domino::CompileOptions opts;
  auto compiled = compile_flowlets(opts);
  banzai::NativeOptions nopts;
  nopts.cache_dir = fresh_cache_dir("broken");
  auto result = banzai::NativePipeline::compile_and_load(
      *compiled.machine().kernel(), "this is not C++ at all {", nopts);
  EXPECT_EQ(result.pipeline, nullptr);
  EXPECT_NE(result.error.find("host compile failed"), std::string::npos)
      << result.error;
  std::filesystem::remove_all(*nopts.cache_dir);
}

TEST(NativeIoTest, ReadFileReportsFailureInsteadOfEmptySuccess) {
  // The regression the loader hit: read_file() used to return "" for both
  // "empty log" and "log unreadable", so compile diagnostics could silently
  // vanish.  Failure is now an explicit false.
  std::string out = "sentinel";
  EXPECT_FALSE(
      banzai::native_io::read_file("/nonexistent/dir/no-such-file", out));
  EXPECT_TRUE(out.empty()) << "failed reads must not leave stale data";
  // A directory is unreadable-as-file, not an empty file.
  EXPECT_FALSE(banzai::native_io::read_file(
      std::filesystem::temp_directory_path().string(), out));
}

TEST(NativeIoTest, WriteReadRoundTripAndWriteFailure) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("domino-native-io-" +
                    std::to_string(static_cast<long>(::getpid())));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "blob.bin").string();
  const std::string payload("a\0b\nbinary \xff payload", 19);
  ASSERT_TRUE(banzai::native_io::write_file(path, payload));
  std::string back;
  ASSERT_TRUE(banzai::native_io::read_file(path, back));
  EXPECT_EQ(back, payload);
  // Writing to a path that is a directory must fail loudly, not no-op.
  EXPECT_FALSE(banzai::native_io::write_file(dir.string(), "x"));
  // Zero-byte file: success with an empty result, distinct from failure.
  ASSERT_TRUE(banzai::native_io::write_file(path, ""));
  back = "sentinel";
  EXPECT_TRUE(banzai::native_io::read_file(path, back));
  EXPECT_TRUE(back.empty());
  std::filesystem::remove_all(dir);
}

TEST(NativeIoTest, CompileLogTailKeepsTheEndAndFlagsUnreadableLogs) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("domino-native-log-" +
                    std::to_string(static_cast<long>(::getpid())));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "compile.log").string();
  // A log longer than the tail budget: the fatal diagnostic at the end
  // must survive, the preamble is what gets elided.
  std::string log(3 * banzai::native_io::kCompileLogTailBytes, '.');
  log += "\nerror: the actual diagnostic";
  ASSERT_TRUE(banzai::native_io::write_file(path, log));
  const std::string tail = banzai::native_io::compile_log_tail(path);
  EXPECT_LE(tail.size(), banzai::native_io::kCompileLogTailBytes + 64);
  EXPECT_NE(tail.find("error: the actual diagnostic"), std::string::npos);
  EXPECT_EQ(tail.rfind("[...log truncated...]", 0), 0u) << tail.substr(0, 80);
  // Unreadable log: a marker naming the path, never a silent empty string.
  const std::string missing =
      banzai::native_io::compile_log_tail((dir / "no-such.log").string());
  EXPECT_NE(missing.find("compile log unreadable"), std::string::npos);
  EXPECT_NE(missing.find("no-such.log"), std::string::npos);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Cache hygiene: stats / clear / LRU sweep (banzai/native.h).
// ---------------------------------------------------------------------------

// Fabricates one cache entry (<hash>.so + <hash>.cc) with a controlled
// last-use time, so the sweep's atime-keyed LRU order is deterministic.
void make_cache_entry(const std::string& dir, const std::string& hash,
                      std::size_t so_bytes, std::size_t cc_bytes,
                      std::time_t used_at) {
  std::filesystem::create_directories(dir);
  for (const auto& [ext, bytes] :
       {std::pair<const char*, std::size_t>{".so", so_bytes},
        std::pair<const char*, std::size_t>{".cc", cc_bytes}}) {
    const std::string path = dir + "/" + hash + ext;
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    const std::string fill(bytes, 'x');
    std::fwrite(fill.data(), 1, fill.size(), f);
    std::fclose(f);
    timespec times[2];
    times[0].tv_sec = used_at;  // atime: what the sweep keys on
    times[0].tv_nsec = 0;
    times[1].tv_sec = used_at;  // mtime kept equal for tidiness
    times[1].tv_nsec = 0;
    ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0) << path;
  }
}

TEST(NativeCacheHygieneTest, StatsCountObjectsSourcesAndBytes) {
  const std::string dir = fresh_cache_dir("hygiene-stats");
  make_cache_entry(dir, "00000000000000aa", 1000, 200, 1000000);
  make_cache_entry(dir, "00000000000000bb", 1000, 200, 1000001);
  const banzai::NativeCacheStats st = banzai::native_cache_stats(dir);
  EXPECT_EQ(st.dir, dir);
  EXPECT_EQ(st.objects, 2u);
  EXPECT_EQ(st.sources, 2u);
  EXPECT_EQ(st.total_bytes, 2u * (1000 + 200));
  std::filesystem::remove_all(dir);
}

TEST(NativeCacheHygieneTest, SweepEvictsOldestUseFirstAndEnforcesTheCap) {
  const std::string dir = fresh_cache_dir("hygiene-sweep");
  // Three entries of 1200 bytes each with strictly ordered last-use times:
  // aa (oldest) < bb < cc (newest).
  make_cache_entry(dir, "00000000000000aa", 1000, 200, 1000000);
  make_cache_entry(dir, "00000000000000bb", 1000, 200, 2000000);
  make_cache_entry(dir, "00000000000000cc", 1000, 200, 3000000);

  // Cap above the total: nothing to do.
  EXPECT_EQ(banzai::native_cache_sweep(10000, dir), 0u);
  EXPECT_EQ(banzai::native_cache_stats(dir).objects, 3u);

  // Cap that two entries fit under: the oldest-used entry goes, .so and .cc
  // together (entries are whole-unit evictions keyed by the hash stem).
  EXPECT_EQ(banzai::native_cache_sweep(2500, dir), 2u);
  banzai::NativeCacheStats st = banzai::native_cache_stats(dir);
  EXPECT_EQ(st.objects, 2u);
  EXPECT_EQ(st.total_bytes, 2u * 1200);
  EXPECT_FALSE(std::filesystem::exists(dir + "/00000000000000aa.so"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/00000000000000bb.so"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/00000000000000cc.so"));

  // Tighten below one entry: everything evictable goes.
  EXPECT_EQ(banzai::native_cache_sweep(100, dir), 4u);
  EXPECT_EQ(banzai::native_cache_stats(dir).total_bytes, 0u);
  std::filesystem::remove_all(dir);
}

TEST(NativeCacheHygieneTest, SweepSparesTheKeepHashEvenWhenOldest) {
  const std::string dir = fresh_cache_dir("hygiene-keep");
  make_cache_entry(dir, "00000000000000aa", 1000, 200, 1000000);  // oldest
  make_cache_entry(dir, "00000000000000bb", 1000, 200, 2000000);
  // keep_hash protects the just-loaded entry no matter its age: the sweep
  // must evict bb (newer) because aa is pinned.
  EXPECT_EQ(banzai::native_cache_sweep(1500, dir, "00000000000000aa"), 2u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/00000000000000aa.so"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/00000000000000bb.so"));
  std::filesystem::remove_all(dir);
}

TEST(NativeCacheHygieneTest, ClearRemovesEverything) {
  const std::string dir = fresh_cache_dir("hygiene-clear");
  make_cache_entry(dir, "00000000000000aa", 100, 50, 1000000);
  make_cache_entry(dir, "00000000000000bb", 100, 50, 1000001);
  EXPECT_EQ(banzai::native_cache_clear(dir), 4u);
  const banzai::NativeCacheStats st = banzai::native_cache_stats(dir);
  EXPECT_EQ(st.objects, 0u);
  EXPECT_EQ(st.sources, 0u);
  EXPECT_EQ(st.total_bytes, 0u);
  std::filesystem::remove_all(dir);
}

TEST(NativeCacheHygieneTest, MaxBytesKnobReadsFromTheEnvironment) {
  ::setenv("DOMINO_NATIVE_CACHE_MAX_BYTES", "123456", 1);
  banzai::NativeOptions o = banzai::NativeOptions::from_env();
  ASSERT_TRUE(o.cache_max_bytes.has_value());
  EXPECT_EQ(*o.cache_max_bytes, 123456u);
  // Garbage stays disengaged rather than engaging a bogus cap.
  ::setenv("DOMINO_NATIVE_CACHE_MAX_BYTES", "12x", 1);
  EXPECT_FALSE(banzai::NativeOptions::from_env().cache_max_bytes.has_value());
  ::unsetenv("DOMINO_NATIVE_CACHE_MAX_BYTES");
  EXPECT_FALSE(banzai::NativeOptions::from_env().cache_max_bytes.has_value());
}

TEST(NativeCacheHygieneTest, LoadWithCapSweepsButSparesTheLoadedEntry) {
  if (!toolchain_available()) GTEST_SKIP() << "no host C++ compiler";
  domino::CompileOptions copts;
  auto compiled = compile_flowlets(copts);
  const auto* kernel = compiled.machine().kernel();
  ASSERT_NE(kernel, nullptr);
  const std::string source = domino::emit_native_cc(*kernel);

  banzai::NativeOptions nopts;
  nopts.cache_dir = fresh_cache_dir("hygiene-load");
  // Seed a stale decoy entry, then load with a cap far below the combined
  // size: the decoy must be evicted, the entry just compiled must survive
  // (keep_hash pins it even though the sweep runs at load time).
  make_cache_entry(*nopts.cache_dir, "00000000000000dd", 4096, 512, 1000000);
  nopts.cache_max_bytes = 1;
  auto load = banzai::NativePipeline::compile_and_load(*kernel, source, nopts);
  ASSERT_NE(load.pipeline, nullptr) << load.error;
  EXPECT_FALSE(
      std::filesystem::exists(*nopts.cache_dir + "/00000000000000dd.so"));
  const banzai::NativeCacheStats st =
      banzai::native_cache_stats(*nopts.cache_dir);
  EXPECT_EQ(st.objects, 1u) << "the freshly loaded .so must survive its own "
                               "sweep";
  std::filesystem::remove_all(*nopts.cache_dir);
}

TEST(NativeLoaderTest, NativeMachinesShareThePipelineAcrossClones) {
  if (!toolchain_available()) GTEST_SKIP() << "no host C++ compiler";
  domino::CompileOptions opts;
  opts.engine = ExecEngine::kNative;
  auto compiled = compile_flowlets(opts);
  ASSERT_NE(compiled.machine().native(), nullptr)
      << compiled.machine().native_fallback_reason();
  Machine a = compiled.machine().clone();
  Machine b = compiled.machine().clone();
  EXPECT_EQ(a.native(), b.native()) << "clones share the loaded .so";
  // Independent state: interleaved processing must match two independent
  // closure machines fed the same split.
  Machine ra = compiled.machine().clone();
  Machine rb = compiled.machine().clone();
  ra.set_engine(ExecEngine::kClosure);
  rb.set_engine(ExecEngine::kClosure);
  const auto trace = flowlet_workload(compiled, 1000);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i % 2 == 0)
      ASSERT_EQ(a.process(trace[i]), ra.process(trace[i])) << i;
    else
      ASSERT_EQ(b.process(trace[i]), rb.process(trace[i])) << i;
  }
  EXPECT_TRUE(a.state() == ra.state());
  EXPECT_TRUE(b.state() == rb.state());
}

}  // namespace
