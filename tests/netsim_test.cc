// Tests for the workload substrate: deterministic RNG, Zipf sampling,
// trace generation, the FIFO queue simulator and the leaf-spine fabric.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "sim/fabric.h"
#include "sim/queue.h"
#include "sim/rng.h"
#include "sim/tracegen.h"
#include "sim/zipf.h"

namespace netsim {
namespace {

TEST(RngTest, SplitMixDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, XoshiroDeterministicAndSeedSensitive) {
  Xoshiro256 a(1), b(1), c(2);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(7), 7u);
}

TEST(RngTest, RangeInclusive) {
  Xoshiro256 rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(ZipfTest, ZeroSupportThrows) {
  // Regression: the seed constructor dereferenced cdf_.back() on an empty
  // vector when n == 0 (UB); now it refuses the degenerate support.
  EXPECT_THROW(Zipf(0, 1.1), std::invalid_argument);
}

TEST(ZipfTest, SingletonSupportAlwaysSamplesZero) {
  Zipf z(1, 1.1);
  Xoshiro256 rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(ZipfTest, RankOneIsMostPopular) {
  Zipf z(100, 1.2);
  Xoshiro256 rng(6);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.sample(rng)]++;
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], 50000 / 10);  // head is heavy
}

TEST(ZipfTest, SamplesCoverTail) {
  Zipf z(50, 1.0);
  Xoshiro256 rng(7);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.sample(rng)]++;
  int distinct = static_cast<int>(counts.size());
  EXPECT_GT(distinct, 40);  // nearly all ranks appear
}

TEST(TraceGenTest, DeterministicUnderSeed) {
  FlowTraceConfig c;
  c.num_packets = 500;
  auto t1 = generate_flow_trace(c);
  auto t2 = generate_flow_trace(c);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].arrival, t2[i].arrival);
    EXPECT_EQ(t1[i].flow_id, t2[i].flow_id);
  }
}

TEST(TraceGenTest, PerFlowArrivalsMonotone) {
  FlowTraceConfig c;
  c.num_packets = 5000;
  auto trace = generate_flow_trace(c);
  std::map<std::int32_t, std::int64_t> last;
  for (const auto& p : trace) {
    auto it = last.find(p.flow_id);
    if (it != last.end()) {
      EXPECT_GE(p.arrival, it->second);
    }
    last[p.flow_id] = p.arrival;
  }
}

TEST(TraceGenTest, ContainsFlowletGaps) {
  FlowTraceConfig c;
  c.num_packets = 20000;
  c.num_flows = 20;
  auto trace = generate_flow_trace(c);
  // Some per-flow gaps exceed the inter-burst threshold, some don't: both
  // flowlet continuation and re-pinning are exercised.
  std::map<std::int32_t, std::int64_t> last;
  int large = 0, small = 0;
  for (const auto& p : trace) {
    auto it = last.find(p.flow_id);
    if (it != last.end()) {
      ((p.arrival - it->second >= c.inter_burst_gap) ? large : small)++;
    }
    last[p.flow_id] = p.arrival;
  }
  EXPECT_GT(large, 100);
  EXPECT_GT(small, 100);
}

TEST(TraceGenTest, PacketSizesWithinEthernetBounds) {
  FlowTraceConfig c;
  c.num_packets = 2000;
  for (const auto& p : generate_flow_trace(c)) {
    EXPECT_GE(p.size_bytes, 64);
    EXPECT_LE(p.size_bytes, 1500);
  }
}

TEST(ArrivalTraceTest, ArrivalsStrictlyIncrease) {
  ArrivalTraceConfig c;
  c.num_packets = 2000;
  auto trace = generate_arrival_trace(c);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GT(trace[i].arrival, trace[i - 1].arrival);
}

TEST(QueueSimTest, DeparturesAfterArrivals) {
  ArrivalTraceConfig c;
  c.num_packets = 2000;
  auto samples = simulate_queue(generate_arrival_trace(c), {});
  for (const auto& s : samples) {
    EXPECT_GE(s.departure, s.arrival);
    EXPECT_EQ(s.sojourn, s.departure - s.arrival);
    EXPECT_GE(s.qlen_bytes, 0);
  }
}

TEST(QueueSimTest, FifoOrderPreserved) {
  ArrivalTraceConfig c;
  c.num_packets = 2000;
  auto samples = simulate_queue(generate_arrival_trace(c), {});
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_GE(samples[i].departure, samples[i - 1].departure);
}

TEST(QueueSimTest, HighLoadBuildsQueue) {
  ArrivalTraceConfig heavy;
  heavy.num_packets = 5000;
  heavy.load = 3.0;  // overloaded
  QueueConfig qc;
  qc.bytes_per_tick = 300;
  auto hs = simulate_queue(generate_arrival_trace(heavy), qc);

  ArrivalTraceConfig light = heavy;
  light.load = 0.2;
  auto ls = simulate_queue(generate_arrival_trace(light), qc);

  double h_delay = 0, l_delay = 0;
  for (const auto& s : hs) h_delay += s.sojourn;
  for (const auto& s : ls) l_delay += s.sojourn;
  EXPECT_GT(h_delay / static_cast<double>(hs.size()),
            5 * l_delay / static_cast<double>(ls.size()));
}

TEST(QueueSimTest, SojournAtLeastServiceTime) {
  ArrivalTraceConfig c;
  c.num_packets = 3000;
  QueueConfig qc;
  qc.bytes_per_tick = 500;
  for (const auto& s : simulate_queue(generate_arrival_trace(c), qc)) {
    const std::int64_t service =
        std::max<std::int64_t>(1, (s.size_bytes + qc.bytes_per_tick - 1) /
                                      qc.bytes_per_tick);
    EXPECT_GE(s.sojourn, service);
  }
}

TEST(QueueSimTest, ByteConservationWithFiniteBuffer) {
  ArrivalTraceConfig c;
  c.num_packets = 5000;
  c.load = 2.5;
  const auto trace = generate_arrival_trace(c);
  QueueConfig qc;
  qc.bytes_per_tick = 200;
  qc.capacity_bytes = 8000;
  ByteQueue q(qc);
  std::int64_t offered = 0, accepted = 0, dropped = 0;
  for (const auto& p : trace) {
    const auto s = q.offer(p.arrival, p.size_bytes);
    offered += p.size_bytes;
    (s.dropped ? dropped : accepted) += p.size_bytes;
  }
  EXPECT_EQ(q.offered_bytes(), offered);
  EXPECT_EQ(q.accepted_bytes(), accepted);
  EXPECT_EQ(q.dropped_bytes(), dropped);
  EXPECT_EQ(q.offered_bytes(), q.accepted_bytes() + q.dropped_bytes());
  EXPECT_EQ(q.offered_pkts(), q.accepted_pkts() + q.dropped_pkts());
  EXPECT_GT(q.dropped_pkts(), 0);
}

TEST(QueueSimTest, DropAccountingUnderOverload) {
  ArrivalTraceConfig c;
  c.num_packets = 5000;
  c.load = 3.0;
  QueueConfig qc;
  qc.bytes_per_tick = 150;
  qc.capacity_bytes = 10000;
  const auto samples = simulate_queue(generate_arrival_trace(c), qc);
  int drops = 0;
  for (const auto& s : samples) {
    if (s.dropped) {
      ++drops;
      // Drop-tail: the packet found a buffer it could not fit into, and was
      // never serviced.
      EXPECT_GT(s.qlen_bytes + s.size_bytes, qc.capacity_bytes);
      EXPECT_EQ(s.departure, s.arrival);
      EXPECT_EQ(s.sojourn, 0);
    } else {
      EXPECT_LE(s.qlen_bytes + s.size_bytes, qc.capacity_bytes);
    }
  }
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, static_cast<int>(samples.size()));  // some still accepted
}

TEST(QueueSimTest, AcceptedDeparturesMonotoneWithDrops) {
  ArrivalTraceConfig c;
  c.num_packets = 4000;
  c.load = 2.0;
  QueueConfig qc;
  qc.bytes_per_tick = 250;
  qc.capacity_bytes = 12000;
  const auto samples = simulate_queue(generate_arrival_trace(c), qc);
  std::int64_t last = -1;
  for (const auto& s : samples) {
    if (s.dropped) continue;
    EXPECT_GE(s.departure, last);
    last = s.departure;
  }
}

TEST(QueueSimTest, EcnMarksExactlyAtThreshold) {
  ArrivalTraceConfig c;
  c.num_packets = 5000;
  c.load = 2.0;
  QueueConfig qc;
  qc.bytes_per_tick = 250;
  qc.ecn_threshold_bytes = 4000;
  const auto samples = simulate_queue(generate_arrival_trace(c), qc);
  int marks = 0;
  for (const auto& s : samples) {
    EXPECT_EQ(s.ecn_marked, s.qlen_bytes >= qc.ecn_threshold_bytes);
    marks += s.ecn_marked;
  }
  EXPECT_GT(marks, 0);
  EXPECT_LT(marks, static_cast<int>(samples.size()));
}

TEST(QueueSimTest, Int64TicksSurviveLateAndLongTraces) {
  // Regression for the seed's int32 narrowing: departures past 2^31 ticks
  // and sojourns past 2^31 must come back intact.
  std::vector<TracePacket> late;
  const std::int64_t base = std::int64_t{3'000'000'000};  // > INT32_MAX
  for (int i = 0; i < 100; ++i) {
    TracePacket p;
    p.arrival = base + i;
    p.size_bytes = 1500;
    late.push_back(p);
  }
  QueueConfig qc;
  qc.bytes_per_tick = 1000;
  for (const auto& s : simulate_queue(late, qc)) {
    EXPECT_GE(s.departure, base);
    EXPECT_GE(s.sojourn, 0);
    EXPECT_EQ(s.sojourn, s.departure - s.arrival);
  }

  // All-at-once burst of jumbo transfers: the last packet's sojourn alone
  // exceeds int32 (the seed's int32 sojourn wrapped negative here).
  std::vector<TracePacket> burst;
  for (int i = 0; i < 3; ++i) {
    TracePacket p;
    p.arrival = 0;
    p.size_bytes = 1'000'000'000;
    burst.push_back(p);
  }
  QueueConfig slow;
  slow.bytes_per_tick = 1;  // 1e9 ticks of service per packet
  const auto samples = simulate_queue(burst, slow);
  EXPECT_GT(samples.back().sojourn, std::int64_t{INT32_MAX});
  EXPECT_EQ(samples.back().departure, std::int64_t{1'000'000'000} * 3);
}

TEST(FabricTest, BestPathTracksLoad) {
  LeafSpineFabric fabric(4, 4, 11);
  fabric.add_load(0, 0, 1000);
  fabric.add_load(0, 1, 2000);
  fabric.add_load(0, 3, 500);
  EXPECT_EQ(fabric.best_path(0), 2);  // untouched path
  fabric.add_load(0, 2, 5000);
  EXPECT_EQ(fabric.best_path(0), 3);
}

TEST(FabricTest, DrainReducesUtilization) {
  LeafSpineFabric fabric(2, 2, 12);
  fabric.add_load(1, 1, 300);
  fabric.drain(100);
  EXPECT_EQ(fabric.utilization(1, 1), 200);
  fabric.drain(1000);
  EXPECT_EQ(fabric.utilization(1, 1), 0);  // clamps at zero
}

}  // namespace
}  // namespace netsim
