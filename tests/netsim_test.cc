// Tests for the workload substrate: deterministic RNG, Zipf sampling,
// trace generation, the FIFO queue simulator and the leaf-spine fabric.
#include <gtest/gtest.h>

#include <map>

#include "sim/fabric.h"
#include "sim/queue.h"
#include "sim/rng.h"
#include "sim/tracegen.h"
#include "sim/zipf.h"

namespace netsim {
namespace {

TEST(RngTest, SplitMixDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, XoshiroDeterministicAndSeedSensitive) {
  Xoshiro256 a(1), b(1), c(2);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(7), 7u);
}

TEST(RngTest, RangeInclusive) {
  Xoshiro256 rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(ZipfTest, RankOneIsMostPopular) {
  Zipf z(100, 1.2);
  Xoshiro256 rng(6);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.sample(rng)]++;
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], 50000 / 10);  // head is heavy
}

TEST(ZipfTest, SamplesCoverTail) {
  Zipf z(50, 1.0);
  Xoshiro256 rng(7);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.sample(rng)]++;
  int distinct = static_cast<int>(counts.size());
  EXPECT_GT(distinct, 40);  // nearly all ranks appear
}

TEST(TraceGenTest, DeterministicUnderSeed) {
  FlowTraceConfig c;
  c.num_packets = 500;
  auto t1 = generate_flow_trace(c);
  auto t2 = generate_flow_trace(c);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].arrival, t2[i].arrival);
    EXPECT_EQ(t1[i].flow_id, t2[i].flow_id);
  }
}

TEST(TraceGenTest, PerFlowArrivalsMonotone) {
  FlowTraceConfig c;
  c.num_packets = 5000;
  auto trace = generate_flow_trace(c);
  std::map<std::int32_t, std::int32_t> last;
  for (const auto& p : trace) {
    auto it = last.find(p.flow_id);
    if (it != last.end()) {
      EXPECT_GE(p.arrival, it->second);
    }
    last[p.flow_id] = p.arrival;
  }
}

TEST(TraceGenTest, ContainsFlowletGaps) {
  FlowTraceConfig c;
  c.num_packets = 20000;
  c.num_flows = 20;
  auto trace = generate_flow_trace(c);
  // Some per-flow gaps exceed the inter-burst threshold, some don't: both
  // flowlet continuation and re-pinning are exercised.
  std::map<std::int32_t, std::int32_t> last;
  int large = 0, small = 0;
  for (const auto& p : trace) {
    auto it = last.find(p.flow_id);
    if (it != last.end()) {
      ((p.arrival - it->second >= c.inter_burst_gap) ? large : small)++;
    }
    last[p.flow_id] = p.arrival;
  }
  EXPECT_GT(large, 100);
  EXPECT_GT(small, 100);
}

TEST(TraceGenTest, PacketSizesWithinEthernetBounds) {
  FlowTraceConfig c;
  c.num_packets = 2000;
  for (const auto& p : generate_flow_trace(c)) {
    EXPECT_GE(p.size_bytes, 64);
    EXPECT_LE(p.size_bytes, 1500);
  }
}

TEST(ArrivalTraceTest, ArrivalsStrictlyIncrease) {
  ArrivalTraceConfig c;
  c.num_packets = 2000;
  auto trace = generate_arrival_trace(c);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GT(trace[i].arrival, trace[i - 1].arrival);
}

TEST(QueueSimTest, DeparturesAfterArrivals) {
  ArrivalTraceConfig c;
  c.num_packets = 2000;
  auto samples = simulate_queue(generate_arrival_trace(c), {});
  for (const auto& s : samples) {
    EXPECT_GE(s.departure, s.arrival);
    EXPECT_EQ(s.sojourn, s.departure - s.arrival);
    EXPECT_GE(s.qlen_bytes, 0);
  }
}

TEST(QueueSimTest, FifoOrderPreserved) {
  ArrivalTraceConfig c;
  c.num_packets = 2000;
  auto samples = simulate_queue(generate_arrival_trace(c), {});
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_GE(samples[i].departure, samples[i - 1].departure);
}

TEST(QueueSimTest, HighLoadBuildsQueue) {
  ArrivalTraceConfig heavy;
  heavy.num_packets = 5000;
  heavy.load = 3.0;  // overloaded
  QueueConfig qc;
  qc.bytes_per_tick = 300;
  auto hs = simulate_queue(generate_arrival_trace(heavy), qc);

  ArrivalTraceConfig light = heavy;
  light.load = 0.2;
  auto ls = simulate_queue(generate_arrival_trace(light), qc);

  double h_delay = 0, l_delay = 0;
  for (const auto& s : hs) h_delay += s.sojourn;
  for (const auto& s : ls) l_delay += s.sojourn;
  EXPECT_GT(h_delay / static_cast<double>(hs.size()),
            5 * l_delay / static_cast<double>(ls.size()));
}

TEST(FabricTest, BestPathTracksLoad) {
  LeafSpineFabric fabric(4, 4, 11);
  fabric.add_load(0, 0, 1000);
  fabric.add_load(0, 1, 2000);
  fabric.add_load(0, 3, 500);
  EXPECT_EQ(fabric.best_path(0), 2);  // untouched path
  fabric.add_load(0, 2, 5000);
  EXPECT_EQ(fabric.best_path(0), 3);
}

TEST(FabricTest, DrainReducesUtilization) {
  LeafSpineFabric fabric(2, 2, 12);
  fabric.add_load(1, 1, 300);
  fabric.drain(100);
  EXPECT_EQ(fabric.utilization(1, 1), 200);
  fabric.drain(1000);
  EXPECT_EQ(fabric.utilization(1, 1), 0);  // clamps at zero
}

}  // namespace
}  // namespace netsim
