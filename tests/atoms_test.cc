// Tests for the atom template library and the hardware cost model
// (Tables 3, 5 and 6): evaluation semantics of configurations, hierarchy
// structure, and calibration of the circuit model against the paper's
// synthesis numbers.
#include <gtest/gtest.h>

#include "atoms/circuit.h"
#include "atoms/config.h"
#include "atoms/stateful.h"
#include "atoms/stateless.h"
#include "atoms/targets.h"
#include "ir/intrinsics.h"

namespace atoms {
namespace {

using banzai::Value;

TEST(HierarchyTest, SevenPaperTemplatesInRankOrder) {
  const auto& h = stateful_hierarchy();
  ASSERT_EQ(h.size(), 7u);
  for (std::size_t i = 0; i < h.size(); ++i)
    EXPECT_EQ(h[i].hierarchy_rank, static_cast<int>(i));
  EXPECT_EQ(h.front().name, "Write");
  EXPECT_EQ(h.back().name, "Pairs");
}

TEST(HierarchyTest, AllowedModesGrowMonotonically) {
  const auto& h = stateful_hierarchy();
  for (std::size_t i = 1; i < h.size(); ++i) {
    for (ArmMode m : h[i - 1].allowed_modes) {
      EXPECT_NE(std::find(h[i].allowed_modes.begin(), h[i].allowed_modes.end(),
                          m),
                h[i].allowed_modes.end())
          << h[i].name << " lost mode of " << h[i - 1].name;
    }
  }
}

TEST(HierarchyTest, OnlyPairsTemplatesOwnTwoStates) {
  for (const auto& t : all_templates()) {
    if (t.kind == StatefulKind::kPairs || t.kind == StatefulKind::kLutPairs)
      EXPECT_EQ(t.num_states, 2);
    else
      EXPECT_EQ(t.num_states, 1);
  }
}

TEST(HierarchyTest, LeafAndPredCounts) {
  EXPECT_EQ(num_leaves(template_info(StatefulKind::kWrite)), 1);
  EXPECT_EQ(num_preds(template_info(StatefulKind::kWrite)), 0);
  EXPECT_EQ(num_leaves(template_info(StatefulKind::kPRAW)), 2);
  EXPECT_EQ(num_preds(template_info(StatefulKind::kPRAW)), 1);
  EXPECT_EQ(num_leaves(template_info(StatefulKind::kNested)), 4);
  EXPECT_EQ(num_preds(template_info(StatefulKind::kNested)), 3);
}

// ---- configuration evaluation ----------------------------------------------

TEST(ConfigEvalTest, ArmModes) {
  const Value states[] = {10, 20};
  const Value fields[] = {3};
  ArmConfig arm;
  arm.src1 = OperandSel::field(0);
  arm.src2 = OperandSel::constant(2);

  arm.mode = ArmMode::kKeep;
  EXPECT_EQ(arm.eval(10, states, fields), 10);
  arm.mode = ArmMode::kSet;
  EXPECT_EQ(arm.eval(10, states, fields), 3);
  arm.mode = ArmMode::kAdd;
  EXPECT_EQ(arm.eval(10, states, fields), 13);
  arm.mode = ArmMode::kSubt;
  EXPECT_EQ(arm.eval(10, states, fields), 7);
  arm.mode = ArmMode::kSetAdd;
  EXPECT_EQ(arm.eval(10, states, fields), 5);
  arm.mode = ArmMode::kSetSub;
  EXPECT_EQ(arm.eval(10, states, fields), 1);
  arm.mode = ArmMode::kAddSub;
  EXPECT_EQ(arm.eval(10, states, fields), 11);
}

TEST(ConfigEvalTest, ArithmeticWraps) {
  const Value states[] = {INT32_MAX};
  const Value fields[] = {1};
  ArmConfig arm;
  arm.mode = ArmMode::kAdd;
  arm.src1 = OperandSel::field(0);
  EXPECT_EQ(arm.eval(INT32_MAX, states, fields), INT32_MIN);
}

TEST(ConfigEvalTest, PredRelations) {
  const Value states[] = {5};
  const Value fields[] = {7};
  PredConfig p;
  p.a = OperandSel::state(0);
  p.b = OperandSel::field(0);
  p.rel = RelKind::kLt;
  EXPECT_TRUE(p.eval(states, fields));
  p.rel = RelKind::kGe;
  EXPECT_FALSE(p.eval(states, fields));
  p.rel = RelKind::kAlways;
  EXPECT_TRUE(p.eval(states, fields));
}

TEST(ConfigEvalTest, TwoLevelLeafSelection) {
  // if (x > 0) { if (f > 0) leaf0 else leaf1 } else { if (f < 0) leaf2 else
  // leaf3 }
  StatefulConfig cfg;
  cfg.kind = StatefulKind::kNested;
  PredConfig p1{RelKind::kGt, OperandSel::state(0), OperandSel::constant(0)};
  PredConfig p2{RelKind::kGt, OperandSel::field(0), OperandSel::constant(0)};
  PredConfig p3{RelKind::kLt, OperandSel::field(0), OperandSel::constant(0)};
  cfg.preds = {p1, p2, p3};
  for (Value leaf_val : {0, 1, 2, 3}) {
    ArmConfig arm;
    arm.mode = ArmMode::kSet;
    arm.src1 = OperandSel::constant(leaf_val);
    cfg.leaves.push_back({arm});
  }
  auto run = [&cfg](Value x, Value f) {
    Value states[] = {x};
    Value fields[] = {f};
    Value out[1];
    cfg.eval(states, fields, out);
    return out[0];
  };
  EXPECT_EQ(run(5, 3), 0);
  EXPECT_EQ(run(5, -3), 1);
  EXPECT_EQ(run(-5, -3), 2);
  EXPECT_EQ(run(-5, 3), 3);
}

TEST(ConfigEvalTest, LutArmMatchesIntrinsicTable) {
  ArmConfig arm;
  arm.mode = ArmMode::kLutAdd;
  arm.src1 = OperandSel::state(0);
  arm.src2 = OperandSel::field(0);
  for (Value c : {0, 1, 5, 100, 10000}) {
    const Value states[] = {c};
    const Value fields[] = {7};
    EXPECT_EQ(arm.eval(0, states, fields),
              banzai::wrap_add(lut_eval(c), 7));
  }
}

TEST(LutTest, TableMatchesPostIncrementControlLaw) {
  // lut(c) == sqrt_interval(c + 1) for representative and corner inputs.
  for (Value c : {-5, -1, 0, 1, 2, 3, 10, 1000, (1 << 20) + 5, INT32_MAX}) {
    EXPECT_EQ(lut_eval(c), domino::eval_intrinsic(
                               "sqrt_interval", {banzai::wrap_add(c, 1)}))
        << "c=" << c;
  }
}

TEST(LutTest, GapShrinksWithCount) {
  EXPECT_GT(lut_eval(0), lut_eval(3));
  EXPECT_GT(lut_eval(3), lut_eval(15));
  EXPECT_GT(lut_eval(15), lut_eval(255));
}

// ---- stateless ALU ----------------------------------------------------------

TEST(StatelessAluTest, SupportsPaperOperations) {
  using domino::BinOp;
  for (BinOp op : {BinOp::kAdd, BinOp::kSub, BinOp::kShl, BinOp::kShr,
                   BinOp::kBitAnd, BinOp::kBitOr, BinOp::kBitXor, BinOp::kLt,
                   BinOp::kLe, BinOp::kGt, BinOp::kGe, BinOp::kEq, BinOp::kNe,
                   BinOp::kLAnd, BinOp::kLOr}) {
    domino::TacStmt s;
    s.kind = domino::TacStmt::Kind::kBinary;
    s.op = op;
    s.dst = "f";
    EXPECT_TRUE(stateless_alu_supports(s)) << domino::binop_str(op);
  }
}

TEST(StatelessAluTest, RejectsMulDivMod) {
  using domino::BinOp;
  for (BinOp op : {BinOp::kMul, BinOp::kDiv, BinOp::kMod}) {
    domino::TacStmt s;
    s.kind = domino::TacStmt::Kind::kBinary;
    s.op = op;
    EXPECT_FALSE(stateless_alu_supports(s)) << domino::binop_str(op);
  }
}

TEST(StatelessAluTest, RejectsStateAccess) {
  domino::TacStmt s;
  s.kind = domino::TacStmt::Kind::kReadState;
  EXPECT_FALSE(stateless_alu_supports(s));
  s.kind = domino::TacStmt::Kind::kWriteState;
  EXPECT_FALSE(stateless_alu_supports(s));
}

TEST(StatelessAluTest, TernaryAndCopySupported) {
  domino::TacStmt s;
  s.kind = domino::TacStmt::Kind::kTernary;
  EXPECT_TRUE(stateless_alu_supports(s));
  s.kind = domino::TacStmt::Kind::kCopy;
  EXPECT_TRUE(stateless_alu_supports(s));
}

// ---- circuit model vs the paper ----------------------------------------------

Circuit circuit_by_name(const std::string& name) {
  if (name == "Stateless") return stateless_circuit();
  for (const auto& t : stateful_hierarchy())
    if (t.name == name) return stateful_circuit(t.kind);
  throw std::runtime_error("unknown circuit " + name);
}

TEST(CircuitModelTest, AreasWithinTwoPercentOfTable3) {
  for (const auto& row : paper_atom_table()) {
    const double got = circuit_by_name(row.name).area_um2();
    EXPECT_NEAR(got, row.area_um2, row.area_um2 * 0.02)
        << row.name << ": model=" << got << " paper=" << row.area_um2;
  }
}

TEST(CircuitModelTest, DelaysWithinTwoPercentOfTable5) {
  for (const auto& row : paper_atom_table()) {
    if (row.min_delay_ps == 0) continue;  // not reported for Stateless
    const double got = circuit_by_name(row.name).min_delay_ps();
    EXPECT_NEAR(got, row.min_delay_ps, row.min_delay_ps * 0.02)
        << row.name << ": model=" << got << " paper=" << row.min_delay_ps;
  }
}

TEST(CircuitModelTest, AreaGrowsAlongHierarchy) {
  double prev = 0;
  for (const auto& t : stateful_hierarchy()) {
    const double a = stateful_circuit(t.kind).area_um2();
    EXPECT_GT(a, prev) << t.name;
    prev = a;
  }
}

TEST(CircuitModelTest, DepthGrowsFromWriteToPairs) {
  EXPECT_LT(stateful_circuit(StatefulKind::kWrite).depth(),
            stateful_circuit(StatefulKind::kPRAW).depth());
  EXPECT_LT(stateful_circuit(StatefulKind::kPRAW).depth(),
            stateful_circuit(StatefulKind::kNested).depth());
}

TEST(CircuitModelTest, LineRateIsInverseDelay) {
  // Table 5: Write = 5.68 Gpps, Pairs = 1.64 Gpps.
  EXPECT_NEAR(stateful_circuit(StatefulKind::kWrite).max_line_rate_gpps(),
              5.68, 0.12);
  EXPECT_NEAR(stateful_circuit(StatefulKind::kPairs).max_line_rate_gpps(),
              1.64, 0.05);
}

TEST(CircuitModelTest, AllAtomsMeetOneGigahertz) {
  // Table 3: "All atoms meet timing at 1 GHz" — delay under 1000 ps.
  for (const auto& t : stateful_hierarchy())
    EXPECT_LT(stateful_circuit(t.kind).min_delay_ps(), 1000.0) << t.name;
  EXPECT_LT(stateless_circuit().min_delay_ps(), 1000.0);
}

TEST(CircuitModelTest, LutExtensionCostsAreaAndDelay) {
  const Circuit pairs = stateful_circuit(StatefulKind::kPairs);
  const Circuit lut = stateful_circuit(StatefulKind::kLutPairs);
  EXPECT_GT(lut.area_um2(), pairs.area_um2());
  EXPECT_GT(lut.min_delay_ps(), pairs.min_delay_ps());
}

// ---- targets & resource budget ------------------------------------------------

TEST(TargetsTest, SevenPaperTargets) {
  const auto& ts = paper_targets();
  ASSERT_EQ(ts.size(), 7u);
  for (const auto& t : ts) {
    EXPECT_EQ(t.pipeline_depth, 32u);
    EXPECT_EQ(t.stateless_per_stage, 300u);
    EXPECT_EQ(t.stateful_per_stage, 10u);
    EXPECT_FALSE(t.has_math_unit);
  }
}

TEST(TargetsTest, FindTargetByName) {
  EXPECT_TRUE(find_target("banzai-praw").has_value());
  EXPECT_TRUE(find_target("banzai-pairs-lut").has_value());
  EXPECT_FALSE(find_target("banzai-quantum").has_value());
}

TEST(TargetsTest, LutTargetProvidesMathUnit) {
  const auto t = lut_extended_target();
  EXPECT_TRUE(t.provides_unit(domino::IntrinsicUnit::kMath));
  EXPECT_TRUE(t.provides_unit(domino::IntrinsicUnit::kHash));
  EXPECT_FALSE(
      paper_targets()[0].provides_unit(domino::IntrinsicUnit::kMath));
}

TEST(ResourceBudgetTest, ReproducesSection52Analysis) {
  const ResourceBudget rb = compute_resource_budget(StatefulKind::kPairs);
  // ~10000 stateless atoms total, ~300 per stage (§5.2).
  EXPECT_NEAR(static_cast<double>(rb.stateless_total), 10000, 1500);
  EXPECT_NEAR(static_cast<double>(rb.stateless_per_stage), 300, 50);
  // Stateful overhead ~1%, crossbar ~4%, total ~12%.
  EXPECT_LT(rb.stateful_overhead_frac, 0.02);
  EXPECT_NEAR(rb.crossbar_overhead_frac, 0.04, 0.01);
  EXPECT_NEAR(rb.total_overhead_frac, 0.12, 0.02);
  // Under the paper's 15% headline bound.
  EXPECT_LT(rb.total_overhead_frac, 0.15);
}

}  // namespace
}  // namespace atoms
