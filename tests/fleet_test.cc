// Differential proof for the sharded Fleet: every shard's egress and final
// StateStore must match a single machine fed the same sub-trace, per-flow
// results must match a single-machine run of the full trace whenever flows do
// not alias in state, and the guarantees must hold on a Zipf-skewed trace
// where one shard runs hot — with worker threads on and off.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "banzai/fleet.h"
#include "sim/partition.h"
#include "sim/tracegen.h"
#include "test_util.h"

namespace {

using banzai::FieldId;
using banzai::Fleet;
using banzai::FleetConfig;
using banzai::FleetResult;
using banzai::Packet;

struct FlowletSetup {
  domino::CompileResult compiled;
  FieldId f_sport, f_dport, f_arrival, f_id, f_next_hop;

  explicit FlowletSetup()
      : compiled(domino::compile(
            algorithms::algorithm("flowlets").source,
            *test_util::least_target(
                algorithms::algorithm("flowlets").source))) {
    const auto& ft = compiled.machine().fields();
    f_sport = ft.id_of("sport");
    f_dport = ft.id_of("dport");
    f_arrival = ft.id_of("arrival");
    // Final values of user fields live in their SSA-renamed machine fields.
    f_id = ft.id_of(final_name("id"));
    f_next_hop = ft.id_of(final_name("next_hop"));
  }

  std::string final_name(const std::string& field) const {
    const auto& m = compiled.output_map();
    return m.count(field) ? m.at(field) : field;
  }

  // Maps a netsim trace onto flowlet packets: the (sport, dport) pair is the
  // flow key the machine hashes into its flowlet tables.
  std::vector<Packet> to_packets(
      const std::vector<netsim::TracePacket>& trace) const {
    std::vector<Packet> pkts;
    pkts.reserve(trace.size());
    for (const auto& tp : trace) {
      Packet p(compiled.machine().fields().size());
      p.set(f_sport, 1000 + tp.flow_id);
      p.set(f_dport, 80);
      p.set(f_arrival, static_cast<banzai::Value>(tp.arrival));
      pkts.push_back(std::move(p));
    }
    return pkts;
  }

  FleetConfig fleet_config(std::size_t shards, bool parallel) const {
    FleetConfig cfg;
    cfg.num_shards = shards;
    cfg.batch_size = 128;
    cfg.parallel = parallel;
    cfg.flow_key = {f_sport, f_dport};
    return cfg;
  }
};

// Every shard must be indistinguishable from a single machine that was fed
// exactly that shard's packets, in arrival order — per-flow state
// consistency, with no caveats.
void expect_shards_match_single_machines(const FlowletSetup& setup,
                                         const std::vector<Packet>& trace,
                                         Fleet& fleet,
                                         const FleetResult& result) {
  for (std::size_t s = 0; s < fleet.num_shards(); ++s) {
    const auto& shard = result.shards[s];
    banzai::Machine reference = setup.compiled.machine().clone();
    ASSERT_EQ(shard.egress.size(), shard.source_index.size());
    for (std::size_t i = 0; i < shard.source_index.size(); ++i) {
      Packet expected = reference.process(trace[shard.source_index[i]]);
      ASSERT_EQ(shard.egress[i], expected)
          << "shard " << s << ", packet " << i;
    }
    EXPECT_EQ(fleet.shard_machine(s).state(), reference.state())
        << "shard " << s;
  }
}

TEST(FleetTest, ShardsMatchSingleMachineSubTraces) {
  FlowletSetup setup;
  netsim::FlowTraceConfig cfg;
  cfg.num_packets = 4000;
  cfg.num_flows = 40;
  cfg.zipf_skew = 1.1;
  cfg.seed = 11;
  const auto trace = setup.to_packets(netsim::generate_flow_trace(cfg));

  Fleet fleet(setup.compiled.machine(), setup.fleet_config(4, true));
  FleetResult result = fleet.run(trace);
  EXPECT_EQ(result.packets, trace.size());
  expect_shards_match_single_machines(setup, trace, fleet, result);
}

TEST(FleetTest, MatchesFullTraceSingleMachineWhenFlowsDoNotAlias) {
  FlowletSetup setup;
  netsim::FlowTraceConfig cfg;
  cfg.num_packets = 5000;
  cfg.num_flows = 30;
  cfg.zipf_skew = 1.1;
  cfg.seed = 5;
  const auto trace = setup.to_packets(netsim::generate_flow_trace(cfg));

  // Single machine over the full trace.
  banzai::Machine single = setup.compiled.machine().clone();
  std::vector<Packet> expected;
  expected.reserve(trace.size());
  for (const Packet& p : trace) expected.push_back(single.process(p));

  // Precondition for full-trace equivalence: distinct flows occupy distinct
  // flowlet-table slots (pkt.id), so no state is shared across shards.  The
  // trace is deterministic; if a new seed introduced a collision this fails
  // loudly instead of comparing apples to oranges.
  std::map<banzai::Value, std::set<banzai::Value>> id_to_flows;
  for (std::size_t i = 0; i < trace.size(); ++i)
    id_to_flows[expected[i].get(setup.f_id)].insert(
        trace[i].get(setup.f_sport));
  for (const auto& [id, flows] : id_to_flows)
    ASSERT_EQ(flows.size(), 1u) << "flowlet slot " << id << " is shared";

  Fleet fleet(setup.compiled.machine(), setup.fleet_config(4, true));
  FleetResult result = fleet.run(trace);
  const auto merged = result.egress_in_order();
  ASSERT_EQ(merged.size(), expected.size());
  for (std::size_t i = 0; i < merged.size(); ++i)
    ASSERT_EQ(merged[i], expected[i]) << "packet " << i;
}

TEST(FleetTest, ZipfSkewedTraceRunsOneShardHotAndStaysConsistent) {
  FlowletSetup setup;
  netsim::FlowTraceConfig cfg;
  cfg.num_packets = 6000;
  cfg.num_flows = 200;
  cfg.zipf_skew = 1.6;  // heavy skew: the top flow dominates
  cfg.seed = 23;
  const auto trace = setup.to_packets(netsim::generate_flow_trace(cfg));

  Fleet fleet(setup.compiled.machine(), setup.fleet_config(4, true));
  FleetResult result = fleet.run(trace);

  std::size_t hottest = 0, coldest = trace.size();
  for (const auto& shard : result.shards) {
    hottest = std::max(hottest, shard.egress.size());
    coldest = std::min(coldest, shard.egress.size());
  }
  // The point of the skewed fixture: load is genuinely imbalanced.
  EXPECT_GE(hottest, 2 * coldest);
  expect_shards_match_single_machines(setup, trace, fleet, result);
}

TEST(FleetTest, ParallelAndSerialExecutionAgree) {
  FlowletSetup setup;
  netsim::FlowTraceConfig cfg;
  cfg.num_packets = 3000;
  cfg.num_flows = 64;
  cfg.seed = 9;
  const auto trace = setup.to_packets(netsim::generate_flow_trace(cfg));

  Fleet threaded(setup.compiled.machine(), setup.fleet_config(4, true));
  Fleet serial(setup.compiled.machine(), setup.fleet_config(4, false));
  FleetResult a = threaded.run(trace);
  FleetResult b = serial.run(trace);

  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].egress, b.shards[s].egress) << "shard " << s;
    EXPECT_EQ(threaded.shard_machine(s).state(), serial.shard_machine(s).state())
        << "shard " << s;
  }
}

TEST(FleetTest, StatePersistsAcrossRuns) {
  FlowletSetup setup;
  netsim::FlowTraceConfig cfg;
  cfg.num_packets = 1000;
  cfg.num_flows = 16;
  cfg.seed = 3;
  const auto trace = setup.to_packets(netsim::generate_flow_trace(cfg));
  const auto half = trace.size() / 2;
  const std::vector<Packet> first(trace.begin(), trace.begin() + half);
  const std::vector<Packet> second(trace.begin() + half, trace.end());

  Fleet split_runs(setup.compiled.machine(), setup.fleet_config(3, true));
  split_runs.run(first);
  split_runs.run(second);

  Fleet one_run(setup.compiled.machine(), setup.fleet_config(3, true));
  one_run.run(trace);

  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_EQ(split_runs.shard_machine(s).state(),
              one_run.shard_machine(s).state())
        << "shard " << s;
}

TEST(FleetTest, ShardingRequiresFlowKey) {
  FlowletSetup setup;
  FleetConfig cfg;
  cfg.num_shards = 4;  // no flow_key
  EXPECT_THROW(Fleet(setup.compiled.machine(), cfg), std::invalid_argument);
  cfg.num_shards = 1;  // single shard needs no key
  EXPECT_NO_THROW(Fleet(setup.compiled.machine(), cfg));
}

TEST(PartitionTest, StableAndFlowConsistent) {
  netsim::FlowTraceConfig cfg;
  cfg.num_packets = 2000;
  cfg.num_flows = 50;
  cfg.seed = 7;
  const auto trace = netsim::generate_flow_trace(cfg);
  const auto parts = netsim::partition_by_flow(trace, 4);

  std::size_t total = 0;
  for (std::size_t s = 0; s < parts.num_shards(); ++s) {
    total += parts.shards[s].size();
    // Every packet of a flow lands on the shard its flow hashes to, and
    // original positions are strictly increasing (stable partition).
    for (std::size_t i = 0; i < parts.shards[s].size(); ++i) {
      EXPECT_EQ(netsim::shard_of_key(
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                        parts.shards[s][i].flow_id)),
                    4),
                s);
      if (i > 0) {
        EXPECT_LT(parts.source_index[s][i - 1], parts.source_index[s][i]);
      }
    }
  }
  EXPECT_EQ(total, trace.size());
}

}  // namespace
