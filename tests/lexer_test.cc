#include "core/lexer.h"

#include <gtest/gtest.h>

#include "ir/diag.h"

namespace domino {
namespace {

std::vector<Tok> kinds(const std::string& src) {
  std::vector<Tok> out;
  for (const auto& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, EmptySourceYieldsOnlyEof) {
  auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::kEnd);
}

TEST(LexerTest, Identifier) {
  auto toks = lex("pkt _tmp x42");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "pkt");
  EXPECT_EQ(toks[1].text, "_tmp");
  EXPECT_EQ(toks[2].text, "x42");
}

TEST(LexerTest, DecimalNumber) {
  auto toks = lex("12345");
  EXPECT_EQ(toks[0].kind, Tok::kNumber);
  EXPECT_EQ(toks[0].number, 12345);
}

TEST(LexerTest, HexNumber) {
  auto toks = lex("0x1F");
  EXPECT_EQ(toks[0].number, 31);
}

TEST(LexerTest, NumberFitting32BitsUnsignedWraps) {
  auto toks = lex("4294967295");  // 2^32 - 1 stored as -1 two's complement
  EXPECT_EQ(toks[0].number, -1);
}

TEST(LexerTest, NumberOverflowRejected) {
  EXPECT_THROW(lex("4294967296"), CompileError);
}

TEST(LexerTest, Keywords) {
  EXPECT_EQ(kinds("struct int void if else")[0], Tok::kStruct);
  EXPECT_EQ(kinds("if")[0], Tok::kIf);
  EXPECT_EQ(kinds("else")[0], Tok::kElse);
  EXPECT_EQ(kinds("void")[0], Tok::kVoid);
}

TEST(LexerTest, ForbiddenKeywordsAreRecognized) {
  EXPECT_EQ(kinds("while")[0], Tok::kWhile);
  EXPECT_EQ(kinds("for")[0], Tok::kFor);
  EXPECT_EQ(kinds("do")[0], Tok::kDo);
  EXPECT_EQ(kinds("goto")[0], Tok::kGoto);
  EXPECT_EQ(kinds("break")[0], Tok::kBreak);
  EXPECT_EQ(kinds("continue")[0], Tok::kContinue);
}

TEST(LexerTest, TwoCharOperators) {
  auto k = kinds("<< >> <= >= == != && || += -= ++ --");
  std::vector<Tok> want = {Tok::kShl,      Tok::kShr,      Tok::kLe,
                           Tok::kGe,       Tok::kEqEq,     Tok::kNe,
                           Tok::kAmpAmp,   Tok::kPipePipe, Tok::kPlusAssign,
                           Tok::kMinusAssign, Tok::kIncrement, Tok::kDecrement,
                           Tok::kEnd};
  EXPECT_EQ(k, want);
}

TEST(LexerTest, SingleCharOperators) {
  auto k = kinds("+ - * / % < > = & | ^ ! ~ ? :");
  std::vector<Tok> want = {Tok::kPlus,  Tok::kMinus, Tok::kStar,
                           Tok::kSlash, Tok::kPercent, Tok::kLt,
                           Tok::kGt,    Tok::kAssign,  Tok::kAmp,
                           Tok::kPipe,  Tok::kCaret,   Tok::kBang,
                           Tok::kTilde, Tok::kQuestion, Tok::kColon,
                           Tok::kEnd};
  EXPECT_EQ(k, want);
}

TEST(LexerTest, LineCommentSkipped) {
  auto toks = lex("a // comment with while for\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(LexerTest, BlockCommentSkipped) {
  auto toks = lex("a /* multi\nline */ b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "b");
}

TEST(LexerTest, UnterminatedBlockCommentRejected) {
  EXPECT_THROW(lex("a /* oops"), CompileError);
}

TEST(LexerTest, DefineDirective) {
  auto toks = lex("#define N 10");
  EXPECT_EQ(toks[0].kind, Tok::kDefine);
  EXPECT_EQ(toks[1].text, "N");
  EXPECT_EQ(toks[2].number, 10);
}

TEST(LexerTest, NonDefineDirectiveRejected) {
  EXPECT_THROW(lex("#include <stdio.h>"), CompileError);
}

TEST(LexerTest, UnexpectedCharacterRejected) {
  EXPECT_THROW(lex("a $ b"), CompileError);
}

TEST(LexerTest, LocationsTrackLinesAndColumns) {
  auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[0].loc.column, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.column, 3);
}

TEST(LexerTest, LexErrorsCarryPhase) {
  try {
    lex("4294967296");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.phase(), CompilePhase::kLex);
  }
}

}  // namespace
}  // namespace domino
