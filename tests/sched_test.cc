// The scheduling layer: PIFO invariants (dequeue-min, FIFO tie-break,
// bounded-size eviction accounting), the rank-program differential across
// all three execution engines, and the STFQ-on-PIFO fairness scenario that
// a drop-tail FIFO fails.
#include "sim/sched.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "algorithms/corpus.h"
#include "banzai/machine.h"
#include "sim/queue.h"
#include "sim/tracegen.h"

namespace netsim {
namespace {

QueueItem item_of(std::int32_t size, std::int64_t rank, std::uint64_t cookie) {
  QueueItem item;
  item.size_bytes = size;
  item.rank = rank;
  item.cookie = cookie;
  return item;
}

std::vector<Departed> drain(QueueDiscipline& q) {
  std::vector<Departed> out;
  const std::int64_t horizon = std::numeric_limits<std::int64_t>::max();
  while (auto d = q.pop_departed(horizon)) out.push_back(*d);
  return out;
}

// The packet in service is never preempted; everything still waiting leaves
// in rank order regardless of arrival order.
TEST(PifoTest, DequeuesMinimumRankNonPreemptively) {
  QueueConfig cfg;
  cfg.bytes_per_tick = 100;
  PifoQueue q(cfg);
  // First offer enters service immediately even though its rank is middling.
  const std::int64_t ranks[] = {50, 70, 10, 40, 20};
  for (std::uint64_t i = 0; i < 5; ++i)
    EXPECT_FALSE(q.offer(0, item_of(100, ranks[i], i)).dropped);

  const std::vector<Departed> out = drain(q);
  ASSERT_EQ(out.size(), 5u);
  const std::uint64_t want[] = {0, 2, 4, 3, 1};  // service, then rank order
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(out[i].dropped);
    EXPECT_EQ(out[i].item.cookie, want[i]) << "position " << i;
    // Back-to-back 100-byte services at 100 B/tick: one departure per tick.
    EXPECT_EQ(out[i].tick, static_cast<std::int64_t>(i) + 1);
  }
}

TEST(PifoTest, EqualRanksLeaveInAdmissionOrder) {
  QueueConfig cfg;
  cfg.bytes_per_tick = 100;
  PifoQueue q(cfg);
  for (std::uint64_t i = 0; i < 10; ++i)
    EXPECT_FALSE(q.offer(0, item_of(100, /*rank=*/5, i)).dropped);
  const std::vector<Departed> out = drain(q);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].item.cookie, i);
}

// Bounded buffer: a better-ranked arrival evicts the worst waiting packet; a
// worst-ranked arrival is dropped on the spot.  Either way every offered
// packet lands in exactly one of the accepted/dropped columns.
TEST(PifoTest, BoundedSizeEvictsWorstRank) {
  QueueConfig cfg;
  cfg.bytes_per_tick = 1;  // effectively frozen server
  cfg.capacity_bytes = 300;
  PifoQueue q(cfg);
  EXPECT_FALSE(q.offer(0, item_of(100, 10, 0)).dropped);  // in service
  EXPECT_FALSE(q.offer(0, item_of(100, 50, 1)).dropped);
  EXPECT_FALSE(q.offer(0, item_of(100, 70, 2)).dropped);  // buffer now full

  // Rank 60 beats the waiting rank-70 packet: evict it, admit the arrival.
  EXPECT_FALSE(q.offer(0, item_of(100, 60, 3)).dropped);
  EXPECT_EQ(q.evicted_pkts(), 1);
  EXPECT_EQ(q.dropped_pkts(), 1);

  // Rank 90 is worse than everything waiting: arrival drop, no eviction.
  EXPECT_TRUE(q.offer(0, item_of(100, 90, 4)).dropped);
  EXPECT_EQ(q.evicted_pkts(), 1);
  EXPECT_EQ(q.dropped_pkts(), 2);

  // offered == accepted + dropped, in packets and bytes; evictions are a
  // subset of drops.
  EXPECT_EQ(q.offered_pkts(), 5);
  EXPECT_EQ(q.accepted_pkts() + q.dropped_pkts(), q.offered_pkts());
  EXPECT_EQ(q.accepted_bytes() + q.dropped_bytes(), q.offered_bytes());
  EXPECT_LE(q.evicted_pkts(), q.dropped_pkts());
  EXPECT_EQ(q.backlog_bytes(0), 300);

  // The eviction surfaces through pop_departed as a dropped departure at the
  // eviction tick, carrying the victim's cookie.
  auto d = q.pop_departed(0);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->dropped);
  EXPECT_EQ(d->item.cookie, 2u);
  EXPECT_EQ(d->tick, 0);
}

// simulate_queue on a scheduled discipline back-fills each accepted sample
// with the real departure discovered when the queue drains.
TEST(PifoTest, SimulateQueueBackfillsScheduledDepartures) {
  std::vector<TracePacket> trace;
  for (int i = 0; i < 6; ++i) {
    TracePacket p;
    p.arrival = i;
    p.size_bytes = 500;
    p.flow_id = i % 2;
    trace.push_back(p);
  }
  QueueConfig cfg;
  cfg.bytes_per_tick = 500;
  PifoQueue q(cfg);
  const std::vector<QueueSample> samples = simulate_queue(trace, q);
  ASSERT_EQ(samples.size(), trace.size());
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(samples[i].dropped);
    // One-tick services arriving one per tick never queue behind each other.
    EXPECT_EQ(samples[i].departure, i + 1);
    EXPECT_EQ(samples[i].sojourn, 1);
  }
}

// All three engines produce bit-identical ranks for every rank program.  A
// machine without a native toolchain degrades kNative to the kernel VM, so
// this holds on every host.
TEST(RankMachineTest, EnginesAgreeOnEveryRankProgram) {
  const banzai::ExecEngine engines[] = {banzai::ExecEngine::kClosure,
                                        banzai::ExecEngine::kKernel,
                                        banzai::ExecEngine::kNative};
  for (const auto& alg : algorithms::rank_corpus()) {
    std::vector<std::vector<banzai::Value>> per_engine;
    for (const auto engine : engines) {
      RankMachine rm = compile_rank_machine(alg.name, engine);
      std::vector<banzai::Value> ranks;
      for (int i = 0; i < 300; ++i) {
        QueueItem item;
        item.flow_id = i % 7;
        item.tenant_id = i % 3;
        item.size_bytes = 64 + (i * 37) % 1400;
        RankFeedback fb;
        fb.vt = (i / 4) * 100;
        fb.refund = (i % 10 == 0) ? 1500 : 0;
        fb.trefund = (i % 25 == 0) ? 1500 : 0;
        ranks.push_back(rm.rank(/*now=*/i, fb, item));
      }
      per_engine.push_back(std::move(ranks));
    }
    ASSERT_EQ(per_engine.size(), 3u);
    EXPECT_EQ(per_engine[0], per_engine[1]) << alg.name << ": closure vs kernel";
    EXPECT_EQ(per_engine[1], per_engine[2]) << alg.name << ": kernel vs native";
  }
}

// The headline claim: on every tested seed, STFQ-on-PIFO bounds the max/min
// per-tenant delivered-bytes ratio strictly tighter than the drop-tail FIFO
// running the identical workload, with the rank computed by the compiled
// STFQ transaction.
TEST(FairnessTest, StfqOnPifoTightensMaxMinRatio) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    FairnessConfig cfg;
    cfg.seed = seed;

    FairnessConfig fifo_cfg = cfg;
    fifo_cfg.use_pifo = false;
    const FairnessReport fifo = run_fairness_scenario(fifo_cfg);

    FairnessConfig pifo_cfg = cfg;
    pifo_cfg.use_pifo = true;
    const FairnessReport pifo = run_fairness_scenario(pifo_cfg);

    EXPECT_LT(pifo.max_min_ratio, fifo.max_min_ratio) << "seed " << seed;
    // Conservation at the fabric level: every injected packet is delivered
    // or dropped, under both disciplines.
    for (const FairnessReport* r : {&fifo, &pifo}) {
      EXPECT_EQ(r->stats.injected, cfg.packets) << "seed " << seed;
      EXPECT_EQ(r->stats.delivered + r->stats.dropped, r->stats.injected)
          << "seed " << seed;
    }
  }
}

TEST(FairnessTest, DeterministicUnderFixedSeed) {
  FairnessConfig cfg;
  cfg.seed = 42;
  cfg.use_pifo = true;
  const FairnessReport a = run_fairness_scenario(cfg);
  const FairnessReport b = run_fairness_scenario(cfg);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.offered_bytes, b.offered_bytes);
  EXPECT_EQ(a.delivered_total, b.delivered_total);
  EXPECT_EQ(a.max_min_ratio, b.max_min_ratio);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.events, b.stats.events);
}

// The fabric-level engine differential: swapping the rank machine's engine
// must not change a single delivered byte.
TEST(FairnessTest, EnginesAgreeOnFabricDelivery) {
  std::vector<std::vector<std::int64_t>> delivered;
  for (const auto engine :
       {banzai::ExecEngine::kClosure, banzai::ExecEngine::kKernel,
        banzai::ExecEngine::kNative}) {
    FairnessConfig cfg;
    cfg.use_pifo = true;
    cfg.engine = engine;
    delivered.push_back(run_fairness_scenario(cfg).delivered_bytes);
  }
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_EQ(delivered[1], delivered[2]);
}

}  // namespace
}  // namespace netsim
