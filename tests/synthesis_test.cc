// Tests for the codelet-to-atom synthesis engine (§4.3), including the
// paper's own worked examples: mapping x = x + 1 onto an add/subtract
// template succeeds, mapping x = x * x fails.
#include "synthesis/synthesizer.h"

#include <gtest/gtest.h>

#include "core/normalize.h"
#include "core/parser.h"
#include "core/pipeline.h"
#include "core/sema.h"

namespace synthesis {
namespace {

using atoms::StatefulKind;
using domino::Codelet;
using domino::CodeletPipeline;

// Builds the stateful codelet of a tiny Domino transaction.
Codelet stateful_codelet(const std::string& src) {
  domino::Program p = domino::parse(src);
  domino::analyze(p);
  CodeletPipeline pipe =
      domino::pipeline_schedule(domino::normalize(p).tac);
  for (const auto& st : pipe.stages)
    for (const auto& c : st)
      if (c.is_stateful()) return c;
  throw std::runtime_error("no stateful codelet in test program");
}

Codelet counter_codelet() {
  return stateful_codelet(
      "struct Packet { int a; };\nint x = 0;\n"
      "void t(struct Packet pkt) { x = x + 1; }\n");
}

TEST(SynthesisTest, PaperExampleIncrementMapsToRaw) {
  // §4.3: "assume we want to map the codelet x=x+1 ... SKETCH finds the
  // solution with choice=0 and constant=1".
  CodeletSpec spec(counter_codelet(), {});
  SynthResult r = synthesize(spec, StatefulKind::kRAW);
  ASSERT_TRUE(r.success) << r.failure_reason;
  ASSERT_EQ(r.config.leaves.size(), 1u);
  const auto& arm = r.config.leaves[0][0];
  EXPECT_EQ(arm.mode, atoms::ArmMode::kAdd);
  EXPECT_EQ(arm.src1.kind, atoms::OperandSel::Kind::kConst);
  EXPECT_EQ(arm.src1.cst, 1);
}

TEST(SynthesisTest, PaperExampleSquareDoesNotMap) {
  // §4.3: "if the codelet x=x*x was supplied ... SKETCH will return an error
  // as no parameters exist."
  Codelet sq = stateful_codelet(
      "struct Packet { int a; };\nint x = 2;\n"
      "void t(struct Packet pkt) { x = x * x; }\n");
  CodeletSpec spec(sq, {});
  for (const auto& t : atoms::stateful_hierarchy()) {
    SynthResult r = synthesize(spec, t.kind);
    EXPECT_FALSE(r.success) << "x=x*x mapped onto " << t.name;
  }
}

TEST(SynthesisTest, IncrementDoesNotMapToWrite) {
  CodeletSpec spec(counter_codelet(), {});
  SynthResult r = synthesize(spec, StatefulKind::kWrite);
  EXPECT_FALSE(r.success);
}

TEST(SynthesisTest, PlainWriteMapsToWrite) {
  Codelet w = stateful_codelet(
      "struct Packet { int a; };\nint x = 0;\n"
      "void t(struct Packet pkt) { x = pkt.a; }\n");
  SynthResult r = synthesize(CodeletSpec(w, {}), StatefulKind::kWrite);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.config.leaves[0][0].mode, atoms::ArmMode::kSet);
}

TEST(SynthesisTest, PredicatedWriteNeedsPraw) {
  const char* src =
      "struct Packet { int a; int c; };\nint x = 0;\n"
      "void t(struct Packet pkt) { if (pkt.c > 0) { x = pkt.a; } }\n";
  Codelet c = stateful_codelet(src);
  EXPECT_FALSE(synthesize(CodeletSpec(c, {}), StatefulKind::kRAW).success);
  SynthResult r = synthesize(CodeletSpec(c, {}), StatefulKind::kPRAW);
  ASSERT_TRUE(r.success) << r.failure_reason;
  ASSERT_EQ(r.config.preds.size(), 1u);
  EXPECT_NE(r.config.preds[0].rel, atoms::RelKind::kAlways);
}

TEST(SynthesisTest, TwoSidedUpdateNeedsIfElseRaw) {
  // if (x == 29) x = 0 else x = x + 1  — PRAW's false leaf must keep.
  const char* src =
      "struct Packet { int a; };\nint x = 0;\n"
      "void t(struct Packet pkt) { if (x == 29) { x = 0; } else { x = x + 1; "
      "} }\n";
  Codelet c = stateful_codelet(src);
  EXPECT_FALSE(synthesize(CodeletSpec(c, {}), StatefulKind::kPRAW).success);
  EXPECT_TRUE(synthesize(CodeletSpec(c, {}), StatefulKind::kIfElseRAW).success);
}

TEST(SynthesisTest, SubtractionOfFieldNeedsSub) {
  const char* src =
      "struct Packet { int d; };\nint x = 0;\n"
      "void t(struct Packet pkt) { if (x < pkt.d) { x = 0; } else { x = x - "
      "pkt.d; } }\n";
  Codelet c = stateful_codelet(src);
  EXPECT_FALSE(
      synthesize(CodeletSpec(c, {}), StatefulKind::kIfElseRAW).success);
  EXPECT_TRUE(synthesize(CodeletSpec(c, {}), StatefulKind::kSub).success);
}

TEST(SynthesisTest, TwoLevelPredicationNeedsNested) {
  const char* src =
      "struct Packet { int a; int b; };\nint x = 0;\n"
      "void t(struct Packet pkt) {\n"
      "  if (pkt.a > 0) { if (x < 100) { x = x + 1; } }\n"
      "  else { if (x > 0) { x = x - 1; } }\n"
      "}\n";
  Codelet c = stateful_codelet(src);
  EXPECT_FALSE(synthesize(CodeletSpec(c, {}), StatefulKind::kSub).success);
  EXPECT_TRUE(synthesize(CodeletSpec(c, {}), StatefulKind::kNested).success);
}

TEST(SynthesisTest, PairedStateNeedsPairs) {
  const char* src =
      "#define INF 2147483647\n"
      "struct Packet { int util; int path; };\n"
      "int bu = 0;\nint bp = 0;\n"
      "void t(struct Packet pkt) {\n"
      "  if (pkt.util < bu) { bu = pkt.util; bp = pkt.path; }\n"
      "  else if (pkt.path == bp) { bu = pkt.util; }\n"
      "}\n";
  Codelet c = stateful_codelet(src);
  EXPECT_FALSE(synthesize(CodeletSpec(c, {}), StatefulKind::kNested).success);
  SynthResult r = synthesize(CodeletSpec(c, {}), StatefulKind::kPairs);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.config.leaves.size(), 4u);
  EXPECT_EQ(r.config.leaves[0].size(), 2u);  // two state arms per leaf
}

TEST(SynthesisTest, ThreeStateVariablesNeverMap) {
  const char* src =
      "struct Packet { int a; };\nint x = 0;\nint y = 0;\nint z = 0;\n"
      "void t(struct Packet pkt) {\n"
      "  if (x > 0) { y = y + 1; }\n"
      "  if (y > 0) { z = z + 1; }\n"
      "  if (z > 0) { x = x + 1; }\n"
      "}\n";
  Codelet c = stateful_codelet(src);
  SynthResult r = synthesize(CodeletSpec(c, {}), StatefulKind::kPairs);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("state variables"), std::string::npos);
}

// ---- live-out bindings -----------------------------------------------------

TEST(SynthesisTest, ReadFlankBindsToOldValue) {
  domino::Program p = domino::parse(
      "struct Packet { int a; int out; };\nint x = 0;\n"
      "void t(struct Packet pkt) { pkt.out = x; x = x + pkt.a; }\n");
  domino::analyze(p);
  CodeletPipeline pipe = domino::pipeline_schedule(domino::normalize(p).tac);
  for (const auto& st : pipe.stages)
    for (const auto& c : st)
      if (c.is_stateful()) {
        auto flanks = c.read_flanks();
        ASSERT_FALSE(flanks.empty());
        CodeletSpec spec(c, {flanks[0].second});
        SynthResult r = synthesize(spec, StatefulKind::kRAW);
        ASSERT_TRUE(r.success) << r.failure_reason;
        ASSERT_EQ(r.liveouts.size(), 1u);
        EXPECT_FALSE(r.liveouts[0].use_new);
      }
}

TEST(SynthesisTest, PostUpdateValueBindsToNewValue) {
  Codelet c = stateful_codelet(
      "struct Packet { int out; };\nint x = 0;\n"
      "void t(struct Packet pkt) { x = x + 1; pkt.out = x; }\n");
  // The codelet's written field feeding pkt.out is the updated value.
  std::string liveout;
  for (const auto& s : c.stmts)
    if (s.kind == domino::TacStmt::Kind::kBinary) liveout = s.dst;
  ASSERT_FALSE(liveout.empty());
  SynthResult r = synthesize(CodeletSpec(c, {liveout}), StatefulKind::kRAW);
  ASSERT_TRUE(r.success) << r.failure_reason;
  ASSERT_EQ(r.liveouts.size(), 1u);
  EXPECT_TRUE(r.liveouts[0].use_new);
}

// ---- hierarchy containment (property) --------------------------------------

struct HierarchyCase {
  const char* name;
  const char* src;
  StatefulKind least;
};

class HierarchyContainmentTest
    : public ::testing::TestWithParam<HierarchyCase> {};

TEST_P(HierarchyContainmentTest, EveryAtomAboveLeastAlsoMaps) {
  const auto& tc = GetParam();
  Codelet c = stateful_codelet(tc.src);
  CodeletSpec spec(c, {});
  const int least_rank = atoms::template_info(tc.least).hierarchy_rank;
  for (const auto& t : atoms::stateful_hierarchy()) {
    SynthResult r = synthesize(spec, t.kind);
    if (t.hierarchy_rank < least_rank) {
      EXPECT_FALSE(r.success)
          << tc.name << " unexpectedly mapped onto " << t.name;
    } else {
      EXPECT_TRUE(r.success)
          << tc.name << " failed on " << t.name << ": " << r.failure_reason;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codelets, HierarchyContainmentTest,
    ::testing::Values(
        HierarchyCase{"set_const",
                      "struct Packet { int a; };\nint x = 0;\n"
                      "void t(struct Packet pkt) { x = 7; }\n",
                      StatefulKind::kWrite},
        HierarchyCase{"add_field",
                      "struct Packet { int a; };\nint x = 0;\n"
                      "void t(struct Packet pkt) { x = x + pkt.a; }\n",
                      StatefulKind::kRAW},
        HierarchyCase{"guarded_add",
                      "struct Packet { int a; int c; };\nint x = 0;\n"
                      "void t(struct Packet pkt) { if (pkt.c != 0) { x = x + "
                      "pkt.a; } }\n",
                      StatefulKind::kPRAW},
        HierarchyCase{"reset_or_inc",
                      "struct Packet { int a; };\nint x = 0;\n"
                      "void t(struct Packet pkt) { if (x == 5) { x = 0; } "
                      "else { x = x + 1; } }\n",
                      StatefulKind::kIfElseRAW},
        HierarchyCase{"drain",
                      "struct Packet { int d; };\nint x = 0;\n"
                      "void t(struct Packet pkt) { if (x < pkt.d) { x = 0; } "
                      "else { x = x - pkt.d; } }\n",
                      StatefulKind::kSub}),
    [](const ::testing::TestParamInfo<HierarchyCase>& info) {
      return info.param.name;
    });

// ---- soundness (property) ---------------------------------------------------

class SoundnessTest : public ::testing::TestWithParam<HierarchyCase> {};

TEST_P(SoundnessTest, AcceptedConfigsAreEquivalentOnFreshVectors) {
  const auto& tc = GetParam();
  Codelet c = stateful_codelet(tc.src);
  CodeletSpec spec(c, {});
  SynthResult r = synthesize(spec, tc.least);
  ASSERT_TRUE(r.success) << r.failure_reason;
  // Fresh seed never used during search.
  std::string why;
  EXPECT_TRUE(
      check_equivalent(spec, r.config, r.liveouts, 0xf4e5711u, 20000, &why))
      << why;
}

INSTANTIATE_TEST_SUITE_P(
    Codelets, SoundnessTest,
    ::testing::Values(
        HierarchyCase{"guarded_add",
                      "struct Packet { int a; int c; };\nint x = 0;\n"
                      "void t(struct Packet pkt) { if (pkt.c != 0) { x = x + "
                      "pkt.a; } }\n",
                      StatefulKind::kPRAW},
        HierarchyCase{"reset_or_inc",
                      "struct Packet { int a; };\nint x = 0;\n"
                      "void t(struct Packet pkt) { if (x == 5) { x = 0; } "
                      "else { x = x + 1; } }\n",
                      StatefulKind::kIfElseRAW},
        HierarchyCase{"stfq_like",
                      "struct Packet { int now; int len; };\nint x = 0;\n"
                      "void t(struct Packet pkt) {\n"
                      "  if (x == 0) { x = pkt.now + pkt.len; }\n"
                      "  else if (x > pkt.now) { x = x + pkt.len; }\n"
                      "  else { x = pkt.now + pkt.len; }\n}\n",
                      StatefulKind::kNested}),
    [](const ::testing::TestParamInfo<HierarchyCase>& info) {
      return info.param.name;
    });

// ---- options ----------------------------------------------------------------

TEST(SynthesisOptionsTest, ExhaustiveConstantEnumerationStillFindsSolution) {
  SynthOptions opts;
  opts.seed_constants = false;
  opts.const_bits = 5;
  CodeletSpec spec(counter_codelet(), {});
  SynthResult r = synthesize(spec, StatefulKind::kRAW, opts);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.config.leaves[0][0].src1.cst, 1);
}

TEST(SynthesisOptionsTest, WiderConstantsEnlargeSearch) {
  SynthOptions narrow, wide;
  narrow.seed_constants = wide.seed_constants = false;
  narrow.const_bits = 3;
  wide.const_bits = 7;
  CodeletSpec spec(counter_codelet(), {});
  auto rn = synthesize(spec, StatefulKind::kPRAW, narrow);
  auto rw = synthesize(spec, StatefulKind::kPRAW, wide);
  ASSERT_TRUE(rn.success);
  ASSERT_TRUE(rw.success);
  EXPECT_GT(rw.stats.candidates_tried, rn.stats.candidates_tried);
}

TEST(SynthesisOptionsTest, DeterministicAcrossRuns) {
  CodeletSpec spec(counter_codelet(), {});
  auto r1 = synthesize(spec, StatefulKind::kNested);
  auto r2 = synthesize(spec, StatefulKind::kNested);
  ASSERT_TRUE(r1.success);
  ASSERT_EQ(r1.success, r2.success);
  EXPECT_EQ(r1.config.str(r1.input_fields), r2.config.str(r2.input_fields));
}

TEST(SynthesisTest, FailureReasonsAreInformative) {
  Codelet sq = stateful_codelet(
      "struct Packet { int a; };\nint x = 2;\n"
      "void t(struct Packet pkt) { x = x * x; }\n");
  SynthResult r = synthesize(CodeletSpec(sq, {}), StatefulKind::kPairs);
  EXPECT_NE(r.failure_reason.find("*"), std::string::npos);
}

}  // namespace
}  // namespace synthesis
